package nestedenclave_test

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the ablations. Each delegates to the harness in internal/bench; the
// cmd/repro binary prints the full paper-style tables, while these benches
// integrate with `go test -bench` tooling and report the headline metric of
// each experiment through b.ReportMetric.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkFigure11 -benchtime=1x

import (
	"testing"

	"nestedenclave/internal/bench"
	"nestedenclave/internal/ycsb"
)

// BenchmarkTableII_Transitions measures ecall/ocall vs n_ecall/n_ocall
// latency (paper Table II).
func BenchmarkTableII_Transitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.TableII(20_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EmuSGXEcallUS, "emu-ecall-us")
		b.ReportMetric(res.EmuNestEcallUS, "emu-n_ecall-us")
		b.ReportMetric(res.HWEcallUS, "model-ecall-us")
		b.ReportMetric(res.HWNestEcallUS, "model-n_ecall-us")
	}
}

// BenchmarkTableIII_PortedLOC recounts the porting surface (paper Table III).
func BenchmarkTableIII_PortedLOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.TableIII()
		total := 0
		for _, r := range rows {
			total += r.PortedLOC
		}
		b.ReportMetric(float64(total), "ported-loc")
	}
}

// BenchmarkTableVI_SQLiteYCSB runs the four YCSB mixes (paper Table VI).
func BenchmarkTableVI_SQLiteYCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableVI(ycsb.Config{Records: 500, Operations: 2000, FieldLen: 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		var norm, equiv float64
		for _, r := range rows {
			norm += r.Normalized
			equiv += r.SQLiteEquivNorm
		}
		b.ReportMetric(norm/float64(len(rows)), "normalized")
		b.ReportMetric(equiv/float64(len(rows)), "sqlite-equiv-norm")
	}
}

// BenchmarkTableVII_Attacks executes the security analysis (paper Table VII).
func BenchmarkTableVII_Attacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableVII()
		if err != nil {
			b.Fatal(err)
		}
		reproduced := 0
		for _, r := range rows {
			if r.Reproduced {
				reproduced++
			}
		}
		if reproduced != len(rows) {
			b.Fatalf("only %d/%d attacks reproduced", reproduced, len(rows))
		}
		b.ReportMetric(float64(reproduced), "attacks-reproduced")
	}
}

// BenchmarkFigure7_EchoServer measures SSL echo throughput (paper Figure 7).
func BenchmarkFigure7_EchoServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure7([]int{128, 1024, 16384}, 1500)
		if err != nil {
			b.Fatal(err)
		}
		var norm float64
		for _, r := range rows {
			norm += r.Normalized
		}
		b.ReportMetric(norm/float64(len(rows)), "normalized")
	}
}

// BenchmarkFigure9_LibSVM measures SVM train/predict (paper Figure 9).
func BenchmarkFigure9_LibSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure9(0.01)
		if err != nil {
			b.Fatal(err)
		}
		var train float64
		for _, r := range rows {
			train += r.TrainNorm
		}
		b.ReportMetric(train/float64(len(rows)), "train-normalized")
	}
}

// BenchmarkFigure10_Loading measures enclave loading with library sharing
// (paper Figure 10). -short shrinks the fleet.
func BenchmarkFigure10_Loading(b *testing.B) {
	cfg := bench.Figure10Config{Apps: 12, SSLOuters: []int{12, 4, 1}, SSLPages: 256, AppPages: 64}
	if testing.Short() {
		cfg = bench.Figure10Config{Apps: 4, SSLOuters: []int{4, 1}, SSLPages: 64, AppPages: 16}
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: footprint saving of maximal sharing vs combined baseline.
		baseline := rows[1].FootprintMB
		shared := rows[len(rows)-1].FootprintMB
		b.ReportMetric(baseline/shared, "footprint-saving-x")
	}
}

// BenchmarkFigure11_Channels measures the MEE vs GCM channel throughput
// (paper Figure 11).
func BenchmarkFigure11_Channels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure11([]int{2}, []int{64, 4096, 65536}, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Speedup, "speedup-64B-x")
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-64KB-x")
	}
}

// BenchmarkAblationTransitionPath contrasts the direct NEENTER/NEEXIT path
// with the monolithic exit-and-re-enter detour.
func BenchmarkAblationTransitionPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationTransitionPath(10_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DetourCycles)/float64(res.DirectCycles), "detour-cost-x")
	}
}

// BenchmarkAblationShootdown contrasts precise inner-aware ETRACK tracking
// with broadcast shootdowns.
func BenchmarkAblationShootdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationShootdown(30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BroadcastIPIs)/float64(max64(res.PreciseIPIs, 1)), "broadcast-ipi-x")
	}
}

// BenchmarkAblationTLBFlush quantifies the mandatory per-transition TLB
// flush (flushes, induced refills, cycle share).
func BenchmarkAblationTLBFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationTLBFlush(3000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlushesPerCall, "flushes-per-call")
		b.ReportMetric(res.FlushCycleShare, "flush-cycle-share")
	}
}

// BenchmarkAblationNestingDepth measures validation cost growth with
// nesting depth (paper §VIII).
func BenchmarkAblationNestingDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationNestingDepth([]int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].ValidateSteps)/float64(rows[0].ValidateSteps), "depth4-vs-2-steps-x")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
