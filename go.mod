module nestedenclave

go 1.24
