package nestedenclave_test

import (
	"fmt"

	ne "nestedenclave"
)

// Example demonstrates the minimal nested-enclave flow: load an outer
// library enclave and an inner application enclave, associate them with
// NASSO, and run an ecall that crosses into the inner enclave and calls
// back into the outer library — all without leaving protected mode.
func Example() {
	sys := ne.NewSystem()
	author := ne.NewAuthor()

	outerImg := ne.NewImage("lib", 0x2000_0000, ne.DefaultLayout())
	innerImg := ne.NewImage("app", 0x1000_0000, ne.DefaultLayout())

	outerImg.RegisterNOCall("shout", func(env *ne.Env, args []byte) ([]byte, error) {
		return append(args, '!'), nil
	})
	outerImg.RegisterECall("run", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "work", args) // n_ecall
	})
	innerImg.RegisterECall("work", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NOCall("shout", args) // n_ocall
	})

	outer, err := sys.Load(outerImg.Sign(author, nil, []ne.Digest{innerImg.Measure()}))
	if err != nil {
		panic(err)
	}
	inner, err := sys.Load(innerImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil))
	if err != nil {
		panic(err)
	}
	if err := sys.Associate(inner, outer); err != nil { // NASSO
		panic(err)
	}

	out, err := outer.ECall("run", []byte("nested"))
	if err != nil {
		panic(err)
	}
	fmt.Println(string(out))
	// Output: nested!
}
