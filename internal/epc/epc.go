// Package epc manages the Enclave Page Cache and its shadow metadata, the
// Enclave Page Cache Map (EPCM).
//
// Each 4 KiB EPC page has an EPCM entry recording — exactly as the paper's
// §II-B requires for the access validator — the owner enclave's identity and
// the single virtual address at which the page may be mapped, plus the page
// type and permissions. The EPCM is hardware-internal state: no software,
// including the kernel, can read or write it directly.
package epc

import (
	"fmt"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/phys"
)

// Entry is one EPCM record. The zero value describes a free page.
type Entry struct {
	// Valid is set while the page is in use by an enclave.
	Valid bool
	// Blocked is set by EBLOCK during eviction; blocked pages fail
	// validation so new TLB entries cannot be created for them.
	Blocked bool
	// Type is the architectural page type.
	Type isa.PageType
	// Owner is the owning enclave (the enclave whose SECS this is, for
	// PT_SECS pages the enclave the SECS defines).
	Owner isa.EID
	// Vaddr is the one virtual address the page may be mapped at
	// (meaningless for PT_SECS/PT_VA pages, which software never maps).
	Vaddr isa.VAddr
	// Perms are the enclave-author-specified access permissions.
	Perms isa.Perm
}

// Manager tracks EPC page allocation and the EPCM. Not safe for concurrent
// use; the machine serializes instruction execution.
type Manager struct {
	base    isa.PAddr
	npages  int
	entries []Entry
	free    []int // free page indices, LIFO
}

// NewManager creates a manager covering the PRM of the given memory.
func NewManager(mem *phys.Memory) *Manager {
	l := mem.Layout()
	n := int(l.PRMSize / isa.PageSize)
	m := &Manager{base: l.PRMBase, npages: n, entries: make([]Entry, n), free: make([]int, 0, n)}
	for i := n - 1; i >= 0; i-- {
		m.free = append(m.free, i)
	}
	return m
}

// NumPages returns the total number of EPC pages.
func (m *Manager) NumPages() int { return m.npages }

// FreePages returns the number of unallocated EPC pages.
func (m *Manager) FreePages() int { return len(m.free) }

// Base returns the physical base of the EPC.
func (m *Manager) Base() isa.PAddr { return m.base }

// AddrOf returns the physical base address of EPC page i.
func (m *Manager) AddrOf(i int) isa.PAddr {
	return m.base + isa.PAddr(i)*isa.PageSize
}

// IndexOf maps a physical address into an EPC page index.
func (m *Manager) IndexOf(p isa.PAddr) (int, bool) {
	if p < m.base {
		return 0, false
	}
	i := int((p - m.base) >> isa.PageShift)
	if i >= m.npages {
		return 0, false
	}
	return i, true
}

// Entry returns a pointer to the EPCM entry for EPC page i.
func (m *Manager) Entry(i int) *Entry { return &m.entries[i] }

// EntryAt returns the EPCM entry governing physical address p.
func (m *Manager) EntryAt(p isa.PAddr) (*Entry, bool) {
	i, ok := m.IndexOf(p)
	if !ok {
		return nil, false
	}
	return &m.entries[i], true
}

// Alloc claims a free EPC page for the owner, returning its index. It
// corresponds to the EPCM side of EADD/ECREATE: the entry is marked valid
// with the given attributes.
func (m *Manager) Alloc(owner isa.EID, t isa.PageType, vaddr isa.VAddr, perms isa.Perm) (int, error) {
	if len(m.free) == 0 {
		return 0, fmt.Errorf("epc: out of EPC pages")
	}
	i := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.entries[i] = Entry{Valid: true, Type: t, Owner: owner, Vaddr: vaddr, Perms: perms}
	return i, nil
}

// Free releases EPC page i back to the pool (EREMOVE).
func (m *Manager) Free(i int) error {
	if !m.entries[i].Valid {
		return fmt.Errorf("epc: double free of page %d", i)
	}
	m.entries[i] = Entry{}
	m.free = append(m.free, i)
	return nil
}

// PagesOf returns the indices of all valid pages owned by eid.
func (m *Manager) PagesOf(eid isa.EID) []int {
	var out []int
	for i := range m.entries {
		if m.entries[i].Valid && m.entries[i].Owner == eid {
			out = append(out, i)
		}
	}
	return out
}
