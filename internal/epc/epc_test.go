package epc

import (
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/phys"
)

func newMgr() *Manager {
	mem := phys.MustNew(phys.Layout{DRAMSize: 4 << 20, PRMBase: 1 << 20, PRMSize: 2 << 20})
	return NewManager(mem)
}

func TestAllocFree(t *testing.T) {
	m := newMgr()
	total := m.NumPages()
	if total != (2<<20)/isa.PageSize {
		t.Fatalf("NumPages = %d", total)
	}
	i, err := m.Alloc(7, isa.PTReg, 0x1000, isa.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != total-1 {
		t.Fatalf("free pages = %d", m.FreePages())
	}
	e := m.Entry(i)
	if !e.Valid || e.Owner != 7 || e.Vaddr != 0x1000 || e.Perms != isa.PermRW || e.Type != isa.PTReg {
		t.Fatalf("entry = %+v", e)
	}
	if err := m.Free(i); err != nil {
		t.Fatal(err)
	}
	if m.Entry(i).Valid {
		t.Fatal("entry valid after free")
	}
	if err := m.Free(i); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestExhaustion(t *testing.T) {
	m := newMgr()
	n := m.NumPages()
	for i := 0; i < n; i++ {
		if _, err := m.Alloc(1, isa.PTReg, isa.VAddr(i)<<isa.PageShift, isa.PermR); err != nil {
			t.Fatalf("alloc %d/%d failed: %v", i, n, err)
		}
	}
	if _, err := m.Alloc(1, isa.PTReg, 0, isa.PermR); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestAddrIndexRoundTrip(t *testing.T) {
	m := newMgr()
	for _, i := range []int{0, 1, 100, m.NumPages() - 1} {
		pa := m.AddrOf(i)
		j, ok := m.IndexOf(pa)
		if !ok || j != i {
			t.Fatalf("IndexOf(AddrOf(%d)) = %d, %v", i, j, ok)
		}
		// Interior addresses map to the same page.
		j2, ok := m.IndexOf(pa + 17)
		if !ok || j2 != i {
			t.Fatalf("interior IndexOf = %d, %v", j2, ok)
		}
	}
	if _, ok := m.IndexOf(0); ok {
		t.Fatal("address below EPC resolved")
	}
	if _, ok := m.IndexOf(m.Base() + isa.PAddr(m.NumPages())*isa.PageSize); ok {
		t.Fatal("address above EPC resolved")
	}
}

func TestEntryAt(t *testing.T) {
	m := newMgr()
	i, _ := m.Alloc(3, isa.PTSECS, 0, 0)
	e, ok := m.EntryAt(m.AddrOf(i) + 100)
	if !ok || e.Owner != 3 || e.Type != isa.PTSECS {
		t.Fatalf("EntryAt: %+v ok=%v", e, ok)
	}
	if _, ok := m.EntryAt(0x1000); ok {
		t.Fatal("EntryAt outside EPC resolved")
	}
}

func TestPagesOf(t *testing.T) {
	m := newMgr()
	a, _ := m.Alloc(1, isa.PTReg, 0x1000, isa.PermR)
	b, _ := m.Alloc(2, isa.PTReg, 0x2000, isa.PermR)
	c, _ := m.Alloc(1, isa.PTTCS, 0x3000, 0)
	got := m.PagesOf(1)
	if len(got) != 2 {
		t.Fatalf("PagesOf(1) = %v", got)
	}
	seen := map[int]bool{}
	for _, p := range got {
		seen[p] = true
	}
	if !seen[a] || !seen[c] || seen[b] {
		t.Fatalf("PagesOf(1) = %v, want {%d,%d}", got, a, c)
	}
}
