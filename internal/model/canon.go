package model

import (
	"encoding/binary"
	"fmt"
	"slices"

	"nestedenclave/internal/isa"
	"strings"
)

// Canonical state serialization. The systematic explorer (internal/simtest)
// memoizes visited states by a fingerprint of the oracle, so two schedules
// reaching semantically identical states are explored once. "Semantically
// identical" is defined here: every field a future verdict can depend on is
// serialized, in a canonical order, and nothing else. Association lists are
// sorted because the lattice is a set (Validate, NASSO, and the shootdown
// closure all treat Outers/Inners as membership queries, never as sequences);
// TCS lists keep their EAdd order because the harness addresses TCSs by
// index.

// AppendCanonical appends a canonical byte serialization of the oracle's
// complete semantic state to b and returns the result. Two oracles have equal
// serializations iff no operation sequence can distinguish them.
func (o *Oracle) AppendCanonical(b []byte) []byte {
	var w canonWriter
	w.b = b
	w.u64(uint64(o.cfg.Cores))
	w.u64(o.cfg.PRMBase)
	w.u64(o.cfg.PRMSize)
	w.u64(uint64(o.cfg.MaxDepth))
	w.bool(o.cfg.MultiOuter)
	w.u64(uint64(o.nextEID))

	pageIdxs := make([]int, 0, len(o.pages))
	for idx := range o.pages {
		pageIdxs = append(pageIdxs, idx)
	}
	slices.Sort(pageIdxs)
	w.u64(uint64(len(pageIdxs)))
	for _, idx := range pageIdxs {
		p := o.pages[idx]
		w.u64(uint64(idx))
		w.bool(p.Valid)
		w.bool(p.Blocked)
		w.u64(uint64(p.Type))
		w.u64(uint64(p.Owner))
		w.u64(p.Vaddr)
		w.u64(uint64(p.Perms))
	}

	eids := make([]int, 0, len(o.enclaves))
	for eid := range o.enclaves {
		eids = append(eids, int(eid))
	}
	slices.Sort(eids)
	w.u64(uint64(len(eids)))
	for _, eid := range eids {
		e := o.enclaves[isa.EID(eid)]
		w.u64(uint64(e.EID))
		w.u64(e.Base)
		w.u64(e.Size)
		w.bool(e.Initialized)
		w.eidSet(e.Outers)
		w.eidSet(e.Inners)
		w.u64(uint64(len(e.TCS)))
		for _, t := range e.TCS {
			w.bool(t.Busy)
			w.frame(t.Ret)
			w.frame(t.SSA)
		}
	}

	for _, c := range o.cores {
		w.bool(c.In)
		if c.In {
			w.u64(uint64(c.Cur.EID))
			w.u64(uint64(c.Cur.TCS))
		}
		vpns := make([]uint64, 0, len(c.TLB))
		for vpn := range c.TLB {
			vpns = append(vpns, vpn)
		}
		slices.Sort(vpns)
		w.u64(uint64(len(vpns)))
		for _, vpn := range vpns {
			e := c.TLB[vpn]
			w.u64(vpn)
			w.u64(e.PPN)
			w.u64(uint64(e.Perms))
		}
	}

	// Paging-freshness ledger: ELD verdicts depend on it, so states that
	// differ only in blob versions must not be memoized as identical.
	// Zero-valued lanes are skipped so a never-evicted state canonicalizes
	// identically whether or not its lane was ever touched.
	keys := make([]BlobKey, 0, len(o.blobVer))
	for k := range o.blobVer {
		if o.blobVer[k] != 0 || o.blobOut[k] {
			keys = append(keys, k)
		}
	}
	slices.SortFunc(keys, func(a, b BlobKey) int {
		if a.Owner != b.Owner {
			return int(a.Owner) - int(b.Owner)
		}
		switch {
		case a.Vaddr < b.Vaddr:
			return -1
		case a.Vaddr > b.Vaddr:
			return 1
		}
		return 0
	})
	w.u64(uint64(len(keys)))
	for _, k := range keys {
		w.u64(uint64(k.Owner))
		w.u64(k.Vaddr)
		w.u64(o.blobVer[k])
		w.bool(o.blobOut[k])
	}
	return w.b
}

// Fingerprint returns a 64-bit FNV-1a hash of the canonical serialization —
// the memoization key for state-space exploration. Equal states always hash
// equal; the explorer tolerates the (cryptographically negligible at small
// scope) collision risk because every transition it takes is still fully
// diffed and audited.
func (o *Oracle) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range o.AppendCanonical(nil) {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// StateEqual reports whether two oracles are semantically indistinguishable.
func StateEqual(a, b *Oracle) bool {
	return slices.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil))
}

// CanonicalString renders the canonical state human-readably, for diffing the
// two sides of a failed commutativity claim.
func (o *Oracle) CanonicalString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nextEID=%d\n", o.nextEID)
	pageIdxs := make([]int, 0, len(o.pages))
	for idx := range o.pages {
		pageIdxs = append(pageIdxs, idx)
	}
	slices.Sort(pageIdxs)
	for _, idx := range pageIdxs {
		p := o.pages[idx]
		fmt.Fprintf(&sb, "page %d: valid=%v blocked=%v type=%v owner=%d vaddr=%#x perms=%v\n",
			idx, p.Valid, p.Blocked, p.Type, p.Owner, p.Vaddr, p.Perms)
	}
	eids := make([]int, 0, len(o.enclaves))
	for eid := range o.enclaves {
		eids = append(eids, int(eid))
	}
	slices.Sort(eids)
	for _, eid := range eids {
		e := o.enclaves[isa.EID(eid)]
		outers := append([]int(nil), eidInts(e.Outers)...)
		inners := append([]int(nil), eidInts(e.Inners)...)
		slices.Sort(outers)
		slices.Sort(inners)
		fmt.Fprintf(&sb, "enclave %d: base=%#x size=%#x init=%v outers=%v inners=%v\n",
			e.EID, e.Base, e.Size, e.Initialized, outers, inners)
		for i, t := range e.TCS {
			fmt.Fprintf(&sb, "  tcs %d: busy=%v ret=%s ssa=%s\n", i, t.Busy, frameString(t.Ret), frameString(t.SSA))
		}
	}
	for i, c := range o.cores {
		fmt.Fprintf(&sb, "core %d: in=%v cur=%s tlb=%s\n", i, c.In, frameString(&c.Cur), o.DumpTLB(i))
	}
	keys := make([]BlobKey, 0, len(o.blobVer))
	for k := range o.blobVer {
		if o.blobVer[k] != 0 || o.blobOut[k] {
			keys = append(keys, k)
		}
	}
	slices.SortFunc(keys, func(a, b BlobKey) int {
		if a.Owner != b.Owner {
			return int(a.Owner) - int(b.Owner)
		}
		switch {
		case a.Vaddr < b.Vaddr:
			return -1
		case a.Vaddr > b.Vaddr:
			return 1
		}
		return 0
	})
	for _, k := range keys {
		fmt.Fprintf(&sb, "blob %d@%#x: ver=%d out=%v\n", k.Owner, k.Vaddr, o.blobVer[k], o.blobOut[k])
	}
	return sb.String()
}

func frameString(f *Frame) string {
	if f == nil {
		return "-"
	}
	return fmt.Sprintf("(eid=%d,tcs=%d)", f.EID, f.TCS)
}

func eidInts(eids []isa.EID) []int {
	out := make([]int, len(eids))
	for i, e := range eids {
		out[i] = int(e)
	}
	return out
}

// canonWriter accumulates the length-prefixed little-endian encoding.
type canonWriter struct {
	b []byte
}

func (w *canonWriter) u64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

func (w *canonWriter) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

func (w *canonWriter) frame(f *Frame) {
	if f == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.u64(uint64(f.EID))
	w.u64(uint64(f.TCS))
}

// eidSet serializes an association list as a set: sorted, length-prefixed.
func (w *canonWriter) eidSet(eids []isa.EID) {
	ints := eidInts(eids)
	slices.Sort(ints)
	w.u64(uint64(len(ints)))
	for _, e := range ints {
		w.u64(uint64(e))
	}
}
