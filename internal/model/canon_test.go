package model

import (
	"testing"

	"nestedenclave/internal/isa"
)

func testConfig() Config {
	return Config{Cores: 2, PRMBase: 2 << 20, PRMSize: 4 << 20, MaxDepth: 2}
}

// buildEnclave creates and initializes one enclave with a data page and a
// TCS page, consuming three consecutive EPC page indices from firstPage.
func buildEnclave(t *testing.T, o *Oracle, firstPage int, base uint64) isa.EID {
	t.Helper()
	eid, v := o.ECreate(firstPage, base, 0x5000)
	if v != VOK {
		t.Fatalf("ECreate(%#x): %v", base, v)
	}
	mustVOK(t, "EAdd data", o.EAdd(eid, firstPage+1, base, isa.PTReg, isa.PermRW))
	mustVOK(t, "EAdd tcs", o.EAdd(eid, firstPage+2, base+isa.PageSize, isa.PTTCS, isa.PermRW))
	mustVOK(t, "EInit", o.EInit(eid))
	return eid
}

// TestFingerprintIgnoresAssociationOrder pins the canonicalization contract:
// the lattice is a set (Validate, NASSO, and the shootdown closure only ask
// membership questions), so two oracles whose association lists were built
// in different orders must serialize identically.
func TestFingerprintIgnoresAssociationOrder(t *testing.T) {
	mk := func(swap bool) *Oracle {
		o := New(Config{Cores: 2, PRMBase: 2 << 20, PRMSize: 4 << 20, MaxDepth: 3, MultiOuter: true})
		outer1 := buildEnclave(t, o, 0, 0x1000_0000)
		outer2 := buildEnclave(t, o, 3, 0x2000_0000)
		inner := buildEnclave(t, o, 6, 0x3000_0000)
		outers := []isa.EID{outer1, outer2}
		if swap {
			outers[0], outers[1] = outers[1], outers[0]
		}
		for _, out := range outers {
			mustVOK(t, "NASSO", o.NASSO(inner, out))
		}
		return o
	}
	a, b := mk(false), mk(true)
	if !StateEqual(a, b) {
		t.Fatalf("association insertion order leaked into the canonical state:\n--- a ---\n%s\n--- b ---\n%s",
			a.CanonicalString(), b.CanonicalString())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ for StateEqual oracles")
	}
}

// TestFingerprintSeparatesStates: semantically different oracles must not
// serialize equal — each mutation class moves the fingerprint.
func TestFingerprintSeparatesStates(t *testing.T) {
	base := func() (*Oracle, isa.EID, isa.EID) {
		o := New(testConfig())
		a := buildEnclave(t, o, 0, 0x1000_0000)
		b := buildEnclave(t, o, 3, 0x2000_0000)
		return o, a, b
	}
	o0, _, _ := base()
	seen := map[uint64]string{o0.Fingerprint(): "base"}

	mutations := []struct {
		name string
		mut  func(o *Oracle, a, b isa.EID)
	}{
		{"nasso", func(o *Oracle, a, b isa.EID) { mustVOK(t, "NASSO", o.NASSO(b, a)) }},
		{"enter-core0", func(o *Oracle, a, b isa.EID) { mustVOK(t, "EEnter", o.EEnter(0, a, 0, false)) }},
		{"enter-core1", func(o *Oracle, a, b isa.EID) { mustVOK(t, "EEnter", o.EEnter(1, a, 0, false)) }},
		{"enter-other-enclave", func(o *Oracle, a, b isa.EID) { mustVOK(t, "EEnter", o.EEnter(0, b, 0, false)) }},
	}
	for _, m := range mutations {
		o, a, b := base()
		m.mut(o, a, b)
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q fingerprint collides with %q", m.name, prev)
		}
		seen[fp] = m.name
	}
}

// TestAppendCanonicalStable: serializing twice yields identical bytes (no
// map-iteration order leaking through).
func TestAppendCanonicalStable(t *testing.T) {
	o := New(testConfig())
	a := buildEnclave(t, o, 0, 0x1000_0000)
	b := buildEnclave(t, o, 3, 0x2000_0000)
	mustVOK(t, "NASSO", o.NASSO(b, a))
	first := o.AppendCanonical(nil)
	for i := 0; i < 8; i++ {
		if next := o.AppendCanonical(nil); string(first) != string(next) {
			t.Fatalf("serialization unstable on round %d", i)
		}
	}
}

func mustVOK(t *testing.T, what string, v Verdict) {
	t.Helper()
	if v != VOK {
		t.Fatalf("%s: verdict %v, want VOK", what, v)
	}
}
