// Package model is a reference oracle of the nested-enclave security model:
// an independent, deliberately naive re-implementation of the state the
// paper's argument rests on — EPCM ownership, ELRANGE containment, the
// OuterEIDs/InnerEIDs association lattice, TCS occupancy, per-core TLB
// residency, and the eviction shootdown sets — written with nothing but maps
// and loops so that its correctness is checkable by eye.
//
// The oracle exists to be diffed against the real machine (internal/sgx +
// internal/core) by the lockstep harness in internal/simtest: both sides are
// driven through the same operation sequence and every access verdict, fault
// class, TLB fill/flush, and shootdown set must agree. The oracle therefore
// mirrors the *observable* semantics of the machine exactly, but shares none
// of its code and none of its performance machinery (no cache, no MEE, no
// cost model, no locks — it is single-goroutine by construction).
//
// Package model depends only on internal/isa. In particular it must never
// import internal/sgx or internal/core: a shared helper would let one bug
// hide in both implementations.
package model

import (
	"fmt"
	"sort"

	"nestedenclave/internal/isa"
)

// Verdict is the oracle's prediction for one operation.
type Verdict uint8

const (
	// VOK: the operation succeeds (for accesses: the translation is allowed
	// and inserted into the TLB).
	VOK Verdict = iota
	// VAbort: abort-page semantics — reads all-ones, writes dropped,
	// fetches fault.
	VAbort
	// VPF: a page fault is raised.
	VPF
	// VGP: a general-protection fault is raised.
	VGP
)

func (v Verdict) String() string {
	switch v {
	case VOK:
		return "ok"
	case VAbort:
		return "abort"
	case VPF:
		return "#PF"
	case VGP:
		return "#GP"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// PTE is the untrusted page-table input to an access prediction. The oracle
// does not model page tables — in the threat model they are attacker-chosen,
// so the harness passes whatever the kernel (or the attack op) installed.
type PTE struct {
	Mapped  bool // a PTE exists for the vpn
	Present bool
	PPN     uint64
	Perms   isa.Perm
}

// TLBEntry is one cached translation in the oracle's TLB model.
type TLBEntry struct {
	PPN   uint64
	Perms isa.Perm
}

// Config sizes the oracle to match the machine under test.
type Config struct {
	Cores   int
	PRMBase uint64 // also the EPC base, as in epc.NewManager
	PRMSize uint64
	// MaxDepth and MultiOuter mirror core.Config.
	MaxDepth   int
	MultiOuter bool
}

// Page is one EPCM entry. The zero value is a free page.
type Page struct {
	Valid   bool
	Blocked bool
	Type    isa.PageType
	Owner   isa.EID
	Vaddr   uint64 // page base
	Perms   isa.Perm
}

// Enclave is the oracle's view of one SECS.
type Enclave struct {
	EID         isa.EID
	Base, Size  uint64
	Initialized bool
	Outers      []isa.EID
	Inners      []isa.EID
	// TCS occupancy, by TCS index (the harness addresses TCSs by index, not
	// by virtual address).
	TCS []*TCS
}

// contains reports whether the vpn lies in ELRANGE.
func (e *Enclave) contains(vpn uint64) bool {
	return vpn >= e.Base>>isa.PageShift && vpn < (e.Base+e.Size)>>isa.PageShift
}

// Frame names an execution frame: an enclave plus the TCS it entered through.
type Frame struct {
	EID isa.EID
	TCS int
}

// TCS mirrors the machine's thread control structure state: whether it is
// claimed, the suspended outer frame of a nested entry, and the state saved
// by an asynchronous exit.
type TCS struct {
	Busy bool
	// Ret is the suspended outer frame (non-nil exactly while a nested entry
	// through this TCS is live or ocall-suspended).
	Ret *Frame
	// SSA is the interrupted frame saved by AEX, consumed by ERESUME.
	SSA *Frame
}

// CoreState is the oracle's view of one logical processor.
type CoreState struct {
	In  bool
	Cur Frame // meaningful only while In
	TLB map[uint64]TLBEntry
}

// Oracle is the reference model. All methods are single-goroutine.
type Oracle struct {
	cfg      Config
	nextEID  isa.EID
	pages    map[int]*Page
	enclaves map[isa.EID]*Enclave
	cores    []*CoreState

	// Paging freshness ledger: the oracle's ground truth a lying kernel
	// cannot rewrite. blobVer is the monotonic eviction counter per
	// (owner, vaddr) lane; blobOut marks that the current version's blob is
	// outstanding (evicted and not yet reloaded). ELD verdicts depend on
	// both, so they are part of canonical state.
	blobVer map[BlobKey]uint64
	blobOut map[BlobKey]bool
}

// BlobKey identifies one paging-freshness lane: an (owner, page base) pair.
type BlobKey struct {
	Owner isa.EID
	Vaddr uint64
}

// New creates an oracle for a machine of the given shape.
func New(cfg Config) *Oracle {
	o := &Oracle{
		cfg:      cfg,
		nextEID:  1,
		pages:    make(map[int]*Page),
		enclaves: make(map[isa.EID]*Enclave),
		blobVer:  make(map[BlobKey]uint64),
		blobOut:  make(map[BlobKey]bool),
	}
	for i := 0; i < cfg.Cores; i++ {
		o.cores = append(o.cores, &CoreState{TLB: make(map[uint64]TLBEntry)})
	}
	return o
}

// --- introspection (for diffing against the machine) ---

// Enclave returns the oracle's record for eid, if any.
func (o *Oracle) Enclave(eid isa.EID) (*Enclave, bool) {
	e, ok := o.enclaves[eid]
	return e, ok
}

// Core returns core i's state.
func (o *Oracle) Core(i int) *CoreState { return o.cores[i] }

// InEnclave reports whether core i executes in enclave mode.
func (o *Oracle) InEnclave(i int) bool { return o.cores[i].In }

// CurEID returns the enclave core i runs, or NoEnclave.
func (o *Oracle) CurEID(i int) isa.EID {
	if !o.cores[i].In {
		return isa.NoEnclave
	}
	return o.cores[i].Cur.EID
}

// TLB returns core i's modeled TLB (vpn -> entry). The caller must not
// mutate it.
func (o *Oracle) TLB(i int) map[uint64]TLBEntry { return o.cores[i].TLB }

// Page returns the EPCM entry for EPC page idx (nil if free).
func (o *Oracle) Page(idx int) *Page {
	p := o.pages[idx]
	if p == nil || !p.Valid {
		return nil
	}
	return p
}

// pageAddr returns the physical base address of EPC page idx, mirroring
// epc.Manager.AddrOf: the EPC occupies the PRM from its base.
func (o *Oracle) pageAddr(idx int) uint64 {
	return o.cfg.PRMBase + uint64(idx)*isa.PageSize
}

// inPRM reports whether the physical page at pa lies in PRM.
func (o *Oracle) inPRM(pa uint64) bool {
	base := pa &^ uint64(isa.PageMask)
	return base >= o.cfg.PRMBase && base < o.cfg.PRMBase+o.cfg.PRMSize
}

// pageAt returns the EPCM entry governing physical address pa.
func (o *Oracle) pageAt(pa uint64) *Page {
	if pa < o.cfg.PRMBase {
		return nil
	}
	idx := int((pa - o.cfg.PRMBase) >> isa.PageShift)
	if idx >= int(o.cfg.PRMSize/isa.PageSize) {
		return nil
	}
	return o.pages[idx]
}

// outerClosure returns every enclave reachable by following Outers links
// from e, breadth-first, cycles guarded — the region an inner enclave may
// additionally access.
func (o *Oracle) outerClosure(e *Enclave) []*Enclave {
	var out []*Enclave
	seen := map[isa.EID]bool{e.EID: true}
	frontier := []*Enclave{e}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, oe := range next.Outers {
			if seen[oe] {
				continue
			}
			seen[oe] = true
			oo, ok := o.enclaves[oe]
			if !ok {
				continue
			}
			out = append(out, oo)
			frontier = append(frontier, oo)
		}
	}
	return out
}

// --- lifecycle ---

// ECreate records a new enclave and returns its identity. The harness passes
// the SECS page index the machine allocated.
func (o *Oracle) ECreate(secsPage int, base, size uint64) (isa.EID, Verdict) {
	if base&isa.PageMask != 0 || size == 0 || size&isa.PageMask != 0 {
		return isa.NoEnclave, VGP
	}
	eid := o.nextEID
	o.nextEID++
	o.enclaves[eid] = &Enclave{EID: eid, Base: base, Size: size}
	o.pages[secsPage] = &Page{Valid: true, Type: isa.PTSECS, Owner: eid}
	return eid, VOK
}

// EAdd records one page added to an uninitialized enclave at the EPC page
// index the machine allocated.
func (o *Oracle) EAdd(eid isa.EID, page int, vaddr uint64, t isa.PageType, perms isa.Perm) Verdict {
	e, ok := o.enclaves[eid]
	if !ok || e.Initialized {
		return VGP
	}
	if vaddr&isa.PageMask != 0 {
		return VGP
	}
	if vaddr < e.Base || vaddr+isa.PageSize > e.Base+e.Size {
		return VGP
	}
	switch t {
	case isa.PTReg:
		// author perms as given
	case isa.PTTCS:
		perms = 0
		e.TCS = append(e.TCS, &TCS{})
	default:
		return VGP
	}
	o.pages[page] = &Page{Valid: true, Type: t, Owner: eid, Vaddr: vaddr, Perms: perms}
	return VOK
}

// EInit finalizes the enclave. Measurement checking is the harness's job
// (it always builds matching certificates); the oracle models the state
// transition and the double-init rejection.
func (o *Oracle) EInit(eid isa.EID) Verdict {
	e, ok := o.enclaves[eid]
	if !ok || e.Initialized {
		return VGP
	}
	e.Initialized = true
	return VOK
}

// --- association (NASSO) ---

// NASSO associates inner with outer, mirroring the instruction's structural
// checks: both initialized, not already associated, single-outer unless the
// lattice extension is on, no cycle, depth bound, no ELRANGE overlap with
// the outer or any of its transitive outers. Certificate checks are assumed
// satisfied (the harness signs all pairs mutually).
func (o *Oracle) NASSO(inner, outer isa.EID) Verdict {
	in, okI := o.enclaves[inner]
	out, okO := o.enclaves[outer]
	if !okI || !okO || inner == outer {
		return VGP
	}
	if !in.Initialized || !out.Initialized {
		return VGP
	}
	for _, oe := range in.Outers {
		if oe == outer {
			return VGP // already associated
		}
	}
	if len(in.Outers) > 0 && !o.cfg.MultiOuter {
		return VGP
	}
	for _, anc := range o.outerClosure(out) {
		if anc.EID == inner {
			return VGP // cycle
		}
	}
	if o.cfg.MaxDepth > 0 {
		if o.depthOf(out)+o.innerHeight(in, map[isa.EID]bool{}) > o.cfg.MaxDepth {
			return VGP
		}
	}
	for _, cand := range append(o.outerClosure(out), out) {
		if in.Base < cand.Base+cand.Size && cand.Base < in.Base+in.Size {
			return VGP // ELRANGE overlap
		}
	}
	// Quiescence: no core may be executing the inner or any of its
	// transitive inners — their accessible-region set would change under a
	// TLB filled against the old lattice (see core/nasso.go).
	for _, aff := range append(o.innerClosure(in), in) {
		for _, c := range o.cores {
			if c.In && c.Cur.EID == aff.EID {
				return VGP
			}
		}
	}
	in.Outers = append(in.Outers, outer)
	out.Inners = append(out.Inners, inner)
	return VOK
}

// innerClosure returns the transitive inner enclaves of e (excluding e).
func (o *Oracle) innerClosure(e *Enclave) []*Enclave {
	var out []*Enclave
	seen := map[isa.EID]bool{e.EID: true}
	frontier := []*Enclave{e}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, ie := range next.Inners {
			if seen[ie] {
				continue
			}
			seen[ie] = true
			io, ok := o.enclaves[ie]
			if !ok {
				continue
			}
			out = append(out, io)
			frontier = append(frontier, io)
		}
	}
	return out
}

// depthOf returns the nesting depth of e: 1 for a top-level enclave, the
// longest outer path otherwise.
func (o *Oracle) depthOf(e *Enclave) int {
	return o.depthOfRec(e, map[isa.EID]bool{})
}

func (o *Oracle) depthOfRec(e *Enclave, visiting map[isa.EID]bool) int {
	if visiting[e.EID] {
		return 1
	}
	visiting[e.EID] = true
	defer delete(visiting, e.EID)
	max := 0
	for _, oe := range e.Outers {
		if oo, ok := o.enclaves[oe]; ok {
			if d := o.depthOfRec(oo, visiting); d > max {
				max = d
			}
		}
	}
	return max + 1
}

// innerHeight returns the height of the inner tree rooted at e (1 for a
// leaf).
func (o *Oracle) innerHeight(e *Enclave, visiting map[isa.EID]bool) int {
	if visiting[e.EID] {
		return 1
	}
	visiting[e.EID] = true
	defer delete(visiting, e.EID)
	max := 0
	for _, ie := range e.Inners {
		if in, ok := o.enclaves[ie]; ok {
			if h := o.innerHeight(in, visiting); h > max {
				max = h
			}
		}
	}
	return max + 1
}

// --- transitions ---

func (o *Oracle) tcs(f Frame) *TCS {
	e := o.enclaves[f.EID]
	if e == nil || f.TCS < 0 || f.TCS >= len(e.TCS) {
		return nil
	}
	return e.TCS[f.TCS]
}

func (o *Oracle) flush(core int) {
	clear(o.cores[core].TLB)
}

// EEnter models EENTER. With resume=false the TCS must be idle; with
// resume=true it must be claimed (the ocall-return path).
func (o *Oracle) EEnter(core int, eid isa.EID, tcsIdx int, resume bool) Verdict {
	c := o.cores[core]
	if c.In {
		return VGP
	}
	e, ok := o.enclaves[eid]
	if !ok || !e.Initialized {
		return VGP
	}
	t := o.tcs(Frame{eid, tcsIdx})
	if t == nil {
		return VGP
	}
	if resume {
		if !t.Busy {
			return VGP
		}
	} else {
		if t.Busy || t.Ret != nil {
			return VGP
		}
		t.Busy = true
	}
	o.flush(core)
	c.In = true
	c.Cur = Frame{eid, tcsIdx}
	return VOK
}

// EExit models EEXIT. release frees the TCS (final ecall return); a release
// exit with a suspended nested frame is a #GP.
func (o *Oracle) EExit(core int, release bool) Verdict {
	c := o.cores[core]
	if !c.In {
		return VGP
	}
	t := o.tcs(c.Cur)
	if release {
		if t.Ret != nil {
			return VGP
		}
		t.Busy = false
	}
	o.flush(core)
	c.In = false
	return VOK
}

// AEX models an asynchronous exit: the current frame is saved into the TCS's
// state-save area and the core drops to non-enclave mode.
func (o *Oracle) AEX(core int) Verdict {
	c := o.cores[core]
	if !c.In {
		return VGP
	}
	t := o.tcs(c.Cur)
	cur := c.Cur
	t.SSA = &cur
	o.flush(core)
	c.In = false
	return VOK
}

// EResume models ERESUME through the given TCS.
func (o *Oracle) EResume(core int, eid isa.EID, tcsIdx int) Verdict {
	c := o.cores[core]
	if c.In {
		return VGP
	}
	t := o.tcs(Frame{eid, tcsIdx})
	if t == nil || t.SSA == nil {
		return VGP
	}
	f := *t.SSA
	t.SSA = nil
	o.flush(core)
	c.In = true
	c.Cur = f
	return VOK
}

// NEEnter models NEENTER: a direct transition to an associated enclave
// (inner of the current one, or one of its outers), claiming the target TCS
// and suspending the current frame into it.
func (o *Oracle) NEEnter(core int, target isa.EID, tcsIdx int) Verdict {
	c := o.cores[core]
	if !c.In {
		return VGP
	}
	cur := o.enclaves[c.Cur.EID]
	tgt, ok := o.enclaves[target]
	if !ok || !tgt.Initialized {
		return VGP
	}
	assoc := false
	for _, ie := range cur.Inners {
		if ie == target {
			assoc = true
		}
	}
	for _, oe := range cur.Outers {
		if oe == target {
			assoc = true
		}
	}
	if !assoc {
		return VGP
	}
	t := o.tcs(Frame{target, tcsIdx})
	if t == nil || t.Busy {
		return VGP
	}
	prev := c.Cur
	t.Ret = &prev
	t.Busy = true
	o.flush(core)
	c.Cur = Frame{target, tcsIdx}
	return VOK
}

// NEExit models NEEXIT: return to the suspended outer frame, releasing the
// inner TCS.
func (o *Oracle) NEExit(core int) Verdict {
	c := o.cores[core]
	if !c.In {
		return VGP
	}
	t := o.tcs(c.Cur)
	if t == nil || t.Ret == nil {
		return VGP
	}
	f := *t.Ret
	t.Ret = nil
	t.Busy = false
	o.flush(core)
	c.Cur = f
	return VOK
}

// ExecutingEIDs returns the enclaves with live context on the core: the
// current one plus every suspended outer frame, innermost first.
func (o *Oracle) ExecutingEIDs(core int) []isa.EID {
	c := o.cores[core]
	if !c.In {
		return nil
	}
	out := []isa.EID{c.Cur.EID}
	for t := o.tcs(c.Cur); t != nil && t.Ret != nil; {
		out = append(out, t.Ret.EID)
		t = o.tcs(*t.Ret)
	}
	return out
}

// --- access validation (the Figure-6 reference flow) ---

// Access predicts the verdict for a memory access, consulting and (on
// success) filling the oracle's TLB, mirroring the machine's TLB-miss
// handling: a hit whose permissions admit the access skips validation.
func (o *Oracle) Access(core int, vaddr uint64, pte PTE, op isa.Access) Verdict {
	c := o.cores[core]
	vpn := vaddr >> isa.PageShift
	if e, ok := c.TLB[vpn]; ok && e.Perms.Allows(op) {
		return VOK
	}
	v, entry := o.Validate(core, vaddr, pte, op)
	if v == VOK {
		c.TLB[vpn] = entry
	}
	return v
}

// Validate is the pure Figure-6 access-validation flow: no TLB consulted,
// no state changed. It returns the verdict and, for VOK, the TLB entry that
// would be inserted.
func (o *Oracle) Validate(core int, vaddr uint64, pte PTE, op isa.Access) (Verdict, TLBEntry) {
	c := o.cores[core]
	none := TLBEntry{}
	if !pte.Mapped || !pte.Present {
		return VPF, none
	}
	if !pte.Perms.Allows(op) {
		return VPF, none
	}
	pa := pte.PPN << isa.PageShift
	vpn := vaddr >> isa.PageShift

	// Non-enclave execution never touches PRM.
	if !c.In {
		if o.inPRM(pa) {
			return VAbort, none
		}
		return VOK, TLBEntry{PPN: pte.PPN, Perms: pte.Perms}
	}

	s := o.enclaves[c.Cur.EID]

	// Physical page inside PRM: the EPCM entry decides.
	if o.inPRM(pa) {
		ent := o.pageAt(pa)
		if ent == nil || !ent.Valid {
			return VAbort, none
		}
		if ent.Blocked {
			return VPF, none
		}
		if ent.Type != isa.PTReg {
			return VAbort, none
		}
		if ent.Owner == s.EID {
			if ent.Vaddr != vaddr&^uint64(isa.PageMask) {
				return VAbort, none
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return VPF, none
			}
			return VOK, TLBEntry{PPN: pte.PPN, Perms: eff}
		}
		// Nested branch: re-validate against the outer closure.
		for _, outer := range o.outerClosure(s) {
			if ent.Owner != outer.EID {
				continue
			}
			if ent.Vaddr != vaddr&^uint64(isa.PageMask) || !outer.contains(vpn) {
				return VAbort, none
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return VPF, none
			}
			return VOK, TLBEntry{PPN: pte.PPN, Perms: eff}
		}
		// Peer inner, unrelated enclave, or attacker mapping.
		return VAbort, none
	}

	// Physical page outside PRM.
	if s.contains(vpn) {
		return VPF, none // ELRANGE page not backed by EPC (evicted)
	}
	for _, outer := range o.outerClosure(s) {
		if outer.contains(vpn) {
			return VPF, none // outer ELRANGE page not backed (evicted)
		}
	}
	perms := pte.Perms &^ isa.PermX
	if !perms.Allows(op) {
		return VPF, none
	}
	return VOK, TLBEntry{PPN: pte.PPN, Perms: perms}
}

// --- paging ---

// EBlock marks an EPC page blocked for eviction.
func (o *Oracle) EBlock(page int) Verdict {
	p := o.pages[page]
	if p == nil || !p.Valid {
		return VGP
	}
	if p.Type == isa.PTSECS {
		return VGP
	}
	p.Blocked = true
	return VOK
}

// ShootdownSet returns the cores whose TLBs may hold stale translations for
// enclave eid: those with live context in eid itself or in any enclave whose
// outer closure contains eid (the §IV-E inner-aware tracking).
func (o *Oracle) ShootdownSet(eid isa.EID) []int {
	var out []int
	for i := range o.cores {
		if o.coreTouches(i, eid) {
			out = append(out, i)
		}
	}
	return out
}

func (o *Oracle) coreTouches(core int, eid isa.EID) bool {
	for _, e := range o.ExecutingEIDs(core) {
		if e == eid {
			return true
		}
		if s, ok := o.enclaves[e]; ok {
			for _, anc := range o.outerClosure(s) {
				if anc.EID == eid {
					return true
				}
			}
		}
	}
	return false
}

// Shootdown flushes core i's TLB (the shootdown IPI's effect).
func (o *Oracle) Shootdown(core int) { o.flush(core) }

// EWB evicts a blocked page: it must be valid, blocked, and unreferenced by
// every TLB in the system — the machine's conservative check that catches a
// broken shootdown protocol. On VOK the EPCM entry is freed.
func (o *Oracle) EWB(page int) Verdict {
	p := o.pages[page]
	if p == nil || !p.Valid {
		return VGP
	}
	if !p.Blocked {
		return VGP
	}
	ppn := o.pageAddr(page) >> isa.PageShift
	for _, c := range o.cores {
		for _, e := range c.TLB {
			if e.PPN == ppn {
				return VGP // incomplete shootdown
			}
		}
	}
	key := BlobKey{Owner: p.Owner, Vaddr: p.Vaddr}
	o.blobVer[key]++
	o.blobOut[key] = true
	delete(o.pages, page)
	return VOK
}

// ELD reloads an evicted page at the EPC index the machine allocated,
// auditing the kernel's claim against the oracle's own freshness ledger: the
// presented version must be the current counter for its lane AND that blob
// must still be outstanding. A kernel replaying a stale or already-consumed
// blob gets VGP no matter what it claims — the oracle cannot be fooled by
// kernel lies because it never reads kernel state.
func (o *Oracle) ELD(owner isa.EID, page int, vaddr uint64, t isa.PageType, perms isa.Perm, version uint64) Verdict {
	key := BlobKey{Owner: owner, Vaddr: vaddr}
	if version != o.blobVer[key] || !o.blobOut[key] {
		return VGP // replayed or double-loaded blob
	}
	if _, ok := o.enclaves[owner]; !ok {
		return VGP
	}
	o.blobOut[key] = false
	o.pages[page] = &Page{Valid: true, Type: t, Owner: owner, Vaddr: vaddr, Perms: perms}
	return VOK
}

// BlobVersion reports the oracle's current freshness counter and outstanding
// flag for a paging lane (harness introspection).
func (o *Oracle) BlobVersion(owner isa.EID, vaddr uint64) (uint64, bool) {
	key := BlobKey{Owner: owner, Vaddr: vaddr}
	return o.blobVer[key], o.blobOut[key]
}

// --- snapshotting (for divergence reports) ---

// DumpTLB renders core i's TLB deterministically, for divergence messages.
func (o *Oracle) DumpTLB(i int) string {
	c := o.cores[i]
	vpns := make([]uint64, 0, len(c.TLB))
	for vpn := range c.TLB {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(a, b int) bool { return vpns[a] < vpns[b] })
	s := ""
	for _, vpn := range vpns {
		e := c.TLB[vpn]
		s += fmt.Sprintf(" %#x->%#x(%v)", vpn, e.PPN, e.Perms)
	}
	if s == "" {
		s = " <empty>"
	}
	return s
}
