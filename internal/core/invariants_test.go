package core_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

// This file property-tests the paper's §VII-A security invariants: after
// ANY sequence of enclave transitions, memory accesses, kernel page-table
// attacks, and page evictions, every TLB in the machine satisfies:
//
//  1. Out of enclave mode, no TLB entry maps a PRM physical page.
//  2. In enclave mode, a vaddr outside the enclave's ELRANGE (and outside
//     every associated outer's ELRANGE) never maps to PRM.
//  3. In enclave mode, a vaddr inside ELRANGE maps only through an EPCM
//     entry owned by this enclave and recorded at exactly this vaddr.
//  4. (nested) In enclave mode, a vaddr inside an outer enclave's ELRANGE
//     maps only through an EPCM entry owned by that outer and recorded at
//     exactly this vaddr.

// auditInvariants walks every core's TLB and checks the four invariants.
func auditInvariants(m *sgx.Machine) error {
	for _, c := range m.Cores() {
		cur := c.Current()
		for _, e := range c.TLB.Entries() {
			pa := isa.PAddr(e.PPN << isa.PageShift)
			v := isa.VAddr(e.VPN << isa.PageShift)
			inPRM := m.DRAM.PageInPRM(pa)
			if cur == nil {
				if inPRM {
					return fmt.Errorf("inv1: core %d out of enclave maps %#x -> PRM %#x",
						c.ID, uint64(v), uint64(pa))
				}
				continue
			}
			// Identify which protection region the vaddr claims.
			owner := regionOwner(m, cur, e.VPN)
			if owner == nil {
				if inPRM {
					return fmt.Errorf("inv2: core %d enclave %d maps out-of-ELRANGE %#x -> PRM",
						c.ID, cur.EID, uint64(v))
				}
				continue
			}
			if !inPRM {
				return fmt.Errorf("inv3/4: core %d enclave %d maps ELRANGE %#x outside PRM",
					c.ID, cur.EID, uint64(v))
			}
			ent, ok := m.EPC.EntryAt(pa)
			if !ok || !ent.Valid {
				return fmt.Errorf("inv3/4: core %d maps %#x to invalid EPC page", c.ID, uint64(v))
			}
			if ent.Owner != owner.EID {
				return fmt.Errorf("inv3/4: core %d enclave %d maps %#x to EPC of enclave %d, region owner %d",
					c.ID, cur.EID, uint64(v), ent.Owner, owner.EID)
			}
			if ent.Vaddr != v {
				return fmt.Errorf("inv3/4: core %d maps %#x to EPC page recorded at %#x",
					c.ID, uint64(v), uint64(ent.Vaddr))
			}
		}
	}
	return nil
}

// regionOwner returns the enclave whose ELRANGE contains the vpn: the
// current enclave, one of its transitive outers, or nil.
func regionOwner(m *sgx.Machine, cur *sgx.SECS, vpn uint64) *sgx.SECS {
	if cur.ContainsVPN(vpn) {
		return cur
	}
	frontier := append([]isa.EID(nil), cur.Nested.OuterEIDs...)
	seen := map[isa.EID]bool{}
	for len(frontier) > 0 {
		eid := frontier[0]
		frontier = frontier[1:]
		if seen[eid] {
			continue
		}
		seen[eid] = true
		o, ok := m.ResolveEID(eid)
		if !ok {
			continue
		}
		if o.ContainsVPN(vpn) {
			return o
		}
		frontier = append(frontier, o.Nested.OuterEIDs...)
	}
	return nil
}

// fuzzStep is one randomized operation.
type fuzzStep struct {
	Kind  uint8 // %5: 0 access, 1 transition-up, 2 transition-down, 3 remap, 4 evict
	Addr  uint8 // selects a target address from the pool
	Frame uint8 // selects a victim frame for remaps
	Write bool
}

func TestSecurityInvariantsUnderRandomOperations(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	innerImg := sdk.NewImage("inner", 0x1000_0000, sdk.DefaultLayout())
	outerImg := sdk.NewImage("outer", 0x2000_0000, sdk.DefaultLayout())
	si := innerImg.Sign(measure.MustNewAuthor(), []measure.Digest{outerImg.Measure()}, nil)
	so := outerImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	outer, err := r.host.Load(so)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := r.host.Load(si)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}
	unsec, err := r.host.Proc.Mmap(4*isa.PageSize, isa.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	c := r.m.Core(0)
	if err := r.k.Schedule(c, r.host.Proc); err != nil {
		t.Fatal(err)
	}

	// Address pool: enclave heaps, code, TCS pages, unsecure, unmapped.
	pool := []isa.VAddr{
		innerImg.HeapBase(), innerImg.HeapBase() + 0x1800, innerImg.Base,
		outerImg.HeapBase(), outerImg.HeapBase() + 0x2300, outerImg.Base,
		unsec, unsec + isa.PageSize,
		0x7777_0000, // unmapped
	}
	// Frame pool for kernel remap attacks: EPC frames of both enclaves and
	// an unsecure frame.
	framePool := func() []isa.PAddr {
		var out []isa.PAddr
		for _, eid := range []isa.EID{inner.SECS().EID, outer.SECS().EID} {
			pages := r.m.EPC.PagesOf(eid)
			for _, p := range pages[:min(3, len(pages))] {
				out = append(out, r.m.EPC.AddrOf(p))
			}
		}
		if pa, ok := r.host.Proc.PageTable().Translate(unsec); ok {
			out = append(out, pa)
		}
		return out
	}()

	innerTCS := innerImg.HeapBase() + isa.VAddr(innerImg.HeapSize())
	outerTCS := outerImg.HeapBase() + isa.VAddr(outerImg.HeapSize())

	// depth: 0 untrusted, 1 in outer, 2 in inner (nested).
	depth := 0

	f := func(steps []fuzzStep) bool {
		for _, st := range steps {
			switch st.Kind % 5 {
			case 0: // memory access from the current context
				v := pool[int(st.Addr)%len(pool)] + isa.VAddr(st.Frame%4)*8
				if st.Write {
					_ = c.Write(v, []byte{0xAB, 1, 2})
				} else {
					_, _ = c.Read(v, 24)
				}
			case 1: // go one level deeper
				switch depth {
				case 0:
					if err := r.m.EEnter(c, outer.SECS(), outerTCS, false); err == nil {
						depth = 1
					}
				case 1:
					if err := r.ext.NEENTER(c, inner.SECS(), innerTCS); err == nil {
						depth = 2
					}
				}
			case 2: // go one level up
				switch depth {
				case 1:
					if err := r.m.EExit(c, true); err == nil {
						depth = 0
					}
				case 2:
					if err := r.ext.NEEXIT(c); err == nil {
						depth = 1
					}
				}
			case 3: // kernel remap attack
				v := pool[int(st.Addr)%len(pool)]
				pa := framePool[int(st.Frame)%len(framePool)]
				r.host.Proc.MapFixed(v.PageBase(), pa.PageBase(), isa.PermRW)
			case 4: // evict an enclave page (requires untrusted context on
				// this single-threaded driver, else shootdown would flush
				// our own live context mid-run, which is fine too)
				target := outer
				if st.Addr%2 == 0 {
					target = inner
				}
				hp := target.Image().HeapBase() + isa.VAddr(st.Frame%4)*isa.PageSize
				_ = r.k.Driver.EvictPage(r.host.Proc, target.SECS(), hp)
			}
			if err := auditInvariants(r.m); err != nil {
				t.Logf("violation after step %+v (depth %d): %v", st, depth, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
