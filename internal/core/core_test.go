package core_test

import (
	"bytes"
	"strings"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

type rig struct {
	m    *sgx.Machine
	k    *kos.Kernel
	ext  *core.Extension
	host *sdk.Host
}

func newRig(t *testing.T, cfg core.Config) *rig {
	t.Helper()
	m := sgx.MustNew(sgx.SmallConfig())
	ext := core.Enable(m, cfg)
	k := kos.New(m)
	return &rig{m: m, k: k, ext: ext, host: sdk.NewHost(k, ext)}
}

// loadPair builds, signs (with mutual expectations) and loads an inner/outer
// pair plus associates them.
func loadPair(t *testing.T, r *rig, innerBase, outerBase isa.VAddr) (inner, outer *sdk.Enclave) {
	t.Helper()
	innerImg := sdk.NewImage("inner", innerBase, sdk.DefaultLayout())
	outerImg := sdk.NewImage("outer", outerBase, sdk.DefaultLayout())
	registerProbes(innerImg)
	registerProbes(outerImg)
	si := innerImg.Sign(measure.MustNewAuthor(), []measure.Digest{outerImg.Measure()}, nil)
	so := outerImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	var err error
	if outer, err = r.host.Load(so); err != nil {
		t.Fatal(err)
	}
	if inner, err = r.host.Load(si); err != nil {
		t.Fatal(err)
	}
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatalf("associate: %v", err)
	}
	return inner, outer
}

// registerProbes adds generic read/write entry points used across tests.
func registerProbes(img *sdk.Image) {
	img.RegisterECall("write", func(env *sdk.Env, args []byte) ([]byte, error) {
		// args: 8-byte little-endian vaddr followed by data.
		v := isa.VAddr(le64(args[:8]))
		return nil, env.Write(v, args[8:])
	})
	img.RegisterECall("read", func(env *sdk.Env, args []byte) ([]byte, error) {
		// args: 8-byte vaddr, 8-byte length.
		return env.Read(isa.VAddr(le64(args[:8])), int(le64(args[8:16])))
	})
}

func le64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}

func putLE64(x uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func readArgs(v isa.VAddr, n int) []byte {
	return append(putLE64(uint64(v)), putLE64(uint64(n))...)
}

func writeArgs(v isa.VAddr, data []byte) []byte {
	return append(putLE64(uint64(v)), data...)
}

func TestNASSORequiresInitializedEnclaves(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	s1, err := r.m.ECreate(0x100000, isa.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.m.ECreate(0x200000, isa.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ext.NASSO(s1, s2); err == nil {
		t.Fatal("NASSO of uninitialized enclaves accepted")
	}
	if err := r.ext.NASSO(nil, s2); err == nil {
		t.Fatal("NASSO with nil enclave accepted")
	}
	if err := r.ext.NASSO(s1, s1); err == nil {
		t.Fatal("self-nesting accepted")
	}
}

func TestNASSODoubleAssociationRejected(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	err := r.ext.NASSO(inner.SECS(), outer.SECS())
	if err == nil || !strings.Contains(err.Error(), "already associated") {
		t.Fatalf("re-association: %v", err)
	}
}

func TestNASSOSingleOuterModel(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	innerImg := sdk.NewImage("inner", 0x1000_0000, sdk.DefaultLayout())
	o1Img := sdk.NewImage("o1", 0x2000_0000, sdk.DefaultLayout())
	o2Img := sdk.NewImage("o2", 0x3000_0000, sdk.DefaultLayout())
	si := innerImg.Sign(measure.MustNewAuthor(),
		[]measure.Digest{o1Img.Measure(), o2Img.Measure()}, nil)
	so1 := o1Img.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	so2 := o2Img.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	inner, _ := r.host.Load(si)
	o1, _ := r.host.Load(so1)
	o2, _ := r.host.Load(so2)
	if err := r.host.Associate(inner, o1); err != nil {
		t.Fatal(err)
	}
	err := r.host.Associate(inner, o2)
	if err == nil || !strings.Contains(err.Error(), "single-outer") {
		t.Fatalf("second outer in single-outer model: %v", err)
	}
}

func TestNASSOCycleRejected(t *testing.T) {
	// Unlimited depth so the depth check doesn't trip first.
	r := newRig(t, core.Config{})
	aImg := sdk.NewImage("a", 0x1000_0000, sdk.DefaultLayout())
	bImg := sdk.NewImage("b", 0x2000_0000, sdk.DefaultLayout())
	// Sign both directions so only the cycle check can refuse.
	sa := aImg.Sign(measure.MustNewAuthor(), []measure.Digest{bImg.Measure()}, []measure.Digest{bImg.Measure()})
	sb := bImg.Sign(measure.MustNewAuthor(), []measure.Digest{aImg.Measure()}, []measure.Digest{aImg.Measure()})
	a, err := r.host.Load(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.host.Load(sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.host.Associate(a, b); err != nil { // a inner of b
		t.Fatal(err)
	}
	err = r.host.Associate(b, a) // b inner of a: cycle
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle association: %v", err)
	}
}

func TestNASSODepthLimit(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	aImg := sdk.NewImage("a", 0x1000_0000, sdk.DefaultLayout())
	bImg := sdk.NewImage("b", 0x2000_0000, sdk.DefaultLayout())
	cImg := sdk.NewImage("c", 0x3000_0000, sdk.DefaultLayout())
	sa := aImg.Sign(measure.MustNewAuthor(), []measure.Digest{bImg.Measure()}, nil)
	sb := bImg.Sign(measure.MustNewAuthor(), []measure.Digest{cImg.Measure()}, []measure.Digest{aImg.Measure()})
	sc := cImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{bImg.Measure()})
	a, _ := r.host.Load(sa)
	b, _ := r.host.Load(sb)
	c, _ := r.host.Load(sc)
	if err := r.host.Associate(a, b); err != nil {
		t.Fatal(err)
	}
	err := r.host.Associate(b, c) // would make a 3-deep chain
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("over-deep association: %v", err)
	}
}

func TestNASSOOverlappingELRANGERejected(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	innerImg := sdk.NewImage("inner", 0x1000_0000, sdk.DefaultLayout())
	outerImg := sdk.NewImage("outer", 0x1000_0000, sdk.DefaultLayout()) // same base
	si := innerImg.Sign(measure.MustNewAuthor(), []measure.Digest{outerImg.Measure()}, nil)
	so := outerImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	// Load into two separate processes so the identical ELRANGEs can both
	// exist (the pages map at the same vaddr in different page tables).
	inner, err := r.host.Load(si)
	if err != nil {
		t.Fatal(err)
	}
	host2 := sdk.NewHost(r.k, r.ext)
	outer, err := host2.Load(so)
	if err != nil {
		t.Fatal(err)
	}
	err = r.ext.NASSO(inner.SECS(), outer.SECS())
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlapping ELRANGE association: %v", err)
	}
}

func TestMultiLevelNesting(t *testing.T) {
	r := newRig(t, core.Config{}) // unlimited depth
	// C is outermost, B inside C, A inside B.
	aImg := sdk.NewImage("a", 0x1000_0000, sdk.DefaultLayout())
	bImg := sdk.NewImage("b", 0x2000_0000, sdk.DefaultLayout())
	cImg := sdk.NewImage("c", 0x3000_0000, sdk.DefaultLayout())
	registerProbes(aImg)
	registerProbes(bImg)
	registerProbes(cImg)
	sa := aImg.Sign(measure.MustNewAuthor(), []measure.Digest{bImg.Measure()}, nil)
	sb := bImg.Sign(measure.MustNewAuthor(), []measure.Digest{cImg.Measure()}, []measure.Digest{aImg.Measure()})
	sc := cImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{bImg.Measure()})
	a, _ := r.host.Load(sa)
	b, _ := r.host.Load(sb)
	c, _ := r.host.Load(sc)
	if err := r.host.Associate(b, c); err != nil {
		t.Fatal(err)
	}
	if err := r.host.Associate(a, b); err != nil {
		t.Fatal(err)
	}

	// Plant data in C's heap.
	secret := []byte("outermost-data-readable-by-all-inners")
	addr := cImg.HeapBase()
	if _, err := c.ECall("write", writeArgs(addr, secret)); err != nil {
		t.Fatal(err)
	}

	// A (two levels down) reads it through the chain traversal.
	got, err := a.ECall("read", readArgs(addr, len(secret)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("innermost read of outermost memory = %q", got)
	}
	if r.m.Rec.Get(trace.EvNestedValidate) == 0 {
		t.Fatal("nested validation branch never taken")
	}

	// The reverse direction stays blocked: C cannot read A's memory.
	aSecret := []byte("innermost-secret")
	if _, err := a.ECall("write", writeArgs(aImg.HeapBase(), aSecret)); err != nil {
		t.Fatal(err)
	}
	spy, err := c.ECall("read", readArgs(aImg.HeapBase(), len(aSecret)))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(spy, aSecret[:8]) {
		t.Fatal("outermost enclave read innermost memory")
	}
}

func TestMultipleOuterEnclaves(t *testing.T) {
	r := newRig(t, core.Config{MaxDepth: 2, AllowMultipleOuters: true})
	innerImg := sdk.NewImage("inner", 0x1000_0000, sdk.DefaultLayout())
	o1Img := sdk.NewImage("o1", 0x2000_0000, sdk.DefaultLayout())
	o2Img := sdk.NewImage("o2", 0x3000_0000, sdk.DefaultLayout())
	registerProbes(innerImg)
	registerProbes(o1Img)
	registerProbes(o2Img)
	si := innerImg.Sign(measure.MustNewAuthor(),
		[]measure.Digest{o1Img.Measure(), o2Img.Measure()}, nil)
	so1 := o1Img.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	so2 := o2Img.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	inner, _ := r.host.Load(si)
	o1, _ := r.host.Load(so1)
	o2, _ := r.host.Load(so2)
	if err := r.host.Associate(inner, o1); err != nil {
		t.Fatal(err)
	}
	if err := r.host.Associate(inner, o2); err != nil {
		t.Fatalf("second outer with lattice extension: %v", err)
	}

	// The inner enclave reads both outer enclaves' memory — two private
	// channels.
	d1 := []byte("channel-one-data")
	d2 := []byte("channel-two-data")
	if _, err := o1.ECall("write", writeArgs(o1Img.HeapBase(), d1)); err != nil {
		t.Fatal(err)
	}
	if _, err := o2.ECall("write", writeArgs(o2Img.HeapBase(), d2)); err != nil {
		t.Fatal(err)
	}
	g1, err := inner.ECall("read", readArgs(o1Img.HeapBase(), len(d1)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := inner.ECall("read", readArgs(o2Img.HeapBase(), len(d2)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1, d1) || !bytes.Equal(g2, d2) {
		t.Fatalf("multi-outer reads: %q / %q", g1, g2)
	}

	// The two outer enclaves remain mutually isolated.
	spy, err := o1.ECall("read", readArgs(o2Img.HeapBase(), len(d2)))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(spy, d2[:8]) {
		t.Fatal("outer enclaves can read each other through the shared inner")
	}
}

func TestNEENTERChecks(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	c := r.m.Core(0)
	if err := r.k.Schedule(c, r.host.Proc); err != nil {
		t.Fatal(err)
	}
	// NEENTER outside enclave mode is a #GP.
	tcsV := inner.Image().HeapBase() + isa.VAddr(inner.Image().HeapSize())
	if err := r.ext.NEENTER(c, inner.SECS(), tcsV); err == nil {
		t.Fatal("NEENTER outside enclave accepted")
	}
	// NEEXIT outside enclave mode is a #GP.
	if err := r.ext.NEEXIT(c); err == nil {
		t.Fatal("NEEXIT outside enclave accepted")
	}
	// An unrelated enclave is never a valid NEENTER target, in either
	// direction.
	strangerImg := sdk.NewImage("stranger", 0x6000_0000, sdk.DefaultLayout())
	stranger, err := r.host.Load(strangerImg.Sign(measure.MustNewAuthor(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	outerImg := outer.Image()
	inner.Image().RegisterECall("bad_neenter", func(env *sdk.Env, args []byte) ([]byte, error) {
		strangerTCS := strangerImg.HeapBase() + isa.VAddr(strangerImg.HeapSize())
		if err := r.ext.NEENTER(env.C, stranger.SECS(), strangerTCS); err == nil {
			t.Error("NEENTER into unassociated enclave accepted")
		}
		// NEEXIT from a top-level entry is a #GP.
		if err := r.ext.NEEXIT(env.C); err == nil {
			t.Error("NEEXIT without nested frame accepted")
		}
		// Upward NEENTER into the associated outer IS valid (it carries no
		// new authority — the inner already reads all outer memory).
		outerTCS := outerImg.HeapBase() + isa.VAddr(outerImg.HeapSize())
		if err := r.ext.NEENTER(env.C, outer.SECS(), outerTCS); err != nil {
			t.Errorf("upward NEENTER into associated outer rejected: %v", err)
		} else if err := r.ext.NEEXIT(env.C); err != nil {
			t.Errorf("NEEXIT back from upward entry: %v", err)
		}
		return nil, nil
	})
	if _, err := inner.ECall("bad_neenter", nil); err != nil {
		t.Fatal(err)
	}
}

// TestNestedTrackerRequiredForOuterEviction demonstrates §IV-E: a core
// running an inner enclave holds TLB translations for outer-enclave pages.
// The baseline thread tracker misses that core, the shootdown protocol
// under-flushes, and the hardware refuses EWB; the nested tracker finds it.
func TestNestedTrackerRequiredForOuterEviction(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	outerHeap := outer.Image().HeapBase()

	// Seed the outer page so it exists, and flush context.
	if _, err := outer.ECall("write", writeArgs(outerHeap, []byte("shared"))); err != nil {
		t.Fatal(err)
	}

	// Enter the inner enclave DIRECTLY from untrusted code (EENTER, not
	// NEENTER) and read outer memory, leaving the translation live in this
	// core's TLB; block inside the call so the context stays live.
	entered := make(chan struct{})
	release := make(chan struct{})
	inner.Image().RegisterECall("camp", func(env *sdk.Env, args []byte) ([]byte, error) {
		if _, err := env.Read(outerHeap, 6); err != nil {
			return nil, err
		}
		close(entered)
		<-release
		return nil, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := inner.ECall("camp", nil)
		done <- err
	}()
	<-entered

	// With the BASELINE tracker the eviction protocol misses the camping
	// core: ETRACK reports nobody (no core has live context in the *outer*
	// enclave), so EWB sees the stale translation and refuses.
	r.m.Tracker = sgx.BaselineTracker{}
	err := r.k.Driver.EvictPage(r.host.Proc, outer.SECS(), outerHeap)
	if err == nil {
		t.Fatal("outer-page eviction succeeded despite a stale inner-core translation")
	}

	// With the nested-aware tracker the camping core is shot down and the
	// eviction completes.
	r.m.Tracker = core.TrackerExt{}
	if err := r.k.Driver.EvictPage(r.host.Proc, outer.SECS(), outerHeap); err != nil {
		t.Fatalf("eviction with nested tracker: %v", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("camping ecall: %v", err)
	}
}

func TestValidationDepthCost(t *testing.T) {
	// §VIII: deeper nesting only increases validation time. Compare the
	// validate-step count for an inner access to outer memory at depth 2
	// vs depth 3.
	steps := func(depth int) int64 {
		r := newRig(t, core.Config{})
		imgs := make([]*sdk.Image, depth)
		encls := make([]*sdk.Enclave, depth)
		authors := make([]*measure.Author, depth)
		for i := range imgs {
			imgs[i] = sdk.NewImage(string(rune('a'+i)), isa.VAddr(0x1000_0000*(i+1)), sdk.DefaultLayout())
			registerProbes(imgs[i])
			authors[i] = measure.MustNewAuthor()
		}
		for i := range imgs {
			var outers, inners []measure.Digest
			if i+1 < depth {
				outers = append(outers, imgs[i+1].Measure())
			}
			if i > 0 {
				inners = append(inners, imgs[i-1].Measure())
			}
			si := imgs[i].Sign(authors[i], outers, inners)
			e, err := r.host.Load(si)
			if err != nil {
				t.Fatal(err)
			}
			encls[i] = e
		}
		for i := 0; i+1 < depth; i++ {
			if err := r.host.Associate(encls[i], encls[i+1]); err != nil {
				t.Fatal(err)
			}
		}
		target := imgs[depth-1].HeapBase()
		if _, err := encls[depth-1].ECall("write", writeArgs(target, []byte("x"))); err != nil {
			t.Fatal(err)
		}
		before := r.m.Rec.Get(trace.EvValidateStep)
		if _, err := encls[0].ECall("read", readArgs(target, 1)); err != nil {
			t.Fatal(err)
		}
		return r.m.Rec.Get(trace.EvValidateStep) - before
	}
	if s2, s3 := steps(2), steps(3); s3 <= s2 {
		t.Fatalf("deeper nesting did not cost more validation steps: depth2=%d depth3=%d", s2, s3)
	}
}
