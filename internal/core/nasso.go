package core

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
)

// NASSO is the kernel-privilege instruction that associates an inner/outer
// enclave pair after both are initialized (paper §IV-B, Figure 4).
//
// The instruction reads MRENCLAVE and MRSIGNER from each SECS and validates
// them against the expected values carried in the *other* enclave's signed
// file: the inner enclave's certificate must name the outer's measurement
// and vice versa. Only then are the SECS association fields updated. This is
// the mechanism behind "secure binding of inner and outer enclaves"
// (§VII-B): the kernel can invoke NASSO, but it cannot forge a pairing the
// enclave authors did not sign off on.
func (e *Extension) NASSO(inner, outer *sgx.SECS) error {
	return e.m.Atomically(func() error {
		if inner == nil || outer == nil {
			return isa.GP("NASSO: nil enclave")
		}
		if inner.EID == outer.EID {
			return isa.GP("NASSO: enclave %d cannot nest within itself", inner.EID)
		}
		if !inner.Initialized || !outer.Initialized {
			return isa.GP("NASSO: both enclaves must be initialized (EINIT) first")
		}
		if inner.Nested.HasOuter(outer.EID) {
			return isa.GP("NASSO: enclaves %d and %d already associated", inner.EID, outer.EID)
		}
		if len(inner.Nested.OuterEIDs) > 0 && !e.cfg.AllowMultipleOuters {
			return isa.GP("NASSO: inner enclave %d already has an outer enclave (single-outer model)", inner.EID)
		}

		// Mutual measurement validation against the signed enclave files.
		if inner.Cert == nil || !inner.Cert.AllowsOuter(outer.MRENCLAVE) {
			return isa.GP("NASSO: inner enclave %d's certificate does not authorize outer measurement %v",
				inner.EID, outer.MRENCLAVE)
		}
		if outer.Cert == nil || !outer.Cert.AllowsInner(inner.MRENCLAVE) {
			return isa.GP("NASSO: outer enclave %d's certificate does not authorize inner measurement %v",
				outer.EID, inner.MRENCLAVE)
		}

		// The association must not create a cycle: the outer's own outer
		// closure must not contain the inner.
		for _, o := range outerChain(e.m, outer) {
			if o.EID == inner.EID {
				return isa.GP("NASSO: association would create a nesting cycle")
			}
		}

		// Depth limit: the inner's subtree depth stacked on the outer's
		// depth must fit the configured maximum.
		if e.cfg.MaxDepth > 0 {
			if depthOf(e.m, outer)+innerHeight(e.m, inner) > e.cfg.MaxDepth {
				return isa.GP("NASSO: association exceeds maximum nesting depth %d", e.cfg.MaxDepth)
			}
		}

		// ELRANGEs of associated enclaves share one process address space
		// and must not overlap, or the validator's region tests would be
		// ambiguous. (Real deployments guarantee this by construction; the
		// instruction makes it explicit.)
		for _, o := range append(outerChain(e.m, outer), outer) {
			if rangesOverlap(inner, o) {
				return isa.GP("NASSO: ELRANGE of inner %d overlaps enclave %d", inner.EID, o.EID)
			}
		}

		// TLB-coherence quiescence: association changes the accessible-region
		// lattice for every core currently executing the inner enclave or one
		// of its transitive inners — a vaddr in the new outer's ELRANGE may
		// already be cached in such a core's TLB as an ordinary unsecure
		// mapping, which the association retroactively turns into an
		// enclave-range mapping outside the EPC. Like SGX's layout-change
		// instructions, NASSO requires the affected subtree to be quiescent.
		// (Found by exhaustive schedule exploration; regress_test.go
		// "nasso-while-inner-resident".)
		for _, aff := range append(innerClosure(e.m, inner), inner) {
			for _, c := range e.m.Cores() {
				if cur := c.Current(); cur != nil && cur.EID == aff.EID {
					return isa.GP("NASSO: core %d is executing enclave %d; inner subtree must be quiescent",
						c.ID, aff.EID)
				}
			}
		}

		inner.Nested.OuterEIDs = append(inner.Nested.OuterEIDs, outer.EID)
		outer.Nested.InnerEIDs = append(outer.Nested.InnerEIDs, inner.EID)
		// The association graph changed: invalidate every cached
		// outer-closure (see outerChain).
		e.m.BumpAssocEpoch()
		return nil
	})
}

// innerClosure returns the transitive inner enclaves of s (not including s
// itself). Machine lock held by caller.
func innerClosure(m *sgx.Machine, s *sgx.SECS) []*sgx.SECS {
	var out []*sgx.SECS
	seen := map[isa.EID]bool{s.EID: true}
	frontier := []*sgx.SECS{s}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, ie := range next.Nested.InnerEIDs {
			if seen[ie] {
				continue
			}
			seen[ie] = true
			in, ok := m.ResolveEID(ie)
			if !ok {
				continue
			}
			out = append(out, in)
			frontier = append(frontier, in)
		}
	}
	return out
}

// innerHeight returns the height of the inner-enclave tree rooted at s
// (1 if s has no inners). Machine lock held by caller.
func innerHeight(m *sgx.Machine, s *sgx.SECS) int {
	max := 0
	for _, ie := range s.Nested.InnerEIDs {
		if in, ok := m.ResolveEID(ie); ok {
			if h := innerHeight(m, in); h > max {
				max = h
			}
		}
	}
	return max + 1
}

func rangesOverlap(a, b *sgx.SECS) bool {
	aEnd := uint64(a.Base) + a.Size
	bEnd := uint64(b.Base) + b.Size
	return uint64(a.Base) < bEnd && uint64(b.Base) < aEnd
}
