package core

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// NEENTER transitions between associated enclaves without any detour
// through the untrusted world (paper §IV-B). Before the transition it
// checks that the destination enclave exists and is *associated* with the
// currently executing enclave — an inner enclave of it, or (upward) one of
// its outer enclaves — that the destination TCS is idle, and that the core
// is in enclave mode; any invalid invocation is a general-protection fault.
// On success the current context is saved to the destination TCS's reserved
// frame, the TLB is flushed, the TCS is marked busy, and control transfers
// to the destination's entry point.
//
// The downward direction (outer→inner) is the paper's base semantics. The
// upward direction (inner→outer) implements n_ocall for inner enclaves that
// were entered directly from untrusted code (the §VI-B deployments, where
// clients ecall into their per-user inner enclave and the inner calls the
// shared service): it grants the inner nothing new — the asymmetric
// permission model already gives it full access to the outer enclave's
// memory — while keeping the transition inside protected mode.
func (e *Extension) NEENTER(c *sgx.Core, target *sgx.SECS, tcsVaddr isa.VAddr) error {
	return e.m.Atomically(func() error {
		if !c.InEnclave() {
			return isa.GP("NEENTER: core %d not in enclave mode", c.ID)
		}
		cur := c.Current()
		if target == nil || !target.Initialized {
			return isa.GP("NEENTER: destination enclave does not exist or is uninitialized")
		}
		if e.m.PoisonedLocked(target.EID) {
			return isa.MC("NEENTER: enclave %d poisoned", target.EID)
		}
		if !cur.Nested.HasInner(target.EID) && !cur.Nested.HasOuter(target.EID) {
			return isa.GP("NEENTER: enclave %d is not associated with %d", target.EID, cur.EID)
		}
		t, err := target.FindTCS(tcsVaddr)
		if err != nil {
			return isa.GP("NEENTER: %v", err)
		}
		if t.Busy {
			return isa.GP("NEENTER: destination TCS %#x busy", uint64(tcsVaddr))
		}
		c.SwitchToNestedLocked(target, t)
		e.m.Rec.ChargeTo(uint64(target.EID), c.ID, trace.EvNEENTER, trace.CostNEENTER)
		return nil
	})
}

// NEEXIT transitions from an inner enclave back to the outer enclave it was
// entered from. It clears all the information of the inner enclave —
// flushing the TLB and zeroing the register file — releases the TCS, and
// restores the suspended outer context. Executing NEEXIT outside a nested
// entry is a general-protection fault.
func (e *Extension) NEEXIT(c *sgx.Core) error {
	return e.m.Atomically(func() error {
		if !c.InEnclave() {
			return isa.GP("NEEXIT: core %d not in enclave mode", c.ID)
		}
		t := c.CurrentTCS()
		if t == nil || !t.Ret() {
			return isa.GP("NEEXIT: no suspended outer context (not a nested entry)")
		}
		leaving := c.BillEID()
		c.SwitchFromNestedLocked()
		e.m.Rec.ChargeTo(leaving, c.ID, trace.EvNEEXIT, trace.CostNEEXIT)
		return nil
	})
}

// TrackerExt is the §IV-E thread-tracking extension. Evicting an EPC page of
// an outer enclave must shoot down not only cores with live context in that
// enclave, but also cores running any of its (transitive) inner enclaves —
// those cores legitimately hold translations for outer pages via the
// Figure-6 nested validation branch.
type TrackerExt struct{}

// CoresToShootdown implements sgx.Tracker.
func (TrackerExt) CoresToShootdown(m *sgx.Machine, eid isa.EID) []*sgx.Core {
	var out []*sgx.Core
	for _, c := range m.Cores() {
		if coreTouches(m, c, eid) {
			out = append(out, c)
		}
	}
	return out
}

// coreTouches reports whether the core has live context in enclave eid or in
// any enclave whose outer closure contains eid.
func coreTouches(m *sgx.Machine, c *sgx.Core, eid isa.EID) bool {
	for _, e := range c.ExecutingEIDs() {
		if e == eid {
			return true
		}
		s, ok := m.ResolveEID(e)
		if !ok {
			continue
		}
		for _, o := range outerChain(m, s) {
			if o.EID == eid {
				return true
			}
		}
	}
	return false
}
