package core_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
)

// buildRaw constructs an enclave through the raw driver path (no SDK): two RW
// data pages and two TCSs. Every enclave built this way has the identical
// layout and content, hence the identical measurement — so a single
// certificate listing that one digest as both allowed-inner and allowed-outer
// satisfies the NASSO certificate checks for any pairing, leaving the table
// free to probe the structural and access rules in isolation.
func buildRaw(t *testing.T, r *rig, base isa.VAddr) *sgx.SECS {
	t.Helper()
	const nData, nTCS = 2, 2
	size := uint64(nData+nTCS) * isa.PageSize
	p := r.k.NewProcess()
	s, err := r.k.Driver.CreateEnclave(base, size, 0)
	if err != nil {
		t.Fatalf("ECREATE: %v", err)
	}
	b := measure.NewBuilder()
	b.ECreate(size, 0)
	content := bytes.Repeat([]byte{0x5a}, isa.PageSize)
	for i := 0; i < nData; i++ {
		v := base + isa.VAddr(i)*isa.PageSize
		if err := r.k.Driver.AddPage(p, s, sgx.AddPageArgs{
			Vaddr: v, Type: isa.PTReg, Perms: isa.PermRW, Content: content, Measure: true,
		}); err != nil {
			t.Fatalf("EADD: %v", err)
		}
		b.EAdd(uint64(v-base), isa.PTReg, isa.PermRW)
		for ch := 0; ch < isa.PageSize; ch += isa.ExtendChunk {
			b.EExtend(uint64(v-base)+uint64(ch), content[ch:ch+isa.ExtendChunk])
		}
	}
	for k := 0; k < nTCS; k++ {
		v := base + isa.VAddr(nData+k)*isa.PageSize
		if err := r.k.Driver.AddPage(p, s, sgx.AddPageArgs{Vaddr: v, Type: isa.PTTCS, Entry: k}); err != nil {
			t.Fatalf("EADD tcs: %v", err)
		}
		b.EAdd(uint64(v-base), isa.PTTCS, 0)
	}
	d := b.Finalize()
	author := measure.MustNewAuthor()
	if err := r.k.Driver.InitEnclave(s, author.Sign(d, []measure.Digest{d}, []measure.Digest{d})); err != nil {
		t.Fatalf("EINIT: %v", err)
	}
	return s
}

func rawTCS(s *sgx.SECS, k int) isa.VAddr { return s.Base + isa.VAddr(2+k)*isa.PageSize }

// TestFigure6ValidateTable drives the nested (Figure-6) validator through the
// full requester × owner × vaddr-region cross-product with fabricated PTEs:
// host, outer, NEENTERed inner, and directly-EENTERed peer inner, against
// frames owned by self, outer, a peer inner, nobody (free EPC), and plain
// DRAM, at vaddrs inside their own ELRANGE, an alias vaddr, the outer's
// ELRANGE, and unsecure space. It pins the paper's §III asymmetry: inner→
// outer is permitted (steps ③④⑤), outer→inner and peer→peer abort.
func TestFigure6ValidateTable(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	m := r.m
	innerA := buildRaw(t, r, 0x1000_0000)
	outerO := buildRaw(t, r, 0x2000_0000)
	innerB := buildRaw(t, r, 0x3000_0000)
	if err := r.ext.NASSO(innerA, outerO); err != nil {
		t.Fatalf("NASSO A->O: %v", err)
	}
	if err := r.ext.NASSO(innerB, outerO); err != nil {
		t.Fatalf("NASSO B->O: %v", err)
	}

	// core 0: host. core 1: inner A entered through outer O (NEENTER).
	// core 2: outer O. core 3: peer inner B, EENTERed directly.
	if err := m.EEnter(m.Core(1), outerO, rawTCS(outerO, 0), false); err != nil {
		t.Fatalf("EENTER O: %v", err)
	}
	if err := r.ext.NEENTER(m.Core(1), innerA, rawTCS(innerA, 0)); err != nil {
		t.Fatalf("NEENTER A: %v", err)
	}
	if err := m.EEnter(m.Core(2), outerO, rawTCS(outerO, 1), false); err != nil {
		t.Fatalf("EENTER O tcs1: %v", err)
	}
	if err := m.EEnter(m.Core(3), innerB, rawTCS(innerB, 0), false); err != nil {
		t.Fatalf("EENTER B: %v", err)
	}
	host, inA, inO, inB := m.Core(0), m.Core(1), m.Core(2), m.Core(3)

	frameOf := func(s *sgx.SECS, v isa.VAddr) uint64 {
		for _, i := range m.EPC.PagesOf(s.EID) {
			if ent := m.EPC.Entry(i); ent.Vaddr == v {
				return uint64(m.EPC.AddrOf(i)) >> isa.PageShift
			}
		}
		t.Fatalf("no EPC page at %#x", uint64(v))
		return 0
	}
	aData0 := frameOf(innerA, innerA.Base)
	oData0 := frameOf(outerO, outerO.Base)
	oData1 := frameOf(outerO, outerO.Base+isa.PageSize)
	oTCS0 := frameOf(outerO, rawTCS(outerO, 0))
	bData0 := frameOf(innerB, innerB.Base)
	var plain uint64
	for ppn := uint64(1); ; ppn++ {
		if !m.DRAM.PageInPRM(isa.PAddr(ppn << isa.PageShift)) {
			plain = ppn
			break
		}
	}
	unsecV := isa.VAddr(0x0040_0000)

	type row struct {
		name  string
		c     *sgx.Core
		v     isa.VAddr
		ppn   uint64
		perms isa.Perm
		op    isa.Access
		want  string
	}
	tests := []row{
		// Host requester.
		{"host/plain DRAM ok", host, unsecV, plain, isa.PermRW, isa.Write, "ok"},
		{"host/any EPC frame aborts", host, unsecV, oData0, isa.PermRW, isa.Read, "abort"},

		// Outer requester: owns its pages, cannot see its inner's.
		{"outer/own page ok", inO, outerO.Base, oData0, isa.PermRW, isa.Write, "ok"},
		{"outer/own page EPCM strips X", inO, outerO.Base, oData0, isa.PermRWX, isa.Execute, "#PF"},
		{"outer/inner page at inner's vaddr aborts", inO, innerA.Base, aData0, isa.PermRW, isa.Read, "abort"},
		{"outer/inner page at own vaddr aborts", inO, outerO.Base, aData0, isa.PermRW, isa.Read, "abort"},
		{"outer/unsecure ok", inO, unsecV, plain, isa.PermRW, isa.Read, "ok"},

		// Inner requester via NEENTER: own pages, plus the outer's (③④⑤).
		{"inner/own page ok", inA, innerA.Base, aData0, isa.PermRW, isa.Write, "ok"},
		{"inner/outer page ok (nested branch)", inA, outerO.Base, oData0, isa.PermRW, isa.Write, "ok"},
		{"inner/outer page EPCM strips X", inA, outerO.Base, oData0, isa.PermRWX, isa.Execute, "#PF"},
		{"inner/outer frame at aliased vaddr aborts", inA, outerO.Base, oData1, isa.PermRW, isa.Read, "abort"},
		{"inner/outer frame at unsecure vaddr aborts", inA, unsecV, oData0, isa.PermRW, isa.Read, "abort"},
		{"inner/outer TCS frame aborts", inA, rawTCS(outerO, 0), oTCS0, isa.PermRW, isa.Read, "abort"},
		{"inner/peer inner page aborts", inA, innerB.Base, bData0, isa.PermRW, isa.Read, "abort"},
		{"inner/own vaddr outside PRM faults (evicted)", inA, innerA.Base, plain, isa.PermRW, isa.Read, "#PF"},
		{"inner/outer vaddr outside PRM faults (evicted)", inA, outerO.Base, plain, isa.PermRW, isa.Read, "#PF"},
		{"inner/unsecure ok", inA, unsecV, plain, isa.PermRW, isa.Read, "ok"},
		{"inner/unsecure never executable", inA, unsecV, plain, isa.PermRWX, isa.Execute, "#PF"},

		// Peer inner, entered directly from untrusted code: the association
		// alone (no outer frame on the core) grants outer access; sibling
		// inners stay mutually isolated.
		{"direct inner/own page ok", inB, innerB.Base, bData0, isa.PermRW, isa.Write, "ok"},
		{"direct inner/outer page ok", inB, outerO.Base, oData0, isa.PermRW, isa.Read, "ok"},
		{"direct inner/peer page aborts", inB, innerA.Base, aData0, isa.PermRW, isa.Read, "abort"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pte := pt.PTE{PPN: tc.ppn, Perms: tc.perms, Present: true}
			entry, outcome := m.Validator.Validate(tc.c, tc.v, pte, tc.op)
			if got := verdictOf(outcome); got != tc.want {
				t.Fatalf("got %s, want %s (outcome %+v)", got, tc.want, outcome)
			}
			if tc.want == "ok" {
				if entry.PPN != tc.ppn {
					t.Fatalf("fills ppn %#x, want %#x", entry.PPN, tc.ppn)
				}
				if entry.Perms&isa.PermX != 0 && tc.ppn == plain {
					t.Fatalf("unsecure fill kept execute permission")
				}
			}
		})
	}

	// Blocked outer page: the inner's nested access faults (not aborts) so
	// the kernel can repair and retry. Runs last — EBLOCK mutates the EPCM.
	var oIdx = -1
	for _, i := range m.EPC.PagesOf(outerO.EID) {
		if ent := m.EPC.Entry(i); ent.Vaddr == outerO.Base && ent.Type == isa.PTReg {
			oIdx = i
		}
	}
	if err := m.EBlock(oIdx); err != nil {
		t.Fatalf("EBLOCK: %v", err)
	}
	_, outcome := m.Validator.Validate(inA, outerO.Base, pt.PTE{PPN: oData0, Perms: isa.PermRW, Present: true}, isa.Read)
	if got := verdictOf(outcome); got != "#PF" {
		t.Fatalf("inner access to blocked outer page: got %s, want #PF", got)
	}
}

// verdictOf collapses a validator outcome into a comparable label.
func verdictOf(outcome *sgx.Outcome) string {
	switch {
	case outcome == nil:
		return "ok"
	case outcome.Abort:
		return "abort"
	case outcome.Fault != nil && outcome.Fault.Class == isa.FaultPF:
		return "#PF"
	case outcome.Fault != nil && outcome.Fault.Class == isa.FaultGP:
		return "#GP"
	}
	return "?"
}
