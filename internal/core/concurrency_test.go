package core_test

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/sdk"
)

// TestConcurrentOuterEvictionShootsDownInnerTLBs runs the §IV-E scenario at
// full concurrency, under -race in tier 2: worker goroutines continuously
// enter the nested context (some through the outer via NEENTER, some straight
// into the inner via EENTER) and read an outer heap page, while the kernel
// concurrently evicts and the fault path reloads that same page. The
// inner-aware tracker must shoot down every core holding the translation
// before each EWB, so no worker may ever observe stale or wrong data, and no
// TLB may map the page's old frame after the dust settles.
func TestConcurrentOuterEvictionShootsDownInnerTLBs(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	outerHeap := outer.Image().HeapBase()
	payload := []byte("nested-shared-state")

	if _, err := outer.ECall("write", writeArgs(outerHeap, payload)); err != nil {
		t.Fatal(err)
	}

	// nest_read reaches the page through the full nesting: EENTER outer,
	// NEENTER inner, inner reads the outer's heap.
	outer.Image().RegisterECall("nest_read", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "read_outer", args)
	})
	inner.Image().RegisterECall("read_outer", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.Read(outerHeap, len(payload))
	})

	const (
		workers    = 3
		iterations = 150
		evictions  = 60
	)
	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		evictedOK atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations && !stop.Load(); i++ {
				var (
					got []byte
					err error
				)
				if w%2 == 0 {
					got, err = outer.ECall("nest_read", nil)
				} else {
					// Direct EENTER into the inner: the path baseline SGX's
					// tracker cannot see (no outer execution context on the
					// core) — only the nested tracker's closure walk keeps
					// this worker coherent.
					got, err = inner.ECall("read_outer", nil)
				}
				if err != nil {
					// A read may fault if it races an eviction the reload
					// path could not repair in time; integrity is what must
					// hold, not availability.
					continue
				}
				if !bytes.Equal(got, payload) {
					stop.Store(true)
					t.Errorf("worker %d iteration %d: read %q, want %q (stale or foreign frame)", w, i, got, payload)
					return
				}
			}
		}(w)
	}

	// The kernel thrashes the page: evict whenever possible; the workers'
	// fault path (reloadIfEvicted) brings it back with ELDU.
	for i := 0; i < evictions && !stop.Load(); i++ {
		if err := r.k.Driver.EvictPage(r.host.Proc, outer.SECS(), outerHeap); err == nil {
			evictedOK.Add(1)
		}
		// An error here is legal: a worker may have revalidated the page
		// between shootdown and EWB, making EWB refuse — that refusal is the
		// invariant working, and simtest proves its necessity.
	}
	stop.Store(false)
	wg.Wait()

	if evictedOK.Load() == 0 {
		t.Fatal("no eviction ever succeeded — the test exercised nothing")
	}
	// One final quiescent round trip, then the global structural audit: no
	// core TLB may violate the EPCM (in particular, no stale translation for
	// any frame the evictions recycled).
	if got, err := outer.ECall("nest_read", nil); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("final nested read: %q, %v", got, err)
	}
	if bad := r.m.AuditTLBs(); len(bad) != 0 {
		t.Fatalf("TLB audit after concurrent eviction: %v", bad)
	}
}
