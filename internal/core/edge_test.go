package core_test

import (
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
)

// Edge cases of the nested transition machinery.

func TestAEXFromInnerEnclavePreservesNestedContext(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	_ = inner

	outer.Image().RegisterECall("nest_and_fault", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "faulty", nil)
	})
	inner.Image().RegisterECall("faulty", func(env *sdk.Env, args []byte) ([]byte, error) {
		c := env.C
		m := r.m
		if c.NestingDepth() != 2 {
			t.Errorf("depth before AEX = %d", c.NestingDepth())
		}
		tcs := c.CurrentTCS()
		c.Regs.GPR[5] = 0xABCD
		// A hardware interrupt arrives: asynchronous exit.
		if err := m.AEX(c); err != nil {
			return nil, err
		}
		if c.InEnclave() {
			t.Error("still in enclave after AEX")
		}
		// The kernel handles it; ERESUME restores the INNER context with
		// the suspended outer frame intact.
		if err := m.EResume(c, tcs); err != nil {
			return nil, err
		}
		if c.NestingDepth() != 2 {
			t.Errorf("depth after ERESUME = %d", c.NestingDepth())
		}
		if c.Regs.GPR[5] != 0xABCD {
			t.Errorf("registers not restored: GPR5=%#x", c.Regs.GPR[5])
		}
		return []byte("survived"), nil
	})
	out, err := outer.ECall("nest_and_fault", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "survived" {
		t.Fatalf("returned %q", out)
	}
}

func TestReleaseExitFromNestedContextRejected(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	outer.Image().RegisterECall("drive", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "try_exit", nil)
	})
	inner.Image().RegisterECall("try_exit", func(env *sdk.Env, args []byte) ([]byte, error) {
		// A release EEXIT from a NEENTERed context would strand the
		// suspended outer frame: #GP. The core stays in the inner enclave.
		if err := r.m.EExit(env.C, true); err == nil {
			t.Error("release EEXIT from nested context accepted")
		}
		if env.C.NestingDepth() != 2 {
			t.Errorf("nesting depth after rejected exit = %d", env.C.NestingDepth())
		}
		return nil, nil
	})
	if _, err := outer.ECall("drive", nil); err != nil {
		t.Fatal(err)
	}
}

func TestNEREPORTOutsideEnclaveRejected(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	c := r.m.Core(0)
	if _, err := r.ext.NEREPORT(c, measure.Digest{}, [64]byte{}); err == nil {
		t.Fatal("NEREPORT outside enclave accepted")
	}
}

func TestVerifyNestedReportWrongTarget(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadPair(t, r, 0x1000_0000, 0x2000_0000)
	var rep *core.NestedReport
	inner.Image().RegisterECall("report", func(env *sdk.Env, args []byte) ([]byte, error) {
		var err error
		rep, err = r.ext.NEREPORT(env.C, outer.SECS().MRENCLAVE, [64]byte{})
		return nil, err
	})
	// An unrelated enclave tries to verify a report addressed to the outer.
	strangerImg := sdk.NewImage("stranger", 0x6000_0000, sdk.DefaultLayout())
	strangerImg.RegisterECall("verify", func(env *sdk.Env, args []byte) ([]byte, error) {
		return nil, r.ext.VerifyNestedReport(env.C, rep)
	})
	stranger, err := r.host.Load(strangerImg.Sign(measure.MustNewAuthor(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inner.ECall("report", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := stranger.ECall("verify", nil); err == nil {
		t.Fatal("wrong-target verification succeeded")
	}
	// Verification outside enclave mode fails too.
	if err := r.ext.VerifyNestedReport(r.m.Core(0), rep); err == nil {
		t.Fatal("verification outside enclave accepted")
	}
}
