package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sgx"
)

// NestedReport is NEREPORT's output: an EREPORT-style claim extended with
// the inner-outer relations of the reporting enclave (paper §IV-B, §IV-E
// "Remote attestation"). An attestation to an outer enclave reports the
// measurements of all inner enclaves sharing it, and an inner enclave's
// report names its outer enclave(s) — so a challenger can verify not just
// each enclave but the *shape* of the nesting.
type NestedReport struct {
	// Identity of the reporting enclave (as in EREPORT).
	MRENCLAVE  measure.Digest
	MRSIGNER   measure.Digest
	Attributes uint64
	ReportData [64]byte

	// OuterMeasurements are the MRENCLAVEs of the enclaves this enclave is
	// bound to as an inner, in association order.
	OuterMeasurements []measure.Digest
	// InnerMeasurements are the MRENCLAVEs of all inner enclaves bound to
	// this enclave.
	InnerMeasurements []measure.Digest

	// TargetMRENCLAVE names the enclave able to verify this report.
	TargetMRENCLAVE measure.Digest
	MAC             [32]byte
}

func (r *NestedReport) macInput() []byte {
	h := sha256.New()
	h.Write([]byte("NEREPORT"))
	h.Write(r.MRENCLAVE[:])
	h.Write(r.MRSIGNER[:])
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], r.Attributes)
	h.Write(a[:])
	h.Write(r.ReportData[:])
	binary.LittleEndian.PutUint64(a[:], uint64(len(r.OuterMeasurements)))
	h.Write(a[:])
	for _, d := range r.OuterMeasurements {
		h.Write(d[:])
	}
	binary.LittleEndian.PutUint64(a[:], uint64(len(r.InnerMeasurements)))
	h.Write(a[:])
	for _, d := range r.InnerMeasurements {
		h.Write(d[:])
	}
	h.Write(r.TargetMRENCLAVE[:])
	return h.Sum(nil)
}

// NEREPORT produces a report about the enclave currently executing on core
// c, including its association relationships, targeted at (verifiable by)
// the enclave with measurement target.
func (e *Extension) NEREPORT(c *sgx.Core, target measure.Digest, reportData [64]byte) (*NestedReport, error) {
	var r *NestedReport
	err := e.m.Atomically(func() error {
		if !c.InEnclave() {
			return isa.GP("NEREPORT: not in enclave mode")
		}
		s := c.Current()
		r = &NestedReport{
			MRENCLAVE:       s.MRENCLAVE,
			MRSIGNER:        s.MRSIGNER,
			Attributes:      s.Attributes,
			ReportData:      reportData,
			TargetMRENCLAVE: target,
		}
		for _, oe := range s.Nested.OuterEIDs {
			if o, ok := e.m.ResolveEID(oe); ok {
				r.OuterMeasurements = append(r.OuterMeasurements, o.MRENCLAVE)
			}
		}
		for _, ie := range s.Nested.InnerEIDs {
			if in, ok := e.m.ResolveEID(ie); ok {
				r.InnerMeasurements = append(r.InnerMeasurements, in.MRENCLAVE)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.MAC = e.m.MACWithReportKey(target, r.macInput())
	return r, nil
}

// VerifyNestedReport checks a nested report addressed to the enclave running
// on core c. Only that enclave can derive the report key, so a valid MAC
// proves the report came from NEREPORT on the same platform.
func (e *Extension) VerifyNestedReport(c *sgx.Core, r *NestedReport) error {
	var target measure.Digest
	err := e.m.Atomically(func() error {
		if !c.InEnclave() {
			return isa.GP("nested report verify: not in enclave mode")
		}
		if r.TargetMRENCLAVE != c.Current().MRENCLAVE {
			return isa.GP("nested report verify: report targets a different enclave")
		}
		target = c.Current().MRENCLAVE
		return nil
	})
	if err != nil {
		return err
	}
	want := e.m.MACWithReportKey(target, r.macInput())
	if !hmac.Equal(want[:], r.MAC[:]) {
		return isa.GP("nested report verify: MAC mismatch")
	}
	return nil
}
