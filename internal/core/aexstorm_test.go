package core_test

import (
	"fmt"
	"sync"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/trace"
)

// These tests verify AEX/ERESUME orderliness under interrupt storms fired at
// every step of a nested NEENTER/NEEXIT chain: the suspended-frame stack must
// survive arbitrary preemption at any depth, registers must be scrubbed
// while the core is outside the enclave and restored exactly on resume, and
// the machine's structural invariants must hold throughout. Run with -race:
// the concurrent variant storms several chains at once.

// storm interrupts the current enclave context n times with real AEX +
// ERESUME round trips, planting a register secret before each interrupt and
// checking the scrub/restore contract around it.
func storm(env *sdk.Env, n int) error {
	c := env.C
	m := c.Machine()
	for i := 0; i < n; i++ {
		secret := 0xDEAD_0000_0000_0000 | uint64(i+1)
		c.Regs.GPR[3] = secret
		t := c.CurrentTCS()
		depth := c.NestingDepth()
		if err := m.AEX(c); err != nil {
			return fmt.Errorf("AEX %d: %w", i, err)
		}
		if c.InEnclave() {
			return fmt.Errorf("interrupt %d: core still in enclave mode", i)
		}
		if !c.Regs.IsZero() {
			return fmt.Errorf("interrupt %d: registers not scrubbed on AEX (secret leaked)", i)
		}
		if err := m.EResume(c, t); err != nil {
			return fmt.Errorf("ERESUME %d: %w", i, err)
		}
		if got := c.Regs.GPR[3]; got != secret {
			return fmt.Errorf("interrupt %d: register not restored (got %#x)", i, got)
		}
		if c.NestingDepth() != depth {
			return fmt.Errorf("interrupt %d: nesting depth %d -> %d", i, depth, c.NestingDepth())
		}
		c.Regs.GPR[3] = 0
	}
	return nil
}

// buildStormPair wires an inner/outer pair whose every trusted function
// storms the core before, between, and after each nested transition.
func buildStormPair(name string, innerBase, outerBase isa.VAddr, perStep int) (*sdk.Image, *sdk.Image) {
	innerImg := sdk.NewImage(name+"-inner", innerBase, sdk.DefaultLayout())
	outerImg := sdk.NewImage(name+"-outer", outerBase, sdk.DefaultLayout())

	// Depth-2 work: interrupted while the outer frame sits suspended.
	innerImg.RegisterECall("work", func(env *sdk.Env, args []byte) ([]byte, error) {
		if err := storm(env, perStep); err != nil {
			return nil, err
		}
		return append([]byte("inner:"), args...), nil
	})
	// Downward chain: host -> outer -> (NEENTER) inner.
	outerImg.RegisterECall("drive", func(env *sdk.Env, args []byte) ([]byte, error) {
		if err := storm(env, perStep); err != nil {
			return nil, err
		}
		inners := env.E.Inners()
		if len(inners) != 1 {
			return nil, fmt.Errorf("want 1 inner, have %d", len(inners))
		}
		out, err := env.NECall(inners[0], "work", args)
		if err != nil {
			return nil, err
		}
		// Back in the outer frame after NEEXIT: storm again to interrupt the
		// restored context.
		if err := storm(env, perStep); err != nil {
			return nil, err
		}
		return append([]byte("outer:"), out...), nil
	})
	// Upward chain: host -> inner -> (NEEXIT/NEENTER) outer service.
	outerImg.RegisterNOCall("svc", func(env *sdk.Env, args []byte) ([]byte, error) {
		if err := storm(env, perStep); err != nil {
			return nil, err
		}
		return append([]byte("svc:"), args...), nil
	})
	innerImg.RegisterECall("up", func(env *sdk.Env, args []byte) ([]byte, error) {
		if err := storm(env, perStep); err != nil {
			return nil, err
		}
		out, err := env.NOCall("svc", args)
		if err != nil {
			return nil, err
		}
		if err := storm(env, perStep); err != nil {
			return nil, err
		}
		return out, nil
	})
	return innerImg, outerImg
}

func loadStormPair(t *testing.T, r *rig, name string, innerBase, outerBase isa.VAddr, perStep int) (inner, outer *sdk.Enclave) {
	t.Helper()
	innerImg, outerImg := buildStormPair(name, innerBase, outerBase, perStep)
	si := innerImg.Sign(measure.MustNewAuthor(), []measure.Digest{outerImg.Measure()}, nil)
	so := outerImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	var err error
	if outer, err = r.host.Load(so); err != nil {
		t.Fatal(err)
	}
	if inner, err = r.host.Load(si); err != nil {
		t.Fatal(err)
	}
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}
	return inner, outer
}

func TestAEXStormAcrossNestedChain(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner, outer := loadStormPair(t, r, "storm", 0x1000_0000, 0x2000_0000, 5)

	aex0 := r.m.Rec.Get(trace.EvAEX)
	for round := 0; round < 3; round++ {
		out, err := outer.ECall("drive", []byte("ping"))
		if err != nil {
			t.Fatalf("round %d downward: %v", round, err)
		}
		if string(out) != "outer:inner:ping" {
			t.Fatalf("round %d downward payload: %q", round, out)
		}
		out, err = inner.ECall("up", []byte("pong"))
		if err != nil {
			t.Fatalf("round %d upward: %v", round, err)
		}
		if string(out) != "svc:pong" {
			t.Fatalf("round %d upward payload: %q", round, out)
		}
		if v := r.m.AuditInvariants(); len(v) > 0 {
			t.Fatalf("round %d: invariants violated mid-soak: %v", round, v)
		}
	}
	// 3 storm sites of 5 on the downward chain, 3 sites of 5 on the upward
	// chain, 3 rounds each: the storms must have been real AEXes.
	if got := r.m.Rec.Get(trace.EvAEX) - aex0; got < 3*(3*5+3*5) {
		t.Fatalf("only %d AEX events recorded; storms did not fire", got)
	}
}

// TestAEXStormConcurrentChains drives several stormy nested chains on
// different cores at once; meaningful under -race, and checks that per-core
// suspended-frame state never bleeds across cores.
func TestAEXStormConcurrentChains(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	type pair struct{ inner, outer *sdk.Enclave }
	pairs := make([]pair, 3)
	for i := range pairs {
		base := isa.VAddr(0x1000_0000 * (i + 1))
		in, out := loadStormPair(t, r, fmt.Sprintf("storm%d", i), base, base+0x800_0000, 3)
		pairs[i] = pair{in, out}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(pairs))
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, p pair) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				out, err := p.outer.ECall("drive", []byte{byte(i)})
				if err != nil {
					errCh <- fmt.Errorf("pair %d round %d: %w", i, round, err)
					return
				}
				if string(out) != "outer:inner:"+string([]byte{byte(i)}) {
					errCh <- fmt.Errorf("pair %d round %d: payload %q", i, round, out)
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if v := r.m.AuditInvariants(); len(v) > 0 {
		t.Fatalf("invariants violated: %v", v)
	}
}
