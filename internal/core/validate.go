package core

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/tlb"
	"nestedenclave/internal/trace"
)

// Validator implements the paper's Figure-6 access-control flow: the
// baseline SGX TLB-miss validation extended with the shaded steps that give
// an inner enclave access to its outer enclave's memory — and nothing else
// new. Every step is charged to the cost model, so deeper nesting shows up
// as longer validation latency exactly as §VIII predicts.
//
// The flow, for a translation (v → paddr) requested in enclave mode by
// enclave s:
//
//	paddr in PRM (path B):
//	    EPCM entry valid, unblocked, PT_REG?            — else abort
//	    EPCM.EID == s?                                  — baseline accept path
//	    else (steps ③④⑤): EPCM.EID == an outer of s,
//	    and EPCM.vaddr == v?                            — nested accept path
//	    else                                            — abort
//	paddr not in PRM (path C):
//	    v in ELRANGE(s)?                                — #PF (evicted page)
//	    (steps ①②): v in ELRANGE(outer of s)?           — #PF (evicted page)
//	    else unsecure access: execute permission disabled.
type Validator struct{}

// Validate implements sgx.Validator. Validation steps are counted locally
// and charged as one batched record on every exit path — together with the
// cached outer-closure (see outerChain) this keeps the nested walk free of
// per-step recording overhead and per-walk allocations.
func (Validator) Validate(c *sgx.Core, v isa.VAddr, pte pt.PTE, op isa.Access) (tlb.Entry, *sgx.Outcome) {
	m := c.Machine()
	paddr := isa.PAddr(pte.PPN << isa.PageShift)
	var steps int64
	defer func() { sgx.ChargeValidateSteps(c, steps) }()

	if !pte.Perms.Allows(op) {
		return fault(isa.PF(v, op, "page-table permission"))
	}

	// (A) Non-enclave execution: identical to baseline SGX.
	steps++
	if !c.InEnclave() {
		if m.DRAM.PageInPRM(paddr) {
			return abort()
		}
		return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: pte.Perms}, nil
	}

	s := c.Current()

	// (B) Enclave mode, physical page inside PRM.
	steps++
	if m.DRAM.PageInPRM(paddr) {
		ent, ok := m.EPC.EntryAt(paddr)
		steps++
		if !ok || !ent.Valid {
			return abort()
		}
		if ent.Blocked {
			return fault(isa.PF(v, op, "EPC page blocked for eviction"))
		}
		if ent.Type != isa.PTReg {
			return abort()
		}
		// Baseline owner check.
		steps++
		if ent.Owner == s.EID {
			if ent.Vaddr != v.PageBase() {
				return abort()
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return fault(isa.PF(v, op, "EPCM permission"))
			}
			return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
				FilledInEnclave: true, FilledEID: s.EID}, nil
		}
		// Steps ③④⑤: the owner is not the current enclave — if the current
		// enclave is an inner enclave, re-validate against its outer
		// enclave(s), walking the inner-outer chain (multi-level §VIII).
		for _, outer := range outerChain(m, s) {
			steps++
			if ent.Owner != outer.EID {
				continue
			}
			// Step ⑤: the virtual address must match the EPCM record and
			// lie inside the outer's ELRANGE.
			steps++
			if ent.Vaddr != v.PageBase() || !outer.ContainsVPN(v.VPN()) {
				return abort()
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return fault(isa.PF(v, op, "EPCM permission (outer page)"))
			}
			// The nested-accept marker stays an immediate charge: the walk's
			// classification (OpNestedWalk) reads this counter's delta.
			m.Rec.ChargeToDetail(uint64(s.EID), c.ID, trace.EvNestedValidate, 0, v.VPN())
			return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
				FilledInEnclave: true, FilledEID: s.EID}, nil
		}
		// Peer inner enclave, unrelated enclave, or non-enclave attacker
		// mapping: abort. This is the line that confines the outer enclave
		// (and peers) away from inner-enclave memory.
		return abort()
	}

	// (C) Enclave mode, physical page outside PRM.
	steps++
	if s.ContainsVPN(v.VPN()) {
		return fault(isa.PF(v, op, "ELRANGE page not backed by EPC (evicted?)"))
	}
	// Steps ①②: within an *outer* enclave's ELRANGE but not backed by an
	// EPC page — the outer page was evicted; page fault so the kernel
	// reloads it.
	for _, outer := range outerChain(m, s) {
		steps++
		if outer.ContainsVPN(v.VPN()) {
			return fault(isa.PF(v, op, "outer ELRANGE page not backed by EPC (evicted?)"))
		}
	}
	// Unsecure memory access from enclave mode: executable disabled.
	perms := pte.Perms &^ isa.PermX
	if !perms.Allows(op) {
		return fault(isa.PF(v, op, "execute from unsecure memory in enclave mode"))
	}
	return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: perms,
		FilledInEnclave: true, FilledEID: s.EID}, nil
}

func abort() (tlb.Entry, *sgx.Outcome) { return tlb.Entry{}, &sgx.Outcome{Abort: true} }

func fault(f *isa.Fault) (tlb.Entry, *sgx.Outcome) {
	return tlb.Entry{}, &sgx.Outcome{Fault: f}
}
