// Package core implements the paper's contribution: the nested-enclave
// extension to SGX.
//
// The extension consists of (paper §IV):
//
//   - Metadata: OuterEIDs/InnerEIDs association lists stored in reserved
//     SECS fields (Figure 3; the fields themselves live in sgx.SECS.Nested).
//   - Instructions (Table I): NASSO (kernel; associate a validated
//     inner/outer pair), NEENTER/NEEXIT (user; direct transitions between
//     outer and inner enclaves with TLB flush and register scrubbing), and
//     NEREPORT (user; attestation report covering the association
//     relationship).
//   - Access validation: the Figure-6 flow — on an EPCM owner mismatch or an
//     out-of-ELRANGE virtual address, an inner enclave's access is
//     re-validated against its outer enclave(s), giving the asymmetric
//     permission at the heart of the model (inner reads outer; never the
//     reverse).
//   - Thread tracking (§IV-E): EPC eviction of an outer page must shoot down
//     TLBs of cores running its inner enclaves too.
//
// Section VIII's extensions are both implemented and feature-gated by
// Config: multi-level nesting (the validator follows the chain of
// inner-outer links) and multiple outer enclaves per inner (a lattice).
package core

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
)

// Config selects the nesting model.
type Config struct {
	// MaxDepth bounds the nesting depth (2 = the paper's base inner/outer
	// model). 0 means unlimited (§VIII multi-level nesting).
	MaxDepth int
	// AllowMultipleOuters enables the §VIII lattice extension: an inner
	// enclave may bind to more than one outer enclave.
	AllowMultipleOuters bool
}

// TwoLevel is the paper's base configuration: two levels, single outer.
func TwoLevel() Config { return Config{MaxDepth: 2} }

// Extension is an extension point for nesting-aware machines.
type Extension struct {
	m   *sgx.Machine
	cfg Config
}

// Enable installs nested-enclave support on the machine: the Figure-6
// validator and the inner-aware ETRACK tracker. It returns the extension
// handle through which the new instructions are issued.
func Enable(m *sgx.Machine, cfg Config) *Extension {
	ext := &Extension{m: m, cfg: cfg}
	m.Validator = &Validator{}
	m.Tracker = &TrackerExt{}
	return ext
}

// Machine returns the underlying machine.
func (e *Extension) Machine() *sgx.Machine { return e.m }

// Config returns the active nesting configuration.
func (e *Extension) Config() Config { return e.cfg }

// outerChain collects the transitive outer closure of the enclave: every
// enclave reachable by following OuterEIDs links, breadth-first, cycles
// guarded. With the base single-outer configuration this is a simple chain;
// with the lattice extension it is a DAG traversal.
//
// This sits on the page-walk hot path (the Figure-6 validator consults it on
// every nested-relevant TLB miss), so the common cases are allocation-free:
// a non-inner enclave returns nil immediately, and an inner enclave reuses a
// closure cached on its SECS until the association graph changes (NASSO or
// EREMOVE bump the machine's association epoch).
//
// Must run with the machine lock held, at least shared (it is called from
// the validator and from Atomically sections).
func outerChain(m *sgx.Machine, s *sgx.SECS) []*sgx.SECS {
	if len(s.Nested.OuterEIDs) == 0 {
		return nil
	}
	epoch := m.AssocEpoch()
	if chain, ok := s.CachedOuterChain(epoch); ok {
		return chain
	}
	var out []*sgx.SECS
	seen := map[isa.EID]bool{s.EID: true}
	frontier := []*sgx.SECS{s}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, oe := range next.Nested.OuterEIDs {
			if seen[oe] {
				continue
			}
			seen[oe] = true
			o, ok := m.ResolveEID(oe)
			if !ok {
				continue
			}
			out = append(out, o)
			frontier = append(frontier, o)
		}
	}
	s.StoreOuterChain(epoch, out)
	return out
}

// depthOf returns the nesting depth of the enclave: 1 for a top-level
// enclave, 2 for an inner of a top-level outer, etc. With the lattice
// extension it returns the longest path. Machine lock held by caller.
func depthOf(m *sgx.Machine, s *sgx.SECS) int {
	return depthOfRec(m, s, map[isa.EID]bool{})
}

func depthOfRec(m *sgx.Machine, s *sgx.SECS, visiting map[isa.EID]bool) int {
	if visiting[s.EID] {
		return 1 // cycle guard; NASSO prevents cycles anyway
	}
	visiting[s.EID] = true
	defer delete(visiting, s.EID)
	max := 0
	for _, oe := range s.Nested.OuterEIDs {
		if o, ok := m.ResolveEID(oe); ok {
			if d := depthOfRec(m, o, visiting); d > max {
				max = d
			}
		}
	}
	return max + 1
}
