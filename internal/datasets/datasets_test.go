package datasets

import (
	"math/rand"
	"testing"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestTableVShapes(t *testing.T) {
	specs := TableV()
	if len(specs) != 5 {
		t.Fatalf("Table V has %d rows", len(specs))
	}
	want := map[string][4]int{ // classes, train, test, features
		"cod-rna":      {2, 59535, 0, 8},
		"colon-cancer": {2, 62, 0, 2000},
		"dna":          {3, 2000, 1186, 180},
		"phishing":     {2, 11055, 0, 68},
		"protein":      {3, 17766, 6621, 357},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected dataset %s", s.Name)
			continue
		}
		if s.Classes != w[0] || s.Train != w[1] || s.Test != w[2] || s.Features != w[3] {
			t.Errorf("%s: %+v, want %v", s.Name, s, w)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("dna")
	if err != nil || s.Classes != 3 {
		t.Fatalf("ByName(dna): %+v %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset resolved")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	spec := Spec{Name: "t", Classes: 3, Train: 90, Test: 30, Features: 5}
	d := Generate(spec, rng(1))
	if len(d.TrainX) != 90 || len(d.TrainY) != 90 || len(d.TestX) != 30 {
		t.Fatalf("shapes: %d %d %d", len(d.TrainX), len(d.TrainY), len(d.TestX))
	}
	for _, x := range d.TrainX {
		if len(x) != 5 {
			t.Fatalf("feature width %d", len(x))
		}
	}
	// All classes present.
	seen := map[int]bool{}
	for _, y := range d.TrainY {
		seen[y] = true
	}
	if len(seen) != 3 {
		t.Fatalf("classes present: %v", seen)
	}
	// Deterministic for a seed, different across seeds.
	d2 := Generate(spec, rng(1))
	if d.TrainX[0][0] != d2.TrainX[0][0] {
		t.Fatal("not deterministic")
	}
	d3 := Generate(spec, rng(2))
	if d.TrainX[0][0] == d3.TrainX[0][0] {
		t.Fatal("seed has no effect")
	}
}

func TestTestSetFallback(t *testing.T) {
	spec := Spec{Name: "t", Classes: 2, Train: 40, Test: 0, Features: 3}
	d := Generate(spec, rng(1))
	if len(d.TestX) != 10 { // quarter of the training set
		t.Fatalf("fallback test size %d", len(d.TestX))
	}
}

func TestScale(t *testing.T) {
	s := Spec{Name: "t", Classes: 3, Train: 1000, Test: 500, Features: 2}
	sc := s.Scale(0.01)
	if sc.Train != 10 || sc.Test != 5 {
		t.Fatalf("scaled: %+v", sc)
	}
	// Scaling never goes below one sample per class.
	tiny := s.Scale(0.000001)
	if tiny.Train < s.Classes {
		t.Fatalf("over-scaled: %+v", tiny)
	}
}
