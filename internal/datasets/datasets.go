// Package datasets generates synthetic classification datasets with the
// shapes of the paper's Table V (cod-rna, colon-cancer, dna, phishing,
// protein). The originals are external downloads; the evaluation only
// depends on their dimensionality — class count, training/testing sizes and
// feature width set the compute/communication ratio Figure 9 measures — so
// deterministic Gaussian-blob surrogates with the same shapes preserve the
// experiment (see DESIGN.md, substitutions).
package datasets

import (
	"fmt"
	"math"
	"math/rand"
)

// Spec describes a dataset's shape, mirroring one row of Table V.
type Spec struct {
	Name     string
	Classes  int
	Train    int
	Test     int // 0: the paper reuses a fraction of the training set
	Features int
}

// TableV lists the paper's datasets.
func TableV() []Spec {
	return []Spec{
		{Name: "cod-rna", Classes: 2, Train: 59535, Test: 0, Features: 8},
		{Name: "colon-cancer", Classes: 2, Train: 62, Test: 0, Features: 2000},
		{Name: "dna", Classes: 3, Train: 2000, Test: 1186, Features: 180},
		{Name: "phishing", Classes: 2, Train: 11055, Test: 0, Features: 68},
		{Name: "protein", Classes: 3, Train: 17766, Test: 6621, Features: 357},
	}
}

// ByName returns the Table V spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range TableV() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Scale returns a copy with train/test sizes multiplied by f (at least one
// sample per class), used to run the full experiment shape at laptop scale.
func (s Spec) Scale(f float64) Spec {
	scaled := s
	scaled.Train = max(int(float64(s.Train)*f), s.Classes*2)
	if s.Test > 0 {
		scaled.Test = max(int(float64(s.Test)*f), s.Classes)
	}
	return scaled
}

// Data is a generated dataset.
type Data struct {
	Spec   Spec
	TrainX [][]float64
	TrainY []int
	TestX  [][]float64
	TestY  []int
}

// Generate produces a deterministic dataset for the spec: one Gaussian blob
// per class, centres spread on a simplex, 20% label-free overlap so the
// problem is separable-but-not-trivially (support vectors exist). The caller
// injects the seeded RNG (nescheck's determinism rule forbids constructing
// sources here): the same *rand.Rand state always yields the same dataset.
func Generate(spec Spec, rng *rand.Rand) *Data {
	centres := make([][]float64, spec.Classes)
	for c := range centres {
		centres[c] = make([]float64, spec.Features)
		for f := range centres[c] {
			// Deterministic per-class direction.
			centres[c][f] = 2 * math.Sin(float64(c+1)*float64(f+1))
		}
	}
	sample := func(n int) ([][]float64, []int) {
		X := make([][]float64, n)
		Y := make([]int, n)
		for i := range X {
			c := i % spec.Classes
			x := make([]float64, spec.Features)
			for f := range x {
				x[f] = centres[c][f] + rng.NormFloat64()*1.2
			}
			X[i] = x
			Y[i] = c
		}
		return X, Y
	}
	d := &Data{Spec: spec}
	d.TrainX, d.TrainY = sample(spec.Train)
	if spec.Test > 0 {
		d.TestX, d.TestY = sample(spec.Test)
	} else {
		// "Training set is reused as test set" for datasets without one —
		// the paper uses a fraction of the training data for prediction.
		n := max(spec.Train/4, 1)
		d.TestX, d.TestY = d.TrainX[:n], d.TrainY[:n]
	}
	return d
}
