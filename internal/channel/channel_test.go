package channel_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/channel"
	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

func TestGCMRoundTrip(t *testing.T) {
	k := kos.New(sgx.MustNew(sgx.SmallConfig()))
	key := [16]byte{1, 2, 3}
	tx, err := channel.NewGCM(k.IPC, "a2b", key)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := channel.NewGCM(k.IPC, "a2b", key)
	if err != nil {
		t.Fatal(err)
	}
	tx.Send([]byte("hello"))
	tx.Send([]byte("world"))
	for _, want := range []string{"hello", "world"} {
		got, ok, err := rx.Recv()
		if err != nil || !ok || string(got) != want {
			t.Fatalf("recv %q %v %v, want %q", got, ok, err, want)
		}
	}
	if _, ok, _ := rx.Recv(); ok {
		t.Fatal("recv from empty channel")
	}
}

func TestGCMConfidentialityFromKernel(t *testing.T) {
	k := kos.New(sgx.MustNew(sgx.SmallConfig()))
	tx, _ := channel.NewGCM(k.IPC, "a2b", [16]byte{9})
	secret := []byte("the-kernel-must-not-read-this")
	tx.Send(secret)
	for _, m := range k.IPC.Eavesdrop("a2b") {
		if bytes.Contains(m, secret[:8]) {
			t.Fatal("plaintext visible to the kernel")
		}
	}
}

func TestGCMDetectsForgeAndReplay(t *testing.T) {
	k := kos.New(sgx.MustNew(sgx.SmallConfig()))
	key := [16]byte{7}
	// Forge: kernel substitutes its own bytes.
	k.IPC.SetAdversary("a2b", &kos.IPCAdversary{Forge: func(p []byte) []byte {
		return []byte("forged-ciphertext")
	}})
	tx, _ := channel.NewGCM(k.IPC, "a2b", key)
	rx, _ := channel.NewGCM(k.IPC, "a2b", key)
	tx.Send([]byte("msg"))
	if _, ok, err := rx.Recv(); !ok || err == nil {
		t.Fatal("forged message accepted")
	}
	// Replay: kernel re-delivers the previous ciphertext; the sequence
	// number in the nonce rejects it.
	k2 := kos.New(sgx.MustNew(sgx.SmallConfig()))
	k2.IPC.SetAdversary("c", &kos.IPCAdversary{ReplayLast: true})
	tx2, _ := channel.NewGCM(k2.IPC, "c", key)
	rx2, _ := channel.NewGCM(k2.IPC, "c", key)
	tx2.Send([]byte("first"))
	tx2.Send([]byte("second"))
	if got, ok, err := rx2.Recv(); !ok || err != nil || string(got) != "first" {
		t.Fatalf("first recv: %q %v %v", got, ok, err)
	}
	if _, ok, err := rx2.Recv(); !ok || err == nil {
		t.Fatal("replayed message accepted")
	}
}

func TestGCMCannotDetectSilentDrop(t *testing.T) {
	// The residual weakness of the baseline: a dropped message looks
	// exactly like no message.
	k := kos.New(sgx.MustNew(sgx.SmallConfig()))
	k.IPC.SetAdversary("a2b", &kos.IPCAdversary{DropNext: 1})
	key := [16]byte{3}
	tx, _ := channel.NewGCM(k.IPC, "a2b", key)
	rx, _ := channel.NewGCM(k.IPC, "a2b", key)
	tx.Send([]byte("the-initialization-call"))
	_, ok, err := rx.Recv()
	if ok || err != nil {
		t.Fatalf("drop should be silent: ok=%v err=%v", ok, err)
	}
}

// outerRig builds an outer enclave with two peer inners and returns cores
// positioned OUTSIDE any enclave plus the enclaves for ecall-driven tests.
type outerRig struct {
	m        *sgx.Machine
	k        *kos.Kernel
	host     *sdk.Host
	outer    *sdk.Enclave
	in1, in2 *sdk.Enclave
	chBase   isa.VAddr
	outerImg *sdk.Image
}

func newOuterRig(t *testing.T, heapPages int) *outerRig {
	t.Helper()
	m := sgx.MustNew(sgx.SmallConfig())
	ext := core.Enable(m, core.TwoLevel())
	k := kos.New(m)
	host := sdk.NewHost(k, ext)

	l := sdk.DefaultLayout()
	l.HeapPages = heapPages
	outerImg := sdk.NewImage("outer", 0x2000_0000, l)
	in1Img := sdk.NewImage("in1", 0x1000_0000, sdk.DefaultLayout())
	in2Img := sdk.NewImage("in2", 0x4000_0000, sdk.DefaultLayout())

	registerChannelCalls(in1Img)
	registerChannelCalls(in2Img)
	registerChannelCalls(outerImg)

	author := measure.MustNewAuthor()
	so := outerImg.Sign(author, nil, []measure.Digest{in1Img.Measure(), in2Img.Measure()})
	s1 := in1Img.Sign(author, []measure.Digest{outerImg.Measure()}, nil)
	s2 := in2Img.Sign(author, []measure.Digest{outerImg.Measure()}, nil)

	outer, err := host.Load(so)
	if err != nil {
		t.Fatal(err)
	}
	in1, err := host.Load(s1)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := host.Load(s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Associate(in1, outer); err != nil {
		t.Fatal(err)
	}
	if err := host.Associate(in2, outer); err != nil {
		t.Fatal(err)
	}
	return &outerRig{m: m, k: k, host: host, outer: outer, in1: in1, in2: in2,
		chBase: outerImg.HeapBase(), outerImg: outerImg}
}

// registerChannelCalls adds entry points that operate an OuterChannel whose
// base/size arrive in the arguments.
func registerChannelCalls(img *sdk.Image) {
	decode := func(args []byte) (*channel.OuterChannel, []byte, error) {
		base := isa.VAddr(le64(args[:8]))
		size := le64(args[8:16])
		ch, err := channel.NewOuter(base, size)
		return ch, args[16:], err
	}
	img.RegisterECall("ch_init", func(env *sdk.Env, args []byte) ([]byte, error) {
		ch, _, err := decode(args)
		if err != nil {
			return nil, err
		}
		return nil, ch.Init(env.C)
	})
	img.RegisterECall("ch_send", func(env *sdk.Env, args []byte) ([]byte, error) {
		ch, payload, err := decode(args)
		if err != nil {
			return nil, err
		}
		ok, err := ch.Send(env.C, payload)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{0}, nil
		}
		return []byte{1}, nil
	})
	img.RegisterECall("ch_recv", func(env *sdk.Env, args []byte) ([]byte, error) {
		ch, _, err := decode(args)
		if err != nil {
			return nil, err
		}
		payload, ok, err := ch.Recv(env.C)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{0}, nil
		}
		return append([]byte{1}, payload...), nil
	})
}

func le64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}

func chArgs(base isa.VAddr, size uint64, payload []byte) []byte {
	b := make([]byte, 16, 16+len(payload))
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(base) >> (8 * i))
		b[8+i] = byte(size >> (8 * i))
	}
	return append(b, payload...)
}

func TestOuterChannelBetweenPeerInners(t *testing.T) {
	r := newOuterRig(t, 16)
	size := uint64(4096)
	if _, err := r.outer.ECall("ch_init", chArgs(r.chBase, size, nil)); err != nil {
		t.Fatal(err)
	}
	// Inner 1 sends through the outer enclave's memory...
	msg := []byte("plaintext-in-protected-memory")
	out, err := r.in1.ECall("ch_send", chArgs(r.chBase, size, msg))
	if err != nil || out[0] != 1 {
		t.Fatalf("send: %v %v", out, err)
	}
	// ...and inner 2 receives it.
	got, err := r.in2.ECall("ch_recv", chArgs(r.chBase, size, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || !bytes.Equal(got[1:], msg) {
		t.Fatalf("recv: %v", got)
	}
	// Empty now.
	got, err = r.in2.ECall("ch_recv", chArgs(r.chBase, size, nil))
	if err != nil || got[0] != 0 {
		t.Fatalf("recv from empty: %v %v", got, err)
	}
}

func TestOuterChannelInvisibleToKernel(t *testing.T) {
	r := newOuterRig(t, 16)
	size := uint64(4096)
	if _, err := r.outer.ECall("ch_init", chArgs(r.chBase, size, nil)); err != nil {
		t.Fatal(err)
	}
	secret := []byte("kernel-cannot-see-or-drop-this!!")
	if _, err := r.in1.ECall("ch_send", chArgs(r.chBase, size, secret)); err != nil {
		t.Fatal(err)
	}
	// The kernel reads the channel memory: abort-page 0xFF everywhere.
	c := r.m.Core(0)
	if err := r.k.Schedule(c, r.host.Proc); err != nil {
		t.Fatal(err)
	}
	snoop, err := c.Read(r.chBase, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range snoop {
		if b != 0xFF {
			t.Fatalf("kernel observed channel bytes: %v", snoop[:8])
		}
	}
	// A kernel write cannot corrupt the message either.
	if err := c.Write(r.chBase+16, []byte("corruption")); err != nil {
		t.Fatal(err)
	}
	got, err := r.in2.ECall("ch_recv", chArgs(r.chBase, size, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || !bytes.Equal(got[1:], secret) {
		t.Fatalf("message corrupted by kernel write: %v", got)
	}
}

func TestOuterChannelBackpressureAndWrap(t *testing.T) {
	r := newOuterRig(t, 16)
	size := uint64(64)
	if _, err := r.outer.ECall("ch_init", chArgs(r.chBase, size, nil)); err != nil {
		t.Fatal(err)
	}
	// Fill beyond capacity: sends start returning full.
	payload := bytes.Repeat([]byte{0xCC}, 20)
	sent := 0
	for i := 0; i < 10; i++ {
		out, err := r.in1.ECall("ch_send", chArgs(r.chBase, size, payload))
		if err != nil {
			t.Fatal(err)
		}
		if out[0] == 1 {
			sent++
		}
	}
	if sent == 0 || sent >= 10 {
		t.Fatalf("backpressure broken: sent %d of 10", sent)
	}
	// Drain and refill repeatedly to exercise wrap-around.
	for round := 0; round < 5; round++ {
		for {
			got, err := r.in2.ECall("ch_recv", chArgs(r.chBase, size, nil))
			if err != nil {
				t.Fatal(err)
			}
			if got[0] == 0 {
				break
			}
			if !bytes.Equal(got[1:], payload) {
				t.Fatalf("round %d corrupted payload: %v", round, got[1:])
			}
		}
		for i := 0; i < 2; i++ {
			if _, err := r.in1.ECall("ch_send", chArgs(r.chBase, size, payload)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestOuterChannelRejectsOversized(t *testing.T) {
	r := newOuterRig(t, 16)
	size := uint64(64)
	if _, err := r.outer.ECall("ch_init", chArgs(r.chBase, size, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.in1.ECall("ch_send", chArgs(r.chBase, size, make([]byte, 100))); err == nil {
		t.Fatal("oversized message accepted")
	}
	if _, err := channel.NewOuter(0x1000, 13); err == nil {
		t.Fatal("unaligned ring size accepted")
	}
}
