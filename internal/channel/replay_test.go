package channel

import (
	"errors"
	"fmt"
	"testing"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/sdk"
)

// Satellite coverage for the adversarial channel contract: disorder deeper
// than the retransmit window is an attack, typed ErrReplayDetected, never
// transient — so retry loops fail fast instead of hammering a lying kernel.

func TestReplayBeyondWindowDetected(t *testing.T) {
	const win = 4
	k, tx, rx := reliablePair(t, win)
	// The kernel hoards every raw frame; arm it to re-deliver frame 0 long
	// after the stream has moved past the retransmit window.
	replay := false
	k.IPC.SetAdversary("rel", &kos.IPCAdversary{
		Scramble: func(log, queue [][]byte, incoming []byte) [][]byte {
			out := append(queue, incoming)
			if replay && len(log) > 0 {
				out = append(out, log[0])
				replay = false
			}
			return out
		},
	})
	drain := func(want int) {
		t.Helper()
		for i := 0; i < want; i++ {
			if _, ok, err := rx.Recv(); !ok || err != nil {
				t.Fatalf("drain: ok=%v err=%v", ok, err)
			}
		}
	}
	for i := 0; i < 8; i++ {
		tx.Send([]byte(fmt.Sprintf("m%d", i)))
	}
	drain(8)
	replay = true
	tx.Send([]byte("m8"))
	drain(1)
	_, _, err := rx.Recv() // the replayed frame 0, lagging 9 > win
	var re *ReplayError
	if !errors.As(err, &re) {
		t.Fatalf("expected ReplayError, got %v", err)
	}
	if re.Seq != 0 || re.Reorder {
		t.Fatalf("replay error = %+v, want replayed frame 0", re)
	}
	if !errors.Is(err, ErrReplayDetected) {
		t.Fatal("ReplayError does not match ErrReplayDetected")
	}
	if errors.Is(err, chaos.ErrTransient) {
		t.Fatal("replay attack classified transient — retry loops would spin on it")
	}
}

func TestDeepReorderDetected(t *testing.T) {
	const win = 4
	k, tx, rx := reliablePair(t, win)
	// Withhold frame 1 permanently: by the time its gap is discovered the
	// sender's window has slid past it, which no honest kernel can cause.
	withheld := false
	k.IPC.SetAdversary("rel", &kos.IPCAdversary{
		Scramble: func(log, queue [][]byte, incoming []byte) [][]byte {
			if !withheld && len(log) == 2 {
				withheld = true
				return queue
			}
			return append(queue, incoming)
		},
	})
	for i := 0; i < 10; i++ {
		tx.Send([]byte(fmt.Sprintf("m%d", i)))
	}
	if pt, ok, err := rx.RecvRepaired(tx, 8); !ok || err != nil || string(pt) != "m0" {
		t.Fatalf("first frame: %q ok=%v err=%v", pt, ok, err)
	}
	_, _, err := rx.RecvRepaired(tx, 8)
	var re *ReplayError
	if !errors.As(err, &re) {
		t.Fatalf("expected ReplayError, got %v", err)
	}
	if !re.Reorder || re.Seq != 1 {
		t.Fatalf("replay error = %+v, want reorder of frame 1", re)
	}
	if !errors.Is(err, ErrReplayDetected) || errors.Is(err, chaos.ErrTransient) {
		t.Fatalf("deep reorder misclassified: %v", err)
	}
}

// TestRetryPolicyFailsFastOnReplay: a detected replay is permanent — the
// policy must surface it after exactly one attempt, not burn its backoff
// budget against an adversary.
func TestRetryPolicyFailsFastOnReplay(t *testing.T) {
	attempts := 0
	err := sdk.RetryPolicy{MaxAttempts: 6}.Run(nil, nil, func() error {
		attempts++
		return &ReplayError{Channel: "rel", Seq: 0, Latest: 20}
	})
	if attempts != 1 {
		t.Fatalf("replay retried %d times, want fail-fast after 1", attempts)
	}
	if !errors.Is(err, ErrReplayDetected) {
		t.Fatalf("error lost its replay typing: %v", err)
	}
}
