package channel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nestedenclave/internal/kos"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

func TestSendBatchOneKernelCrossing(t *testing.T) {
	k, tx, rx := reliablePair(t, 0)
	const n = 16
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("payload-%02d", i))
	}
	tx.SendBatch(batch)

	if got := k.IPC.Sends("rel"); got != 1 {
		t.Fatalf("batch of %d crossed the kernel %d times, want 1", n, got)
	}
	got, ok, err := rx.RecvBatch()
	if err != nil || !ok {
		t.Fatalf("RecvBatch: ok=%v err=%v", ok, err)
	}
	if len(got) != n {
		t.Fatalf("RecvBatch returned %d payloads, want %d", len(got), n)
	}
	for i := range got {
		if !bytes.Equal(got[i], batch[i]) {
			t.Fatalf("payload %d: got %q want %q", i, got[i], batch[i])
		}
	}
	if _, ok, _ := rx.RecvBatch(); ok {
		t.Fatal("phantom batch")
	}
}

func TestSendBatchEmptySendsNothing(t *testing.T) {
	k, tx, _ := reliablePair(t, 0)
	tx.SendBatch(nil)
	if got := k.IPC.Sends("rel"); got != 0 {
		t.Fatalf("empty batch crossed the kernel %d times", got)
	}
}

// TestSendBatchAmortizesGCMFixedCost measures the modelled crypto cycles for
// n small messages sent individually vs as one batch: the batch pays one
// CostGCMFixed instead of n, so it must be substantially cheaper.
func TestSendBatchAmortizesGCMFixedCost(t *testing.T) {
	const n, size = 32, 64
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, size)
	}

	run := func(batched bool) int64 {
		k := kos.New(sgx.MustNew(sgx.SmallConfig()))
		rec := &trace.Recorder{}
		tx, err := NewReliable(k.IPC, "amort", [16]byte{7}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewReliable(k.IPC, "amort", [16]byte{7}, 0)
		if err != nil {
			t.Fatal(err)
		}
		tx.Trace(rec)
		rx.Trace(rec)
		start := rec.Cycles()
		if batched {
			tx.SendBatch(payloads)
			got, ok, err := rx.RecvBatch()
			if err != nil || !ok || len(got) != n {
				t.Fatalf("batched recv: ok=%v err=%v n=%d", ok, err, len(got))
			}
		} else {
			for _, p := range payloads {
				tx.Send(p)
			}
			for i := 0; i < n; i++ {
				if _, ok, err := rx.Recv(); err != nil || !ok {
					t.Fatalf("recv %d: ok=%v err=%v", i, ok, err)
				}
			}
		}
		return rec.Cycles() - start
	}

	single := run(false)
	batched := run(true)
	// n messages pay n*(seal+open) fixed costs; the batch pays one pair. The
	// per-block cost is identical up to framing, so the saving must approach
	// 2*(n-1)*CostGCMFixed.
	saving := single - batched
	floor := int64(2*(n-1)) * trace.CostGCMFixed * 9 / 10
	if saving < floor {
		t.Fatalf("batching saved %d cycles (single=%d batched=%d), want >= %d", saving, single, batched, floor)
	}
}

// TestBatchFrameRepairsAsAUnit drops the batch frame in flight and checks
// the retransmit loop redelivers every payload in it.
func TestBatchFrameRepairsAsAUnit(t *testing.T) {
	k, tx, rx := reliablePair(t, 0)
	k.IPC.SetAdversary("rel", &kos.IPCAdversary{DropNext: 1})
	batch := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	tx.SendBatch(batch) // dropped by the kernel
	tx.Send([]byte("tail"))

	got, ok, err := rx.RecvBatchRepaired(tx, 0)
	if err != nil || !ok {
		t.Fatalf("repaired batch: ok=%v err=%v", ok, err)
	}
	if len(got) != len(batch) || !bytes.Equal(got[2], []byte("ccc")) {
		t.Fatalf("repaired batch = %q", got)
	}
	pt, ok, err := rx.RecvRepaired(tx, 0)
	if err != nil || !ok || string(pt) != "tail" {
		t.Fatalf("tail after repaired batch: %q ok=%v err=%v", pt, ok, err)
	}
}

// TestBatchFrameTruncationDetected: a non-batch frame fed to RecvBatch (or a
// malformed batch) is an explicit error, not a silent misparse.
func TestBatchFrameTruncationDetected(t *testing.T) {
	_, tx, rx := reliablePair(t, 0)
	tx.Send([]byte("not-a-batch-frame"))
	_, ok, err := rx.RecvBatch()
	if !ok || err == nil {
		t.Fatalf("malformed batch accepted: ok=%v err=%v", ok, err)
	}
	var ge *GapError
	if errors.As(err, &ge) {
		t.Fatalf("malformed batch misclassified as transport gap: %v", err)
	}
}
