package channel

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/trace"
)

// ReliableChannel layers sequence-gap detection and bounded retransmission
// over the encrypted IPC path, closing GCMChannel's residual weakness: a
// silently dropped message is no longer indistinguishable from "nothing sent
// yet". Each frame carries its sequence number in clear (the kernel must be
// able to route it; integrity comes from binding it into the AEAD nonce and
// authenticating the channel name), the sender keeps a bounded window of
// sent frames for retransmission, and the receiver detects duplicates,
// gaps, and corruption, asking the sender to resend exactly what is missing.
type ReliableChannel struct {
	ipc  *kos.IPCService
	name string
	aead cipher.AEAD

	sendSeq uint64
	recvSeq uint64

	// window holds recently sent frames (ciphertext) for retransmission,
	// bounded to winSize entries.
	window  map[uint64][]byte
	winSize int

	// stash holds authenticated frames that arrived ahead of a gap.
	stash map[uint64][]byte

	// chaos, when set, is credited a recovery each time a repair loop
	// cures an injected drop/corruption/duplicate.
	chaos *chaos.Injector

	// rec, when set (Trace), opens a span per send/receive/retransmit, so
	// kernel-level IPC fault injections — which fire inside ipc.Send, below
	// any core context — attach to the channel operation that carried them,
	// and a repaired gap shows its retransmits nested inside the receive.
	rec *trace.Recorder
}

// NewReliable creates an endpoint. Both ends construct it with the same name
// and key (established out of band, e.g. via local attestation). window
// bounds the retransmit buffer (0 → 64 frames).
func NewReliable(ipc *kos.IPCService, name string, key [16]byte, window int) (*ReliableChannel, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 64
	}
	return &ReliableChannel{
		ipc:     ipc,
		name:    name,
		aead:    aead,
		window:  make(map[uint64][]byte),
		winSize: window,
		stash:   make(map[uint64][]byte),
	}, nil
}

// SetChaos attributes repaired faults to the injector's IPC sites.
func (ch *ReliableChannel) SetChaos(inj *chaos.Injector) { ch.chaos = inj }

// Trace opens spans for channel operations on the recorder (nil disables).
func (ch *ReliableChannel) Trace(rec *trace.Recorder) { ch.rec = rec }

// beginSpan opens a machine-global span when tracing is on; the zero SpanRef
// otherwise (its End is a no-op).
func (ch *ReliableChannel) beginSpan(op string) trace.SpanRef {
	if ch.rec == nil {
		return trace.SpanRef{}
	}
	return ch.rec.BeginSpan(trace.NoCore, trace.NoEID, op+":"+ch.name)
}

// GapError reports a detected loss: the receiver needs frame Want but saw
// frame Got (Corrupt marks an authentication failure instead of a skip).
// It is transient — a retransmit cures it.
type GapError struct {
	Channel string
	Want    uint64
	Got     uint64
	Corrupt bool
}

func (e *GapError) Error() string {
	if e.Corrupt {
		return fmt.Sprintf("channel %s: frame %d failed authentication (corrupted in flight)", e.Channel, e.Want)
	}
	return fmt.Sprintf("channel %s: sequence gap: want %d, got %d (dropped in flight)", e.Channel, e.Want, e.Got)
}

// Is classifies gaps as transient for retry policies.
func (e *GapError) Is(target error) bool { return target == chaos.ErrTransient }

// ErrReplayDetected is the sentinel for *adversarial* channel failures: a
// frame replayed from beyond the retransmit window, or a reorder so deep the
// missing frame can no longer be retransmitted. Unlike a GapError these are
// NOT transient — an honest kernel under loss can only produce disorder
// within the bounded window, so anything beyond it is a malicious router and
// retrying against it would hand the attacker unlimited tries. RetryPolicy
// therefore fails fast on this sentinel.
var ErrReplayDetected = errors.New("channel: replay detected")

// ReplayError reports an adversarial frame: Seq is the offending (replayed or
// unrecoverably missing) sequence number, Latest the stream position that
// proves it cannot be honest traffic. Reorder distinguishes the
// deep-reorder case (the missing frame fell out of the sender's retransmit
// window) from a straight replay of long-delivered traffic.
type ReplayError struct {
	Channel string
	Seq     uint64
	Latest  uint64
	Reorder bool
}

func (e *ReplayError) Error() string {
	if e.Reorder {
		return fmt.Sprintf("channel %s: frame %d reordered beyond the retransmit bound (stream at %d): replay attack suspected", e.Channel, e.Seq, e.Latest)
	}
	return fmt.Sprintf("channel %s: frame %d replayed from beyond the retransmit window (stream at %d)", e.Channel, e.Seq, e.Latest)
}

// Is marks replays as detected attacks — and deliberately NOT transient.
func (e *ReplayError) Is(target error) bool { return target == ErrReplayDetected }

// frame is [8-byte LE seq || AES-GCM(payload, nonce=seq, AAD=name)].
// When tracing is on, the software-crypto cost model charges one GCM seal
// over the payload — the fixed per-call cost dominates small messages, which
// is what SendBatch amortizes.
func (ch *ReliableChannel) seal(seq uint64, payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload)+16)
	binary.LittleEndian.PutUint64(out, seq)
	if ch.rec != nil {
		ch.rec.Advance(trace.GCMCycles(len(payload)))
	}
	return ch.aead.Seal(out, gcmNonce(seq), payload, []byte(ch.name))
}

// Send seals the payload under the next sequence number, records the frame
// in the retransmit window, and hands it to the kernel.
func (ch *ReliableChannel) Send(payload []byte) {
	sp := ch.beginSpan("chan_send")
	defer sp.End()
	ch.sendFrame(payload)
}

func (ch *ReliableChannel) sendFrame(payload []byte) {
	frame := ch.seal(ch.sendSeq, payload)
	ch.window[ch.sendSeq] = frame
	delete(ch.window, ch.sendSeq-uint64(ch.winSize))
	ch.sendSeq++
	ch.ipc.Send(ch.name, frame)
}

// SendBatch packs the payloads length-prefixed into ONE sealed frame under
// ONE sequence number: one AES-GCM seal (one CostGCMFixed instead of N) and
// one kernel crossing carry the whole batch. Loss, duplication and
// retransmission operate on the batch as a unit — a repaired gap redelivers
// every payload in it. An empty batch sends nothing.
func (ch *ReliableChannel) SendBatch(payloads [][]byte) {
	if len(payloads) == 0 {
		return
	}
	sp := ch.beginSpan("chan_send_batch")
	defer sp.End()
	ch.sendFrame(packBatch(payloads))
}

// packBatch is [u32 count || (u32 len || bytes)*].
func packBatch(payloads [][]byte) []byte {
	n := 4
	for _, p := range payloads {
		n += 4 + len(p)
	}
	out := make([]byte, 4, n)
	binary.LittleEndian.PutUint32(out, uint32(len(payloads)))
	for _, p := range payloads {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(p)))
		out = append(out, l[:]...)
		out = append(out, p...)
	}
	return out
}

func unpackBatch(channel string, b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("channel %s: batch frame truncated", channel)
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Each payload needs at least its 4-byte length prefix, which bounds any
	// honest count; a garbage frame must not size an allocation.
	if uint64(count)*4 > uint64(len(b)) {
		return nil, fmt.Errorf("channel %s: batch count %d exceeds frame", channel, count)
	}
	out := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("channel %s: batch frame truncated at payload %d", channel, i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, fmt.Errorf("channel %s: batch frame truncated at payload %d", channel, i)
		}
		out = append(out, b[:l:l])
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("channel %s: %d trailing bytes after batch", channel, len(b))
	}
	return out, nil
}

// Retransmit resends the frame with the given sequence number from the
// window. It fails if the frame has already been evicted.
func (ch *ReliableChannel) Retransmit(seq uint64) error {
	sp := ch.beginSpan("chan_retransmit")
	defer sp.End()
	frame, ok := ch.window[seq]
	if !ok {
		return fmt.Errorf("channel %s: frame %d no longer in retransmit window", ch.name, seq)
	}
	ch.ipc.Send(ch.name, frame)
	return nil
}

// Recv dequeues the next in-order message. Duplicates are silently dropped
// (crediting the dup fault site); a gap or corrupted frame returns a
// *GapError naming the missing sequence number so the caller can request a
// retransmit (see RecvRepaired).
func (ch *ReliableChannel) Recv() (payload []byte, ok bool, err error) {
	for {
		// A previously stashed out-of-order frame may now be next in line.
		if pt, hit := ch.stash[ch.recvSeq]; hit {
			delete(ch.stash, ch.recvSeq)
			ch.recvSeq++
			return pt, true, nil
		}
		raw, got := ch.ipc.TryRecv(ch.name)
		if !got {
			return nil, false, nil
		}
		if len(raw) < 8 {
			return nil, true, &GapError{Channel: ch.name, Want: ch.recvSeq, Corrupt: true}
		}
		seq := binary.LittleEndian.Uint64(raw)
		// The open runs over the whole ciphertext before authentication can
		// fail, so its cost is charged unconditionally when tracing is on.
		if ch.rec != nil {
			ch.rec.Advance(trace.GCMCycles(len(raw) - 8))
		}
		pt, aerr := ch.aead.Open(nil, gcmNonce(seq), raw[8:], []byte(ch.name))
		if aerr != nil {
			// The claimed sequence number is untrustworthy (the corruption
			// may have hit it), so ask for the next frame we actually
			// need; a mangled future frame will resurface as a gap later.
			return nil, true, &GapError{Channel: ch.name, Want: ch.recvSeq, Corrupt: true}
		}
		switch {
		case seq < ch.recvSeq:
			// An honest retransmit or duplicated frame can lag the stream by
			// at most the retransmit window. Anything older is a replay of
			// long-delivered traffic — an attack, not noise.
			if ch.recvSeq-seq > uint64(ch.winSize) {
				return nil, true, &ReplayError{Channel: ch.name, Seq: seq, Latest: ch.recvSeq}
			}
			// Duplicate of an already-delivered frame: drop and keep going.
			ch.chaos.Recovered(chaos.SiteIPCDup)
			continue
		case seq > ch.recvSeq:
			// Arrived ahead of a gap: stash it, report the missing frame.
			ch.stash[seq] = pt
			return nil, true, &GapError{Channel: ch.name, Want: ch.recvSeq, Got: seq}
		default:
			ch.recvSeq++
			return pt, true, nil
		}
	}
}

// RecvBatch dequeues one batch frame sent by SendBatch and unpacks it. ok is
// false when no frame is pending; a gap or corruption surfaces exactly as in
// Recv so the usual repair loop applies.
func (ch *ReliableChannel) RecvBatch() (payloads [][]byte, ok bool, err error) {
	pt, ok, err := ch.Recv()
	if !ok || err != nil {
		return nil, ok, err
	}
	payloads, err = unpackBatch(ch.name, pt)
	return payloads, true, err
}

// RecvBatchRepaired is RecvBatch driving the retransmit repair loop (see
// RecvRepaired). A repaired gap redelivers the whole batch.
func (ch *ReliableChannel) RecvBatchRepaired(sender *ReliableChannel, maxRepairs int) (payloads [][]byte, ok bool, err error) {
	pt, ok, err := ch.RecvRepaired(sender, maxRepairs)
	if !ok || err != nil {
		return nil, ok, err
	}
	payloads, err = unpackBatch(ch.name, pt)
	return payloads, true, err
}

// RecvRepaired is Recv driving the repair loop against the sending endpoint:
// on a gap or corruption it asks sender to retransmit the missing frame and
// retries, up to maxRepairs times. Successful repairs credit the drop or
// corruption fault site.
func (ch *ReliableChannel) RecvRepaired(sender *ReliableChannel, maxRepairs int) (payload []byte, ok bool, err error) {
	sp := ch.beginSpan("chan_recv")
	defer sp.End()
	if maxRepairs <= 0 {
		maxRepairs = 8
	}
	for attempt := 0; ; attempt++ {
		pt, got, rerr := ch.Recv()
		if rerr == nil {
			if attempt > 0 && got {
				site := chaos.SiteIPCDrop
				if ge, isGap := err.(*GapError); isGap && ge.Corrupt {
					site = chaos.SiteIPCCorrupt
				}
				ch.chaos.Recovered(site)
			}
			return pt, got, nil
		}
		ge, isGap := rerr.(*GapError)
		if !isGap || attempt >= maxRepairs {
			return nil, got, rerr
		}
		err = rerr
		if terr := sender.Retransmit(ge.Want); terr != nil {
			if ge.Corrupt {
				// The mangled frame was likely a stale duplicate whose
				// corrupted sequence field pointed past the stream; it
				// has been consumed, so just keep receiving.
				continue
			}
			// The missing frame fell out of the sender's retransmit window:
			// the stream was reordered deeper than any honest kernel could
			// manage. Classify as a detected attack so retries fail fast.
			return nil, got, &ReplayError{Channel: ch.name, Seq: ge.Want, Latest: sender.sendSeq, Reorder: true}
		}
	}
}
