package channel

import (
	"errors"
	"fmt"
	"testing"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/sgx"
)

func reliablePair(t *testing.T, window int) (*kos.Kernel, *ReliableChannel, *ReliableChannel) {
	t.Helper()
	k := kos.New(sgx.MustNew(sgx.SmallConfig()))
	key := [16]byte{1, 2, 3}
	tx, err := NewReliable(k.IPC, "rel", key, window)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReliable(k.IPC, "rel", key, window)
	if err != nil {
		t.Fatal(err)
	}
	return k, tx, rx
}

func TestReliableRoundTrip(t *testing.T) {
	_, tx, rx := reliablePair(t, 0)
	for i := 0; i < 10; i++ {
		tx.Send([]byte(fmt.Sprintf("msg-%d", i)))
	}
	for i := 0; i < 10; i++ {
		pt, ok, err := rx.Recv()
		if err != nil || !ok {
			t.Fatalf("recv %d: ok=%v err=%v", i, ok, err)
		}
		if string(pt) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("recv %d: got %q", i, pt)
		}
	}
	if _, ok, _ := rx.Recv(); ok {
		t.Fatal("phantom message")
	}
}

func TestReliableDetectsAndRepairsDrop(t *testing.T) {
	k, tx, rx := reliablePair(t, 0)
	k.IPC.SetAdversary("rel", &kos.IPCAdversary{DropNext: 1})
	tx.Send([]byte("first"))  // dropped by the kernel
	tx.Send([]byte("second")) // arrives, revealing the gap

	_, ok, err := rx.Recv()
	var ge *GapError
	if !ok || !errors.As(err, &ge) {
		t.Fatalf("expected gap error, got ok=%v err=%v", ok, err)
	}
	if ge.Want != 0 || ge.Corrupt {
		t.Fatalf("gap = %+v, want frame 0 dropped", ge)
	}
	if !errors.Is(err, chaos.ErrTransient) {
		t.Fatal("gap error not classified transient")
	}
	if err := tx.Retransmit(ge.Want); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"first", "second"} {
		pt, ok, err := rx.Recv()
		if err != nil || !ok || string(pt) != want {
			t.Fatalf("after repair, recv %d: %q ok=%v err=%v", i, pt, ok, err)
		}
	}
}

func TestReliableRepairLoopUnderChaos(t *testing.T) {
	// The whole stream is sent before anything is received, so the
	// retransmit window must cover it.
	k, tx, rx := reliablePair(t, 256)
	inj := chaos.New(chaos.Config{Seed: 12345, Sites: map[chaos.Site]chaos.SiteConfig{
		chaos.SiteIPCDrop:    {Prob: 0.15},
		chaos.SiteIPCDup:     {Prob: 0.15},
		chaos.SiteIPCCorrupt: {Prob: 0.15},
	}}, nil)
	k.SetChaos(inj)
	rx.SetChaos(inj)

	// Interleave sending and receiving (the realistic pattern — repair
	// frames must not land behind an unbounded backlog).
	const n = 200
	got := 0
	recvOne := func() bool {
		pt, ok, err := rx.RecvRepaired(tx, 16)
		if err != nil {
			t.Fatalf("after %d messages: %v", got, err)
		}
		if !ok {
			return false
		}
		if string(pt) != fmt.Sprintf("payload-%04d", got) {
			t.Fatalf("message %d: got %q", got, pt)
		}
		got++
		return true
	}
	for i := 0; i < n; i++ {
		tx.Send([]byte(fmt.Sprintf("payload-%04d", i)))
		for recvOne() {
		}
	}
	for got < n {
		if !recvOne() {
			// The tail was dropped with nothing after it to reveal the
			// gap; nudge with a retransmit.
			if terr := tx.Retransmit(uint64(got)); terr != nil {
				t.Fatalf("tail repair: %v", terr)
			}
		}
	}
	stats := inj.Stats()
	total := int64(0)
	for _, s := range stats {
		total += s.Injected
	}
	if total == 0 {
		t.Fatal("chaos injected nothing; test is vacuous")
	}
	t.Logf("chaos stats: %+v", stats)
}

func TestReliableWindowEviction(t *testing.T) {
	_, tx, _ := reliablePair(t, 4)
	for i := 0; i < 10; i++ {
		tx.Send([]byte("x"))
	}
	if err := tx.Retransmit(0); err == nil {
		t.Fatal("retransmit of evicted frame succeeded")
	}
	if err := tx.Retransmit(9); err != nil {
		t.Fatalf("retransmit of recent frame failed: %v", err)
	}
}

func TestReliableDuplicateSilentlyDropped(t *testing.T) {
	_, tx, rx := reliablePair(t, 0)
	tx.Send([]byte("once"))
	if _, ok, err := rx.Recv(); !ok || err != nil {
		t.Fatalf("first recv: ok=%v err=%v", ok, err)
	}
	if err := tx.Retransmit(0); err != nil {
		t.Fatal(err)
	}
	tx.Send([]byte("twice"))
	pt, ok, err := rx.Recv()
	if err != nil || !ok || string(pt) != "twice" {
		t.Fatalf("dup not skipped: %q ok=%v err=%v", pt, ok, err)
	}
}
