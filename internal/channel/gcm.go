// Package channel implements the two inter-enclave communication paths the
// paper compares (§VI-C, Figure 11):
//
//   - GCMChannel: the monolithic-SGX baseline. Peer enclaves exchange
//     messages through the untrusted world (the kernel's IPC service), so
//     every message must be protected by software authenticated encryption
//     (AES-GCM) with sequence numbers. The kernel can still *drop* messages
//     silently — the residual attack nested enclave eliminates.
//
//   - OuterChannel: the nested-enclave fast path. Peer inner enclaves share
//     a ring buffer placed in their common outer enclave's memory, which the
//     hardware already protects (MEE below the cache, access control at the
//     TLB). No software crypto is needed, and while the working set fits in
//     the LLC no memory encryption happens at all.
package channel

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/kos"
)

// GCMChannel is one direction of an encrypted channel over untrusted IPC.
// The two endpoints construct it with the same name and key; the key is
// assumed to have been established out of band (e.g. via local attestation).
type GCMChannel struct {
	ipc  *kos.IPCService
	name string
	aead cipher.AEAD

	sendSeq uint64
	recvSeq uint64
}

// NewGCM creates an endpoint of the channel.
func NewGCM(ipc *kos.IPCService, name string, key [16]byte) (*GCMChannel, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &GCMChannel{ipc: ipc, name: name, aead: aead}, nil
}

func gcmNonce(seq uint64) []byte {
	n := make([]byte, 12)
	binary.LittleEndian.PutUint64(n, seq)
	return n
}

// Send seals the payload under the next sequence number and hands it to the
// kernel for delivery.
func (ch *GCMChannel) Send(payload []byte) {
	ct := ch.aead.Seal(nil, gcmNonce(ch.sendSeq), payload, []byte(ch.name))
	ch.sendSeq++
	ch.ipc.Send(ch.name, ct)
}

// Recv dequeues and opens the next message. A forged, tampered, replayed or
// reordered message fails authentication. A silently dropped message is
// simply... absent: ok=false, indistinguishable from "nothing sent yet" —
// the weakness the paper's §VII-B attack exploits.
func (ch *GCMChannel) Recv() (payload []byte, ok bool, err error) {
	ct, ok := ch.ipc.TryRecv(ch.name)
	if !ok {
		return nil, false, nil
	}
	pt, err := ch.aead.Open(nil, gcmNonce(ch.recvSeq), ct, []byte(ch.name))
	if err != nil {
		return nil, true, fmt.Errorf("channel %s: authentication failed (forged, tampered or out-of-order message): %w", ch.name, err)
	}
	ch.recvSeq++
	return pt, true, nil
}
