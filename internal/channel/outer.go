package channel

import (
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
)

// OuterChannel is a single-producer single-consumer ring buffer located in
// an outer enclave's memory. Peer inner enclaves (and the outer enclave
// itself) read and write it through the hardware-validated access path: the
// kernel and unrelated enclaves see only abort-page 0xFF.
//
// Layout at Base (all fields little-endian):
//
//	+0   head  (u64)  — byte offset of next read, mod DataSize
//	+8   tail  (u64)  — byte offset of next write, mod DataSize
//	+16  data  [DataSize]byte
//
// Messages are framed as u32 length + payload, wrapping at the end of the
// data area. Offsets monotonically increase; head==tail means empty. The
// structure itself carries no crypto: hardware protection of the outer
// enclave's memory is the whole point.
type OuterChannel struct {
	base isa.VAddr
	size uint64 // data area size
}

const hdrSize = 16

// NewOuter creates a channel descriptor over [base, base+hdrSize+size) of
// outer-enclave memory. The creator (outer enclave code) must zero the
// header before first use; Init does that.
func NewOuter(base isa.VAddr, size uint64) (*OuterChannel, error) {
	if size == 0 || size%8 != 0 {
		return nil, fmt.Errorf("channel: data size %d must be a positive multiple of 8", size)
	}
	return &OuterChannel{base: base, size: size}, nil
}

// Init zeroes the ring state. Must run in a context that can write the
// outer enclave's memory (the outer enclave or one of its inners).
func (ch *OuterChannel) Init(c *sgx.Core) error {
	return c.Write(ch.base, make([]byte, hdrSize))
}

// Footprint returns the total bytes of outer-enclave memory the channel
// occupies — the quantity Figure 11 varies against the LLC size.
func (ch *OuterChannel) Footprint() uint64 { return hdrSize + ch.size }

func (ch *OuterChannel) readU64(c *sgx.Core, off uint64) (uint64, error) {
	return c.ReadU64(ch.base + isa.VAddr(off))
}

func (ch *OuterChannel) writeU64(c *sgx.Core, off uint64, v uint64) error {
	return c.WriteU64(ch.base+isa.VAddr(off), v)
}

// dataWrite writes b at ring offset off (mod size), wrapping.
func (ch *OuterChannel) dataWrite(c *sgx.Core, off uint64, b []byte) error {
	off %= ch.size
	first := min(uint64(len(b)), ch.size-off)
	if err := c.Write(ch.base+hdrSize+isa.VAddr(off), b[:first]); err != nil {
		return err
	}
	if first < uint64(len(b)) {
		return c.Write(ch.base+hdrSize, b[first:])
	}
	return nil
}

func (ch *OuterChannel) dataRead(c *sgx.Core, off uint64, n uint64) ([]byte, error) {
	off %= ch.size
	out := make([]byte, n)
	first := min(n, ch.size-off)
	if err := c.ReadInto(ch.base+hdrSize+isa.VAddr(off), out[:first]); err != nil {
		return nil, err
	}
	if first < n {
		if err := c.ReadInto(ch.base+hdrSize, out[first:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Send enqueues the payload. Returns false (without writing) when the ring
// lacks space.
func (ch *OuterChannel) Send(c *sgx.Core, payload []byte) (bool, error) {
	need := uint64(4 + len(payload))
	if need > ch.size {
		return false, fmt.Errorf("channel: message of %d bytes exceeds ring capacity %d", len(payload), ch.size)
	}
	head, err := ch.readU64(c, 0)
	if err != nil {
		return false, err
	}
	tail, err := ch.readU64(c, 8)
	if err != nil {
		return false, err
	}
	if tail-head+need > ch.size {
		return false, nil // full
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if err := ch.dataWrite(c, tail, lenBuf[:]); err != nil {
		return false, err
	}
	if err := ch.dataWrite(c, tail+4, payload); err != nil {
		return false, err
	}
	return true, ch.writeU64(c, 8, tail+need)
}

// Recv dequeues the next payload, if any.
func (ch *OuterChannel) Recv(c *sgx.Core) ([]byte, bool, error) {
	head, err := ch.readU64(c, 0)
	if err != nil {
		return nil, false, err
	}
	tail, err := ch.readU64(c, 8)
	if err != nil {
		return nil, false, err
	}
	if head == tail {
		return nil, false, nil
	}
	lenBuf, err := ch.dataRead(c, head, 4)
	if err != nil {
		return nil, false, err
	}
	n := uint64(binary.LittleEndian.Uint32(lenBuf))
	if n > ch.size {
		return nil, false, fmt.Errorf("channel: corrupt frame length %d", n)
	}
	payload, err := ch.dataRead(c, head+4, n)
	if err != nil {
		return nil, false, err
	}
	return payload, true, ch.writeU64(c, 0, head+4+n)
}
