// Package kos simulates the untrusted kernel of the machine: physical frame
// management, process address spaces, the SGX driver (enclave construction
// ioctls, EPC paging), the scheduler binding processes to cores, and an IPC
// service.
//
// Everything in this package is *inside the attacker's power* under the SGX
// threat model. The adversarial entry points are explicit: the kernel can
// rewrite page tables (Process.PageTable), skip TLB shootdowns
// (Driver.SkipShootdown), and drop/replay/forge IPC messages
// (IPCAdversary) — the attack reproductions in the case studies use exactly
// these knobs, and the hardware model is expected to contain them.
package kos

import (
	"fmt"
	"sync"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
)

// Kernel is the simulated operating system.
type Kernel struct {
	mu sync.Mutex

	m *sgx.Machine
	// freeFrames holds unreserved physical page numbers.
	freeFrames []uint64 //nescheck:guard mu

	Driver *Driver
	IPC    *IPCService

	// chaos, when set, injects kernel-level faults: EPC-allocation
	// failures in the driver and drop/duplicate/corrupt in the IPC
	// router. Install with SetChaos before driving workloads.
	chaos *chaos.Injector
}

// SetChaos installs (or, with nil, removes) the runtime fault injector on
// the kernel's hook points. Must be called before workloads start.
func (k *Kernel) SetChaos(inj *chaos.Injector) {
	k.chaos = inj
}

// New boots a kernel on the machine: builds the frame allocator over
// non-PRM DRAM and installs the page-fault handler on every core.
func New(m *sgx.Machine) *Kernel {
	k := &Kernel{m: m}
	layout := m.DRAM.Layout()
	for ppn := uint64(0); ppn < layout.DRAMSize>>isa.PageShift; ppn++ {
		pa := isa.PAddr(ppn << isa.PageShift)
		if m.DRAM.PageInPRM(pa) {
			continue
		}
		if ppn == 0 {
			continue // keep the null frame unmapped
		}
		//nescheck:allow atomicsafety constructor fills the free list before k is published; no other goroutine can hold a reference yet
		k.freeFrames = append(k.freeFrames, ppn)
	}
	k.Driver = &Driver{k: k, evicted: make(map[evictKey]*sgx.EvictedPage)}
	k.IPC = NewIPCService(k)
	for _, c := range m.Cores() {
		c.PFHandler = k.handleFault
	}
	return k
}

// Machine returns the underlying machine.
func (k *Kernel) Machine() *sgx.Machine { return k.m }

// allocFrame claims a physical frame.
func (k *Kernel) allocFrame() (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.freeFrames) == 0 {
		return 0, fmt.Errorf("kos: out of physical frames")
	}
	ppn := k.freeFrames[len(k.freeFrames)-1]
	k.freeFrames = k.freeFrames[:len(k.freeFrames)-1]
	return ppn, nil
}

func (k *Kernel) freeFrame(ppn uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.freeFrames = append(k.freeFrames, ppn)
}

// Process is one user address space.
type Process struct {
	k  *Kernel
	mu sync.Mutex

	// pt is the process page table — kernel-owned, untrusted.
	pt *pt.Table
	// nextMmap is the bump pointer for anonymous mappings, placed far from
	// typical ELRANGE bases.
	nextMmap isa.VAddr
	// frames tracks owned unreserved frames for teardown.
	frames []uint64
}

// NewProcess creates an empty address space.
func (k *Kernel) NewProcess() *Process {
	return &Process{k: k, pt: pt.New(), nextMmap: 0x7f00_0000_0000}
}

// PageTable exposes the process's page table. The kernel (and the attack
// code standing in for a malicious kernel) may rewrite it arbitrarily.
func (p *Process) PageTable() *pt.Table { return p.pt }

// Mmap allocates n bytes of zeroed anonymous memory and maps it with the
// given permissions, returning its base virtual address.
func (p *Process) Mmap(n int, perms isa.Perm) (isa.VAddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("kos: mmap of %d bytes", n)
	}
	npages := (n + isa.PageSize - 1) / isa.PageSize
	p.mu.Lock()
	base := p.nextMmap
	p.nextMmap += isa.VAddr(npages+1) * isa.PageSize // guard page gap
	p.mu.Unlock()
	for i := 0; i < npages; i++ {
		ppn, err := p.k.allocFrame()
		if err != nil {
			return 0, err
		}
		pa := isa.PAddr(ppn << isa.PageShift)
		p.k.m.DRAM.Zero(pa, isa.PageSize)
		p.mu.Lock()
		p.pt.Map(base+isa.VAddr(i)*isa.PageSize, pa, perms)
		p.frames = append(p.frames, ppn)
		p.mu.Unlock()
	}
	return base, nil
}

// MapFixed maps an existing physical page at a chosen virtual address — the
// primitive a malicious kernel uses to alias or remap memory in attacks.
func (p *Process) MapFixed(v isa.VAddr, pa isa.PAddr, perms isa.Perm) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pt.Map(v, pa, perms)
}

// Schedule installs the process on a core (context switch: CR3 load). The
// core must not be executing in enclave mode.
func (k *Kernel) Schedule(c *sgx.Core, p *Process) error {
	if c.InEnclave() {
		return fmt.Errorf("kos: cannot switch address space under an enclave")
	}
	c.PT = p.pt
	c.TLB.FlushAll()
	return nil
}

// handleFault is the kernel page-fault handler: it repairs faults it is
// responsible for (evicted EPC pages) and returns whether to retry.
func (k *Kernel) handleFault(c *sgx.Core, f *isa.Fault) bool {
	return k.Driver.reloadIfEvicted(c, f)
}
