package kos_test

import (
	"bytes"
	"fmt"
	"testing"

	"nestedenclave/internal/cache"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/sgx"
)

// tinyEPCMachine has room for only a few dozen EPC pages, forcing the
// paging daemon to work.
func tinyEPCMachine() *sgx.Machine {
	return sgx.MustNew(sgx.Config{
		Cores: 2,
		Phys: phys.Layout{
			DRAMSize: 8 << 20,
			PRMBase:  2 << 20,
			PRMSize:  256 * isa.PageSize, // 256 EPC pages
		},
		LLC: cache.Config{SizeBytes: 256 << 10, Ways: 8},
	})
}

// buildEnclaveN constructs an enclave with n RW data pages holding a
// per-page fill pattern, returning the SECS.
func buildEnclaveN(t *testing.T, k *kos.Kernel, p *kos.Process, base isa.VAddr, n int) *sgx.SECS {
	t.Helper()
	size := uint64(n+1) * isa.PageSize
	s, err := k.Driver.CreateEnclave(base, size, 0)
	if err != nil {
		t.Fatalf("ECREATE: %v", err)
	}
	b := measure.NewBuilder()
	b.ECreate(size, 0)
	for i := 0; i < n; i++ {
		v := base + isa.VAddr(i)*isa.PageSize
		content := bytes.Repeat([]byte{byte(i + 1)}, isa.PageSize)
		if err := k.Driver.AddPage(p, s, sgx.AddPageArgs{
			Vaddr: v, Type: isa.PTReg, Perms: isa.PermRW, Content: content, Measure: true,
		}); err != nil {
			t.Fatalf("EADD %d: %v", i, err)
		}
		b.EAdd(uint64(v-base), isa.PTReg, isa.PermRW)
		for ch := 0; ch < isa.PageSize; ch += isa.ExtendChunk {
			b.EExtend(uint64(v-base)+uint64(ch), content[ch:ch+isa.ExtendChunk])
		}
	}
	tcsV := base + isa.VAddr(n)*isa.PageSize
	if err := k.Driver.AddPage(p, s, sgx.AddPageArgs{Vaddr: tcsV, Type: isa.PTTCS}); err != nil {
		t.Fatalf("EADD tcs: %v", err)
	}
	b.EAdd(uint64(tcsV-base), isa.PTTCS, 0)
	author := measure.MustNewAuthor()
	if err := k.Driver.InitEnclave(s, author.Sign(b.Finalize(), nil, nil)); err != nil {
		t.Fatalf("EINIT: %v", err)
	}
	return s
}

// TestPagingDaemonOversubscription builds enclaves whose combined footprint
// exceeds the EPC; the paging daemon must evict victims transparently, and
// every page's content must survive the round trips through untrusted swap.
func TestPagingDaemonOversubscription(t *testing.T) {
	m := tinyEPCMachine()
	k := kos.New(m)
	p := k.NewProcess()
	c := m.Core(0)
	if err := k.Schedule(c, p); err != nil {
		t.Fatal(err)
	}

	// 256 EPC pages total; build 3 enclaves of 100 data pages each
	// (~306 pages + SECS/TCS overhead) — well oversubscribed.
	const perEnclave = 100
	var encls []*sgx.SECS
	for i := 0; i < 3; i++ {
		base := isa.VAddr(0x1000_0000 * (i + 1))
		encls = append(encls, buildEnclaveN(t, k, p, base, perEnclave))
	}
	if k.Driver.EvictedCount() == 0 {
		t.Fatal("oversubscription produced no evictions")
	}

	// Every page of every enclave still reads its fill pattern (reloaded on
	// demand through the fault handler).
	for i, s := range encls {
		base := isa.VAddr(0x1000_0000 * (i + 1))
		tcsV := base + perEnclave*isa.PageSize
		tcs, err := s.FindTCS(tcsV)
		if err != nil {
			t.Fatal(err)
		}
		_ = tcs
		if err := m.EEnter(c, s, tcsV, false); err != nil {
			t.Fatalf("enter enclave %d: %v", i, err)
		}
		for pg := 0; pg < perEnclave; pg += 7 {
			got, err := c.Read(base+isa.VAddr(pg)*isa.PageSize+100, 4)
			if err != nil {
				t.Fatalf("enclave %d page %d: %v", i, pg, err)
			}
			want := byte(pg + 1)
			for _, x := range got {
				if x != want {
					t.Fatalf("enclave %d page %d: content %v, want %#x", i, pg, got, want)
				}
			}
		}
		if err := m.EExit(c, true); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPagingDaemonThrashing alternates accesses between two enclaves that
// cannot both be resident, exercising evict-reload-evict cycles.
func TestPagingDaemonThrashing(t *testing.T) {
	m := tinyEPCMachine()
	k := kos.New(m)
	p := k.NewProcess()
	c := m.Core(0)
	if err := k.Schedule(c, p); err != nil {
		t.Fatal(err)
	}
	const perEnclave = 110 // 2x110 data pages + overhead > 256 EPC pages
	a := buildEnclaveN(t, k, p, 0x1000_0000, perEnclave)
	b := buildEnclaveN(t, k, p, 0x2000_0000, perEnclave)

	read := func(s *sgx.SECS, base isa.VAddr, pg int) error {
		tcsV := base + perEnclave*isa.PageSize
		if err := m.EEnter(c, s, tcsV, false); err != nil {
			return err
		}
		got, err := c.Read(base+isa.VAddr(pg)*isa.PageSize, 2)
		if err != nil {
			_ = m.EExit(c, true)
			return err
		}
		if got[0] != byte(pg+1) {
			_ = m.EExit(c, true)
			return fmt.Errorf("page %d content %v", pg, got)
		}
		return m.EExit(c, true)
	}
	for round := 0; round < 4; round++ {
		for pg := 0; pg < perEnclave; pg += 13 {
			if err := read(a, 0x1000_0000, pg); err != nil {
				t.Fatalf("round %d enclave a page %d: %v", round, pg, err)
			}
			if err := read(b, 0x2000_0000, pg); err != nil {
				t.Fatalf("round %d enclave b page %d: %v", round, pg, err)
			}
		}
	}
	if bad := m.AuditTLBs(); len(bad) != 0 {
		t.Fatalf("stale translations after thrash: %v", bad)
	}
}
