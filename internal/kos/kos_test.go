package kos_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/sgx"
)

func newKernel(t *testing.T) *kos.Kernel {
	t.Helper()
	return kos.New(sgx.MustNew(sgx.SmallConfig()))
}

func TestMmapAndAccess(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	c := k.Machine().Core(0)
	if err := k.Schedule(c, p); err != nil {
		t.Fatal(err)
	}
	v, err := p.Mmap(3*isa.PageSize, isa.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("ordinary process memory")
	if err := c.Write(v+100, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(v+100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
	// Fresh mappings are zeroed.
	z, _ := c.Read(v+isa.PageSize, 16)
	if !bytes.Equal(z, make([]byte, 16)) {
		t.Fatalf("fresh mapping not zeroed: %v", z)
	}
	// Distinct mmaps do not overlap.
	v2, err := p.Mmap(isa.PageSize, isa.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if v2 >= v && v2 < v+3*isa.PageSize {
		t.Fatalf("overlapping mmap: %#x in [%#x, +3p)", uint64(v2), uint64(v))
	}
	if _, err := p.Mmap(0, isa.PermRW); err == nil {
		t.Fatal("zero-length mmap accepted")
	}
}

func TestProcessIsolationViaPageTables(t *testing.T) {
	k := newKernel(t)
	p1 := k.NewProcess()
	p2 := k.NewProcess()
	c := k.Machine().Core(0)
	if err := k.Schedule(c, p1); err != nil {
		t.Fatal(err)
	}
	v, err := p1.Mmap(isa.PageSize, isa.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(v, []byte("p1 data")); err != nil {
		t.Fatal(err)
	}
	// Switching to p2, the same vaddr is unmapped.
	if err := k.Schedule(c, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(v, 4); !isa.IsFault(err, isa.FaultPF) {
		t.Fatalf("cross-process read returned %v, want #PF", err)
	}
}

func TestScheduleRefusedInEnclaveMode(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	c := k.Machine().Core(0)
	if err := k.Schedule(c, p); err != nil {
		t.Fatal(err)
	}
	s, err := k.Driver.CreateEnclave(0x100000, 2*isa.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	// (Entering requires a full build; the refusal path is checked via a
	// synthetic in-enclave state in the sgx tests. Here: schedule while out
	// of enclave mode always succeeds.)
	if err := k.Schedule(c, p); err != nil {
		t.Fatal(err)
	}
}

func TestIPCDelivery(t *testing.T) {
	k := newKernel(t)
	k.IPC.Send("ch", []byte("m1"))
	k.IPC.Send("ch", []byte("m2"))
	if k.IPC.Pending("ch") != 2 {
		t.Fatalf("pending = %d", k.IPC.Pending("ch"))
	}
	m, ok := k.IPC.TryRecv("ch")
	if !ok || string(m) != "m1" {
		t.Fatalf("recv %q %v", m, ok)
	}
	m, _ = k.IPC.TryRecv("ch")
	if string(m) != "m2" {
		t.Fatalf("recv %q", m)
	}
	if _, ok := k.IPC.TryRecv("ch"); ok {
		t.Fatal("recv from empty channel")
	}
}

func TestIPCAdversaryDrop(t *testing.T) {
	k := newKernel(t)
	k.IPC.SetAdversary("ch", &kos.IPCAdversary{DropNext: 1})
	k.IPC.Send("ch", []byte("init"))
	k.IPC.Send("ch", []byte("data"))
	m, ok := k.IPC.TryRecv("ch")
	if !ok || string(m) != "data" {
		t.Fatalf("selective drop failed: %q %v", m, ok)
	}
}

func TestIPCAdversarySelectiveDrop(t *testing.T) {
	k := newKernel(t)
	k.IPC.SetAdversary("ch", &kos.IPCAdversary{
		DropIf: func(p []byte) bool { return bytes.HasPrefix(p, []byte("INIT")) },
	})
	k.IPC.Send("ch", []byte("INIT callback"))
	k.IPC.Send("ch", []byte("request"))
	m, ok := k.IPC.TryRecv("ch")
	if !ok || string(m) != "request" {
		t.Fatalf("DropIf failed: %q", m)
	}
}

func TestIPCAdversaryForgeAndReplay(t *testing.T) {
	k := newKernel(t)
	k.IPC.SetAdversary("ch", &kos.IPCAdversary{
		Forge: func(p []byte) []byte { return []byte("forged") },
	})
	k.IPC.Send("ch", []byte("real"))
	m, _ := k.IPC.TryRecv("ch")
	if string(m) != "forged" {
		t.Fatalf("forge failed: %q", m)
	}
	k2 := newKernel(t)
	k2.IPC.SetAdversary("ch", &kos.IPCAdversary{ReplayLast: true})
	k2.IPC.Send("ch", []byte("first"))
	k2.IPC.Send("ch", []byte("second"))
	_, _ = k2.IPC.TryRecv("ch")
	m, _ = k2.IPC.TryRecv("ch")
	if string(m) != "first" {
		t.Fatalf("replay failed: %q", m)
	}
}

func TestIPCEavesdrop(t *testing.T) {
	k := newKernel(t)
	k.IPC.Send("ch", []byte("secret-plaintext"))
	log := k.IPC.Eavesdrop("ch")
	if len(log) != 1 || string(log[0]) != "secret-plaintext" {
		t.Fatalf("kernel log: %q", log)
	}
}
