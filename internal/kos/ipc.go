package kos

import (
	"sync"

	"nestedenclave/internal/chaos"
)

// IPCService is the OS-provided inter-process/inter-enclave message channel
// — the communication path the current SGX model forces peer enclaves onto.
//
// Because the kernel implements it, the kernel is an active man in the
// middle. The adversary knobs reproduce the Panoply-style attacks the paper
// discusses in §VII-B: the OS "can drop an IPC request selectively or create
// a fake or old message", and it can read any plaintext that crosses the
// channel. Enclaves defending themselves here must layer authenticated
// encryption on top (package channel's GCMChannel); nested enclaves instead
// route messages through outer-enclave memory the kernel cannot touch.
type IPCService struct {
	k  *Kernel
	mu sync.Mutex

	queues map[string][]Message
	seen   map[string][]Message // everything ever sent: the kernel's log

	// sends counts datagrams entering each channel — the number of kernel
	// crossings. Batched channel frames (channel.SendBatch) show up here as
	// one send per batch, which is the point of batching.
	sends map[string]int

	adversary map[string]*IPCAdversary
}

// Message is one IPC datagram as the kernel stores it.
type Message struct {
	Payload []byte
}

// IPCAdversary configures active attacks on one channel.
type IPCAdversary struct {
	// DropNext counts messages to silently discard.
	DropNext int
	// DropIf selectively discards matching messages (e.g. "the
	// initialization call"), leaving others through.
	DropIf func(payload []byte) bool
	// ReplayLast re-delivers the previously seen message instead of the
	// fresh one.
	ReplayLast bool
	// Forge, when non-nil, is delivered in place of each sent message.
	Forge func(payload []byte) []byte
	// Scramble, when non-nil, takes over delivery entirely: full
	// man-in-the-middle control over ordering, withholding, and replay.
	// It receives the kernel's log of every payload ever sent on the
	// channel, the currently queued payloads, and the payload being
	// delivered, and returns the queue to install (typically the old queue
	// plus incoming, reordered, trimmed, or salted with replayed log
	// entries). The chaos layer is bypassed for scrambled channels — the
	// adversary's delivery decision is final and deterministic.
	Scramble func(log, queue [][]byte, incoming []byte) [][]byte
}

// NewIPCService creates the kernel's IPC router.
func NewIPCService(k *Kernel) *IPCService {
	return &IPCService{
		k:         k,
		queues:    make(map[string][]Message),
		seen:      make(map[string][]Message),
		sends:     make(map[string]int),
		adversary: make(map[string]*IPCAdversary),
	}
}

// SetAdversary installs attack behaviour on a channel.
func (s *IPCService) SetAdversary(channel string, a *IPCAdversary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adversary[channel] = a
}

// Send enqueues a message on the named channel, subject to the adversary.
func (s *IPCService) Send(channel string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := append([]byte(nil), payload...)
	s.sends[channel]++
	s.seen[channel] = append(s.seen[channel], Message{Payload: cp})
	if a := s.adversary[channel]; a != nil {
		if a.DropNext > 0 {
			a.DropNext--
			return
		}
		if a.DropIf != nil && a.DropIf(cp) {
			return
		}
		if a.Forge != nil {
			cp = append([]byte(nil), a.Forge(cp)...)
		}
		if a.ReplayLast {
			log := s.seen[channel]
			if len(log) >= 2 {
				cp = append([]byte(nil), log[len(log)-2].Payload...)
			}
		}
		if a.Scramble != nil {
			log := make([][]byte, 0, len(s.seen[channel]))
			for _, m := range s.seen[channel] {
				log = append(log, append([]byte(nil), m.Payload...))
			}
			queue := make([][]byte, 0, len(s.queues[channel]))
			for _, m := range s.queues[channel] {
				queue = append(queue, append([]byte(nil), m.Payload...))
			}
			next := a.Scramble(log, queue, cp)
			q := make([]Message, 0, len(next))
			for _, p := range next {
				q = append(q, Message{Payload: append([]byte(nil), p...)})
			}
			s.queues[channel] = q
			return
		}
	}
	// Runtime fault injection: the unreliable-transport behaviours real IPC
	// exhibits under load. These compose with (and run after) the adversary,
	// which models deliberate attacks.
	if inj := s.k.chaos; inj != nil {
		if inj.Fire(chaos.SiteIPCDrop) {
			return
		}
		if inj.Fire(chaos.SiteIPCCorrupt) && len(cp) > 0 {
			bit := inj.Rand(uint64(len(cp) * 8))
			cp[bit/8] ^= 1 << (bit % 8)
		}
		if inj.Fire(chaos.SiteIPCDup) {
			s.queues[channel] = append(s.queues[channel], Message{Payload: append([]byte(nil), cp...)})
		}
	}
	s.queues[channel] = append(s.queues[channel], Message{Payload: cp})
}

// TryRecv dequeues the next message, if any.
func (s *IPCService) TryRecv(channel string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[channel]
	if len(q) == 0 {
		return nil, false
	}
	msg := q[0]
	s.queues[channel] = q[1:]
	return msg.Payload, true
}

// Eavesdrop returns the kernel's log of every payload sent on the channel —
// the OS can always read what crosses its own IPC path.
func (s *IPCService) Eavesdrop(channel string) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, 0, len(s.seen[channel]))
	for _, m := range s.seen[channel] {
		out = append(out, append([]byte(nil), m.Payload...))
	}
	return out
}

// Sends reports how many datagrams have entered the channel — the kernel
// crossings a sender has paid for, including dropped or scrambled ones.
func (s *IPCService) Sends(channel string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sends[channel]
}

// Pending reports the queue depth (tests).
func (s *IPCService) Pending(channel string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[channel])
}
