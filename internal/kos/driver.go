package kos

import (
	"errors"
	"fmt"
	"sync"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sgx"
)

// Driver is the SGX kernel driver: the privileged side of enclave
// construction and EPC paging, the equivalent of the Linux SGX driver the
// paper modified.
type Driver struct {
	k  *Kernel
	mu sync.Mutex

	// evicted stores sealed EPC pages swapped to "disk" (kernel memory),
	// keyed by owner and virtual address.
	evicted map[evictKey]*sgx.EvictedPage

	// procs remembers which process each enclave is mapped in, so the
	// paging daemon can fix page tables when it evicts a victim.
	procs map[isa.EID]*Process
	// victimCursor rotates victim selection across the EPC.
	victimCursor int

	// SkipShootdown makes EvictPage omit the TLB-shootdown IPIs — an
	// incorrect (or malicious) kernel. The hardware's EWB check is expected
	// to refuse the eviction while stale translations remain.
	SkipShootdown bool

	// Adversary hook sites. All are nil under an honest kernel (one nil
	// check on each path) and are installed by internal/adversary's Engine
	// to model a kernel that lies. Each runs OUTSIDE d.mu.
	//
	// OnEvict observes every sealed blob the pager stores in untrusted
	// memory — the attacker's tap for capturing stale blobs to replay.
	OnEvict func(owner isa.EID, vpage isa.VAddr, blob *sgx.EvictedPage)
	// SuppressIPI, when it returns true, drops the ETRACK shootdown IPI for
	// the given (victim enclave, core) pair instead of delivering it.
	SuppressIPI func(victim isa.EID, core int) bool
	// ReloadFilter lets the kernel substitute the blob handed to ELDU on
	// the page-fault reload path (replaying a stale capture, cross-wiring
	// another enclave's blob). Returning nil keeps the genuine blob.
	ReloadFilter func(owner isa.EID, vpage isa.VAddr, genuine *sgx.EvictedPage) *sgx.EvictedPage
	// RemapReload, when it returns ok, overrides the physical frame the
	// reloaded page is mapped at — pointing the victim's ELRANGE at an
	// attacker-chosen address instead of the freshly loaded EPC page.
	RemapReload func(owner isa.EID, vpage isa.VAddr) (isa.PAddr, bool)

	// detect records the most recent typed freshness rejection returned by
	// ELDU on the reload path. The architectural interface can only deliver
	// #PF to the faulting core, so the driver keeps the hardware's detection
	// evidence here for the audit harness (DetectionEvidence).
	detect error
}

type evictKey struct {
	owner isa.EID
	vaddr isa.VAddr
}

// CreateEnclave performs ECREATE on behalf of the loader.
func (d *Driver) CreateEnclave(base isa.VAddr, size uint64, attrs uint64) (*sgx.SECS, error) {
	return d.k.m.ECreate(base, size, attrs)
}

// AddPage performs EADD and maps the new EPC page into the process address
// space at its declared virtual address. TCS pages are mapped read-only for
// the page walk; the EPCM makes them inaccessible to software regardless.
func (d *Driver) AddPage(p *Process, s *sgx.SECS, a sgx.AddPageArgs) error {
	d.mu.Lock()
	if d.procs == nil {
		d.procs = make(map[isa.EID]*Process)
	}
	d.procs[s.EID] = p
	d.mu.Unlock()
	page, err := d.withPressure(s, func() (int, error) { return d.k.m.EAdd(s, a) })
	if err != nil {
		return err
	}
	ptePerms := a.Perms
	if a.Type == isa.PTTCS {
		ptePerms = isa.PermR
	}
	p.MapFixed(a.Vaddr, d.k.m.EPC.AddrOf(page), ptePerms)
	return nil
}

// AugPage adds a zeroed page to an initialized enclave (SGX2 EAUG) and maps
// it into the process.
func (d *Driver) AugPage(p *Process, s *sgx.SECS, vaddr isa.VAddr, perms isa.Perm) error {
	d.mu.Lock()
	if d.procs == nil {
		d.procs = make(map[isa.EID]*Process)
	}
	d.procs[s.EID] = p
	d.mu.Unlock()
	page, err := d.withPressure(s, func() (int, error) { return d.k.m.EAug(s, vaddr, perms) })
	if err != nil {
		return err
	}
	p.MapFixed(vaddr, d.k.m.EPC.AddrOf(page), perms)
	return nil
}

// ErrEPCPressure marks an EPC allocation that failed under memory pressure.
// It is transient: the caller can retry after backoff (resident pages get
// evicted in the meantime). errors.Is(err, chaos.ErrTransient) holds.
var ErrEPCPressure = fmt.Errorf("kos: EPC pressure: %w", chaos.ErrTransient)

// withPressure runs an EPC allocation, letting the paging daemon evict
// victim pages and retry when the EPC is exhausted.
func (d *Driver) withPressure(s *sgx.SECS, alloc func() (int, error)) (int, error) {
	// An injected allocation failure fails the ioctl outright — no
	// driver-internal retry — so recovery is observable at the SDK's retry
	// layer rather than silently self-healing here.
	if err := d.k.chaos.FireErr(chaos.SiteEPCAlloc, true); err != nil {
		return 0, fmt.Errorf("kos: EPC allocation failed: %w", err)
	}
	const maxAttempts = 8
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		page, err := alloc()
		if err == nil {
			return page, nil
		}
		lastErr = err
		if d.k.m.FreeEPCPages() > 0 {
			return 0, err // not a pressure failure
		}
		if derr := d.makeRoom(s.EID); derr != nil {
			return 0, fmt.Errorf("kos: EPC exhausted and paging daemon failed: %v (alloc: %w)", derr, err)
		}
	}
	return 0, fmt.Errorf("kos: EPC allocation failed after paging: %v: %w", lastErr, ErrEPCPressure)
}

// makeRoom is the paging daemon: it picks a resident regular page (rotating
// across the EPC, skipping the enclave currently being served when
// possible) and evicts it through the full architectural protocol.
func (d *Driver) makeRoom(avoid isa.EID) error {
	m := d.k.m
	n := m.EPC.NumPages()
	tryEvict := func(skipAvoid bool) error {
		resident := make(map[int]sgx.EPCSnapshot, n)
		for _, s := range m.SnapshotEPCM() {
			resident[s.Index] = s
		}
		for off := 0; off < n; off++ {
			idx := (d.victimCursor + off) % n
			snap, ok := resident[idx]
			if !ok {
				continue
			}
			ent := snap.Entry
			if ent.Blocked || ent.Type != isa.PTReg {
				continue
			}
			if skipAvoid && ent.Owner == avoid {
				continue
			}
			owner, ok := m.Enclave(ent.Owner)
			if !ok {
				continue
			}
			d.mu.Lock()
			proc := d.procs[ent.Owner]
			d.mu.Unlock()
			if proc == nil {
				continue
			}
			if err := d.EvictPage(proc, owner, ent.Vaddr); err != nil {
				continue // e.g. live translations on a busy enclave; try another victim
			}
			d.victimCursor = (idx + 1) % n
			return nil
		}
		return fmt.Errorf("no evictable EPC page found")
	}
	if err := tryEvict(true); err == nil {
		return nil
	}
	return tryEvict(false)
}

// InitEnclave performs EINIT.
func (d *Driver) InitEnclave(s *sgx.SECS, cert *measure.SigStruct) error {
	return d.k.m.EInit(s, cert)
}

// DestroyEnclave unmaps and removes every page of the enclave.
func (d *Driver) DestroyEnclave(p *Process, s *sgx.SECS) error {
	d.mu.Lock()
	for key := range d.evicted {
		if key.owner == s.EID {
			delete(d.evicted, key)
		}
	}
	d.mu.Unlock()
	if p != nil {
		for v := s.Base; v < s.Base+isa.VAddr(s.Size); v += isa.PageSize {
			p.pt.Unmap(v)
		}
	}
	return d.k.m.DestroyEnclave(s)
}

// EvictPage swaps one regular EPC page of the enclave out to kernel storage
// following the architectural protocol: EBLOCK, ETRACK, shootdown IPIs to
// the cores the Tracker reports, then EWB. The process mapping is marked
// not-present so the next access faults into reloadIfEvicted.
func (d *Driver) EvictPage(p *Process, s *sgx.SECS, vaddr isa.VAddr) error {
	m := d.k.m
	pageIdx, found := m.FindRegPage(s, vaddr)
	if !found {
		return fmt.Errorf("kos: enclave %d has no regular EPC page at %#x", s.EID, uint64(vaddr))
	}
	if err := m.EBlock(pageIdx); err != nil {
		return err
	}
	cores := m.ETrack(s)
	for _, c := range cores {
		if d.SkipShootdown || (d.SuppressIPI != nil && d.SuppressIPI(s.EID, c.ID)) {
			continue
		}
		m.ShootdownFor(c, s.EID)
	}
	blob, err := m.EWB(pageIdx)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.evicted[evictKey{owner: s.EID, vaddr: vaddr.PageBase()}] = blob
	d.mu.Unlock()
	if d.OnEvict != nil {
		d.OnEvict(s.EID, vaddr.PageBase(), blob)
	}
	p.pt.MarkNotPresent(vaddr)
	return nil
}

// reloadIfEvicted is the page-fault path: if the faulting address names an
// evicted EPC page of the faulting enclave (or, with nesting, of one of its
// outer enclaves), reload it with ELDU and fix the mapping.
func (d *Driver) reloadIfEvicted(c *sgx.Core, f *isa.Fault) bool {
	m := d.k.m
	vpage := f.Addr.PageBase()
	d.mu.Lock()
	var blob *sgx.EvictedPage
	var key evictKey
	for k, b := range d.evicted {
		if k.vaddr == vpage {
			blob, key = b, k
			break
		}
	}
	if blob == nil {
		d.mu.Unlock()
		return false
	}
	delete(d.evicted, key)
	d.mu.Unlock()

	// A lying kernel may hand ELDU something other than the page's genuine
	// blob. The genuine one is kept aside either way, so a later honest
	// retry can still cure the fault.
	load, malicious := blob, false
	if d.ReloadFilter != nil {
		if sub := d.ReloadFilter(blob.Owner, vpage, blob); sub != nil && sub != blob {
			load, malicious = sub, true
		}
	}

	// Under EPC pressure the reload itself may need the paging daemon to
	// make room first.
	page, err := m.ELDU(load)
	for attempt := 0; err != nil && m.FreeEPCPages() == 0 && attempt < 4; attempt++ {
		if d.makeRoom(load.Owner) != nil {
			break
		}
		page, err = m.ELDU(load)
	}
	if err != nil {
		// Put the genuine blob back so the page is not lost; the access will
		// fail but a later retry can still succeed.
		d.mu.Lock()
		d.evicted[key] = blob
		if errors.Is(err, sgx.ErrBlobReplay) {
			d.detect = err
		}
		d.mu.Unlock()
		return false
	}
	if malicious {
		// The hardware accepted the substitute (a fresh, authentic blob of
		// some OTHER page): the EPC now holds that page, but the victim's
		// data is still only in its genuine blob — keep it.
		d.mu.Lock()
		d.evicted[key] = blob
		d.mu.Unlock()
	}
	// Re-establish the mapping in the owning process (and hence the
	// faulting core's address space). RemapReload models the last lie: the
	// PTE pointing somewhere other than the page ELDU just loaded.
	pa := m.EPC.AddrOf(page)
	if d.RemapReload != nil {
		if apa, ok := d.RemapReload(blob.Owner, vpage); ok {
			pa = apa
		}
	}
	d.mu.Lock()
	proc := d.procs[blob.Owner]
	d.mu.Unlock()
	if proc != nil {
		proc.pt.Map(vpage, pa, blob.Perms)
	} else if c.PT != nil {
		c.PT.Map(vpage, pa, blob.Perms)
	}
	return true
}

// DetectionEvidence returns the most recent typed blob-freshness rejection
// the reload path recorded (nil when none): the audit harness's window into
// detections that the architectural fault interface flattens into #PF.
func (d *Driver) DetectionEvidence() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.detect
}

// EvictedCount reports how many pages are currently swapped out (tests).
func (d *Driver) EvictedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.evicted)
}
