package ycsb

import (
	"math/rand"
	"strings"
	"testing"

	"nestedenclave/internal/sqldb"
)

func smallCfg() Config {
	return Config{Records: 50, Operations: 200, FieldLen: 20}
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAllMixesRun(t *testing.T) {
	for _, mix := range TableVIMixes() {
		w := Generate(mix, smallCfg(), rng(7))
		if len(w.Queries) != 200 {
			t.Fatalf("%s: %d queries", mix.Name, len(w.Queries))
		}
		db := sqldb.New()
		if err := w.Load(db); err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
		n, err := w.Run(db)
		if err != nil {
			t.Fatalf("%s: after %d queries: %v", mix.Name, n, err)
		}
		if n != 200 {
			t.Fatalf("%s: ran %d", mix.Name, n)
		}
	}
}

func TestMixProportions(t *testing.T) {
	cfg := Config{Records: 10, Operations: 10000, FieldLen: 5}
	w := Generate(Mix{Name: "95/5", SelectP: 95, UpdateP: 5}, cfg, rng(3))
	sel, upd := 0, 0
	for _, q := range w.Queries {
		switch {
		case strings.HasPrefix(q, "SELECT"):
			sel++
		case strings.HasPrefix(q, "UPDATE"):
			upd++
		default:
			t.Fatalf("unexpected op: %s", q)
		}
	}
	if sel < 9300 || sel > 9700 {
		t.Fatalf("select fraction off: %d/10000", sel)
	}
	if sel+upd != 10000 {
		t.Fatalf("sum %d", sel+upd)
	}
}

func TestInsertWorkloadGrowsTable(t *testing.T) {
	w := Generate(Mix{Name: "ins", InsertP: 100}, smallCfg(), rng(7))
	db := sqldb.New()
	if err := w.Load(db); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(db); err != nil {
		t.Fatal(err)
	}
	n, err := db.NumRows("usertable")
	if err != nil {
		t.Fatal(err)
	}
	if n != 50+200 {
		t.Fatalf("rows = %d, want 250", n)
	}
}

func TestWorkloadEScans(t *testing.T) {
	w := Generate(WorkloadE(), smallCfg(), rng(7))
	db := sqldb.New()
	if err := w.Load(db); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(db); err != nil {
		t.Fatal(err)
	}
	scans := 0
	for _, q := range w.Queries {
		if strings.Contains(q, ">=") {
			scans++
		}
	}
	if scans < 150 { // ~95% of 200
		t.Fatalf("only %d scans generated", scans)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	// The injected RNG is the sole entropy source: the same seed must
	// reproduce the query stream byte for byte, and distinct seeds must
	// actually vary it — otherwise "seeded" is a lie and replaying a failure
	// with the logged seed would prove nothing.
	var streams []string
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		cfg := smallCfg()
		t.Logf("ycsb seed %d", seed)
		a := Generate(TableVIMixes()[1], cfg, rng(seed))
		b := Generate(TableVIMixes()[1], cfg, rng(seed))
		if len(a.Queries) != len(b.Queries) {
			t.Fatalf("seed %d: lengths differ (%d vs %d)", seed, len(a.Queries), len(b.Queries))
		}
		for i := range a.Queries {
			if a.Queries[i] != b.Queries[i] {
				t.Fatalf("seed %d: query %d differs:\n  %s\n  %s", seed, i, a.Queries[i], b.Queries[i])
			}
		}
		streams = append(streams, strings.Join(a.Queries, "\n"))
	}
	for i := 1; i < len(streams); i++ {
		if streams[i] == streams[0] {
			t.Fatalf("seed stream %d identical to stream 0 — the RNG is not wired into generation", i)
		}
	}
}
