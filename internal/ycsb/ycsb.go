// Package ycsb generates YCSB-style key-value workloads over the SQL engine,
// matching the paper's Table VI setup: 10 000 queries with a uniform random
// request distribution across four operation mixes (100% INSERT, 50/50
// SELECT/UPDATE, 95/5 SELECT/UPDATE, 100% SELECT).
package ycsb

import (
	"fmt"
	"math/rand"

	"nestedenclave/internal/sqldb"
)

// Mix is an operation mixture in percent.
type Mix struct {
	Name    string
	InsertP int
	SelectP int
	UpdateP int
	// ScanP generates short range scans (YCSB workload E's operation):
	// SELECT ... WHERE key >= k AND key <= k+len ORDER BY key.
	ScanP int
}

// WorkloadE is YCSB's scan-heavy mix (95% short scans, 5% inserts); not
// part of the paper's Table VI but useful for exercising the engine's
// B-tree range path under the enclave service.
func WorkloadE() Mix {
	return Mix{Name: "95% SCAN & 5% INSERT", ScanP: 95, InsertP: 5}
}

// TableVIMixes lists the paper's four workloads in table order.
func TableVIMixes() []Mix {
	return []Mix{
		{Name: "100% INSERT", InsertP: 100},
		{Name: "50% SELECT & 50% UPDATE", SelectP: 50, UpdateP: 50},
		{Name: "95% SELECT & 5% UPDATE", SelectP: 95, UpdateP: 5},
		{Name: "100% SELECT", SelectP: 100},
	}
}

// Config sizes a workload.
type Config struct {
	// Records is the number of pre-loaded rows (the YCSB "record count").
	Records int
	// Operations is the number of generated queries.
	Operations int
	// FieldLen is the payload string length.
	FieldLen int
}

// DefaultConfig mirrors the paper's 10 000-query runs at a small record set.
func DefaultConfig() Config {
	return Config{Records: 1000, Operations: 10000, FieldLen: 100}
}

// Workload is a generated query sequence.
type Workload struct {
	Mix     Mix
	Setup   []string // CREATE + initial LOADs
	Queries []string
}

// Generate builds the workload for a mix. Keys are drawn uniformly at
// random (the paper's distribution) from the caller-seeded RNG — nescheck's
// determinism rule forbids constructing sources here, so the same *rand.Rand
// state always yields the same query sequence. INSERT workloads use fresh
// keys above the preloaded range so they never conflict.
func Generate(mix Mix, cfg Config, rng *rand.Rand) *Workload {
	payload := func() string {
		b := make([]byte, cfg.FieldLen)
		for i := range b {
			b[i] = 'a' + byte(rng.Intn(26))
		}
		return string(b)
	}
	w := &Workload{Mix: mix}
	w.Setup = append(w.Setup, "CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, field0 TEXT)")
	for i := 0; i < cfg.Records; i++ {
		w.Setup = append(w.Setup,
			fmt.Sprintf("INSERT INTO usertable VALUES (%d, '%s')", i, payload()))
	}
	nextInsert := cfg.Records
	for i := 0; i < cfg.Operations; i++ {
		p := rng.Intn(100)
		switch {
		case p < mix.InsertP:
			w.Queries = append(w.Queries,
				fmt.Sprintf("INSERT INTO usertable VALUES (%d, '%s')", nextInsert, payload()))
			nextInsert++
		case p < mix.InsertP+mix.SelectP:
			key := rng.Intn(cfg.Records)
			w.Queries = append(w.Queries,
				fmt.Sprintf("SELECT field0 FROM usertable WHERE ycsb_key = %d", key))
		case p < mix.InsertP+mix.SelectP+mix.ScanP:
			key := rng.Intn(cfg.Records)
			span := rng.Intn(20) + 1
			w.Queries = append(w.Queries,
				fmt.Sprintf("SELECT ycsb_key, field0 FROM usertable WHERE ycsb_key >= %d AND ycsb_key <= %d ORDER BY ycsb_key",
					key, key+span))
		default:
			key := rng.Intn(cfg.Records)
			w.Queries = append(w.Queries,
				fmt.Sprintf("UPDATE usertable SET field0 = '%s' WHERE ycsb_key = %d", payload(), key))
		}
	}
	return w
}

// Load executes the setup statements on a fresh database.
func (w *Workload) Load(db *sqldb.DB) error {
	for _, q := range w.Setup {
		if _, err := db.Exec(q); err != nil {
			return fmt.Errorf("ycsb: setup: %w", err)
		}
	}
	return nil
}

// Run executes all queries, returning the number that succeeded.
func (w *Workload) Run(db *sqldb.DB) (int, error) {
	n := 0
	for _, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			return n, fmt.Errorf("ycsb: query %q: %w", q, err)
		}
		n++
	}
	return n, nil
}
