package cache

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// memBackend is a plain in-memory Backend for testing the cache alone.
type memBackend struct {
	data       map[uint64][isa.LineSize]byte
	reads      int
	writes     int
	failReads  bool
	failWrites bool
}

func newMemBackend() *memBackend {
	return &memBackend{data: make(map[uint64][isa.LineSize]byte)}
}

func (b *memBackend) ReadLine(p isa.PAddr) ([]byte, error) {
	if b.failReads {
		return nil, fmt.Errorf("injected read failure")
	}
	b.reads++
	line := b.data[uint64(p)>>isa.LineShift]
	return line[:], nil
}

func (b *memBackend) WriteLine(p isa.PAddr, data []byte) error {
	if b.failWrites {
		return fmt.Errorf("injected write failure")
	}
	b.writes++
	var line [isa.LineSize]byte
	copy(line[:], data)
	b.data[uint64(p)>>isa.LineShift] = line
	return nil
}

func tiny() Config { return Config{SizeBytes: 8 * 1024, Ways: 4} } // 32 sets

func TestReadWriteRoundTrip(t *testing.T) {
	b := newMemBackend()
	c := MustNew(tiny(), b, &trace.Recorder{})
	data := []byte("some data crossing a line boundary......................xyz")
	if err := c.Write(60, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(60, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
}

func TestWriteBackOnlyOnEviction(t *testing.T) {
	b := newMemBackend()
	c := MustNew(tiny(), b, nil)
	if err := c.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if b.writes != 0 {
		t.Fatalf("write-back cache wrote through: %d writes", b.writes)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if b.writes != 1 {
		t.Fatalf("flush produced %d backend writes, want 1", b.writes)
	}
	line := b.data[0]
	if line[0] != 1 || line[1] != 2 || line[2] != 3 {
		t.Fatalf("backend line %v", line[:4])
	}
}

func TestHitAvoidsBackend(t *testing.T) {
	b := newMemBackend()
	rec := &trace.Recorder{}
	c := MustNew(tiny(), b, rec)
	if _, err := c.Read(0x100, 8); err != nil {
		t.Fatal(err)
	}
	readsAfterMiss := b.reads
	for i := 0; i < 10; i++ {
		if _, err := c.Read(0x100, 8); err != nil {
			t.Fatal(err)
		}
	}
	if b.reads != readsAfterMiss {
		t.Fatalf("hits reached the backend: %d -> %d reads", readsAfterMiss, b.reads)
	}
	if rec.Get(trace.EvLLCHit) != 10 {
		t.Fatalf("llc_hit = %d, want 10", rec.Get(trace.EvLLCHit))
	}
}

func TestEvictionWritesDirtyVictim(t *testing.T) {
	b := newMemBackend()
	cfg := tiny()
	c := MustNew(cfg, b, nil)
	nsets := cfg.SizeBytes / isa.LineSize / cfg.Ways
	// Fill one set beyond associativity with dirty lines.
	for w := 0; w <= cfg.Ways; w++ {
		addr := isa.PAddr(w * nsets * isa.LineSize) // same set, different tags
		if err := c.Write(addr, []byte{byte(w + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if b.writes == 0 {
		t.Fatal("over-filling a set evicted no dirty victim")
	}
	// The evicted line (LRU: the first written) must be readable with its
	// data intact.
	got, err := c.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("evicted line lost data: %d", got[0])
	}
}

func TestFlushLineAndRange(t *testing.T) {
	b := newMemBackend()
	c := MustNew(tiny(), b, nil)
	if err := c.Write(0x200, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushLine(0x200); err != nil {
		t.Fatal(err)
	}
	if b.writes != 1 {
		t.Fatalf("FlushLine wrote %d lines", b.writes)
	}
	valid, _ := c.Stats()
	if valid != 0 {
		t.Fatalf("line still cached after flush")
	}
	// Flushing a clean or absent line is a no-op.
	if err := c.FlushLine(0x8000); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0x400, bytes.Repeat([]byte{7}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushRange(0x400, 256); err != nil {
		t.Fatal(err)
	}
	if _, dirty := c.Stats(); dirty != 0 {
		t.Fatal("dirty lines remain after FlushRange")
	}
}

func TestDisabledCacheWritesThrough(t *testing.T) {
	b := newMemBackend()
	c := MustNew(tiny(), b, nil)
	c.Enabled = false
	if err := c.Write(0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if b.writes == 0 {
		t.Fatal("disabled cache did not write through")
	}
	got, err := c.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("uncached read = %d", got[0])
	}
}

func TestBackendErrorsPropagate(t *testing.T) {
	b := newMemBackend()
	c := MustNew(tiny(), b, nil)
	b.failReads = true
	if _, err := c.Read(0, 1); err == nil {
		t.Fatal("read error swallowed")
	}
	b.failReads = false
	if err := c.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	b.failWrites = true
	if err := c.FlushAll(); err == nil {
		t.Fatal("write-back error swallowed")
	}
}

func TestInvalidConfigs(t *testing.T) {
	b := newMemBackend()
	bad := []Config{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 1024, Ways: 0},
		{SizeBytes: 1000, Ways: 3},    // not divisible into line-sized ways
		{SizeBytes: 64 * 12, Ways: 4}, // 3 sets: not a power of two
	}
	for i, cfg := range bad {
		if _, err := New(cfg, b, nil); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestCacheTransparency: any sequence of writes followed by reads through
// the cache behaves exactly like a flat memory.
func TestCacheTransparency(t *testing.T) {
	type op struct {
		Addr  uint16
		Data  byte
		Write bool
	}
	f := func(ops []op) bool {
		b := newMemBackend()
		c := MustNew(tiny(), b, nil)
		ref := make(map[uint16]byte)
		for _, o := range ops {
			if o.Write {
				if err := c.Write(isa.PAddr(o.Addr), []byte{o.Data}); err != nil {
					return false
				}
				ref[o.Addr] = o.Data
			} else {
				got, err := c.Read(isa.PAddr(o.Addr), 1)
				if err != nil {
					return false
				}
				if got[0] != ref[o.Addr] {
					return false
				}
			}
		}
		// After a full flush, the backend holds the same contents.
		if err := c.FlushAll(); err != nil {
			return false
		}
		for a, v := range ref {
			line := b.data[uint64(a)>>isa.LineShift]
			if line[a&isa.LineMask] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
