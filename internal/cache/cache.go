// Package cache models the processor's last-level cache as a set-associative
// write-back cache holding plaintext cachelines.
//
// Its role in the simulation is architectural, not micro-architectural: data
// resident in the cache lives inside the CPU package boundary in plaintext,
// so reads and writes that hit skip the memory encryption engine entirely.
// This is the mechanism behind the paper's Figure 11 — the outer-enclave
// communication channel runs at cache speed while the footprint fits in the
// LLC, because "the encryption by MEE is not invoked as the data exist in
// plaintext within the CPU boundary".
package cache

import (
	"fmt"
	"sync"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// Backend is the next level of the memory hierarchy (the MEE in front of
// DRAM). Lines crossing it are subject to protection.
type Backend interface {
	// ReadLine fetches the 64-byte line at the (line-aligned) address.
	// It may return an integrity fault.
	ReadLine(p isa.PAddr) ([]byte, error)
	// WriteLine stores the 64-byte line at the (line-aligned) address.
	WriteLine(p isa.PAddr, data []byte) error
}

type line struct {
	tag   uint64 // line index (paddr >> LineShift)
	valid bool
	dirty bool
	lru   uint64
	data  [isa.LineSize]byte
}

// Config sizes the cache.
type Config struct {
	// SizeBytes is the total capacity. Must be a multiple of Ways*LineSize.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// DefaultConfig models the 8 MiB 16-way LLC of the paper's i7-7700 testbed.
func DefaultConfig() Config { return Config{SizeBytes: 8 << 20, Ways: 16} }

// Cache is a set-associative write-back LLC. Safe for concurrent use: the
// machine's data-access path runs under a shared (read) lock so cores
// translate in parallel, and the cache — the one mutable structure on that
// path — serializes line operations internally. The MEE backend is only
// reachable through here or under the machine's exclusive lock, so the
// internal mutex covers it too.
type Cache struct {
	mu      sync.Mutex
	backend Backend
	rec     *trace.Recorder
	sets    [][]line
	nsets   uint64
	tick    uint64

	// Enabled can be cleared to model an uncached (write-through to MEE)
	// path; used by ablation benches. Set before workloads run.
	Enabled bool
}

// New builds a cache over the backend. rec may be nil.
func New(cfg Config, backend Backend, rec *trace.Recorder) (*Cache, error) {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid config %+v", cfg)
	}
	lines := cfg.SizeBytes / isa.LineSize
	if lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d ways", cfg.SizeBytes, cfg.Ways)
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	sets := make([][]line, nsets)
	backing := make([]line, lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{backend: backend, rec: rec, sets: sets, nsets: uint64(nsets), Enabled: true}, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config, backend Backend, rec *trace.Recorder) *Cache {
	c, err := New(cfg, backend, rec)
	if err != nil {
		panic(err)
	}
	return c
}

// charge bills LLC hits/misses to the enclave the access path named via
// SetBillHint — the cache itself runs below the protection context.
func (c *Cache) charge(e trace.Event, cost int64) {
	if c.rec != nil {
		c.rec.ChargeHint(e, cost)
	}
}

// lookup returns the way holding the line index, or nil.
func (c *Cache) lookup(idx uint64) *line {
	set := c.sets[idx&(c.nsets-1)]
	for i := range set {
		if set[i].valid && set[i].tag == idx {
			return &set[i]
		}
	}
	return nil
}

// victim picks the LRU way in the line's set, writing it back if dirty.
func (c *Cache) victim(idx uint64) (*line, error) {
	set := c.sets[idx&(c.nsets-1)]
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	if v.valid && v.dirty {
		if err := c.backend.WriteLine(isa.PAddr(v.tag<<isa.LineShift), v.data[:]); err != nil {
			return nil, err
		}
	}
	v.valid = false
	v.dirty = false
	return v, nil
}

// fill brings the line at idx into the cache and returns it.
func (c *Cache) fill(idx uint64) (*line, error) {
	data, err := c.backend.ReadLine(isa.PAddr(idx << isa.LineShift))
	if err != nil {
		return nil, err
	}
	v, err := c.victim(idx)
	if err != nil {
		return nil, err
	}
	v.tag = idx
	v.valid = true
	copy(v.data[:], data)
	return v, nil
}

func (c *Cache) access(p isa.PAddr, write bool) (*line, error) {
	idx := uint64(p) >> isa.LineShift
	if !c.Enabled {
		// Uncached mode: synthesize a transient line per access.
		data, err := c.backend.ReadLine(p.LineBase())
		if err != nil {
			return nil, err
		}
		l := &line{tag: idx, valid: true}
		copy(l.data[:], data)
		return l, nil
	}
	c.tick++
	if l := c.lookup(idx); l != nil {
		c.charge(trace.EvLLCHit, trace.CostLLCHit)
		l.lru = c.tick
		if write {
			l.dirty = true
		}
		return l, nil
	}
	c.charge(trace.EvLLCMiss, trace.CostDRAMAccess)
	l, err := c.fill(idx)
	if err != nil {
		return nil, err
	}
	l.lru = c.tick
	if write {
		l.dirty = true
	}
	return l, nil
}

// Read copies n bytes at physical address p through the cache.
func (c *Cache) Read(p isa.PAddr, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := c.ReadInto(p, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills dst from physical address p through the cache.
func (c *Cache) ReadInto(p isa.PAddr, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readIntoLocked(p, dst)
}

// ReadIntoFor is ReadInto with the billing context set atomically with the
// line operations: the hit/miss and MEE charges bill to eid and parent under
// the span, even while other cores drive the cache concurrently. This is the
// read-locked access path's entry point.
func (c *Cache) ReadIntoFor(p isa.PAddr, dst []byte, eid uint64, span uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rec != nil {
		c.rec.SetBillHint(eid)
		c.rec.SetSpanHint(span)
	}
	return c.readIntoLocked(p, dst)
}

func (c *Cache) readIntoLocked(p isa.PAddr, dst []byte) error {
	for off := 0; off < len(dst); {
		cur := p + isa.PAddr(off)
		l, err := c.access(cur, false)
		if err != nil {
			return err
		}
		lo := int(cur.Offset() & isa.LineMask)
		nn := copy(dst[off:], l.data[lo:])
		off += nn
	}
	return nil
}

// Write stores b at physical address p through the cache.
func (c *Cache) Write(p isa.PAddr, b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeLocked(p, b)
}

// WriteFor is Write with the billing context set atomically with the line
// operations (see ReadIntoFor).
func (c *Cache) WriteFor(p isa.PAddr, b []byte, eid uint64, span uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rec != nil {
		c.rec.SetBillHint(eid)
		c.rec.SetSpanHint(span)
	}
	return c.writeLocked(p, b)
}

func (c *Cache) writeLocked(p isa.PAddr, b []byte) error {
	for off := 0; off < len(b); {
		cur := p + isa.PAddr(off)
		l, err := c.access(cur, true)
		if err != nil {
			return err
		}
		lo := int(cur.Offset() & isa.LineMask)
		nn := copy(l.data[lo:], b[off:])
		if !c.Enabled {
			// Uncached: write through immediately.
			if err := c.backend.WriteLine(cur.LineBase(), l.data[:]); err != nil {
				return err
			}
		}
		off += nn
	}
	return nil
}

// FlushAll writes back every dirty line and invalidates the cache (WBINVD).
func (c *Cache) FlushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				if err := c.backend.WriteLine(isa.PAddr(l.tag<<isa.LineShift), l.data[:]); err != nil {
					return err
				}
			}
			l.valid = false
			l.dirty = false
		}
	}
	return nil
}

// FlushLine writes back and invalidates the line containing p (CLFLUSH).
func (c *Cache) FlushLine(p isa.PAddr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLineLocked(p)
}

func (c *Cache) flushLineLocked(p isa.PAddr) error {
	l := c.lookup(uint64(p) >> isa.LineShift)
	if l == nil {
		return nil
	}
	if l.dirty {
		if err := c.backend.WriteLine(p.LineBase(), l.data[:]); err != nil {
			return err
		}
	}
	l.valid = false
	l.dirty = false
	return nil
}

// InvalidateRange drops every line overlapping [p, p+n) WITHOUT writing
// dirty data back — the path used when the underlying page is being
// destroyed and its contents must not be recreated in DRAM.
func (c *Cache) InvalidateRange(p isa.PAddr, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for cur := p.LineBase(); cur < p+isa.PAddr(n); cur += isa.LineSize {
		if l := c.lookup(uint64(cur) >> isa.LineShift); l != nil {
			l.valid = false
			l.dirty = false
		}
	}
}

// FlushRange flushes every line overlapping [p, p+n).
func (c *Cache) FlushRange(p isa.PAddr, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for cur := p.LineBase(); cur < p+isa.PAddr(n); cur += isa.LineSize {
		if err := c.flushLineLocked(cur); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports occupancy for tests.
func (c *Cache) Stats() (validLines, dirtyLines int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				validLines++
				if c.sets[si][wi].dirty {
					dirtyLines++
				}
			}
		}
	}
	return
}
