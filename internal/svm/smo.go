package svm

import (
	"fmt"
	"math"
)

// Train fits a binary C-SVC with the simplified SMO algorithm (Platt 1998 /
// the Stanford CS229 simplification): repeatedly pick a KKT-violating
// multiplier alpha_i, pair it with the alpha_j of maximal |E_i - E_j|, and
// optimize the pair analytically. Error values are cached and updated
// incrementally; kernel rows are cached for the violators under
// consideration.
func Train(prob Problem, param Param) (*Model, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	labels := prob.Labels()
	if len(labels) != 2 {
		return nil, fmt.Errorf("svm: binary training needs exactly 2 labels, got %d (use TrainMulti)", len(labels))
	}
	param = param.withDefaults(len(prob.X[0]))
	pos, neg := labels[0], labels[1]
	n := len(prob.X)
	y := make([]float64, n)
	for i, lab := range prob.Y {
		if lab == pos {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	maxIter := param.MaxIter
	if maxIter == 0 {
		maxIter = 100 * n
	}

	alpha := make([]float64, n)
	var b float64
	// E[i] = f(x_i) - y_i, maintained incrementally.
	errs := make([]float64, n)
	for i := range errs {
		errs[i] = -y[i] // f = 0 initially
	}

	// Diagonal kernel values (constant, precomputed).
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = param.kernel(prob.X[i], prob.X[i])
	}

	iters := 0
	passes := 0
	for passes < param.MaxPasses && iters < maxIter {
		changed := 0
		for i := 0; i < n && iters < maxIter; i++ {
			ei := errs[i]
			// KKT check for alpha_i.
			if !((y[i]*ei < -param.Tol && alpha[i] < param.C) ||
				(y[i]*ei > param.Tol && alpha[i] > 0)) {
				continue
			}
			// Second choice: maximize |E_i - E_j|.
			j := -1
			var best float64 = -1
			for k := 0; k < n; k++ {
				if k == i {
					continue
				}
				if d := math.Abs(ei - errs[k]); d > best {
					best = d
					j = k
				}
			}
			if j < 0 {
				continue
			}
			iters++
			if optimizePair(prob, param, y, alpha, errs, diag, &b, i, j) {
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &Model{Param: param, B: b, PosLabel: pos, NegLabel: neg, Iters: iters}
	for i := range alpha {
		if alpha[i] > 1e-12 {
			m.SVs = append(m.SVs, prob.X[i])
			m.Coefs = append(m.Coefs, alpha[i]*y[i])
		}
	}
	return m, nil
}

// optimizePair performs the analytic two-variable update; returns whether
// the multipliers moved.
func optimizePair(prob Problem, param Param, y, alpha, errs, diag []float64, b *float64, i, j int) bool {
	ei, ej := errs[i], errs[j]
	ai, aj := alpha[i], alpha[j]

	var lo, hi float64
	if y[i] != y[j] {
		lo = math.Max(0, aj-ai)
		hi = math.Min(param.C, param.C+aj-ai)
	} else {
		lo = math.Max(0, ai+aj-param.C)
		hi = math.Min(param.C, ai+aj)
	}
	if hi-lo < 1e-12 {
		return false
	}
	kij := param.kernel(prob.X[i], prob.X[j])
	eta := diag[i] + diag[j] - 2*kij
	if eta <= 1e-12 {
		return false
	}
	ajNew := aj + y[j]*(ei-ej)/eta
	ajNew = math.Min(math.Max(ajNew, lo), hi)
	if math.Abs(ajNew-aj) < 1e-7 {
		return false
	}
	aiNew := ai + y[i]*y[j]*(aj-ajNew)

	// Threshold update (Platt's b1/b2 rule).
	bOld := *b
	b1 := bOld - ei - y[i]*(aiNew-ai)*diag[i] - y[j]*(ajNew-aj)*kij
	b2 := bOld - ej - y[i]*(aiNew-ai)*kij - y[j]*(ajNew-aj)*diag[j]
	switch {
	case aiNew > 0 && aiNew < param.C:
		*b = b1
	case ajNew > 0 && ajNew < param.C:
		*b = b2
	default:
		*b = (b1 + b2) / 2
	}

	di := y[i] * (aiNew - ai)
	dj := y[j] * (ajNew - aj)
	alpha[i], alpha[j] = aiNew, ajNew
	// Incremental error update: f gained di*K(x_i,·) + dj*K(x_j,·) plus the
	// threshold delta, uniformly (E_k = f(x_k) - y_k and f includes b).
	db := *b - bOld
	for k := range errs {
		errs[k] += di*param.kernel(prob.X[i], prob.X[k]) +
			dj*param.kernel(prob.X[j], prob.X[k]) + db
	}
	return true
}
