// Package svm is the LibSVM stand-in for the fine-grained data-protection
// case study (paper §VI-B): C-support-vector classification with an SMO
// solver, linear and RBF kernels, and one-vs-one multiclass voting — the
// train and predict operations the paper runs inside the shared outer
// enclave ("svm-train" and "svm-predict" in Table III).
package svm

import (
	"fmt"
	"math"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// Linear is K(a,b) = a·b.
	Linear KernelKind = iota
	// RBF is K(a,b) = exp(-gamma * |a-b|^2).
	RBF
)

// Param configures training.
type Param struct {
	Kernel KernelKind
	// C is the soft-margin penalty. Must be positive.
	C float64
	// Gamma is the RBF width (ignored for Linear). Zero means 1/#features.
	Gamma float64
	// Tol is the KKT violation tolerance. Zero means 1e-3.
	Tol float64
	// MaxPasses bounds SMO sweeps without progress. Zero means 8.
	MaxPasses int
	// MaxIter hard-bounds total SMO iterations. Zero means 100*n.
	MaxIter int
}

func (p Param) withDefaults(nFeatures int) Param {
	if p.C == 0 {
		p.C = 1
	}
	if p.Gamma == 0 && nFeatures > 0 {
		p.Gamma = 1 / float64(nFeatures)
	}
	if p.Tol == 0 {
		p.Tol = 1e-3
	}
	if p.MaxPasses == 0 {
		p.MaxPasses = 8
	}
	return p
}

// Problem is a labelled training set. Labels may be arbitrary integers;
// binary training additionally requires exactly two distinct labels.
type Problem struct {
	X [][]float64
	Y []int
}

// Validate checks shape consistency.
func (p Problem) Validate() error {
	if len(p.X) == 0 {
		return fmt.Errorf("svm: empty problem")
	}
	if len(p.X) != len(p.Y) {
		return fmt.Errorf("svm: %d samples but %d labels", len(p.X), len(p.Y))
	}
	w := len(p.X[0])
	for i, x := range p.X {
		if len(x) != w {
			return fmt.Errorf("svm: sample %d has %d features, want %d", i, len(x), w)
		}
	}
	return nil
}

// Labels returns the distinct labels in order of first appearance.
func (p Problem) Labels() []int {
	seen := make(map[int]bool)
	var out []int
	for _, y := range p.Y {
		if !seen[y] {
			seen[y] = true
			out = append(out, y)
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func (p Param) kernel(a, b []float64) float64 {
	switch p.Kernel {
	case RBF:
		return math.Exp(-p.Gamma * sqDist(a, b))
	default:
		return dot(a, b)
	}
}

// Model is a trained binary classifier: sign(sum_i coef_i K(sv_i, x) + b)
// maps to the two labels.
type Model struct {
	Param    Param
	SVs      [][]float64
	Coefs    []float64 // alpha_i * y_i for each support vector
	B        float64
	PosLabel int
	NegLabel int
	// Iters records the SMO iterations used (for reporting).
	Iters int
}

// Decision returns the raw decision value for x.
func (m *Model) Decision(x []float64) float64 {
	s := m.B
	for i, sv := range m.SVs {
		s += m.Coefs[i] * m.Param.kernel(sv, x)
	}
	return s
}

// Predict returns the predicted label for x.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return m.PosLabel
	}
	return m.NegLabel
}

// NumSVs returns the number of support vectors.
func (m *Model) NumSVs() int { return len(m.SVs) }
