package svm_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/svm"
)

func TestModelRoundTrip(t *testing.T) {
	prob := twoBlobs(5, 40)
	m, err := svm.Train(prob, svm.Param{Kernel: svm.RBF, C: 2, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := svm.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range prob.X {
		if m.Predict(x) != m2.Predict(x) {
			t.Fatal("round-tripped model predicts differently")
		}
		if d1, d2 := m.Decision(x), m2.Decision(x); d1 != d2 {
			t.Fatalf("decision drift: %v vs %v", d1, d2)
		}
	}
}

func TestMultiModelRoundTrip(t *testing.T) {
	prob := svm.Problem{
		X: [][]float64{{0, 0}, {0, 1}, {5, 5}, {5, 6}, {-5, 5}, {-5, 6}},
		Y: []int{0, 0, 1, 1, 2, 2},
	}
	mm, err := svm.TrainMulti(prob, svm.Param{Kernel: svm.Linear, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := mm.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mm2, err := svm.UnmarshalMulti(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range prob.X {
		if mm.Predict(x) != mm2.Predict(x) {
			t.Fatal("round-tripped multiclass model predicts differently")
		}
	}
}

func TestModelDecodeErrors(t *testing.T) {
	if _, err := svm.ReadModel(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage model decoded")
	}
	if _, err := svm.UnmarshalMulti([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage multiclass model decoded")
	}
}
