package svm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Model serialization, the analog of LibSVM's svm_save_model /
// svm_load_model. In the case studies, trained models are sealed by the
// enclave (sdk.Env.Seal) before the blob leaves for untrusted storage.

// modelWire is the gob wire form of a binary model.
type modelWire struct {
	Param    Param
	SVs      [][]float64
	Coefs    []float64
	B        float64
	PosLabel int
	NegLabel int
}

// multiWire is the wire form of a one-vs-one multiclass model.
type multiWire struct {
	Labels []int
	Pairs  []modelWire
}

// WriteTo serializes the model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelWire{
		Param: m.Param, SVs: m.SVs, Coefs: m.Coefs, B: m.B,
		PosLabel: m.PosLabel, NegLabel: m.NegLabel,
	})
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadModel deserializes a binary model.
func ReadModel(r io.Reader) (*Model, error) {
	var w modelWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("svm: model decode: %w", err)
	}
	if len(w.SVs) != len(w.Coefs) {
		return nil, fmt.Errorf("svm: corrupt model: %d SVs, %d coefficients", len(w.SVs), len(w.Coefs))
	}
	return &Model{
		Param: w.Param, SVs: w.SVs, Coefs: w.Coefs, B: w.B,
		PosLabel: w.PosLabel, NegLabel: w.NegLabel,
	}, nil
}

// Marshal serializes a multiclass model to bytes.
func (mm *MultiModel) Marshal() ([]byte, error) {
	wire := multiWire{Labels: mm.Labels}
	for _, m := range mm.Pairs {
		wire.Pairs = append(wire.Pairs, modelWire{
			Param: m.Param, SVs: m.SVs, Coefs: m.Coefs, B: m.B,
			PosLabel: m.PosLabel, NegLabel: m.NegLabel,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalMulti deserializes a multiclass model.
func UnmarshalMulti(b []byte) (*MultiModel, error) {
	var wire multiWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("svm: model decode: %w", err)
	}
	mm := &MultiModel{Labels: wire.Labels}
	for _, w := range wire.Pairs {
		if len(w.SVs) != len(w.Coefs) {
			return nil, fmt.Errorf("svm: corrupt model pair")
		}
		mm.Pairs = append(mm.Pairs, &Model{
			Param: w.Param, SVs: w.SVs, Coefs: w.Coefs, B: w.B,
			PosLabel: w.PosLabel, NegLabel: w.NegLabel,
		})
	}
	return mm, nil
}
