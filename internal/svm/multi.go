package svm

import (
	"fmt"
	"sort"
)

// MultiModel is a one-vs-one multiclass classifier, the scheme LibSVM uses:
// one binary model per unordered label pair, majority vote at prediction.
type MultiModel struct {
	Labels []int
	Pairs  []*Model
}

// TrainMulti fits a classifier for any number of classes. With exactly two
// labels it is equivalent to Train.
func TrainMulti(prob Problem, param Param) (*MultiModel, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	labels := prob.Labels()
	sort.Ints(labels)
	if len(labels) < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", len(labels))
	}
	mm := &MultiModel{Labels: labels}
	for a := 0; a < len(labels); a++ {
		for b := a + 1; b < len(labels); b++ {
			var sub Problem
			for i, y := range prob.Y {
				if y == labels[a] || y == labels[b] {
					sub.X = append(sub.X, prob.X[i])
					sub.Y = append(sub.Y, y)
				}
			}
			m, err := Train(sub, param)
			if err != nil {
				return nil, fmt.Errorf("svm: pair (%d,%d): %w", labels[a], labels[b], err)
			}
			mm.Pairs = append(mm.Pairs, m)
		}
	}
	return mm, nil
}

// Predict returns the majority-vote label for x.
func (mm *MultiModel) Predict(x []float64) int {
	votes := make(map[int]int)
	for _, m := range mm.Pairs {
		votes[m.Predict(x)]++
	}
	best, bestN := mm.Labels[0], -1
	for _, lab := range mm.Labels {
		if votes[lab] > bestN {
			best, bestN = lab, votes[lab]
		}
	}
	return best
}

// Accuracy scores the model on a labelled set.
func (mm *MultiModel) Accuracy(X [][]float64, Y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if mm.Predict(x) == Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
