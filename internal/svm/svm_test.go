package svm_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"

	"nestedenclave/internal/datasets"
	"nestedenclave/internal/svm"
)

// quickRand is the deterministic source for testing/quick properties: the seed
// is fixed and logged so a failure replays exactly; QUICK_SEED explores other
// generation schedules.
func quickRand(t *testing.T) *rand.Rand {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("QUICK_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	t.Logf("testing/quick seed %d (set QUICK_SEED to vary)", seed)
	return rand.New(rand.NewSource(seed))
}

func blob(rng *rand.Rand, cx, cy float64, n int, label int) ([][]float64, []int) {
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := range X {
		X[i] = []float64{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5}
		Y[i] = label
	}
	return X, Y
}

func twoBlobs(seed int64, n int) svm.Problem {
	rng := rand.New(rand.NewSource(seed))
	x1, y1 := blob(rng, 2, 2, n, 1)
	x2, y2 := blob(rng, -2, -2, n, -1)
	return svm.Problem{X: append(x1, x2...), Y: append(y1, y2...)}
}

func TestLinearSeparable(t *testing.T) {
	prob := twoBlobs(1, 60)
	m, err := svm.Train(prob, svm.Param{Kernel: svm.Linear, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range prob.X {
		if m.Predict(x) == prob.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(prob.X)); acc < 0.95 {
		t.Fatalf("linear accuracy %.2f on separable blobs", acc)
	}
	if m.NumSVs() == 0 || m.NumSVs() == len(prob.X) {
		t.Fatalf("degenerate support vector count %d of %d", m.NumSVs(), len(prob.X))
	}
}

func TestRBFNonLinear(t *testing.T) {
	// XOR-ish pattern: linearly inseparable, RBF must crack it.
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var Y []int
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		y := 1
		if (x[0] > 0) != (x[1] > 0) {
			y = -1
		}
		X = append(X, x)
		Y = append(Y, y)
	}
	prob := svm.Problem{X: X, Y: Y}
	mLin, err := svm.Train(prob, svm.Param{Kernel: svm.Linear, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	mRBF, err := svm.Train(prob, svm.Param{Kernel: svm.RBF, C: 10, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(m *svm.Model) float64 {
		c := 0
		for i, x := range X {
			if m.Predict(x) == Y[i] {
				c++
			}
		}
		return float64(c) / float64(len(X))
	}
	if acc := accOf(mRBF); acc < 0.9 {
		t.Fatalf("RBF accuracy %.2f on XOR", acc)
	}
	if accOf(mRBF) <= accOf(mLin) {
		t.Fatalf("RBF (%.2f) did not beat linear (%.2f) on XOR", accOf(mRBF), accOf(mLin))
	}
}

func TestValidation(t *testing.T) {
	if _, err := svm.Train(svm.Problem{}, svm.Param{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := svm.Train(svm.Problem{X: [][]float64{{1}}, Y: []int{1, 2}}, svm.Param{}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := svm.Train(svm.Problem{X: [][]float64{{1}, {2, 3}}, Y: []int{1, 2}}, svm.Param{}); err == nil {
		t.Fatal("ragged features accepted")
	}
	// One class only.
	if _, err := svm.Train(svm.Problem{X: [][]float64{{1}, {2}}, Y: []int{1, 1}}, svm.Param{}); err == nil {
		t.Fatal("single-class problem accepted by binary trainer")
	}
	// Three classes rejected by the binary trainer.
	if _, err := svm.Train(svm.Problem{X: [][]float64{{1}, {2}, {3}}, Y: []int{1, 2, 3}}, svm.Param{}); err == nil {
		t.Fatal("3-class problem accepted by binary trainer")
	}
	if _, err := svm.TrainMulti(svm.Problem{X: [][]float64{{1}}, Y: []int{1}}, svm.Param{}); err == nil {
		t.Fatal("single-class problem accepted by multi trainer")
	}
}

func TestMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var Y []int
	centres := [][2]float64{{3, 0}, {-3, 3}, {-3, -3}}
	for c, ctr := range centres {
		xs, _ := blob(rng, ctr[0], ctr[1], 50, c)
		X = append(X, xs...)
		for range xs {
			Y = append(Y, c)
		}
	}
	mm, err := svm.TrainMulti(svm.Problem{X: X, Y: Y}, svm.Param{Kernel: svm.Linear, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Pairs) != 3 { // C(3,2)
		t.Fatalf("pair count %d", len(mm.Pairs))
	}
	if acc := mm.Accuracy(X, Y); acc < 0.95 {
		t.Fatalf("multiclass accuracy %.2f", acc)
	}
}

func TestTableVDatasetsTrainable(t *testing.T) {
	for _, spec := range datasets.TableV() {
		d := datasets.Generate(spec.Scale(0.01), rand.New(rand.NewSource(42)))
		mm, err := svm.TrainMulti(
			svm.Problem{X: d.TrainX, Y: d.TrainY},
			svm.Param{Kernel: svm.RBF, C: 4},
		)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if acc := mm.Accuracy(d.TestX, d.TestY); acc < 0.7 {
			t.Errorf("%s: accuracy %.2f on synthetic blobs", spec.Name, acc)
		}
	}
}

// Property: model coefficients respect the box constraint |coef| <= C and
// prediction is sign-consistent with the decision value.
func TestBoxConstraintProperty(t *testing.T) {
	f := func(seed int64) bool {
		prob := twoBlobs(seed, 20)
		m, err := svm.Train(prob, svm.Param{Kernel: svm.Linear, C: 2})
		if err != nil {
			return false
		}
		for i, co := range m.Coefs {
			if co < -2-1e-9 || co > 2+1e-9 {
				return false
			}
			_ = i
		}
		for _, x := range prob.X {
			d := m.Decision(x)
			p := m.Predict(x)
			if (d >= 0 && p != m.PosLabel) || (d < 0 && p != m.NegLabel) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: quickRand(t)}); err != nil {
		t.Error(err)
	}
}
