package analysis

import (
	"go/ast"
	"go/types"
)

// replayCriticalPkgs are the packages whose behaviour must replay bit-for-bit
// from a seed: the machine model, its oracle, and the harnesses that drive
// them. Wall clock and global RNG state are forbidden module-wide; the
// map-iteration check is confined to these, where iteration order feeding
// state or output would silently diverge replays.
var replayCriticalPkgs = []string{
	"internal/core",
	"internal/sgx",
	"internal/model",
	"internal/simtest",
	"internal/chaos",
	"internal/channel",
	"internal/adversary",
	"internal/switchless",
}

// injectRandPkgs are workload generators: deterministic corpora are their
// whole contract, so they must accept a caller-seeded *rand.Rand rather than
// construct their own source.
var injectRandPkgs = []string{
	"internal/datasets",
	"internal/ycsb",
}

// wallClockFuncs read or schedule against the host's real clock. Simulated
// time lives in trace.Recorder.Cycles; host time is only legitimate in
// benchmark reporting, behind an allow directive.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source — cross-test, cross-goroutine mutable state that no
// seed controls.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint64N": true, "N": true,
}

// randConstructors flag ad-hoc RNG construction inside inject-only packages.
var randConstructors = map[string]bool{"New": true, "NewSource": true}

// Determinism enforces seeded replay: the model checker and the chaos soak
// can only shrink and replay failures if the packages they drive derive
// every decision from the seed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "replay-critical code must not read wall clock, global RNG state, or depend on map iteration order",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	inject := pathMatchesAny(p.Pkg.Path, injectRandPkgs)
	replay := pathMatchesAny(p.Pkg.Path, replayCriticalPkgs)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := stdFuncCall(p.Pkg.Info, call, "time", wallClockFuncs); ok {
				p.Reportf(call.Pos(), "determinism/wallclock",
					"time.%s reads the host clock; replay derives time from the simulated cycle counter (trace.Recorder.Cycles)", name)
			}
			for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := stdFuncCall(p.Pkg.Info, call, randPkg, globalRandFuncs); ok {
					p.Reportf(call.Pos(), "determinism/rand-global",
						"rand.%s draws from the process-global source; use an injected seeded *rand.Rand", name)
				}
				if inject {
					if name, ok := stdFuncCall(p.Pkg.Info, call, randPkg, randConstructors); ok {
						p.Reportf(call.Pos(), "determinism/rand-inject",
							"rand.%s constructs an RNG inside a workload generator; accept a seeded *rand.Rand from the caller instead", name)
					}
				}
			}
			return true
		})
		if replay {
			funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
				checkMapOrder(p, name, body)
			})
		}
	}
}

// checkMapOrder flags range-over-map loops whose bodies feed order-sensitive
// state (appends or string concatenation into variables that outlive the
// loop) or output sinks (fmt printing, trace recording), unless the
// collected variable is sorted later in the same function.
func checkMapOrder(p *Pass, funcName string, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // literals get their own funcBodies visit
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			ranges = append(ranges, rs)
		}
		return true
	})
	for _, rs := range ranges {
		if obj, kind := orderSensitiveUse(p.Pkg.Info, rs); kind != "" {
			if obj != nil && sortedAfter(p.Pkg.Info, body, rs, obj) {
				continue
			}
			p.Reportf(rs.Pos(), "determinism/map-order",
				"map iteration order feeds %s in %s; iterate sorted keys (or sort the result before it is observed)", kind, funcName)
		}
	}
}

// orderSensitiveUse inspects a range-over-map body for writes whose result
// depends on iteration order. It returns the collected variable (when there
// is one to check for later sorting) and a description, or "" if the body
// only performs order-insensitive work (map writes, deletes, counters).
func orderSensitiveUse(info *types.Info, rs *ast.RangeStmt) (types.Object, string) {
	var foundObj types.Object
	var found string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if obj, ok := appendToOuter(info, n, rs); ok {
				foundObj, found = obj, "an append to a slice declared outside the loop"
			} else if obj, ok := concatToOuter(info, n, rs); ok {
				foundObj, found = obj, "string concatenation into a variable declared outside the loop"
			}
		case *ast.CallExpr:
			if name, ok := stdFuncCall(info, n, "fmt", fmtWriteFuncs); ok {
				foundObj, found = nil, "fmt."+name+" output"
			} else if obj := calleeObject(info, n); obj != nil {
				if recv := methodRecvNamed(obj); recv != nil && typeIs(recv, "internal/trace", "Recorder") {
					foundObj, found = nil, "trace.Recorder event emission"
				}
			}
		}
		return true
	})
	return foundObj, found
}

var fmtWriteFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// appendToOuter matches `v = append(v, ...)` (or any append assigned to v)
// where v is declared before the range statement.
func appendToOuter(info *types.Info, as *ast.AssignStmt, rs *ast.RangeStmt) (types.Object, bool) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			continue
		} else if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		if obj := outerObject(info, as.Lhs[i], rs); obj != nil {
			return obj, true
		}
		// Appends into struct fields or map slots outlive the loop too.
		if _, isSel := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr); isSel {
			return nil, true
		}
	}
	return nil, false
}

// concatToOuter matches `s += <expr>` on a string variable declared before
// the range statement.
func concatToOuter(info *types.Info, as *ast.AssignStmt, rs *ast.RangeStmt) (types.Object, bool) {
	if as.Tok.String() != "+=" || len(as.Lhs) != 1 {
		return nil, false
	}
	obj := outerObject(info, as.Lhs[0], rs)
	if obj == nil {
		return nil, false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return nil, false
	}
	return obj, true
}

// outerObject resolves an lvalue identifier to its object if it was declared
// before (outside) the range statement.
func outerObject(info *types.Info, lhs ast.Expr, rs *ast.RangeStmt) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || obj.Pos() >= rs.Pos() {
		return nil
	}
	return obj
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement in the same function body — the collect-then-sort idiom,
// which is deterministic.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := calleeObject(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pp := callee.Pkg().Path(); pp != "sort" && pp != "slices" {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				sorted = true
				break
			}
		}
		return true
	})
	return sorted
}
