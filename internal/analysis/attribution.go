package analysis

import (
	"go/ast"
)

// Attribution keeps the PR-1 observability contract complete: every code
// path that drives the billed memory hierarchy — EPC page allocation
// (epc.Manager) and MEE line work (mee.Engine) — must name the enclave that
// pays for it, either by charging directly (trace.Recorder.ChargeTo /
// ChargeToDetail / ChargeHint), by naming the payer for the downstream
// hierarchy (SetBillHint), or by threading the core's BillEID. A call with
// no attribution evidence in the same function is work the per-enclave
// accounting silently loses.
var Attribution = &Analyzer{
	Name: "attribution",
	Doc:  "code paths into internal/epc and internal/mee must thread BillEID/ChargeTo so per-enclave accounting stays complete",
	Run:  runAttribution,
}

// billableMethods name the entry points that move billed work.
var billableMethods = []struct {
	pkgSuffix string
	typeName  string
	methods   map[string]bool
}{
	{"internal/mee", "Engine", map[string]bool{
		"ReadLine": true, "WriteLine": true, "DropLine": true, "DropPage": true,
	}},
	{"internal/epc", "Manager", map[string]bool{
		"Alloc": true, "Free": true,
	}},
}

// attributionExemptPkgs implement the hierarchy itself: they run below the
// protection context and consume the hint rather than set it.
var attributionExemptPkgs = []string{
	"internal/mee", "internal/epc", "internal/cache", "internal/trace",
}

func runAttribution(p *Pass) {
	if pathMatchesAny(p.Pkg.Path, attributionExemptPkgs) {
		return
	}
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkAttribution(p, name, body)
		})
	}
}

func checkAttribution(p *Pass, name string, body *ast.BlockStmt) {
	type billed struct {
		call *ast.CallExpr
		what string
	}
	var calls []billed
	evidence := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Any reference to a BillEID field/method/variable counts: the
			// function is visibly wired into the attribution plumbing.
			if n.Name == "BillEID" {
				evidence = true
			}
		case *ast.CallExpr:
			obj := calleeObject(p.Pkg.Info, n)
			if obj == nil {
				return true
			}
			recv := methodRecvNamed(obj)
			if recv == nil {
				return true
			}
			if typeIs(recv, "internal/trace", "Recorder") {
				switch obj.Name() {
				case "ChargeTo", "ChargeToDetail", "ChargeHint", "SetBillHint":
					evidence = true
				}
				return true
			}
			for _, bm := range billableMethods {
				if typeIs(recv, bm.pkgSuffix, bm.typeName) && bm.methods[obj.Name()] {
					calls = append(calls, billed{call: n, what: recv.Obj().Pkg().Name() + "." + bm.typeName + "." + obj.Name()})
				}
			}
		}
		return true
	})
	if evidence {
		return
	}
	for _, c := range calls {
		p.Reportf(c.call.Pos(), "attribution/unbilled",
			"%s calls %s without attribution evidence in the function (ChargeTo/ChargeHint/SetBillHint call or BillEID reference); the work is lost to per-enclave accounting", name, c.what)
	}
}
