package analysis

import (
	"go/ast"
	"go/types"
)

// LockOrder pins the lock hierarchy the PR-2 copy-on-write work
// established: the machine-level mutexes (sgx.Machine.mu, kos.Kernel.mu)
// are acquired BEFORE the EPCM/page-table locks (pt.Table.mu,
// epc.Manager.mu), never the reverse. Page-table writers run under the
// machine's world view; a thread that takes a page lock and then blocks on
// the machine lock deadlocks against the eviction path, which holds the
// machine lock while publishing page-table updates.
//
// The check is intraprocedural: within one function body it tracks Lock and
// Unlock calls on classified mutexes (deferred unlocks hold to function
// exit) and reports any machine-class acquisition while a page-class lock
// is held.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "machine-level mutexes are acquired before EPCM/page-table locks, never the reverse",
	Run:  runLockOrder,
}

type lockClass int

const (
	lockNone    lockClass = iota
	lockMachine           // rank 0: acquired first
	lockPage              // rank 1: acquired under a machine lock
)

// lockOwners classifies a mutex by the struct that embeds it.
var lockOwners = []struct {
	pkgSuffix string
	typeName  string
	class     lockClass
}{
	{"internal/sgx", "Machine", lockMachine},
	{"internal/kos", "Kernel", lockMachine},
	{"internal/pt", "Table", lockPage},
	{"internal/epc", "Manager", lockPage},
}

func runLockOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkLockOrder(p, name, body)
		})
	}
}

// lockOp is one Lock/Unlock call on a classified mutex, in source order.
type lockOp struct {
	pos      ast.Node
	class    lockClass
	owner    string // "pt.Table" — for the message
	acquire  bool
	deferred bool
}

func checkLockOrder(p *Pass, name string, body *ast.BlockStmt) {
	var ops []lockOp
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		class, owner, acquire, ok := classifyLockCall(p.Pkg.Info, call)
		if !ok {
			return true
		}
		ops = append(ops, lockOp{pos: call, class: class, owner: owner, acquire: acquire, deferred: deferred})
		// A classified `defer x.mu.Unlock()` must not be revisited as a plain
		// CallExpr: the second visit would record a non-deferred release and
		// wrongly drop the lock from the held set.
		return !deferred
	})

	held := map[lockClass][]string{} // class -> owners currently held
	for _, op := range ops {
		if !op.acquire {
			if op.deferred {
				continue // releases at function exit; lock stays held below
			}
			if owners := held[op.class]; len(owners) > 0 {
				held[op.class] = owners[:len(owners)-1]
			}
			continue
		}
		if op.class == lockMachine {
			if owners := held[lockPage]; len(owners) > 0 {
				p.Reportf(op.pos.Pos(), "lockorder/inversion",
					"%s acquires the machine-level %s lock while holding the %s lock; the hierarchy is machine before EPCM/page-table",
					name, op.owner, owners[len(owners)-1])
			}
		}
		held[op.class] = append(held[op.class], op.owner)
	}
}

// classifyLockCall matches `x.mu.Lock()` / `x.mu.Unlock()` (also RLock/
// RUnlock) where x is one of the classified owner types.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockClass, string, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, "", false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockNone, "", false, false
	}
	// The method must come from sync (Mutex/RWMutex), not an arbitrary type.
	if obj := info.Uses[sel.Sel]; obj != nil {
		if recv := methodRecvNamed(obj); recv != nil {
			if pkg := recv.Obj().Pkg(); pkg == nil || pkg.Path() != "sync" {
				return lockNone, "", false, false
			}
		}
	}
	// Unwrap the mutex selector to the value that owns it.
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockNone, "", false, false
	}
	tv, ok := info.Types[field.X]
	if !ok {
		return lockNone, "", false, false
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return lockNone, "", false, false
	}
	for _, o := range lockOwners {
		if named.Obj().Name() == o.typeName && pathMatches(named.Obj().Pkg().Path(), o.pkgSuffix) {
			return o.class, shortPkg(named.Obj().Pkg()) + "." + o.typeName, acquire, true
		}
	}
	return lockNone, "", false, false
}

func shortPkg(p *types.Package) string { return p.Name() }
