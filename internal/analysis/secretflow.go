package analysis

// secretflow: the interprocedural information-flow rule. Where the boundary
// rule approximates "trusted code must not leak" by signature shape, this one
// tracks actual values: anything derived from the source catalog in
// summary.go (the platform secret, EGETKEY/DeriveKey results, unsealed blob
// plaintext) must not reach a kernel- or host-visible sink (IPC sends, raw
// DRAM writes, the switchless ring, ocall arguments, trace/log output)
// unless it passed through a Seal/Encrypt/MAC sanitizer first. Flows are
// tracked across calls via the param→sink and return→source summaries, so
// the finding's message reconstructs the full call chain from the secret's
// birth to the sink.
import "strings"

// SecretFlow is the interprocedural taint rule.
var SecretFlow = &Analyzer{
	Name: "secretflow",
	Doc:  "secrets (seal keys, the REPORT MAC key, unsealed plaintext) must not reach kernel/host-visible sinks unsealed",
	RunProgram: func(pass *ProgramPass) {
		for _, n := range pass.Prog.nodes {
			if n.taint == nil {
				continue
			}
			for _, f := range n.taint.localFlows {
				var trace strings.Builder
				for _, step := range f.via {
					trace.WriteString(" -> ")
					trace.WriteString(step.fn.name)
					trace.WriteString(" (")
					trace.WriteString(pass.Posn(step.pos))
					trace.WriteString(")")
				}
				born := ""
				if f.source.fn != n {
					born = " born in " + f.source.fn.name + " at " + pass.Posn(f.source.pos) + ","
				} else {
					born = " born at " + pass.Posn(f.source.pos) + ","
				}
				pass.Reportf(f.pos, "secretflow/leak",
					"%s,%s reaches %s here%s; seal, encrypt, or MAC it before it leaves the trusted boundary",
					f.source.desc, born, f.desc, trace.String())
			}
		}
	},
}
