package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the tree under analysis.
type Package struct {
	// Path is the import path ("nestedenclave/internal/sgx").
	Path string
	// Name is the package name from the package clause.
	Name string
	// Fset is shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// ModulePathOf reads the module path from dir's go.mod.
func ModulePathOf(dir string) (string, error) {
	return modulePath(filepath.Join(dir, "go.mod"))
}

// LoadModule loads the Go module rooted at dir (the directory holding
// go.mod), reading the module path from go.mod.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(dir, modPath)
}

// LoadTree parses and type-checks every non-test package under root,
// treating root as the module directory for import path modPath. Test files,
// testdata trees, and dot/underscore directories are skipped: the analyzers
// guard product code, and tests legitimately use wall time and ad-hoc RNGs.
// Intra-module imports resolve against the loaded tree; everything else is
// type-checked from the standard library's source.
func LoadTree(root, modPath string) ([]*Package, error) {
	return LoadTreeOverlay(root, modPath, nil)
}

// LoadTreeOverlay is LoadTree with a file overlay: keys are paths relative to
// root (slash-separated), values replace the on-disk content, and a key whose
// file does not exist on disk adds a new file to its directory's package.
// Used by the fault-injection tests to plant a bug in the real module and
// prove the analyzers catch it, without touching the working tree.
func LoadTreeOverlay(root, modPath string, overlay map[string][]byte) ([]*Package, error) {
	return loadTree(root, modPath, overlay, nil)
}

// LoadTreeSubset type-checks only the packages satisfying keep plus their
// intra-module dependency closure, and returns just those. Parsing still
// covers the whole tree (it is cheap and the import graph needs it); the
// savings are in type-checking, which dominates a full load. Used by
// `nescheck -fast` to analyze only changed packages — cross-package rules see
// only the subset, so a full run remains the authority.
func LoadTreeSubset(root, modPath string, keep func(pkgPath string) bool) ([]*Package, error) {
	return loadTree(root, modPath, nil, keep)
}

func loadTree(root, modPath string, overlay map[string][]byte, keep func(string) bool) ([]*Package, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type parsed struct {
		path    string
		name    string
		files   []*ast.File
		imports []string
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: path}
		names, err := goSources(d)
		if err != nil {
			return nil, err
		}
		// Overlay keys in this directory that name new files join the list.
		for key := range overlay {
			dir, base := filepath.ToSlash(filepath.Dir(key)), filepath.Base(key)
			if dir == "." {
				dir = ""
			}
			relSlash := filepath.ToSlash(rel)
			if relSlash == "." {
				relSlash = ""
			}
			if dir != relSlash {
				continue
			}
			found := false
			for _, n := range names {
				if n == base {
					found = true
				}
			}
			if !found {
				names = append(names, base)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			full := filepath.Join(d, name)
			var src any
			if overlay != nil {
				relFile, err := filepath.Rel(root, full)
				if err == nil {
					if b, ok := overlay[filepath.ToSlash(relFile)]; ok {
						src = b
					}
				}
			}
			f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse: %w", err)
			}
			p.files = append(p.files, f)
			p.name = f.Name.Name
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		if len(p.files) == 0 {
			continue
		}
		byPath[path] = p
		order = append(order, path)
	}

	// Topological order over intra-module imports so dependencies are
	// type-checked before their importers.
	sorted, err := topoSort(order, func(path string) []string { return byPath[path].imports })
	if err != nil {
		return nil, err
	}

	// Subset filter: keep the requested packages plus their dependency
	// closure. Reverse topo order marks importers before their imports.
	if keep != nil {
		needed := make(map[string]bool)
		for i := len(sorted) - 1; i >= 0; i-- {
			path := sorted[i]
			if keep(path) {
				needed[path] = true
			}
			if needed[path] {
				for _, dep := range byPath[path].imports {
					if byPath[dep] != nil {
						needed[dep] = true
					}
				}
			}
		}
		subset := sorted[:0]
		for _, path := range sorted {
			if needed[path] {
				subset = append(subset, path)
			}
		}
		sorted = subset
	}

	imp := &moduleImporter{
		module: make(map[string]*types.Package),
		stdlib: importer.ForCompiler(fset, "source", nil),
	}

	// Type-check concurrently, topo order respected through per-package done
	// channels: a package starts once its intra-module imports are published.
	// The FileSet is internally synchronized; the importer synchronizes its
	// two caches itself. The semaphore is acquired only after the waits, so
	// there is no hold-and-wait deadlock.
	type job struct {
		done chan struct{}
		pkg  *Package
		err  error
	}
	jobs := make(map[string]*job, len(sorted))
	for _, path := range sorted {
		jobs[path] = &job{done: make(chan struct{})}
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, path := range sorted {
		wg.Add(1)
		go func(path string, j *job) {
			defer wg.Done()
			defer close(j.done)
			p := byPath[path]
			for _, dep := range p.imports {
				dj := jobs[dep]
				if dj == nil {
					continue // import outside the loaded tree
				}
				<-dj.done
				if dj.err != nil {
					j.err = fmt.Errorf("analysis: %s: dependency failed: %w", path, dj.err)
					return
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			info := &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
			}
			conf := types.Config{Importer: imp}
			tpkg, err := conf.Check(path, fset, p.files, info)
			if err != nil {
				j.err = fmt.Errorf("analysis: typecheck %s: %w", path, err)
				return
			}
			imp.publish(path, tpkg)
			j.pkg = &Package{
				Path:  path,
				Name:  p.name,
				Fset:  fset,
				Files: p.files,
				Types: tpkg,
				Info:  info,
			}
		}(path, jobs[path])
	}
	wg.Wait()

	pkgs := make([]*Package, 0, len(sorted))
	for _, path := range sorted {
		j := jobs[path]
		if j.err != nil {
			return nil, j.err
		}
		pkgs = append(pkgs, j.pkg)
	}
	return pkgs, nil
}

// moduleImporter serves already-checked module packages and defers the rest
// to the standard library's source importer. Both sides are synchronized:
// module packages behind an RWMutex, the stdlib source importer (whose
// package cache is not safe for concurrent use) behind its own mutex.
type moduleImporter struct {
	mu     sync.RWMutex
	module map[string]*types.Package

	stdMu  sync.Mutex
	stdlib types.Importer
}

func (m *moduleImporter) publish(path string, pkg *types.Package) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.module[path] = pkg
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	m.mu.RLock()
	p, ok := m.module[path]
	m.mu.RUnlock()
	if ok {
		return p, nil
	}
	m.stdMu.Lock()
	defer m.stdMu.Unlock()
	return m.stdlib.Import(path)
}

// packageDirs lists directories under root containing non-test Go sources.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil {
			return err
		}
		if len(srcs) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func topoSort(paths []string, deps func(string) []string) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(paths))
	known := make(map[string]bool, len(paths))
	for _, p := range paths {
		known[p] = true
	}
	var out []string
	var visit func(string) error
	visit = func(p string) error {
		switch color[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		color[p] = grey
		for _, d := range deps(p) {
			if !known[d] {
				continue // import of a path outside the loaded tree
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		color[p] = black
		out = append(out, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
