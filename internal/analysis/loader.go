package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the tree under analysis.
type Package struct {
	// Path is the import path ("nestedenclave/internal/sgx").
	Path string
	// Name is the package name from the package clause.
	Name string
	// Fset is shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// LoadModule loads the Go module rooted at dir (the directory holding
// go.mod), reading the module path from go.mod.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(dir, modPath)
}

// LoadTree parses and type-checks every non-test package under root,
// treating root as the module directory for import path modPath. Test files,
// testdata trees, and dot/underscore directories are skipped: the analyzers
// guard product code, and tests legitimately use wall time and ad-hoc RNGs.
// Intra-module imports resolve against the loaded tree; everything else is
// type-checked from the standard library's source.
func LoadTree(root, modPath string) ([]*Package, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type parsed struct {
		path    string
		name    string
		files   []*ast.File
		imports []string
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: path}
		names, err := goSources(d)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(d, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse: %w", err)
			}
			p.files = append(p.files, f)
			p.name = f.Name.Name
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		if len(p.files) == 0 {
			continue
		}
		byPath[path] = p
		order = append(order, path)
	}

	// Topological order over intra-module imports so dependencies are
	// type-checked before their importers.
	sorted, err := topoSort(order, func(path string) []string { return byPath[path].imports })
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package)
	imp := &moduleImporter{
		module: checked,
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range sorted {
		p := byPath[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
		}
		checked[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Name:  p.name,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// moduleImporter serves already-checked module packages and defers the rest
// to the standard library's source importer.
type moduleImporter struct {
	module map[string]*types.Package
	stdlib types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	return m.stdlib.Import(path)
}

// packageDirs lists directories under root containing non-test Go sources.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil {
			return err
		}
		if len(srcs) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func topoSort(paths []string, deps func(string) []string) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(paths))
	known := make(map[string]bool, len(paths))
	for _, p := range paths {
		known[p] = true
	}
	var out []string
	var visit func(string) error
	visit = func(p string) error {
		switch color[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		color[p] = grey
		for _, d := range deps(p) {
			if !known[d] {
				continue // import of a path outside the loaded tree
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		color[p] = black
		out = append(out, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
