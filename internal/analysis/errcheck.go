package analysis

import (
	"go/ast"
)

// ErrCheck is errcheck-lite, scoped to the fault-surfacing APIs the PR-3
// panic→error conversions introduced: mee.New and the engine's line
// operations, kos allocation (EPC pressure is a recoverable error, not a
// crash), and the sdk ECall/NECall family plus supervisor/channel retries. A
// discarded error from these packages is a swallowed fault — exactly what
// the conversions were made to surface.
//
// Only silent discards are flagged: a call used as a bare statement, or in
// `go`/`defer`. An explicit `_ = f()` is a visible, reviewable decision and
// is allowed.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "error results from the fault-returning APIs (internal/mee, internal/kos, internal/sdk) must not be silently discarded",
	Run:  runErrCheck,
}

// errCheckedPkgs are the packages whose error returns carry fault state.
var errCheckedPkgs = []string{
	"internal/mee",
	"internal/kos",
	"internal/sdk",
}

func runErrCheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch n := n.(type) {
			case *ast.ExprStmt:
				if c, ok := n.X.(*ast.CallExpr); ok {
					call, kind = c, "discarded"
				}
			case *ast.GoStmt:
				call, kind = n.Call, "discarded by go statement"
			case *ast.DeferStmt:
				call, kind = n.Call, "discarded by defer"
			}
			if call == nil {
				return true
			}
			obj := calleeObject(p.Pkg.Info, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if !pathMatchesAny(obj.Pkg().Path(), errCheckedPkgs) {
				return true
			}
			if p.Pkg.Types.Path() == obj.Pkg().Path() {
				return true // a package may discard its own errors knowingly
			}
			if !lastResultIsError(p.Pkg.Info, call) {
				return true
			}
			qual := obj.Pkg().Name() + "." + obj.Name()
			if recv := methodRecvNamed(obj); recv != nil {
				qual = obj.Pkg().Name() + "." + recv.Obj().Name() + "." + obj.Name()
			}
			p.Reportf(call.Pos(), "errcheck/unchecked",
				"error result of %s %s; these APIs surface enclave faults — handle the error or assign it explicitly", qual, kind)
			return true
		})
	}
}
