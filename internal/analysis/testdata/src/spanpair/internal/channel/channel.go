// Fixture: channel is OUT of spanpair's scope — its beginSpan helper hands
// SpanRefs to callers, so an in-function End requirement would be wrong.
// Nothing here may produce a finding.
package channel

import "fix/internal/trace"

func HelperReturnsSpan(rec *trace.Recorder) trace.SpanRef {
	return rec.BeginSpan(trace.NoCore, trace.NoEID, "chan_send")
}
