// Fixture stand-in for the span API: the path suffix internal/trace makes
// Recorder.BeginSpan classify exactly like the real one.
package trace

const (
	NoCore = -1
	NoEID  = 0
)

type Recorder struct{}

type SpanRef struct{ id uint64 }

func (r *Recorder) BeginSpan(core int, eid uint64, name string) SpanRef { return SpanRef{} }

func (s SpanRef) End()       {}
func (s SpanRef) ID() uint64 { return s.id }
