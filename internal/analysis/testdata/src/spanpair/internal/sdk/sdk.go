// Fixture: BeginSpan results in the span-opening layers must be closed on
// all paths — deferred, or linearly in the binding's own block. An End
// reachable only inside a nested block, a missing End, and a discarded
// SpanRef are findings.
package sdk

import "fix/internal/trace"

// Deferred close covers every exit, including panic unwind. Clean.
func DeferredOK(rec *trace.Recorder) {
	sp := rec.BeginSpan(0, 1, "ecall:q")
	defer sp.End()
}

// Straight-line close in the same block (the aexLocked pattern). Clean.
func LinearOK(rec *trace.Recorder) {
	sp := rec.BeginSpan(0, 1, "aex")
	sp.End()
}

// Two spans, each properly paired, one via the hint round trip. Clean.
func TwoSpansOK(rec *trace.Recorder) {
	outer := rec.BeginSpan(trace.NoCore, trace.NoEID, "restart")
	defer outer.End()
	inner := rec.BeginSpan(0, 2, "page_walk")
	_ = inner.ID()
	inner.End()
}

func Unclosed(rec *trace.Recorder) {
	sp := rec.BeginSpan(0, 1, "ecall:q") // want "spanpair/unclosed: .*opens span sp but never calls sp.End"
	_ = sp.ID()
}

// The only End sits behind a condition: the fast path leaks the span.
func ConditionalEnd(rec *trace.Recorder, slow bool) {
	sp := rec.BeginSpan(0, 1, "ewb") // want "spanpair/conditional: .*ends span sp only inside a nested block"
	if slow {
		sp.End()
	}
}

// Dropping the SpanRef makes the span permanently unclosable.
func Discarded(rec *trace.Recorder) {
	rec.BeginSpan(0, 1, "eld") // want "spanpair/discarded: .*discards the BeginSpan result"
}

func DiscardedBlank(rec *trace.Recorder) {
	_ = rec.BeginSpan(0, 1, "eld") // want "spanpair/discarded: .*discards the BeginSpan result"
}

// A span opened inside a branch and closed in that same block is linear
// within its binding block. Clean.
func BranchLocalOK(rec *trace.Recorder, walk bool) {
	if walk {
		sp := rec.BeginSpan(0, 1, "page_walk")
		sp.End()
	}
}

// Function literals are checked as their own bodies.
func LiteralCases(rec *trace.Recorder) {
	ok := func() {
		sp := rec.BeginSpan(0, 1, "ocall:x")
		defer sp.End()
	}
	bad := func() {
		sp := rec.BeginSpan(0, 1, "ocall:y") // want "spanpair/unclosed: .*opens span sp but never calls sp.End"
		_ = sp.ID()
	}
	ok()
	bad()
}

// An explicit, reasoned suppression works like every other family.
func Suppressed(rec *trace.Recorder) {
	//nescheck:allow spanpair fixture exercises the allow path for span leaks
	sp := rec.BeginSpan(0, 1, "ecall:q")
	_ = sp.ID()
}
