// Fixture stand-in for internal/sdk: the ECall family returns enclave
// faults as errors.
package sdk

type Instance struct{}

func (i *Instance) ECall(name string, args []byte) ([]byte, error)  { return nil, nil }
func (i *Instance) NECall(name string, args []byte) ([]byte, error) { return nil, nil }
