// Fixture stand-in for internal/mee: fault-returning constructors and ops.
package mee

type Engine struct{}

func New(lines int) (*Engine, error)   { return &Engine{}, nil }
func (e *Engine) Flush() error         { return nil }
func (e *Engine) Stats() (int, string) { return 0, "" }
