// Fixture stand-in for internal/kos: EPC pressure surfaces as an error.
package kos

func Alloc(pages int) error { return nil }

// Internal discards its own package's errors, which is allowed: a package
// may knowingly swallow faults it defined.
func Internal() {
	Alloc(1)
}
