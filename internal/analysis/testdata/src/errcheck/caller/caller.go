// Fixture: silently discarded error results from the fault-returning
// packages are findings; explicit `_ =` discards and handled errors are not.
package caller

import (
	"fix/internal/kos"
	"fix/internal/mee"
	"fix/internal/sdk"
)

func Bad(i *sdk.Instance) {
	mee.New(64)       // want "errcheck/unchecked: error result of mee.New discarded"
	i.ECall("f", nil) // want "errcheck/unchecked: error result of sdk.Instance.ECall discarded"
	go kos.Alloc(1)   // want "errcheck/unchecked: error result of kos.Alloc discarded by go statement"
}

func BadDefer(e *mee.Engine) {
	defer e.Flush() // want "errcheck/unchecked: error result of mee.Engine.Flush discarded by defer"
}

func Good(i *sdk.Instance) error {
	e, err := mee.New(64)
	if err != nil {
		return err
	}
	// An explicit discard is a visible, reviewable decision: clean.
	_ = e.Flush()
	_, _ = i.NECall("f", nil)
	// Non-error results are not errcheck's business: clean.
	e.Stats()
	return nil
}
