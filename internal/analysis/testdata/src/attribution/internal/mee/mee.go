// Fixture stand-in for internal/mee: billable line work.
package mee

type Engine struct{}

func (e *Engine) ReadLine(pa uint64) ([]byte, error)  { return nil, nil }
func (e *Engine) WriteLine(pa uint64, b []byte) error { return nil }
func (e *Engine) DropPage(pa uint64)                  {}
