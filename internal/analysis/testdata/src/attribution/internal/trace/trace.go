// Fixture stand-in for internal/trace: the attribution surface.
package trace

type Recorder struct{}

func (r *Recorder) SetBillHint(eid uint64)                       {}
func (r *Recorder) ChargeTo(eid uint64, core int, e, cyc int64)  {}
func (r *Recorder) ChargeHint(e, cyc int64)                      {}
func (r *Recorder) ChargeToDetail(eid uint64, c int, e, d int64) {}
