// Fixture stand-in for internal/epc: billable page allocation.
package epc

type Manager struct{}

func (m *Manager) Alloc(eid uint64) (int, error) { return 0, nil }
func (m *Manager) Free(page int) error           { return nil }
