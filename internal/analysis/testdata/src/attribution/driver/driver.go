// Fixture: calls into the billed memory hierarchy need attribution evidence
// (a ChargeTo/ChargeHint/SetBillHint call or a BillEID reference) somewhere
// in the same function; without it the work is lost to per-enclave
// accounting.
package driver

import (
	"fix/internal/epc"
	"fix/internal/mee"
	"fix/internal/trace"
)

type Core struct {
	eid uint64
}

func (c *Core) BillEID() uint64 { return c.eid }

func Unbilled(e *epc.Manager) {
	e.Alloc(1) // want "attribution/unbilled: Unbilled calls epc.Manager.Alloc"
}

func UnbilledMEE(m *mee.Engine) {
	m.DropPage(0) // want "attribution/unbilled: UnbilledMEE calls mee.Engine.DropPage"
}

func UnbilledFree(e *epc.Manager) error {
	return e.Free(3) // want "attribution/unbilled: UnbilledFree calls epc.Manager.Free"
}

// Billed sets the hint before driving the hierarchy: clean.
func Billed(r *trace.Recorder, e *epc.Manager) {
	r.SetBillHint(1)
	e.Alloc(1)
}

// BilledViaEID threads the core's BillEID: clean.
func BilledViaEID(c *Core, r *trace.Recorder, m *mee.Engine) error {
	r.ChargeTo(c.BillEID(), 0, 1, 10)
	return m.WriteLine(0, nil)
}
