// Fixture: malformed allow directives are findings themselves, under the
// non-suppressible rule nescheck/bad-directive. The wants use the block
// spelling because the line's trailing line-comment IS the directive under
// test.
package core

func Unjustified() {
	/* want "nescheck/bad-directive: .*needs a reason" */ //nescheck:allow determinism
	_ = 0
}

func BadFamily() {
	/* want "nescheck/bad-directive: .*not a rule family name" */ //nescheck:allow Determinism! because
	_ = 0
}

func Empty() {
	/* want "nescheck/bad-directive: .*needs a rule family and a reason" */ //nescheck:allow
	_ = 0
}
