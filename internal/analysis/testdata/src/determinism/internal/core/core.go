// Fixture: internal/core is replay-critical, so wall clock, global RNG, and
// order-sensitive map iteration are all findings here.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func Tick() int64 {
	return time.Now().UnixNano() // want "determinism/wallclock: time.Now"
}

func Nap() {
	time.Sleep(time.Millisecond) // want "determinism/wallclock: time.Sleep"
}

func Jitter() int {
	return rand.Intn(8) // want "determinism/rand-global: rand.Intn"
}

func Dump(m map[int]string) {
	for k, v := range m { // want "determinism/map-order: .*fmt.Println output"
		fmt.Println(k, v)
	}
}

func Keys(m map[int]string) []int {
	var out []int
	for k := range m { // want "determinism/map-order: .*append to a slice declared outside the loop"
		out = append(out, k)
	}
	return out
}

func Join(m map[int]string) string {
	s := ""
	for _, v := range m { // want "determinism/map-order: .*string concatenation"
		s += v
	}
	return s
}

// SortedKeys is the sanctioned collect-then-sort idiom: clean.
func SortedKeys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Count only folds order-insensitive state: clean.
func Count(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Bench shows the escape hatch: an allowed, reasoned wall-clock read.
func Bench() int64 {
	//nescheck:allow determinism fixture exercises the reasoned escape hatch
	return time.Now().UnixNano()
}
