// Fixture: internal/simtest hosts the exhaustive schedule explorer, whose
// enumeration order must be replay-stable — a counterexample found in CI has
// to reproduce locally from the same scope. Global RNG and order-dependent
// map iteration in the search loop are findings; the seeded-generator and
// collect-then-sort idioms the real package uses are clean.
package simtest

import (
	"math/rand"
	"sort"
)

type op struct{ kind, core uint8 }

// pickOp is the violation the rule exists for: a search step whose choice no
// seed controls. Two runs of the "same" exploration would walk different
// trees.
func pickOp(alphabet []op) op {
	return alphabet[rand.Intn(len(alphabet))] // want "determinism/rand-global: rand.Intn"
}

// visitOrder leaks memoization-map iteration order into the visit sequence.
func visitOrder(memo map[uint64]int) []uint64 {
	var order []uint64
	for fp := range memo { // want "determinism/map-order: .*append to a slice declared outside the loop"
		order = append(order, fp)
	}
	return order
}

// sortedStates is the sanctioned spelling: collect, then sort. Clean.
func sortedStates(memo map[uint64]int) []uint64 {
	var out []uint64
	for fp := range memo {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// seededWalk derives every decision from a caller-provided source. Clean.
func seededWalk(rng *rand.Rand, alphabet []op) op {
	return alphabet[rng.Intn(len(alphabet))]
}

// countStates folds order-insensitive state only. Clean.
func countStates(memo map[uint64]int) int {
	n := 0
	for range memo {
		n++
	}
	return n
}
