// Fixture: internal/datasets is a workload generator — constructing an RNG
// here (instead of accepting a caller-seeded one) is a finding, on top of the
// module-wide global-source ban.
package datasets

import "math/rand"

func Generate(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // want "determinism/rand-inject: rand"
	return rng.Float64()
}

func Shuffle(n int) {
	rand.Shuffle(n, func(i, j int) {}) // want "determinism/rand-global: rand.Shuffle"
}

// Good accepts the injected RNG: clean.
func Good(rng *rand.Rand) float64 {
	return rng.Float64()
}
