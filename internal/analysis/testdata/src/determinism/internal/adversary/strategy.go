// Fixture: internal/adversary executes malicious-kernel attack strategies as
// deterministic (seed, strategy, ops) programs — `repro -adversary` must
// replay a campaign row byte-identically, so an attack decision drawn from
// the global RNG (or from map order) would make a found breach
// unreproducible. Seed-derived splitmix streams drawn in a fixed order are
// the sanctioned idiom.
package adversary

import "math/rand"

type action struct{ site string }

// fireMaybe is the violation the rule exists for: whether the attack lands
// depends on RNG state no program seed controls — the transcript of two
// "identical" runs would diverge.
func fireMaybe(budget int) bool {
	return budget > 0 && rand.Intn(4) == 0 // want "determinism/rand-global: rand.Intn"
}

// transcript leaks capture-map iteration order into the replay artifact:
// same program, differently-ordered transcript each run.
func transcript(captures map[uint64][]byte) [][]byte {
	var lines [][]byte
	for _, blob := range captures { // want "determinism/map-order: .*append to a slice declared outside the loop"
		lines = append(lines, blob)
	}
	return lines
}

// seededStream is the sanctioned spelling: every draw comes from a stream
// the Program seeds, in a fixed call order. Clean.
type seededStream struct{ state uint64 }

func (s *seededStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

func plan(seed uint64) []action {
	s := &seededStream{state: seed}
	out := []action{{site: "pager"}}
	if s.next()%2 == 0 {
		out = append(out, action{site: "sched"})
	}
	return out
}
