// Fixture: the global lock graph. Self-cycles through a callee, a two-lock
// cycle whose halves live in different functions, permitted RLock
// reentrancy, and locks held across a domain transition (directly and
// through a helper).
package svc

import (
	"sync"

	"fix/internal/sdk"
)

type A struct{ Mu sync.Mutex }
type B struct{ Mu sync.Mutex }

type Pair struct {
	A *A
	B *B
}

func (p *Pair) lockB() {
	p.B.Mu.Lock()
	p.B.Mu.Unlock()
}

func (p *Pair) lockA() {
	p.A.Mu.Lock()
	p.A.Mu.Unlock()
}

// AB holds A while a callee acquires B...
func (p *Pair) AB() {
	p.A.Mu.Lock()
	p.lockB() // want "lockgraph/cycle: lock-acquisition cycle: svc.A.Mu -> svc.B.Mu .* -> svc.A.Mu"
	p.A.Mu.Unlock()
}

// ...and BA holds B while a callee acquires A: together a cycle, reported
// once at the first edge's witness.
func (p *Pair) BA() {
	p.B.Mu.Lock()
	p.lockA()
	p.B.Mu.Unlock()
}

type S struct{ mu sync.Mutex }

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Outer re-acquires its own lock through inner: self-deadlock.
func (s *S) Outer() {
	s.mu.Lock()
	s.inner() // want "lockgraph/self-cycle: svc.S.mu acquired in svc.S.Outer via svc.S.inner while already held"
	s.mu.Unlock()
}

type RW struct{ mu sync.RWMutex }

func (r *RW) peek() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return 0
}

// Read holds the read lock while peek re-acquires it shared: permitted
// reentrancy, clean.
func (r *RW) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peek()
}

type Svc struct {
	mu sync.Mutex
	e  *sdk.Enclave
}

// BadCall crosses the boundary with the lock held.
func (s *Svc) BadCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.e.ECall("x", nil) // want "lockgraph/held-transition: svc.Svc.mu held across domain transition sdk.Enclave.ECall"
}

// GoodCall releases first. Clean.
func (s *Svc) GoodCall() {
	s.mu.Lock()
	s.mu.Unlock()
	_, _ = s.e.ECall("x", nil)
}

func (s *Svc) call2() {
	_, _ = s.e.ECall("y", nil)
}

// BadNested reaches the transition through a helper.
func (s *Svc) BadNested() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.call2() // want "lockgraph/held-transition: svc.Svc.mu held across domain transition sdk.Enclave.ECall \(via svc.Svc.call2 -> sdk.Enclave.ECall\)"
}
