// Fixture stand-in for the sdk: Enclave.ECall is a configured domain
// transition.
package sdk

type Enclave struct{}

func (e *Enclave) ECall(name string, args []byte) ([]byte, error) { return nil, nil }
