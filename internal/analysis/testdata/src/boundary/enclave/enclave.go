// Fixture: functions with the TrustedFunc shape (*sdk.Env, []byte) ([]byte,
// error) run inside an enclave; host-observable writes from them leak.
package enclave

import (
	"fmt"
	"log"
	"os"

	"fix/internal/sdk"
	"fix/internal/trace"
)

func LeakPrint(env *sdk.Env, args []byte) ([]byte, error) {
	fmt.Printf("secret=%x\n", args) // want "boundary/untrusted-sink: .*fmt.Printf"
	return nil, nil
}

func LeakLog(env *sdk.Env, args []byte) ([]byte, error) {
	log.Println(args) // want "boundary/untrusted-sink: .*log.Println"
	return args, nil
}

func LeakBuiltin(env *sdk.Env, args []byte) ([]byte, error) {
	println(len(args)) // want "boundary/untrusted-sink: .*builtin println"
	return nil, nil
}

func LeakStdout(env *sdk.Env, args []byte) ([]byte, error) {
	os.Stdout.Write(args) // want "boundary/untrusted-sink: .*os.Stdout"
	return nil, nil
}

func LeakTrace(rec *trace.Recorder) func(env *sdk.Env, args []byte) ([]byte, error) {
	// The trusted code here is the literal, not the factory.
	return func(env *sdk.Env, args []byte) ([]byte, error) {
		rec.Emit("secret", uint64(len(args))) // want "boundary/untrusted-sink: .*trace.Recorder.Emit"
		return nil, nil
	}
}

// Sealed exports through the AEAD helper: clean.
func Sealed(env *sdk.Env, args []byte) ([]byte, error) {
	fmt.Printf("sealed=%x\n", env.Seal(args))
	return env.EncryptFor(1, args), nil
}

// Host does not have the trusted shape: printing is fine on the host side.
func Host(args []byte) {
	fmt.Println(args)
}
