// Fixture stand-in for internal/trace: the event stream is host-readable
// telemetry, so trusted code writing to it is a boundary finding.
package trace

type Recorder struct{}

func (r *Recorder) Emit(kind string, detail uint64) {}
