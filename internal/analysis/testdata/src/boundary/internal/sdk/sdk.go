// Fixture stand-in for the real internal/sdk: just enough surface for the
// boundary rule's type-identity matching (the TrustedFunc parameter shape and
// a sealing helper).
package sdk

type Env struct {
	scratch []byte
}

// Seal is the sanctioned exfiltration path: AEAD in the real SDK.
func (e *Env) Seal(b []byte) []byte { return b }

// EncryptFor mirrors the report-key helpers.
func (e *Env) EncryptFor(peer uint64, b []byte) []byte { return b }
