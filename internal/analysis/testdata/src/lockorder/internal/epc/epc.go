// Fixture stand-in: the EPCM lock (rank 1, taken under a machine lock).
package epc

import "sync"

type Manager struct {
	Mu sync.RWMutex
}
