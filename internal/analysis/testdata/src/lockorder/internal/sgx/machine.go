// Fixture stand-in: the machine-level lock (rank 0, acquired first).
package sgx

import "sync"

type Machine struct {
	Mu sync.Mutex
}
