// Fixture stand-in: the page-table lock (rank 1, taken under a machine lock).
package pt

import "sync"

type Table struct {
	Mu sync.Mutex
}
