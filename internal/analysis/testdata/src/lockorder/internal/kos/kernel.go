// Fixture stand-in: the kernel lock is machine-class too (rank 0).
package kos

import "sync"

type Kernel struct {
	Mu sync.Mutex
}
