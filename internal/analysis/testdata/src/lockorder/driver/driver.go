// Fixture: acquisitions of a machine-class lock while a page-class lock is
// held invert the hierarchy and are findings; the documented order and
// sequential (non-overlapping) use are clean.
package driver

import (
	"fix/internal/epc"
	"fix/internal/kos"
	"fix/internal/pt"
	"fix/internal/sgx"
)

// Documented order: machine before page. Clean.
func Good(m *sgx.Machine, t *pt.Table) {
	m.Mu.Lock()
	t.Mu.Lock()
	t.Mu.Unlock()
	m.Mu.Unlock()
}

func Inverted(m *sgx.Machine, t *pt.Table) {
	t.Mu.Lock()
	m.Mu.Lock() // want "lockorder/inversion: .*machine-level sgx.Machine lock while holding the pt.Table lock"
	m.Mu.Unlock()
	t.Mu.Unlock()
}

// Deferred releases hold to function exit, so the machine acquisition below
// still happens under the page lock.
func DeferredRelease(m *sgx.Machine, t *pt.Table) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	m.Mu.Lock() // want "lockorder/inversion: .*sgx.Machine lock while holding the pt.Table lock"
	defer m.Mu.Unlock()
}

// Sequential use never overlaps: clean.
func SequentialOK(m *sgx.Machine, t *pt.Table) {
	t.Mu.Lock()
	t.Mu.Unlock()
	m.Mu.Lock()
	m.Mu.Unlock()
}

// Read locks participate in the hierarchy like write locks.
func ReadInversion(k *kos.Kernel, e *epc.Manager) {
	e.Mu.RLock()
	k.Mu.Lock() // want "lockorder/inversion: .*kos.Kernel lock while holding the epc.Manager lock"
	k.Mu.Unlock()
	e.Mu.RUnlock()
}
