// Fixture: secrets born from the source catalog must not reach sinks except
// through a Seal/Encrypt/MAC sanitizer. Flows are tracked across calls, so
// both the helper that returns a secret and the helper that forwards its
// parameter to a sink participate in findings reported at the completing
// call site.
package driver

import (
	"fmt"

	"fix/internal/kos"
	"fix/internal/sdk"
)

// Direct: source straight into a sink in one function.
func Direct(e *sdk.Env) {
	key := e.GetKey(1)
	_, _ = e.OCall("kx", key) // want "secretflow/leak: an enclave sealing/report key.* reaches ocall arguments leaving the enclave"
}

// Sealed: the sanitizer launders the key. Clean.
func Sealed(e *sdk.Env) {
	key := e.GetKey(1)
	_, _ = e.OCall("kx", sdk.SealBlob(key))
}

// fetch returns a secret: callers inherit the taint via the return summary.
func fetch(e *sdk.Env) []byte {
	return e.GetKey(2)
}

// Indirect: the secret is born in fetch, leaks here.
func Indirect(e *sdk.Env, s *kos.IPCService) {
	k := fetch(e)
	_ = s.Send("chan", k) // want "secretflow/leak: an enclave sealing/report key, born in driver.fetch .* reaches the kernel-visible IPC channel"
}

// spill forwards its parameter to a sink: callers passing secrets leak.
func spill(e *sdk.Env, b []byte) {
	_, _ = e.OCall("n", b)
}

// ViaHelper: the flow completes through spill's param→sink summary.
func ViaHelper(e *sdk.Env) {
	spill(e, e.GetKey(3)) // want "secretflow/leak: an enclave sealing/report key.* reaches ocall arguments leaving the enclave"
}

// Print: the fmt family is a stdout sink.
func Print(e *sdk.Env) {
	fmt.Println(e.GetKey(4)) // want "secretflow/leak: an enclave sealing/report key.* reaches the process stdout"
}

// ErrOnly: the error result of a source call carries no taint. Clean.
func ErrOnly(e *sdk.Env, blob []byte) error {
	_, err := e.Unseal(blob)
	return err
}

// Plaintext: the data result of Unseal does.
func Plaintext(e *sdk.Env, blob []byte) {
	pt, err := e.Unseal(blob)
	if err != nil {
		return
	}
	fmt.Println(string(pt)) // want "secretflow/leak: unsealed blob plaintext.* reaches the process stdout"
}
