// Fixture stand-in for the trusted runtime: sources (GetKey, Unseal), a sink
// (OCall), and a sanitizer (SealBlob) with the same shapes as the real sdk.
package sdk

type Env struct{}

// GetKey is a configured secret source.
func (e *Env) GetKey(sel uint32) []byte { return make([]byte, 16) }

// Unseal is a configured secret source (the plaintext result, not the error).
func (e *Env) Unseal(blob []byte) ([]byte, error) { return append([]byte(nil), blob...), nil }

// OCall is a configured sink: args (index 1) leave the trusted boundary.
func (e *Env) OCall(name string, args []byte) ([]byte, error) { return nil, nil }

// SealBlob is a sanitizer by name: its result is safe to publish.
func SealBlob(b []byte) []byte { return append([]byte("sealed:"), b...) }
