// Fixture stand-in for the kernel IPC service: Send's payload (index 1) is a
// configured kernel-visible sink.
package kos

type IPCService struct{}

func (s *IPCService) Send(channel string, payload []byte) error { return nil }
