// Fixture: mixed atomic/plain accesses, typed-atomic copies, and
// //nescheck:guard violations — including the interprocedural case where a
// lock-free helper is fine under one caller and a finding under another.
package ring

import (
	"sync"
	"sync/atomic"
)

type R struct {
	head uint64
	tail atomic.Uint32
}

// Bump establishes head as an atomically-accessed field module-wide.
func (r *R) Bump() {
	atomic.AddUint64(&r.head, 1)
}

// Racy: a plain read of a field accessed atomically elsewhere.
func (r *R) Racy() uint64 {
	return r.head // want "atomicsafety/mixed: field ring.R.head is accessed atomically elsewhere .* but read plainly here"
}

// Copy: a typed sync/atomic value copied out reads the word non-atomically.
func (r *R) Copy() uint32 {
	cp := r.tail // want "atomicsafety/atomic-copy: field ring.R.tail is a sync/atomic value but is copied out plainly here"
	return cp.Load()
}

// Good: method-receiver use is the only legal access. Clean.
func (r *R) Good() uint32 {
	return r.tail.Load()
}

type G struct {
	mu sync.RWMutex
	n  int //nescheck:guard mu
}

// Bad: an exported entry reading the guarded field lock-free.
func (g *G) Bad() int {
	return g.n // want "atomicsafety/guard: guarded field ring.G.n is read without ring.G.mu held"
}

// Get: a shared hold satisfies a read. Clean.
func (g *G) Get() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// WriteShared: a write needs the exclusive lock; RLock is not enough.
func (g *G) WriteShared(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.n = v // want "atomicsafety/guard: guarded field ring.G.n is written without ring.G.mu held exclusively"
}

type H struct {
	mu sync.Mutex
	n  int //nescheck:guard mu
}

// set is the lock-free helper: the obligation falls on its callers.
func (h *H) set(v int) {
	h.n = v // want "atomicsafety/guard: guarded field ring.H.n is written without ring.H.mu held exclusively — entered lock-free from ring.H.SetUnlocked"
}

// SetLocked discharges the obligation. Clean — and keeps set itself clean.
func (h *H) SetLocked(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.set(v)
}

// SetUnlocked is the lock-free entry path that makes set a finding (reported
// at the access in set, citing this entry).
func (h *H) SetUnlocked(v int) {
	h.set(v)
}

type Malformed struct {
	x int /* want "nescheck/bad-directive: nescheck:guard needs the sibling mutex field name" */ //nescheck:guard
}
