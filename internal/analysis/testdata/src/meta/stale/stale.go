// Meta fixture: this want annotation is stale — the line is clean — and the
// runner must fail on it rather than silently pass (see TestMetaHarness).
package stale

func Clean() int {
	return 1 // want "determinism/wallclock: time.Now"
}
