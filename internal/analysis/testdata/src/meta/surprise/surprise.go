// Meta fixture: a real violation with no want annotation — the runner must
// report it as unexpected rather than silently pass (see TestMetaHarness).
package surprise

import "time"

func Sneaky() int64 {
	return time.Now().UnixNano()
}
