// Meta fixture: an interprocedural (program-pass) violation with no want
// annotation, plus a stale want on a clean line — the runner must flag both
// for RunProgram analyzers exactly as it does for per-package ones.
package progsurprise

import "sync"

type T struct{ mu sync.Mutex }

func (t *T) inner() {
	t.mu.Lock()
	defer t.mu.Unlock()
}

// Outer self-deadlocks through inner; the missing want must be reported.
func (t *T) Outer() {
	t.mu.Lock()
	t.inner()
	t.mu.Unlock()
}

// Fine is clean; the want below is stale and must be reported.
func (t *T) Fine() {
	t.mu.Lock() // want "lockgraph/self-cycle: never happens"
	t.mu.Unlock()
}
