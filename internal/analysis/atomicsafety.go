package analysis

// atomicsafety: three checks over the module-wide field-access index.
//
//   - mixed:       a field accessed through sync/atomic function-style calls
//                  anywhere in the module must never be read or written
//                  plainly anywhere else — a single plain access defeats the
//                  whole protocol (the racing reader sees torn/stale state).
//   - atomic-copy: a field of a typed sync/atomic value (atomic.Uint32 ring
//                  slot states, Machine.assocEpoch) may only be used as a
//                  method-call receiver or have its address taken; copying
//                  the value out reads the underlying word non-atomically.
//   - guard:       a field annotated //nescheck:guard mu may only be touched
//                  with mu in the held-set (exclusively, for writes). The
//                  requirement propagates interprocedurally: a helper that
//                  touches the field lock-free is fine as long as every call
//                  chain reaching it holds the lock; the finding is reported
//                  at the outermost function that can be entered without it
//                  (an exported function, or one with no in-module callers).
import (
	"go/token"
	"go/types"
	"sort"
)

// AtomicSafety is the interprocedural atomic/guarded field-access rule.
var AtomicSafety = &Analyzer{
	Name: "atomicsafety",
	Doc:  "fields accessed via sync/atomic are never touched plainly; //nescheck:guard fields only with their lock held",
	RunProgram: func(pass *ProgramPass) {
		p := pass.Prog
		// mixed: plain accesses to function-style atomic fields.
		for _, fv := range sortedFields(fieldSet(p.atomicFields)) {
			use := p.atomicFields[fv]
			for _, acc := range p.fieldAccesses[fv] {
				if acc.inCompositeLit {
					continue
				}
				verb := "read"
				if acc.write {
					verb = "written"
				}
				if acc.addr {
					verb = "address-taken"
				}
				pass.Reportf(acc.pos, "atomicsafety/mixed",
					"field %s is accessed atomically elsewhere (%s in %s at %s) but %s plainly here",
					fieldDisplay(fv), use.op, use.fn.name, pass.Posn(use.pos), verb)
			}
		}
		// atomic-copy: non-method, non-address uses of typed atomic fields.
		for _, fv := range typedAtomicFields(p) {
			for _, acc := range p.fieldAccesses[fv] {
				if acc.inCompositeLit || acc.addr {
					continue
				}
				cite := ""
				if use := p.typedAtomicUses[fv]; use != nil && use.fn != acc.fn {
					cite = "; " + use.fn.name + " " + use.op + "s it atomically at " + pass.Posn(use.pos)
				}
				verb := "copied out"
				if acc.write {
					verb = "overwritten"
				}
				pass.Reportf(acc.pos, "atomicsafety/atomic-copy",
					"field %s is a sync/atomic value but is %s plainly here — use its Load/Store methods%s",
					fieldDisplay(fv), verb, cite)
			}
		}
		// guard: an unprotected access is reported ONCE, at the access
		// itself, when at least one call-graph root (an exported function,
		// or one with no in-module callers) can reach it without the lock.
		// A lock-free helper whose every entry path holds the guard stays
		// silent — that is the interprocedural point of the rule.
		callers := p.callersOf()
		reported := make(map[token.Pos]bool)
		for _, n := range p.nodes {
			if n.guardNeeds == nil {
				continue
			}
			if !n.obj.Exported() && len(callers[n]) > 0 {
				continue // every entry into n is in-module; callers own the obligation
			}
			for _, guard := range sortedFields(guardSet(n.guardNeeds)) {
				// Walk the witness chain from this root down to the seed —
				// the function that actually touches the field.
				seed, need := n, n.guardNeeds[guard]
				seen := map[*funcNode]bool{n: true}
				for need.next != nil && !seen[need.next] {
					m := need.next
					seen[m] = true
					mNeed := m.guardNeeds[guard]
					if mNeed == nil {
						break
					}
					seed, need = m, mNeed
				}
				if reported[need.pos] {
					continue // another root reaches the same access
				}
				reported[need.pos] = true
				verb, lockVerb := "read", "held"
				if need.write {
					verb, lockVerb = "written", "held exclusively"
				}
				entry := ""
				if seed != n {
					entry = " — entered lock-free from " + n.name + guardTrace(pass, n, guard)
				}
				pass.Reportf(need.pos, "atomicsafety/guard",
					"guarded field %s is %s without %s %s%s (declared //nescheck:guard %s at %s)",
					fieldDisplay(need.field), verb, lockDisplay(guard), lockVerb, entry,
					guard.Name(), pass.Posn(p.guardDirectivePos[need.field]))
			}
		}
	},
}

// guardTrace reconstructs the call chain from a root's guard requirement down
// to the function that actually touches the field.
func guardTrace(pass *ProgramPass, n *funcNode, guard *types.Var) string {
	need := n.guardNeeds[guard]
	out := ""
	seen := map[*funcNode]bool{n: true}
	for need.next != nil && !seen[need.next] {
		m := need.next
		seen[m] = true
		mNeed := m.guardNeeds[guard]
		if mNeed == nil {
			break
		}
		out += " -> " + m.name + " (" + pass.Posn(mNeed.pos) + ")"
		need = mNeed
	}
	if out != "" {
		out = " via" + out
	}
	return out
}

// typedAtomicFields lists every typed sync/atomic module field that appears
// in the access index (uses or plain accesses), deterministically.
func typedAtomicFields(p *Program) []*types.Var {
	set := make(map[*types.Var]bool)
	for fv := range p.typedAtomicUses {
		set[fv] = true
	}
	for fv := range p.fieldAccesses {
		if isTypedAtomicField(fv) {
			set[fv] = true
		}
	}
	return sortedFields(set)
}

func fieldSet(m map[*types.Var]*atomicUse) map[*types.Var]bool {
	set := make(map[*types.Var]bool, len(m))
	for fv := range m {
		set[fv] = true
	}
	return set
}

func guardSet(m map[*types.Var]*guardNeed) map[*types.Var]bool {
	set := make(map[*types.Var]bool, len(m))
	for fv := range m {
		set[fv] = true
	}
	return set
}

func sortedFields(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for fv := range set {
		out = append(out, fv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
