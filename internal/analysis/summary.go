package analysis

// The secret-flow summary engine. Taint is tracked per function over
// types.Object values, flow-insensitively (a variable tainted anywhere in a
// body is tainted everywhere in it), with two kinds of taint:
//
//   - parameter taint: the value derives from one of the function's
//     parameters (a bitmask — used to build the param→return and param→sink
//     entries of the function's summary, composed at call sites);
//   - source taint: the value derives from a secret born somewhere in the
//     module (a *sourceChain pinning the birth site), used to report
//     complete source→sink flows.
//
// Summaries compose bottom-up over the call-graph SCCs: when f calls g with
// a source-tainted argument and g's summary says that parameter reaches a
// sink, the flow completes in f; when the argument is merely
// parameter-tainted, the sink obligation is re-exported as part of f's own
// summary for f's callers to resolve. Calls that cannot be resolved
// statically (interface methods, function values) and calls into the
// standard library conservatively propagate every argument's taint to every
// result — except through sanitizers (Seal/Encrypt/MAC helpers and the
// crypto constructors), whose results are clean by definition.
import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// sourceChain pins the birth of one secret value.
type sourceChain struct {
	desc string    // what the secret is, from the source table
	pos  token.Pos // where it is born
	fn   *funcNode // the function it is born in
}

// flowStep is one call-graph hop of a flow trace.
type flowStep struct {
	fn  *funcNode // the callee entered
	pos token.Pos // the position inside fn where the flow continues
}

// sinkChain is one "this parameter reaches a sink" summary entry.
type sinkChain struct {
	desc     string     // what the sink is
	pos      token.Pos  // in the summarized function: the sink or the call leading to it
	via      []flowStep // hops below the summarized function, ending at the sink
	finalPos token.Pos  // the sink call itself, wherever it lives
}

// flowFinding is one complete secret→sink flow, anchored in the function
// where source-tainted data enters the sink path.
type flowFinding struct {
	pos    token.Pos // anchor: the sink call or the call whose callee sinks
	source *sourceChain
	desc   string     // sink description
	via    []flowStep // hops from the anchor down to the sink
}

// taintSummary is the secret-flow summary of one function.
type taintSummary struct {
	// paramToRet[i] reports that parameter i (receiver first, when present)
	// may flow to a return value.
	paramToRet []bool
	// paramSinks[i] holds the sinks parameter i may reach, keyed for dedup.
	paramSinks []map[string]*sinkChain
	// retSources are secrets born in this function (or below) that flow to a
	// return value.
	retSources []*sourceChain
	// localFlows are complete source→sink flows detected in this function.
	localFlows []*flowFinding
}

// --- Source / sink / sanitizer tables --------------------------------------

// taintSource describes one way a secret is born. Field sources taint every
// read of the struct field; func sources taint every call result.
type taintSource struct {
	pkgSuffix string
	typeName  string // receiver (funcs) or owning struct (fields); "" = package-level func
	name      string
	field     bool
	desc      string
}

// secretSources is the catalog of secret births: the platform root secret and
// everything key-derivation produces from it (seal keys, the REPORT MAC key),
// plus sealed-blob plaintext, which re-enters the trusted world through
// Unseal and must not leave it again unsealed.
var secretSources = []taintSource{
	{"internal/sgx", "Machine", "platformSecret", true, "the platform root secret"},
	{"internal/measure", "", "DeriveKey", false, "a key derived from the platform secret"},
	{"internal/sgx", "Machine", "EGetKey", false, "an EGETKEY-derived key"},
	{"internal/sgx", "Machine", "reportKey", false, "the REPORT MAC key"},
	{"internal/sdk", "Env", "GetKey", false, "an enclave sealing/report key"},
	{"internal/sdk", "Env", "Unseal", false, "unsealed blob plaintext"},
}

// taintSink describes one untrusted destination. argFrom is the index of the
// first sensitive argument (earlier arguments are addresses, channel names,
// and other non-payload operands). name "*" matches every method of the type.
type taintSink struct {
	pkgSuffix string
	typeName  string
	name      string
	argFrom   int
	desc      string
}

// secretSinks is the catalog of kernel- or host-visible destinations.
var secretSinks = []taintSink{
	{"internal/kos", "IPCService", "Send", 1, "the kernel-visible IPC channel"},
	{"internal/phys", "Memory", "Write", 1, "raw untrusted DRAM"},
	{"internal/switchless", "Engine", "Submit", 3, "the host-shared switchless ring"},
	{"internal/sdk", "Env", "OCall", 1, "ocall arguments leaving the enclave"},
	{"internal/sdk", "Env", "OCallAsync", 1, "ocall arguments leaving the enclave"},
	{"internal/trace", "Recorder", "*", 0, "the host-readable trace recorder"},
}

// isSanitizer reports whether a call to obj launders its arguments: the
// result of sealing, encrypting, or MACing a secret is safe to publish.
// "Unseal" is checked first — it contains "Seal" but reverses it.
func isSanitizer(obj types.Object) bool {
	name := obj.Name()
	if strings.Contains(name, "Unseal") {
		return false
	}
	if strings.Contains(name, "Seal") || strings.Contains(name, "Encrypt") || strings.Contains(name, "MAC") {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + name {
	case "crypto/aes.NewCipher", "crypto/cipher.NewGCM", "crypto/hmac.New",
		"crypto/sha256.New", "crypto/sha256.Sum256", "crypto/hmac.Equal",
		"crypto/subtle.ConstantTimeCompare":
		return true
	}
	return false
}

// sourceForField returns the source entry for a struct field, or nil.
func sourceForField(v *types.Var) *taintSource {
	for i := range secretSources {
		s := &secretSources[i]
		if !s.field || v.Name() != s.name || v.Pkg() == nil {
			continue
		}
		if pathMatches(v.Pkg().Path(), s.pkgSuffix) && fieldOwner(v) == s.typeName {
			return s
		}
	}
	return nil
}

// sourceForFunc returns the source entry for a called function, or nil.
func sourceForFunc(obj types.Object) *taintSource {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	for i := range secretSources {
		s := &secretSources[i]
		if s.field || fn.Name() != s.name || !pathMatches(fn.Pkg().Path(), s.pkgSuffix) {
			continue
		}
		recv := methodRecvNamed(fn)
		if s.typeName == "" {
			if recv == nil {
				return s
			}
			continue
		}
		if recv != nil && recv.Obj().Name() == s.typeName {
			return s
		}
	}
	return nil
}

// classifySink matches a call against the sink catalog (module sinks, the
// fmt/log/print families, and writes to os.Stdout/Stderr) and returns the
// sink description plus the sensitive argument expressions.
func classifySink(info *types.Info, call *ast.CallExpr) (string, []ast.Expr, bool) {
	// Builtin print/println.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
			return "the process stdout", call.Args, true
		}
	}
	obj := calleeObject(info, call)
	if obj == nil {
		return "", nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", nil, false
	}
	recv := methodRecvNamed(fn)
	for i := range secretSinks {
		s := &secretSinks[i]
		if !pathMatches(fn.Pkg().Path(), s.pkgSuffix) {
			continue
		}
		if s.name != "*" && fn.Name() != s.name {
			continue
		}
		if recv == nil || recv.Obj().Name() != s.typeName {
			continue
		}
		if s.argFrom >= len(call.Args) {
			continue
		}
		return s.desc, call.Args[s.argFrom:], true
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if recv == nil && strings.HasPrefix(fn.Name(), "Print") {
			return "the process stdout", call.Args, true
		}
		if recv == nil && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 1 {
			return "an untrusted writer", call.Args[1:], true
		}
	case "log":
		if recv == nil {
			return "the process log", call.Args, true
		}
	case "os":
		// Methods on os.Stdout / os.Stderr.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && recv != nil {
			if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
					(v.Name() == "Stdout" || v.Name() == "Stderr") {
					return "the process stdout", call.Args, true
				}
			}
		}
	}
	return "", nil, false
}

// --- The per-function evaluator --------------------------------------------

// taintVal is the taint of one value: a parameter bitmask plus the secret
// births it derives from (kept sorted by birth position for determinism).
type taintVal struct {
	params  uint64
	sources []*sourceChain
}

func (v taintVal) isTainted() bool { return v.params != 0 || len(v.sources) > 0 }

func mergeVal(dst *taintVal, src taintVal) bool {
	changed := false
	if src.params&^dst.params != 0 {
		dst.params |= src.params
		changed = true
	}
	for _, s := range src.sources {
		if !containsChain(dst.sources, s) {
			dst.sources = append(dst.sources, s)
			changed = true
		}
	}
	if changed {
		sort.Slice(dst.sources, func(i, j int) bool { return dst.sources[i].pos < dst.sources[j].pos })
	}
	return changed
}

func containsChain(cs []*sourceChain, c *sourceChain) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// taintEval evaluates one function until its environment and summary are
// stable. The same evaluator instance is reused across SCC iterations so
// facts only accumulate.
type taintEval struct {
	p       *Program
	n       *funcNode
	env     map[types.Object]*taintVal
	params  []*types.Var // receiver first, then parameters
	births  map[token.Pos]*sourceChain
	flowKey map[string]bool
	changed bool // any env or summary growth in the last pass
}

func newTaintEval(p *Program, n *funcNode) *taintEval {
	e := &taintEval{
		p:       p,
		n:       n,
		env:     make(map[types.Object]*taintVal),
		births:  make(map[token.Pos]*sourceChain),
		flowKey: make(map[string]bool),
	}
	sig, _ := n.obj.Type().(*types.Signature)
	if sig != nil {
		if sig.Recv() != nil {
			e.params = append(e.params, sig.Recv())
		}
		for i := 0; i < sig.Params().Len(); i++ {
			e.params = append(e.params, sig.Params().At(i))
		}
	}
	n.taint = &taintSummary{
		paramToRet: make([]bool, len(e.params)),
		paramSinks: make([]map[string]*sinkChain, len(e.params)),
	}
	for i, pv := range e.params {
		n.taint.paramSinks[i] = make(map[string]*sinkChain)
		if i < 64 {
			e.env[pv] = &taintVal{params: 1 << i}
		}
	}
	return e
}

// pass walks the body once, propagating taint; returns whether anything grew.
func (e *taintEval) pass() bool {
	e.changed = false
	ast.Inspect(e.n.decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			e.assign(s.Lhs, s.Rhs)
		case *ast.ValueSpec:
			if len(s.Values) > 0 {
				lhs := make([]ast.Expr, len(s.Names))
				for i, id := range s.Names {
					lhs[i] = id
				}
				e.assign(lhs, s.Values)
			}
		case *ast.RangeStmt:
			v := e.eval(s.X)
			if s.Key != nil {
				e.taintLHS(s.Key, v)
			}
			if s.Value != nil {
				e.taintLHS(s.Value, v)
			}
		case *ast.ReturnStmt:
			e.returnStmt(s)
		case *ast.CallExpr:
			e.eval(s)
		}
		return true
	})
	return e.changed
}

func (e *taintEval) assign(lhs, rhs []ast.Expr) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			e.taintLHS(lhs[i], e.eval(rhs[i]))
		}
		return
	}
	// Tuple assignment: every target gets the call's combined taint.
	var all taintVal
	for _, r := range rhs {
		mergeVal(&all, e.eval(r))
	}
	for _, l := range lhs {
		e.taintLHS(l, all)
	}
}

// taintLHS merges taint into an assignment target: the named object for
// identifiers, the root object for selector/index targets (writing a tainted
// value into x.f or x[i] taints x as a whole).
func (e *taintEval) taintLHS(lhs ast.Expr, v taintVal) {
	if !v.isTainted() {
		return
	}
	if obj := rootObject(e.n.pkg.Info, lhs); obj != nil {
		// Error values never carry taint: `pt, err := Unseal(...)` must not
		// mark err secret just because the call's other result is — errors
		// idiomatically wrap metadata, not key material, and the error
		// channel otherwise smuggles false taint through every return.
		if isErrorType(obj.Type()) {
			return
		}
		e.setObj(obj, v)
	}
}

func (e *taintEval) setObj(obj types.Object, v taintVal) {
	cur := e.env[obj]
	if cur == nil {
		cur = &taintVal{}
		e.env[obj] = cur
	}
	if mergeVal(cur, v) {
		e.changed = true
	}
}

// rootObject resolves the variable at the base of an lvalue expression.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			// Stop at package qualifiers (os.Stdout): Sel is the object.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[x.Sel]
				}
			}
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.TypeAssertExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

func (e *taintEval) returnStmt(s *ast.ReturnStmt) {
	sig, _ := e.n.obj.Type().(*types.Signature)
	var vals []taintVal
	if len(s.Results) > 0 {
		for _, r := range s.Results {
			vals = append(vals, e.eval(r))
		}
	} else if sig != nil {
		// Naked return: named results carry the value.
		for i := 0; i < sig.Results().Len(); i++ {
			if rv := sig.Results().At(i); rv.Name() != "" {
				if cur := e.env[rv]; cur != nil {
					vals = append(vals, *cur)
				}
			}
		}
	}
	for _, v := range vals {
		for i := range e.params {
			if i < 64 && v.params&(1<<i) != 0 && !e.n.taint.paramToRet[i] {
				e.n.taint.paramToRet[i] = true
				e.changed = true
			}
		}
		for _, src := range v.sources {
			if !containsChain(e.n.taint.retSources, src) {
				e.n.taint.retSources = append(e.n.taint.retSources, src)
				e.changed = true
			}
		}
	}
}

// eval computes an expression's taint, recording sink hits and summary
// entries for calls along the way.
func (e *taintEval) eval(expr ast.Expr) taintVal {
	info := e.n.pkg.Info
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			if v := e.env[obj]; v != nil {
				return *v
			}
		}
		return taintVal{}
	case *ast.SelectorExpr:
		if fv := moduleFieldUse(info, x); fv != nil {
			if src := sourceForField(fv); src != nil {
				return taintVal{sources: []*sourceChain{e.birth(x.Pos(), src.desc)}}
			}
		}
		// Field reads do NOT inherit the base value's taint. Writing a secret
		// into x.f taints x (so sending the whole struct is caught), but
		// reading a *different* field back out of x must not re-derive the
		// secret — otherwise one tainted field turns every x.EID/x.Rec read
		// into a false flow and the receiver cascade swallows the module.
		return taintVal{}
	case *ast.CallExpr:
		return e.evalCall(x)
	case *ast.BinaryExpr:
		v := e.eval(x.X)
		mergeVal(&v, e.eval(x.Y))
		return v
	case *ast.UnaryExpr:
		return e.eval(x.X)
	case *ast.StarExpr:
		return e.eval(x.X)
	case *ast.IndexExpr:
		return e.eval(x.X)
	case *ast.SliceExpr:
		return e.eval(x.X)
	case *ast.TypeAssertExpr:
		return e.eval(x.X)
	case *ast.CompositeLit:
		var v taintVal
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				mergeVal(&v, e.eval(kv.Value))
			} else {
				mergeVal(&v, e.eval(elt))
			}
		}
		return v
	}
	return taintVal{}
}

// birth interns the sourceChain for a secret born at pos, so repeated
// evaluation passes reuse one identity.
func (e *taintEval) birth(pos token.Pos, desc string) *sourceChain {
	if c, ok := e.births[pos]; ok {
		return c
	}
	c := &sourceChain{desc: desc, pos: pos, fn: e.n}
	e.births[pos] = c
	return c
}

func (e *taintEval) evalCall(call *ast.CallExpr) taintVal {
	info := e.n.pkg.Info

	// Type conversion: []byte(x), string(x) — taint passes through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var v taintVal
		for _, a := range call.Args {
			mergeVal(&v, e.eval(a))
		}
		return v
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				var v taintVal
				for _, a := range call.Args {
					mergeVal(&v, e.eval(a))
				}
				return v
			case "copy":
				if len(call.Args) == 2 {
					if v := e.eval(call.Args[1]); v.isTainted() {
						e.taintLHS(call.Args[0], v)
					}
				}
				return taintVal{}
			case "len", "cap", "make", "new", "min", "max", "delete", "clear", "panic", "recover":
				for _, a := range call.Args {
					e.eval(a)
				}
				return taintVal{}
			}
		}
	}

	// Sinks are terminal: record hits, do not compose further.
	if desc, sensitive, ok := classifySink(info, call); ok {
		for _, arg := range sensitive {
			v := e.eval(arg)
			e.recordSinkHit(v, desc, call.Pos(), call.Pos(), nil)
		}
		// Non-sensitive leading args still need evaluation for nested calls.
		for _, arg := range call.Args[:len(call.Args)-len(sensitive)] {
			e.eval(arg)
		}
		return taintVal{}
	}

	// Gather argument taints: receiver first for method calls on values.
	obj := calleeObject(info, call)
	var argVals []taintVal
	if obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					argVals = append(argVals, e.eval(sel.X))
				} else {
					argVals = append(argVals, taintVal{})
				}
			}
		}
	}
	for _, a := range call.Args {
		argVals = append(argVals, e.eval(a))
	}

	// Sanitizers launder everything.
	if obj != nil && isSanitizer(obj) {
		return taintVal{}
	}

	// Configured source functions birth a fresh secret per call site (their
	// bodies, if in-module, are not additionally consulted — that would
	// double-report the same flow).
	if obj != nil {
		if src := sourceForFunc(obj); src != nil {
			return taintVal{sources: []*sourceChain{e.birth(call.Pos(), src.desc)}}
		}
	}

	// In-module callee with a computed summary: compose.
	if fn, ok := obj.(*types.Func); ok {
		if callee := e.p.fns[fn]; callee != nil && callee.taint != nil {
			return e.compose(call, callee, argVals)
		}
	}

	// Unresolved, dynamic, or stdlib call: conservatively propagate.
	var v taintVal
	for _, a := range argVals {
		mergeVal(&v, a)
	}
	return v
}

// compose applies a callee's summary at a call site.
func (e *taintEval) compose(call *ast.CallExpr, callee *funcNode, argVals []taintVal) taintVal {
	sum := callee.taint
	np := len(sum.paramSinks)
	var out taintVal
	for i, v := range argVals {
		pi := i
		if pi >= np {
			pi = np - 1 // variadic overflow maps to the last parameter
		}
		if pi < 0 {
			break
		}
		// Param→sink obligations at this argument.
		if v.isTainted() {
			for _, key := range sortedChainKeys(sum.paramSinks[pi]) {
				c := sum.paramSinks[pi][key]
				via := append([]flowStep{{fn: callee, pos: c.pos}}, c.via...)
				e.recordSinkHit(v, c.desc, call.Pos(), c.finalPos, via)
			}
		}
		// Param→return flow.
		if pi < len(sum.paramToRet) && sum.paramToRet[pi] {
			mergeVal(&out, v)
		}
	}
	// Secrets born inside the callee that flow out of its returns.
	for _, src := range sum.retSources {
		mergeVal(&out, taintVal{sources: []*sourceChain{src}})
	}
	return out
}

// recordSinkHit registers a tainted value reaching a sink: complete flows for
// source taint, summary entries for parameter taint.
func (e *taintEval) recordSinkHit(v taintVal, desc string, pos, finalPos token.Pos, via []flowStep) {
	for _, src := range v.sources {
		key := fmt.Sprintf("%d->%d", src.pos, finalPos)
		if e.flowKey[key] {
			continue
		}
		e.flowKey[key] = true
		e.n.taint.localFlows = append(e.n.taint.localFlows, &flowFinding{
			pos: pos, source: src, desc: desc, via: via,
		})
		e.changed = true
	}
	for i := range e.params {
		if i >= 64 || v.params&(1<<i) == 0 {
			continue
		}
		key := fmt.Sprintf("%s@%d", desc, finalPos)
		if _, ok := e.n.taint.paramSinks[i][key]; ok {
			continue
		}
		e.n.taint.paramSinks[i][key] = &sinkChain{desc: desc, pos: pos, via: via, finalPos: finalPos}
		e.changed = true
	}
}

func sortedChainKeys(m map[string]*sinkChain) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// moduleFieldUse resolves a selector to a module struct field (mirrors
// moduleField but without needing the Program receiver).
func moduleFieldUse(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// buildTaintSummaries runs the per-function evaluators to a fixed point,
// bottom-up over the call-graph SCCs.
func buildTaintSummaries(p *Program) {
	evals := make(map[*funcNode]*taintEval, len(p.nodes))
	for _, scc := range p.sccs() {
		for _, n := range scc {
			evals[n] = newTaintEval(p, n)
		}
		for {
			changed := false
			for _, n := range scc {
				if evals[n].pass() {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}
