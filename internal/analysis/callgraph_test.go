package analysis

// Unit tests for the interprocedural layer: the call-graph summaries (lock
// acquisition, transition reachability, taint) computed over the fixture
// trees, and the branch-termination scanner.
import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// buildFixtureProgram loads a fixture tree and builds its Program.
func buildFixtureProgram(t *testing.T, rule string) *Program {
	t.Helper()
	abs := mustAbs(t, filepath.Join("testdata", "src", rule))
	pkgs, err := LoadTree(abs, fixtureModule)
	if err != nil {
		t.Fatal(err)
	}
	return BuildProgram(pkgs)
}

// nodeByName finds a funcNode by its display name ("svc.Pair.lockB").
func nodeByName(t *testing.T, p *Program, name string) *funcNode {
	t.Helper()
	for _, n := range p.nodes {
		if n.name == name {
			return n
		}
	}
	t.Fatalf("no function %q in program (%d nodes)", name, len(p.nodes))
	return nil
}

func TestLockSummaries(t *testing.T) {
	p := buildFixtureProgram(t, "lockgraph")

	// Direct acquisition propagates into mayAcquire.
	inner := nodeByName(t, p, "svc.S.inner")
	if len(inner.mayAcquire) != 1 {
		t.Errorf("svc.S.inner mayAcquire = %d locks, want 1", len(inner.mayAcquire))
	}
	// ...and transitively into callers.
	outer := nodeByName(t, p, "svc.S.Outer")
	if len(outer.mayAcquire) != 1 {
		t.Errorf("svc.S.Outer mayAcquire = %d locks, want 1 (via inner)", len(outer.mayAcquire))
	}

	// RLock acquisition is marked shared.
	peek := nodeByName(t, p, "svc.RW.peek")
	for lock, w := range peek.mayAcquire {
		if !w.shared {
			t.Errorf("svc.RW.peek acquisition of %s not marked shared", lockDisplay(lock))
		}
	}

	// Transition reachability: call2 reaches ECall, lockB does not.
	call2 := nodeByName(t, p, "svc.Svc.call2")
	if call2.trans == nil || call2.trans.name != "sdk.Enclave.ECall" {
		t.Errorf("svc.Svc.call2 trans = %+v, want sdk.Enclave.ECall", call2.trans)
	}
	if lockB := nodeByName(t, p, "svc.Pair.lockB"); lockB.trans != nil {
		t.Errorf("svc.Pair.lockB unexpectedly reaches a transition: %+v", lockB.trans)
	}

	// The dump names the cycle edges and the transition op.
	var buf bytes.Buffer
	p.DumpGraph(&buf)
	out := buf.String()
	for _, want := range []string{
		"svc.A.Mu -> svc.B.Mu",
		"svc.B.Mu -> svc.A.Mu",
		"transition op: sdk.Enclave.ECall",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DumpGraph output missing %q:\n%s", want, out)
		}
	}
}

func TestTaintSummaries(t *testing.T) {
	p := buildFixtureProgram(t, "secretflow")

	// fetch returns a secret: its return summary carries the source.
	fetch := nodeByName(t, p, "driver.fetch")
	if fetch.taint == nil || len(fetch.taint.retSources) == 0 {
		t.Fatalf("driver.fetch has no return sources: %+v", fetch.taint)
	}
	if desc := fetch.taint.retSources[0].desc; desc != "an enclave sealing/report key" {
		t.Errorf("driver.fetch return source desc = %q", desc)
	}

	// spill forwards param 1 (after the receiver-less func's Env param 0) to
	// a sink.
	spill := nodeByName(t, p, "driver.spill")
	if spill.taint == nil {
		t.Fatal("driver.spill has no taint summary")
	}
	found := false
	for i, sinks := range spill.taint.paramSinks {
		if len(sinks) > 0 && i == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("driver.spill param 1 has no sink summary: %+v", spill.taint.paramSinks)
	}

	// Sealed launders the key: no local flows.
	sealed := nodeByName(t, p, "driver.Sealed")
	if sealed.taint != nil && len(sealed.taint.localFlows) != 0 {
		t.Errorf("driver.Sealed has unexpected flows: %+v", sealed.taint.localFlows)
	}
	// Direct leaks: exactly one local flow.
	direct := nodeByName(t, p, "driver.Direct")
	if direct.taint == nil || len(direct.taint.localFlows) != 1 {
		t.Errorf("driver.Direct flows = %+v, want exactly 1", direct.taint)
	}
}

func TestGuardSummaries(t *testing.T) {
	p := buildFixtureProgram(t, "atomicsafety")

	// The lock-free helper seeds a guard need...
	set := nodeByName(t, p, "ring.H.set")
	if len(set.guardNeeds) != 1 {
		t.Fatalf("ring.H.set guardNeeds = %d, want 1", len(set.guardNeeds))
	}
	// ...the holding caller discharges it, the lock-free one inherits it.
	locked := nodeByName(t, p, "ring.H.SetLocked")
	if len(locked.guardNeeds) != 0 {
		t.Errorf("ring.H.SetLocked inherited a guard need despite holding the lock: %+v", locked.guardNeeds)
	}
	unlocked := nodeByName(t, p, "ring.H.SetUnlocked")
	if len(unlocked.guardNeeds) != 1 {
		t.Errorf("ring.H.SetUnlocked guardNeeds = %d, want 1", len(unlocked.guardNeeds))
	}
}

func TestTerminates(t *testing.T) {
	cases := []struct {
		body string
		want bool
	}{
		{"return", true},
		{"x := 1; _ = x; return", true},
		{"break", true},
		{"continue", true},
		{"panic(1)", true},
		{"{ return }", true},
		{"x := 1; _ = x", false},
		{"", false},
		{"f()", false},
	}
	for _, c := range cases {
		src := "package p\nfunc f() {\nfor {\n" + c.body + "\n}\n}"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "t.go", src, 0)
		if err != nil {
			t.Fatalf("parsing %q: %v", c.body, err)
		}
		fd := file.Decls[0].(*ast.FuncDecl)
		loop := fd.Body.List[0].(*ast.ForStmt)
		if got := terminates(loop.Body.List); got != c.want {
			t.Errorf("terminates(%q) = %v, want %v", c.body, got, c.want)
		}
	}
}
