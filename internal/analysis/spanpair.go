package analysis

import (
	"go/ast"
	"go/types"
)

// SpanPair guards the causal-tracing invariant behind the PR-6 span layer: a
// span opened with Recorder.BeginSpan must be closed. An unclosed span stays
// on its core's stack forever — every later event on that core is stamped
// with it, the profiler keeps sampling it, and AggregateSpans inflates its
// inclusive cycles — so a single leak quietly corrupts the whole call tree.
//
// The check is intraprocedural over the packages that open spans on hot
// simulator paths (sdk, sgx, core). A BeginSpan result must be bound to a
// variable and that variable must have its End called either deferred
// (covers every exit, including the panic-unwind crash paths) or linearly in
// the same block as the BeginSpan (the straight-line pattern transition.go
// uses). An End reachable only inside a nested block is conditional — some
// path skips it — and discarding the SpanRef outright makes the span
// permanently unclosable.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "every Recorder.BeginSpan result has its End called (deferred, or linearly in the same block)",
	Run:  runSpanPair,
}

// spanPairPkgs are the packages the rule applies to: the layers that open
// spans around transitions, walks, and paging. trace itself (the
// implementation), channel (its helper hands SpanRefs to callers), and tests
// are out of scope.
var spanPairPkgs = []string{"internal/sdk", "internal/sgx", "internal/core", "internal/switchless"}

func runSpanPair(p *Pass) {
	if !pathMatchesAny(p.Pkg.Path, spanPairPkgs) {
		return
	}
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkSpanPair(p, name, body)
		})
	}
}

// spanVar tracks one variable bound to a BeginSpan result.
type spanVar struct {
	pos   ast.Node
	name  string
	block *ast.BlockStmt // block whose statement list directly holds the binding
	// closed: a deferred End, or a linear End in the binding's own block.
	closed bool
	// condEnd: the only End sits in a nested block (if/for/switch arm).
	condEnd bool
}

func checkSpanPair(p *Pass, fname string, body *ast.BlockStmt) {
	vars := map[*types.Var]*spanVar{}

	// Pass 1: find BeginSpan calls and classify how each result is consumed.
	// Walk blocks explicitly so every binding knows its directly enclosing
	// block; nested function literals are visited on their own by funcBodies.
	var walkBlock func(b *ast.BlockStmt)
	var walkStmt func(s ast.Stmt, b *ast.BlockStmt)
	walkBlock = func(b *ast.BlockStmt) {
		for _, s := range b.List {
			walkStmt(s, b)
		}
	}
	walkStmt = func(s ast.Stmt, b *ast.BlockStmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBeginSpanCall(p.Pkg.Info, call) {
					continue
				}
				if i >= len(s.Lhs) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					p.Reportf(call.Pos(), "spanpair/discarded",
						"%s discards the BeginSpan result; the span can never be closed", fname)
					continue
				}
				var obj *types.Var
				if d, ok := p.Pkg.Info.Defs[id].(*types.Var); ok {
					obj = d
				} else if u, ok := p.Pkg.Info.Uses[id].(*types.Var); ok {
					obj = u
				}
				if obj == nil {
					continue
				}
				vars[obj] = &spanVar{pos: call, name: id.Name, block: b}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isBeginSpanCall(p.Pkg.Info, call) {
				p.Reportf(call.Pos(), "spanpair/discarded",
					"%s discards the BeginSpan result; the span can never be closed", fname)
			}
		case *ast.BlockStmt:
			walkBlock(s)
		case *ast.IfStmt:
			walkBlock(s.Body)
			if s.Else != nil {
				walkStmt(s.Else, b)
			}
		case *ast.ForStmt:
			walkBlock(s.Body)
		case *ast.RangeStmt:
			walkBlock(s.Body)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, cs := range cc.Body {
						walkStmt(cs, s.Body)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, cs := range cc.Body {
						walkStmt(cs, s.Body)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, cs := range cc.Body {
						walkStmt(cs, s.Body)
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, b)
		}
	}
	walkBlock(body)
	if len(vars) == 0 {
		return
	}

	// Pass 2: find End calls on the tracked variables. A defer closes the
	// span on every path; a plain call closes it only when it sits in the
	// same block the variable was bound in (straight-line flow).
	endsOf := func(call *ast.CallExpr) *spanVar {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return nil
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj, ok := p.Pkg.Info.Uses[id].(*types.Var); ok {
			return vars[obj]
		}
		return nil
	}
	var endWalk func(b *ast.BlockStmt)
	var endStmt func(s ast.Stmt, b *ast.BlockStmt)
	endWalk = func(b *ast.BlockStmt) {
		for _, s := range b.List {
			endStmt(s, b)
		}
	}
	endStmt = func(s ast.Stmt, b *ast.BlockStmt) {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if sv := endsOf(s.Call); sv != nil {
				sv.closed = true
			}
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				return
			}
			if sv := endsOf(call); sv != nil {
				if b == sv.block {
					sv.closed = true
				} else {
					sv.condEnd = true
				}
			}
		case *ast.BlockStmt:
			endWalk(s)
		case *ast.IfStmt:
			endWalk(s.Body)
			if s.Else != nil {
				endStmt(s.Else, b)
			}
		case *ast.ForStmt:
			endWalk(s.Body)
		case *ast.RangeStmt:
			endWalk(s.Body)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, cs := range cc.Body {
						endStmt(cs, s.Body)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, cs := range cc.Body {
						endStmt(cs, s.Body)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, cs := range cc.Body {
						endStmt(cs, s.Body)
					}
				}
			}
		case *ast.LabeledStmt:
			endStmt(s.Stmt, b)
		}
	}
	endWalk(body)

	for _, sv := range vars {
		switch {
		case sv.closed:
		case sv.condEnd:
			p.Reportf(sv.pos.Pos(), "spanpair/conditional",
				"%s ends span %s only inside a nested block; some path leaks it open (defer %s.End() instead)",
				fname, sv.name, sv.name)
		default:
			p.Reportf(sv.pos.Pos(), "spanpair/unclosed",
				"%s opens span %s but never calls %s.End(); the span leaks open on the core stack",
				fname, sv.name, sv.name)
		}
	}
}

// isBeginSpanCall matches rec.BeginSpan(...) where rec is the trace.Recorder.
func isBeginSpanCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Name() != "BeginSpan" {
		return false
	}
	recv := methodRecvNamed(obj)
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	return recv.Obj().Name() == "Recorder" && pathMatches(recv.Obj().Pkg().Path(), "internal/trace")
}
