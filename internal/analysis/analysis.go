// Package analysis is nescheck: a stdlib-only static-analysis suite that
// enforces the simulator's own invariants at build time. The dynamic
// harnesses (the model-checking oracle, the chaos soak) verify the paper's
// isolation properties at runtime, but they silently rely on preconditions —
// deterministic replay, the trusted/untrusted boundary, lock ordering,
// complete cost attribution, surfaced faults — that nothing else guards. The
// analyzers here pin those preconditions at the source level:
//
//	determinism  — no wall clock, global RNG state, or order-dependent map
//	               iteration in replay-critical packages
//	boundary     — trusted enclave code must not write secrets to untrusted
//	               sinks without sealing
//	lockorder    — machine-level locks are acquired before EPCM/page-table
//	               locks, never the reverse
//	attribution  — calls into the billed memory hierarchy (epc, mee) thread
//	               BillEID/ChargeTo so per-enclave accounting stays complete
//	errcheck     — fault-returning APIs (mee.New, kos allocation, the sdk
//	               ECall family) may not have their errors discarded
//	spanpair     — every Recorder.BeginSpan in the span-opening layers (sdk,
//	               sgx, core) has its End called on all paths
//
// Findings carry a rule ID (family/check) and can be suppressed with an
// explicit, reasoned directive:
//
//	//nescheck:allow <rule-family> <reason...>
//
// placed on the offending line, the line above it, or — before the package
// clause — for the whole file. A directive without a reason is itself a
// finding. The suite is built only on go/parser, go/types and go/importer;
// it loads the whole module from source with no third-party dependencies.
package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string // "family/check", e.g. "determinism/wallclock"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// ruleFamily returns the part of a rule ID before the first '/': the name a
// //nescheck:allow directive suppresses.
func ruleFamily(rule string) string {
	for i := 0; i < len(rule); i++ {
		if rule[i] == '/' {
			return rule[:i]
		}
	}
	return rule
}

// Analyzer is one house rule. Per-package rules set Run; interprocedural
// rules set RunProgram and receive the module-wide call graph and summaries.
// Exactly one of the two must be set.
type Analyzer struct {
	// Name is the rule family ("determinism", "lockorder", ...). Every
	// finding the analyzer reports must use "Name" or "Name/<check>" as its
	// rule ID.
	Name string
	// Doc is the one-line invariant the rule enforces, shown by -rules.
	Doc string
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass)
	// RunProgram inspects the whole module at once, over the interprocedural
	// summaries of a Program.
	RunProgram func(*ProgramPass)
}

// All returns the full rule catalog in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Boundary,
		LockOrder,
		Attribution,
		ErrCheck,
		SpanPair,
		SecretFlow,
		AtomicSafety,
		LockGraph,
	}
}

// Pass is the per-(analyzer, package) context handed to Analyzer.Run.
type Pass struct {
	Pkg *Package

	analyzer *Analyzer
	allow    *allowIndex
	sink     *[]Finding
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	if ruleFamily(rule) != p.analyzer.Name {
		panic(fmt.Sprintf("analysis: analyzer %s reported foreign rule %s", p.analyzer.Name, rule))
	}
	position := p.Pkg.Fset.Position(pos)
	if p.allow.allows(position, ruleFamily(rule)) {
		return
	}
	*p.sink = append(*p.sink, Finding{Pos: position, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// ProgramPass is the module-wide context handed to Analyzer.RunProgram.
type ProgramPass struct {
	Prog *Program

	analyzer *Analyzer
	allow    *allowIndex
	fset     *token.FileSet
	sink     *[]Finding
}

// Reportf records a finding unless an allow directive covers it.
func (p *ProgramPass) Reportf(pos token.Pos, rule, format string, args ...any) {
	if ruleFamily(rule) != p.analyzer.Name {
		panic(fmt.Sprintf("analysis: analyzer %s reported foreign rule %s", p.analyzer.Name, rule))
	}
	position := p.fset.Position(pos)
	if p.allow.allows(position, ruleFamily(rule)) {
		return
	}
	*p.sink = append(*p.sink, Finding{Pos: position, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// Posn renders a position for use inside finding messages (trace steps).
func (p *ProgramPass) Posn(pos token.Pos) string {
	ps := p.fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(ps.Filename), ps.Line)
}

// shortFile trims a filename to its last two path elements — enough to
// identify "sgx/machine.go" without the noise of an absolute module path.
func shortFile(name string) string {
	slash := 0
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			slash++
			if slash == 2 {
				return name[i+1:]
			}
		}
	}
	return name
}

// Options configures Analyze.
type Options struct {
	// ReportStale adds stale //nescheck:allow directives to Result.Stale.
	// Only set it when running the FULL catalog: a partial run cannot tell a
	// stale directive from one whose rule was skipped.
	ReportStale bool
	// Prog, when non-nil, is reused instead of building the call graph from
	// scratch (the loader's memoized program for lint-fast).
	Prog *Program
}

// Result is Analyze's outcome.
type Result struct {
	Findings []Finding
	// Stale holds one "nescheck/stale-allow" finding per directive that
	// suppressed nothing (empty unless Options.ReportStale).
	Stale []Finding
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. Malformed //nescheck:allow directives are
// reported under the non-suppressible rule "nescheck/bad-directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return Analyze(pkgs, analyzers, Options{}).Findings
}

// Analyze runs per-package analyzers package by package, builds the
// interprocedural Program if any analyzer needs it, runs the program-level
// analyzers, and optionally reports stale allow directives.
func Analyze(pkgs []*Package, analyzers []*Analyzer, opts Options) Result {
	var findings []Finding
	merged := newAllowIndex()
	for _, pkg := range pkgs {
		idx, bad := buildAllowIndex(pkg)
		findings = append(findings, bad...)
		merged.absorb(idx)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, analyzer: a, allow: idx, sink: &findings}
			a.Run(pass)
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = opts.Prog
			if prog == nil {
				prog = BuildProgram(pkgs)
			}
			findings = append(findings, prog.badGuards...)
		}
		pass := &ProgramPass{Prog: prog, analyzer: a, allow: merged, fset: prog.fset, sink: &findings}
		a.RunProgram(pass)
	}
	sortFindings(findings)
	res := Result{Findings: findings}
	if opts.ReportStale {
		res.Stale = merged.stale()
		sortFindings(res.Stale)
	}
	return res
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// pathMatches reports whether a package import path is, or ends with, the
// given module-relative suffix. Matching by suffix lets the same rule config
// cover both the real tree ("nestedenclave/internal/mee") and the golden
// fixtures ("fix/internal/mee").
func pathMatches(path, suffix string) bool {
	if path == suffix {
		return true
	}
	if len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix {
		return true
	}
	return false
}

func pathMatchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathMatches(path, s) {
			return true
		}
	}
	return false
}

var rulePattern = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)
