package analysis

// The interprocedural layer. A Program is the module-wide view the v2
// analyzers (secretflow, atomicsafety, lockgraph) share: a call graph over
// every declared function and method, and per-function summaries — locks
// acquired (directly and transitively), lock-ordering edges with the lock
// set held at each acquisition, domain transitions reached, guarded-field
// accesses, and atomic-vs-plain field uses — computed bottom-up over the
// strongly-connected components of the call graph, iterating to a fixed
// point inside each SCC so mutual recursion converges.
//
// Precision model (shared by all three rules):
//
//   - The held-lock set is a source-order linear scan per function body, the
//     same approximation the intraprocedural lockorder rule uses: an acquire
//     inside a conditional counts as held for the rest of the body, and a
//     `defer mu.Unlock()` holds to function exit. This over-approximates.
//   - Function literals are flattened into their enclosing declaration: the
//     closure's lock operations, calls, and field accesses are attributed to
//     the function that syntactically contains it. A literal only invoked
//     later still counts — over-approximate again, in the safe direction.
//   - Dynamic calls (interface methods, function values) produce no edges.
//     This is the one under-approximation; contracts crossing such a call
//     (the Validator/Tracker run-under-the-machine-lock convention) must be
//     pinned by an explicit //nescheck:allow at the callee.
import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the module-wide analysis state, built once per Run when any
// program-level analyzer is in the set.
type Program struct {
	Pkgs []*Package
	// fset is the load's shared file set (positions in messages).
	fset *token.FileSet

	// fns maps every declared function/method with a body to its node.
	fns map[*types.Func]*funcNode
	// nodes is fns in deterministic (position) order.
	nodes []*funcNode
	// modulePkgs is the set of loaded type-checked packages, to tell module
	// objects from stdlib ones.
	modulePkgs map[*types.Package]bool

	// guards maps a struct field to the mutex field (same struct) that a
	// //nescheck:guard directive declares must be held to touch it.
	guards map[*types.Var]*types.Var
	// guardDirectivePos remembers where each guard was declared (messages).
	guardDirectivePos map[*types.Var]token.Pos
	// badGuards are malformed //nescheck:guard directives, reported by Run
	// under nescheck/bad-directive.
	badGuards []Finding

	// atomicFields maps a plain (non sync/atomic-typed) struct field to the
	// first sync/atomic function-style access (&x.f passed to atomic.LoadX
	// etc.) seen anywhere in the module.
	atomicFields map[*types.Var]*atomicUse
	// typedAtomicUses maps a sync/atomic-typed struct field to the first
	// method-style access (x.f.Load() etc.) seen anywhere in the module.
	typedAtomicUses map[*types.Var]*atomicUse

	// fieldAccesses collects every plain access to a module struct field,
	// keyed by field; consulted by atomicsafety once the candidate sets
	// above are known.
	fieldAccesses map[*types.Var][]*fieldAccess
}

// atomicUse is one atomic access to a field, for citation in mixed-access
// findings.
type atomicUse struct {
	fn  *funcNode
	pos token.Pos
	op  string // "atomic.LoadUint32", "Load", ...
}

// fieldAccess is one plain (non-atomic) access to a tracked struct field.
type fieldAccess struct {
	fn    *funcNode
	pos   token.Pos
	write bool
	// addr marks address-taken uses (&x.f) outside a sync/atomic call.
	addr bool
	// inCompositeLit marks struct-literal initialization (Type{f: v}): the
	// value is not shared yet, so guard/atomic rules skip it.
	inCompositeLit bool
	// held is the lock set held at the access (linear-scan approximation).
	held []heldLock
}

// heldLock is one entry of the held set: the lock identity plus whether the
// hold is shared (RLock).
type heldLock struct {
	lock   *types.Var
	shared bool
	pos    token.Pos
}

// callSite is one resolved static call to a module function.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	held   []heldLock
}

// acqWitness explains how a function (transitively) acquires a lock: either
// directly at pos, or through the call at pos into next. shared marks
// RLock-style acquisitions (read side of an RWMutex).
type acqWitness struct {
	pos    token.Pos
	next   *funcNode // nil for a direct acquisition
	shared bool
}

// transWitness explains how a function (transitively) reaches a domain
// transition: name is the transition op, next the callee hop (nil = this
// function is itself the transition op or calls it directly at pos).
type transWitness struct {
	name string
	pos  token.Pos
	next *funcNode
}

// lockEdge is one "acquired B while holding A" observation.
type lockEdge struct {
	from     *types.Var // held
	to       *types.Var // acquired
	fn       *funcNode  // where the acquisition happens
	pos      token.Pos  // acquisition (or call) position
	via      *funcNode  // non-nil when `to` is acquired inside a callee
	shared   bool       // the hold on `from` was a read lock
	deferred bool
}

// funcNode is the per-function vertex of the call graph.
type funcNode struct {
	obj  *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	name string // display name, e.g. "sgx.Machine.EEnter"

	calls []*callSite

	// Local facts from the single source-order scan:
	directAcquires map[*types.Var]*acqWitness
	localEdges     []lockEdge
	// transitionOp is non-empty when this function IS a configured domain
	// transition (sdk ECall family, switchless ring submit, the sgx
	// transition instructions).
	transitionOp string

	// Fixed-point summaries:
	mayAcquire map[*types.Var]*acqWitness
	trans      *transWitness

	// taint is the secretflow summary, computed by summary.go.
	taint *taintSummary

	// guardNeeds maps a guard lock to the unprotected-access witness that
	// requires callers to hold it (computed by atomicsafety's fixpoint).
	guardNeeds map[*types.Var]*guardNeed
}

// guardNeed records why a function requires a lock from its callers.
type guardNeed struct {
	field *types.Var // the guarded field ultimately accessed
	pos   token.Pos  // the access (or call) in THIS function
	write bool
	next  *funcNode // non-nil when the access is inside a callee
}

// transitionOps configures which functions count as domain transitions for
// the lockgraph held-across-transition rule: the host↔enclave and
// outer↔inner crossing points, plus the switchless ring submit (the
// transition's lock-free replacement — blocking on it with a lock held
// stalls the lock until a host worker serves the ring).
var transitionOps = []struct {
	pkgSuffix string
	typeName  string // "" for package-level functions
	funcName  string
}{
	{"internal/sdk", "Enclave", "ECall"},
	{"internal/sdk", "Enclave", "ECallWithin"},
	{"internal/sdk", "Enclave", "ECallBatch"},
	{"internal/sdk", "Env", "OCall"},
	{"internal/sdk", "Env", "OCallAsync"},
	{"internal/sdk", "Env", "NECall"},
	{"internal/sdk", "Env", "NECallBatch"},
	{"internal/sdk", "Env", "NOCall"},
	{"internal/switchless", "Engine", "Submit"},
	{"internal/sgx", "Machine", "EEnter"},
	{"internal/sgx", "Machine", "EExit"},
	{"internal/sgx", "Machine", "EResume"},
	{"internal/sgx", "Machine", "AEX"},
	{"internal/sgx", "Machine", "EmergencyExit"},
	{"internal/core", "Extension", "NEENTER"},
	{"internal/core", "Extension", "NEEXIT"},
}

// guardDirective is the field annotation grammar:
//
//	//nescheck:guard <mutex-field>
//
// on a struct field's line (or doc comment) declares that the named sibling
// mutex must be held to read the field, and held exclusively to write it.
const guardDirective = "nescheck:guard"

// BuildProgram constructs the module-wide call graph and local facts, then
// runs the bottom-up summary fixed points. The package list must come from
// one LoadTree/LoadModule call (object identity is shared across packages).
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:              pkgs,
		fns:               make(map[*types.Func]*funcNode),
		modulePkgs:        make(map[*types.Package]bool),
		guards:            make(map[*types.Var]*types.Var),
		guardDirectivePos: make(map[*types.Var]token.Pos),
		atomicFields:      make(map[*types.Var]*atomicUse),
		typedAtomicUses:   make(map[*types.Var]*atomicUse),
		fieldAccesses:     make(map[*types.Var][]*fieldAccess),
	}
	if len(pkgs) > 0 {
		p.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		p.modulePkgs[pkg.Types] = true
	}
	for _, pkg := range pkgs {
		p.collectGuards(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{
					obj:            obj,
					pkg:            pkg,
					decl:           fd,
					name:           displayName(obj),
					directAcquires: make(map[*types.Var]*acqWitness),
				}
				n.transitionOp = classifyTransition(obj)
				p.fns[obj] = n
				p.nodes = append(p.nodes, n)
			}
		}
	}
	sort.Slice(p.nodes, func(i, j int) bool { return p.nodes[i].obj.Pos() < p.nodes[j].obj.Pos() })
	for _, n := range p.nodes {
		p.scanFunc(n)
	}
	p.summarizeLocks()
	p.summarizeGuards()
	buildTaintSummaries(p)
	return p
}

// displayName renders "pkg.Func" or "pkg.Recv.Method" (pointers unwrapped).
func displayName(obj *types.Func) string {
	pkg := "?"
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	if recv := methodRecvNamed(obj); recv != nil {
		return pkg + "." + recv.Obj().Name() + "." + obj.Name()
	}
	return pkg + "." + obj.Name()
}

func classifyTransition(obj *types.Func) string {
	if obj.Pkg() == nil {
		return ""
	}
	recv := methodRecvNamed(obj)
	for _, t := range transitionOps {
		if !pathMatches(obj.Pkg().Path(), t.pkgSuffix) || obj.Name() != t.funcName {
			continue
		}
		if t.typeName == "" {
			if recv == nil {
				return displayName(obj)
			}
			continue
		}
		if recv != nil && recv.Obj().Name() == t.typeName {
			return displayName(obj)
		}
	}
	return ""
}

// collectGuards parses //nescheck:guard directives off struct field
// declarations.
func (p *Program) collectGuards(pkg *Package) {
	bad := func(pos token.Pos, format string, args ...any) {
		p.badGuards = append(p.badGuards, Finding{
			Pos:  pkg.Fset.Position(pos),
			Rule: "nescheck/bad-directive",
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutexName, pos, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				if mutexName == "" {
					bad(pos, "nescheck:guard needs the sibling mutex field name")
					continue
				}
				if len(field.Names) == 0 {
					bad(pos, "nescheck:guard cannot annotate an embedded field")
					continue
				}
				mutex := findSiblingMutex(pkg.Info, st, mutexName)
				if mutex == nil {
					bad(pos, "nescheck:guard names %q, which is not a sync.Mutex/RWMutex field of this struct", mutexName)
					continue
				}
				for _, name := range field.Names {
					fv, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					p.guards[fv] = mutex
					p.guardDirectivePos[fv] = pos
				}
			}
			return true
		})
	}
}

// guardAnnotation extracts the //nescheck:guard payload from a field's doc
// or line comment.
func guardAnnotation(field *ast.Field) (mutex string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, "//"+guardDirective)
			if !found {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", c.Pos(), true
			}
			return fields[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func findSiblingMutex(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			if ok && isSyncMutexType(v.Type()) {
				return v
			}
			return nil
		}
	}
	return nil
}

func isSyncMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// lockDisplay renders a lock identity for messages: "sgx.Machine.mu".
func lockDisplay(v *types.Var) string {
	pkg := "?"
	if v.Pkg() != nil {
		pkg = v.Pkg().Name()
	}
	if owner := fieldOwner(v); owner != "" {
		return pkg + "." + owner + "." + v.Name()
	}
	return pkg + "." + v.Name()
}

// fieldDisplay renders a struct field for messages: "switchless.slot.state".
func fieldDisplay(v *types.Var) string { return lockDisplay(v) }

// fieldOwners caches field → owning-struct-name resolution.
var fieldOwnerCache = map[*types.Var]string{}

// fieldOwner finds the named type whose struct declares v, by scanning the
// declaring package's named types. Returns "" for non-fields.
func fieldOwner(v *types.Var) string {
	if !v.IsField() || v.Pkg() == nil {
		return ""
	}
	if s, ok := fieldOwnerCache[v]; ok {
		return s
	}
	name := ""
	scope := v.Pkg().Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				name = obj.Name()
				break
			}
		}
		if name != "" {
			break
		}
	}
	if name == "" {
		// Unnamed struct type (rare): fall back to the field name alone.
		name = ""
	}
	fieldOwnerCache[v] = name
	return name
}

// --- The single source-order scan -----------------------------------------

var atomicFuncPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

func isAtomicFuncName(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// scanFunc walks one function body in source order, maintaining the held-lock
// set, and records lock ops, call sites, atomic uses, and field accesses.
func (p *Program) scanFunc(n *funcNode) {
	info := n.pkg.Info
	var held []heldLock

	// writes marks selector nodes appearing as assignment targets.
	writes := map[ast.Node]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(s.X)] = true
		}
		return true
	})

	// atomicArgs marks the &x.f operand of sync/atomic function-style calls
	// and the x.f receiver of typed-atomic method calls, so the generic
	// field-access visitor skips them.
	atomicArgs := map[ast.Node]bool{}
	// immediateLits marks function literals invoked where they stand.
	immediateLits := map[*ast.FuncLit]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				immediateLits[fl] = true
			}
		}
		return true
	})
	// compositeKeys marks struct-literal field keys.
	compositeKeys := map[ast.Node]bool{}

	var walk func(node ast.Node, deferred bool) bool
	visit := func(node ast.Node, deferred bool) bool {
		switch e := node.(type) {
		case *ast.DeferStmt:
			// Scan the deferred call (and a deferred closure's body) with the
			// deferred flag: lock releases inside hold to function exit.
			if fl, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(x ast.Node) bool { return walk(x, true) })
			} else {
				ast.Inspect(e.Call, func(x ast.Node) bool { return walk(x, true) })
			}
			return false
		case *ast.GoStmt:
			// A spawned goroutine does not inherit the spawner's held locks:
			// scan its call (and closure body) with an empty held set.
			saved := held
			held = nil
			ast.Inspect(e.Call, func(x ast.Node) bool { return walk(x, false) })
			held = saved
			return false
		case *ast.FuncLit:
			// A literal that is not invoked on the spot is a stored callback:
			// it runs later, NOT under the enclosing held set, and the locks
			// it takes (with their deferred releases) are scoped to one
			// invocation of the callback — they must not leak into the
			// enclosing scan as held-forever.
			if immediateLits[e] {
				return true // func(){...}() runs inline, inherit everything
			}
			saved := held
			held = nil
			ast.Inspect(e.Body, func(x ast.Node) bool { return walk(x, false) })
			held = saved
			return false
		case *ast.IfStmt:
			// Flow-sensitivity for the early-exit idiom: a branch that
			// terminates (ends in return/break/continue or a panic call) has
			// its lock effects discarded — `if bad { mu.Unlock(); return }`
			// does not release the lock on the fall-through path, and locks
			// taken inside such a branch are not held after it.
			if e.Init != nil {
				ast.Inspect(e.Init, func(x ast.Node) bool { return walk(x, deferred) })
			}
			ast.Inspect(e.Cond, func(x ast.Node) bool { return walk(x, deferred) })
			saved := append([]heldLock(nil), held...)
			ast.Inspect(e.Body, func(x ast.Node) bool { return walk(x, deferred) })
			if terminates(e.Body.List) {
				held = saved
			}
			if e.Else != nil {
				// An else-if recurses into this case; a plain else block gets
				// the same terminating-branch treatment.
				savedElse := append([]heldLock(nil), held...)
				ast.Inspect(e.Else, func(x ast.Node) bool { return walk(x, deferred) })
				if blk, ok := e.Else.(*ast.BlockStmt); ok && terminates(blk.List) {
					held = savedElse
				}
			}
			return false
		case *ast.CaseClause:
			saved := append([]heldLock(nil), held...)
			for _, s := range e.Body {
				ast.Inspect(s, func(x ast.Node) bool { return walk(x, deferred) })
			}
			if terminates(e.Body) {
				held = saved
			}
			return false
		case *ast.CommClause:
			if e.Comm != nil {
				ast.Inspect(e.Comm, func(x ast.Node) bool { return walk(x, deferred) })
			}
			saved := append([]heldLock(nil), held...)
			for _, s := range e.Body {
				ast.Inspect(s, func(x ast.Node) bool { return walk(x, deferred) })
			}
			if terminates(e.Body) {
				held = saved
			}
			return false
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					compositeKeys[ast.Unparen(kv.Key)] = true
				}
			}
		case *ast.CallExpr:
			if lock, op, ok := p.classifyLockOp(info, e); ok {
				p.applyLockOp(n, &held, lock, op, e.Pos(), deferred)
				// Do not rescan a deferred unlock as a plain call.
				return true
			}
			if fv, op, arg, ok := p.atomicFuncAccess(info, e); ok {
				atomicArgs[arg] = true
				if _, seen := p.atomicFields[fv]; !seen {
					p.atomicFields[fv] = &atomicUse{fn: n, pos: e.Pos(), op: "atomic." + op}
				}
				return true
			}
			if fv, op, recv, ok := p.typedAtomicMethod(info, e); ok {
				atomicArgs[recv] = true
				if _, seen := p.typedAtomicUses[fv]; !seen {
					p.typedAtomicUses[fv] = &atomicUse{fn: n, pos: e.Pos(), op: op}
				}
				return true
			}
			if callee := calleeObject(info, e); callee != nil {
				if fn, ok := callee.(*types.Func); ok && p.modulePkgs[fn.Pkg()] {
					n.calls = append(n.calls, &callSite{
						callee: fn,
						pos:    e.Pos(),
						held:   append([]heldLock(nil), held...),
					})
				}
			}
		case *ast.SelectorExpr:
			fv := moduleField(info, e, p.modulePkgs)
			if fv == nil {
				return true
			}
			if atomicArgs[e] || atomicArgs[ast.Unparen(e.X)] {
				return true
			}
			acc := &fieldAccess{
				fn:             n,
				pos:            e.Pos(),
				write:          writes[e],
				inCompositeLit: false,
				held:           append([]heldLock(nil), held...),
			}
			p.fieldAccesses[fv] = append(p.fieldAccesses[fv], acc)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok && !atomicArgs[sel] {
					if fv := moduleField(info, sel, p.modulePkgs); fv != nil {
						// Mark the inner selector's record (just appended when
						// the selector is visited after us — instead, record
						// addr-taken here and let the selector visit skip).
						p.fieldAccesses[fv] = append(p.fieldAccesses[fv], &fieldAccess{
							fn: n, pos: sel.Pos(), addr: true,
							held: append([]heldLock(nil), held...),
						})
						atomicArgs[sel] = true // suppress the duplicate plain record
					}
				}
			}
		case *ast.Ident:
			// Composite-literal keys resolve to field objects too; tag them.
			if compositeKeys[e] {
				if obj, ok := info.Uses[e].(*types.Var); ok && obj.IsField() && p.modulePkgs[obj.Pkg()] {
					p.fieldAccesses[obj] = append(p.fieldAccesses[obj], &fieldAccess{
						fn: n, pos: e.Pos(), write: true, inCompositeLit: true,
						held: append([]heldLock(nil), held...),
					})
				}
			}
		}
		return true
	}
	walk = visit
	ast.Inspect(n.decl.Body, func(node ast.Node) bool { return visit(node, false) })
}

// terminates reports whether a statement list always exits the enclosing
// scope: the last statement is a return, a branch (break/continue/goto), or a
// panic call. Nested blocks recurse; anything else is fall-through.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// applyLockOp updates the held set for one Lock/RLock/Unlock/RUnlock call and
// records direct acquisitions and local lock-order edges.
func (p *Program) applyLockOp(n *funcNode, held *[]heldLock, lock *types.Var, op string, pos token.Pos, deferred bool) {
	switch op {
	case "Lock", "RLock":
		if deferred {
			return // a deferred acquire (pathological) — ignore
		}
		shared := op == "RLock"
		for _, h := range *held {
			n.localEdges = append(n.localEdges, lockEdge{
				from: h.lock, to: lock, fn: n, pos: pos, shared: h.shared,
			})
		}
		if _, ok := n.directAcquires[lock]; !ok {
			n.directAcquires[lock] = &acqWitness{pos: pos, shared: shared}
		}
		*held = append(*held, heldLock{lock: lock, shared: shared, pos: pos})
	case "Unlock", "RUnlock":
		if deferred {
			return // releases at function exit; stays held below
		}
		hs := *held
		for i := len(hs) - 1; i >= 0; i-- {
			if hs[i].lock == lock {
				*held = append(hs[:i], hs[i+1:]...)
				return
			}
		}
	}
}

// classifyLockOp matches `x.f.Lock()` (and RLock/Unlock/RUnlock/TryLock)
// where f is a sync.Mutex/RWMutex field of a module struct, or a
// package-level module mutex.
func (p *Program) classifyLockOp(info *types.Info, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	// The method must come from sync.
	if obj := info.Uses[sel.Sel]; obj != nil {
		recv := methodRecvNamed(obj)
		if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
			return nil, "", false
		}
	} else {
		return nil, "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() && p.modulePkgs[v.Pkg()] {
			return v, op, true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			p.modulePkgs[v.Pkg()] && v.Parent() == v.Pkg().Scope() {
			return v, op, true
		}
	}
	return nil, "", false
}

// atomicFuncAccess matches atomic.LoadUint64(&x.f, ...) and friends, where f
// is a module struct field; returns the field, the op name, and the selector
// node of the &x.f argument.
func (p *Program) atomicFuncAccess(info *types.Info, call *ast.CallExpr) (*types.Var, string, ast.Node, bool) {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, "", nil, false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil, "", nil, false
	}
	if !isAtomicFuncName(obj.Name()) || len(call.Args) == 0 {
		return nil, "", nil, false
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, "", nil, false
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil, false
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() && p.modulePkgs[v.Pkg()] {
		return v, obj.Name(), sel, true
	}
	return nil, "", nil, false
}

// typedAtomicMethod matches x.f.Load() / Store / Add / Swap / CompareAndSwap
// where f is a module struct field of a sync/atomic type; returns the field
// and the receiver selector node.
func (p *Program) typedAtomicMethod(info *types.Info, call *ast.CallExpr) (*types.Var, string, ast.Node, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isAtomicFuncName(sel.Sel.Name) {
		return nil, "", nil, false
	}
	obj := info.Uses[sel.Sel]
	recv := methodRecvNamed(obj)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync/atomic" {
		return nil, "", nil, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil, false
	}
	if v, ok := info.Uses[inner.Sel].(*types.Var); ok && v.IsField() && p.modulePkgs[v.Pkg()] {
		return v, sel.Sel.Name, inner, true
	}
	return nil, "", nil, false
}

// isTypedAtomicField reports whether a field's type is declared in
// sync/atomic (atomic.Uint32, atomic.Pointer[T], ...).
func isTypedAtomicField(v *types.Var) bool {
	n := namedOf(v.Type())
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// moduleField resolves a selector to a module struct field object, or nil.
// Method selectors, package selectors, and stdlib fields return nil.
func moduleField(info *types.Info, sel *ast.SelectorExpr, modulePkgs map[*types.Package]bool) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil || !modulePkgs[v.Pkg()] {
		return nil
	}
	return v
}

// --- SCC condensation and the lock/transition fixed point ------------------

// sccs returns the call graph's strongly connected components in bottom-up
// (callees before callers) order, via Tarjan's algorithm.
func (p *Program) sccs() [][]*funcNode {
	index := make(map[*funcNode]int)
	low := make(map[*funcNode]int)
	onStack := make(map[*funcNode]bool)
	var stack []*funcNode
	var out [][]*funcNode
	next := 0

	var strongconnect func(n *funcNode)
	strongconnect = func(n *funcNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, cs := range n.calls {
			m := p.fns[cs.callee]
			if m == nil {
				continue
			}
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []*funcNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, n := range p.nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out // Tarjan emits SCCs in reverse topological order: callees first
}

// summarizeLocks computes mayAcquire and the transition witness bottom-up.
func (p *Program) summarizeLocks() {
	for _, scc := range p.sccs() {
		for {
			changed := false
			for _, n := range scc {
				if n.mayAcquire == nil {
					n.mayAcquire = make(map[*types.Var]*acqWitness)
					for lock, w := range n.directAcquires {
						n.mayAcquire[lock] = w
					}
					if n.transitionOp != "" {
						n.trans = &transWitness{name: n.transitionOp, pos: n.decl.Pos()}
					}
					changed = true
				}
				for _, cs := range n.calls {
					m := p.fns[cs.callee]
					if m == nil || m.mayAcquire == nil {
						continue
					}
					for lock, w := range m.mayAcquire {
						if _, ok := n.mayAcquire[lock]; !ok {
							n.mayAcquire[lock] = &acqWitness{pos: cs.pos, next: m, shared: w.shared}
							changed = true
						}
					}
					if n.trans == nil {
						if m.transitionOp != "" {
							n.trans = &transWitness{name: m.transitionOp, pos: cs.pos, next: m}
							changed = true
						} else if m.trans != nil {
							n.trans = &transWitness{name: m.trans.name, pos: cs.pos, next: m}
							changed = true
						}
					}
				}
			}
			if !changed {
				break
			}
		}
	}
}

// summarizeGuards propagates "this function must be entered with lock L
// held" requirements up the call graph: a function that touches a guarded
// field without holding the guard locally pushes the requirement to every
// call site that does not hold it either.
func (p *Program) summarizeGuards() {
	if len(p.guards) == 0 {
		return
	}
	// Seed: unprotected direct accesses.
	for fv, guard := range p.guards {
		for _, acc := range p.fieldAccesses[fv] {
			if acc.inCompositeLit {
				continue
			}
			if holdsGuard(acc.held, guard, acc.write) {
				continue
			}
			n := acc.fn
			if n.guardNeeds == nil {
				n.guardNeeds = make(map[*types.Var]*guardNeed)
			}
			if _, ok := n.guardNeeds[guard]; !ok {
				n.guardNeeds[guard] = &guardNeed{field: fv, pos: acc.pos, write: acc.write}
			}
		}
	}
	// Propagate to callers until stable (the graph is small; iterate
	// globally rather than SCC-by-SCC for simplicity).
	for {
		changed := false
		for _, n := range p.nodes {
			for _, cs := range n.calls {
				m := p.fns[cs.callee]
				if m == nil || m.guardNeeds == nil {
					continue
				}
				for guard, need := range m.guardNeeds {
					if holdsGuard(cs.held, guard, need.write) {
						continue
					}
					if n.guardNeeds == nil {
						n.guardNeeds = make(map[*types.Var]*guardNeed)
					}
					if _, ok := n.guardNeeds[guard]; !ok {
						n.guardNeeds[guard] = &guardNeed{field: need.field, pos: cs.pos, write: need.write, next: m}
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// holdsGuard reports whether the held set satisfies a guard requirement:
// writes need the exclusive lock, reads accept a read lock.
func holdsGuard(held []heldLock, guard *types.Var, write bool) bool {
	for _, h := range held {
		if h.lock == guard && (!write || !h.shared) {
			return true
		}
	}
	return false
}

// callersOf returns, for each function, its in-module call sites (computed
// on demand; deterministic order).
func (p *Program) callersOf() map[*funcNode][]*callSite {
	in := make(map[*funcNode][]*callSite)
	for _, n := range p.nodes {
		for _, cs := range n.calls {
			if m := p.fns[cs.callee]; m != nil {
				in[m] = append(in[m], cs)
			}
		}
	}
	return in
}
