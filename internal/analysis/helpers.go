package analysis

import (
	"go/ast"
	"go/types"
)

// calleeObject resolves the function or method object a call invokes, or nil
// for indirect calls (function values, interface methods without a concrete
// receiver type) and type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// stdFuncCall reports whether a call invokes the named package-level
// function of the given (standard library) package path.
func stdFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names map[string]bool) (string, bool) {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // method, not the package-level function
	}
	if !names[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// methodRecvNamed returns the defining named type of a method object's
// receiver (pointers unwrapped), or nil for non-methods.
func methodRecvNamed(obj types.Object) *types.Named {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeIs reports whether t (pointers unwrapped) is the named type with the
// given name declared in a package matching the path suffix.
func typeIs(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}

// lastResultIsError reports whether a call expression's result tuple ends in
// an error (covering both single-error and (T, error) shapes).
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// funcBodies yields every function body in a file together with the
// enclosing declaration's name: declarations, methods, and function
// literals ("func literal").
func funcBodies(f *ast.File, visit func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Type, fd.Body)
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit(name+" (func literal)", fl.Type, fl.Body)
			}
			return true
		})
	}
}

// funcSignatures is funcBodies with the resolved *types.Signature. The
// signature of a declared function lives in Info.Defs (its *ast.FuncType is
// not an expression, so Info.Types does not record it); a literal's lives in
// Info.Types. sig may be nil when type checking could not resolve one.
func funcSignatures(info *types.Info, f *ast.File, visit func(name string, sig *types.Signature, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var sig *types.Signature
		if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
			sig, _ = obj.Type().(*types.Signature)
		}
		visit(fd.Name.Name, sig, fd.Body)
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit(name+" (func literal)", funcLitSig(info, fl), fl.Body)
			}
			return true
		})
	}
}

// funcLitSig resolves a function literal's signature, or nil.
func funcLitSig(info *types.Info, fl *ast.FuncLit) *types.Signature {
	if tv, ok := info.Types[fl]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}
