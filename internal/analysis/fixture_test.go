package analysis

// The golden-fixture harness: each rule has a tiny module tree under
// testdata/src/<rule>/ whose violating lines carry
//
//	// want "<regexp>"
//
// annotations (the regexp must match "rule: message" of a finding on that
// line; one want may cover several findings on its line, e.g. the two
// constructor calls in rand.New(rand.NewSource(...))). The runner enforces
// the correspondence in BOTH directions — a finding without a matching want
// and a want without a matching finding are each a failure — so a fixture
// can never silently stop testing what it claims to (see TestMetaHarness).
import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureModule is the synthetic module path fixture trees are loaded under.
// Rule configs match packages by path suffix, so "fix/internal/sgx" is
// classified exactly like the real "nestedenclave/internal/sgx".
const fixtureModule = "fix"

type wantAnn struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantRE matches `// want "re"` and, for lines whose trailing comment is
// itself under test (the bad-directive fixtures), the block-comment spelling
// `/* want "re" */`.
var wantRE = regexp.MustCompile("/[/*] want \"((?:[^\"\\\\]|\\\\.)*)\"")

// loadWants scans every .go file under root for want annotations.
func loadWants(root string) ([]*wantAnn, error) {
	var wants []*wantAnn
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", p, i+1, m[1], err)
				}
				wants = append(wants, &wantAnn{file: p, line: i + 1, pattern: m[1], re: re})
			}
		}
		return nil
	})
	return wants, err
}

// checkFixture loads the fixture tree at root, runs the analyzers, and
// returns one problem string per mismatch between findings and wants.
func checkFixture(root string, analyzers []*Analyzer) ([]string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := LoadTree(abs, fixtureModule)
	if err != nil {
		return nil, err
	}
	findings := Run(pkgs, analyzers)
	wants, err := loadWants(abs)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, f := range findings {
		text := f.Rule + ": " + f.Msg
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding %s:%d: %s", f.Pos.Filename, f.Pos.Line, text))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("stale want %s:%d: no finding matched %q", w.file, w.line, w.pattern))
		}
	}
	return problems, nil
}

// runFixture asserts a rule's fixture tree and its wants agree exactly.
func runFixture(t *testing.T, rule string, analyzers []*Analyzer) {
	t.Helper()
	problems, err := checkFixture(filepath.Join("testdata", "src", rule), analyzers)
	if err != nil {
		t.Fatalf("fixture %s: %v", rule, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, "determinism", []*Analyzer{Determinism}) }
func TestBoundaryFixture(t *testing.T)    { runFixture(t, "boundary", []*Analyzer{Boundary}) }
func TestLockOrderFixture(t *testing.T)   { runFixture(t, "lockorder", []*Analyzer{LockOrder}) }
func TestAttributionFixture(t *testing.T) { runFixture(t, "attribution", []*Analyzer{Attribution}) }
func TestErrCheckFixture(t *testing.T)    { runFixture(t, "errcheck", []*Analyzer{ErrCheck}) }
func TestSpanPairFixture(t *testing.T)    { runFixture(t, "spanpair", []*Analyzer{SpanPair}) }

func TestSecretFlowFixture(t *testing.T) { runFixture(t, "secretflow", []*Analyzer{SecretFlow}) }
func TestAtomicSafetyFixture(t *testing.T) {
	runFixture(t, "atomicsafety", []*Analyzer{AtomicSafety})
}
func TestLockGraphFixture(t *testing.T) { runFixture(t, "lockgraph", []*Analyzer{LockGraph}) }

// TestMetaHarness proves the fixture runner itself cannot silently pass: the
// meta tree contains a want annotation on a clean line (stale) and a real
// violation with no want (unexpected), and checkFixture must flag both. If
// this test fails, every green fixture test above is meaningless.
func TestMetaHarness(t *testing.T) {
	problems, err := checkFixture(filepath.Join("testdata", "src", "meta"), []*Analyzer{Determinism, LockGraph})
	if err != nil {
		t.Fatal(err)
	}
	for _, wantProblem := range []struct{ prefix, file string }{
		{"stale want ", "stale.go"},
		{"unexpected finding ", "surprise.go"},
		// The same two failure modes for a RunProgram (interprocedural)
		// analyzer: green program-pass fixtures are meaningless otherwise.
		{"stale want ", "progsurprise.go"},
		{"unexpected finding ", "progsurprise.go"},
	} {
		found := false
		for _, p := range problems {
			if strings.HasPrefix(p, wantProblem.prefix) && strings.Contains(p, wantProblem.file) {
				found = true
			}
		}
		if !found {
			t.Errorf("runner did not produce %q for %s; problems: %v",
				wantProblem.prefix, wantProblem.file, problems)
		}
	}
	if len(problems) != 4 {
		t.Errorf("meta fixture should produce exactly 4 problems, got %d: %v", len(problems), problems)
	}
}
