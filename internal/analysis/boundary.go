package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Boundary guards the trusted/untrusted interface. Trusted functions — code
// with the sdk.TrustedFunc shape func(*sdk.Env, []byte) ([]byte, error),
// which only runs inside an enclave via the ECall/NECall/NOCall paths — must
// not write to sinks the untrusted host observes: the console (fmt printing,
// log, the print builtins, os.Stdout/Stderr) or the trace event stream,
// which PR-1 made host-readable telemetry. Data is allowed out through the
// sealing/AEAD helpers (any callee whose name mentions Seal/Encrypt): a
// sealed payload is ciphertext by construction.
var Boundary = &Analyzer{
	Name: "boundary",
	Doc:  "trusted enclave code must not write to untrusted sinks (fmt/log/print, os.Std*, trace events) unless sealed",
	Run:  runBoundary,
}

var fmtSinkFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runBoundary(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcSignatures(p.Pkg.Info, f, func(name string, sig *types.Signature, body *ast.BlockStmt) {
			if !isTrustedSig(sig) {
				return
			}
			checkTrustedBody(p, name, body)
		})
	}
}

// isTrustedSig matches the TrustedFunc shape: exactly
// (*sdk.Env, []byte) ([]byte, error), with Env resolved by type identity so
// renamed imports and wrappers still match.
func isTrustedSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 2 {
		return false
	}
	p0, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok || !typeIs(p0, "internal/sdk", "Env") {
		return false
	}
	if !isByteSlice(sig.Params().At(1).Type()) {
		return false
	}
	return isByteSlice(sig.Results().At(0).Type()) && isErrorType(sig.Results().At(1).Type())
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func checkTrustedBody(p *Pass, name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal is only trusted code if it has the trusted
			// shape itself; funcSignatures visits it separately then.
			// Closures over the Env still execute inside the call, so keep
			// walking non-trusted literals.
			if isTrustedSig(funcLitSig(p.Pkg.Info, n)) {
				return false
			}
		case *ast.CallExpr:
			if sealedArgs(p.Pkg.Info, n) {
				return true
			}
			if sink := untrustedSink(p.Pkg.Info, n); sink != "" {
				p.Reportf(n.Pos(), "boundary/untrusted-sink",
					"trusted function %s writes to untrusted sink %s; seal the payload (AEAD helpers) or move the write to host code", name, sink)
			}
		case *ast.SelectorExpr:
			if pkgMember(p.Pkg.Info, n, "os", "Stdout") || pkgMember(p.Pkg.Info, n, "os", "Stderr") {
				p.Reportf(n.Pos(), "boundary/untrusted-sink",
					"trusted function %s touches os.%s, an untrusted host stream", name, n.Sel.Name)
			}
		}
		return true
	})
}

// untrustedSink classifies a call as a host-observable write, returning a
// description or "".
func untrustedSink(info *types.Info, call *ast.CallExpr) string {
	if name, ok := stdFuncCall(info, call, "fmt", fmtSinkFuncs); ok {
		return "fmt." + name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
			return "builtin " + b.Name()
		}
	}
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Pkg().Path() == "log" {
		return "log." + obj.Name()
	}
	if recv := methodRecvNamed(obj); recv != nil {
		if typeIs(recv, "internal/trace", "Recorder") {
			return "trace.Recorder." + obj.Name() + " (host-readable event stream)"
		}
		if recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "log" {
			return "log.Logger." + obj.Name()
		}
	}
	return ""
}

// sealedArgs reports whether any argument of the call goes through a
// sealing/AEAD helper, the sanctioned way to export data from trusted code.
func sealedArgs(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		sealed := false
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			if obj := calleeObject(info, inner); obj != nil {
				name = obj.Name()
			} else if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok {
				name = sel.Sel.Name
			}
			if strings.Contains(name, "Seal") || strings.Contains(name, "Encrypt") {
				sealed = true
				return false
			}
			return true
		})
		if sealed {
			return true
		}
	}
	return false
}

// pkgMember reports whether sel refers to pkg.name (e.g. os.Stdout).
func pkgMember(info *types.Info, sel *ast.SelectorExpr, pkgPath, name string) bool {
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
