package analysis

import (
	"go/token"
	"strings"
)

// The allow directive grammar is
//
//	//nescheck:allow <rule-family> <reason...>
//
// A directive suppresses findings of that rule family
//   - on its own line (trailing comment),
//   - on the line immediately below (comment-above style), or
//   - in the whole file, when it appears before the package clause.
//
// The reason is mandatory: an annotation that cannot say why it exists is a
// finding itself (rule "nescheck/bad-directive", which no directive can
// suppress).
const allowPrefix = "nescheck:allow"

// allowDirective is one parsed //nescheck:allow, tracking whether it ever
// suppressed a finding so stale directives can be reported (-stale-allows).
type allowDirective struct {
	pos    token.Position
	family string
	used   bool
}

type allowIndex struct {
	// file maps filename -> rule family -> directive allowed file-wide.
	file map[string]map[string]*allowDirective
	// line maps filename -> line -> rule family -> directive at that line.
	line map[string]map[int]map[string]*allowDirective
	// directives lists every directive in parse order (stale reporting).
	directives []*allowDirective
}

func newAllowIndex() *allowIndex {
	return &allowIndex{
		file: make(map[string]map[string]*allowDirective),
		line: make(map[string]map[int]map[string]*allowDirective),
	}
}

// allows reports whether a directive covers the finding and marks every
// covering directive used.
func (ix *allowIndex) allows(pos token.Position, family string) bool {
	ok := false
	if d := ix.file[pos.Filename][family]; d != nil {
		d.used = true
		ok = true
	}
	lines := ix.line[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if d := lines[l][family]; d != nil {
			d.used = true
			ok = true
		}
	}
	return ok
}

// absorb merges another index into ix, sharing directive identities so a use
// recorded through the merged index is visible in stale computation.
func (ix *allowIndex) absorb(other *allowIndex) {
	for file, set := range other.file {
		if ix.file[file] == nil {
			ix.file[file] = make(map[string]*allowDirective)
		}
		for fam, d := range set {
			ix.file[file][fam] = d
		}
	}
	for file, lines := range other.line {
		if ix.line[file] == nil {
			ix.line[file] = make(map[int]map[string]*allowDirective)
		}
		for l, set := range lines {
			if ix.line[file][l] == nil {
				ix.line[file][l] = make(map[string]*allowDirective)
			}
			for fam, d := range set {
				ix.line[file][l][fam] = d
			}
		}
	}
	ix.directives = append(ix.directives, other.directives...)
}

// stale returns one finding per directive that never suppressed anything.
// Only meaningful after the FULL rule catalog has run — a partial run would
// report directives for the rules it skipped.
func (ix *allowIndex) stale() []Finding {
	var out []Finding
	for _, d := range ix.directives {
		if !d.used {
			out = append(out, Finding{
				Pos:  d.pos,
				Rule: "nescheck/stale-allow",
				Msg:  "allow directive for " + d.family + " suppresses no finding; delete it",
			})
		}
	}
	return out
}

// buildAllowIndex scans a package's comments for allow directives, returning
// the suppression index and findings for malformed directives.
func buildAllowIndex(pkg *Package) (*allowIndex, []Finding) {
	ix := newAllowIndex()
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Pos: pkg.Fset.Position(pos), Rule: "nescheck/bad-directive", Msg: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(c.Pos(), "nescheck:allow needs a rule family and a reason")
					continue
				}
				family := fields[0]
				if !rulePattern.MatchString(family) {
					report(c.Pos(), "nescheck:allow rule "+family+" is not a rule family name")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "nescheck:allow "+family+" needs a reason")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{pos: pos, family: family}
				ix.directives = append(ix.directives, d)
				if c.Pos() < f.Package {
					set := ix.file[pos.Filename]
					if set == nil {
						set = make(map[string]*allowDirective)
						ix.file[pos.Filename] = set
					}
					if set[family] == nil {
						set[family] = d
					}
					continue
				}
				lines := ix.line[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*allowDirective)
					ix.line[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]*allowDirective)
					lines[pos.Line] = set
				}
				if set[family] == nil {
					set[family] = d
				}
			}
		}
	}
	return ix, bad
}

// directiveText extracts the payload after "//nescheck:allow", or ok=false
// if the comment is not an allow directive. Like Go compiler directives, no
// space is permitted between "//" and the directive name.
func directiveText(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//"+allowPrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //nescheck:allowfoo
	}
	return strings.TrimSpace(rest), true
}
