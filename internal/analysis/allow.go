package analysis

import (
	"go/token"
	"strings"
)

// The allow directive grammar is
//
//	//nescheck:allow <rule-family> <reason...>
//
// A directive suppresses findings of that rule family
//   - on its own line (trailing comment),
//   - on the line immediately below (comment-above style), or
//   - in the whole file, when it appears before the package clause.
//
// The reason is mandatory: an annotation that cannot say why it exists is a
// finding itself (rule "nescheck/bad-directive", which no directive can
// suppress).
const allowPrefix = "nescheck:allow"

type allowIndex struct {
	// file maps filename -> rule families allowed for the whole file.
	file map[string]map[string]bool
	// line maps filename -> line -> rule families allowed at that line.
	line map[string]map[int]map[string]bool
}

func (ix *allowIndex) allows(pos token.Position, family string) bool {
	if ix.file[pos.Filename][family] {
		return true
	}
	lines := ix.line[pos.Filename]
	return lines[pos.Line][family] || lines[pos.Line-1][family]
}

// buildAllowIndex scans a package's comments for allow directives, returning
// the suppression index and findings for malformed directives.
func buildAllowIndex(pkg *Package) (*allowIndex, []Finding) {
	ix := &allowIndex{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Pos: pkg.Fset.Position(pos), Rule: "nescheck/bad-directive", Msg: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(c.Pos(), "nescheck:allow needs a rule family and a reason")
					continue
				}
				family := fields[0]
				if !rulePattern.MatchString(family) {
					report(c.Pos(), "nescheck:allow rule "+family+" is not a rule family name")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "nescheck:allow "+family+" needs a reason")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if c.Pos() < f.Package {
					set := ix.file[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						ix.file[pos.Filename] = set
					}
					set[family] = true
					continue
				}
				lines := ix.line[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ix.line[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				set[family] = true
			}
		}
	}
	return ix, bad
}

// directiveText extracts the payload after "//nescheck:allow", or ok=false
// if the comment is not an allow directive. Like Go compiler directives, no
// space is permitted between "//" and the directive name.
func directiveText(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//"+allowPrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //nescheck:allowfoo
	}
	return strings.TrimSpace(rest), true
}
