package analysis

// The module-level fault-injection proof: plant two bugs in the REAL tree via
// a load-time file overlay (nothing on disk changes) and require that each
// produces exactly one finding, with a correct cross-function trace. This is
// the end-to-end demonstration that the interprocedural rules guard the
// lock-free hot path: a plain read of a switchless ring slot state word, and
// the host lock held across an ECall reached through a helper.
import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestFaultInjectionProof(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow; run without -short")
	}
	root := mustAbs(t, filepath.Join("..", ".."))
	modPath, err := ModulePathOf(root)
	if err != nil {
		t.Fatal(err)
	}

	overlay := map[string][]byte{
		// Fault 1: a ring slot's state word copied out plainly. The state
		// word mediates the producer/worker hand-over; a plain read is a
		// torn-read race on the lock-free hot path.
		"internal/switchless/zz_injected_fault.go": []byte(`package switchless

func (e *Engine) injectedPeek() uint32 {
	s := e.rings[0].slots[0].state
	return s.Load()
}
`),
		// Fault 2: the host lock held across a domain transition, reached
		// through a helper so the finding needs the call-graph to see it.
		"internal/sdk/zz_injected_fault.go": []byte(`package sdk

func (h *Host) injectedRestore(e *Enclave) {
	_, _ = e.ECall("restore", nil)
}

func (h *Host) injectedHeldCall(e *Enclave) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.injectedRestore(e)
}
`),
	}

	pkgs, err := LoadTreeOverlay(root, modPath, overlay)
	if err != nil {
		t.Fatalf("overlay load: %v", err)
	}
	res := Analyze(pkgs, []*Analyzer{AtomicSafety, LockGraph}, Options{})

	byFamily := map[string][]Finding{}
	for _, f := range res.Findings {
		byFamily[ruleFamily(f.Rule)] = append(byFamily[ruleFamily(f.Rule)], f)
	}

	cases := []struct {
		family string
		file   string
		msgRE  string
	}{
		{
			family: "atomicsafety",
			file:   "internal/switchless/zz_injected_fault.go",
			// The cite must point at the real module's atomic use of the
			// same field — the cross-function half of the trace.
			msgRE: `slot\.state is a sync/atomic value but is copied out plainly here.*; switchless\.Engine\..* it atomically at switchless/`,
		},
		{
			family: "lockgraph",
			file:   "internal/sdk/zz_injected_fault.go",
			msgRE:  `sdk\.Host\.mu held across domain transition sdk\.Enclave\.ECall \(via sdk\.Host\.injectedRestore -> sdk\.Enclave\.ECall\)`,
		},
	}
	for _, c := range cases {
		fs := byFamily[c.family]
		if len(fs) != 1 {
			t.Errorf("%s: want exactly 1 finding from the injected fault, got %d: %v", c.family, len(fs), fs)
			continue
		}
		f := fs[0]
		if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), c.file) {
			t.Errorf("%s: finding at %s, want it anchored in %s", c.family, f.Pos.Filename, c.file)
		}
		if !regexp.MustCompile(c.msgRE).MatchString(f.Msg) {
			t.Errorf("%s: message %q does not match %q", c.family, f.Msg, c.msgRE)
		}
	}
}
