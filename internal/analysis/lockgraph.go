package analysis

// lockgraph: the global lock-acquisition graph. Where lockorder checks the
// machine→page class ordering inside single functions, this rule sees every
// mutex field of every module struct, adds the edges a function creates
// *through its callees* (f holds A and calls g, which may acquire B — edge
// A→B even though no single function holds both), and reports:
//
//   - cycle:           a cross-function cycle among distinct locks, with the
//                      full path (each edge cites the function, position,
//                      and callee that realizes it);
//   - self-cycle:      a lock (re-)acquired while already held — Go mutexes
//                      are not reentrant, so this is a self-deadlock unless
//                      both holds are read locks;
//   - held-transition: any module lock held across a domain transition
//                      (ECall/OCall/NECall families, the sgx entry/exit
//                      instructions, a switchless ring submit). A transition
//                      parks the goroutine on another protection domain's
//                      progress; holding a lock across it extends that wait
//                      to every thread contending the lock.
import (
	"fmt"
	"go/types"
	"io"
	"sort"
	"strings"
)

// LockGraph is the interprocedural lock-ordering and transition rule.
var LockGraph = &Analyzer{
	Name: "lockgraph",
	Doc:  "the module-wide lock graph is acyclic and no lock is held across a domain transition",
	RunProgram: func(pass *ProgramPass) {
		p := pass.Prog
		edges := collectLockEdges(p)

		// Self-cycles first: direct or via-call re-acquisition.
		for _, e := range edges {
			if e.from != e.to {
				continue
			}
			via := ""
			if e.via != nil {
				via = " via " + e.via.name
			}
			pass.Reportf(e.pos, "lockgraph/self-cycle",
				"%s acquired in %s%s while already held — Go locks are not reentrant, this self-deadlocks",
				lockDisplay(e.to), e.fn.name, via)
		}

		// Cross-lock cycles: one finding per strongly connected component.
		reportLockCycles(pass, edges)

		// Held-across-transition.
		for _, n := range p.nodes {
			for _, cs := range n.calls {
				if len(cs.held) == 0 {
					continue
				}
				name, chain := transitionTarget(p, cs.callee)
				if name == "" {
					continue
				}
				locks := make([]string, 0, len(cs.held))
				for _, h := range cs.held {
					locks = append(locks, lockDisplay(h.lock))
				}
				pass.Reportf(cs.pos, "lockgraph/held-transition",
					"%s held across domain transition %s%s — release before crossing the boundary",
					strings.Join(locks, ", "), name, chain)
			}
		}
	},
}

// collectLockEdges builds the deduplicated global edge list: direct edges
// from each function's scan, plus held×callee-mayAcquire edges at each call
// site. The first witness (in deterministic node/source order) represents
// each (from, to) pair.
func collectLockEdges(p *Program) []lockEdge {
	type key struct{ from, to *types.Var }
	seen := make(map[key]bool)
	var out []lockEdge
	add := func(e lockEdge) {
		k := key{e.from, e.to}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, e)
	}
	for _, n := range p.nodes {
		for _, e := range n.localEdges {
			add(e)
		}
		for _, cs := range n.calls {
			if len(cs.held) == 0 {
				continue
			}
			callee := p.fns[cs.callee]
			if callee == nil || callee.mayAcquire == nil {
				continue
			}
			for _, lock := range sortedLocks(callee.mayAcquire) {
				w := callee.mayAcquire[lock]
				for _, h := range cs.held {
					if h.lock == lock && h.shared && w.shared {
						continue // RLock while RLock-held: permitted reentrancy
					}
					add(lockEdge{from: h.lock, to: lock, fn: n, pos: cs.pos, via: callee, shared: h.shared})
				}
			}
		}
	}
	return out
}

// reportLockCycles finds strongly connected components with more than one
// lock and reports each as a single cycle path.
func reportLockCycles(pass *ProgramPass, edges []lockEdge) {
	adj := make(map[*types.Var][]*types.Var)
	rep := make(map[[2]*types.Var]lockEdge)
	var locks []*types.Var
	seenLock := make(map[*types.Var]bool)
	note := func(v *types.Var) {
		if !seenLock[v] {
			seenLock[v] = true
			locks = append(locks, v)
		}
	}
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		note(e.from)
		note(e.to)
		k := [2]*types.Var{e.from, e.to}
		if _, ok := rep[k]; !ok {
			rep[k] = e
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	for _, scc := range lockSCCs(locks, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return lockDisplay(scc[i]) < lockDisplay(scc[j]) })
		cycle := shortestCycle(scc[0], scc, adj)
		if cycle == nil {
			continue
		}
		var path strings.Builder
		path.WriteString(lockDisplay(cycle[0]))
		for i := 0; i < len(cycle); i++ {
			from := cycle[i]
			to := cycle[(i+1)%len(cycle)]
			e := rep[[2]*types.Var{from, to}]
			via := ""
			if e.via != nil {
				via = " via " + e.via.name
			}
			fmt.Fprintf(&path, " -> %s (%s at %s%s)", lockDisplay(to), e.fn.name, pass.Posn(e.pos), via)
		}
		first := rep[[2]*types.Var{cycle[0], cycle[1%len(cycle)]}]
		pass.Reportf(first.pos, "lockgraph/cycle",
			"lock-acquisition cycle: %s — break the cycle or impose a global order", path.String())
	}
}

// shortestCycle BFSes from start back to itself inside the SCC.
func shortestCycle(start *types.Var, scc []*types.Var, adj map[*types.Var][]*types.Var) []*types.Var {
	in := make(map[*types.Var]bool, len(scc))
	for _, v := range scc {
		in[v] = true
	}
	prev := make(map[*types.Var]*types.Var)
	queue := []*types.Var{start}
	visited := map[*types.Var]bool{start: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start {
				// Reconstruct start -> ... -> v, cycle closes v -> start.
				var rev []*types.Var
				for x := v; x != nil; x = prev[x] {
					rev = append(rev, x)
				}
				out := make([]*types.Var, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if !visited[w] {
				visited[w] = true
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// lockSCCs is Tarjan over the lock graph.
func lockSCCs(locks []*types.Var, adj map[*types.Var][]*types.Var) [][]*types.Var {
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	var out [][]*types.Var
	next := 0
	var connect func(v *types.Var)
	connect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range locks {
		if _, seen := index[v]; !seen {
			connect(v)
		}
	}
	return out
}

// transitionTarget resolves whether calling fn crosses (or transitively
// reaches) a domain transition, returning its name and the witness chain.
func transitionTarget(p *Program, fn *types.Func) (string, string) {
	if name := classifyTransition(fn); name != "" {
		return name, ""
	}
	callee := p.fns[fn]
	if callee == nil || callee.trans == nil {
		return "", ""
	}
	var chain strings.Builder
	chain.WriteString(" (via ")
	chain.WriteString(callee.name)
	seen := map[*funcNode]bool{callee: true}
	for w := callee.trans; w != nil && w.next != nil && !seen[w.next]; w = w.next.trans {
		seen[w.next] = true
		chain.WriteString(" -> ")
		chain.WriteString(w.next.name)
	}
	chain.WriteString(")")
	return callee.trans.name, chain.String()
}

func sortedLocks(m map[*types.Var]*acqWitness) []*types.Var {
	out := make([]*types.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := lockDisplay(out[i]), lockDisplay(out[j])
		if a != b {
			return a < b
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// DumpGraph writes a deterministic summary of the interprocedural state: the
// call-graph size, every lock-graph edge with its witness, the transition
// ops found, and how many functions can transitively reach one. Behind
// cmd/nescheck -graph.
func (p *Program) DumpGraph(w io.Writer) {
	calls := 0
	transOps, transReach := 0, 0
	for _, n := range p.nodes {
		calls += len(n.calls)
		if n.transitionOp != "" {
			transOps++
		}
		if n.trans != nil {
			transReach++
		}
	}
	fmt.Fprintf(w, "call graph: %d functions, %d resolved call sites\n", len(p.nodes), calls)
	fmt.Fprintf(w, "transitions: %d ops, %d functions reach one\n", transOps, transReach)

	edges := collectLockEdges(p)
	fmt.Fprintf(w, "lock graph: %d edges\n", len(edges))
	lines := make([]string, 0, len(edges))
	for _, e := range edges {
		via := ""
		if e.via != nil {
			via = " via " + e.via.name
		}
		ps := p.fset.Position(e.pos)
		lines = append(lines, fmt.Sprintf("  %s -> %s (%s at %s:%d%s)",
			lockDisplay(e.from), lockDisplay(e.to), e.fn.name, shortFile(ps.Filename), ps.Line, via))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	for _, n := range p.nodes {
		if n.transitionOp != "" {
			fmt.Fprintf(w, "transition op: %s\n", n.name)
		}
	}
}
