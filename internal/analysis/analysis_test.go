package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		payload string
		ok      bool
	}{
		{"//nescheck:allow determinism because reasons", "determinism because reasons", true},
		{"//nescheck:allow\tdeterminism tabbed", "determinism tabbed", true},
		{"//nescheck:allow", "", true},
		{"// nescheck:allow determinism spaced out", "", false}, // directives bind tight, like //go:
		{"//nescheck:allowdeterminism glued", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		payload, ok := directiveText(c.comment)
		if ok != c.ok || payload != c.payload {
			t.Errorf("directiveText(%q) = %q, %v; want %q, %v", c.comment, payload, ok, c.payload, c.ok)
		}
	}
}

func TestRuleFamily(t *testing.T) {
	for in, want := range map[string]string{
		"determinism/wallclock":  "determinism",
		"errcheck":               "errcheck",
		"nescheck/bad-directive": "nescheck",
	} {
		if got := ruleFamily(in); got != want {
			t.Errorf("ruleFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"nestedenclave/internal/sgx", "internal/sgx", true},
		{"fix/internal/sgx", "internal/sgx", true},
		{"internal/sgx", "internal/sgx", true},
		{"nestedenclave/internal/sgxx", "internal/sgx", false},
		{"nestedenclave/xinternal/sgx", "internal/sgx", false},
		{"internal/sgx/sub", "internal/sgx", false},
	}
	for _, c := range cases {
		if got := pathMatches(c.path, c.suffix); got != c.want {
			t.Errorf("pathMatches(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestAllCatalogIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunProgram == nil) {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if a.Run != nil && a.RunProgram != nil {
			t.Errorf("analyzer %q declares both Run and RunProgram", a.Name)
		}
		if !rulePattern.MatchString(a.Name) {
			t.Errorf("analyzer name %q does not match the rule-family grammar", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 9 {
		t.Errorf("expected the 9 house analyzers, got %d", len(seen))
	}
}

// TestModuleIsClean is `make lint` as a test: the suite must run clean over
// the real tree, so a PR that introduces a violation (or reverts one of this
// PR's fixes) fails tier1, not just the lint target.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow; run without -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the tree", len(pkgs))
	}
	res := Analyze(pkgs, All(), Options{ReportStale: true})
	findings := append(res.Findings, res.Stale...)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Log("fix the findings, annotate with //nescheck:allow <rule> <reason>, or delete the stale allow")
	}
}

func TestFindingString(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join(mustAbs(t, "testdata/src/meta"), "surprise"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, []*Analyzer{Determinism})
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	s := findings[0].String()
	if !strings.Contains(s, "surprise.go:8:") || !strings.Contains(s, "determinism/wallclock:") {
		t.Errorf("finding string %q missing file:line or rule", s)
	}
}

func mustAbs(t *testing.T, p string) string {
	t.Helper()
	abs, err := filepath.Abs(p)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestExplorerPackagesAreReplayCritical pins the determinism rule's
// coverage of the exhaustive model checker and the attack engine:
// internal/simtest (the explorer and its enumeration loop), internal/model
// (the oracle whose canonical fingerprints key the memoization), and
// internal/adversary (whose (seed, strategy, ops) programs must replay
// byte-identically) must stay in the replay-critical set, or a global-RNG or
// map-order regression could make CI counterexamples and campaign breaches
// unreproducible without any analyzer finding.
func TestExplorerPackagesAreReplayCritical(t *testing.T) {
	for _, pkg := range []string{"internal/simtest", "internal/model", "internal/adversary"} {
		if !pathMatchesAny("nestedenclave/"+pkg, replayCriticalPkgs) {
			t.Errorf("%s dropped from replayCriticalPkgs: the exhaustive explorer's determinism is no longer enforced", pkg)
		}
	}
}
