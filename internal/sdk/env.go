package sdk

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// Env is the trusted runtime (tRTS) execution environment handed to enclave
// code: memory access through the hardware-validated path, the trusted heap,
// and the four transition interfaces (ocall, and for nested enclaves
// n_ecall/n_ocall; the initial ecall created this Env).
type Env struct {
	// E is the enclave this code runs in.
	E *Enclave
	// C is the executing core.
	C *sgx.Core

	tcsV isa.VAddr

	// deadline is the absolute simulated-cycle bound of the enclosing call
	// (ECallWithin), 0 = unbounded; budget is the original allowance, kept
	// for the error message. Inherited by nested-call environments.
	deadline int64
	budget   int64
	// expired latches once the deadline fires: the first expiry delivers a
	// real AEX + ERESUME preemption, later checks fail fast.
	expired bool
}

// preempt enforces the call deadline at every trusted-runtime operation.
// The first time the budget is exceeded, the enclave is preempted with a
// real AEX (context saved and scrubbed, TLB flushed) and ERESUMEd so the
// trusted code observes the timeout error; from then on every operation
// fails with the same *CallTimeout until the call unwinds.
func (env *Env) preempt() error {
	if env.deadline == 0 {
		return nil
	}
	if !env.expired {
		m := env.E.host.K.Machine()
		if m.Rec.Cycles() < env.deadline {
			return nil
		}
		env.expired = true
		if env.C.InEnclave() {
			t := env.C.CurrentTCS()
			if err := m.AEX(env.C); err == nil {
				if err := m.EResume(env.C, t); err != nil {
					return err
				}
			}
		}
	}
	return &CallTimeout{Enclave: env.E.img.Name, Budget: env.budget}
}

// --- Memory ---

// ErrContextLost is the sentinel matched (errors.Is) by *ContextLost.
var ErrContextLost = fmt.Errorf("sdk: enclave execution context lost")

// ContextLost reports that the core left this enclave's execution context
// mid-operation and was not resumed into it — the signature of a malicious
// scheduler parking the thread or ERESUMEing it elsewhere. Without this
// check the abort-page semantics would let trusted code keep computing on
// 0xFF filler; with it, the operation surfaces a typed detection error
// before any such value is returned. Non-transient: retrying on the same
// poisoned context cannot succeed.
type ContextLost struct {
	Enclave string
	Core    int
}

func (e *ContextLost) Error() string {
	return fmt.Sprintf("sdk: core %d no longer executes enclave %s (malicious scheduling detected)", e.Core, e.Enclave)
}

func (e *ContextLost) Is(target error) bool { return target == ErrContextLost }

// guardContext verifies, after a memory operation, that the core still
// executes this environment's enclave. One pointer compare — nil-cost for
// honest schedulers.
func (env *Env) guardContext() error {
	if env.C.Current() != env.E.secs {
		return &ContextLost{Enclave: env.E.img.Name, Core: env.C.ID}
	}
	return nil
}

// Read reads n bytes of (virtual) memory through the access-validated path.
// Reads of memory this enclave may not see return 0xFF bytes (abort-page
// semantics), exactly like the hardware — but if the execution context
// itself was torn down mid-read (wrong-core ERESUME), the data is withheld
// and a typed *ContextLost detection error returned instead.
func (env *Env) Read(v isa.VAddr, n int) ([]byte, error) {
	if err := env.preempt(); err != nil {
		return nil, err
	}
	b, err := env.C.Read(v, n)
	if err == nil {
		if cerr := env.guardContext(); cerr != nil {
			return nil, cerr
		}
	}
	return b, err
}

// Write stores b at v through the access-validated path. Writes to memory
// this enclave may not touch are silently dropped; a write whose execution
// context was torn down mid-operation reports *ContextLost.
func (env *Env) Write(v isa.VAddr, b []byte) error {
	if err := env.preempt(); err != nil {
		return err
	}
	err := env.C.Write(v, b)
	if err == nil {
		if cerr := env.guardContext(); cerr != nil {
			return cerr
		}
	}
	return err
}

// Malloc allocates n bytes on the enclave's trusted heap.
func (env *Env) Malloc(n int) (isa.VAddr, error) {
	if err := env.preempt(); err != nil {
		return 0, err
	}
	h := env.E.Heap()
	env.E.mu.Lock()
	defer env.E.mu.Unlock()
	return h.Alloc(n)
}

// Free releases a heap allocation (contents are not cleared).
func (env *Env) Free(v isa.VAddr) error {
	h := env.E.Heap()
	env.E.mu.Lock()
	defer env.E.mu.Unlock()
	return h.Free(v)
}

// --- Transitions ---

// OCall leaves the enclave to run a registered untrusted host function, then
// re-enters. The EDL must whitelist the function.
func (env *Env) OCall(name string, args []byte) ([]byte, error) {
	if err := env.preempt(); err != nil {
		return nil, err
	}
	if !env.E.img.AllowedOCalls[name] {
		return nil, fmt.Errorf("sdk: ocall %q not in enclave %s's EDL", name, env.E.img.Name)
	}
	fn, ok := env.E.host.ocall(name)
	if !ok {
		return nil, fmt.Errorf("sdk: host has no ocall handler %q", name)
	}
	m := env.E.host.K.Machine()
	sp := m.Rec.BeginSpan(env.C.ID, uint64(env.E.secs.EID), "ocall:"+name)
	defer sp.End()
	m.Rec.ChargeTo(uint64(env.E.secs.EID), env.C.ID, trace.EvOCall, 0)
	callStart := m.Rec.Cycles()
	// The tRTS scrubs registers and marshals arguments out before EEXIT.
	marshalled := append([]byte(nil), args...)
	env.C.Regs.Scrub()
	if err := m.EExit(env.C, false); err != nil {
		return nil, err
	}
	out, ferr := fn(marshalled)
	if err := m.EEnter(env.C, env.E.secs, env.tcsV, true); err != nil {
		return nil, err
	}
	m.Rec.Observe(trace.OpOCall, m.Rec.Cycles()-callStart)
	if ferr != nil {
		return nil, ferr
	}
	// Ownership of the handler's return buffer transfers to the enclave; the
	// marshalling-in copy above is the only defensive copy on this path.
	return out, nil
}

// OCallAsync performs an ocall through the host's switchless engine when the
// EDL marks the function switchless (AllowSwitchless) and the engine is
// running: the request is posted on the calling core's ring and served by a
// host worker while this enclave thread polls, eliding the EEXIT/EENTER
// transition pair. On any deterministic obstacle — unmarked function, no
// engine, ring full, engine stopping, or the wait budget expiring unclaimed —
// it degrades to the synchronous OCall path, so callers may use it
// unconditionally for switchless-capable functions.
func (env *Env) OCallAsync(name string, args []byte) ([]byte, error) {
	if err := env.preempt(); err != nil {
		return nil, err
	}
	if !env.E.img.SwitchlessOCalls[name] {
		return env.OCall(name, args)
	}
	eng := env.E.host.Switchless()
	if eng == nil || !eng.Running() {
		return env.OCall(name, args)
	}
	if !env.E.img.AllowedOCalls[name] {
		return nil, fmt.Errorf("sdk: ocall %q not in enclave %s's EDL", name, env.E.img.Name)
	}
	if _, ok := env.E.host.ocall(name); !ok {
		return nil, fmt.Errorf("sdk: host has no ocall handler %q", name)
	}
	m := env.E.host.K.Machine()
	eid := uint64(env.E.secs.EID)
	sp := m.Rec.BeginSpan(env.C.ID, eid, "switchless_ocall:"+name)
	defer sp.End()
	callStart := m.Rec.Cycles()
	// One marshalling copy into the shared (untrusted) ring buffer; the
	// response buffer is produced by the host and ownership transfers here.
	marshalled := append([]byte(nil), args...)
	out, ferr, ok := eng.Submit(env.C.ID, eid, name, marshalled)
	if !ok {
		// Ring full, engine stopped, or starved past the wait budget: pay the
		// transition after all.
		return env.OCall(name, args)
	}
	m.Rec.Observe(trace.OpSwitchlessOCall, m.Rec.Cycles()-callStart)
	return out, ferr
}

// NECall invokes an entry point of an associated inner enclave via NEENTER —
// the outer→inner transition that never leaves protected mode. The target
// function runs with the inner enclave's environment; on return NEEXIT
// restores this enclave's context.
func (env *Env) NECall(inner *Enclave, name string, args []byte) ([]byte, error) {
	if err := env.preempt(); err != nil {
		return nil, err
	}
	ext := env.E.host.Ext
	if ext == nil {
		return nil, fmt.Errorf("sdk: machine has no nested-enclave support")
	}
	fn, ok := inner.img.ECalls[name]
	if !ok {
		return nil, fmt.Errorf("sdk: inner enclave %s has no entry %q", inner.img.Name, name)
	}
	m := env.E.host.K.Machine()
	sp := m.Rec.BeginSpan(env.C.ID, uint64(inner.secs.EID), "n_ecall:"+name)
	defer sp.End()
	m.Rec.ChargeTo(uint64(inner.secs.EID), env.C.ID, trace.EvNECall, 0)
	callStart := m.Rec.Cycles()
	tcsV := inner.claimTCS()
	defer inner.releaseTCS(tcsV)
	marshalled := append([]byte(nil), args...)
	if err := ext.NEENTER(env.C, inner.secs, tcsV); err != nil {
		return nil, err
	}
	// The nested environment inherits the enclosing call's deadline.
	innerEnv := &Env{E: inner, C: env.C, tcsV: tcsV, deadline: env.deadline, budget: env.budget, expired: env.expired}
	out, ferr := runNested(innerEnv, name, fn, marshalled)
	if _, crashed := IsCrash(ferr); crashed {
		// The inner crashed; runNested already popped back to this frame
		// (or evacuated the core). Surface the typed error to the caller.
		return nil, ferr
	}
	if err := ext.NEEXIT(env.C); err != nil {
		return nil, err
	}
	m.Rec.Observe(trace.OpNECall, m.Rec.Cycles()-callStart)
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// NECallBatch invokes an inner entry point once per argument set over a
// single NEENTER/NEEXIT round trip, amortizing the nested transition across
// the batch. The first failing item aborts the remainder and surfaces its
// error annotated with the item index; an inner crash mid-batch behaves
// exactly as in NECall (the typed error passes through, no NEEXIT is
// attempted on the evacuated frame).
func (env *Env) NECallBatch(inner *Enclave, name string, batch [][]byte) ([][]byte, error) {
	if err := env.preempt(); err != nil {
		return nil, err
	}
	ext := env.E.host.Ext
	if ext == nil {
		return nil, fmt.Errorf("sdk: machine has no nested-enclave support")
	}
	fn, ok := inner.img.ECalls[name]
	if !ok {
		return nil, fmt.Errorf("sdk: inner enclave %s has no entry %q", inner.img.Name, name)
	}
	if len(batch) == 0 {
		return nil, nil
	}
	m := env.E.host.K.Machine()
	sp := m.Rec.BeginSpan(env.C.ID, uint64(inner.secs.EID), "n_ecall_batch:"+name)
	defer sp.End()
	m.Rec.ChargeTo(uint64(inner.secs.EID), env.C.ID, trace.EvNECall, 0)
	callStart := m.Rec.Cycles()
	tcsV := inner.claimTCS()
	defer inner.releaseTCS(tcsV)
	if err := ext.NEENTER(env.C, inner.secs, tcsV); err != nil {
		return nil, err
	}
	innerEnv := &Env{E: inner, C: env.C, tcsV: tcsV, deadline: env.deadline, budget: env.budget, expired: env.expired}
	outs := make([][]byte, 0, len(batch))
	var ferr error
	for i, args := range batch {
		marshalled := append([]byte(nil), args...)
		out, ierr := runNested(innerEnv, name, fn, marshalled)
		if ierr != nil {
			if _, crashed := IsCrash(ierr); crashed {
				// The inner crashed; runNested already popped back to this
				// frame (or evacuated the core). No NEEXIT of our own.
				return nil, ierr
			}
			ferr = fmt.Errorf("batch item %d: %w", i, ierr)
			break
		}
		outs = append(outs, out)
	}
	if err := ext.NEEXIT(env.C); err != nil {
		return nil, err
	}
	m.Rec.Observe(trace.OpNECall, m.Rec.Cycles()-callStart)
	if ferr != nil {
		return nil, ferr
	}
	return outs, nil
}

// runNested runs a trusted function at a nested-transition boundary with
// panic containment: a panic poisons the executing (inner or outer) enclave
// and — when a suspended caller frame exists — NEEXITs back to it, which
// scrubs the register file so no crashed-enclave state leaks into the
// caller. Without a frame to return to, the core is force-evacuated.
func runNested(env *Env, call string, fn TrustedFunc, args []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			m := env.E.host.K.Machine()
			eid := env.E.secs.EID
			m.PoisonEnclave(eid, fmt.Sprintf("trusted code panic in %s: %v", call, r))
			ext := env.E.host.Ext
			if t := env.C.CurrentTCS(); t != nil && t.Ret() && ext != nil {
				if nerr := ext.NEEXIT(env.C); nerr != nil {
					m.EmergencyExit(env.C)
				}
			} else {
				m.EmergencyExit(env.C)
			}
			out, err = nil, &EnclaveCrashed{Enclave: env.E.img.Name, Call: call, EID: eid, Panic: r}
		}
	}()
	return fn(env, args)
}

// NOCall invokes a function the outer enclave exposes to its inners via
// NEEXIT/NEENTER — the inner→outer call path with ordinary procedure-call
// syntax ("an application in an inner enclave can call library functions
// isolated in the outer enclave").
func (env *Env) NOCall(name string, args []byte) ([]byte, error) {
	if err := env.preempt(); err != nil {
		return nil, err
	}
	ext := env.E.host.Ext
	if ext == nil {
		return nil, fmt.Errorf("sdk: machine has no nested-enclave support")
	}
	outers := env.E.Outers()
	if len(outers) == 0 {
		return nil, fmt.Errorf("sdk: enclave %s has no outer enclave", env.E.img.Name)
	}
	// Resolve the function across the associated outer enclaves (one, in
	// the base model).
	var outer *Enclave
	var fn TrustedFunc
	for _, o := range outers {
		if f, ok := o.img.NOCalls[name]; ok {
			outer, fn = o, f
			break
		}
	}
	if outer == nil {
		return nil, fmt.Errorf("sdk: no outer enclave of %s exposes %q", env.E.img.Name, name)
	}
	m := env.E.host.K.Machine()
	sp := m.Rec.BeginSpan(env.C.ID, uint64(outer.secs.EID), "n_ocall:"+name)
	defer sp.End()
	m.Rec.ChargeTo(uint64(outer.secs.EID), env.C.ID, trace.EvNOCall, 0)
	callStart := m.Rec.Cycles()
	marshalled := append([]byte(nil), args...)

	// Fast path: this inner was NEENTERed from the outer enclave, so NEEXIT
	// restores the suspended outer context directly (scrubbing registers
	// and flushing the TLB)...
	if t := env.C.CurrentTCS(); t != nil && t.Ret() {
		if err := ext.NEEXIT(env.C); err != nil {
			return nil, err
		}
		outerTCS := env.C.CurrentTCS()
		outerEnv := &Env{E: outer, C: env.C, tcsV: outerTCS.Vaddr, deadline: env.deadline, budget: env.budget, expired: env.expired}
		out, ferr := runNested(outerEnv, name, fn, marshalled)
		if _, crashed := IsCrash(ferr); crashed {
			// The outer crashed while serving this call; there is no frame
			// to NEENTER back through (runNested evacuated the core).
			return nil, ferr
		}
		// ...then NEENTER back into this inner enclave on the same TCS.
		if err := ext.NEENTER(env.C, env.E.secs, env.tcsV); err != nil {
			return nil, err
		}
		m.Rec.Observe(trace.OpNOCall, m.Rec.Cycles()-callStart)
		if ferr != nil {
			return nil, ferr
		}
		return out, nil
	}

	// Upward path: the inner was entered directly from untrusted code (the
	// per-user service deployments), so the call transfers into the outer
	// enclave with an upward NEENTER and returns with NEEXIT — still never
	// leaving protected mode.
	outerTCSV := outer.claimTCS()
	defer outer.releaseTCS(outerTCSV)
	if err := ext.NEENTER(env.C, outer.secs, outerTCSV); err != nil {
		return nil, err
	}
	outerEnv := &Env{E: outer, C: env.C, tcsV: outerTCSV, deadline: env.deadline, budget: env.budget, expired: env.expired}
	out, ferr := runNested(outerEnv, name, fn, marshalled)
	if _, crashed := IsCrash(ferr); crashed {
		// The outer crashed; runNested already NEEXITed back to this inner.
		return nil, ferr
	}
	if err := ext.NEEXIT(env.C); err != nil {
		return nil, err
	}
	m.Rec.Observe(trace.OpNOCall, m.Rec.Cycles()-callStart)
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// --- Attestation ---

// Report produces an EREPORT targeted at the enclave measuring target.
func (env *Env) Report(target measure.Digest, data [64]byte) (*sgx.Report, error) {
	return env.E.host.K.Machine().EReport(env.C, target, data)
}

// VerifyReport checks a report addressed to this enclave.
func (env *Env) VerifyReport(r *sgx.Report) error {
	return env.E.host.K.Machine().VerifyReport(env.C, r)
}

// GetKey derives a sealing/report key for this enclave.
func (env *Env) GetKey(name measure.KeyName, policy sgx.SealPolicy, extra []byte) ([16]byte, error) {
	return env.E.host.K.Machine().EGetKey(env.C, name, policy, extra)
}

// Seal encrypts data under a key only this enclave (SealToEnclave) or any
// enclave from the same author (SealToSigner) can re-derive, producing a
// blob safe to hand to the untrusted world for persistence.
func (env *Env) Seal(policy sgx.SealPolicy, plaintext []byte) ([]byte, error) {
	aead, err := env.sealAEAD(policy)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Unseal reverses Seal. It fails for blobs sealed by any other identity —
// the property that makes sealed storage safe in kernel hands.
func (env *Env) Unseal(policy sgx.SealPolicy, blob []byte) ([]byte, error) {
	aead, err := env.sealAEAD(policy)
	if err != nil {
		return nil, err
	}
	if len(blob) < aead.NonceSize() {
		return nil, fmt.Errorf("sdk: sealed blob too short")
	}
	pt, err := aead.Open(nil, blob[:aead.NonceSize()], blob[aead.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("sdk: unseal failed (wrong enclave identity or tampered blob): %w", err)
	}
	return pt, nil
}

func (env *Env) sealAEAD(policy sgx.SealPolicy) (cipher.AEAD, error) {
	key, err := env.GetKey(measure.KeySeal, policy, nil)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// GrowHeap populates reserved ELRANGE pages (SGX2 EAUG) from inside the
// enclave: the request leaves via an implicit ocall to the runtime, which
// asks the kernel to augment the pages.
func (env *Env) GrowHeap(n int) error { return env.E.GrowHeap(n) }
