package sdk_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// testRig bundles a nested-enabled machine, kernel and host.
type testRig struct {
	m    *sgx.Machine
	k    *kos.Kernel
	ext  *core.Extension
	host *sdk.Host
}

func newRig(t *testing.T, cfg core.Config) *testRig {
	t.Helper()
	m := sgx.MustNew(sgx.SmallConfig())
	ext := core.Enable(m, cfg)
	k := kos.New(m)
	return &testRig{m: m, k: k, ext: ext, host: sdk.NewHost(k, ext)}
}

func mustLoad(t *testing.T, h *sdk.Host, si *sdk.SignedImage) *sdk.Enclave {
	t.Helper()
	e, err := h.Load(si)
	if err != nil {
		t.Fatalf("load %s: %v", si.Image.Name, err)
	}
	return e
}

// signPair builds and signs an inner/outer image pair with mutual expected
// measurements, the precondition for NASSO.
func signPair(t *testing.T, inner, outer *sdk.Image) (*sdk.SignedImage, *sdk.SignedImage) {
	t.Helper()
	innerAuthor := measure.MustNewAuthor()
	outerAuthor := measure.MustNewAuthor()
	si := inner.Sign(innerAuthor, []measure.Digest{outer.Measure()}, nil)
	so := outer.Sign(outerAuthor, nil, []measure.Digest{inner.Measure()})
	return si, so
}

func TestECallRoundTrip(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("echo", func(env *sdk.Env, args []byte) ([]byte, error) {
		return append([]byte("echo:"), args...), nil
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	out, err := e.ECall("echo", []byte("hi"))
	if err != nil {
		t.Fatalf("ecall: %v", err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("ecall returned %q", out)
	}
	if got := r.m.Rec.Get(trace.EvECall); got != 1 {
		t.Fatalf("ecall counter = %d, want 1", got)
	}
}

func TestEnclaveErrorsAreWrapped(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("failer", 0x1000_0000, sdk.DefaultLayout())
	sentinel := errors.New("trusted function failed")
	img.RegisterECall("boom", func(env *sdk.Env, args []byte) ([]byte, error) {
		return nil, sentinel
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	_, err := e.ECall("boom", nil)
	var ee *sdk.EnclaveError
	if !errors.As(err, &ee) {
		t.Fatalf("error not wrapped as EnclaveError: %v", err)
	}
	if ee.Enclave != "failer" || ee.Call != "boom" || !errors.Is(err, sentinel) {
		t.Fatalf("wrapped error fields: %+v", ee)
	}
}

func TestEnclaveMemoryIsolationFromHost(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())
	secret := []byte("top-secret-value-0123456789abcdef")
	var addr isa.VAddr
	img.RegisterECall("stash", func(env *sdk.Env, args []byte) ([]byte, error) {
		a, err := env.Malloc(len(secret))
		if err != nil {
			return nil, err
		}
		addr = a
		if err := env.Write(a, secret); err != nil {
			return nil, err
		}
		got, err := env.Read(a, len(secret))
		if err != nil {
			return nil, err
		}
		return got, nil
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	got, err := e.ECall("stash", nil)
	if err != nil {
		t.Fatalf("stash: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("in-enclave read back %q, want %q", got, secret)
	}

	// A non-enclave read of the same virtual address gets abort-page 0xFF.
	c := r.m.Core(0)
	if err := r.k.Schedule(c, r.host.Proc); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	leak, err := c.Read(addr, len(secret))
	if err != nil {
		t.Fatalf("host read: %v", err)
	}
	if bytes.Contains(leak, secret[:8]) {
		t.Fatalf("host read leaked enclave secret: %q", leak)
	}
	for i, b := range leak {
		if b != 0xFF {
			t.Fatalf("host read byte %d = %#x, want abort-page 0xFF", i, b)
		}
	}

	// A host write is silently dropped.
	if err := c.Write(addr, []byte("overwrite-attempt")); err != nil {
		t.Fatalf("host write: %v", err)
	}
	got2, err := e.ECall("stash_read", nil)
	if err == nil {
		_ = got2 // stash_read not registered; expected error
		t.Fatalf("unexpected success for unregistered ecall")
	}
}

func TestSecretIsCiphertextInDRAM(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())
	secret := []byte("plaintext-never-in-dram-ABCDEFGH")
	var addr isa.VAddr
	img.RegisterECall("stash", func(env *sdk.Env, args []byte) ([]byte, error) {
		a, err := env.Malloc(len(secret))
		if err != nil {
			return nil, err
		}
		addr = a
		return nil, env.Write(a, secret)
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	if _, err := e.ECall("stash", nil); err != nil {
		t.Fatalf("stash: %v", err)
	}
	// Force writeback so the line reaches DRAM, then probe the bus.
	if err := r.m.LLC.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	pa, ok := r.host.Proc.PageTable().Translate(addr)
	if !ok {
		t.Fatalf("no translation for heap page")
	}
	raw := r.m.DRAM.Read(pa, len(secret))
	if bytes.Contains(raw, secret[:8]) {
		t.Fatalf("physical DRAM holds enclave plaintext")
	}
}

func TestNestedCallAndAsymmetricAccess(t *testing.T) {
	r := newRig(t, core.TwoLevel())

	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())

	outerSecretData := []byte("outer-shared-buffer-for-inners!!")
	var outerAddr, innerAddr isa.VAddr
	innerSecret := []byte("inner-top-secret-per-user-data!!")

	outerImg.RegisterNOCall("lib_fn", func(env *sdk.Env, args []byte) ([]byte, error) {
		return append([]byte("lib:"), args...), nil
	})
	outerImg.RegisterECall("outer_main", func(env *sdk.Env, args []byte) ([]byte, error) {
		a, err := env.Malloc(len(outerSecretData))
		if err != nil {
			return nil, err
		}
		outerAddr = a
		if err := env.Write(a, outerSecretData); err != nil {
			return nil, err
		}
		// Call into the inner enclave by name.
		inner := env.E.Inners()[0]
		return env.NECall(inner, "inner_main", args)
	})
	outerImg.RegisterECall("outer_spy", func(env *sdk.Env, args []byte) ([]byte, error) {
		// The outer enclave attempts to read the inner enclave's memory:
		// must observe abort-page 0xFF, never the secret.
		return env.Read(innerAddr, len(innerSecret))
	})

	innerImg.RegisterECall("inner_main", func(env *sdk.Env, args []byte) ([]byte, error) {
		a, err := env.Malloc(len(innerSecret))
		if err != nil {
			return nil, err
		}
		innerAddr = a
		if err := env.Write(a, innerSecret); err != nil {
			return nil, err
		}
		// Asymmetric permission: the inner enclave reads the outer
		// enclave's memory directly.
		fromOuter, err := env.Read(outerAddr, len(outerSecretData))
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(fromOuter, outerSecretData) {
			t.Errorf("inner read of outer memory = %q, want %q", fromOuter, outerSecretData)
		}
		// And calls an outer library function via n_ocall.
		return env.NOCall("lib_fn", args)
	})

	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatalf("associate: %v", err)
	}

	out, err := outer.ECall("outer_main", []byte("x"))
	if err != nil {
		t.Fatalf("outer_main: %v", err)
	}
	if string(out) != "lib:x" {
		t.Fatalf("nested call chain returned %q", out)
	}

	spy, err := outer.ECall("outer_spy", nil)
	if err != nil {
		t.Fatalf("outer_spy: %v", err)
	}
	if bytes.Contains(spy, innerSecret[:8]) {
		t.Fatalf("outer enclave read inner secret: %q", spy)
	}
	for i, b := range spy {
		if b != 0xFF {
			t.Fatalf("outer spy byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestPeerInnerIsolation(t *testing.T) {
	r := newRig(t, core.TwoLevel())

	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	user1Img := sdk.NewImage("user1", 0x1000_0000, sdk.DefaultLayout())
	user2Img := sdk.NewImage("user2", 0x3000_0000, sdk.DefaultLayout())

	secret1 := []byte("user1-private-data-AAAAAAAAAAAAA")
	var addr1 isa.VAddr

	user1Img.RegisterECall("stash", func(env *sdk.Env, args []byte) ([]byte, error) {
		a, err := env.Malloc(len(secret1))
		if err != nil {
			return nil, err
		}
		addr1 = a
		return nil, env.Write(a, secret1)
	})
	user2Img.RegisterECall("spy", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.Read(addr1, len(secret1))
	})

	outerAuthor := measure.MustNewAuthor()
	innerAuthor := measure.MustNewAuthor()
	so := outerImg.Sign(outerAuthor, nil, []measure.Digest{user1Img.Measure(), user2Img.Measure()})
	s1 := user1Img.Sign(innerAuthor, []measure.Digest{outerImg.Measure()}, nil)
	s2 := user2Img.Sign(innerAuthor, []measure.Digest{outerImg.Measure()}, nil)

	outer := mustLoad(t, r.host, so)
	u1 := mustLoad(t, r.host, s1)
	u2 := mustLoad(t, r.host, s2)
	if err := r.host.Associate(u1, outer); err != nil {
		t.Fatalf("associate u1: %v", err)
	}
	if err := r.host.Associate(u2, outer); err != nil {
		t.Fatalf("associate u2: %v", err)
	}

	if _, err := u1.ECall("stash", nil); err != nil {
		t.Fatalf("stash: %v", err)
	}
	spy, err := u2.ECall("spy", nil)
	if err != nil {
		t.Fatalf("spy: %v", err)
	}
	if bytes.Contains(spy, secret1[:8]) {
		t.Fatalf("peer inner enclave read sibling's secret")
	}
	for i, b := range spy {
		if b != 0xFF {
			t.Fatalf("peer spy byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestNASSORejectsUnauthorizedPairing(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	evilImg := sdk.NewImage("evil", 0x1000_0000, sdk.DefaultLayout())

	// The outer's certificate authorizes a *different* inner; the evil
	// image's certificate claims the outer, but the mutual check fails.
	legitInner := sdk.NewImage("legit", 0x4000_0000, sdk.DefaultLayout())
	so := outerImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{legitInner.Measure()})
	se := evilImg.Sign(measure.MustNewAuthor(), []measure.Digest{outerImg.Measure()}, nil)

	outer := mustLoad(t, r.host, so)
	evil := mustLoad(t, r.host, se)
	err := r.host.Associate(evil, outer)
	if err == nil {
		t.Fatalf("NASSO accepted an unauthorized inner enclave")
	}
	if !strings.Contains(err.Error(), "does not authorize") {
		t.Fatalf("unexpected NASSO error: %v", err)
	}
}

func TestRegisterScrubOnNEEXIT(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())

	const outerVal = 7
	const innerSecretVal = 0xdeadbeef
	outerImg.RegisterECall("run", func(env *sdk.Env, args []byte) ([]byte, error) {
		env.C.Regs.GPR[0] = outerVal
		inner := env.E.Inners()[0]
		if _, err := env.NECall(inner, "work", nil); err != nil {
			return nil, err
		}
		if got := env.C.Regs.GPR[0]; got != outerVal {
			t.Errorf("after NEEXIT, outer GPR0 = %#x, want %#x (restored)", got, outerVal)
		}
		if env.C.Regs.GPR[1] == innerSecretVal {
			t.Errorf("inner register value leaked across NEEXIT")
		}
		return nil, nil
	})
	innerImg.RegisterECall("work", func(env *sdk.Env, args []byte) ([]byte, error) {
		env.C.Regs.GPR[0] = 42
		env.C.Regs.GPR[1] = innerSecretVal
		return nil, nil
	})

	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatalf("associate: %v", err)
	}
	if _, err := outer.ECall("run", nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestOCallFromInnerEnclave(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())
	innerImg.AllowOCall("host_log")

	outerImg.RegisterECall("run", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "work", nil)
	})
	innerImg.RegisterECall("work", func(env *sdk.Env, args []byte) ([]byte, error) {
		// Paper Figure 5: an inner enclave may exit directly to untrusted
		// code and come back (ocall), preserving the nested context.
		out, err := env.OCall("host_log", []byte("ping"))
		if err != nil {
			return nil, err
		}
		if env.C.NestingDepth() != 2 {
			t.Errorf("nesting depth after ocall = %d, want 2", env.C.NestingDepth())
		}
		return out, nil
	})

	r.host.RegisterOCall("host_log", func(args []byte) ([]byte, error) {
		return append([]byte("logged:"), args...), nil
	})

	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatalf("associate: %v", err)
	}
	out, err := outer.ECall("run", nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if string(out) != "logged:ping" {
		t.Fatalf("ocall chain returned %q", out)
	}
}

func TestNEREPORTCoversAssociations(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())

	var rep *core.NestedReport
	innerImg.RegisterECall("attest", func(env *sdk.Env, args []byte) ([]byte, error) {
		var data [64]byte
		copy(data[:], "channel-binding-nonce")
		var err error
		rep, err = r.ext.NEREPORT(env.C, env.E.Outers()[0].SECS().MRENCLAVE, data)
		return nil, err
	})
	outerImg.RegisterECall("verify", func(env *sdk.Env, args []byte) ([]byte, error) {
		return nil, r.ext.VerifyNestedReport(env.C, rep)
	})

	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatalf("associate: %v", err)
	}
	if _, err := inner.ECall("attest", nil); err != nil {
		t.Fatalf("attest: %v", err)
	}
	if len(rep.OuterMeasurements) != 1 || rep.OuterMeasurements[0] != outer.SECS().MRENCLAVE {
		t.Fatalf("nested report outer measurements = %v", rep.OuterMeasurements)
	}
	if _, err := outer.ECall("verify", nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Tampering with the association list must break the MAC.
	rep.OuterMeasurements[0][0] ^= 1
	if _, err := outer.ECall("verify", nil); err == nil {
		t.Fatalf("tampered nested report verified")
	}
}
