package sdk_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/switchless"
	"nestedenclave/internal/trace"
)

// TestOCallAsyncElidesTransition drives N switchless ocalls from inside one
// ecall and checks that the ring path was taken: the switchless counters
// advance, no EEXIT/EENTER pairs beyond the enclosing ecall's occur, and the
// per-call cycle cost is the fixed ring protocol cost rather than the full
// transition cost.
func TestOCallAsyncElidesTransition(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout()).
		AllowSwitchless("upper")
	const n = 32
	img.RegisterECall("run", func(env *sdk.Env, args []byte) ([]byte, error) {
		var last []byte
		for i := 0; i < n; i++ {
			out, err := env.OCallAsync("upper", []byte{'a' + byte(i%26)})
			if err != nil {
				return nil, err
			}
			last = out
		}
		return last, nil
	})
	r.host.RegisterOCall("upper", func(args []byte) ([]byte, error) {
		return bytes.ToUpper(args), nil
	})
	r.host.StartSwitchless(switchless.Config{})
	defer r.host.StopSwitchless()

	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	exits := r.m.Rec.Get(trace.EvEEXIT)
	out, err := e.ECall("run", nil)
	if err != nil {
		t.Fatalf("ecall: %v", err)
	}
	if string(out) != string([]byte{'A' + byte((n-1)%26)}) {
		t.Fatalf("last response %q", out)
	}
	if got := r.m.Rec.Get(trace.EvSwitchless); got != 2*n {
		t.Fatalf("switchless events %d, want %d (submit+service per call)", got, 2*n)
	}
	if got := r.m.Rec.Get(trace.EvSwitchlessFallback); got != 0 {
		t.Fatalf("fallbacks %d", got)
	}
	if got := r.m.Rec.Get(trace.EvOCall); got != 0 {
		t.Fatalf("synchronous ocalls %d, want 0", got)
	}
	// The only EEXIT is the enclosing ecall's return: the ocalls never left.
	if got := r.m.Rec.Get(trace.EvEEXIT) - exits; got != 1 {
		t.Fatalf("EEXITs during ecall %d, want 1", got)
	}
	st := r.host.Switchless().Stats()
	if st.Completed != n || st.Fallbacks != 0 {
		t.Fatalf("engine stats %+v", st)
	}
}

// TestOCallAsyncFallsBackSynchronously covers the degradation ladder: an
// unmarked function and a stopped engine both route through the ordinary
// transition-paying OCall with identical results.
func TestOCallAsyncFallsBackSynchronously(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout()).
		AllowOCall("plain").
		AllowSwitchless("fast")
	img.RegisterECall("plain", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.OCallAsync("plain", args) // not switchless-marked
	})
	img.RegisterECall("fast", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.OCallAsync("fast", args) // marked, but no engine running
	})
	echo := func(args []byte) ([]byte, error) { return args, nil }
	r.host.RegisterOCall("plain", echo)
	r.host.RegisterOCall("fast", echo)

	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	for _, call := range []string{"plain", "fast"} {
		before := r.m.Rec.Get(trace.EvOCall)
		out, err := e.ECall(call, []byte("x"))
		if err != nil {
			t.Fatalf("%s: %v", call, err)
		}
		if string(out) != "x" {
			t.Fatalf("%s returned %q", call, out)
		}
		if got := r.m.Rec.Get(trace.EvOCall) - before; got != 1 {
			t.Fatalf("%s: synchronous ocall count %d, want 1", call, got)
		}
	}
	if got := r.m.Rec.Get(trace.EvSwitchless); got != 0 {
		t.Fatalf("ring events without a running engine: %d", got)
	}
}

// TestSwitchlessMarkingIsMeasured: the EDL's switchless annotation is part of
// the trusted interface contract, so it must change MRENCLAVE.
func TestSwitchlessMarkingIsMeasured(t *testing.T) {
	a := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout()).AllowOCall("f")
	b := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout()).AllowSwitchless("f")
	if a.Measure() == b.Measure() {
		t.Fatal("switchless marking did not change the measurement")
	}
}

// TestECallBatchAmortizesTransition: N trusted invocations over one
// EENTER/EEXIT pair, with item errors annotated by index and crash typing
// preserved through the wrapping.
func TestECallBatchAmortizesTransition(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("double", func(env *sdk.Env, args []byte) ([]byte, error) {
		if len(args) == 1 && args[0] == 0xEE {
			return nil, errors.New("poison item")
		}
		return append(args, args...), nil
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))

	const n = 16
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	enters := r.m.Rec.Get(trace.EvEENTER)
	outs, err := e.ECallBatch("double", batch)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(outs) != n {
		t.Fatalf("batch returned %d results", len(outs))
	}
	for i, out := range outs {
		if !bytes.Equal(out, []byte{byte(i), byte(i)}) {
			t.Fatalf("item %d: %v", i, out)
		}
	}
	if got := r.m.Rec.Get(trace.EvEENTER) - enters; got != 1 {
		t.Fatalf("EENTERs for the batch %d, want 1", got)
	}

	// A failing item reports its index and aborts the remainder.
	_, err = e.ECallBatch("double", [][]byte{{1}, {0xEE}, {3}})
	if err == nil || !errors.As(err, new(*sdk.EnclaveError)) {
		t.Fatalf("batch error not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), "batch item 1") {
		t.Fatalf("batch error %q does not name the item", err)
	}
}

// TestNECallBatchAmortizesNestedTransition: the outer enclave invokes an
// inner entry N times over a single NEENTER/NEEXIT round trip.
func TestNECallBatchAmortizesNestedTransition(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	inner := sdk.NewImage("inner", 0x2000_0000, sdk.DefaultLayout())
	inner.RegisterECall("inc", func(env *sdk.Env, args []byte) ([]byte, error) {
		return []byte{args[0] + 1}, nil
	})
	outer := sdk.NewImage("outer", 0x1000_0000, sdk.DefaultLayout())
	outer.RegisterECall("fanout", func(env *sdk.Env, args []byte) ([]byte, error) {
		batch := make([][]byte, int(args[0]))
		for i := range batch {
			batch[i] = []byte{byte(i)}
		}
		in := env.E.Inners()[0]
		outs, err := env.NECallBatch(in, "inc", batch)
		if err != nil {
			return nil, err
		}
		sum := byte(0)
		for _, o := range outs {
			sum += o[0]
		}
		return []byte{sum}, nil
	})
	si, so := signPair(t, inner, outer)
	ie := mustLoad(t, r.host, si)
	oe := mustLoad(t, r.host, so)
	if err := r.host.Associate(ie, oe); err != nil {
		t.Fatalf("associate: %v", err)
	}

	const n = 10
	nenters := r.m.Rec.Get(trace.EvNEENTER)
	out, err := oe.ECall("fanout", []byte{n})
	if err != nil {
		t.Fatalf("fanout: %v", err)
	}
	want := byte(0)
	for i := 0; i < n; i++ {
		want += byte(i) + 1
	}
	if out[0] != want {
		t.Fatalf("sum %d, want %d", out[0], want)
	}
	if got := r.m.Rec.Get(trace.EvNEENTER) - nenters; got != 1 {
		t.Fatalf("NEENTERs for the batch %d, want 1", got)
	}
	if got := r.m.Rec.Get(trace.EvNECall); got != 1 {
		t.Fatalf("n_ecall count %d, want 1 for the whole batch", got)
	}
}

// TestCallMarshallingAllocs pins the defensive-copy budget of the hot
// ecall+ocall round trip. Before the copy-once change the path performed
// both an inbound and an outbound copy per boundary (7 allocs/op for this
// shape); with output ownership transfer it must stay at or below 5.
func TestCallMarshallingAllocs(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout()).AllowOCall("echo")
	img.RegisterECall("relay", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.OCall("echo", args)
	})
	r.host.RegisterOCall("echo", func(args []byte) ([]byte, error) { return args, nil })
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))

	payload := make([]byte, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.ECall("relay", payload); err != nil {
			t.Fatalf("relay: %v", err)
		}
	})
	if allocs > 5 {
		t.Fatalf("ecall+ocall round trip allocates %.1f/op, want <= 5 (outbound copies removed)", allocs)
	}
}
