package sdk

import (
	"fmt"
	"strings"
	"sync"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/trace"
)

// SupervisorConfig tunes a self-healing enclave lifecycle.
type SupervisorConfig struct {
	// Retry governs transparent retries of calls and of the reload itself.
	Retry RetryPolicy
	// MaxRestarts caps lifetime restarts (0 → 8).
	MaxRestarts int
	// RestoreECall, when non-empty, names the trusted entry invoked with
	// the latest sealed checkpoint after every restart, so the fresh
	// instance recovers its state. Because the reloaded image measures to
	// the same MRENCLAVE, the new instance re-derives the seal key and can
	// open blobs its predecessor produced.
	RestoreECall string
	// OnRestart, when set, runs after a fresh instance loads and before
	// state restore — the place to re-establish associations.
	OnRestart func(e *Enclave) error
}

// Supervisor owns one enclave's lifecycle: it loads the instance, routes
// calls to it, and when the instance crashes (trusted-code panic or MEE
// machine check poisoning it), tears it down via EREMOVE, reloads the image,
// and recovers state from the latest sealed checkpoint.
type Supervisor struct {
	h   *Host
	si  *SignedImage
	cfg SupervisorConfig

	mu         sync.Mutex
	e          *Enclave
	sealed     []byte
	restarts   int
	restarting bool
}

// Supervise loads the image and returns its supervisor.
func Supervise(h *Host, si *SignedImage, cfg SupervisorConfig) (*Supervisor, error) {
	s := &Supervisor{h: h, si: si, cfg: cfg}
	m := h.K.Machine()
	err := cfg.Retry.Run(m.Rec, m.Chaos, func() error {
		e, lerr := h.Load(si)
		if lerr != nil {
			return lerr
		}
		s.e = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.OnRestart != nil {
		if err := cfg.OnRestart(s.e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Enclave returns the live instance (nil while down between restarts).
func (s *Supervisor) Enclave() *Enclave {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e
}

// Restarts returns how many times the enclave has been restarted.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Checkpoint records the latest sealed state blob. The supervisor stores it
// on the untrusted side — it is sealed, so the host can hold but not read or
// forge it — and feeds it to RestoreECall after a restart.
func (s *Supervisor) Checkpoint(sealed []byte) {
	if len(sealed) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = append(s.sealed[:0:0], sealed...)
}

// Sealed returns the latest checkpoint blob.
func (s *Supervisor) Sealed() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.sealed...)
}

// Crashed reports whether err indicates that THIS supervisor's enclave is
// dead: either the machine poisoned it, or the error names its EID. A crash
// of some other enclave surfacing through a shared call chain returns false,
// so each supervisor restarts only its own charge.
func (s *Supervisor) Crashed(err error) bool {
	if err == nil {
		return false
	}
	s.mu.Lock()
	e := s.e
	s.mu.Unlock()
	if e == nil {
		return true
	}
	if _, poisoned := s.h.K.Machine().PoisonedReason(e.secs.EID); poisoned {
		return true
	}
	if ec, ok := IsCrash(err); ok && ec.EID == e.secs.EID {
		return true
	}
	return false
}

// Restart tears down the crashed instance (EREMOVE clears the poison mark),
// reloads the image under the retry policy, re-establishes associations via
// OnRestart, and replays the sealed checkpoint into RestoreECall.
func (s *Supervisor) Restart() error {
	// s.mu is NOT held across the teardown/reload/restore sequence: the
	// restore is an ECall into the fresh enclave, and holding the supervisor
	// lock across a domain transition would stall every concurrent
	// Enclave()/Call() for the full restore (and deadlock outright if the
	// restore path ever routed back through the supervisor). Instead the
	// lock is taken briefly to claim the restart (the `restarting` latch
	// serializes concurrent attempts) and again at the end to publish the
	// fresh instance, which until then is private to this goroutine.
	// Flagged by nescheck lockgraph/held-transition.
	s.mu.Lock()
	if s.restarting {
		s.mu.Unlock()
		return fmt.Errorf("sdk: supervisor for %s: restart already in progress: %w",
			s.si.Image.Name, chaos.ErrTransient)
	}
	maxR := s.cfg.MaxRestarts
	if maxR <= 0 {
		maxR = 8
	}
	if s.restarts >= maxR {
		s.mu.Unlock()
		return fmt.Errorf("sdk: supervisor for %s: restart limit (%d) reached", s.si.Image.Name, maxR)
	}
	s.restarts++
	s.restarting = true
	old := s.e
	s.e = nil
	sealed := s.sealed // Checkpoint replaces the slice wholesale, never mutates it
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.restarting = false
		s.mu.Unlock()
	}()
	m := s.h.K.Machine()
	// The restart is machine-global work (teardown, reload, restore); its
	// span opens on NoCore so injected faults cured by the reload retries
	// show up inside it.
	sp := m.Rec.BeginSpan(trace.NoCore, trace.NoEID, "restart:"+s.si.Image.Name)
	defer sp.End()
	var poisonReason string
	if old != nil {
		poisonReason, _ = m.PoisonedReason(old.secs.EID)
		if err := s.h.Destroy(old); err != nil {
			return fmt.Errorf("sdk: supervisor teardown of %s: %w", s.si.Image.Name, err)
		}
	}
	var fresh *Enclave
	err := s.cfg.Retry.Run(m.Rec, m.Chaos, func() error {
		e, lerr := s.h.Load(s.si)
		if lerr != nil {
			return lerr
		}
		fresh = e
		return nil
	})
	if err != nil {
		return fmt.Errorf("sdk: supervisor reload of %s: %w", s.si.Image.Name, err)
	}
	if s.cfg.OnRestart != nil {
		if err := s.cfg.OnRestart(fresh); err != nil {
			_ = s.h.Destroy(fresh)
			return fmt.Errorf("sdk: supervisor rewire of %s: %w", s.si.Image.Name, err)
		}
	}
	if s.cfg.RestoreECall != "" && len(sealed) > 0 {
		if _, err := fresh.ECall(s.cfg.RestoreECall, sealed); err != nil {
			_ = s.h.Destroy(fresh)
			return fmt.Errorf("sdk: supervisor restore of %s: %w", s.si.Image.Name, err)
		}
	}
	s.mu.Lock()
	s.e = fresh
	s.mu.Unlock()
	// A restart that cures an MEE-integrity poisoning is the recovery arm
	// of the DRAM bit-flip fault site.
	if strings.Contains(poisonReason, "MEE integrity") {
		m.Chaos.Recovered(chaos.SiteDRAMBitFlip)
	}
	return nil
}

// Call routes an ecall to the live instance with crash-restart and
// transient-fault retry: if the instance crashed, it is restarted (state
// restored from the sealed checkpoint) and the call reissued. Calls must be
// idempotent under this policy — the crash may have landed after a partial
// application.
func (s *Supervisor) Call(name string, args []byte) ([]byte, error) {
	m := s.h.K.Machine()
	var out []byte
	err := s.cfg.Retry.Run(m.Rec, m.Chaos, func() error {
		e := s.Enclave()
		if e == nil {
			// A previous restart attempt failed (e.g. reload hit injected
			// EPC-allocation faults); try again rather than waiting it out.
			if rerr := s.Restart(); rerr != nil {
				return rerr
			}
			return fmt.Errorf("sdk: supervisor for %s: no live instance: %w", s.si.Image.Name, chaos.ErrTransient)
		}
		res, cerr := e.ECall(name, args)
		if cerr == nil {
			out = res
			return nil
		}
		if s.Crashed(cerr) {
			if rerr := s.Restart(); rerr != nil {
				return rerr
			}
			return fmt.Errorf("sdk: restarted %s after crash (%v): %w", s.si.Image.Name, cerr, chaos.ErrTransient)
		}
		return cerr
	})
	return out, err
}
