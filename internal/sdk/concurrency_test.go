package sdk_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
)

func mustAuthor(t *testing.T) *measure.Author {
	t.Helper()
	return measure.MustNewAuthor()
}

// TestParallelECalls runs concurrent ecalls into one enclave: the SDK
// multiplexes them over the machine's cores and the enclave's TCS pool, and
// the machine's memory system stays consistent under the shared lock.
func TestParallelECalls(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	layout := sdk.DefaultLayout()
	layout.NumTCS = 4
	img := sdk.NewImage("parallel", 0x1000_0000, layout)
	img.RegisterECall("work", func(env *sdk.Env, args []byte) ([]byte, error) {
		// Each call allocates, writes, reads back and frees enclave memory.
		a, err := env.Malloc(len(args))
		if err != nil {
			return nil, err
		}
		defer func() { _ = env.Free(a) }()
		if err := env.Write(a, args); err != nil {
			return nil, err
		}
		got, err := env.Read(a, len(args))
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, args) {
			return nil, fmt.Errorf("readback mismatch")
		}
		return got, nil
	})
	e := mustLoad(t, r.host, img.Sign(mustAuthor(t), nil, nil))

	const workers = 8
	const callsEach = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, 64+w)
			for i := 0; i < callsEach; i++ {
				out, err := e.ECall("work", payload)
				if err != nil {
					errs <- fmt.Errorf("worker %d call %d: %w", w, i, err)
					return
				}
				if !bytes.Equal(out, payload) {
					errs <- fmt.Errorf("worker %d call %d: wrong result", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelNestedCalls drives concurrent outer->inner chains: two outer
// ecalls each NECall into the shared inner enclave on separate TCSes.
func TestParallelNestedCalls(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	il := sdk.DefaultLayout()
	il.NumTCS = 4
	ol := sdk.DefaultLayout()
	ol.NumTCS = 4
	innerImg := sdk.NewImage("inner", 0x1000_0000, il)
	outerImg := sdk.NewImage("outer", 0x2000_0000, ol)
	innerImg.RegisterECall("bump", func(env *sdk.Env, args []byte) ([]byte, error) {
		return append(args, 1), nil
	})
	outerImg.RegisterECall("chain", func(env *sdk.Env, args []byte) ([]byte, error) {
		out := args
		for i := 0; i < 10; i++ {
			var err error
			out, err = env.NECall(env.E.Inners()[0], "bump", out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				out, err := outer.ECall("chain", []byte{byte(w)})
				if err != nil {
					errs <- err
					return
				}
				if len(out) != 11 {
					errs <- fmt.Errorf("chain produced %d bytes", len(out))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if bad := r.m.AuditTLBs(); len(bad) != 0 {
		t.Errorf("stale translations after concurrent run: %v", bad)
	}
}

// TestTCSExhaustionBlocks checks that calls queue rather than fail when all
// TCSes are busy.
func TestTCSExhaustionBlocks(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	layout := sdk.DefaultLayout()
	layout.NumTCS = 1
	img := sdk.NewImage("single-tcs", 0x1000_0000, layout)
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	img.RegisterECall("hold", func(env *sdk.Env, args []byte) ([]byte, error) {
		entered <- struct{}{}
		<-gate
		return nil, nil
	})
	img.RegisterECall("quick", func(env *sdk.Env, args []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	e := mustLoad(t, r.host, img.Sign(mustAuthor(t), nil, nil))

	done := make(chan error, 2)
	go func() { _, err := e.ECall("hold", nil); done <- err }()
	<-entered
	// The second call must wait for the TCS, then succeed.
	go func() { _, err := e.ECall("quick", nil); done <- err }()
	select {
	case err := <-done:
		t.Fatalf("second call completed while TCS held: %v", err)
	default:
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
