package sdk

import (
	"fmt"
	"sync"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/talloc"
	"nestedenclave/internal/trace"
)

// Enclave is the host-side handle to a loaded enclave.
type Enclave struct {
	host *Host
	img  *Image
	secs *sgx.SECS

	mu     sync.Mutex
	outers []*Enclave
	inners []*Enclave
	heap   *talloc.Heap
	grown  int // reserved pages already populated by GrowHeap

	tcsFree chan isa.VAddr
}

// GrowHeap populates n pages of the image's reserved region with SGX2-style
// EAUG and donates them to the trusted heap. It fails once the declared
// reservation is exhausted — ELRANGE cannot grow after ECREATE.
func (e *Enclave) GrowHeap(n int) error {
	if n <= 0 {
		return fmt.Errorf("sdk: grow of %d pages", n)
	}
	h := e.Heap()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.grown+n > e.img.L.ReservedHeapPages {
		return fmt.Errorf("sdk: heap growth of %d pages exceeds reservation (%d of %d used)",
			n, e.grown, e.img.L.ReservedHeapPages)
	}
	base := e.img.ReservedBase() + isa.VAddr(e.grown)*isa.PageSize
	for i := 0; i < n; i++ {
		v := base + isa.VAddr(i)*isa.PageSize
		if err := e.host.K.Driver.AugPage(e.host.Proc, e.secs, v, isa.PermRW); err != nil {
			return err
		}
	}
	e.grown += n
	return h.Extend(base, uint64(n)*isa.PageSize)
}

// SECS exposes the enclave's control structure (tests, attestation flows).
func (e *Enclave) SECS() *sgx.SECS { return e.secs }

// Image returns the image the enclave was loaded from.
func (e *Enclave) Image() *Image { return e.img }

// Host returns the owning host.
func (e *Enclave) Host() *Host { return e.host }

// Outers returns the associated outer enclaves (after Associate).
func (e *Enclave) Outers() []*Enclave {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Enclave(nil), e.outers...)
}

// Inners returns the associated inner enclaves.
func (e *Enclave) Inners() []*Enclave {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Enclave(nil), e.inners...)
}

// Heap returns the enclave's trusted heap allocator (lazily created over the
// image's heap pages). The allocator is shared by all threads; callers
// serialize through the enclave lock internally.
func (e *Enclave) Heap() *talloc.Heap {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.heap == nil {
		e.heap = talloc.New(e.img.HeapBase(), e.img.HeapSize())
	}
	return e.heap
}

// claimTCS takes an idle TCS virtual address from the pool.
func (e *Enclave) claimTCS() isa.VAddr { return <-e.tcsFree }

func (e *Enclave) releaseTCS(v isa.VAddr) { e.tcsFree <- v }

// ECall invokes a trusted entry point from the untrusted host: acquire a
// core and a TCS, EENTER, run the function inside the enclave, EEXIT.
// A panic in the trusted code does not escape: the crash is contained
// (registers and saved state scrubbed, enclave poisoned) and surfaced as a
// typed *EnclaveCrashed error.
func (e *Enclave) ECall(name string, args []byte) ([]byte, error) {
	return e.eCall(name, args, 0)
}

// ECallWithin is ECall with a budget of simulated cycles: when the call
// exceeds it, the enclave is preempted with a real AEX + ERESUME round trip
// and every subsequent trusted-runtime operation fails with *CallTimeout,
// forcing the call to unwind.
func (e *Enclave) ECallWithin(name string, args []byte, budget int64) ([]byte, error) {
	return e.eCall(name, args, budget)
}

func (e *Enclave) eCall(name string, args []byte, budget int64) ([]byte, error) {
	fn, ok := e.img.ECalls[name]
	if !ok {
		return nil, fmt.Errorf("sdk: enclave %s has no ecall %q", e.img.Name, name)
	}
	// The uRTS marshals arguments into an untrusted buffer the enclave will
	// copy in; the simulator models the copy cost with a defensive copy.
	// The output is not re-copied: ownership of a trusted function's return
	// buffer transfers to the caller (handlers must not retain it).
	marshalled := append([]byte(nil), args...)
	var out []byte
	err := e.enterRun(name, budget, func(env *Env) error {
		var ferr error
		out, ferr = runTrusted(env, name, fn, marshalled)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ECallBatch invokes a trusted entry point once per argument set over a
// single EENTER/EEXIT round trip, amortizing the transition cost across the
// batch (the switchless companion for the host→enclave direction). The
// whole batch runs on one core and one TCS; the first failing item aborts
// the remainder and surfaces its error annotated with the item index.
func (e *Enclave) ECallBatch(name string, batch [][]byte) ([][]byte, error) {
	fn, ok := e.img.ECalls[name]
	if !ok {
		return nil, fmt.Errorf("sdk: enclave %s has no ecall %q", e.img.Name, name)
	}
	if len(batch) == 0 {
		return nil, nil
	}
	outs := make([][]byte, 0, len(batch))
	err := e.enterRun(name, 0, func(env *Env) error {
		for i, args := range batch {
			marshalled := append([]byte(nil), args...)
			out, ferr := runTrusted(env, name, fn, marshalled)
			if ferr != nil {
				return fmt.Errorf("batch item %d: %w", i, ferr)
			}
			outs = append(outs, out)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// enterRun owns the shared ecall machinery — core and TCS acquisition, span
// and transition accounting, EENTER/EEXIT, evacuation recovery, and error
// wrapping — around a body that runs inside the enclave.
func (e *Enclave) enterRun(name string, budget int64, body func(env *Env) error) error {
	c, err := e.host.acquireCore()
	if err != nil {
		return err
	}
	defer e.host.releaseCore(c)
	tcsV := e.claimTCS()
	defer e.releaseTCS(tcsV)

	m := e.host.K.Machine()
	sp := m.Rec.BeginSpan(c.ID, uint64(e.secs.EID), "ecall:"+name)
	defer sp.End()
	m.Rec.ChargeTo(uint64(e.secs.EID), c.ID, trace.EvECall, 0)
	callStart := m.Rec.Cycles()
	if err := m.EEnter(c, e.secs, tcsV, false); err != nil {
		return err
	}
	env := &Env{E: e, C: c, tcsV: tcsV}
	if budget > 0 {
		env.deadline = callStart + budget
		env.budget = budget
	}
	ferr := body(env)
	// The tRTS scrubs the register file before leaving the enclave.
	c.Regs.Scrub()
	if !c.InEnclave() {
		// The core was evacuated mid-call: either the panic containment
		// above ran EmergencyExit, or an injected interrupt storm failed to
		// resume a poisoned enclave. Scrub the stranded TCS so the slot is
		// reusable after the enclave is rebuilt.
		if t, terr := e.secs.FindTCS(tcsV); terr == nil {
			m.ScrubTCS(t)
		}
		m.Rec.Observe(trace.OpECall, m.Rec.Cycles()-callStart)
		if ferr == nil {
			ferr = fmt.Errorf("sdk: enclave evacuated mid-call")
		}
		if _, isCrash := IsCrash(ferr); isCrash {
			return ferr
		}
		return &EnclaveError{Enclave: e.img.Name, Call: name, Err: ferr}
	}
	if err := m.EExit(c, true); err != nil {
		return err
	}
	m.Rec.Observe(trace.OpECall, m.Rec.Cycles()-callStart)
	if ferr != nil {
		if _, isCrash := IsCrash(ferr); isCrash {
			return ferr
		}
		return &EnclaveError{Enclave: e.img.Name, Call: name, Err: ferr}
	}
	return nil
}

// runTrusted runs a trusted function with panic containment: a panic inside
// the enclave poisons it, force-evacuates the core (scrubbing registers and
// every suspended frame of the nested chain, so no secrets survive), and
// converts the crash into a typed error.
func runTrusted(env *Env, call string, fn TrustedFunc, args []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			m := env.E.host.K.Machine()
			eid := env.E.secs.EID
			m.PoisonEnclave(eid, fmt.Sprintf("trusted code panic in %s: %v", call, r))
			m.EmergencyExit(env.C)
			out, err = nil, &EnclaveCrashed{Enclave: env.E.img.Name, Call: call, EID: eid, Panic: r}
		}
	}()
	return fn(env, args)
}

// EnclaveError marks failures raised by enclave code (as opposed to
// transition faults).
type EnclaveError struct {
	Enclave string
	Call    string
	Err     error
}

func (e *EnclaveError) Error() string {
	return fmt.Sprintf("enclave %s: %s: %v", e.Enclave, e.Call, e.Err)
}

func (e *EnclaveError) Unwrap() error { return e.Err }
