package sdk

import (
	"errors"
	"fmt"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// EnclaveCrashed is the typed error surfaced when trusted code panics inside
// an enclave: the runtime contains the crash (scrubbing registers and the
// saved-state area, poisoning the enclave) instead of letting the panic take
// down the host process. The enclave refuses further entries until it is
// destroyed and reloaded — see Supervisor.
type EnclaveCrashed struct {
	Enclave string
	Call    string
	EID     isa.EID
	Panic   any
}

func (e *EnclaveCrashed) Error() string {
	return fmt.Sprintf("enclave %s crashed in %s: %v", e.Enclave, e.Call, e.Panic)
}

// IsCrash reports whether err (or anything it wraps) marks an enclave crash.
func IsCrash(err error) (*EnclaveCrashed, bool) {
	var ec *EnclaveCrashed
	if errors.As(err, &ec) {
		return ec, true
	}
	return nil, false
}

// CallTimeout is returned by every trusted-runtime operation of a call whose
// cycle budget (ECallWithin) has expired: the first expiry is delivered as a
// real AEX + ERESUME preemption, after which the trusted code is expected to
// observe this error and unwind promptly.
type CallTimeout struct {
	Enclave string
	Budget  int64
}

func (e *CallTimeout) Error() string {
	return fmt.Sprintf("enclave %s: call exceeded budget of %d cycles", e.Enclave, e.Budget)
}

// RetryPolicy retries transient faults (EPC pressure, injected channel loss)
// with exponential backoff and deterministic jitter. Backoff is simulated
// time — it advances the machine clock, not the wall clock — so retried runs
// replay exactly.
type RetryPolicy struct {
	// MaxAttempts caps total tries (0 → 4).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff in simulated cycles (0 → 1000).
	BaseBackoff int64
	// MaxBackoff caps the exponential growth (0 → 64 × BaseBackoff).
	MaxBackoff int64
	// Seed drives the jitter stream.
	Seed uint64
}

// Run invokes f until it succeeds, fails permanently, or attempts are
// exhausted. Only errors matching chaos.ErrTransient are retried. On success
// after a transient failure, the failure's fault site (if chaos-injected) is
// credited a recovery via inj. rec and inj may be nil.
func (p RetryPolicy) Run(rec *trace.Recorder, inj *chaos.Injector, f func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	base := p.BaseBackoff
	if base <= 0 {
		base = 1000
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 64 * base
	}
	state := p.Seed
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			backoff := base << (a - 1)
			if backoff <= 0 || backoff > maxB {
				backoff = maxB
			}
			state = chaos.Mix(state)
			jitter := int64(state % uint64(backoff/2+1))
			if rec != nil {
				rec.Advance(backoff + jitter)
			}
		}
		err := f()
		if err == nil {
			if lastErr != nil {
				inj.RecoverFrom(lastErr)
			}
			return nil
		}
		lastErr = err
		if !errors.Is(err, chaos.ErrTransient) {
			return err
		}
	}
	return fmt.Errorf("sdk: %d attempts exhausted: %w", attempts, lastErr)
}
