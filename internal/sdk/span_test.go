package sdk_test

import (
	"errors"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/trace"
)

// spansByName indexes completed spans; duplicate names keep the last.
func spansByName(spans []trace.Span) map[string][]trace.Span {
	m := map[string][]trace.Span{}
	for _, s := range spans {
		m[s.Name] = append(m[s.Name], s)
	}
	return m
}

// assertNoOpenSpans fails if any core still has an open span after the calls
// unwound — the invariant the spanpair nescheck rule guards statically and
// the crash/timeout tests below guard dynamically.
func assertNoOpenSpans(t *testing.T, rec *trace.Recorder, cores int) {
	t.Helper()
	rec.SetSpanHint(0) // CurrentSpan(NoCore) falls back to the hint
	for c := -1; c < cores; c++ {
		if id := rec.CurrentSpan(c); id != 0 {
			t.Errorf("core %d still has open span %d after unwind", c, id)
		}
	}
}

// TestSpanNestedCallChain reconstructs the host → inner enclave → outer
// service call tree of the nested SQL pattern from the span log alone:
// ecall:run is a root span and n_ocall:svc is its child, once per query.
func TestSpanNestedCallChain(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	rec := r.m.Rec
	rec.EnableObservation(1 << 12)

	outerImg := sdk.NewImage("outer", 0x2000_0000, sdk.DefaultLayout())
	outerImg.RegisterNOCall("svc", func(env *sdk.Env, args []byte) ([]byte, error) {
		return append([]byte("svc:"), args...), nil
	})
	innerImg := sdk.NewImage("inner", 0x1000_0000, sdk.DefaultLayout())
	innerImg.RegisterECall("run", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NOCall("svc", args)
	})
	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}

	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := inner.ECall("run", []byte("q")); err != nil {
			t.Fatal(err)
		}
	}

	byName := spansByName(rec.Spans())
	roots, svcs := byName["ecall:run"], byName["n_ocall:svc"]
	if len(roots) != calls || len(svcs) != calls {
		t.Fatalf("got %d ecall:run and %d n_ocall:svc spans, want %d each",
			len(roots), len(svcs), calls)
	}
	rootIDs := map[uint64]bool{}
	for _, s := range roots {
		if s.Parent != 0 {
			t.Errorf("ecall:run span %d has parent %d, want root", s.ID, s.Parent)
		}
		if s.EID != uint64(inner.SECS().EID) {
			t.Errorf("ecall:run span billed to EID %d, want inner %d", s.EID, inner.SECS().EID)
		}
		rootIDs[s.ID] = true
	}
	for _, s := range svcs {
		if !rootIDs[s.Parent] {
			t.Errorf("n_ocall:svc span %d has parent %d, not an ecall:run span", s.ID, s.Parent)
		}
		if s.EID != uint64(outer.SECS().EID) {
			t.Errorf("n_ocall:svc span billed to EID %d, want outer %d", s.EID, outer.SECS().EID)
		}
	}
	assertNoOpenSpans(t, rec, 8)
}

// TestSpanClosedOnCrash pins span closure through the panic-unwind path: a
// trusted-code panic surfaces as *EnclaveCrashed AND the ecall's span is
// closed by the deferred End — no frame may stay open on the core stack, or
// every later event on that core would be misattributed to a dead call.
func TestSpanClosedOnCrash(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	rec := r.m.Rec
	rec.EnableObservation(1 << 10)

	img := sdk.NewImage("crashy", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("boom", func(env *sdk.Env, args []byte) ([]byte, error) {
		panic("trusted bug")
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))

	_, err := e.ECall("boom", nil)
	if _, ok := sdk.IsCrash(err); !ok {
		t.Fatalf("want *EnclaveCrashed, got %v", err)
	}

	byName := spansByName(rec.Spans())
	booms := byName["ecall:boom"]
	if len(booms) != 1 {
		t.Fatalf("got %d completed ecall:boom spans, want 1 (closed through panic unwind)", len(booms))
	}
	if sp := booms[0]; sp.End < sp.Start {
		t.Errorf("crash span [%d,%d] never properly closed", sp.Start, sp.End)
	}
	assertNoOpenSpans(t, rec, 8)
}

// TestSpanClosedOnTimeout pins span closure through the deadline path: an
// expired call budget unwinds with *CallTimeout and still closes the span.
func TestSpanClosedOnTimeout(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	rec := r.m.Rec
	rec.EnableObservation(1 << 10)

	img := sdk.NewImage("slow", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("spin", func(env *sdk.Env, args []byte) ([]byte, error) {
		buf, err := env.Malloc(64)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 1_000_000; i++ {
			if err := env.Write(buf, make([]byte, 64)); err != nil {
				return nil, err
			}
		}
		return []byte("done"), nil
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))

	_, err := e.ECallWithin("spin", nil, 50_000)
	var to *sdk.CallTimeout
	if !errors.As(err, &to) {
		t.Fatalf("want *CallTimeout, got %v", err)
	}

	byName := spansByName(rec.Spans())
	spins := byName["ecall:spin"]
	if len(spins) != 1 {
		t.Fatalf("got %d completed ecall:spin spans, want 1 (closed through timeout unwind)", len(spins))
	}
	assertNoOpenSpans(t, rec, 8)
}

// TestSpanSupervisorRestart verifies the restart span: a supervised crash
// produces a machine-global restart span enclosing the reload, so recovery
// cost is visible in the call tree.
func TestSpanSupervisorRestart(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	rec := r.m.Rec
	rec.EnableObservation(1 << 12)

	img := sdk.NewImage("svc", 0x1000_0000, sdk.DefaultLayout())
	crashed := false // the first call panics; the reloaded instance serves
	img.RegisterECall("maybe", func(env *sdk.Env, args []byte) ([]byte, error) {
		if !crashed {
			crashed = true
			panic("induced")
		}
		return []byte("ok"), nil
	})
	sup, err := sdk.Supervise(r.host, img.Sign(measure.MustNewAuthor(), nil, nil), sdk.SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Call("maybe", nil); err != nil {
		t.Fatalf("supervised call failed to recover: %v", err)
	}
	if sup.Restarts() == 0 {
		t.Fatal("no restart happened; the test exercised nothing")
	}

	byName := spansByName(rec.Spans())
	restarts := byName["restart:svc"]
	if len(restarts) != sup.Restarts() {
		t.Fatalf("got %d restart:svc spans, want %d", len(restarts), sup.Restarts())
	}
	for _, s := range restarts {
		if s.Core != trace.NoCore {
			t.Errorf("restart span on core %d, want machine-global NoCore", s.Core)
		}
		if s.Cycles() <= 0 {
			t.Errorf("restart span has %d cycles, want > 0 (reload is not free)", s.Cycles())
		}
	}
	assertNoOpenSpans(t, rec, 8)
}
