// Package sdk is the enclave software development kit of the simulator: the
// equivalent of Intel's SDK that the paper extended. It provides
//
//   - enclave images: a declarative layout (code/data/heap/TCS pages) plus a
//     trusted function table, with deterministic content so measurements are
//     reproducible, and author signing (the "signed enclave file");
//   - the untrusted runtime (uRTS): loading images through the kernel
//     driver, dispatching ecalls, serving ocalls;
//   - the trusted runtime (tRTS): the in-enclave execution environment (Env)
//     through which enclave code accesses its memory, its heap, and the
//     transition interfaces — ecall/ocall from the original SGX, and the
//     paper's n_ecall/n_ocall between outer and inner enclaves.
package sdk

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
)

// TrustedFunc is an enclave entry point: code that runs inside the enclave.
type TrustedFunc func(env *Env, args []byte) ([]byte, error)

// HostFunc is an untrusted ocall handler.
type HostFunc func(args []byte) ([]byte, error)

// Layout sizes an enclave image. One page is 4 KiB.
type Layout struct {
	CodePages int // measured, RX
	DataPages int // measured, RW (initialized data)
	HeapPages int // unmeasured, RW, zero-initialized
	NumTCS    int
	// ReservedHeapPages reserves ELRANGE space (no EPC pages at load time)
	// that GrowHeap can populate after initialization with SGX2-style EAUG.
	// ELRANGE is immutable, so growth capacity must be declared up front.
	ReservedHeapPages int
}

// DefaultLayout is a small enclave: 16 KiB code, 16 KiB data, 64 KiB heap.
func DefaultLayout() Layout {
	return Layout{CodePages: 4, DataPages: 4, HeapPages: 16, NumTCS: 2}
}

// Image is an unsigned enclave image: the layout, deterministic page
// contents, and the interface tables (the EDL).
type Image struct {
	Name string
	Base isa.VAddr
	L    Layout

	// ECalls are entry points callable from the untrusted host (and, for
	// inner enclaves, the targets of n_ecalls from the outer enclave).
	ECalls map[string]TrustedFunc
	// NOCalls are functions this enclave exposes to its *inner* enclaves
	// via n_ocall (the "library functions isolated in the outer enclave").
	NOCalls map[string]TrustedFunc
	// AllowedOCalls restricts which host functions this enclave's code may
	// invoke; empty means none (the EDL's untrusted interface).
	AllowedOCalls map[string]bool
	// SwitchlessOCalls marks allowed ocalls the enclave may route through
	// the host's switchless engine (Env.OCallAsync) instead of paying the
	// EEXIT/EENTER transition — the EDL's `transition_using_threads`
	// annotation. Always a subset of AllowedOCalls.
	SwitchlessOCalls map[string]bool
}

// NewImage creates an image with the given ELRANGE base and layout.
func NewImage(name string, base isa.VAddr, l Layout) *Image {
	if l.NumTCS <= 0 {
		l.NumTCS = 1
	}
	return &Image{
		Name:             name,
		Base:             base,
		L:                l,
		ECalls:           make(map[string]TrustedFunc),
		NOCalls:          make(map[string]TrustedFunc),
		AllowedOCalls:    make(map[string]bool),
		SwitchlessOCalls: make(map[string]bool),
	}
}

// RegisterECall adds an entry point.
func (img *Image) RegisterECall(name string, fn TrustedFunc) *Image {
	img.ECalls[name] = fn
	return img
}

// RegisterNOCall exposes a function to inner enclaves.
func (img *Image) RegisterNOCall(name string, fn TrustedFunc) *Image {
	img.NOCalls[name] = fn
	return img
}

// AllowOCall whitelists a host function in the EDL.
func (img *Image) AllowOCall(names ...string) *Image {
	for _, n := range names {
		img.AllowedOCalls[n] = true
	}
	return img
}

// AllowSwitchless whitelists host functions in the EDL and additionally
// marks them switchless-capable: Env.OCallAsync may serve them through the
// host's ring engine without an enclave transition. The marking is part of
// the EDL and therefore folded into the measurement.
func (img *Image) AllowSwitchless(names ...string) *Image {
	for _, n := range names {
		img.AllowedOCalls[n] = true
		img.SwitchlessOCalls[n] = true
	}
	return img
}

// Page-region accessors. The layout is consecutive from Base:
// [code][data][heap][tcs].
func (img *Image) codeBase() isa.VAddr { return img.Base }
func (img *Image) dataBase() isa.VAddr {
	return img.Base + isa.VAddr(img.L.CodePages)*isa.PageSize
}

// HeapBase returns the first heap address.
func (img *Image) HeapBase() isa.VAddr {
	return img.dataBase() + isa.VAddr(img.L.DataPages)*isa.PageSize
}

// HeapSize returns the heap length in bytes.
func (img *Image) HeapSize() uint64 { return uint64(img.L.HeapPages) * isa.PageSize }

func (img *Image) tcsBase() isa.VAddr {
	return img.HeapBase() + isa.VAddr(img.HeapSize())
}

// ReservedBase returns the first address of the reserved (growable) region.
func (img *Image) ReservedBase() isa.VAddr {
	return img.tcsBase() + isa.VAddr(img.L.NumTCS)*isa.PageSize
}

// TotalPages returns the number of pages populated at load time.
func (img *Image) TotalPages() int {
	return img.L.CodePages + img.L.DataPages + img.L.HeapPages + img.L.NumTCS
}

// Size returns the ELRANGE size in bytes (populated + reserved).
func (img *Image) Size() uint64 {
	return uint64(img.TotalPages()+img.L.ReservedHeapPages) * isa.PageSize
}

// interfaceDigest folds the entry table into the synthetic page content so
// an image with different code (a different function table) measures
// differently — the property attestation depends on.
func (img *Image) interfaceDigest() [32]byte {
	names := make([]string, 0, len(img.ECalls)+len(img.NOCalls)+len(img.SwitchlessOCalls))
	for n := range img.ECalls {
		names = append(names, "e:"+n)
	}
	for n := range img.NOCalls {
		names = append(names, "no:"+n)
	}
	// Switchless markings change the trusted/untrusted interface contract,
	// so they are measured; images that use none keep their measurement.
	for n := range img.SwitchlessOCalls {
		names = append(names, "sw:"+n)
	}
	sort.Strings(names)
	h := sha256.New()
	h.Write([]byte(img.Name))
	for _, n := range names {
		h.Write([]byte{0})
		h.Write([]byte(n))
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// PageContent deterministically generates the initial content of measured
// page i (counting code pages then data pages) — the stand-in for the
// compiled binary's bytes.
func (img *Image) PageContent(i int) []byte {
	seed := img.interfaceDigest()
	out := make([]byte, isa.PageSize)
	var ctr [40]byte
	copy(ctr[:32], seed[:])
	for off := 0; off < isa.PageSize; off += 32 {
		binary.LittleEndian.PutUint64(ctr[32:], uint64(i)<<32|uint64(off))
		s := sha256.Sum256(ctr[:])
		copy(out[off:], s[:])
	}
	return out
}

// buildSteps yields the (type, vaddr, perms, content, measured, entry) page
// sequence shared by Measure and the loader, in deterministic order.
type pageStep struct {
	vaddr   isa.VAddr
	typ     isa.PageType
	perms   isa.Perm
	content []byte
	measure bool
	entry   int
}

func (img *Image) buildSteps() []pageStep {
	var steps []pageStep
	for i := 0; i < img.L.CodePages; i++ {
		steps = append(steps, pageStep{
			vaddr: img.codeBase() + isa.VAddr(i)*isa.PageSize, typ: isa.PTReg,
			perms: isa.PermRX, content: img.PageContent(i), measure: true,
		})
	}
	for i := 0; i < img.L.DataPages; i++ {
		steps = append(steps, pageStep{
			vaddr: img.dataBase() + isa.VAddr(i)*isa.PageSize, typ: isa.PTReg,
			perms: isa.PermRW, content: img.PageContent(img.L.CodePages + i), measure: true,
		})
	}
	for i := 0; i < img.L.HeapPages; i++ {
		steps = append(steps, pageStep{
			vaddr: img.HeapBase() + isa.VAddr(i)*isa.PageSize, typ: isa.PTReg,
			perms: isa.PermRW, measure: false,
		})
	}
	for i := 0; i < img.L.NumTCS; i++ {
		steps = append(steps, pageStep{
			vaddr: img.tcsBase() + isa.VAddr(i)*isa.PageSize, typ: isa.PTTCS,
			entry: i, measure: false,
		})
	}
	return steps
}

// Measure computes the image's expected MRENCLAVE by replaying the build
// sequence through the measurement rules — what the enclave author does
// offline to produce the signed file.
func (img *Image) Measure() measure.Digest {
	b := measure.NewBuilder()
	b.ECreate(img.Size(), 0)
	for _, st := range img.buildSteps() {
		var perms isa.Perm
		if st.typ == isa.PTReg {
			perms = st.perms
		}
		b.EAdd(uint64(st.vaddr-img.Base), st.typ, perms)
		if st.measure {
			content := st.content
			if content == nil {
				content = make([]byte, isa.PageSize)
			}
			for ch := 0; ch < isa.PageSize; ch += isa.ExtendChunk {
				b.EExtend(uint64(st.vaddr-img.Base)+uint64(ch), content[ch:ch+isa.ExtendChunk])
			}
		}
	}
	return b.Finalize()
}

// SignedImage is the signed enclave file: image plus SIGSTRUCT.
type SignedImage struct {
	Image *Image
	Cert  *measure.SigStruct
}

// Sign produces the signed enclave file. expectedOuters/expectedInners are
// the measurements of enclaves this one may associate with (the nested
// extension to the signed file format, paper §IV-C).
func (img *Image) Sign(author *measure.Author, expectedOuters, expectedInners []measure.Digest) *SignedImage {
	return &SignedImage{
		Image: img,
		Cert:  author.Sign(img.Measure(), expectedOuters, expectedInners),
	}
}

func (img *Image) String() string {
	return fmt.Sprintf("image(%s base=%#x pages=%d tcs=%d)", img.Name, uint64(img.Base), img.TotalPages(), img.L.NumTCS)
}
