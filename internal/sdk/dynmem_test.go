package sdk_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

// Tests for SGX2-style dynamic enclave memory (EAUG / GrowHeap) and sealed
// storage.

func TestGrowHeap(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	l := sdk.DefaultLayout()
	l.HeapPages = 1
	l.ReservedHeapPages = 4
	img := sdk.NewImage("dyn", 0x1000_0000, l)
	var addr isa.VAddr
	img.RegisterECall("fill", func(env *sdk.Env, args []byte) ([]byte, error) {
		// The static heap is one page; a 3-page allocation needs growth.
		if _, err := env.Malloc(3 * isa.PageSize); err == nil {
			t.Error("oversized allocation succeeded before growth")
		}
		if err := env.GrowHeap(3); err != nil {
			return nil, err
		}
		a, err := env.Malloc(3 * isa.PageSize)
		if err != nil {
			return nil, err
		}
		addr = a
		return nil, env.Write(a, args)
	})
	img.RegisterECall("read", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.Read(addr, int(args[0]))
	})
	e := mustLoad(t, r.host, img.Sign(mustAuthor(t), nil, nil))
	data := []byte("data-in-dynamically-augmented-pages")
	if _, err := e.ECall("fill", data); err != nil {
		t.Fatalf("fill: %v", err)
	}
	got, err := e.ECall("read", []byte{byte(len(data))})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}

	// Growth beyond the reservation fails (ELRANGE is immutable).
	if err := e.GrowHeap(2); err == nil {
		t.Fatal("growth beyond reservation accepted")
	}
	// Exactly exhausting it succeeds.
	if err := e.GrowHeap(1); err != nil {
		t.Fatalf("final page growth: %v", err)
	}

	// Augmented pages are enclave memory: the host reads 0xFF.
	c := r.m.Core(0)
	if err := r.k.Schedule(c, r.host.Proc); err != nil {
		t.Fatal(err)
	}
	leak, err := c.Read(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range leak {
		if b != 0xFF {
			t.Fatalf("host read augmented page: %v", leak)
		}
	}
}

func TestEAugRejections(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("x", 0x1000_0000, sdk.DefaultLayout())
	e := mustLoad(t, r.host, img.Sign(mustAuthor(t), nil, nil))
	m := r.m
	// Uninitialized enclave: EAUG refused (EADD is the build path).
	s2, err := m.ECreate(0x9000_0000, 4*isa.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EAug(s2, 0x9000_0000, isa.PermRW); err == nil {
		t.Fatal("EAUG on uninitialized enclave accepted")
	}
	// Outside ELRANGE.
	if _, err := m.EAug(e.SECS(), 0x9999_0000, isa.PermRW); err == nil {
		t.Fatal("EAUG outside ELRANGE accepted")
	}
	// Already-backed vaddr.
	if _, err := m.EAug(e.SECS(), e.Image().HeapBase(), isa.PermRW); err == nil {
		t.Fatal("EAUG over a backed page accepted")
	}
	// Misaligned.
	if _, err := m.EAug(e.SECS(), e.Image().HeapBase()+5, isa.PermRW); err == nil {
		t.Fatal("misaligned EAUG accepted")
	}
	// Zero-growth and no-reservation guardrails at the SDK layer.
	if err := e.GrowHeap(0); err == nil {
		t.Fatal("zero growth accepted")
	}
	if err := e.GrowHeap(1); err == nil {
		t.Fatal("growth without reservation accepted")
	}
}

func TestSealUnseal(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	author := mustAuthor(t)
	imgA := sdk.NewImage("seal-a", 0x1000_0000, sdk.DefaultLayout())
	imgB := sdk.NewImage("seal-b", 0x2000_0000, sdk.DefaultLayout())

	var blobEnclave, blobSigner []byte
	secret := []byte("persist-me-across-restarts")
	imgA.RegisterECall("seal", func(env *sdk.Env, args []byte) ([]byte, error) {
		var err error
		if blobEnclave, err = env.Seal(sgx.SealToEnclave, args); err != nil {
			return nil, err
		}
		blobSigner, err = env.Seal(sgx.SealToSigner, args)
		return nil, err
	})
	imgA.RegisterECall("unseal", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.Unseal(sgx.SealToEnclave, blobEnclave)
	})
	imgB.RegisterECall("steal_enclave", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.Unseal(sgx.SealToEnclave, blobEnclave)
	})
	imgB.RegisterECall("unseal_signer", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.Unseal(sgx.SealToSigner, blobSigner)
	})

	a := mustLoad(t, r.host, imgA.Sign(author, nil, nil))
	b := mustLoad(t, r.host, imgB.Sign(author, nil, nil)) // same author

	if _, err := a.ECall("seal", secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blobEnclave, secret[:8]) {
		t.Fatal("sealed blob contains plaintext")
	}
	got, err := a.ECall("unseal", nil)
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("same-enclave unseal: %q %v", got, err)
	}
	// A different enclave cannot unseal enclave-bound blobs...
	if _, err := b.ECall("steal_enclave", nil); err == nil {
		t.Fatal("foreign enclave unsealed an MRENCLAVE-bound blob")
	}
	// ...but can unseal signer-bound blobs from the same author.
	got, err = b.ECall("unseal_signer", nil)
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("same-signer unseal: %q %v", got, err)
	}
	// Tampered blobs fail.
	blobEnclave[len(blobEnclave)-1] ^= 1
	if _, err := a.ECall("unseal", nil); err == nil {
		t.Fatal("tampered blob unsealed")
	}
}
