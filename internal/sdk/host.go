package sdk

import (
	"fmt"
	"sync"

	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/switchless"
)

// Host is the untrusted runtime (uRTS) of one application process: it loads
// enclaves through the kernel driver, owns the ocall table, and multiplexes
// ecalls over the machine's cores.
type Host struct {
	K    *kos.Kernel
	Proc *kos.Process
	// Ext is the nested-enclave extension handle, nil on a baseline-SGX
	// machine. Association and n_ecall/n_ocall require it.
	Ext *core.Extension

	mu     sync.Mutex
	ocalls map[string]HostFunc
	sw     *switchless.Engine

	cores chan *sgx.Core
}

// NewHost creates a host process on the kernel. ext may be nil for a
// baseline machine.
func NewHost(k *kos.Kernel, ext *core.Extension) *Host {
	h := &Host{
		K:      k,
		Proc:   k.NewProcess(),
		Ext:    ext,
		ocalls: make(map[string]HostFunc),
		cores:  make(chan *sgx.Core, len(k.Machine().Cores())),
	}
	for _, c := range k.Machine().Cores() {
		h.cores <- c
	}
	return h
}

// RegisterOCall installs an untrusted service function.
func (h *Host) RegisterOCall(name string, fn HostFunc) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ocalls[name] = fn
}

func (h *Host) ocall(name string) (HostFunc, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fn, ok := h.ocalls[name]
	return fn, ok
}

// StartSwitchless launches (creating on first use) the host's switchless
// ocall engine: host worker goroutines servicing per-core request rings so
// enclaves can invoke switchless-marked ocalls without an EEXIT/EENTER pair
// (Env.OCallAsync). The engine resolves requests against the host's ocall
// table. Zero-value cfg fields take defaults; Rings defaults to the
// machine's core count.
func (h *Host) StartSwitchless(cfg switchless.Config) *switchless.Engine {
	h.mu.Lock()
	if h.sw == nil {
		if cfg.Rings <= 0 {
			cfg.Rings = len(h.K.Machine().Cores())
		}
		h.sw = switchless.New(h.K.Machine().Rec, func(name string) (switchless.HostFunc, bool) {
			fn, ok := h.ocall(name)
			if !ok {
				return nil, false
			}
			return switchless.HostFunc(fn), true
		}, cfg)
	}
	sw := h.sw
	h.mu.Unlock()
	sw.Start()
	return sw
}

// StopSwitchless halts the engine's workers; in-flight requests drain and
// later OCallAsync invocations fall back to the synchronous path.
func (h *Host) StopSwitchless() {
	h.mu.Lock()
	sw := h.sw
	h.mu.Unlock()
	if sw != nil {
		sw.Stop()
	}
}

// Switchless returns the engine, nil before the first StartSwitchless.
func (h *Host) Switchless() *switchless.Engine {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sw
}

// acquireCore takes a core from the pool and installs the host's address
// space on it if needed. A scheduling failure returns the core to the pool
// and propagates the error through the calling ecall.
func (h *Host) acquireCore() (*sgx.Core, error) {
	c := <-h.cores
	if c.PT != h.Proc.PageTable() {
		// Context switch: new CR3, TLB flush.
		if err := h.K.Schedule(c, h.Proc); err != nil {
			h.cores <- c
			return nil, fmt.Errorf("sdk: schedule: %w", err)
		}
	}
	return c, nil
}

func (h *Host) releaseCore(c *sgx.Core) { h.cores <- c }

// Load builds the enclave from its signed image: ECREATE, EADD/EEXTEND per
// page, EINIT against the certificate. The returned handle is live.
func (h *Host) Load(si *SignedImage) (*Enclave, error) {
	img := si.Image
	s, err := h.K.Driver.CreateEnclave(img.Base, img.Size(), 0)
	if err != nil {
		return nil, fmt.Errorf("sdk: load %s: %w", img.Name, err)
	}
	for _, st := range img.buildSteps() {
		args := sgx.AddPageArgs{
			Vaddr:   st.vaddr,
			Type:    st.typ,
			Perms:   st.perms,
			Content: st.content,
			Entry:   st.entry,
			Measure: st.measure,
		}
		if err := h.K.Driver.AddPage(h.Proc, s, args); err != nil {
			_ = h.K.Driver.DestroyEnclave(h.Proc, s)
			return nil, fmt.Errorf("sdk: load %s: %w", img.Name, err)
		}
	}
	if err := h.K.Driver.InitEnclave(s, si.Cert); err != nil {
		_ = h.K.Driver.DestroyEnclave(h.Proc, s)
		return nil, fmt.Errorf("sdk: load %s: %w", img.Name, err)
	}
	e := &Enclave{
		host:    h,
		img:     img,
		secs:    s,
		tcsFree: make(chan isa.VAddr, img.L.NumTCS),
	}
	for i := 0; i < img.L.NumTCS; i++ {
		e.tcsFree <- img.tcsBase() + isa.VAddr(i)*isa.PageSize
	}
	return e, nil
}

// Associate binds inner to outer with NASSO (kernel privilege) and links the
// SDK handles so n_ecall/n_ocall can route.
func (h *Host) Associate(inner, outer *Enclave) error {
	if h.Ext == nil {
		return fmt.Errorf("sdk: machine has no nested-enclave support")
	}
	if err := h.Ext.NASSO(inner.secs, outer.secs); err != nil {
		return err
	}
	inner.mu.Lock()
	inner.outers = append(inner.outers, outer)
	inner.mu.Unlock()
	outer.mu.Lock()
	outer.inners = append(outer.inners, inner)
	outer.mu.Unlock()
	return nil
}

// Destroy tears the enclave down and unlinks its SDK association handles in
// both directions, so a partner enclave that later restarts the pair does
// not route n_ecalls through a stale handle. (The machine-level
// associations die with the SECS at EREMOVE; this mirrors that for the SDK
// routing state.)
func (h *Host) Destroy(e *Enclave) error {
	e.mu.Lock()
	outers, inners := e.outers, e.inners
	e.outers, e.inners = nil, nil
	e.mu.Unlock()
	for _, o := range outers {
		o.mu.Lock()
		o.inners = removeHandle(o.inners, e)
		o.mu.Unlock()
	}
	for _, i := range inners {
		i.mu.Lock()
		i.outers = removeHandle(i.outers, e)
		i.mu.Unlock()
	}
	return h.K.Driver.DestroyEnclave(h.Proc, e.secs)
}

func removeHandle(list []*Enclave, e *Enclave) []*Enclave {
	out := list[:0]
	for _, x := range list {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}
