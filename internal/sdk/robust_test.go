package sdk_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/core"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

// --- Panic containment ---

func TestECallPanicContained(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("crashy", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("boom", func(env *sdk.Env, args []byte) ([]byte, error) {
		panic("trusted bug")
	})
	img.RegisterECall("ok", func(env *sdk.Env, args []byte) ([]byte, error) {
		return []byte("fine"), nil
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))

	_, err := e.ECall("boom", nil)
	ec, ok := sdk.IsCrash(err)
	if !ok {
		t.Fatalf("want *EnclaveCrashed, got %v", err)
	}
	if ec.EID != e.SECS().EID || !strings.Contains(fmt.Sprint(ec.Panic), "trusted bug") {
		t.Fatalf("crash = %+v", ec)
	}

	// The crash must not leak enclave state: every core is out of enclave
	// mode with scrubbed registers, and the machine invariants hold.
	if v := r.m.AuditInvariants(); len(v) > 0 {
		t.Fatalf("invariants violated after contained crash: %v", v)
	}

	// The poisoned enclave refuses further entries...
	if _, err := e.ECall("ok", nil); err == nil {
		t.Fatal("poisoned enclave accepted a new ecall")
	}
	reason, poisoned := r.m.PoisonedReason(e.SECS().EID)
	if !poisoned || !strings.Contains(reason, "panic") {
		t.Fatalf("poison state = %q, %v", reason, poisoned)
	}

	// ...until it is destroyed (EREMOVE clears the mark) and reloaded.
	if err := r.host.Destroy(e); err != nil {
		t.Fatal(err)
	}
	e2 := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))
	out, err := e2.ECall("ok", nil)
	if err != nil || string(out) != "fine" {
		t.Fatalf("reloaded enclave: %q, %v", out, err)
	}
}

func TestNestedPanicPoisonsOnlyCrashedEnclave(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	outerImg := sdk.NewImage("outer", 0x2000_0000, sdk.DefaultLayout())
	outerImg.RegisterNOCall("svc", func(env *sdk.Env, args []byte) ([]byte, error) {
		panic("outer service bug")
	})
	innerImg := sdk.NewImage("inner", 0x1000_0000, sdk.DefaultLayout())
	innerImg.RegisterECall("run", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NOCall("svc", args)
	})
	innerImg.RegisterECall("ok", func(env *sdk.Env, args []byte) ([]byte, error) {
		return []byte("alive"), nil
	})
	si, so := signPair(t, innerImg, outerImg)
	outer := mustLoad(t, r.host, so)
	inner := mustLoad(t, r.host, si)
	if err := r.host.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}

	_, err := inner.ECall("run", nil)
	ec, ok := sdk.IsCrash(err)
	if !ok || ec.EID != outer.SECS().EID {
		t.Fatalf("want outer crash, got %v", err)
	}
	// The outer is poisoned; the inner survives and keeps serving.
	if _, poisoned := r.m.PoisonedReason(outer.SECS().EID); !poisoned {
		t.Fatal("outer not poisoned")
	}
	if _, poisoned := r.m.PoisonedReason(inner.SECS().EID); poisoned {
		t.Fatal("inner wrongly poisoned by outer's crash")
	}
	out, err := inner.ECall("ok", nil)
	if err != nil || string(out) != "alive" {
		t.Fatalf("inner after outer crash: %q, %v", out, err)
	}
	if v := r.m.AuditInvariants(); len(v) > 0 {
		t.Fatalf("invariants violated: %v", v)
	}
}

// --- Deadlines ---

func TestECallWithinDeadline(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	img := sdk.NewImage("slow", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("spin", func(env *sdk.Env, args []byte) ([]byte, error) {
		// A loop of trusted-runtime operations: the preemption hook on each
		// one observes the expired budget and fails the call.
		buf, err := env.Malloc(64)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 1_000_000; i++ {
			if err := env.Write(buf, make([]byte, 64)); err != nil {
				return nil, err
			}
		}
		return []byte("done"), nil
	})
	e := mustLoad(t, r.host, img.Sign(measure.MustNewAuthor(), nil, nil))

	_, err := e.ECallWithin("spin", nil, 50_000)
	var to *sdk.CallTimeout
	if !errors.As(err, &to) {
		t.Fatalf("want *CallTimeout, got %v", err)
	}
	if to.Budget != 50_000 {
		t.Fatalf("timeout = %+v", to)
	}
	// A timeout is a clean unwind, not a crash: the enclave stays usable.
	if _, poisoned := r.m.PoisonedReason(e.SECS().EID); poisoned {
		t.Fatal("timeout poisoned the enclave")
	}
	if v := r.m.AuditInvariants(); len(v) > 0 {
		t.Fatalf("invariants violated after timeout: %v", v)
	}
}

// --- Retry policy ---

func TestRetryPolicyRetriesTransientsOnly(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	calls := 0
	err := sdk.RetryPolicy{MaxAttempts: 5}.Run(r.m.Rec, nil, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky: %w", chaos.ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient retry: calls=%d err=%v", calls, err)
	}

	calls = 0
	permanent := errors.New("permanent")
	err = sdk.RetryPolicy{MaxAttempts: 5}.Run(r.m.Rec, nil, func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryPolicyBackoffAdvancesSimulatedClock(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	before := r.m.Rec.Cycles()
	_ = sdk.RetryPolicy{MaxAttempts: 3, BaseBackoff: 10_000}.Run(r.m.Rec, nil, func() error {
		return fmt.Errorf("always: %w", chaos.ErrTransient)
	})
	if got := r.m.Rec.Cycles() - before; got < 30_000 {
		t.Fatalf("backoff advanced only %d cycles", got)
	}
}

// --- EPC pressure as a transient fault ---

func TestEPCPressureIsTransient(t *testing.T) {
	if !errors.Is(kos.ErrEPCPressure, chaos.ErrTransient) {
		t.Fatal("EPC pressure not classified transient")
	}
}

// --- Supervisor: restart with sealed-state recovery ---

func TestSupervisorRestartRecoversSealedState(t *testing.T) {
	r := newRig(t, core.TwoLevel())

	// A stateful counter service, keyed by EID so a reloaded instance starts
	// from zero unless the sealed checkpoint is replayed into it.
	counts := map[uint64]int{}
	img := sdk.NewImage("counter", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("incr", func(env *sdk.Env, args []byte) ([]byte, error) {
		eid := uint64(env.E.SECS().EID)
		counts[eid]++
		sealed, err := env.Seal(sgx.SealToEnclave, []byte{byte(counts[eid])})
		if err != nil {
			return nil, err
		}
		return append([]byte{byte(counts[eid])}, sealed...), nil
	})
	img.RegisterECall("restore", func(env *sdk.Env, args []byte) ([]byte, error) {
		pt, err := env.Unseal(sgx.SealToEnclave, args)
		if err != nil {
			return nil, err
		}
		counts[uint64(env.E.SECS().EID)] = int(pt[0])
		return nil, nil
	})
	img.RegisterECall("crash", func(env *sdk.Env, args []byte) ([]byte, error) {
		panic("induced")
	})

	sup, err := sdk.Supervise(r.host, img.Sign(measure.MustNewAuthor(), nil, nil), sdk.SupervisorConfig{
		RestoreECall: "restore",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		out, err := sup.Call("incr", nil)
		if err != nil {
			t.Fatal(err)
		}
		if int(out[0]) != i {
			t.Fatalf("count = %d, want %d", out[0], i)
		}
		sup.Checkpoint(out[1:])
	}
	firstEID := sup.Enclave().SECS().EID

	// Crash it. Crashed() must recognize the wreckage and Restart must bring
	// up a fresh instance with the counter restored from the sealed blob.
	_, cerr := sup.Enclave().ECall("crash", nil)
	if !sup.Crashed(cerr) {
		t.Fatalf("crash not recognized: %v", cerr)
	}
	if err := sup.Restart(); err != nil {
		t.Fatal(err)
	}
	if sup.Restarts() != 1 {
		t.Fatalf("restarts = %d", sup.Restarts())
	}
	if sup.Enclave().SECS().EID == firstEID {
		t.Fatal("restart did not produce a fresh instance")
	}
	out, err := sup.Call("incr", nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(out[0]) != 4 {
		t.Fatalf("after recovery count = %d, want 4 (sealed state lost)", out[0])
	}
}

func TestSupervisorCallRestartsThroughCrashes(t *testing.T) {
	r := newRig(t, core.TwoLevel())
	crashuntil := 2 // the first N calls crash
	calls := 0
	img := sdk.NewImage("wobbly", 0x1000_0000, sdk.DefaultLayout())
	img.RegisterECall("work", func(env *sdk.Env, args []byte) ([]byte, error) {
		calls++
		if calls <= crashuntil {
			panic("still warming up")
		}
		return []byte("ok"), nil
	})
	sup, err := sdk.Supervise(r.host, img.Sign(measure.MustNewAuthor(), nil, nil), sdk.SupervisorConfig{
		Retry: sdk.RetryPolicy{MaxAttempts: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sup.Call("work", nil)
	if err != nil || string(out) != "ok" {
		t.Fatalf("call = %q, %v", out, err)
	}
	if sup.Restarts() != 2 {
		t.Fatalf("restarts = %d, want 2", sup.Restarts())
	}
	if v := r.m.AuditInvariants(); len(v) > 0 {
		t.Fatalf("invariants violated: %v", v)
	}
}
