package switchless

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"nestedenclave/internal/trace"
)

func echoResolver(name string) (HostFunc, bool) {
	if name != "echo" {
		return nil, false
	}
	return func(args []byte) ([]byte, error) {
		out := make([]byte, len(args))
		copy(out, args)
		return out, nil
	}, true
}

func TestSubmitCompletesAndCharges(t *testing.T) {
	rec := &trace.Recorder{}
	e := New(rec, echoResolver, Config{})
	e.Start()
	defer e.Stop()

	const n = 100
	for i := 0; i < n; i++ {
		arg := []byte{byte(i), 0xAB}
		out, err, ok := e.Submit(0, 7, "echo", arg)
		if !ok || err != nil {
			t.Fatalf("submit %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(out, arg) {
			t.Fatalf("submit %d: echo mismatch %v", i, out)
		}
	}
	if got := rec.Get(trace.EvSwitchless); got != 2*n {
		t.Fatalf("switchless event count %d, want %d (submit+service legs)", got, 2*n)
	}
	if got := rec.Get(trace.EvSwitchlessFallback); got != 0 {
		t.Fatalf("unexpected fallbacks: %d", got)
	}
	if got := rec.Cycles(); got != n*(trace.CostRingSubmit+trace.CostRingService) {
		t.Fatalf("cycles %d, want %d", got, n*(trace.CostRingSubmit+trace.CostRingService))
	}
	st := e.Stats()
	if st.Submitted != n || st.Completed != n || st.Fallbacks != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxOccupancy < 1 {
		t.Fatalf("max occupancy %d", st.MaxOccupancy)
	}
}

// TestCycleDeterminism re-runs the same request sequence on fresh engines
// and requires bit-identical simulated time and counters: the ring protocol
// must charge per request, never per spin or per host-scheduling accident.
func TestCycleDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		rec := &trace.Recorder{}
		e := New(rec, echoResolver, Config{Workers: 2})
		e.Start()
		defer e.Stop()
		for i := 0; i < 500; i++ {
			if _, err, ok := e.Submit(i%4, uint64(1+i%3), "echo", []byte{byte(i)}); !ok || err != nil {
				t.Fatalf("submit %d: ok=%v err=%v", i, ok, err)
			}
		}
		return rec.Cycles(), rec.Get(trace.EvSwitchless), rec.Get(trace.EvSwitchlessFallback)
	}
	c1, s1, f1 := run()
	c2, s2, f2 := run()
	if c1 != c2 || s1 != s2 || f1 != f2 {
		t.Fatalf("non-deterministic: run1=(%d,%d,%d) run2=(%d,%d,%d)", c1, s1, f1, c2, s2, f2)
	}
}

// TestProducerConsumerHammer drives one producer per ring from many
// goroutines against several workers; run under -race this exercises the
// slot hand-over protocol.
func TestProducerConsumerHammer(t *testing.T) {
	rec := &trace.Recorder{}
	const producers = 8
	e := New(rec, func(name string) (HostFunc, bool) {
		return func(args []byte) ([]byte, error) {
			out := make([]byte, len(args))
			copy(out, args)
			return out, nil
		}, true
	}, Config{Rings: producers, Workers: 3})
	e.Start()
	defer e.Stop()

	const perProducer = 400
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				arg := []byte{byte(core), byte(i), byte(i >> 8)}
				out, err, ok := e.Submit(core, uint64(core+1), fmt.Sprintf("fn%d", core), arg)
				if !ok || err != nil {
					errs <- fmt.Errorf("core %d submit %d: ok=%v err=%v", core, i, ok, err)
					return
				}
				if !bytes.Equal(out, arg) {
					errs <- fmt.Errorf("core %d submit %d: payload mismatch", core, i)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Completed != producers*perProducer {
		t.Fatalf("completed %d, want %d", st.Completed, producers*perProducer)
	}
	want := int64(producers * perProducer * (trace.CostRingSubmit + trace.CostRingService))
	if got := rec.Cycles(); got != want {
		t.Fatalf("cycles %d, want %d (fixed per-request charging)", got, want)
	}
}

// TestStoppedEngineFallsBack: a stopped engine must refuse requests so the
// caller takes the synchronous path.
func TestStoppedEngineFallsBack(t *testing.T) {
	rec := &trace.Recorder{}
	e := New(rec, echoResolver, Config{})
	if _, _, ok := e.Submit(0, 1, "echo", nil); ok {
		t.Fatal("submit on never-started engine succeeded")
	}
	e.Start()
	if _, err, ok := e.Submit(0, 1, "echo", []byte{1}); !ok || err != nil {
		t.Fatalf("running engine refused: ok=%v err=%v", ok, err)
	}
	e.Stop()
	if _, _, ok := e.Submit(0, 1, "echo", nil); ok {
		t.Fatal("submit on stopped engine succeeded")
	}
}

// TestSpinToFallbackStarvation starves a posted request (no workers are
// running) and advances the simulated clock past the wait budget: the
// producer must cancel the slot, charge the fallback event, and report
// ok=false — without ever charging for the spinning itself.
func TestSpinToFallbackStarvation(t *testing.T) {
	rec := &trace.Recorder{}
	e := New(rec, echoResolver, Config{WaitBudget: 10_000})
	// Force the engine to accept submissions without any worker: start, then
	// stop is not usable (stop flips the stopped flag), so flip the flag
	// directly — this models workers that exist but never get scheduled.
	e.stopped.Store(false)

	done := make(chan struct{})
	var out []byte
	var ok bool
	go func() {
		defer close(done)
		out, _, ok = e.Submit(0, 9, "echo", []byte{1})
	}()

	// Wait until the request is posted, then advance simulated time past the
	// budget; the producer's next poll must cancel and fall back.
	for e.submitted.Load() == 0 {
		runtime.Gosched()
	}
	rec.Advance(20_000)
	<-done

	if ok || out != nil {
		t.Fatalf("starved submit did not fall back: ok=%v out=%v", ok, out)
	}
	if got := rec.Get(trace.EvSwitchlessFallback); got != 1 {
		t.Fatalf("fallback count %d", got)
	}
	st := e.Stats()
	if st.Fallbacks != 1 || st.Completed != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Total simulated time: the submit charge plus the test's advance —
	// nothing accrued while spinning.
	if got := rec.Cycles(); got != trace.CostRingSubmit+20_000 {
		t.Fatalf("cycles %d", got)
	}
	// The cancelled slot must be reusable.
	e.Start()
	defer e.Stop()
	if _, err, ok := e.Submit(0, 9, "echo", []byte{2}); !ok || err != nil {
		t.Fatalf("post-starvation submit: ok=%v err=%v", ok, err)
	}
}

// TestRingFullFallsBack laps the ring with cancelled slots' successors: with
// a 1-slot ring and a dead worker holding a claim, the producer's next
// submit must fall back instead of overwriting the in-flight slot.
func TestRingFullFallsBack(t *testing.T) {
	rec := &trace.Recorder{}
	e := New(rec, echoResolver, Config{Rings: 1, SlotsPerRing: 1})
	e.stopped.Store(false)
	// Simulate a worker that claimed the slot and stalled: post, claim, then
	// try to submit again from the producer.
	r := e.rings[0]
	r.slots[0].state.Store(slotClaimed)
	r.tail++ // the producer already posted the in-flight request
	if _, _, ok := e.Submit(0, 1, "echo", nil); ok {
		t.Fatal("submit into a full ring succeeded")
	}
	if got := rec.Get(trace.EvSwitchlessFallback); got != 1 {
		t.Fatalf("fallback count %d", got)
	}
}

// TestUnknownNameErrors: a name the resolver cannot supply completes with an
// error (the sdk normally screens names before submitting).
func TestUnknownNameErrors(t *testing.T) {
	rec := &trace.Recorder{}
	e := New(rec, echoResolver, Config{})
	e.Start()
	defer e.Stop()
	_, err, ok := e.Submit(0, 1, "nope", nil)
	if !ok || err == nil {
		t.Fatalf("unknown name: ok=%v err=%v", ok, err)
	}
}
