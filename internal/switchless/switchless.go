// Package switchless implements Occlum-style asynchronous (switchless)
// calls: bounded shared-ring request/response queues between enclave threads
// and host worker goroutines, so a hot ocall becomes an enqueue + poll
// instead of a full EEXIT/EENTER transition pair.
//
// Protocol. Each ring is single-producer/single-consumer: the producer is
// the enclave thread executing on one core (a core runs at most one enclave
// thread at a time, so per-core rings are SPSC by construction), the
// consumer is any of the engine's host workers — slots hand over by
// compare-and-swap, so multiple workers scanning the same ring never
// double-claim. A slot moves empty → posted → claimed → done and back to
// empty when the producer consumes the response; a posted slot that no
// worker has claimed can be cancelled (posted → empty) by the producer,
// which then falls back to the synchronous call path.
//
// Cost model. A switchless request charges exactly two fixed costs:
// CostRingSubmit on the submitting core when the request is posted and
// CostRingService by the worker when it completes the handler — both billed
// to the requesting enclave, so the elided transition work remains
// attributed to its cause. Spinning never charges: the simulated clock is a
// function of the request count, not of host scheduling, which keeps
// replays and the perf gate deterministic.
//
// Fallback policy. Submit reports ok=false — the caller must perform the
// call synchronously — only on deterministic conditions: the engine is
// stopped (or stops while the request is posted), the producer's next slot
// is still occupied (ring full), or the simulated clock passes the
// configured wait budget while the request is still unclaimed. A request a
// worker has already claimed is always awaited, so a handler runs at most
// once.
package switchless

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nestedenclave/internal/trace"
)

// HostFunc is a host-side request handler (the sdk's ocall signature).
type HostFunc func(args []byte) ([]byte, error)

// Resolver maps a request name to its host implementation.
type Resolver func(name string) (HostFunc, bool)

// Config sizes the engine. Zero fields take the defaults.
type Config struct {
	// Rings is the number of SPSC rings; submitters map to rings by core ID.
	// Default 4 (the default machine's core count).
	Rings int
	// SlotsPerRing bounds outstanding requests per ring. Default 8.
	SlotsPerRing int
	// SpinIters is how many times the producer polls its slot before it
	// starts yielding the host thread between polls. Purely a host-side
	// scheduling knob: it never affects simulated time. Default 64.
	SpinIters int
	// WaitBudget is the simulated-cycle budget a posted request may wait
	// unclaimed before the producer cancels it and falls back to the
	// synchronous path. Default 100000 cycles (~25 µs at 4 GHz).
	WaitBudget int64
	// Workers is the number of host worker goroutines. Default 1.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Rings <= 0 {
		c.Rings = 4
	}
	if c.SlotsPerRing <= 0 {
		c.SlotsPerRing = 8
	}
	if c.SpinIters <= 0 {
		c.SpinIters = 64
	}
	if c.WaitBudget <= 0 {
		c.WaitBudget = 100_000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Slot states.
const (
	slotEmpty uint32 = iota
	slotPosted
	slotClaimed
	slotDone
)

// slot is one request/response cell. The producer owns every field while the
// state is empty or done; the claiming worker owns them while claimed; the
// state word mediates the hand-over.
type slot struct {
	state    atomic.Uint32
	name     string
	args     []byte
	out      []byte
	err      error
	eid      uint64
	core     int
	postedAt int64 // simulated cycles when posted
}

// ring is one SPSC queue. tail is producer-local: only the single producer
// mapped to this ring advances it.
type ring struct {
	slots []slot
	tail  uint64
}

// Stats is a snapshot of the engine's lifetime counters.
type Stats struct {
	Submitted    int64 // requests posted to a ring
	Completed    int64 // requests completed through the ring
	Fallbacks    int64 // requests cancelled to the synchronous path
	MaxOccupancy int64 // peak simultaneously-outstanding requests
}

// Engine owns the rings and the host worker goroutines.
type Engine struct {
	rec     *trace.Recorder
	resolve Resolver
	cfg     Config
	rings   []*ring

	notify  chan struct{}
	stop    chan struct{}
	stopped atomic.Bool
	started bool //nescheck:guard mu
	mu      sync.Mutex
	wg      sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	fallbacks atomic.Int64
	occupancy atomic.Int64
	maxOcc    atomic.Int64
}

// New creates an engine in the stopped state. rec must be non-nil; resolve
// supplies the host handlers (the sdk passes its ocall table).
func New(rec *trace.Recorder, resolve Resolver, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		rec:     rec,
		resolve: resolve,
		cfg:     cfg,
		rings:   make([]*ring, cfg.Rings),
		notify:  make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	for i := range e.rings {
		e.rings[i] = &ring{slots: make([]slot, cfg.SlotsPerRing)}
	}
	e.stopped.Store(true)
	return e
}

// Start launches the worker goroutines. Starting a running engine is a no-op.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.stop = make(chan struct{})
	e.stopped.Store(false)
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
}

// Stop halts the workers and waits for them to drain. Requests posted but
// unclaimed when the workers exit are cancelled by their producers, which
// fall back to the synchronous path; claimed requests complete first.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return
	}
	e.started = false
	e.stopped.Store(true)
	close(e.stop)
	e.mu.Unlock()
	e.wg.Wait()
}

// Running reports whether the engine accepts requests.
func (e *Engine) Running() bool { return !e.stopped.Load() }

// Stats snapshots the lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:    e.submitted.Load(),
		Completed:    e.completed.Load(),
		Fallbacks:    e.fallbacks.Load(),
		MaxOccupancy: e.maxOcc.Load(),
	}
}

// ringFor maps a submitting core to its ring.
func (e *Engine) ringFor(core int) *ring {
	if core < 0 {
		core = 0
	}
	return e.rings[core%len(e.rings)]
}

// Submit posts the named request on the core's ring and waits for its
// completion, charging the fixed ring-protocol costs to eid. ok=false means
// the request did not run — the caller must perform it synchronously.
//
// Submit is safe for concurrent use by at most one goroutine per core (the
// SPSC contract); the sdk guarantees this because a core executes one
// enclave thread at a time.
func (e *Engine) Submit(core int, eid uint64, name string, args []byte) (out []byte, err error, ok bool) {
	if e.stopped.Load() {
		return nil, nil, false
	}
	r := e.ringFor(core)
	s := &r.slots[r.tail%uint64(len(r.slots))]
	if s.state.Load() != slotEmpty {
		// Ring full: the producer lapped a slot still in flight.
		e.fallbacks.Add(1)
		e.rec.ChargeTo(eid, core, trace.EvSwitchlessFallback, 0)
		return nil, nil, false
	}
	s.name, s.args, s.eid, s.core = name, args, eid, core
	s.postedAt = e.rec.Cycles()
	s.out, s.err = nil, nil
	s.state.Store(slotPosted)
	r.tail++
	e.rec.ChargeTo(eid, core, trace.EvSwitchless, trace.CostRingSubmit)
	e.submitted.Add(1)
	if occ := e.occupancy.Add(1); occ > e.maxOcc.Load() {
		for {
			cur := e.maxOcc.Load()
			if occ <= cur || e.maxOcc.CompareAndSwap(cur, occ) {
				break
			}
		}
	}
	select {
	case e.notify <- struct{}{}:
	default:
	}

	spin := 0
	for {
		switch s.state.Load() {
		case slotDone:
			out, err = s.out, s.err
			s.name, s.args, s.out, s.err = "", nil, nil, nil
			s.state.Store(slotEmpty)
			e.occupancy.Add(-1)
			e.completed.Add(1)
			return out, err, true
		case slotPosted:
			// Unclaimed: cancel on engine stop or when the simulated clock
			// exceeds the wait budget (a worker that already claimed the
			// request is always awaited instead).
			if e.stopped.Load() || e.rec.Cycles()-s.postedAt > e.cfg.WaitBudget {
				if s.state.CompareAndSwap(slotPosted, slotEmpty) {
					s.name, s.args = "", nil
					e.occupancy.Add(-1)
					e.fallbacks.Add(1)
					e.rec.ChargeTo(eid, core, trace.EvSwitchlessFallback, 0)
					return nil, nil, false
				}
				continue // lost the race to a claiming worker
			}
		}
		spin++
		if spin > e.cfg.SpinIters {
			runtime.Gosched()
		}
	}
}

// worker scans the rings for posted requests, parking on the notify channel
// when a sweep finds none.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		if e.sweep() == 0 {
			select {
			case <-e.notify:
			case <-e.stop:
				e.sweep() // serve what raced with shutdown
				return
			}
		}
	}
}

// sweep claims and serves every posted slot it finds, returning the number
// served.
func (e *Engine) sweep() int {
	n := 0
	for _, r := range e.rings {
		for i := range r.slots {
			s := &r.slots[i]
			if s.state.Load() != slotPosted {
				continue
			}
			if !s.state.CompareAndSwap(slotPosted, slotClaimed) {
				continue
			}
			if fn, found := e.resolve(s.name); found {
				s.out, s.err = fn(s.args)
			} else {
				s.out, s.err = nil, fmt.Errorf("switchless: no host function %q", s.name)
			}
			e.rec.ChargeTo(s.eid, trace.NoCore, trace.EvSwitchless, trace.CostRingService)
			s.state.Store(slotDone)
			n++
		}
	}
	return n
}
