//nescheck:allow determinism enclave load-time measurement reads host wall time by design; simulated costs are tracked separately via trace.Recorder cycles

package bench

import (
	"fmt"
	"runtime"
	"time"

	"nestedenclave/internal/cache"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

// This file reproduces Figure 10 (§VI-C, library sharing): the time to load
// a fleet of enclaves and their total memory footprint, comparing
//
//   - baseline "N SSL + N App": every application gets its own library
//     enclave (separate enclaves, no sharing);
//   - baseline "N (SSL+App)": the current SGX practice — one enclave
//     containing both library and application code;
//   - nested: N App inner enclaves sharing M SSL outer enclaves, for
//     decreasing M (more sharing).
//
// Loading is real work in the simulator: every measured page is generated,
// EADD-copied through the cache/MEE hierarchy, and EEXTEND-hashed, so load
// time scales with bytes exactly as "SGX verifies the entire binary when
// loading" implies.

// Figure10Config sizes the experiment.
type Figure10Config struct {
	// Apps is the number of application (inner) enclaves — the paper's 500.
	Apps int
	// SSLOuters lists the outer-enclave counts for the nested runs — the
	// paper sweeps {500, 250, 100, 50, 10, 1}.
	SSLOuters []int
	// SSLPages / AppPages size the two images — the paper's library is
	// ~4 MiB (1024 pages) and the application ~1 MiB (256 pages).
	SSLPages int
	AppPages int
}

// DefaultFigure10Config scales the paper's 500-enclave sweep down by 10×
// so it fits the default PRM; cmd/repro --full runs the paper's sizes.
func DefaultFigure10Config() Figure10Config {
	return Figure10Config{
		Apps:      50,
		SSLOuters: []int{50, 25, 10, 5, 1},
		SSLPages:  1024,
		AppPages:  256,
	}
}

// Figure10Row is one bar group.
type Figure10Row struct {
	Config      string
	LoadSeconds float64
	FootprintMB float64
	Enclaves    int
}

// figure10Machine sizes PRM to hold the largest configuration.
func figure10Machine(cfg Figure10Config) sgx.Config {
	// Worst case: Apps*(AppPages+overhead) + Apps*(SSLPages+overhead).
	perApp := cfg.AppPages + 8
	perSSL := cfg.SSLPages + 8
	pages := uint64(cfg.Apps*(perApp+perSSL) + 4096)
	prm := (pages*isa.PageSize + (1<<22 - 1)) &^ (1<<22 - 1)
	return sgx.Config{
		Cores: 4,
		Phys: phys.Layout{
			DRAMSize: prm + (64 << 20),
			PRMBase:  32 << 20,
			PRMSize:  prm,
		},
		LLC: cache.DefaultConfig(),
	}
}

func sslImage(cfg Figure10Config, base isa.VAddr) *sdk.Image {
	l := sdk.Layout{CodePages: cfg.SSLPages * 3 / 4, DataPages: cfg.SSLPages / 4, HeapPages: 2, NumTCS: 2}
	img := sdk.NewImage("ssl", base, l)
	img.RegisterNOCall("ssl_write", func(env *sdk.Env, args []byte) ([]byte, error) { return args, nil })
	return img
}

func appImage(cfg Figure10Config, base isa.VAddr) *sdk.Image {
	l := sdk.Layout{CodePages: cfg.AppPages * 3 / 4, DataPages: cfg.AppPages / 4, HeapPages: 2, NumTCS: 2}
	img := sdk.NewImage("app", base, l)
	img.RegisterECall("serve", func(env *sdk.Env, args []byte) ([]byte, error) { return args, nil })
	return img
}

// vaSlots spreads ELRANGEs across the virtual address space with a fixed
// per-slot stride large enough for any image in the experiment, so no two
// slots ever overlap regardless of image size.
func vaSlots(cfg Figure10Config) func(slot int) isa.VAddr {
	stride := uint64(cfg.SSLPages+cfg.AppPages+64) * isa.PageSize
	return func(slot int) isa.VAddr {
		return isa.VAddr(0x10_0000_0000 + uint64(slot)*stride)
	}
}

// Figure10 runs the sweep.
func Figure10(cfg Figure10Config) ([]Figure10Row, error) {
	if cfg.Apps == 0 {
		cfg = DefaultFigure10Config()
	}
	var rows []Figure10Row

	footprint := func(m *sgx.Machine) float64 {
		used := m.EPC.NumPages() - m.EPC.FreePages()
		return float64(used) * isa.PageSize / (1 << 20)
	}
	slot := vaSlots(cfg)
	// Each configuration allocates hundreds of MB of simulated DRAM; reclaim
	// between configurations so Go GC pressure does not bias later rows.
	reclaim := func() { runtime.GC() }

	// Baseline 1: N SSL enclaves + N App enclaves, all separate.
	{
		reclaim()
		r, err := NewRig(figure10Machine(cfg))
		if err != nil {
			return nil, err
		}
		author := measure.MustNewAuthor()
		start := time.Now()
		for i := 0; i < cfg.Apps; i++ {
			if _, err := r.Host.Load(sslImage(cfg, slot(i*2)).Sign(author, nil, nil)); err != nil {
				return nil, fmt.Errorf("baseline separate ssl %d: %w", i, err)
			}
			if _, err := r.Host.Load(appImage(cfg, slot(i*2+1)).Sign(author, nil, nil)); err != nil {
				return nil, fmt.Errorf("baseline separate app %d: %w", i, err)
			}
		}
		rows = append(rows, Figure10Row{
			Config:      fmt.Sprintf("SGX %d SSL + %d App", cfg.Apps, cfg.Apps),
			LoadSeconds: time.Since(start).Seconds(),
			FootprintMB: footprint(r.M),
			Enclaves:    2 * cfg.Apps,
		})
	}

	// Baseline 2: N combined (SSL+App) enclaves — the current practice.
	{
		reclaim()
		r, err := NewRig(figure10Machine(cfg))
		if err != nil {
			return nil, err
		}
		author := measure.MustNewAuthor()
		start := time.Now()
		for i := 0; i < cfg.Apps; i++ {
			pages := cfg.SSLPages + cfg.AppPages
			l := sdk.Layout{CodePages: pages * 3 / 4, DataPages: pages / 4, HeapPages: 2, NumTCS: 2}
			img := sdk.NewImage("ssl+app", slot(i), l)
			img.RegisterECall("serve", func(env *sdk.Env, args []byte) ([]byte, error) { return args, nil })
			if _, err := r.Host.Load(img.Sign(author, nil, nil)); err != nil {
				return nil, fmt.Errorf("baseline combined %d: %w", i, err)
			}
		}
		rows = append(rows, Figure10Row{
			Config:      fmt.Sprintf("SGX %d (SSL+App)", cfg.Apps),
			LoadSeconds: time.Since(start).Seconds(),
			FootprintMB: footprint(r.M),
			Enclaves:    cfg.Apps,
		})
	}

	// Nested: N App inners sharing M SSL outers. "After we launch all the
	// enclaves, we associate them at once."
	for _, outers := range cfg.SSLOuters {
		if outers > cfg.Apps {
			continue
		}
		reclaim()
		r, err := NewRig(figure10Machine(cfg))
		if err != nil {
			return nil, err
		}
		author := measure.MustNewAuthor()

		sslImgs := make([]*sdk.Image, outers)
		appImgs := make([]*sdk.Image, cfg.Apps)
		for i := range sslImgs {
			sslImgs[i] = sslImage(cfg, slot(i))
		}
		for i := range appImgs {
			appImgs[i] = appImage(cfg, slot(outers+i))
		}
		// All app images share one measurement; all ssl images share one.
		appDigest := appImgs[0].Measure()
		sslDigest := sslImgs[0].Measure()

		start := time.Now()
		sslEncls := make([]*sdk.Enclave, outers)
		for i, img := range sslImgs {
			e, err := r.Host.Load(img.Sign(author, nil, []measure.Digest{appDigest}))
			if err != nil {
				return nil, fmt.Errorf("nested ssl %d/%d: %w", i, outers, err)
			}
			sslEncls[i] = e
		}
		appEncls := make([]*sdk.Enclave, cfg.Apps)
		for i, img := range appImgs {
			e, err := r.Host.Load(img.Sign(author, []measure.Digest{sslDigest}, nil))
			if err != nil {
				return nil, fmt.Errorf("nested app %d: %w", i, err)
			}
			appEncls[i] = e
		}
		for i, app := range appEncls {
			if err := r.Host.Associate(app, sslEncls[i%outers]); err != nil {
				return nil, fmt.Errorf("associate %d: %w", i, err)
			}
		}
		rows = append(rows, Figure10Row{
			Config:      fmt.Sprintf("Nested %d SSL + %d App", outers, cfg.Apps),
			LoadSeconds: time.Since(start).Seconds(),
			FootprintMB: footprint(r.M),
			Enclaves:    outers + cfg.Apps,
		})
	}
	return rows, nil
}

// RenderFigure10 formats the rows.
func RenderFigure10(rows []Figure10Row, cfg Figure10Config) *Table {
	t := &Table{
		Title:   "Figure 10 — time to load enclaves running the OpenSSL server, and total memory",
		Headers: []string{"Configuration", "Load time (s)", "Footprint (MB)", "Enclaves"},
		Notes: []string{
			fmt.Sprintf("SSL image %d pages (~%d MB), App image %d pages (~%d MB); scale via cmd/repro --full for the paper's 500",
				cfg.SSLPages, cfg.SSLPages>>8, cfg.AppPages, cfg.AppPages>>8),
			"paper: nested sharing shrinks both load time and footprint; more sharing, more benefit",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Config, f2(r.LoadSeconds), f2(r.FootprintMB), fmt.Sprint(r.Enclaves))
	}
	return t
}
