package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// This file is the perf-trajectory regression gate: `repro -gate <dir>`
// re-runs the headline experiments and compares their cycle-derived metrics
// against the committed BENCH_<name>.json baselines. Everything gated is a
// function of the simulated clock and the deterministic workloads, so the
// tolerance can be tight; wall-clock fields (wall_ms, QPS columns) are
// never gated.

// GateTolerance is the default relative regression allowed before the gate
// fails. Gated metrics are deterministic, so 5% is pure headroom for
// intentional cost-model drift caught in review.
const GateTolerance = 0.05

// GateResult is one gated metric's comparison.
type GateResult struct {
	Metric string
	Base   float64
	Cur    float64
	// Ratio is Cur/Base (1 = unchanged; +Inf rendered when Base is 0).
	Ratio  float64
	Failed bool
	Reason string
}

// gatedCounters are the event counters whose *increase* is a regression:
// translation work and paging traffic.
var gatedCounters = []string{"page_walk", "tlb_miss", "ewb", "eld", "ipi"}

// GateMetrics extracts the gated metric set from a snapshot: total simulated
// cycles, per-op latency histogram means and counts, and the gated counters.
func GateMetrics(s *ExperimentSnapshot) map[string]float64 {
	m := map[string]float64{"cycles": float64(s.Cycles)}
	for name, h := range s.Histograms {
		m["hist."+name+".mean_cycles"] = h.MeanCyc
		m["hist."+name+".count"] = float64(h.Count)
	}
	for _, c := range gatedCounters {
		if v, ok := s.Counters[c]; ok {
			m["counter."+c] = float64(v)
		}
	}
	for k, v := range s.Extra {
		m["extra."+k] = v
	}
	return m
}

// CompareGate gates cur against base with the given relative tolerance
// (<= 0 → GateTolerance). The gate is one-sided — only an increase beyond
// tolerance fails — except that a metric present in the baseline and absent
// (or zero) in the current run also fails: the gated path silently stopped
// being exercised, which would otherwise let a regression hide behind a
// workload change.
func CompareGate(base, cur *ExperimentSnapshot, tol float64) []GateResult {
	if tol <= 0 {
		tol = GateTolerance
	}
	bm, cm := GateMetrics(base), GateMetrics(cur)
	names := make([]string, 0, len(bm))
	for n := range bm {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []GateResult
	for _, n := range names {
		b, c := bm[n], cm[n]
		r := GateResult{Metric: n, Base: b, Cur: c}
		switch {
		case b == 0:
			r.Ratio = 1
			if c != 0 {
				r.Ratio = 0 // rendered as "new"; a metric appearing is not a regression
			}
		case c == 0:
			r.Failed = true
			r.Reason = "metric vanished (gated path no longer exercised)"
		default:
			r.Ratio = c / b
			if r.Ratio > 1+tol {
				r.Failed = true
				r.Reason = fmt.Sprintf("regressed %.1f%% (tolerance %.1f%%)", 100*(r.Ratio-1), 100*tol)
			}
		}
		out = append(out, r)
	}
	return out
}

// GateFailed reports whether any result failed.
func GateFailed(results []GateResult) bool {
	for _, r := range results {
		if r.Failed {
			return true
		}
	}
	return false
}

// RenderGate formats gate results; pass failedOnly to elide clean metrics.
func RenderGate(name string, results []GateResult, failedOnly bool) string {
	var b strings.Builder
	nFail := 0
	for _, r := range results {
		if r.Failed {
			nFail++
		}
	}
	fmt.Fprintf(&b, "gate %s: %d metrics, %d failed\n", name, len(results), nFail)
	fmt.Fprintf(&b, "  %-34s %16s %16s %8s  %s\n", "metric", "baseline", "current", "ratio", "verdict")
	for _, r := range results {
		if failedOnly && !r.Failed {
			continue
		}
		verdict := "ok"
		if r.Failed {
			verdict = "FAIL: " + r.Reason
		}
		fmt.Fprintf(&b, "  %-34s %16.2f %16.2f %8.3f  %s\n", r.Metric, r.Base, r.Cur, r.Ratio, verdict)
	}
	return b.String()
}

// LoadSnapshot reads a BENCH_<name>.json baseline.
func LoadSnapshot(path string) (*ExperimentSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s ExperimentSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}
