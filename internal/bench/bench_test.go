package bench

import (
	"strings"
	"testing"

	"nestedenclave/internal/ssl"
	"nestedenclave/internal/ycsb"
)

// These tests run every experiment at reduced scale and assert the *shape*
// the paper reports — who wins, and roughly how — not absolute numbers.

func TestTableIIShape(t *testing.T) {
	res, err := TableII(3000)
	if err != nil {
		t.Fatal(err)
	}
	// The model HW numbers match the calibration targets.
	if res.HWEcallUS < 3.3 || res.HWEcallUS > 3.6 {
		t.Errorf("HW ecall %.2f us, want ~3.45", res.HWEcallUS)
	}
	if res.HWOcallUS < 3.0 || res.HWOcallUS > 3.3 {
		t.Errorf("HW ocall %.2f us, want ~3.13", res.HWOcallUS)
	}
	// Emulated transitions are all sub-HW-latency and nonzero.
	for name, v := range map[string]float64{
		"emu sgx ecall":  res.EmuSGXEcallUS,
		"emu sgx ocall":  res.EmuSGXOcallUS,
		"emu nest ecall": res.EmuNestEcallUS,
		"emu nest ocall": res.EmuNestOcallUS,
	} {
		if v <= 0 {
			t.Errorf("%s = %.3f us", name, v)
		}
	}
	// The paper's key relation — nested transitions cheaper than the ecall
	// pair — holds deterministically in the cycle model.
	if res.HWNestEcallUS >= res.HWEcallUS {
		t.Errorf("model n_ecall (%.2f us) not cheaper than ecall (%.2f us)", res.HWNestEcallUS, res.HWEcallUS)
	}
	// The wall-clock emulation rows stay within the same order of magnitude
	// of each other (our emulated transitions are light; noise dominates).
	if res.EmuNestEcallUS > res.EmuSGXEcallUS*4 {
		t.Errorf("n_ecall (%.2f us) wildly slower than ecall (%.2f us)", res.EmuNestEcallUS, res.EmuSGXEcallUS)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7([]int{128, 4096}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Nested throughput within a modest factor of monolithic, never
		// dramatically slower or faster (single-vCPU wall-clock noise
		// allowed for; cmd/repro reports the precise ratios).
		if r.Normalized < 0.4 || r.Normalized > 1.5 {
			t.Errorf("chunk %d: normalized %.3f out of plausible band", r.ChunkBytes, r.Normalized)
		}
		// Nested issues more boundary crossings per message.
		if r.NestCallsPerMsg <= r.MonoCallsPerMsg {
			t.Errorf("chunk %d: nested calls/msg %.1f <= mono %.1f",
				r.ChunkBytes, r.NestCallsPerMsg, r.MonoCallsPerMsg)
		}
	}
	if RenderFigure7(rows).String() == "" {
		t.Error("empty render")
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TrainNorm <= 0 || r.PredNorm <= 0 {
			t.Errorf("%s: non-positive normalized (%.2f / %.2f)", r.Dataset, r.TrainNorm, r.PredNorm)
		}
		// The paper's claim is asymptotic — compute dwarfs transitions — so
		// only band-check runs long enough for the ratio to be meaningful.
		if r.MonoTrainMS >= 5 && (r.TrainNorm < 0.4 || r.TrainNorm > 2.0) {
			t.Errorf("%s: train normalized %.2f at %.1f ms baseline", r.Dataset, r.TrainNorm, r.MonoTrainMS)
		}
	}
	if RenderFigure9(rows, 0.01).String() == "" {
		t.Error("empty render")
	}
}

func TestTableVIShape(t *testing.T) {
	rows, err := TableVI(ycsb.Config{Records: 100, Operations: 400, FieldLen: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Normalized < 0.2 || r.Normalized > 1.3 {
			t.Errorf("%s: normalized %.3f", r.Workload, r.Normalized)
		}
		// Projected onto a real SQLite's per-query cost, the overhead is in
		// the paper's few-percent regime. The bound tolerates race-detector
		// and co-tenant load: OverheadUS is host wall time, and under
		// contention the ~30 us/q signal measured here can inflate well
		// past the paper's regime without any code being slower.
		if r.SQLiteEquivNorm < 0.8 {
			t.Errorf("%s: SQLite-equivalent normalized %.3f (overhead %.1f us/q)",
				r.Workload, r.SQLiteEquivNorm, r.OverheadUS)
		}
	}
	if RenderTableVI(rows).String() == "" {
		t.Error("empty render")
	}
}

func TestFigure10Shape(t *testing.T) {
	cfg := Figure10Config{Apps: 6, SSLOuters: []int{6, 2, 1}, SSLPages: 96, AppPages: 32}
	rows, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows: %+v", len(rows), rows)
	}
	baselineSep := rows[0]
	var nestedShared Figure10Row // the 1-outer configuration
	for _, r := range rows {
		if strings.HasPrefix(r.Config, "Nested 1 ") {
			nestedShared = r
		}
	}
	// Maximal sharing loads less and uses less memory than either baseline.
	if nestedShared.FootprintMB >= baselineSep.FootprintMB {
		t.Errorf("nested shared footprint %.1f MB >= baseline %.1f MB",
			nestedShared.FootprintMB, baselineSep.FootprintMB)
	}
	if nestedShared.LoadSeconds >= baselineSep.LoadSeconds {
		t.Errorf("nested shared load %.2fs >= baseline %.2fs",
			nestedShared.LoadSeconds, baselineSep.LoadSeconds)
	}
	// Footprint decreases monotonically with sharing among nested rows.
	var prev float64 = -1
	for _, r := range rows[2:] {
		if prev >= 0 && r.FootprintMB > prev {
			t.Errorf("footprint not monotone with sharing: %.1f after %.1f", r.FootprintMB, prev)
		}
		prev = r.FootprintMB
	}
	if RenderFigure10(rows, cfg).String() == "" {
		t.Error("empty render")
	}
}

func TestFigure11Shape(t *testing.T) {
	rows, err := Figure11([]int{2}, []int{64, 16384}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	small, large := rows[0], rows[1]
	// The protected-memory channel beats software GCM, most for small
	// chunks, converging as chunk size grows.
	if small.Speedup <= 2 {
		t.Errorf("64B speedup %.1fx, want >2x", small.Speedup)
	}
	if large.Speedup >= small.Speedup {
		t.Errorf("speedup did not shrink with chunk size: %.1fx -> %.1fx",
			small.Speedup, large.Speedup)
	}
	if RenderFigure11(rows).String() == "" {
		t.Error("empty render")
	}
}

func TestFigure11FootprintEffect(t *testing.T) {
	// Beyond the 8 MiB LLC the MEE kicks in and the protected channel's
	// absolute throughput drops.
	rows, err := Figure11([]int{2, 16}, []int{4096}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].MEEGBps >= rows[0].MEEGBps {
		t.Errorf("MEE throughput did not drop past the LLC: %.1f -> %.1f GB/s",
			rows[0].MEEGBps, rows[1].MEEGBps)
	}
}

func TestTableIIICounts(t *testing.T) {
	rows := TableIII()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PortedLOC == 0 {
			t.Errorf("%s: zero ported LOC (markers lost?)", r.Name)
		}
		if r.PortedLOC > 60 {
			t.Errorf("%s: %d ported LOC — porting should be small", r.Name, r.PortedLOC)
		}
		if r.InterfaceLOC == 0 {
			t.Errorf("%s: zero interface declarations", r.Name)
		}
		if r.LibraryLOC == 0 {
			t.Errorf("%s: library LOC unavailable", r.Name)
		}
	}
	if RenderTableIII(rows).String() == "" || TableIV().String() == "" || TableVRender().String() == "" {
		t.Error("empty render")
	}
}

func TestTableVIIAllReproduced(t *testing.T) {
	rows, err := TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Reproduced {
			t.Errorf("attack %q: baseline/nested outcome pair not reproduced (%s | %s)",
				r.Attack, r.Monolithic, r.Nested)
		}
	}
	if RenderTableVII(rows).String() == "" {
		t.Error("empty render")
	}
}

func TestAblations(t *testing.T) {
	tr, err := AblationTransitionPath(2000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DirectCycles >= tr.DetourCycles {
		t.Errorf("direct path (%d cyc) not cheaper than detour (%d cyc)", tr.DirectCycles, tr.DetourCycles)
	}
	sd, err := AblationShootdown(10)
	if err != nil {
		t.Fatal(err)
	}
	if sd.PreciseIPIs >= sd.BroadcastIPIs {
		t.Errorf("precise tracking (%d IPIs) not cheaper than broadcast (%d)", sd.PreciseIPIs, sd.BroadcastIPIs)
	}
	dp, err := AblationNestingDepth([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dp[1].ValidateSteps <= dp[0].ValidateSteps {
		t.Errorf("validation steps did not grow with depth: %d -> %d", dp[0].ValidateSteps, dp[1].ValidateSteps)
	}
	tf, err := AblationTLBFlush(500)
	if err != nil {
		t.Fatal(err)
	}
	// Every n_ecall round trip flushes twice (NEENTER + NEEXIT) and forces
	// the inner working set to refill.
	if tf.FlushesPerCall < 2 {
		t.Errorf("flushes per call %.2f, want >= 2", tf.FlushesPerCall)
	}
	if tf.RefillMissesPerCall < 4 {
		t.Errorf("refill misses per call %.2f, want >= 4", tf.RefillMissesPerCall)
	}
	if tf.FlushCycleShare <= 0 || tf.FlushCycleShare >= 1 {
		t.Errorf("flush cycle share %.3f out of range", tf.FlushCycleShare)
	}
	for _, tbl := range []*Table{RenderAblationTransition(tr), RenderAblationShootdown(sd), RenderAblationDepth(dp), RenderAblationTLBFlush(tf)} {
		if tbl.String() == "" {
			t.Error("empty render")
		}
	}
}

func TestEchoServerHeartbeatBenign(t *testing.T) {
	// The patched (non-vulnerable) server still answers benign heartbeats
	// in both builds.
	for _, nested := range []bool{false, true} {
		r, err := NewRig(SmallMachine())
		if err != nil {
			t.Fatal(err)
		}
		es, err := BuildEchoServer(r, nested, false)
		if err != nil {
			t.Fatal(err)
		}
		client, err := es.Connect(ssl.Config{MinVersion: ssl.VersionTLS12Like})
		if err != nil {
			t.Fatal(err)
		}
		req, err := client.Heartbeat([]byte("alive?"), 6)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := es.Entry.ECall("tls_record", req)
		if err != nil {
			t.Fatal(err)
		}
		echo, err := client.OpenHeartbeatResponse(resp)
		if err != nil || string(echo) != "alive?" {
			t.Fatalf("%s: heartbeat echo %q %v", variantName(nested), echo, err)
		}
	}
}
