package bench

import (
	_ "embed"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Table III of the paper counts the lines of code modified to port each
// application from the conventional enclave to nested enclave, plus the EDL
// interface changes, noting the libraries themselves needed zero changes.
//
// This reproduction applies the same methodology to its own sources: every
// line of the case-study implementations that exists only for the nested
// build carries a "// PORT:" marker, interface (EDL-equivalent) definitions
// are the Register*/AllowOCall declarations, and the library packages
// (internal/ssl, internal/svm, internal/sqldb) are byte-identical between
// the two builds — the count below proves it by construction, since both
// builds import the same packages.

//go:embed echoserver.go
var srcEchoServer string

//go:embed mlservice.go
var srcMLService string

//go:embed sqlservice.go
var srcSQLService string

// TableIIIRow is one application row.
type TableIIIRow struct {
	Name         string
	PortedLOC    int // lines marked // PORT:
	InterfaceLOC int // EDL-equivalent declarations (entry registrations)
	CaseStudyLOC int // total case-study source lines
	LibraryLOC   int // unchanged library lines (0 modifications)
	Library      string
}

func countMarked(src, marker string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			n++
		}
	}
	return n
}

func countLines(src string) int { return strings.Count(src, "\n") + 1 }

// libraryLOC counts the Go lines of a library package directory relative to
// this source file. Returns 0 (with ok=false) when the sources are not on
// disk (e.g. a stripped install).
func libraryLOC(pkg string) (int, bool) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return 0, false
	}
	dir := filepath.Join(filepath.Dir(self), "..", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false
	}
	total := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, false
		}
		total += countLines(string(b))
	}
	return total, true
}

// TableIII computes the ported-LOC accounting.
func TableIII() []TableIIIRow {
	apps := []struct {
		name, src, libPkg, libName string
	}{
		{"echo server", srcEchoServer, "ssl", "mini-SSL"},
		{"svm train/predict", srcMLService, "svm", "mini-LibSVM"},
		{"SQL server", srcSQLService, "sqldb", "mini-SQLite"},
	}
	var rows []TableIIIRow
	for _, a := range apps {
		libLOC, _ := libraryLOC(a.libPkg)
		rows = append(rows, TableIIIRow{
			Name:         a.name,
			PortedLOC:    countMarked(a.src, "// PORT:"),
			InterfaceLOC: countMarked(a.src, "RegisterECall(") + countMarked(a.src, "RegisterNOCall(") + countMarked(a.src, "AllowOCall("),
			CaseStudyLOC: countLines(a.src),
			LibraryLOC:   libLOC,
			Library:      a.libName,
		})
	}
	return rows
}

// RenderTableIII formats the rows.
func RenderTableIII(rows []TableIIIRow) *Table {
	t := &Table{
		Title:   "Table III — lines of code modified for porting to nested enclave",
		Headers: []string{"Application", "Ported LOC", "Interface (EDL) LOC", "Case-study LOC", "Library LOC (modified: 0)"},
		Notes: []string{
			"Ported LOC counts '// PORT:'-marked lines in this repository's case-study sources",
			"libraries are shared verbatim by both builds — zero modified lines, as in the paper",
			"paper: echo 34+10, SQLite 19+5, svm-predict 27+10, svm-train 24+10; libraries 0",
		},
	}
	for _, r := range rows {
		lib := fmt.Sprintf("%d (%s)", r.LibraryLOC, r.Library)
		t.AddRow(r.Name, fmt.Sprint(r.PortedLOC), fmt.Sprint(r.InterfaceLOC), fmt.Sprint(r.CaseStudyLOC), lib)
	}
	return t
}

// TableIV reproduces the paper's data-classification taxonomy.
func TableIV() *Table {
	t := &Table{
		Title:   "Table IV — case studies and MLS data classification",
		Headers: []string{"Type", "Top secret (inner)", "Secret (outer)"},
		Notes:   []string{"inner enclaves read top secret and secret; the outer enclave reads secret only"},
	}
	t.AddRow("Confinement (VI-A)", "Data for main app.", "Data for OpenSSL")
	t.AddRow("Data protection (VI-B)", "Private data", "Data allowed for ML")
	t.AddRow("Fast comm. (VI-C)", "Data not to expose", "Data to communicate")
	return t
}
