package bench

import (
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/switchless"
)

// Transition-path microbenchmarks (`make bench`): ns/op and allocs/op for
// each call primitive. The simulated-cycle costs are gated elsewhere (the
// switchless experiment); these catch host-side overhead and allocation
// regressions in the SDK marshalling and transition plumbing.

type microRig struct {
	r            *Rig
	inner, outer *sdk.Enclave
	loops        int // read by the loop ecalls
}

func newMicroRig(b *testing.B) *microRig {
	b.Helper()
	mr := &microRig{}
	r, err := NewRig(SmallMachine())
	if err != nil {
		b.Fatal(err)
	}
	mr.r = r
	outerImg := sdk.NewImage("mb-outer", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("mb-inner", 0x1000_0000, sdk.DefaultLayout())
	outerImg.AllowOCall("mb_noop")
	outerImg.AllowSwitchless("mb_fast")
	payload := make([]byte, 64)
	innerImg.RegisterECall("noop", func(env *sdk.Env, args []byte) ([]byte, error) {
		return payload, nil
	})
	outerImg.RegisterECall("noop", func(env *sdk.Env, args []byte) ([]byte, error) {
		return payload, nil
	})
	outerImg.RegisterECall("ocall_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < mr.loops; i++ {
			if _, err := env.OCall("mb_noop", payload); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterECall("sw_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < mr.loops; i++ {
			if _, err := env.OCallAsync("mb_fast", payload); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterECall("necall_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		inner := env.E.Inners()[0]
		for i := 0; i < mr.loops; i++ {
			if _, err := env.NECall(inner, "noop", payload); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	r.Host.RegisterOCall("mb_noop", func(args []byte) ([]byte, error) { return payload, nil })
	r.Host.RegisterOCall("mb_fast", func(args []byte) ([]byte, error) { return payload, nil })
	if mr.inner, mr.outer, err = r.LoadPair(innerImg, outerImg); err != nil {
		b.Fatal(err)
	}
	return mr
}

// runLoop drives one of the loop ecalls with b.N iterations inside a single
// enclave entry, so per-op numbers reflect the op, not the entry.
func (mr *microRig) runLoop(b *testing.B, name string) {
	mr.loops = b.N
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := mr.outer.ECall(name, nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkECall(b *testing.B) {
	mr := newMicroRig(b)
	args := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.outer.ECall("noop", args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOCall(b *testing.B) {
	newMicroRig(b).runLoop(b, "ocall_loop")
}

func BenchmarkNECall(b *testing.B) {
	newMicroRig(b).runLoop(b, "necall_loop")
}

func BenchmarkSwitchlessOCall(b *testing.B) {
	mr := newMicroRig(b)
	mr.r.Host.StartSwitchless(switchless.Config{})
	defer mr.r.Host.StopSwitchless()
	mr.runLoop(b, "sw_loop")
}

func BenchmarkPageWalk(b *testing.B) {
	mr := newMicroRig(b)
	r := mr.r
	c := r.M.Core(0)
	if err := r.K.Schedule(c, r.Host.Proc); err != nil {
		b.Fatal(err)
	}
	uv, err := r.Host.Proc.Mmap(1, isa.PermRW)
	if err != nil {
		b.Fatal(err)
	}
	s := mr.inner.SECS()
	if err := r.M.EEnter(c, s, s.TCSs()[0].Vaddr, false); err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 8)
	if err := c.ReadInto(uv, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TLB.FlushVPN(uint64(uv) >> isa.PageShift)
		if err := c.ReadInto(uv, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := r.M.EExit(c, true); err != nil {
		b.Fatal(err)
	}
}
