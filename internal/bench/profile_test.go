package bench

import (
	"strings"
	"testing"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/trace"
)

// TestProfileAgreement is the PR's acceptance check in test form: the span
// call tree's per-operation inclusive-cycle sums must agree with the flat
// PR-1 latency histograms within 1%. Spans open and close exactly where the
// histograms sample, so any drift means spans were lost or misbracketed.
func TestProfileAgreement(t *testing.T) {
	p, err := ProfileSQLService(ProfileConfig{Queries: 120})
	if err != nil {
		t.Fatal(err)
	}
	ags := p.Agreements()
	if len(ags) == 0 {
		t.Fatal("no operations to cross-check; the workload exercised nothing")
	}
	sawWalks := false
	for _, a := range ags {
		if a.RelErr > 0.01 {
			t.Errorf("%s: span cycles %d vs hist cycles %d (rel err %.3f%%, tolerance 1%%)",
				a.Op, a.SpanCyc, a.HistCyc, 100*a.RelErr)
		}
		if a.Op == "page_walk" {
			sawWalks = true
		}
	}
	if !sawWalks {
		t.Error("workload produced no page walks; the staged memory path regressed")
	}
}

// TestProfileTreeShape pins the causal structure of the nested SQL service:
// every n_ocall:sql_exec span is a child of an ecall:query span, and the
// tree's root cycles equal the summed root spans.
func TestProfileTreeShape(t *testing.T) {
	p, err := ProfileSQLService(ProfileConfig{Queries: 80})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]trace.Span{}
	for _, s := range p.Spans {
		byID[s.ID] = s
	}
	var nSQL int
	for _, s := range p.Spans {
		if s.Name != "n_ocall:sql_exec" {
			continue
		}
		nSQL++
		parent, ok := byID[s.Parent]
		if !ok || parent.Name != "ecall:query" {
			t.Fatalf("n_ocall:sql_exec span %d parents to %q, want ecall:query", s.ID, parent.Name)
		}
	}
	if nSQL == 0 {
		t.Fatal("no n_ocall:sql_exec spans; the nested hop disappeared")
	}
	// The rendered tree shows the nesting.
	out := p.RenderTree()
	if !strings.Contains(out, "ecall:query") || !strings.Contains(out, "  n_ocall:sql_exec") {
		t.Errorf("rendered tree lost the nesting:\n%s", out)
	}
}

// TestProfileFoldedStacks verifies the sampling profiler saw the real stack
// shapes: samples exist for both the root-only and the nested stack, and no
// stack names an operation the workload never ran.
func TestProfileFoldedStacks(t *testing.T) {
	p, err := ProfileSQLService(ProfileConfig{Queries: 100, Interval: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Folded["ecall:query"] == 0 {
		t.Error("no samples landed in the root-only ecall:query stack")
	}
	if p.Folded["ecall:query;n_ocall:sql_exec"] == 0 {
		t.Error("no samples landed in the nested ecall;n_ocall stack")
	}
	valid := map[string]bool{
		"ecall:query": true, "n_ocall:sql_exec": true, "page_walk": true,
		"ewb": true, "eld": true,
	}
	for stack := range p.Folded {
		for _, frame := range strings.Split(stack, ";") {
			if !valid[frame] {
				t.Errorf("folded stack %q contains frame %q the workload never opened", stack, frame)
			}
		}
	}
}

// TestChaosInjectionAnnotatesSpan verifies fault injections land as annotated
// events inside the active span: with a core-stall site firing on every
// access, each EvChaosInject record must be stamped with an open span that
// completes as part of the call tree.
func TestChaosInjectionAnnotatesSpan(t *testing.T) {
	r, err := NewRig(SmallMachine())
	if err != nil {
		t.Fatal(err)
	}
	rec := r.M.Rec
	rec.EnableObservation(1 << 14)
	r.M.SetChaos(chaos.New(chaos.Config{
		Seed: 1,
		Sites: map[chaos.Site]chaos.SiteConfig{
			chaos.SiteSlowCore: {Prob: 1, Budget: 32},
		},
	}, rec))

	s, err := BuildSQLServiceStaged(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, field0 TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("INSERT INTO usertable VALUES (1, 'v')"); err != nil {
		t.Fatal(err)
	}

	spanByID := map[uint64]trace.Span{}
	for _, sp := range rec.Spans() {
		spanByID[sp.ID] = sp
	}
	var injects, annotated int
	for _, rc := range rec.Log().Snapshot() {
		if rc.Event != trace.EvChaosInject {
			continue
		}
		injects++
		if rc.Span == 0 {
			continue
		}
		if _, ok := spanByID[rc.Span]; ok {
			annotated++
		}
	}
	if injects == 0 {
		t.Fatal("no chaos injections fired; the site config is wrong")
	}
	if annotated == 0 {
		t.Errorf("none of %d injections attached to a completed span", injects)
	}
}

// TestProfileDeterministic pins the committed-baseline premise end to end:
// two full profiling runs produce identical cycle totals, histograms, and
// folded profiles.
func TestProfileDeterministic(t *testing.T) {
	run := func() *ProfileResult {
		p, err := ProfileSQLService(ProfileConfig{Queries: 60})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Fatalf("cycle totals diverged: %d vs %d", a.Cycles, b.Cycles)
	}
	if len(a.Spans) != len(b.Spans) {
		t.Fatalf("span counts diverged: %d vs %d", len(a.Spans), len(b.Spans))
	}
	for k, v := range a.Folded {
		if b.Folded[k] != v {
			t.Errorf("folded stack %q diverged: %d vs %d", k, v, b.Folded[k])
		}
	}
}
