//nescheck:allow determinism Table VI QPS measurement reads host wall time by design; simulated costs are tracked separately via trace.Recorder cycles

package bench

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"fmt"
	"math/rand"
	"time"

	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sqldb"
	"nestedenclave/internal/ycsb"
)

// This file implements the SQLite half of the §VI-B case study (Table VI):
// a shared SQL database service driven by YCSB workloads.
//
//   - Monolithic: the database engine and the client-facing query handling
//     share one enclave; queries execute directly.
//   - Nested: a per-client inner enclave parses each query and encrypts the
//     data values (so the shared service only ever stores ciphertext), then
//     forwards the rewritten query to the SQLite-like service in the outer
//     enclave via n_ocall; SELECT results are decrypted on the way back.
//
// Porting delta lines carry "// PORT:" markers for TableIII.

// SQLService is a deployed database service.
type SQLService struct {
	Nested bool
	// Client is the enclave queries enter through.
	Client *sdk.Enclave
	// Svc hosts the database engine (== Client when monolithic).
	Svc *sdk.Enclave

	db   *sqldb.DB
	key  [16]byte
	aead cipher.AEAD
}

func (s *SQLService) initCrypto() {
	block, err := aes.NewCipher(s.key[:])
	if err != nil {
		panic(err)
	}
	s.aead, err = cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
}

// encryptTextDet seals a text value deterministically under the per-client
// key (deterministic so WHERE equality on encrypted fields keeps working —
// the standard searchable-deterministic-encryption trade-off).
func encryptTextDet(aead cipher.AEAD, pt string) string {
	nonce := make([]byte, aead.NonceSize())
	return hex.EncodeToString(aead.Seal(nil, nonce, []byte(pt), nil))
}

func (s *SQLService) encryptText(pt string) string { return encryptTextDet(s.aead, pt) }

func (s *SQLService) decryptText(ct string) (string, error) {
	raw, err := hex.DecodeString(ct)
	if err != nil {
		return "", err
	}
	nonce := make([]byte, s.aead.NonceSize())
	pt, err := s.aead.Open(nil, nonce, raw, nil)
	if err != nil {
		return "", err
	}
	return string(pt), nil
}

// rewriteEncrypted parses the SQL and encrypts every text literal — the
// inner enclave's "parse the queries and encrypt data" step.
func rewriteEncrypted(aead cipher.AEAD, sql string) (string, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return "", err
	}
	switch q := st.(type) {
	case *sqldb.InsertStmt:
		for i, v := range q.Vals {
			if v.Kind == sqldb.KText {
				q.Vals[i] = sqldb.Text(encryptTextDet(aead, v.S))
			}
		}
	case *sqldb.UpdateStmt:
		for i := range q.Sets {
			if q.Sets[i].Val.Kind == sqldb.KText {
				q.Sets[i].Val = sqldb.Text(encryptTextDet(aead, q.Sets[i].Val.S))
			}
		}
		for i := range q.Where {
			if q.Where[i].Val.Kind == sqldb.KText {
				q.Where[i].Val = sqldb.Text(encryptTextDet(aead, q.Where[i].Val.S))
			}
		}
	case *sqldb.SelectStmt:
		for i := range q.Where {
			if q.Where[i].Val.Kind == sqldb.KText {
				q.Where[i].Val = sqldb.Text(encryptTextDet(aead, q.Where[i].Val.S))
			}
		}
	}
	return sqldb.FormatStmt(st)
}

func (s *SQLService) rewriteQuery(sql string) (string, error) {
	return rewriteEncrypted(s.aead, sql)
}

// execAndRender runs a query on the engine and flattens the result.
func execAndRender(db *sqldb.DB, sql string) ([]byte, error) {
	res, err := db.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := fmt.Sprintf("affected=%d rows=%d", res.Affected, len(res.Rows))
	for _, row := range res.Rows {
		for _, v := range row {
			out += "|" + v.String()
		}
	}
	return []byte(out), nil
}

// BuildSQLService deploys the case study.
func BuildSQLService(r *Rig, nested bool) (*SQLService, error) {
	s := &SQLService{Nested: nested, db: sqldb.New(), key: [16]byte{7}}
	s.initCrypto()

	if !nested {
		img := sdk.NewImage("sql-service", 0x1000_0000, sdk.DefaultLayout())
		img.RegisterECall("query", func(env *sdk.Env, args []byte) ([]byte, error) {
			return execAndRender(s.db, string(args))
		})
		e, err := r.LoadSolo(img)
		if err != nil {
			return nil, err
		}
		s.Client, s.Svc = e, e
		return s, nil
	}

	svcImg := sdk.NewImage("sqlite-svc", 0x2000_0000, sdk.DefaultLayout())              // PORT: shared service image
	clientImg := sdk.NewImage("sql-client", 0x1000_0000, sdk.DefaultLayout())           // PORT: per-client image
	svcImg.RegisterNOCall("sql_exec", func(env *sdk.Env, args []byte) ([]byte, error) { // PORT: service entry via n_ocall
		return execAndRender(s.db, string(args))
	})
	clientImg.RegisterECall("query", func(env *sdk.Env, args []byte) ([]byte, error) {
		rewritten, err := s.rewriteQuery(string(args)) // PORT: parse + encrypt values in the inner enclave
		if err != nil {                                // PORT:
			return nil, err // PORT:
		}
		return env.NOCall("sql_exec", []byte(rewritten)) // PORT: forward to the shared service
	})
	client, svc, err := r.LoadPair(clientImg, svcImg) // PORT: NASSO association
	if err != nil {
		return nil, err
	}
	s.Client, s.Svc = client, svc
	return s, nil
}

// Query sends one SQL statement through the deployed service: clients ecall
// into their inner enclave, which forwards to the shared engine via n_ocall
// (the paper's §VI-B flow).
func (s *SQLService) Query(sql string) ([]byte, error) {
	return s.Client.ECall("query", []byte(sql))
}

// TableVIRow is one workload row of Table VI.
type TableVIRow struct {
	Workload   string
	MonoQPS    float64
	NestQPS    float64
	Normalized float64
	// OverheadUS is the absolute per-query cost the nested build adds
	// (transitions + parse/encrypt in the inner enclave).
	OverheadUS float64
	// SQLiteEquivNorm projects the normalized throughput onto a real
	// SQLite's per-query cost (~300 us on the paper's testbed): the same
	// absolute overhead against realistic engine work. This is the number
	// comparable to the paper's 0.98-0.99, since this repository's SQL
	// engine is over an order of magnitude faster than SQLite.
	SQLiteEquivNorm float64
}

// sqliteQueryUS is the reference per-query cost of real SQLite used for the
// paper-equivalent normalization.
const sqliteQueryUS = 300.0

// TableVI runs the four YCSB mixes with cfg (zero value: 1000 records,
// 10 000 operations — the paper's query count). seed fixes the generated
// query streams: the generator takes an injected RNG, and the bench layer
// is where the seed becomes one.
func TableVI(cfg ycsb.Config, seed int64) ([]TableVIRow, error) {
	if cfg.Operations == 0 {
		cfg = ycsb.DefaultConfig()
	}
	var rows []TableVIRow
	for _, mix := range ycsb.TableVIMixes() {
		w := ycsb.Generate(mix, cfg, rand.New(rand.NewSource(seed)))
		row := TableVIRow{Workload: mix.Name}
		for _, nested := range []bool{false, true} {
			r, err := NewRig(SmallMachine())
			if err != nil {
				return nil, err
			}
			s, err := BuildSQLService(r, nested)
			if err != nil {
				return nil, err
			}
			for _, q := range w.Setup {
				if _, err := s.Query(q); err != nil {
					return nil, fmt.Errorf("%s setup (%s): %w", mix.Name, variantName(nested), err)
				}
			}
			start := time.Now()
			for _, q := range w.Queries {
				if _, err := s.Query(q); err != nil {
					return nil, fmt.Errorf("%s (%s): %w", mix.Name, variantName(nested), err)
				}
			}
			qps := float64(len(w.Queries)) / time.Since(start).Seconds()
			if nested {
				row.NestQPS = qps
			} else {
				row.MonoQPS = qps
			}
		}
		row.Normalized = row.NestQPS / row.MonoQPS
		row.OverheadUS = 1e6/row.NestQPS - 1e6/row.MonoQPS
		row.SQLiteEquivNorm = sqliteQueryUS / (sqliteQueryUS + row.OverheadUS)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableVI formats the rows.
func RenderTableVI(rows []TableVIRow) *Table {
	t := &Table{
		Title:   "Table VI — SQLite throughput with YCSB (uniform random requests), normalized to monolithic",
		Headers: []string{"Workload", "Mono q/s", "Nested q/s", "Normalized", "Overhead us/q", "SQLite-equiv norm"},
		Notes: []string{
			"paper: 0.99 / 0.99 / 0.98 / 0.98 — under 2% overhead from per-query encryption + transitions",
			"this repo's SQL engine runs queries in single-digit microseconds, so the same absolute overhead",
			fmt.Sprintf("shows as a larger ratio; the last column projects it onto a %v-us/query SQLite", sqliteQueryUS),
		},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, f2(r.MonoQPS), f2(r.NestQPS), f3(r.Normalized), f2(r.OverheadUS), f3(r.SQLiteEquivNorm))
	}
	return t
}
