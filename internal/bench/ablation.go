//nescheck:allow determinism the ablation compares host wall time of call paths by design; simulated costs are tracked separately via trace.Recorder cycles

package bench

import (
	"fmt"
	"time"

	"nestedenclave/internal/core"
	"nestedenclave/internal/datasets"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// This file implements the ablation experiments DESIGN.md calls out: each
// isolates one design choice of the nested-enclave proposal and measures
// what it buys (or costs).

// AblationTransitionPath quantifies the direct NEENTER/NEEXIT path against
// the only alternative monolithic SGX offers: exiting to the untrusted
// world and re-entering the other enclave (ocall + ecall detour). This is
// the paper's core motivation — "switching ... does not require to jump to
// the non-enclave context".
type AblationTransitionResult struct {
	DirectUSPerCall float64
	DetourUSPerCall float64
	DirectCycles    int64
	DetourCycles    int64
}

// AblationTransitionPath runs iters calls down each path.
func AblationTransitionPath(iters int) (*AblationTransitionResult, error) {
	if iters <= 0 {
		iters = 20_000
	}
	r, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	outerImg := sdk.NewImage("ab-outer", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("ab-inner", 0x1000_0000, sdk.DefaultLayout())
	outerImg.AllowOCall("detour")
	innerImg.RegisterECall("noop", func(env *sdk.Env, args []byte) ([]byte, error) { return nil, nil })
	outerImg.RegisterECall("direct_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		inner := env.E.Inners()[0]
		for i := 0; i < iters; i++ {
			if _, err := env.NECall(inner, "noop", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterECall("detour_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < iters; i++ {
			// The monolithic detour: leave this enclave (ocall), have the
			// untrusted runtime ecall into the peer, and come back.
			if _, err := env.OCall("detour", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	inner, outer, err := r.LoadPair(innerImg, outerImg)
	if err != nil {
		return nil, err
	}
	r.Host.RegisterOCall("detour", func(args []byte) ([]byte, error) {
		return inner.ECall("noop", nil)
	})

	res := &AblationTransitionResult{}
	c0 := r.M.Rec.Cycles()
	start := time.Now()
	if _, err := outer.ECall("direct_loop", nil); err != nil {
		return nil, err
	}
	res.DirectUSPerCall = us(time.Since(start), iters)
	res.DirectCycles = (r.M.Rec.Cycles() - c0) / int64(iters)

	c0 = r.M.Rec.Cycles()
	start = time.Now()
	if _, err := outer.ECall("detour_loop", nil); err != nil {
		return nil, err
	}
	res.DetourUSPerCall = us(time.Since(start), iters)
	res.DetourCycles = (r.M.Rec.Cycles() - c0) / int64(iters)
	return res, nil
}

// RenderAblationTransition formats the result.
func RenderAblationTransition(a *AblationTransitionResult) *Table {
	t := &Table{
		Title:   "Ablation — direct NEENTER/NEEXIT vs exit-and-re-enter detour",
		Headers: []string{"Path", "us/call", "model cycles/call"},
	}
	t.AddRow("direct (n_ecall)", f2(a.DirectUSPerCall), fmt.Sprint(a.DirectCycles))
	t.AddRow("detour (ocall + ecall)", f2(a.DetourUSPerCall), fmt.Sprint(a.DetourCycles))
	return t
}

// AblationShootdownResult compares the precise inner-aware ETRACK tracker
// with the paper's "simplified, but potentially more costly" broadcast
// alternative, counting shootdown IPIs during an eviction storm.
type AblationShootdownResult struct {
	PreciseIPIs   int64
	BroadcastIPIs int64
	Evictions     int
}

// AblationShootdown evicts/reloads an outer page n times under each policy
// while an unrelated core runs non-enclave work.
func AblationShootdown(n int) (*AblationShootdownResult, error) {
	if n <= 0 {
		n = 50
	}
	res := &AblationShootdownResult{Evictions: n}
	for _, broadcast := range []bool{false, true} {
		r, err := NewRig(SmallMachine())
		if err != nil {
			return nil, err
		}
		if broadcast {
			r.M.Tracker = sgx.BroadcastTracker{}
		}
		outerImg := sdk.NewImage("sd-outer", 0x2000_0000, sdk.DefaultLayout())
		innerImg := sdk.NewImage("sd-inner", 0x1000_0000, sdk.DefaultLayout())
		outerImg.RegisterECall("touch", func(env *sdk.Env, args []byte) ([]byte, error) {
			_, err := env.Read(env.E.Image().HeapBase(), 8)
			return nil, err
		})
		_, outer, err := r.LoadPair(innerImg, outerImg)
		if err != nil {
			return nil, err
		}
		heap := outerImg.HeapBase()
		for i := 0; i < n; i++ {
			if _, err := outer.ECall("touch", nil); err != nil {
				return nil, err
			}
			if err := r.K.Driver.EvictPage(r.Host.Proc, outer.SECS(), heap); err != nil {
				return nil, fmt.Errorf("evict %d (broadcast=%v): %w", i, broadcast, err)
			}
		}
		ipis := r.M.Rec.Get(trace.EvIPI)
		if broadcast {
			res.BroadcastIPIs = ipis
		} else {
			res.PreciseIPIs = ipis
		}
	}
	return res, nil
}

// RenderAblationShootdown formats the result.
func RenderAblationShootdown(a *AblationShootdownResult) *Table {
	t := &Table{
		Title:   "Ablation — ETRACK thread tracking: precise (inner-aware) vs broadcast-to-all-cores",
		Headers: []string{"Policy", "shootdown IPIs", "per eviction"},
		Notes:   []string{"IV-E: broadcast 'can potentially cause exceptions even for unrelated cores, but the tracking becomes simpler'"},
	}
	t.AddRow("precise (TrackerExt)", fmt.Sprint(a.PreciseIPIs), f2(float64(a.PreciseIPIs)/float64(a.Evictions)))
	t.AddRow("broadcast", fmt.Sprint(a.BroadcastIPIs), f2(float64(a.BroadcastIPIs)/float64(a.Evictions)))
	return t
}

// AblationTLBFlushResult quantifies the cost of the mandatory TLB flush on
// every nested transition: NEENTER/NEEXIT must flush so the "TLB holds only
// valid translations" invariant survives the protection-domain change. The
// measurement separates the flush cycles from the rest of the transition
// and counts the refill misses the flushes induce.
type AblationTLBFlushResult struct {
	FlushesPerCall      float64
	RefillMissesPerCall float64
	FlushCycleShare     float64 // flush cycles / total cycles of the run
}

// AblationTLBFlush drives n_ecall round trips in which the inner enclave
// touches a small working set, so every flush forces refills.
func AblationTLBFlush(iters int) (*AblationTLBFlushResult, error) {
	if iters <= 0 {
		iters = 5_000
	}
	r, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	outerImg := sdk.NewImage("tf-outer", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("tf-inner", 0x1000_0000, sdk.DefaultLayout())
	innerImg.RegisterECall("touch", func(env *sdk.Env, args []byte) ([]byte, error) {
		// Touch four pages of the inner heap — each call re-fills what the
		// transition flushed.
		for i := 0; i < 4; i++ {
			if _, err := env.Read(env.E.Image().HeapBase()+isa.VAddr(i)*isa.PageSize, 8); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterECall("drive", func(env *sdk.Env, args []byte) ([]byte, error) {
		inner := env.E.Inners()[0]
		for i := 0; i < iters; i++ {
			if _, err := env.NECall(inner, "touch", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	_, outer, err := r.LoadPair(innerImg, outerImg)
	if err != nil {
		return nil, err
	}
	flush0 := r.M.Rec.Get(trace.EvTLBFlush)
	miss0 := r.M.Rec.Get(trace.EvTLBMiss)
	cyc0 := r.M.Rec.Cycles()
	if _, err := outer.ECall("drive", nil); err != nil {
		return nil, err
	}
	flushes := r.M.Rec.Get(trace.EvTLBFlush) - flush0
	misses := r.M.Rec.Get(trace.EvTLBMiss) - miss0
	cycles := r.M.Rec.Cycles() - cyc0
	return &AblationTLBFlushResult{
		FlushesPerCall:      float64(flushes) / float64(iters),
		RefillMissesPerCall: float64(misses) / float64(iters),
		FlushCycleShare:     float64(flushes*trace.CostTLBFlush) / float64(cycles),
	}, nil
}

// RenderAblationTLBFlush formats the result.
func RenderAblationTLBFlush(a *AblationTLBFlushResult) *Table {
	t := &Table{
		Title:   "Ablation — TLB flush cost on nested transitions",
		Headers: []string{"flushes/n_ecall", "refill misses/n_ecall", "flush share of cycles"},
		Notes:   []string{"the flush is mandatory: skipping it would leave inner translations visible to the outer enclave"},
	}
	t.AddRow(f2(a.FlushesPerCall), f2(a.RefillMissesPerCall), f3(a.FlushCycleShare))
	return t
}

// AblationDepthRow measures access-validation cost vs nesting depth (§VIII:
// "arbitrary levels of nesting only increase the validation time").
type AblationDepthRow struct {
	Depth         int
	ValidateSteps int64 // steps for one innermost->outermost page fill
	NECallChainUS float64
}

// AblationNestingDepth builds chains of the given depths; for each, the
// innermost enclave reads the outermost enclave's memory (one TLB fill) and
// the full n_ecall chain is traversed.
func AblationNestingDepth(depths []int) ([]AblationDepthRow, error) {
	if len(depths) == 0 {
		depths = []int{2, 3, 4, 5}
	}
	var rows []AblationDepthRow
	for _, depth := range depths {
		m, err := sgx.New(SmallMachine())
		if err != nil {
			return nil, err
		}
		ext := core.Enable(m, core.Config{}) // unlimited depth
		k := kos.New(m)
		host := sdk.NewHost(k, ext)

		imgs := make([]*sdk.Image, depth) // imgs[0] innermost
		for i := range imgs {
			imgs[i] = sdk.NewImage(fmt.Sprintf("d%d", i), isa.VAddr(0x1000_0000*uint64(i+1)), sdk.DefaultLayout())
		}
		// Innermost reads the outermost heap.
		outermostHeap := imgs[depth-1].HeapBase()
		imgs[0].RegisterECall("probe", func(env *sdk.Env, args []byte) ([]byte, error) {
			return env.Read(outermostHeap, 8)
		})
		// Each level calls down one level (outermost entered first).
		for i := depth - 1; i >= 1; i-- {
			i := i
			imgs[i].RegisterECall("chain", func(env *sdk.Env, args []byte) ([]byte, error) {
				inner := env.E.Inners()[0]
				if i == 1 {
					return env.NECall(inner, "probe", args)
				}
				return env.NECall(inner, "chain", args)
			})
		}
		encls := make([]*sdk.Enclave, depth)
		authors := measure.MustNewAuthor()
		for i := range imgs {
			var outers, inners []measure.Digest
			if i+1 < depth {
				outers = append(outers, imgs[i+1].Measure())
			}
			if i > 0 {
				inners = append(inners, imgs[i-1].Measure())
			}
			e, err := host.Load(imgs[i].Sign(authors, outers, inners))
			if err != nil {
				return nil, err
			}
			encls[i] = e
		}
		for i := 0; i+1 < depth; i++ {
			if err := host.Associate(encls[i], encls[i+1]); err != nil {
				return nil, err
			}
		}
		entry := "chain"
		if depth == 1 {
			entry = "probe"
		}
		// Warm up structures, then measure.
		if _, err := encls[depth-1].ECall(entry, nil); err != nil {
			return nil, err
		}
		steps0 := m.Rec.Get(trace.EvValidateStep)
		start := time.Now()
		const iters = 300
		for i := 0; i < iters; i++ {
			if _, err := encls[depth-1].ECall(entry, nil); err != nil {
				return nil, err
			}
		}
		rows = append(rows, AblationDepthRow{
			Depth:         depth,
			ValidateSteps: (m.Rec.Get(trace.EvValidateStep) - steps0) / iters,
			NECallChainUS: us(time.Since(start), iters),
		})
	}
	return rows, nil
}

// RenderAblationDepth formats the rows.
func RenderAblationDepth(rows []AblationDepthRow) *Table {
	t := &Table{
		Title:   "Ablation — multi-level nesting depth vs validation cost",
		Headers: []string{"Depth", "validate steps/round-trip", "chain round-trip (us)"},
		Notes:   []string{"VIII: deeper nesting only lengthens TLB-miss validation; no extra hardware"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Depth), fmt.Sprint(r.ValidateSteps), f2(r.NECallChainUS))
	}
	return t
}

// TableVRender renders the dataset table (an input of the evaluation).
func TableVRender() *Table {
	t := &Table{
		Title:   "Table V — datasets used for evaluating LibSVM (synthetic surrogates, same shapes)",
		Headers: []string{"name", "class", "training size", "testing size", "feature"},
		Notes:   []string{"'-' means only training data exists; a fraction of the training set is reused for testing"},
	}
	for _, s := range datasets.TableV() {
		test := "-"
		if s.Test > 0 {
			test = fmt.Sprint(s.Test)
		}
		t.AddRow(s.Name, fmt.Sprint(s.Classes), fmt.Sprint(s.Train), test, fmt.Sprint(s.Features))
	}
	return t
}
