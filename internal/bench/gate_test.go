package bench

import (
	"strings"
	"testing"
)

// gateSnapshot builds a representative experiment snapshot for gate tests.
func gateSnapshot() *ExperimentSnapshot {
	return &ExperimentSnapshot{
		Name:   "synthetic",
		Cycles: 9_000_000,
		WallMS: 12.5, // never gated
		Counters: map[string]int64{
			"page_walk": 682,
			"tlb_miss":  682,
			"ewb":       12,
			"eld":       12,
			"llc_hit":   1700, // not a gated counter
		},
		Histograms: map[string]HistogramJSON{
			"ecall":   {Count: 341, SumCyc: 8_929_914, MeanCyc: 26187.43},
			"n_ocall": {Count: 341, SumCyc: 4_095_557, MeanCyc: 12010.43},
		},
	}
}

// clone deep-copies the snapshot so tests can doctor one side.
func (s *ExperimentSnapshot) clone() *ExperimentSnapshot {
	c := *s
	c.Counters = map[string]int64{}
	for k, v := range s.Counters {
		c.Counters[k] = v
	}
	c.Histograms = map[string]HistogramJSON{}
	for k, v := range s.Histograms {
		c.Histograms[k] = v
	}
	return &c
}

// TestGateSelfComparison: a snapshot gated against itself passes with every
// ratio exactly 1 — the committed-baseline workflow's steady state.
func TestGateSelfComparison(t *testing.T) {
	base := gateSnapshot()
	results := CompareGate(base, base.clone(), 0)
	if GateFailed(results) {
		t.Fatalf("self-comparison failed:\n%s", RenderGate("self", results, true))
	}
	for _, r := range results {
		if r.Ratio != 1 {
			t.Errorf("%s: self ratio = %v, want exactly 1", r.Metric, r.Ratio)
		}
	}
	// Exactly the gated metric set: cycles, 2×(mean+count), 4 gated counters
	// present in the snapshot; llc_hit and wall_ms are not gated.
	if len(results) != 9 {
		t.Errorf("gated %d metrics, want 9:\n%s", len(results), RenderGate("self", results, false))
	}
	for _, r := range results {
		if r.Metric == "counter.llc_hit" || strings.Contains(r.Metric, "wall") {
			t.Errorf("ungated metric %s leaked into the gate", r.Metric)
		}
	}
}

// TestGateCatchesWalkSlowdown plants the acceptance criterion's deliberate
// 2× page-walk slowdown and demands the gate fail on exactly the walk-path
// metrics.
func TestGateCatchesWalkSlowdown(t *testing.T) {
	base := gateSnapshot()
	cur := base.clone()
	cur.Counters["page_walk"] *= 2
	cur.Counters["tlb_miss"] *= 2
	h := cur.Histograms["ecall"]
	h.MeanCyc *= 2 // the walk cost surfaces in the call latency
	cur.Histograms["ecall"] = h
	cur.Cycles = int64(float64(cur.Cycles) * 1.8)

	results := CompareGate(base, cur, 0.05)
	if !GateFailed(results) {
		t.Fatal("gate passed a 2× walk-path slowdown")
	}
	failed := map[string]bool{}
	for _, r := range results {
		if r.Failed {
			failed[r.Metric] = true
		}
	}
	for _, want := range []string{"counter.page_walk", "counter.tlb_miss", "hist.ecall.mean_cycles", "cycles"} {
		if !failed[want] {
			t.Errorf("metric %s did not fail:\n%s", want, RenderGate("walk2x", results, false))
		}
	}
	for _, clean := range []string{"hist.n_ocall.mean_cycles", "hist.ecall.count", "counter.ewb"} {
		if failed[clean] {
			t.Errorf("unchanged metric %s wrongly failed", clean)
		}
	}
}

// TestGateTolerance pins the one-sided band: regressions inside tolerance
// and improvements of any size pass.
func TestGateTolerance(t *testing.T) {
	base := gateSnapshot()

	within := base.clone()
	within.Cycles = int64(float64(base.Cycles) * 1.04) // +4% < 5%
	if results := CompareGate(base, within, 0.05); GateFailed(results) {
		t.Errorf("+4%% regression failed a 5%% gate:\n%s", RenderGate("within", results, true))
	}

	beyond := base.clone()
	beyond.Cycles = int64(float64(base.Cycles) * 1.06) // +6% > 5%
	if results := CompareGate(base, beyond, 0.05); !GateFailed(results) {
		t.Error("+6% regression passed a 5% gate")
	}

	faster := base.clone()
	faster.Cycles = base.Cycles / 2
	faster.Counters["page_walk"] = 1
	if results := CompareGate(base, faster, 0.05); GateFailed(results) {
		t.Errorf("improvement failed the gate:\n%s", RenderGate("faster", results, true))
	}
}

// TestGateVanishedMetric: a gated path that silently stops being exercised
// is a failure, not a 100% improvement.
func TestGateVanishedMetric(t *testing.T) {
	base := gateSnapshot()
	cur := base.clone()
	cur.Counters["page_walk"] = 0

	results := CompareGate(base, cur, 0.05)
	var vanished bool
	for _, r := range results {
		if r.Metric == "counter.page_walk" && r.Failed && strings.Contains(r.Reason, "vanished") {
			vanished = true
		}
	}
	if !vanished {
		t.Errorf("zeroed gated counter not flagged:\n%s", RenderGate("vanish", results, false))
	}

	// A metric new in the current run (absent from baseline) is not gated.
	grown := base.clone()
	grown.Counters["ipi"] = 40
	if results := CompareGate(base, grown, 0.05); GateFailed(results) {
		t.Errorf("new metric failed the gate:\n%s", RenderGate("new", results, true))
	}
}

// TestGateAgainstLiveRun gates a real (tiny) profiling run against its own
// snapshot loaded through the experiment machinery, proving the repro -gate
// flow end to end inside the test suite.
func TestGateAgainstLiveRun(t *testing.T) {
	run := func() *ExperimentSnapshot {
		BeginExperiment("gate-live")
		if _, err := ProfileSQLService(ProfileConfig{Queries: 40}); err != nil {
			t.Fatal(err)
		}
		return EndExperiment()
	}
	base, cur := run(), run()
	results := CompareGate(base, cur, 0.05)
	if GateFailed(results) {
		t.Fatalf("two identical runs failed the gate:\n%s", RenderGate("live", results, true))
	}
	for _, r := range results {
		if r.Ratio != 1 {
			t.Errorf("%s: live ratio = %v, want exactly 1 (deterministic workload)", r.Metric, r.Ratio)
		}
	}
}
