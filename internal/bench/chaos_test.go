package bench

import (
	"os"
	"strconv"
	"testing"

	"nestedenclave/internal/chaos"
)

// soakConfig reads the documented knobs: CHAOS_SEED and CHAOS_OPS override
// the default deterministic run (see TESTING.md for the replay recipe).
func soakConfig(t *testing.T) ChaosConfig {
	cfg := ChaosConfig{Seed: 0xC0FFEE, Ops: 250, Records: 60}
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		cfg.Seed = n
	}
	if v := os.Getenv("CHAOS_OPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_OPS: %v", err)
		}
		cfg.Ops = n
	}
	return cfg
}

// TestChaosSoak is the headline robustness test: the nested SQL service
// survives active fault injection with zero data loss or corruption, every
// fault either retried to success or surfaced as a typed error, and the
// machine's structural invariants intact at the end.
func TestChaosSoak(t *testing.T) {
	cfg := soakConfig(t)
	rep, err := ChaosSoak(cfg)
	if err != nil {
		t.Fatalf("soak did not complete: %v", err)
	}
	t.Logf("\n%s", rep)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.TotalInjected() == 0 {
		t.Fatal("injector fired nothing; the soak is vacuous")
	}
	if rep.Failed*5 > rep.Ops {
		t.Errorf("error rate too high: %d of %d ops failed", rep.Failed, rep.Ops)
	}
	if rep.ChannelDelivered != rep.ChannelSent {
		t.Errorf("side channel: sent %d delivered %d", rep.ChannelSent, rep.ChannelDelivered)
	}
}

// TestChaosSoakReplaysDeterministically re-runs the same seed and expects
// identical injection counts and outcomes — the property that makes any
// soak failure reproducible from its logged seed.
func TestChaosSoakReplaysDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := ChaosConfig{Seed: 7, Ops: 120, Records: 40}
	a, err := ChaosSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failed != b.Failed || a.SvcRestarts != b.SvcRestarts || a.ClientRestarts != b.ClientRestarts {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
	for site, sa := range a.Stats {
		if sb := b.Stats[site]; sa != sb {
			t.Errorf("site %s: %+v vs %+v", site, sa, sb)
		}
	}
	_ = chaos.ErrTransient
}
