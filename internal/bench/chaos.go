package bench

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"nestedenclave/internal/channel"
	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/sqldb"
	"nestedenclave/internal/ycsb"
)

// This file is the chaos soak: the §VI-B SQL service (per-client inner
// enclave encrypting queries, shared SQLite-like engine in the outer
// enclave) run under active fault injection, with both enclaves supervised
// for self-healing. The harness drives a YCSB workload while the injector
// flips DRAM bits under the MEE, fails EPC allocations, drops/duplicates/
// corrupts IPC frames, fires interrupt storms mid-call, and stalls cores —
// and asserts, with an at-most-once oracle, that no acknowledged write is
// ever lost or corrupted and that every injected fault is either retried to
// success or surfaced as a typed error.

// ChaosConfig sizes a soak run.
type ChaosConfig struct {
	// Seed drives the fault injector; the same seed replays the same run.
	Seed uint64
	// Ops is the number of YCSB operations (0 → 300).
	Ops int
	// Records is the preloaded row count (0 → 100).
	Records int
	// Sites overrides the fault-site knobs (nil → DefaultChaosSites()).
	Sites map[chaos.Site]chaos.SiteConfig
}

// DefaultChaosSites returns soak knobs that exercise every fault site while
// keeping the run short: high-frequency hooks (memory access, MEE line
// fills) get low probabilities and hard budgets so the soak terminates.
func DefaultChaosSites() map[chaos.Site]chaos.SiteConfig {
	return map[chaos.Site]chaos.SiteConfig{
		chaos.SiteDRAMBitFlip: {Prob: 0.004, Budget: 4},
		chaos.SiteEPCAlloc:    {Prob: 0.02, Budget: 6},
		chaos.SiteIPCDrop:     {Prob: 0.08, Budget: 25},
		chaos.SiteIPCDup:      {Prob: 0.08, Budget: 25},
		chaos.SiteIPCCorrupt:  {Prob: 0.08, Budget: 25},
		chaos.SiteAEXStorm:    {Prob: 0.005, Budget: 40, Burst: 3},
		chaos.SiteSlowCore:    {Prob: 0.005, Budget: 40},
	}
}

// chaosMachine shrinks the LLC to a few sets so the soak's working set
// cannot hide in the cache: line fills keep flowing through the MEE, which
// is where the DRAM bit-flip site lives.
func chaosMachine() sgx.Config {
	cfg := sgx.SmallConfig()
	cfg.LLC.SizeBytes = 1 << 12
	return cfg
}

// ChaosReport summarizes a soak run.
type ChaosReport struct {
	Ops    int // operations attempted
	Failed int // operations surfaced as (typed) errors after retries

	SvcRestarts    int
	ClientRestarts int

	// ChannelSent/ChannelDelivered count the reliable side stream; they must
	// match for the run to pass.
	ChannelSent      int
	ChannelDelivered int

	Stats map[string]chaos.SiteStats

	// Violations is empty on a passing run: every entry is a data-loss,
	// data-corruption, or machine-invariant finding.
	Violations []string
}

// TotalInjected sums injections across sites.
func (r *ChaosReport) TotalInjected() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.Injected
	}
	return n
}

func (r *ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %d ops, %d failed (typed errors), svc restarts %d, client restarts %d\n",
		r.Ops, r.Failed, r.SvcRestarts, r.ClientRestarts)
	fmt.Fprintf(&b, "side channel: %d sent, %d delivered\n", r.ChannelSent, r.ChannelDelivered)
	for site, s := range r.Stats {
		fmt.Fprintf(&b, "  %-12s injected %4d  recovered %4d\n", site, s.Injected, s.Recovered)
	}
	if len(r.Violations) == 0 {
		b.WriteString("violations: none\n")
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	return b.String()
}

// chaosSvcState is the database engine's state, keyed by EID so a restarted
// instance (fresh EID) starts empty until the sealed checkpoint is replayed
// into it. The journal of applied mutations IS the checkpoint: sealed to
// MRENCLAVE, it survives the instance and rebuilds the exact table contents.
type chaosSvcState struct {
	mu    sync.Mutex
	byEID map[isa.EID]*chaosSvcDB
}

type chaosSvcDB struct {
	db      *sqldb.DB
	journal []string
}

func (st *chaosSvcState) get(eid isa.EID) *chaosSvcDB {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.byEID[eid]
	if !ok {
		d = &chaosSvcDB{db: sqldb.New()}
		st.byEID[eid] = d
	}
	return d
}

// chaosFrame packs a sql_exec reply: [8-byte LE result length][result bytes]
// [sealed checkpoint (empty for reads)].
func chaosFrame(result, sealed []byte) []byte {
	out := make([]byte, 8, 8+len(result)+len(sealed))
	binary.LittleEndian.PutUint64(out, uint64(len(result)))
	out = append(out, result...)
	return append(out, sealed...)
}

func splitChaosFrame(raw []byte) (result, sealed []byte, err error) {
	if len(raw) < 8 {
		return nil, nil, fmt.Errorf("chaos: short reply (%d bytes)", len(raw))
	}
	n := binary.LittleEndian.Uint64(raw)
	if 8+n > uint64(len(raw)) {
		return nil, nil, fmt.Errorf("chaos: corrupt reply framing")
	}
	return raw[8 : 8+n], raw[8+n:], nil
}

// chaosHarness wires the supervised service pair.
type chaosHarness struct {
	r      *Rig
	svcSup *sdk.Supervisor
	cliSup *sdk.Supervisor
}

// buildChaosService deploys the nested SQL service with both enclaves under
// supervision: the stateful engine recovers from sealed checkpoints, the
// stateless client just reloads. Association is re-established by the
// OnRestart hooks whenever either side is replaced.
func buildChaosService(r *Rig) (*chaosHarness, error) {
	h := &chaosHarness{r: r}

	block, err := aes.NewCipher((&[16]byte{7})[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}

	state := &chaosSvcState{byEID: make(map[isa.EID]*chaosSvcDB)}
	svcImg := sdk.NewImage("chaos-sqlite-svc", 0x2000_0000, sdk.DefaultLayout())
	svcImg.RegisterNOCall("sql_exec", func(env *sdk.Env, args []byte) ([]byte, error) {
		st := state.get(env.E.SECS().EID)
		// Stage the incoming query through an engine-side scratch region as
		// large as the client's, so injected faults land on service pages
		// with comparable odds — that is what makes the sealed-checkpoint
		// recovery path fire, not just client reloads.
		const scratch = 8 << 10
		buf, merr := env.Malloc(scratch)
		if merr != nil {
			return nil, merr
		}
		page := make([]byte, scratch)
		for i := range page {
			page[i] = args[i%len(args)]
		}
		if werr := env.Write(buf, page); werr != nil {
			return nil, werr
		}
		staged, gerr := env.Read(buf, len(args))
		if gerr != nil {
			return nil, gerr
		}
		if ferr := env.Free(buf); ferr != nil {
			return nil, ferr
		}
		q := string(staged)
		parsed, perr := sqldb.Parse(q)
		if perr != nil {
			return nil, perr
		}
		_, isSelect := parsed.(*sqldb.SelectStmt)
		res, xerr := execAndRender(st.db, q)
		if xerr != nil {
			if _, isIns := parsed.(*sqldb.InsertStmt); isIns && strings.Contains(xerr.Error(), "duplicate primary key") {
				// A retried INSERT whose first application was acknowledged
				// at the engine but lost in flight: treat the replay as a
				// no-op so supervisor-level retries stay idempotent.
				return chaosFrame([]byte("affected=0 rows=0"), nil), nil
			}
			return nil, xerr
		}
		if isSelect {
			return chaosFrame(res, nil), nil
		}
		st.journal = append(st.journal, q)
		sealed, serr := env.Seal(sgx.SealToEnclave, []byte(strings.Join(st.journal, "\n")))
		if serr != nil {
			return nil, serr
		}
		return chaosFrame(res, sealed), nil
	})
	svcImg.RegisterECall("sql_restore", func(env *sdk.Env, args []byte) ([]byte, error) {
		pt, uerr := env.Unseal(sgx.SealToEnclave, args)
		if uerr != nil {
			return nil, uerr
		}
		st := state.get(env.E.SECS().EID)
		st.db, st.journal = sqldb.New(), nil
		for _, q := range strings.Split(string(pt), "\n") {
			if q == "" {
				continue
			}
			if _, xerr := st.db.Exec(q); xerr != nil {
				return nil, fmt.Errorf("chaos: checkpoint replay of %q: %w", q, xerr)
			}
			st.journal = append(st.journal, q)
		}
		return nil, nil
	})
	svcImg.RegisterECall("sql_checkpoint", func(env *sdk.Env, args []byte) ([]byte, error) {
		st := state.get(env.E.SECS().EID)
		return env.Seal(sgx.SealToEnclave, []byte(strings.Join(st.journal, "\n")))
	})

	cliImg := sdk.NewImage("chaos-sql-client", 0x1000_0000, sdk.DefaultLayout())
	cliImg.RegisterECall("query", func(env *sdk.Env, args []byte) ([]byte, error) {
		rewritten, rerr := rewriteEncrypted(aead, string(args))
		if rerr != nil {
			return nil, rerr
		}
		// Stage the query through a trusted-heap scratch region larger than
		// the soak machine's LLC, so every call streams lines through the
		// MEE — the surface where bit flips, interrupt storms, and core
		// stalls land.
		const scratch = 8 << 10
		buf, merr := env.Malloc(scratch)
		if merr != nil {
			return nil, merr
		}
		page := make([]byte, scratch)
		for i := range page {
			page[i] = rewritten[i%len(rewritten)]
		}
		if werr := env.Write(buf, page); werr != nil {
			return nil, werr
		}
		staged, gerr := env.Read(buf, len(rewritten))
		if gerr != nil {
			return nil, gerr
		}
		if ferr := env.Free(buf); ferr != nil {
			return nil, ferr
		}
		if string(staged) != rewritten {
			return nil, fmt.Errorf("chaos: staged query corrupted in enclave heap")
		}
		return env.NOCall("sql_exec", staged)
	})

	si, so := SignPair(cliImg, svcImg)
	retry := sdk.RetryPolicy{MaxAttempts: 6, Seed: 0xC4A05}

	h.svcSup, err = sdk.Supervise(r.Host, so, sdk.SupervisorConfig{
		Retry:        retry,
		MaxRestarts:  64,
		RestoreECall: "sql_restore",
		OnRestart: func(fresh *sdk.Enclave) error {
			if h.cliSup == nil {
				return nil // initial load: the client does the first Associate
			}
			if cli := h.cliSup.Enclave(); cli != nil {
				return r.Host.Associate(cli, fresh)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	h.cliSup, err = sdk.Supervise(r.Host, si, sdk.SupervisorConfig{
		Retry:       retry,
		MaxRestarts: 64,
		OnRestart: func(fresh *sdk.Enclave) error {
			if svc := h.svcSup.Enclave(); svc != nil {
				return r.Host.Associate(fresh, svc)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// call routes one query through the supervised pair. The client supervisor
// transparently retries transients and its own crashes; a crash of the
// shared service surfaces here as a permanent error, so the driver plays
// kernel: restart the service (sealed state restored) and reissue.
func (h *chaosHarness) call(q string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		out, err := h.cliSup.Call("query", []byte(q))
		if err == nil {
			return out, nil
		}
		lastErr = err
		if h.svcSup.Crashed(err) {
			if rerr := h.svcSup.Restart(); rerr != nil {
				return nil, fmt.Errorf("chaos: service restart: %w", rerr)
			}
			continue
		}
		return nil, err
	}
	return nil, lastErr
}

// chaosOracle tracks, per key, the set of acceptable field0 ciphertexts.
// Acknowledged writes pin the set to one value (exactly-once from the
// client's view); a write whose final retry still failed may or may not have
// been applied, so both old and new values stay acceptable ("" = absent).
type chaosOracle map[int64]map[string]bool

func (o chaosOracle) pin(key int64, ct string) { o[key] = map[string]bool{ct: true} }

func (o chaosOracle) widen(key int64, ct string) {
	if o[key] == nil {
		o[key] = map[string]bool{"": true}
	}
	o[key][ct] = true
}

// ChaosSoak runs the workload under injection and audits the outcome. It is
// deterministic for a fixed config: backoff advances the simulated clock and
// the injector is seed-driven.
func ChaosSoak(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Ops == 0 {
		cfg.Ops = 300
	}
	if cfg.Records == 0 {
		cfg.Records = 100
	}
	sites := cfg.Sites
	if sites == nil {
		sites = DefaultChaosSites()
	}

	r, err := NewRig(chaosMachine())
	if err != nil {
		return nil, err
	}
	h, err := buildChaosService(r)
	if err != nil {
		return nil, err
	}

	block, err := aes.NewCipher((&[16]byte{7})[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	enc := func(pt string) string { return encryptTextDet(aead, pt) }

	// Reliable side stream over kernel IPC — the soak's zero-message-loss
	// probe for the drop/duplicate/corrupt sites.
	key := [16]byte{0x42}
	tx, err := channel.NewReliable(r.K.IPC, "chaos-heartbeat", key, 512)
	if err != nil {
		return nil, err
	}
	rx, err := channel.NewReliable(r.K.IPC, "chaos-heartbeat", key, 512)
	if err != nil {
		return nil, err
	}

	// Phase 1: setup with injection disabled (the soak measures steady-state
	// resilience, not install-time fragility).
	mix := ycsb.Mix{Name: "chaos soak (40/40/15/5)", InsertP: 15, SelectP: 40, UpdateP: 40, ScanP: 5}
	w := ycsb.Generate(mix, ycsb.Config{
		Records: cfg.Records, Operations: cfg.Ops, FieldLen: 24,
	}, rand.New(rand.NewSource(int64(cfg.Seed)+1)))
	oracle := chaosOracle{}
	for _, q := range w.Setup {
		out, cerr := h.call(q)
		if cerr != nil {
			return nil, fmt.Errorf("chaos: setup %q: %w", q, cerr)
		}
		_, sealed, ferr := splitChaosFrame(out)
		if ferr != nil {
			return nil, ferr
		}
		h.svcSup.Checkpoint(sealed)
		if st, perr := sqldb.Parse(q); perr == nil {
			if ins, ok := st.(*sqldb.InsertStmt); ok && len(ins.Vals) == 2 {
				oracle.pin(ins.Vals[0].I, enc(ins.Vals[1].S))
			}
		}
	}

	// Phase 2: soak under active injection.
	inj := chaos.New(chaos.Config{Seed: cfg.Seed, Sites: sites}, r.M.Rec)
	r.M.SetChaos(inj)
	r.K.SetChaos(inj)
	rx.SetChaos(inj)

	rep := &ChaosReport{Ops: cfg.Ops}
	recvHeartbeats := func() {
		for {
			pt, ok, herr := rx.RecvRepaired(tx, 16)
			if herr != nil || !ok {
				return
			}
			if string(pt) == fmt.Sprintf("hb-%06d", rep.ChannelDelivered) {
				rep.ChannelDelivered++
			}
		}
	}
	for i, q := range w.Queries {
		tx.Send([]byte(fmt.Sprintf("hb-%06d", rep.ChannelSent)))
		rep.ChannelSent++
		recvHeartbeats()

		st, perr := sqldb.Parse(q)
		if perr != nil {
			return nil, fmt.Errorf("chaos: generated query %q: %w", q, perr)
		}
		out, cerr := h.call(q)
		if cerr != nil {
			// Op failed after all retries: the process survived and the
			// error is typed, but the write may have landed — widen the
			// oracle to accept both outcomes.
			rep.Failed++
			switch s := st.(type) {
			case *sqldb.InsertStmt:
				if len(s.Vals) == 2 {
					oracle.widen(s.Vals[0].I, enc(s.Vals[1].S))
				}
			case *sqldb.UpdateStmt:
				if len(s.Sets) == 1 && len(s.Where) == 1 {
					oracle.widen(s.Where[0].Val.I, enc(s.Sets[0].Val.S))
				}
			}
			continue
		}
		result, sealed, ferr := splitChaosFrame(out)
		if ferr != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("op %d: %v", i, ferr))
			continue
		}
		h.svcSup.Checkpoint(sealed)
		switch s := st.(type) {
		case *sqldb.InsertStmt:
			if len(s.Vals) == 2 {
				oracle.pin(s.Vals[0].I, enc(s.Vals[1].S))
			}
		case *sqldb.UpdateStmt:
			if len(s.Sets) == 1 && len(s.Where) == 1 {
				oracle.pin(s.Where[0].Val.I, enc(s.Sets[0].Val.S))
			}
		case *sqldb.SelectStmt:
			checkChaosSelect(rep, oracle, s, string(result), i)
		}
	}

	// Drain the heartbeat tail: a dropped final frame has nothing behind it
	// to reveal the gap, so nudge with retransmits.
	for guard := 0; rep.ChannelDelivered < rep.ChannelSent && guard < 4*rep.ChannelSent; guard++ {
		recvHeartbeats()
		if rep.ChannelDelivered < rep.ChannelSent {
			if terr := tx.Retransmit(uint64(rep.ChannelDelivered)); terr != nil {
				rep.Violations = append(rep.Violations, fmt.Sprintf("heartbeat %d unrecoverable: %v", rep.ChannelDelivered, terr))
				break
			}
		}
	}
	if rep.ChannelDelivered != rep.ChannelSent {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("side channel lost messages: sent %d, delivered %d", rep.ChannelSent, rep.ChannelDelivered))
	}

	// Phase 3: injection off, audit the surviving state against the oracle.
	rep.Stats = inj.Stats()
	r.M.SetChaos(nil)
	r.K.SetChaos(nil)
	rx.SetChaos(nil)

	for key, acceptable := range oracle {
		out, cerr := h.call(fmt.Sprintf("SELECT field0 FROM usertable WHERE ycsb_key = %d", key))
		if cerr != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("final audit of key %d: %v", key, cerr))
			continue
		}
		result, _, ferr := splitChaosFrame(out)
		if ferr != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("final audit of key %d: %v", key, ferr))
			continue
		}
		got := "" // absent
		if fields := strings.Split(string(result), "|"); len(fields) == 2 {
			got = fields[1]
		}
		if !acceptable[got] {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("key %d: stored value %q not in acceptable set (%d entries) — acknowledged write lost or corrupted", key, got, len(acceptable)))
		}
	}
	rep.SvcRestarts = h.svcSup.Restarts()
	rep.ClientRestarts = h.cliSup.Restarts()
	rep.Violations = append(rep.Violations, r.M.AuditInvariants()...)
	return rep, nil
}

// checkChaosSelect validates a successful SELECT's rows against the oracle.
func checkChaosSelect(rep *ChaosReport, oracle chaosOracle, s *sqldb.SelectStmt, result string, op int) {
	fields := strings.Split(result, "|")[1:] // strip the "affected=..." header
	switch len(s.Cols) {
	case 1: // point lookup: rows of (field0)
		if len(s.Where) != 1 {
			return
		}
		key := s.Where[0].Val.I
		got := ""
		if len(fields) == 1 {
			got = fields[0]
		}
		if acceptable := oracle[key]; acceptable != nil && !acceptable[got] {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("op %d: SELECT key %d returned %q, not in acceptable set", op, key, got))
			return
		}
		if got != "" {
			// A read is an observation: it collapses any ambiguity.
			oracle.pin(key, got)
		}
	case 2: // scan: rows of (ycsb_key, field0)
		for j := 0; j+1 < len(fields); j += 2 {
			var key int64
			if _, err := fmt.Sscanf(fields[j], "%d", &key); err != nil {
				continue
			}
			got := fields[j+1]
			if acceptable := oracle[key]; acceptable != nil && !acceptable[got] {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("op %d: scan row key %d value %q not in acceptable set", op, key, got))
				continue
			}
			oracle.pin(key, got)
		}
	}
}
