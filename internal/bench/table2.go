//nescheck:allow determinism Table II reports measured host wall time per transition by design; simulated costs are tracked separately via trace.Recorder cycles

package bench

import (
	"fmt"
	"time"

	"nestedenclave/internal/sdk"
	"nestedenclave/internal/trace"
)

// TableIIResult reproduces Table II: the average latency of enclave
// transition calls. The "HW" row comes from the calibrated cycle model (the
// simulator has no real SGX hardware, exactly like the paper's emulated
// nested enclave had none); the emulated rows are wall-clock measurements of
// the emulation work (context save, register scrubbing, TLB flushes, TCS
// state updates) — the same methodology as the paper's Table II, including
// its observation that emulated transitions underestimate real hardware.
type TableIIResult struct {
	HWEcallUS, HWOcallUS           float64
	HWNestEcallUS, HWNestOcallUS   float64
	EmuSGXEcallUS, EmuSGXOcallUS   float64
	EmuNestEcallUS, EmuNestOcallUS float64
	Iterations                     int
}

// TableII runs the transition microbenchmark with iters calls per row
// (the paper used one million).
func TableII(iters int) (*TableIIResult, error) {
	if iters <= 0 {
		iters = 100_000
	}
	r, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{Iterations: iters}

	// Model-derived hardware latencies. The NEENTER/NEEXIT pair undercuts
	// the ecall pair — the direct transition skips the untrusted-runtime
	// dispatch — which is the relation the paper's emulated rows show.
	res.HWEcallUS = CyclesToUS(trace.CostEENTER + trace.CostEEXIT)
	res.HWOcallUS = CyclesToUS(trace.CostEEXIT + trace.CostEENTERResume)
	res.HWNestEcallUS = CyclesToUS(trace.CostNEENTER + trace.CostNEEXIT)
	res.HWNestOcallUS = CyclesToUS(trace.CostNEEXIT + trace.CostNEENTER)

	outerImg := sdk.NewImage("t2-outer", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("t2-inner", 0x1000_0000, sdk.DefaultLayout())
	innerImg.AllowOCall("t2_noop")
	outerImg.AllowOCall("t2_noop")

	innerImg.RegisterECall("noop", func(env *sdk.Env, args []byte) ([]byte, error) {
		return nil, nil
	})
	// Emulated SGX ocall loop: one ecall performing iters ocalls.
	outerImg.RegisterECall("ocall_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < iters; i++ {
			if _, err := env.OCall("t2_noop", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	// Emulated nested loops.
	outerImg.RegisterECall("necall_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		inner := env.E.Inners()[0]
		for i := 0; i < iters; i++ {
			if _, err := env.NECall(inner, "noop", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterNOCall("lib_noop", func(env *sdk.Env, args []byte) ([]byte, error) {
		return nil, nil
	})
	// n_ocall requires a nested entry: the paper's Figure-5 state machine
	// has no inner->outer edge unless the inner was NEENTERed from the
	// outer, so the driver enters through the outer enclave.
	innerImg.RegisterECall("nocall_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < iters; i++ {
			if _, err := env.NOCall("lib_noop", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterECall("nocall_driver", func(env *sdk.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "nocall_loop", nil)
	})

	r.Host.RegisterOCall("t2_noop", func(args []byte) ([]byte, error) { return nil, nil })
	inner, outer, err := r.LoadPair(innerImg, outerImg)
	if err != nil {
		return nil, err
	}

	// Emulated SGX ecall: host -> enclave round trips.
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := inner.ECall("noop", nil); err != nil {
			return nil, err
		}
	}
	res.EmuSGXEcallUS = us(time.Since(start), iters)

	start = time.Now()
	if _, err := outer.ECall("ocall_loop", nil); err != nil {
		return nil, err
	}
	res.EmuSGXOcallUS = us(time.Since(start), iters)

	// Emulated nested n_ecall: outer -> inner round trips.
	start = time.Now()
	if _, err := outer.ECall("necall_loop", nil); err != nil {
		return nil, err
	}
	res.EmuNestEcallUS = us(time.Since(start), iters)

	start = time.Now()
	if _, err := outer.ECall("nocall_driver", nil); err != nil {
		return nil, err
	}
	res.EmuNestOcallUS = us(time.Since(start), iters)
	return res, nil
}

func us(d time.Duration, n int) float64 {
	return float64(d.Microseconds()) / float64(n)
}

// Render formats the result as the paper's Table II.
func (t *TableIIResult) Render() *Table {
	tab := &Table{
		Title:   "Table II — average latency of enclave transition calls",
		Headers: []string{"Mode", "ecall (us)", "ocall (us)"},
		Notes: []string{
			fmt.Sprintf("%d iterations per row; HW row from the calibrated cycle model at %.1f GHz", t.Iterations, CPUFreqGHz),
			"paper: HW 3.45/3.13, emulated SGX 1.25/1.14, emulated nested 1.11/1.06",
		},
	}
	tab.AddRow("HW SGX ecall/ocall (model)", f2(t.HWEcallUS), f2(t.HWOcallUS))
	tab.AddRow("HW nested n_ecall/n_ocall (model)", f2(t.HWNestEcallUS), f2(t.HWNestOcallUS))
	tab.AddRow("Emulated SGX ecall/ocall", f2(t.EmuSGXEcallUS), f2(t.EmuSGXOcallUS))
	tab.AddRow("Emulated nested (n_ecall/n_ocall)", f2(t.EmuNestEcallUS), f2(t.EmuNestOcallUS))
	return tab
}
