//nescheck:allow determinism throughput calibration measures host wall time by design; simulated costs are tracked separately via trace.Recorder cycles

package bench

import (
	"bytes"
	"fmt"
	"time"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/ssl"
	"nestedenclave/internal/trace"
)

// This file implements the §VI-A confinement case study: an SSL echo server
// in two builds.
//
//   - Monolithic: the SSL library and the application share one enclave —
//     the current SGX deployment model, vulnerable to Heartbleed-style
//     library bugs reading application memory.
//   - Nested: the SSL library runs in the outer enclave; the application
//     (and its secrets) in an inner enclave. Record processing crosses the
//     protection boundary via n_ecall.
//
// Lines that had to change to port the monolithic server to nested enclave
// carry a trailing "// PORT:" marker; TableIII counts them, reproducing the
// paper's modified-LOC methodology over this repository's own sources.

// envMem adapts the per-call sdk.Env to the ssl.Mem interface so the SSL
// server's enclave-resident state can span ecalls. Each entry point rebinds
// the cell before touching library state.
type envMem struct{ env *sdk.Env }

func (m *envMem) Read(v isa.VAddr, n int) ([]byte, error) { return m.env.Read(v, n) }
func (m *envMem) Write(v isa.VAddr, b []byte) error       { return m.env.Write(v, b) }
func (m *envMem) Malloc(n int) (isa.VAddr, error)         { return m.env.Malloc(n) }
func (m *envMem) Free(v isa.VAddr) error                  { return m.env.Free(v) }

// EchoServer is a deployed echo service (either build) plus the attacker's
// view (the TLS client).
type EchoServer struct {
	Nested bool
	// Entry receives the TLS wire traffic (the enclave hosting the SSL
	// library: the single enclave, or the outer enclave).
	Entry *sdk.Enclave
	// App hosts the application logic and its secrets (== Entry when
	// monolithic).
	App *sdk.Enclave

	srv *ssl.Server
	mem *envMem
}

// echoLayout sizes the enclave heaps: records up to 64 KiB stage through
// the library heap.
func echoLayout() sdk.Layout {
	l := sdk.DefaultLayout()
	l.HeapPages = 64
	return l
}

// BuildEchoServer deploys the case study on the rig. vulnerable selects the
// Heartbleed-buggy SSL build.
func BuildEchoServer(r *Rig, nested, vulnerable bool) (*EchoServer, error) {
	es := &EchoServer{Nested: nested, mem: &envMem{}}
	cfg := ssl.Config{Vulnerable: vulnerable, MinVersion: ssl.VersionTLS12Like}

	// The application request handler: echo, plus entry points used by the
	// security analysis to plant and probe secrets.
	registerApp := func(img *sdk.Image) {
		img.RegisterECall("plant_secret", func(env *sdk.Env, args []byte) ([]byte, error) {
			// Arrange the Heartbleed heap: a freed low extent (reused by
			// record staging) with the secret resident just above it.
			hole, err := env.Malloc(1024)
			if err != nil {
				return nil, err
			}
			addr, err := env.Malloc(len(args))
			if err != nil {
				return nil, err
			}
			if err := env.Write(addr, args); err != nil {
				return nil, err
			}
			if err := env.Free(hole); err != nil {
				return nil, err
			}
			return le64(uint64(addr)), nil
		})
		img.RegisterECall("read_at", func(env *sdk.Env, args []byte) ([]byte, error) {
			addr := isa.VAddr(readLE64(args[:8]))
			n := int(readLE64(args[8:16]))
			return env.Read(addr, n)
		})
	}

	if !nested {
		img := sdk.NewImage("echo-server", 0x1000_0000, echoLayout())
		registerApp(img)
		es.registerTLS(img, cfg, nil)
		e, err := r.LoadSolo(img)
		if err != nil {
			return nil, err
		}
		es.Entry, es.App = e, e
		return es, nil
	}

	libImg := sdk.NewImage("ssl-lib", 0x2000_0000, echoLayout())  // PORT: split the image in two
	appImg := sdk.NewImage("echo-app", 0x1000_0000, echoLayout()) // PORT: application image
	registerApp(appImg)
	appImg.RegisterECall("app_handle", func(env *sdk.Env, args []byte) ([]byte, error) { // PORT: n_ecall target
		return args, nil // PORT: echo handler now lives in the inner enclave
	})
	es.registerTLS(libImg, cfg, func(env *sdk.Env, req []byte) []byte {
		resp, err := env.NECall(env.E.Inners()[0], "app_handle", req) // PORT: cross into the inner enclave
		if err != nil {                                               // PORT:
			return nil // PORT:
		}
		return resp
	})
	app, lib, err := r.LoadPair(appImg, libImg) // PORT: NASSO association at load
	if err != nil {
		return nil, err
	}
	es.Entry, es.App = lib, app
	return es, nil
}

// registerTLS installs the SSL library entry points on the image hosting
// the library. nestedHandler is nil for the monolithic build (the handler
// runs in-enclave) and the n_ecall proxy for the nested build.
func (es *EchoServer) registerTLS(img *sdk.Image, cfg ssl.Config, nestedHandler func(*sdk.Env, []byte) []byte) {
	img.RegisterECall("tls_client_hello", func(env *sdk.Env, args []byte) ([]byte, error) {
		es.mem.env = env
		srv, err := ssl.NewServer(cfg, es.mem)
		if err != nil {
			return nil, err
		}
		es.srv = srv
		return srv.HandleClientHello(args)
	})
	img.RegisterECall("tls_client_finished", func(env *sdk.Env, args []byte) ([]byte, error) {
		es.mem.env = env
		return nil, es.srv.HandleClientFinished(args)
	})
	img.RegisterECall("tls_record", func(env *sdk.Env, args []byte) ([]byte, error) {
		es.mem.env = env
		handler := func(req []byte) []byte { return req } // in-enclave echo
		if nestedHandler != nil {
			handler = func(req []byte) []byte { return nestedHandler(env, req) }
		}
		return es.srv.ProcessRecord(args, handler)
	})
}

// Connect performs the TLS handshake and returns the connected client.
func (es *EchoServer) Connect(cfg ssl.Config) (*ssl.Client, error) {
	client, err := ssl.NewClient(cfg)
	if err != nil {
		return nil, err
	}
	sh, err := es.Entry.ECall("tls_client_hello", client.Hello())
	if err != nil {
		return nil, err
	}
	cf, err := client.HandleServerHello(sh)
	if err != nil {
		return nil, err
	}
	if _, err := es.Entry.ECall("tls_client_finished", cf); err != nil {
		return nil, err
	}
	return client, nil
}

// Echo sends one application chunk and verifies the echoed response.
func (es *EchoServer) Echo(client *ssl.Client, chunk []byte) error {
	rec, err := client.Send(chunk)
	if err != nil {
		return err
	}
	resp, err := es.Entry.ECall("tls_record", rec)
	if err != nil {
		return err
	}
	_, pt, err := client.Recv(resp)
	if err != nil {
		return err
	}
	if !bytes.Equal(pt, chunk) {
		return fmt.Errorf("echo mismatch: sent %d bytes, got %d", len(chunk), len(pt))
	}
	return nil
}

// Figure7Row is one bar+line group of Figure 7.
type Figure7Row struct {
	ChunkBytes     int
	MonoMsgsPerSec float64
	NestMsgsPerSec float64
	// Normalized is nested/monolithic throughput (the paper's bars).
	Normalized float64
	// Calls are total boundary crossings per message (ecall/ocall plus
	// n_ecall/n_ocall), the paper's overlay lines.
	MonoCallsPerMsg float64
	NestCallsPerMsg float64
}

// Figure7Chunks are the paper's message sizes.
func Figure7Chunks() []int { return []int{128, 512, 1024, 4096, 16384} }

// Figure7 measures echo-server throughput for both builds across chunk
// sizes, msgs messages each.
func Figure7(chunks []int, msgs int) ([]Figure7Row, error) {
	if msgs <= 0 {
		msgs = 2000
	}
	var rows []Figure7Row
	for _, chunk := range chunks {
		row := Figure7Row{ChunkBytes: chunk}
		for _, nested := range []bool{false, true} {
			r, err := NewRig(SmallMachine())
			if err != nil {
				return nil, err
			}
			es, err := BuildEchoServer(r, nested, false)
			if err != nil {
				return nil, err
			}
			client, err := es.Connect(ssl.Config{MinVersion: ssl.VersionTLS12Like})
			if err != nil {
				return nil, err
			}
			payload := bytes.Repeat([]byte{0xA5}, chunk)
			// Warm-up: fault in pages, grow heaps, initialize crypto state,
			// so the timed phases measure steady-state throughput.
			for i := 0; i < msgs/10+16; i++ {
				if err := es.Echo(client, payload); err != nil {
					return nil, err
				}
			}
			// Count boundary crossings with an allocation-free region delta,
			// so the measurement loop itself does not disturb the numbers.
			reg := r.M.Rec.BeginRegion("figure7")
			var delta trace.CounterSet
			// Best-of-3 passes: wall-clock on a shared host is noisy, and
			// the fastest pass is the least disturbed estimate.
			best := 0.0
			for pass := 0; pass < 3; pass++ {
				start := time.Now()
				for i := 0; i < msgs; i++ {
					if err := es.Echo(client, payload); err != nil {
						return nil, fmt.Errorf("%s chunk %d: %w", variantName(nested), chunk, err)
					}
				}
				if mps := float64(msgs) / time.Since(start).Seconds(); mps > best {
					best = mps
				}
			}
			reg.EndInto(&delta)
			calls := float64(delta.Total(trace.EvECall, trace.EvOCall,
				trace.EvNECall, trace.EvNOCall)) / float64(3*msgs)
			mps := best
			if nested {
				row.NestMsgsPerSec, row.NestCallsPerMsg = mps, calls
			} else {
				row.MonoMsgsPerSec, row.MonoCallsPerMsg = mps, calls
			}
		}
		row.Normalized = row.NestMsgsPerSec / row.MonoMsgsPerSec
		rows = append(rows, row)
	}
	return rows, nil
}

func variantName(nested bool) string {
	if nested {
		return "nested"
	}
	return "monolithic"
}

// RenderFigure7 formats the rows.
func RenderFigure7(rows []Figure7Row) *Table {
	t := &Table{
		Title:   "Figure 7 — echo server throughput (normalized to monolithic) and calls per message",
		Headers: []string{"Chunk", "Mono msg/s", "Nested msg/s", "Normalized", "Mono calls/msg", "Nested calls/msg"},
		Notes:   []string{"paper: normalized 0.94-0.98, degradation larger at small chunks; nested issues extra n_ecall/n_ocall"},
	}
	for _, r := range rows {
		t.AddRow(byteSize(r.ChunkBytes), f2(r.MonoMsgsPerSec), f2(r.NestMsgsPerSec),
			f3(r.Normalized), f2(r.MonoCallsPerMsg), f2(r.NestCallsPerMsg))
	}
	return t
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

func le64(x uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(x >> (8 * i))
	}
	return b
}

func readLE64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}
