package bench

import (
	"bytes"
	"fmt"

	"nestedenclave/internal/channel"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/ssl"
)

// This file executes the paper's Table VII security analysis: every attack
// is actually mounted against both builds, and the table reports what
// happened — not what should happen.

// TableVIIRow is one attack row.
type TableVIIRow struct {
	Attack     string
	Monolithic string // observed outcome on the baseline
	Nested     string // observed outcome with nested enclave
	Protection string // the mechanism responsible
	// Reproduced is true when the baseline attack succeeded AND the nested
	// build stopped it — the paper's claim.
	Reproduced bool
}

// TableVII mounts all three attacks.
func TableVII() ([]TableVIIRow, error) {
	var rows []TableVIIRow

	hb, err := heartbleedAttack()
	if err != nil {
		return nil, err
	}
	rows = append(rows, *hb)

	ml, err := libraryReadAttack()
	if err != nil {
		return nil, err
	}
	rows = append(rows, *ml)

	ipc, err := ipcControlAttack()
	if err != nil {
		return nil, err
	}
	rows = append(rows, *ipc)
	return rows, nil
}

// heartbleedAttack reproduces §VI-A: the vulnerable SSL library over-reads
// its heap in response to a crafted heartbeat.
func heartbleedAttack() (*TableVIIRow, error) {
	secret := []byte("HEARTBLEED-TARGET-PRIVATE-KEY-0xFEEDFACE")
	leakFrom := func(nested bool) ([]byte, error) {
		r, err := NewRig(SmallMachine())
		if err != nil {
			return nil, err
		}
		es, err := BuildEchoServer(r, nested, true /* vulnerable */)
		if err != nil {
			return nil, err
		}
		// The application stashes a secret in ITS enclave's heap — the same
		// heap the SSL library stages records in (monolithic), or the inner
		// enclave's heap (nested).
		if _, err := es.App.ECall("plant_secret", secret); err != nil {
			return nil, err
		}
		client, err := es.Connect(ssl.Config{MinVersion: ssl.VersionTLS12Like})
		if err != nil {
			return nil, err
		}
		// The crafted heartbeat: 1 actual payload byte, 16 KB claimed.
		req, err := client.Heartbeat([]byte("x"), 16*1024)
		if err != nil {
			return nil, err
		}
		resp, err := es.Entry.ECall("tls_record", req)
		if err != nil {
			return nil, err
		}
		return client.OpenHeartbeatResponse(resp)
	}

	monoLeak, err := leakFrom(false)
	if err != nil {
		return nil, fmt.Errorf("heartbleed monolithic: %w", err)
	}
	nestLeak, err := leakFrom(true)
	if err != nil {
		return nil, fmt.Errorf("heartbleed nested: %w", err)
	}
	monoHit := bytes.Contains(monoLeak, secret)
	nestHit := bytes.Contains(nestLeak, secret)
	row := &TableVIIRow{
		Attack:     "OpenSSL vulnerability leaks main application's memory (VI-A)",
		Monolithic: outcome(monoHit, "secret leaked in heartbeat response", "no leak"),
		Nested:     outcome(nestHit, "secret leaked in heartbeat response", "no leak (over-read confined to the outer enclave heap)"),
		Protection: "isolation between enclaves",
		Reproduced: monoHit && !nestHit,
	}
	return row, nil
}

// libraryReadAttack reproduces §VI-B: the shared library attempts to read
// the user's raw private data directly.
func libraryReadAttack() (*TableVIIRow, error) {
	private := []byte("RAW-PRIVATE-FEATURES-BEFORE-FILTERING")
	probe := func(nested bool) (bool, error) {
		r, err := NewRig(SmallMachine())
		if err != nil {
			return false, err
		}
		ms, err := BuildMLService(r, nested)
		if err != nil {
			return false, err
		}
		addrB, err := ms.User.ECall("stash_private", private)
		if err != nil {
			return false, err
		}
		args := append(addrB, le64(uint64(len(private)))...)
		got, err := ms.Lib.ECall("lib_probe", args)
		if err != nil {
			return false, err
		}
		return bytes.Contains(got, private), nil
	}
	monoHit, err := probe(false)
	if err != nil {
		return nil, fmt.Errorf("library read monolithic: %w", err)
	}
	nestHit, err := probe(true)
	if err != nil {
		return nil, fmt.Errorf("library read nested: %w", err)
	}
	return &TableVIIRow{
		Attack:     "LibSVM / SQLite can read privacy-sensitive data (VI-B)",
		Monolithic: outcome(monoHit, "library read the raw private data", "read blocked"),
		Nested:     outcome(nestHit, "library read the raw private data", "read aborted (0xFF)"),
		Protection: "isolation between enclaves",
		Reproduced: monoHit && !nestHit,
	}, nil
}

// ipcControlAttack reproduces §VI-C/§VII-B: the OS selectively drops the
// initialization message of an enclave-to-enclave channel (the Panoply
// certificate-check attack), and eavesdrops on everything it routes.
func ipcControlAttack() (*TableVIIRow, error) {
	// Baseline: GCM channel over OS IPC.
	baseR, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	key := [16]byte{5}
	baseR.K.IPC.SetAdversary("verify", &kos.IPCAdversary{
		DropIf: func(p []byte) bool { return true }, // drop the init call
	})
	tx, err := channel.NewGCM(baseR.K.IPC, "verify", key)
	if err != nil {
		return nil, err
	}
	rx, err := channel.NewGCM(baseR.K.IPC, "verify", key)
	if err != nil {
		return nil, err
	}
	// The application registers its certificate-verification callback...
	tx.Send([]byte("INIT: register certificate verification callback"))
	// ...which never arrives; the verifier silently never runs, and the
	// application cannot distinguish "dropped" from "not yet sent".
	_, received, rerr := rx.Recv()
	baselineBypassed := !received && rerr == nil

	// Nested: the same exchange through the outer-enclave channel. The OS
	// has no interposition point: it can neither see nor drop the message.
	nestR, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	es, err := buildChannelPair(nestR)
	if err != nil {
		return nil, err
	}
	msg := []byte("INIT: register certificate verification callback")
	if err := es.send(msg); err != nil {
		return nil, err
	}
	// Kernel-side snooping sees only abort-page bytes.
	snoop, err := es.kernelSnoop(64)
	if err != nil {
		return nil, err
	}
	kernelBlind := !bytes.Contains(snoop, msg[:8])
	got, err := es.recv()
	if err != nil {
		return nil, err
	}
	nestedDelivered := bytes.Equal(got, msg)

	return &TableVIIRow{
		Attack:     "OS eavesdrops and controls inter-enclave communication (VI-C)",
		Monolithic: outcome(baselineBypassed, "init call silently dropped; verification bypassed", "delivery intact"),
		Nested:     outcome(nestedDelivered && kernelBlind, "delivered; kernel sees only 0xFF", "attack state unclear"),
		Protection: "secure inter-enclave communication",
		Reproduced: baselineBypassed && nestedDelivered && kernelBlind,
	}, nil
}

// deployedChannel is a deployed outer-channel rig for the IPC attack: two
// peer inner enclaves sharing a ring buffer in their outer enclave's heap.
type deployedChannel struct {
	in1, in2  func(name string, args []byte) ([]byte, error)
	argsFor   func(payload []byte) []byte
	snoopBase func(n int) ([]byte, error)
}

func buildChannelPair(r *Rig) (*deployedChannel, error) {
	return newChannelRig(r)
}

func (d *deployedChannel) send(payload []byte) error {
	out, err := d.in1("ch_send", d.argsFor(payload))
	if err != nil {
		return err
	}
	if len(out) == 0 || out[0] != 1 {
		return fmt.Errorf("channel full")
	}
	return nil
}

func (d *deployedChannel) recv() ([]byte, error) {
	out, err := d.in2("ch_recv", d.argsFor(nil))
	if err != nil {
		return nil, err
	}
	if len(out) == 0 || out[0] != 1 {
		return nil, fmt.Errorf("channel empty")
	}
	return out[1:], nil
}

func (d *deployedChannel) kernelSnoop(n int) ([]byte, error) {
	return d.snoopBase(n)
}

func outcome(hit bool, ifHit, ifMiss string) string {
	if hit {
		return ifHit
	}
	return ifMiss
}

// RenderTableVII formats the rows.
func RenderTableVII(rows []TableVIIRow) *Table {
	t := &Table{
		Title:   "Table VII — possible attacks from the case studies (executed) and security analysis",
		Headers: []string{"Attack", "Monolithic SGX", "Nested enclave", "Protection", "Reproduced"},
	}
	for _, r := range rows {
		t.AddRow(r.Attack, r.Monolithic, r.Nested, r.Protection, fmt.Sprint(r.Reproduced))
	}
	return t
}
