package bench

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"nestedenclave/internal/adversary"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
)

// expectedVerdicts pins each strategy's outcome class and (for detections)
// the detector that must fire. A campaign drift here is a security-posture
// change and should be a deliberate edit, not an accident.
var expectedVerdicts = map[adversary.Strategy]struct {
	verdict  AttackVerdict
	detector string
}{
	adversary.StratDoubleMap:        {VerdictDefended, ""},
	adversary.StratRemapUnderTLB:    {VerdictDetected, "figure6-fault"},
	adversary.StratEldRedirect:      {VerdictDetected, "figure6-fault"},
	adversary.StratBlobReplay:       {VerdictDetected, "blob-version-counter"},
	adversary.StratBlobCrossWire:    {VerdictDetected, "blob-version-counter"},
	adversary.StratDropShootdown:    {VerdictDetected, "invariant-audit"},
	adversary.StratReorderShootdown: {VerdictDefended, ""},
	adversary.StratAEXPreempt:       {VerdictDefended, ""},
	adversary.StratEresumeWrongCore: {VerdictDetected, "scheduling-guard"},
	adversary.StratIPCReplay:        {VerdictDetected, "channel-sequence"},
	adversary.StratIPCReorder:       {VerdictDefended, ""},
	adversary.StratIPCReorderDeep:   {VerdictDetected, "channel-sequence"},
}

// TestAttackCampaign is the tentpole's end-to-end guarantee: every strategy
// in the catalog, run against a live rig, ends defended or detected — never
// a breach — and each detection comes from the expected detector.
func TestAttackCampaign(t *testing.T) {
	results, err := RunCampaign(0xad5eed)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(results) != len(adversary.Strategies()) {
		t.Fatalf("campaign ran %d strategies, want %d", len(results), len(adversary.Strategies()))
	}
	for _, res := range results {
		s := res.Program.Strategy
		want, ok := expectedVerdicts[s]
		if !ok {
			t.Errorf("%s: no expected verdict pinned", s)
			continue
		}
		if res.Verdict == VerdictBreach {
			t.Errorf("%s: BREACH: %v\ntranscript:\n%s", s, res.Err, res.Transcript)
			continue
		}
		if res.Verdict != want.verdict {
			t.Errorf("%s: verdict %s, want %s (err: %v)", s, res.Verdict, want.verdict, res.Err)
			continue
		}
		if res.Attacks == 0 {
			t.Errorf("%s: zero attacks fired — vacuous run slipped through", s)
		}
		switch res.Verdict {
		case VerdictDetected:
			if res.Detection != want.detector {
				t.Errorf("%s: detector %q, want %q (err: %v)", s, res.Detection, want.detector, res.Err)
			}
			if res.Err == nil {
				t.Errorf("%s: detected but no detection error recorded", s)
			}
			if res.DetectLatency < 0 {
				t.Errorf("%s: detected but latency unmeasured", s)
			}
		case VerdictDefended:
			if res.Err != nil {
				t.Errorf("%s: defended but carries an error: %v", s, res.Err)
			}
		}
	}
	t.Logf("\n%s", Scoreboard(results).String())
}

// TestAttackReplayDeterminism: a run is a pure function of its Program —
// same (seed, strategy, ops) replays to a byte-identical transcript and an
// identical verdict line.
func TestAttackReplayDeterminism(t *testing.T) {
	for _, s := range adversary.Strategies() {
		p := DefaultProgram(s, 0x5eed)
		a, err := RunAttack(p)
		if err != nil {
			t.Fatalf("%s run 1: %v", s, err)
		}
		b, err := RunAttack(p)
		if err != nil {
			t.Fatalf("%s run 2: %v", s, err)
		}
		if a.Transcript != b.Transcript {
			t.Errorf("%s: transcripts diverge across replays:\n--- run 1\n%s--- run 2\n%s",
				s, a.Transcript, b.Transcript)
		}
		if a.Verdict != b.Verdict || a.Detection != b.Detection ||
			a.DetectLatency != b.DetectLatency || a.Attacks != b.Attacks {
			t.Errorf("%s: verdict line diverges: (%s %q %d %d) vs (%s %q %d %d)",
				s, a.Verdict, a.Detection, a.DetectLatency, a.Attacks,
				b.Verdict, b.Detection, b.DetectLatency, b.Attacks)
		}
	}
}

func TestRunAttackRejectsUnknownStrategy(t *testing.T) {
	if _, err := RunAttack(adversary.Program{Seed: 1, Strategy: "bogus", Ops: 1}); err == nil {
		t.Fatalf("unknown strategy ran")
	}
}

// TestStaleBlobReplayTwoEnclavesRace drives two enclaves through the full
// blob-replay attack concurrently — two goroutines sharing one machine, one
// driver, and one attack engine. Under -race this shakes the locking on the
// capture hoard, the blob-version ledger, and the ECall core pool; the
// functional assertion is per-enclave: the stale blob is rejected (never
// served) and the current data is recoverable afterwards.
func TestStaleBlobReplayTwoEnclavesRace(t *testing.T) {
	r, err := NewRig(SmallMachine())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adversary.New(adversary.Program{
		Seed: 0x2ace, Strategy: adversary.StratBlobReplay, Ops: 2,
	}, r.M.Rec)
	if err != nil {
		t.Fatal(err)
	}
	eng.InstallPager(r.K.Driver)

	victims := make([]*kvVictim, 2)
	for i, base := range []isa.VAddr{0x1000_0000, 0x2000_0000} {
		kv, err := buildKV(r, fmt.Sprintf("victim-%d", i), base)
		if err != nil {
			t.Fatal(err)
		}
		victims[i] = kv
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, kv := range victims {
		wg.Add(1)
		go func(i int, kv *kvVictim) {
			defer wg.Done()
			errs[i] = replayAttackRound(r, kv, byte(0x10*(i+1)))
		}(i, kv)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("enclave %d: %v", i, err)
		}
	}
	if eng.Fired() == 0 {
		t.Fatalf("attack never fired — vacuous run")
	}
	if ev := r.K.Driver.DetectionEvidence(); ev == nil || !errors.Is(ev, sgx.ErrBlobReplay) {
		t.Errorf("no blob-replay evidence recorded, got %v", ev)
	}
}

// replayAttackRound runs one enclave through evict → honest reload → mutate
// → evict → stale-replay reload, asserting detect-or-defend at each step.
func replayAttackRound(r *Rig, kv *kvVictim, tag byte) error {
	v1, v2 := kvPayload(tag), kvPayload(tag+1)
	if _, err := kv.encl.ECall("put", v1); err != nil {
		return fmt.Errorf("put v1: %w", err)
	}
	evict := func() error { return r.K.Driver.EvictPage(r.Host.Proc, kv.encl.SECS(), kv.vpage()) }
	if err := evict(); err != nil {
		return fmt.Errorf("evict v1: %w", err)
	}
	got, err := kv.encl.ECall("get", nil)
	if err != nil || !bytes.Equal(got, v1) {
		return fmt.Errorf("honest reload: got %x err %v", got, err)
	}
	if _, err := kv.encl.ECall("put", v2); err != nil {
		return fmt.Errorf("put v2: %w", err)
	}
	if err := evict(); err != nil {
		return fmt.Errorf("evict v2: %w", err)
	}
	stale, err := kv.encl.ECall("get", nil)
	if err == nil {
		// The engine's shared budget may already be spent by the sibling
		// goroutine; an honest reload must then return current data.
		if !bytes.Equal(stale, v2) {
			return fmt.Errorf("reload returned stale or wrong data: %x", stale)
		}
		return nil
	}
	if !errors.Is(err, sgx.ErrBlobReplay) && r.K.Driver.DetectionEvidence() == nil {
		return fmt.Errorf("reload failed without detection evidence: %w", err)
	}
	// Each failed retry burns at least one unit of the shared attack budget
	// (the driver re-stashes the genuine blob on every rejected substitute),
	// so within Ops+1 honest retries the reload must come back clean.
	for attempt := 0; ; attempt++ {
		got, err = kv.encl.ECall("get", nil)
		if err == nil {
			break
		}
		if attempt >= 3 {
			return fmt.Errorf("recovery after detection: %w", err)
		}
	}
	if !bytes.Equal(got, v2) {
		return fmt.Errorf("recovery returned wrong data: %x", got)
	}
	return nil
}
