//nescheck:allow determinism Figure 9 train/predict timings read host wall time by design; simulated costs are tracked separately via trace.Recorder cycles

package bench

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/gob"
	"fmt"
	"math/rand"
	"time"

	"nestedenclave/internal/datasets"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/svm"
)

// This file implements the §VI-B machine-learning-as-a-service case study
// (Figure 8's architecture, measured in Figure 9): clients feed encrypted
// data to the service; a per-client component decrypts it and filters the
// privacy-sensitive features; LibSVM-equivalent training/prediction runs on
// the filtered data.
//
//   - Monolithic: decrypt + filter + SVM all in one enclave.
//   - Nested: decrypt + filter in a per-user inner enclave; the shared SVM
//     library in the outer enclave, reached via n_ocall with only the
//     privacy-filtered data. The outer library can never observe the raw
//     private features (TableVII checks exactly that).
//
// Porting delta lines are marked "// PORT:" for TableIII.

// mlRequest is the client's (serialized, then encrypted) payload.
type mlRequest struct {
	X [][]float64
	Y []int
	// Sensitive marks feature columns that must never leave the per-user
	// component (anonymization: they are zeroed before the SVM sees data).
	Sensitive []int
}

type mlFiltered struct {
	X [][]float64
	Y []int
}

func gobEncode(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(err)
	}
	return b.Bytes()
}

func gobDecode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

func mlAEAD(key [16]byte) cipher.AEAD {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return aead
}

// decryptAndFilter is the per-user component: decrypt the client payload
// and zero the sensitive columns. Identical code in both builds; only its
// placement differs.
func decryptAndFilter(key [16]byte, ct []byte) (*mlFiltered, error) {
	aead := mlAEAD(key)
	pt, err := aead.Open(nil, make([]byte, aead.NonceSize()), ct, nil)
	if err != nil {
		return nil, fmt.Errorf("mlservice: client data authentication failed: %w", err)
	}
	var req mlRequest
	if err := gobDecode(pt, &req); err != nil {
		return nil, err
	}
	for _, x := range req.X {
		for _, col := range req.Sensitive {
			if col < len(x) {
				x[col] = 0
			}
		}
	}
	return &mlFiltered{X: req.X, Y: req.Y}, nil
}

func runSVM(f *mlFiltered, train bool, model **svm.MultiModel, testX [][]float64) ([]byte, error) {
	if train {
		mm, err := svm.TrainMulti(svm.Problem{X: f.X, Y: f.Y}, svm.Param{Kernel: svm.RBF, C: 4})
		if err != nil {
			return nil, err
		}
		*model = mm
		return le64(uint64(len(mm.Pairs))), nil
	}
	if *model == nil {
		return nil, fmt.Errorf("mlservice: predict before train")
	}
	preds := make([]int, len(testX))
	for i, x := range testX {
		preds[i] = (*model).Predict(x)
	}
	return gobEncode(preds), nil
}

// MLService is a deployed service.
type MLService struct {
	Nested bool
	// User is the enclave the client talks to (per-user inner enclave, or
	// the single enclave in the monolithic build).
	User *sdk.Enclave
	// Lib hosts the SVM library (outer enclave; == User when monolithic).
	Lib *sdk.Enclave

	key   [16]byte
	model *svm.MultiModel
}

// stashPrivate / libProbe are the Table VII probes: the user side stashes a
// raw private value in its enclave heap; the library side attempts to read
// it. In the monolithic build the library shares the enclave and succeeds —
// the exposure the paper motivates against; in the nested build the read
// returns abort-page bytes.
func registerStashPrivate(img *sdk.Image) {
	img.RegisterECall("stash_private", func(env *sdk.Env, args []byte) ([]byte, error) {
		addr, err := env.Malloc(len(args))
		if err != nil {
			return nil, err
		}
		if err := env.Write(addr, args); err != nil {
			return nil, err
		}
		return le64(uint64(addr)), nil
	})
}

func registerLibProbe(img *sdk.Image) {
	img.RegisterECall("lib_probe", func(env *sdk.Env, args []byte) ([]byte, error) {
		addr := isa.VAddr(readLE64(args[:8]))
		return env.Read(addr, int(readLE64(args[8:16])))
	})
}

// BuildMLService deploys the case study.
func BuildMLService(r *Rig, nested bool) (*MLService, error) {
	ms := &MLService{Nested: nested, key: [16]byte{0x42}}

	if !nested {
		img := sdk.NewImage("ml-service", 0x1000_0000, sdk.DefaultLayout())
		registerStashPrivate(img)
		registerLibProbe(img)
		img.RegisterECall("ml_train", func(env *sdk.Env, args []byte) ([]byte, error) {
			f, err := decryptAndFilter(ms.key, args)
			if err != nil {
				return nil, err
			}
			return runSVM(f, true, &ms.model, nil)
		})
		img.RegisterECall("ml_predict", func(env *sdk.Env, args []byte) ([]byte, error) {
			f, err := decryptAndFilter(ms.key, args)
			if err != nil {
				return nil, err
			}
			return runSVM(nil, false, &ms.model, f.X)
		})
		e, err := r.LoadSolo(img)
		if err != nil {
			return nil, err
		}
		ms.User, ms.Lib = e, e
		return ms, nil
	}

	libImg := sdk.NewImage("libsvm", 0x2000_0000, sdk.DefaultLayout())   // PORT: shared library image
	userImg := sdk.NewImage("ml-user", 0x1000_0000, sdk.DefaultLayout()) // PORT: per-user image
	registerStashPrivate(userImg)
	registerLibProbe(libImg)
	libImg.RegisterNOCall("svm_train", func(env *sdk.Env, args []byte) ([]byte, error) { // PORT: library entry via n_ocall
		var f mlFiltered
		if err := gobDecode(args, &f); err != nil { // PORT: filtered data crosses the boundary
			return nil, err
		}
		return runSVM(&f, true, &ms.model, nil)
	})
	libImg.RegisterNOCall("svm_predict", func(env *sdk.Env, args []byte) ([]byte, error) { // PORT:
		var f mlFiltered
		if err := gobDecode(args, &f); err != nil { // PORT:
			return nil, err
		}
		return runSVM(nil, false, &ms.model, f.X)
	})
	userImg.RegisterECall("ml_train", func(env *sdk.Env, args []byte) ([]byte, error) {
		f, err := decryptAndFilter(ms.key, args)
		if err != nil {
			return nil, err
		}
		return env.NOCall("svm_train", gobEncode(f)) // PORT: call the isolated library
	})
	userImg.RegisterECall("ml_predict", func(env *sdk.Env, args []byte) ([]byte, error) {
		f, err := decryptAndFilter(ms.key, args)
		if err != nil {
			return nil, err
		}
		return env.NOCall("svm_predict", gobEncode(f)) // PORT:
	})
	user, lib, err := r.LoadPair(userImg, libImg) // PORT: NASSO association
	if err != nil {
		return nil, err
	}
	ms.User, ms.Lib = user, lib
	return ms, nil
}

// Train submits an encrypted training request: the client ecalls into its
// per-user (inner) enclave, which reaches the library via n_ocall — the
// paper's Figure-8 flow.
func (ms *MLService) Train(ct []byte) ([]byte, error) {
	return ms.User.ECall("ml_train", ct)
}

// Predict submits an encrypted prediction request.
func (ms *MLService) Predict(ct []byte) ([]byte, error) {
	return ms.User.ECall("ml_predict", ct)
}

// EncryptRequest is the client side: serialize and seal a request.
func (ms *MLService) EncryptRequest(X [][]float64, Y []int, sensitive []int) []byte {
	aead := mlAEAD(ms.key)
	return aead.Seal(nil, make([]byte, aead.NonceSize()), gobEncode(mlRequest{X: X, Y: Y, Sensitive: sensitive}), nil)
}

// Figure9Row is one dataset group of Figure 9.
type Figure9Row struct {
	Dataset                  string
	TrainNorm, PredNorm      float64
	MonoTrainMS, NestTrainMS float64
	MonoPredMS, NestPredMS   float64
}

// Figure9 runs training and prediction on the Table V dataset shapes,
// scaled by scale (1.0 = the paper's full sizes), for both builds.
func Figure9(scale float64) ([]Figure9Row, error) {
	if scale <= 0 {
		scale = 0.02
	}
	var rows []Figure9Row
	for _, spec := range datasets.TableV() {
		d := datasets.Generate(spec.Scale(scale), rand.New(rand.NewSource(42)))
		row := Figure9Row{Dataset: spec.Name}
		for _, nested := range []bool{false, true} {
			r, err := NewRig(SmallMachine())
			if err != nil {
				return nil, err
			}
			ms, err := BuildMLService(r, nested)
			if err != nil {
				return nil, err
			}
			// Best-of-2 passes per phase: one-shot wall-clock timings on a
			// shared host are noisy for the small datasets.
			trainReq := ms.EncryptRequest(d.TrainX, d.TrainY, []int{0})
			predReq := ms.EncryptRequest(d.TestX, d.TestY, []int{0})
			trainMS, predMS := -1.0, -1.0
			for pass := 0; pass < 2; pass++ {
				start := time.Now()
				if _, err := ms.Train(trainReq); err != nil {
					return nil, fmt.Errorf("%s train (%s): %w", spec.Name, variantName(nested), err)
				}
				if ms1 := float64(time.Since(start).Microseconds()) / 1000; trainMS < 0 || ms1 < trainMS {
					trainMS = ms1
				}
				start = time.Now()
				if _, err := ms.Predict(predReq); err != nil {
					return nil, fmt.Errorf("%s predict (%s): %w", spec.Name, variantName(nested), err)
				}
				if ms1 := float64(time.Since(start).Microseconds()) / 1000; predMS < 0 || ms1 < predMS {
					predMS = ms1
				}
			}
			if nested {
				row.NestTrainMS, row.NestPredMS = trainMS, predMS
			} else {
				row.MonoTrainMS, row.MonoPredMS = trainMS, predMS
			}
		}
		row.TrainNorm = row.NestTrainMS / row.MonoTrainMS
		row.PredNorm = row.NestPredMS / row.MonoPredMS
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure9 formats the rows.
func RenderFigure9(rows []Figure9Row, scale float64) *Table {
	t := &Table{
		Title:   "Figure 9 — LibSVM execution time normalized to monolithic",
		Headers: []string{"Dataset", "Train norm", "Predict norm", "Mono train (ms)", "Nested train (ms)"},
		Notes: []string{
			fmt.Sprintf("dataset sizes scaled by %.3f of Table V", scale),
			"paper: nested ~= monolithic across all datasets (few extra transitions vs long compute)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, f3(r.TrainNorm), f3(r.PredNorm), f2(r.MonoTrainMS), f2(r.NestTrainMS))
	}
	return t
}
