package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sqldb"
	"nestedenclave/internal/trace"
)

// This file is the profiling workload behind `nesclave profile` and the
// repro harness's "sqlservice" experiment: the nested SQL service of §VI-B
// driven by a fixed, deterministic query stream with span tracing and the
// simulated-cycle sampling profiler enabled. Unlike the Table VI throughput
// runs, the client enclave stages every query through its trusted heap, so
// each call exercises the full memory path — TLB refills after the
// transition flushes, page walks, LLC/MEE traffic — and the resulting call
// tree carries walk spans worth gating on.

// ProfileConfig tunes a profiling run. The zero value is ready.
type ProfileConfig struct {
	// Queries is the number of deterministic YCSB-like queries (0 → 200).
	Queries int
	// Interval is the profiler's sampling interval in simulated cycles
	// (0 → 2000, a few samples per ecall round trip).
	Interval int64
	// LogCap sizes the event log and span ring (0 → 1<<15). It must hold
	// every span of the run for the span/counter agreement check to be
	// exact; ProfileSQLService fails loudly when spans were evicted.
	LogCap int
}

// ProfileResult is one profiling run's output.
type ProfileResult struct {
	Queries int
	// Cycles is the rig's total simulated cycles.
	Cycles int64
	// Interval is the sampling interval used.
	Interval int64
	// Spans are the completed spans in completion order.
	Spans []trace.Span
	// Tree is the name-aggregated call tree over Spans.
	Tree *trace.SpanNode
	// Folded is the sampling profile (folded stack → samples).
	Folded map[string]int64
	// Hists are the flat PR-1 latency histograms, keyed by op name.
	Hists map[string]trace.HistSnapshot
	// Counters are the flat event counters, keyed by event name.
	Counters map[string]int64
}

// profileQueries builds the deterministic workload: a usertable setup plus a
// fixed read/update/insert mix. No RNG anywhere — run N is identical to run
// N+1, which is what makes the committed perf baseline tight.
func profileQueries(n int) (setup, queries []string) {
	const records = 40
	setup = append(setup, "CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, field0 TEXT)")
	for i := 0; i < records; i++ {
		setup = append(setup, fmt.Sprintf("INSERT INTO usertable VALUES (%d, 'init-%04d')", i, i))
	}
	for i := 0; i < n; i++ {
		key := (i * 7) % records
		switch i % 4 {
		case 0, 1: // 50% reads
			queries = append(queries, fmt.Sprintf("SELECT field0 FROM usertable WHERE ycsb_key = %d", key))
		case 2: // 25% updates
			queries = append(queries, fmt.Sprintf("UPDATE usertable SET field0 = 'upd-%04d' WHERE ycsb_key = %d", i, key))
		default: // 25% inserts
			queries = append(queries, fmt.Sprintf("INSERT INTO usertable VALUES (%d, 'new-%04d')", records+i, i))
		}
	}
	return setup, queries
}

// stage round-trips b through the enclave's trusted heap via the
// hardware-validated access path, forcing the TLB refills and page walks the
// transition flushes make inevitable.
func stage(env *sdk.Env, b []byte) ([]byte, error) {
	if len(b) == 0 {
		return b, nil
	}
	buf, err := env.Malloc(len(b))
	if err != nil {
		return nil, err
	}
	defer func() { _ = env.Free(buf) }()
	if err := env.Write(buf, b); err != nil {
		return nil, err
	}
	return env.Read(buf, len(b))
}

// BuildSQLServiceStaged deploys the nested SQL service with heap staging on
// both sides: the client stages the query before parse+encrypt+forward, and
// the shared engine stages the rewritten query before executing it.
func BuildSQLServiceStaged(r *Rig) (*SQLService, error) {
	s := &SQLService{Nested: true, db: sqldb.New(), key: [16]byte{7}}
	s.initCrypto()
	svcImg := sdk.NewImage("sqlite-svc", 0x2000_0000, sdk.DefaultLayout())
	clientImg := sdk.NewImage("sql-client", 0x1000_0000, sdk.DefaultLayout())
	svcImg.RegisterNOCall("sql_exec", func(env *sdk.Env, args []byte) ([]byte, error) {
		staged, err := stage(env, args)
		if err != nil {
			return nil, err
		}
		return execAndRender(s.db, string(staged))
	})
	clientImg.RegisterECall("query", func(env *sdk.Env, args []byte) ([]byte, error) {
		staged, err := stage(env, args)
		if err != nil {
			return nil, err
		}
		rewritten, err := s.rewriteQuery(string(staged))
		if err != nil {
			return nil, err
		}
		return env.NOCall("sql_exec", []byte(rewritten))
	})
	client, svc, err := r.LoadPair(clientImg, svcImg)
	if err != nil {
		return nil, err
	}
	s.Client, s.Svc = client, svc
	return s, nil
}

// Agreement is one row of the span-vs-counter cross-check: the summed
// inclusive cycles of an operation's spans against the sum of the same
// operation's flat latency histogram. Both measure the identical intervals
// (spans open and close exactly where the histograms sample), so the
// relative error is ~0 unless spans were lost.
type Agreement struct {
	Op      string
	SpanCyc int64
	HistCyc int64
	RelErr  float64
}

// Agreements cross-checks every operation present in the histograms.
func (p *ProfileResult) Agreements() []Agreement {
	// Span name prefix per op; page walks are one span kind covering both
	// the regular and the Figure-6 nested histogram.
	spanSum := func(prefixes ...string) int64 {
		var sum int64
		for _, s := range p.Spans {
			for _, pre := range prefixes {
				if s.Name == pre || strings.HasPrefix(s.Name, pre+":") {
					sum += s.Cycles()
					break
				}
			}
		}
		return sum
	}
	histSum := func(names ...string) int64 {
		var sum int64
		for _, n := range names {
			if h, ok := p.Hists[n]; ok {
				sum += h.Sum
			}
		}
		return sum
	}
	rows := []struct {
		op       string
		prefixes []string
		hists    []string
	}{
		{"ecall", []string{"ecall"}, []string{"ecall"}},
		{"ocall", []string{"ocall"}, []string{"ocall"}},
		{"n_ecall", []string{"n_ecall"}, []string{"n_ecall"}},
		{"n_ocall", []string{"n_ocall"}, []string{"n_ocall"}},
		{"page_walk", []string{"page_walk"}, []string{"page_walk", "nested_page_walk"}},
		{"ewb", []string{"ewb"}, []string{"ewb"}},
		{"eld", []string{"eld"}, []string{"eld"}},
	}
	var out []Agreement
	for _, r := range rows {
		h := histSum(r.hists...)
		if h == 0 {
			continue
		}
		s := spanSum(r.prefixes...)
		out = append(out, Agreement{
			Op: r.op, SpanCyc: s, HistCyc: h,
			RelErr: relErr(float64(s), float64(h)),
		})
	}
	return out
}

func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

// ProfileSQLService runs the profiling workload and returns the call tree,
// the folded-stack profile, and the flat counters for cross-checking.
func ProfileSQLService(cfg ProfileConfig) (*ProfileResult, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 200
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2000
	}
	if cfg.LogCap <= 0 {
		cfg.LogCap = 1 << 15
	}
	r, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	rec := r.M.Rec
	rec.EnableObservation(cfg.LogCap)
	rec.EnableProfiler(cfg.Interval)

	s, err := BuildSQLServiceStaged(r)
	if err != nil {
		return nil, err
	}
	setup, queries := profileQueries(cfg.Queries)
	for _, q := range setup {
		if _, err := s.Query(q); err != nil {
			return nil, fmt.Errorf("profile setup: %w", err)
		}
	}
	for _, q := range queries {
		if _, err := s.Query(q); err != nil {
			return nil, fmt.Errorf("profile query: %w", err)
		}
	}

	res := &ProfileResult{
		Queries:  cfg.Queries,
		Cycles:   rec.Cycles(),
		Interval: cfg.Interval,
		Spans:    rec.Spans(),
		Folded:   rec.FoldedStacks(),
		Hists:    rec.HistSnapshots(),
		Counters: rec.Snapshot(),
	}
	res.Tree = trace.AggregateSpans(res.Spans)
	// The agreement check is only meaningful when the span ring held every
	// span; a run big enough to wrap must use a larger LogCap.
	if wantSpans := int64(len(res.Spans)); wantSpans >= int64(cfg.LogCap) {
		return nil, fmt.Errorf("profile: span ring wrapped (%d spans at capacity %d); raise LogCap", wantSpans, cfg.LogCap)
	}
	setLastProfile(res)
	return res, nil
}

// RenderTree formats the call tree with per-node counts, inclusive cycles,
// and the share of total root cycles.
func (p *ProfileResult) RenderTree() string {
	var total int64
	for _, c := range p.Tree.Children {
		total += c.Cycles
	}
	var b strings.Builder
	fmt.Fprintf(&b, "call tree (%d spans, %d queries, %d total root cycles):\n",
		len(p.Spans), p.Queries, total)
	fmt.Fprintf(&b, "  %-42s %10s %14s %7s\n", "span", "count", "cycles", "%root")
	p.Tree.Walk(func(depth int, n *trace.SpanNode) {
		name := strings.Repeat("  ", depth) + n.Name
		share := 0.0
		if total > 0 {
			share = 100 * float64(n.Cycles) / float64(total)
		}
		fmt.Fprintf(&b, "  %-42s %10d %14d %6.1f%%\n", name, n.Count, n.Cycles, share)
	})
	return b.String()
}

// RenderAgreements formats the span-vs-histogram cross-check.
func (p *ProfileResult) RenderAgreements() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span/counter agreement (tolerance 1%%):\n")
	fmt.Fprintf(&b, "  %-12s %14s %14s %8s\n", "op", "span cycles", "hist cycles", "rel err")
	for _, a := range p.Agreements() {
		fmt.Fprintf(&b, "  %-12s %14d %14d %7.3f%%\n", a.Op, a.SpanCyc, a.HistCyc, 100*a.RelErr)
	}
	return b.String()
}

// RenderFolded formats the sampling profile sorted by descending samples.
func (p *ProfileResult) RenderFolded() string {
	keys := make([]string, 0, len(p.Folded))
	for k := range p.Folded {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if p.Folded[keys[i]] != p.Folded[keys[j]] {
			return p.Folded[keys[i]] > p.Folded[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, p.Folded[k])
	}
	return b.String()
}

// lastProfile feeds the repro -http endpoints: the most recent profiling
// run's folded stacks and span flame data.
var (
	profMu      sync.Mutex
	lastProfile *ProfileResult
)

func setLastProfile(p *ProfileResult) {
	profMu.Lock()
	lastProfile = p
	profMu.Unlock()
}

// LastProfile returns the most recent ProfileSQLService result, nil if none
// ran yet.
func LastProfile() *ProfileResult {
	profMu.Lock()
	defer profMu.Unlock()
	return lastProfile
}
