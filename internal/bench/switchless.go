package bench

import (
	"fmt"
	"runtime"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/switchless"
	"nestedenclave/internal/trace"
)

// This file is the switchless-transition experiment: the Occlum-style
// asynchronous ocall engine versus the synchronous EEXIT+EENTER(resume)
// path, on the same hot no-op handler. It also measures the access-path
// allocation work per nested page walk and the engine's ring behaviour, and
// records all of it as gated extras so `repro -gate` catches a regression in
// any of the three.

// SwitchlessResult is the experiment's outcome.
type SwitchlessResult struct {
	Iters int
	// SyncCyclesPerOp / SwitchlessCyclesPerOp are simulated cycles per hot
	// ocall on each path, including the amortized enclave entry around the
	// loop.
	SyncCyclesPerOp       float64
	SwitchlessCyclesPerOp float64
	// ReductionPct is the cycle reduction of the switchless path.
	ReductionPct float64
	// WalkAllocsPerOp is host allocations per TLB-missing nested (path C)
	// access — the quantity the cached outer-closure drives to zero.
	WalkAllocsPerOp float64
	// RingOccupancy and Fallbacks are the engine's lifetime stats for the
	// run: with one caller awaiting each request, occupancy stays at 1 and
	// no request falls back.
	RingOccupancy int64
	Fallbacks     int64
}

// Switchless runs the comparison with iters hot ocalls per path.
func Switchless(iters int) (*SwitchlessResult, error) {
	if iters <= 0 {
		iters = 2000
	}
	r, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}

	outerImg := sdk.NewImage("sw-outer", 0x2000_0000, sdk.DefaultLayout())
	innerImg := sdk.NewImage("sw-inner", 0x1000_0000, sdk.DefaultLayout())
	outerImg.AllowOCall("sw_hot")
	outerImg.AllowSwitchless("sw_fast")
	outerImg.RegisterECall("sync_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < iters; i++ {
			if _, err := env.OCall("sw_hot", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	outerImg.RegisterECall("sw_loop", func(env *sdk.Env, args []byte) ([]byte, error) {
		for i := 0; i < iters; i++ {
			if _, err := env.OCallAsync("sw_fast", nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	noop := func(args []byte) ([]byte, error) { return nil, nil }
	r.Host.RegisterOCall("sw_hot", noop)
	r.Host.RegisterOCall("sw_fast", noop)

	inner, outer, err := r.LoadPair(innerImg, outerImg)
	if err != nil {
		return nil, err
	}

	res := &SwitchlessResult{Iters: iters}

	// Access-path probe first, with no engine goroutines running: host
	// allocations per TLB-missing unsecure read from the inner enclave (the
	// Figure-6 path that consults the outer closure on every walk).
	res.WalkAllocsPerOp, err = measureNestedWalkAllocs(r, inner, 5000)
	if err != nil {
		return nil, err
	}

	rec := r.M.Rec
	start := rec.Cycles()
	if _, err := outer.ECall("sync_loop", nil); err != nil {
		return nil, err
	}
	res.SyncCyclesPerOp = float64(rec.Cycles()-start) / float64(iters)

	eng := r.Host.StartSwitchless(switchless.Config{})
	start = rec.Cycles()
	if _, err := outer.ECall("sw_loop", nil); err != nil {
		return nil, err
	}
	res.SwitchlessCyclesPerOp = float64(rec.Cycles()-start) / float64(iters)
	r.Host.StopSwitchless()
	st := eng.Stats()
	res.RingOccupancy = st.MaxOccupancy
	res.Fallbacks = st.Fallbacks
	if st.Completed != int64(iters) {
		return nil, fmt.Errorf("switchless: %d of %d requests completed through the ring", st.Completed, iters)
	}
	res.ReductionPct = 100 * (1 - res.SwitchlessCyclesPerOp/res.SyncCyclesPerOp)

	// Gated extras. The alloc metric carries a +1 offset so its baseline is
	// never zero — the gate cannot ratio against a zero base, and the
	// expected steady state IS zero allocations per walk.
	RecordExtra("sync_ocall_cycles_per_op", res.SyncCyclesPerOp)
	RecordExtra("switchless_ocall_cycles_per_op", res.SwitchlessCyclesPerOp)
	RecordExtra("walk_allocs_per_op_plus1", 1+res.WalkAllocsPerOp)
	RecordExtra("switchless_ring_occupancy", float64(res.RingOccupancy))
	return res, nil
}

// measureNestedWalkAllocs counts host heap allocations per TLB-missing read
// of unsecure memory from inside the inner enclave — every iteration runs
// the full page walk plus the Figure-6 validator's outer-closure branch.
func measureNestedWalkAllocs(r *Rig, inner *sdk.Enclave, n int) (float64, error) {
	c := r.M.Core(0)
	if err := r.K.Schedule(c, r.Host.Proc); err != nil {
		return 0, err
	}
	uv, err := r.Host.Proc.Mmap(1, isa.PermRW)
	if err != nil {
		return 0, err
	}
	s := inner.SECS()
	if err := r.M.EEnter(c, s, s.TCSs()[0].Vaddr, false); err != nil {
		return 0, err
	}
	dst := make([]byte, 8)
	// Warm the page table, the TLB-fill path, and the outer-closure cache so
	// the loop measures steady state.
	if err := c.ReadInto(uv, dst); err != nil {
		return 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		c.TLB.FlushVPN(uint64(uv) >> isa.PageShift)
		if err := c.ReadInto(uv, dst); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	if err := r.M.EExit(c, true); err != nil {
		return 0, err
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(n), nil
}

// RenderSwitchless formats the result.
func RenderSwitchless(res *SwitchlessResult) *Table {
	t := &Table{
		Title:   "Switchless transitions — async ring vs synchronous hot ocall",
		Headers: []string{"Metric", "Value"},
		Notes: []string{
			fmt.Sprintf("%d hot ocalls per path; cycles are simulated", res.Iters),
			fmt.Sprintf("sync pays EEXIT(%d)+EENTER-resume(%d) per call; switchless pays ring submit(%d)+service(%d)",
				trace.CostEEXIT, trace.CostEENTERResume, trace.CostRingSubmit, trace.CostRingService),
		},
	}
	t.AddRow("sync ocall (cycles/op)", f2(res.SyncCyclesPerOp))
	t.AddRow("switchless ocall (cycles/op)", f2(res.SwitchlessCyclesPerOp))
	t.AddRow("cycle reduction", f2(res.ReductionPct)+"%")
	t.AddRow("nested walk allocs/op", f2(res.WalkAllocsPerOp))
	t.AddRow("peak ring occupancy", fmt.Sprintf("%d", res.RingOccupancy))
	t.AddRow("fallbacks to sync", fmt.Sprintf("%d", res.Fallbacks))
	return t
}
