package bench

import (
	"encoding/binary"

	"nestedenclave/internal/channel"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
)

// newChannelRig deploys an outer enclave hosting a ring-buffer channel and
// two peer inner enclaves that use it, plus a kernel-side snoop hook.
func newChannelRig(r *Rig) (*deployedChannel, error) {
	const ringSize = 4096
	outerImg := sdk.NewImage("ch-outer", 0x2000_0000, sdk.DefaultLayout())
	in1Img := sdk.NewImage("ch-in1", 0x1000_0000, sdk.DefaultLayout())
	in2Img := sdk.NewImage("ch-in2", 0x4000_0000, sdk.DefaultLayout())
	for _, img := range []*sdk.Image{outerImg, in1Img, in2Img} {
		registerChannelEntries(img)
	}

	author := measure.MustNewAuthor()
	so := outerImg.Sign(author, nil, []measure.Digest{in1Img.Measure(), in2Img.Measure()})
	s1 := in1Img.Sign(author, []measure.Digest{outerImg.Measure()}, nil)
	s2 := in2Img.Sign(author, []measure.Digest{outerImg.Measure()}, nil)
	outer, err := r.Host.Load(so)
	if err != nil {
		return nil, err
	}
	in1, err := r.Host.Load(s1)
	if err != nil {
		return nil, err
	}
	in2, err := r.Host.Load(s2)
	if err != nil {
		return nil, err
	}
	if err := r.Host.Associate(in1, outer); err != nil {
		return nil, err
	}
	if err := r.Host.Associate(in2, outer); err != nil {
		return nil, err
	}

	base := outerImg.HeapBase()
	argsFor := func(payload []byte) []byte {
		b := make([]byte, 16, 16+len(payload))
		binary.LittleEndian.PutUint64(b[0:], uint64(base))
		binary.LittleEndian.PutUint64(b[8:], ringSize)
		return append(b, payload...)
	}
	if _, err := outer.ECall("ch_init", argsFor(nil)); err != nil {
		return nil, err
	}
	return &deployedChannel{
		in1:     in1.ECall,
		in2:     in2.ECall,
		argsFor: argsFor,
		snoopBase: func(n int) ([]byte, error) {
			c := r.M.Core(0)
			if err := r.K.Schedule(c, r.Host.Proc); err != nil {
				return nil, err
			}
			return c.Read(base, n)
		},
	}, nil
}

// registerChannelEntries installs init/send/recv entry points operating an
// OuterChannel whose base and ring size arrive in the arguments.
func registerChannelEntries(img *sdk.Image) {
	decode := func(args []byte) (*channel.OuterChannel, []byte, error) {
		base := isa.VAddr(binary.LittleEndian.Uint64(args[:8]))
		size := binary.LittleEndian.Uint64(args[8:16])
		ch, err := channel.NewOuter(base, size)
		return ch, args[16:], err
	}
	img.RegisterECall("ch_init", func(env *sdk.Env, args []byte) ([]byte, error) {
		ch, _, err := decode(args)
		if err != nil {
			return nil, err
		}
		return nil, ch.Init(env.C)
	})
	img.RegisterECall("ch_send", func(env *sdk.Env, args []byte) ([]byte, error) {
		ch, payload, err := decode(args)
		if err != nil {
			return nil, err
		}
		ok, err := ch.Send(env.C, payload)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{0}, nil
		}
		return []byte{1}, nil
	})
	img.RegisterECall("ch_recv", func(env *sdk.Env, args []byte) ([]byte, error) {
		ch, _, err := decode(args)
		if err != nil {
			return nil, err
		}
		payload, ok, err := ch.Recv(env.C)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{0}, nil
		}
		return append([]byte{1}, payload...), nil
	})
}
