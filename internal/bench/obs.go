package bench

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sort"
	"sync"

	"nestedenclave/internal/trace"
)

// ExperimentSnapshot is the per-experiment observability record cmd/repro
// persists next to the rendered tables (BENCH_<name>.json): the merged
// counters, simulated cycles, per-enclave attribution, and operation latency
// histograms of every Rig the experiment booted.
type ExperimentSnapshot struct {
	Name string `json:"name"`
	// Rigs is how many simulator instances the experiment booted.
	Rigs int `json:"rigs"`
	// Cycles is the total simulated cycles across all rigs.
	Cycles int64 `json:"cycles"`
	// WallMS is the host wall-clock the experiment took (stamped by the
	// caller; zero when not measured).
	WallMS float64 `json:"wall_ms,omitempty"`
	// Counters holds the merged non-zero event counters, keyed by event name.
	Counters map[string]int64 `json:"counters"`
	// PerEnclave holds per-EID counters (present only for rigs that ran with
	// observation enabled), keyed by decimal EID then event name.
	PerEnclave map[string]map[string]int64 `json:"per_enclave,omitempty"`
	// Histograms holds merged latency histograms keyed by operation name.
	Histograms map[string]HistogramJSON `json:"histograms,omitempty"`
	// Extra holds experiment-specific scalar metrics recorded via
	// RecordExtra — derived quantities (per-op cycles, allocations per walk,
	// ring occupancy) that the counter merge cannot compute. The perf gate
	// compares them like any other metric.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// HistogramJSON is the persisted form of a latency histogram: sample count,
// cycle sum, and the non-empty log2 buckets keyed by upper bound.
type HistogramJSON struct {
	Count   int64            `json:"count"`
	SumCyc  int64            `json:"sum_cycles"`
	MeanCyc float64          `json:"mean_cycles"`
	P50Cyc  int64            `json:"p50_cycles"`
	P99Cyc  int64            `json:"p99_cycles"`
	Buckets map[string]int64 `json:"buckets"`
}

// expScope accumulates the recorders of every Rig booted between
// BeginExperiment and EndExperiment.
type expScope struct {
	name  string
	recs  []*trace.Recorder
	extra map[string]float64
}

var (
	obsMu    sync.Mutex
	curScope *expScope
	// lastSnapshots feeds the expvar endpoint: the most recent snapshot per
	// experiment name.
	lastSnapshots = map[string]*ExperimentSnapshot{}
)

// BeginExperiment opens an observation scope: every Rig booted until the
// matching EndExperiment registers its recorder with the scope. Scopes do not
// nest; beginning a new one replaces the old.
func BeginExperiment(name string) {
	obsMu.Lock()
	defer obsMu.Unlock()
	curScope = &expScope{name: name}
}

// RecordExtra attaches an experiment-specific scalar metric to the open
// scope; it lands in the snapshot's Extra map (and thus under the perf
// gate). No-op when no scope is open, so experiments can record
// unconditionally.
func RecordExtra(name string, v float64) {
	obsMu.Lock()
	defer obsMu.Unlock()
	if curScope == nil {
		return
	}
	if curScope.extra == nil {
		curScope.extra = map[string]float64{}
	}
	curScope.extra[name] = v
}

// registerRecorder attaches a freshly booted rig's recorder to the open
// experiment scope, if any. Called by NewRig.
func registerRecorder(r *trace.Recorder) {
	obsMu.Lock()
	defer obsMu.Unlock()
	if curScope != nil {
		curScope.recs = append(curScope.recs, r)
	}
}

// EndExperiment closes the open scope and returns the merged snapshot of
// every recorder the experiment used. Returns nil when no scope is open or
// the experiment booted no rigs.
func EndExperiment() *ExperimentSnapshot {
	obsMu.Lock()
	scope := curScope
	curScope = nil
	obsMu.Unlock()
	if scope == nil || len(scope.recs) == 0 {
		return nil
	}
	snap := &ExperimentSnapshot{
		Name:     scope.name,
		Rigs:     len(scope.recs),
		Counters: map[string]int64{},
		Extra:    scope.extra,
	}
	type histAcc struct {
		count, sum int64
		buckets    map[string]int64
		merged     trace.HistSnapshot
	}
	hists := map[string]*histAcc{}
	for _, rec := range scope.recs {
		snap.Cycles += rec.Cycles()
		var cs trace.CounterSet
		rec.SnapshotInto(&cs)
		for name, v := range cs.Map() {
			snap.Counters[name] += v
		}
		for eid, set := range rec.PerEnclave() {
			if snap.PerEnclave == nil {
				snap.PerEnclave = map[string]map[string]int64{}
			}
			key := eidLabel(eid)
			dst := snap.PerEnclave[key]
			if dst == nil {
				dst = map[string]int64{}
				snap.PerEnclave[key] = dst
			}
			for name, v := range set.Map() {
				dst[name] += v
			}
		}
		for name, hs := range rec.HistSnapshots() {
			acc := hists[name]
			if acc == nil {
				acc = &histAcc{buckets: map[string]int64{}}
				hists[name] = acc
			}
			acc.count += hs.Count
			acc.sum += hs.Sum
			for i := range acc.merged.Buckets {
				acc.merged.Buckets[i] += hs.Buckets[i]
			}
			for k, v := range hs.NonZeroBuckets() {
				acc.buckets[k] += v
			}
		}
	}
	for name, acc := range hists {
		if snap.Histograms == nil {
			snap.Histograms = map[string]HistogramJSON{}
		}
		acc.merged.Count = acc.count
		acc.merged.Sum = acc.sum
		snap.Histograms[name] = HistogramJSON{
			Count:   acc.count,
			SumCyc:  acc.sum,
			MeanCyc: acc.merged.Mean(),
			P50Cyc:  acc.merged.Quantile(0.50),
			P99Cyc:  acc.merged.Quantile(0.99),
			Buckets: acc.buckets,
		}
	}
	obsMu.Lock()
	lastSnapshots[snap.Name] = snap
	obsMu.Unlock()
	return snap
}

// eidLabel renders an attribution key: EID 0 is untrusted execution.
func eidLabel(eid uint64) string {
	if eid == trace.NoEID {
		return "untrusted"
	}
	return fmt.Sprintf("enclave_%d", eid)
}

var publishOnce sync.Once

// PublishExpvar exposes the latest experiment snapshots under the
// "nesclave_experiments" expvar, for the opt-in debug HTTP endpoint the repro
// harness serves alongside net/http/pprof. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("nesclave_experiments", expvar.Func(func() any {
			obsMu.Lock()
			defer obsMu.Unlock()
			names := make([]string, 0, len(lastSnapshots))
			for n := range lastSnapshots {
				names = append(names, n)
			}
			sort.Strings(names)
			out := make([]*ExperimentSnapshot, 0, len(names))
			for _, n := range names {
				out = append(out, lastSnapshots[n])
			}
			return out
		}))
	})
}

// MarshalSnapshot renders a snapshot as indented JSON, the BENCH_*.json
// format.
func MarshalSnapshot(s *ExperimentSnapshot) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
