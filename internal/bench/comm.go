package bench

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/cache"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// This file reproduces Figure 11 (§VI-C): the throughput of inter-enclave
// communication through the shared outer enclave's memory (protected by the
// MEE below the cache — "MEE") versus the conventional enclave-to-enclave
// channel through untrusted memory with software AES-GCM ("GCM").
//
// Following the paper's methodology, one side writes chunk-sized messages
// across a footprint-sized buffer and the peer reads them back:
//
//   - MEE: the buffer lives in outer-enclave memory shared by two inner
//     enclaves; the hardware protects it, no software crypto runs, and while
//     the footprint fits in the LLC the memory encryption engine is never
//     invoked at all.
//   - GCM: the buffer lives in untrusted memory between two monolithic
//     enclaves; every message is sealed and opened with AES-GCM.
//
// Throughput is computed from the simulated cycle clock: the memory system
// charges LLC hits/misses and MEE line operations as they happen, and the
// GCM variant additionally charges the software-crypto cost model
// (trace.GCMCycles). The crypto also actually executes, so the reader's
// authentication doubles as a correctness check.

// Figure11Row is one point group.
type Figure11Row struct {
	FootprintMB int
	ChunkBytes  int
	MEEGBps     float64
	GCMGBps     float64
	// Speedup is MEE/GCM (the paper reports up to 29.9x for small chunks).
	Speedup float64
}

// Figure11Chunks are the default message sizes.
func Figure11Chunks() []int { return []int{64, 256, 1024, 4096, 16384, 65536} }

// Figure11Footprints returns footprints in MB around the 8 MiB LLC.
func Figure11Footprints() []int { return []int{4, 16} }

func figure11Machine(footprintMB int) sgx.Config {
	prm := uint64(footprintMB+48) << 20
	return sgx.Config{
		Cores: 4,
		Phys: phys.Layout{
			DRAMSize: prm + (96 << 20),
			PRMBase:  32 << 20,
			PRMSize:  prm,
		},
		LLC: cache.DefaultConfig(), // 8 MiB
	}
}

// pumpArgs packs the pump parameters. Messages are written into
// chunk-aligned slots cycling across the footprint; start is the global
// message index of the first message in this round, so each write/read
// round covers at most slots messages and never overwrites an unread slot.
func pumpArgs(base isa.VAddr, footprint, stride, count, start int) []byte {
	b := make([]byte, 40)
	binary.LittleEndian.PutUint64(b[0:], uint64(base))
	binary.LittleEndian.PutUint64(b[8:], uint64(footprint))
	binary.LittleEndian.PutUint64(b[16:], uint64(stride))
	binary.LittleEndian.PutUint64(b[24:], uint64(count))
	binary.LittleEndian.PutUint64(b[32:], uint64(start))
	return b
}

func unpackPump(args []byte) (base isa.VAddr, footprint, stride, count, start int) {
	return isa.VAddr(binary.LittleEndian.Uint64(args[0:])),
		int(binary.LittleEndian.Uint64(args[8:])),
		int(binary.LittleEndian.Uint64(args[16:])),
		int(binary.LittleEndian.Uint64(args[24:])),
		int(binary.LittleEndian.Uint64(args[32:]))
}

// registerMEEPump installs plain write/read pumps (no software crypto).
func registerMEEPump(img *sdk.Image) {
	img.RegisterECall("pump_write", func(env *sdk.Env, args []byte) ([]byte, error) {
		base, footprint, stride, count, start := unpackPump(args)
		slots := footprint / stride
		payload := bytes.Repeat([]byte{0x5c}, stride)
		for j := 0; j < count; j++ {
			i := start + j
			off := (i % slots) * stride
			payload[0] = byte(i)
			if err := env.Write(base+isa.VAddr(off), payload); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	img.RegisterECall("pump_read", func(env *sdk.Env, args []byte) ([]byte, error) {
		base, footprint, stride, count, start := unpackPump(args)
		slots := footprint / stride
		for j := 0; j < count; j++ {
			i := start + j
			off := (i % slots) * stride
			got, err := env.Read(base+isa.VAddr(off), stride)
			if err != nil {
				return nil, err
			}
			if got[0] != byte(i) || got[stride-1] != 0x5c {
				return nil, fmt.Errorf("comm: message %d corrupted", i)
			}
		}
		return nil, nil
	})
}

// registerGCMPump installs pumps that seal/open each message with AES-GCM
// and charge the software-crypto cycle model.
func registerGCMPump(img *sdk.Image, key [16]byte, rec *trace.Recorder) {
	newAEAD := func() cipher.AEAD {
		block, err := aes.NewCipher(key[:])
		if err != nil {
			panic(err)
		}
		aead, err := cipher.NewGCM(block)
		if err != nil {
			panic(err)
		}
		return aead
	}
	nonce := func(i int) []byte {
		n := make([]byte, 12)
		binary.LittleEndian.PutUint64(n, uint64(i))
		return n
	}
	img.RegisterECall("pump_write", func(env *sdk.Env, args []byte) ([]byte, error) {
		base, footprint, stride, count, start := unpackPump(args)
		chunk := stride - 16 // AES-GCM tag overhead
		slots := footprint / stride
		aead := newAEAD()
		payload := bytes.Repeat([]byte{0x5c}, chunk)
		for j := 0; j < count; j++ {
			i := start + j
			off := (i % slots) * stride
			payload[0] = byte(i)
			ct := aead.Seal(nil, nonce(i), payload, nil)
			rec.Advance(trace.GCMCycles(chunk))
			if err := env.Write(base+isa.VAddr(off), ct); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	img.RegisterECall("pump_read", func(env *sdk.Env, args []byte) ([]byte, error) {
		base, footprint, stride, count, start := unpackPump(args)
		chunk := stride - 16
		slots := footprint / stride
		aead := newAEAD()
		for j := 0; j < count; j++ {
			i := start + j
			off := (i % slots) * stride
			ct, err := env.Read(base+isa.VAddr(off), stride)
			if err != nil {
				return nil, err
			}
			pt, err := aead.Open(nil, nonce(i), ct, nil)
			rec.Advance(trace.GCMCycles(chunk))
			if err != nil {
				return nil, fmt.Errorf("comm: GCM authentication failed at message %d: %w", i, err)
			}
			if pt[0] != byte(i) {
				return nil, fmt.Errorf("comm: message %d corrupted", i)
			}
		}
		return nil, nil
	})
}

// figure11MEE measures the outer-memory channel, returning cycles consumed.
func figure11MEE(footprint, chunk, count int) (int64, error) {
	r, err := NewRig(figure11Machine(footprint >> 20))
	if err != nil {
		return 0, err
	}
	heapPages := footprint/isa.PageSize + 8
	outerImg := sdk.NewImage("ch-outer", 0x40_0000_0000, sdk.Layout{CodePages: 2, DataPages: 2, HeapPages: heapPages, NumTCS: 2})
	prodImg := sdk.NewImage("producer", 0x1000_0000, sdk.DefaultLayout())
	consImg := sdk.NewImage("consumer", 0x5000_0000, sdk.DefaultLayout())
	registerMEEPump(prodImg)
	registerMEEPump(consImg)

	author := measure.MustNewAuthor()
	so := outerImg.Sign(author, nil, []measure.Digest{prodImg.Measure(), consImg.Measure()})
	sp := prodImg.Sign(author, []measure.Digest{outerImg.Measure()}, nil)
	sc := consImg.Sign(author, []measure.Digest{outerImg.Measure()}, nil)
	outer, err := r.Host.Load(so)
	if err != nil {
		return 0, err
	}
	prod, err := r.Host.Load(sp)
	if err != nil {
		return 0, err
	}
	cons, err := r.Host.Load(sc)
	if err != nil {
		return 0, err
	}
	if err := r.Host.Associate(prod, outer); err != nil {
		return 0, err
	}
	if err := r.Host.Associate(cons, outer); err != nil {
		return 0, err
	}
	base := outerImg.HeapBase()
	start := r.M.Rec.Cycles()
	if err := runPump(prod, cons, base, footprint, chunk, count); err != nil {
		return 0, err
	}
	return r.M.Rec.Cycles() - start, nil
}

// runPump drives write/read rounds sized to the slot count, so no unread
// slot is ever overwritten.
func runPump(prod, cons *sdk.Enclave, base isa.VAddr, footprint, stride, count int) error {
	slots := footprint / stride
	if slots == 0 {
		return fmt.Errorf("comm: footprint %d too small for stride %d", footprint, stride)
	}
	for start := 0; start < count; start += slots {
		n := min(slots, count-start)
		if _, err := prod.ECall("pump_write", pumpArgs(base, footprint, stride, n, start)); err != nil {
			return err
		}
		if _, err := cons.ECall("pump_read", pumpArgs(base, footprint, stride, n, start)); err != nil {
			return err
		}
	}
	return nil
}

// figure11GCM measures the untrusted-memory + AES-GCM channel.
func figure11GCM(footprint, chunk, count int) (int64, error) {
	r, err := NewRig(figure11Machine(footprint >> 20))
	if err != nil {
		return 0, err
	}
	key := [16]byte{9}
	prodImg := sdk.NewImage("producer", 0x1000_0000, sdk.DefaultLayout())
	consImg := sdk.NewImage("consumer", 0x5000_0000, sdk.DefaultLayout())
	registerGCMPump(prodImg, key, r.M.Rec)
	registerGCMPump(consImg, key, r.M.Rec)
	prod, err := r.LoadSolo(prodImg)
	if err != nil {
		return 0, err
	}
	cons, err := r.LoadSolo(consImg)
	if err != nil {
		return 0, err
	}
	// The shared buffer lives in untrusted memory. The stride accounts for
	// the per-message GCM tag.
	base, err := r.Host.Proc.Mmap(footprint+isa.PageSize, isa.PermRW)
	if err != nil {
		return 0, err
	}
	start := r.M.Rec.Cycles()
	if err := runPump(prod, cons, base, footprint, chunk+16, count); err != nil {
		return 0, err
	}
	return r.M.Rec.Cycles() - start, nil
}

// Figure11 runs the sweep. bytesPerRun bounds the traffic per measurement
// (zero: 2x the footprint, so the buffer fully cycles).
func Figure11(footprintsMB, chunks []int, bytesPerRun int) ([]Figure11Row, error) {
	if len(footprintsMB) == 0 {
		footprintsMB = Figure11Footprints()
	}
	if len(chunks) == 0 {
		chunks = Figure11Chunks()
	}
	var rows []Figure11Row
	for _, fp := range footprintsMB {
		footprint := fp << 20
		for _, chunk := range chunks {
			traffic := bytesPerRun
			if traffic <= 0 {
				traffic = 2 * footprint
			}
			count := max(traffic/chunk, 16)
			meeCycles, err := figure11MEE(footprint, chunk, count)
			if err != nil {
				return nil, fmt.Errorf("MEE fp=%dMB chunk=%d: %w", fp, chunk, err)
			}
			gcmCycles, err := figure11GCM(footprint, chunk, count)
			if err != nil {
				return nil, fmt.Errorf("GCM fp=%dMB chunk=%d: %w", fp, chunk, err)
			}
			bytesMoved := float64(count * chunk * 2) // write + read
			toGBps := func(cycles int64) float64 {
				seconds := float64(cycles) / (CPUFreqGHz * 1e9)
				return bytesMoved / seconds / 1e9
			}
			row := Figure11Row{
				FootprintMB: fp,
				ChunkBytes:  chunk,
				MEEGBps:     toGBps(meeCycles),
				GCMGBps:     toGBps(gcmCycles),
			}
			row.Speedup = row.MEEGBps / row.GCMGBps
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderFigure11 formats the rows.
func RenderFigure11(rows []Figure11Row) *Table {
	t := &Table{
		Title:   "Figure 11 — intra-enclave channel (MEE) vs AES-GCM over untrusted memory",
		Headers: []string{"Footprint", "Chunk", "MEE GB/s", "GCM GB/s", "MEE/GCM"},
		Notes: []string{
			"simulated-cycle throughput at 4 GHz; LLC is 8 MiB",
			"paper: up to 29.9x for small chunks; advantage largest while the footprint fits in the cache",
		},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dMB", r.FootprintMB), byteSize(r.ChunkBytes),
			f2(r.MEEGBps), f2(r.GCMGBps), f2(r.Speedup))
	}
	return t
}
