package bench

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"nestedenclave/internal/adversary"
	"nestedenclave/internal/channel"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

// This file is the adversarial-kernel campaign: every strategy in the
// internal/adversary catalog executed end to end against a live rig, with the
// run classified as defended (the workload completed with correct data and
// the machine audits stay clean), detected (a typed detection error surfaced
// before any wrong data was returned), or breach (anything else — which
// fails the campaign test). The scoreboard is the repo's Table-VII-style
// security-analysis artifact for a kernel that attacks instead of crashes.

// AttackVerdict is the outcome class of one attack run.
type AttackVerdict string

const (
	// VerdictDefended: the attack fired and the workload still completed
	// with correct data; invariant and TLB audits are clean.
	VerdictDefended AttackVerdict = "defended"
	// VerdictDetected: a typed detection error surfaced before any wrong
	// data crossed a trust boundary.
	VerdictDetected AttackVerdict = "detected"
	// VerdictBreach: wrong data was returned or an audit failed — the
	// detect-or-defend contract is broken.
	VerdictBreach AttackVerdict = "breach"
)

// AttackResult is one strategy's campaign entry.
type AttackResult struct {
	Program adversary.Program
	Verdict AttackVerdict
	// Detection names the detector that fired ("" when defended):
	// blob-version-counter, channel-sequence, scheduling-guard,
	// figure6-fault, invariant-audit, enclave-integrity.
	Detection string
	// DetectLatency is simulated cycles from the first fired attack action
	// to the detection error being in hand; -1 when defended.
	DetectLatency int64
	// Attacks is how many attack actions the engine landed.
	Attacks int
	// Transcript is the engine's deterministic replay artifact.
	Transcript string
	// Err is the detection error (detected) or the violation list (breach).
	Err error
}

// AuditError wraps machine invariant/TLB audit findings as a typed
// detection error.
type AuditError struct{ Findings []string }

func (e *AuditError) Error() string {
	return fmt.Sprintf("invariant audit: %s", strings.Join(e.Findings, "; "))
}

// attackOutcome is what a scenario reports back to RunAttack.
type attackOutcome struct {
	// detection is the typed error that surfaced, nil when the run was
	// defended end to end.
	detection error
	// detectAt is the simulated cycle the detection error was observed.
	detectAt int64
	// violations lists detect-or-defend contract breaches (wrong data,
	// silent corruption). Any entry makes the verdict a breach.
	violations []string
}

type attackScenario func(r *Rig, eng *adversary.Engine) (attackOutcome, error)

// DefaultProgram returns the campaign's canonical program for a strategy:
// the op budget each scenario is scripted against.
func DefaultProgram(s adversary.Strategy, seed uint64) adversary.Program {
	ops := 1
	switch s {
	case adversary.StratRemapUnderTLB, adversary.StratIPCReorder:
		ops = 2
	case adversary.StratAEXPreempt:
		ops = 3
	case adversary.StratDropShootdown:
		ops = 4
	}
	return adversary.Program{Seed: seed, Strategy: s, Ops: ops}
}

// RunAttack executes one attack program end to end on a fresh rig and
// classifies the outcome. A run where the attack never fires is an error,
// not a verdict — a vacuous campaign must not read as a safe one.
func RunAttack(p adversary.Program) (*AttackResult, error) {
	scn, ok := attackScenarios()[p.Strategy]
	if !ok {
		return nil, fmt.Errorf("bench: no scenario for strategy %q", p.Strategy)
	}
	r, err := NewRig(SmallMachine())
	if err != nil {
		return nil, err
	}
	eng, err := adversary.New(p, r.M.Rec)
	if err != nil {
		return nil, err
	}
	out, err := scn(r, eng)
	if err != nil {
		return nil, fmt.Errorf("bench: %s harness: %w", p.Strategy, err)
	}
	res := &AttackResult{Program: p, Attacks: eng.Fired(), Transcript: eng.Transcript(), DetectLatency: -1}
	if res.Attacks == 0 {
		return nil, fmt.Errorf("bench: %s: attack never fired (vacuous run)", p.Strategy)
	}
	violations := append([]string(nil), out.violations...)
	if out.detection == nil {
		// A defended verdict additionally requires the machine to audit
		// clean: the four §VII-A invariants and no stale TLB translations.
		violations = append(violations, r.M.AuditInvariants()...)
		violations = append(violations, r.M.AuditTLBs()...)
	}
	switch {
	case len(violations) > 0:
		res.Verdict = VerdictBreach
		res.Err = fmt.Errorf("bench: %s: %s", p.Strategy, strings.Join(violations, "; "))
	case out.detection != nil:
		res.Verdict = VerdictDetected
		res.Err = out.detection
		res.Detection = classifyDetection(out.detection)
		if first := eng.FirstAttackCycle(); first >= 0 && out.detectAt >= first {
			res.DetectLatency = out.detectAt - first
		}
	default:
		res.Verdict = VerdictDefended
	}
	return res, nil
}

// RunCampaign runs every catalog strategy with its default program.
func RunCampaign(seed uint64) ([]*AttackResult, error) {
	var out []*AttackResult
	for _, s := range adversary.Strategies() {
		res, err := RunAttack(DefaultProgram(s, seed))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Scoreboard renders campaign results as the per-strategy verdict table.
func Scoreboard(results []*AttackResult) *Table {
	t := &Table{
		Title:   "Adversarial kernel campaign (defend-or-detect)",
		Headers: []string{"strategy", "verdict", "detector", "attacks", "detect latency (cyc)"},
		Notes: []string{
			"detect latency: simulated cycles from the first attack action to the typed error",
			"replay any row with: repro -adversary -strategy <s> -seed <seed> -ops <n>",
		},
	}
	for _, r := range results {
		lat := "-"
		if r.DetectLatency >= 0 {
			lat = fmt.Sprintf("%d", r.DetectLatency)
		}
		det := r.Detection
		if det == "" {
			det = "-"
		}
		t.AddRow(string(r.Program.Strategy), string(r.Verdict), det, fmt.Sprintf("%d", r.Attacks), lat)
	}
	return t
}

// classifyDetection names the detector a typed error came from.
func classifyDetection(err error) string {
	var audit *AuditError
	switch {
	case errors.Is(err, sgx.ErrBlobReplay):
		return "blob-version-counter"
	case errors.Is(err, channel.ErrReplayDetected):
		return "channel-sequence"
	case errors.Is(err, sdk.ErrContextLost):
		return "scheduling-guard"
	case errors.As(err, &audit):
		return "invariant-audit"
	case errors.Is(err, errKVSentinel):
		return "enclave-integrity"
	}
	var f *isa.Fault
	if errors.As(err, &f) {
		return "figure6-fault"
	}
	return "typed-error"
}

// --- victim workload -------------------------------------------------------

// kvBytes is the victim buffer size: one read chunk, well inside a page.
const kvBytes = 64

// kvMagic is the integrity sentinel the enclave writes at the head of its
// buffer. Abort-page semantics turn a successfully contained mapping attack
// into 0xFF filler; the sentinel is how trusted code refuses to treat that
// filler as its own data (the enclave-software layer of defense the paper's
// §VII assumes).
var kvMagic = []byte{0x4e, 0x45, 0x53, 0x43, 0x4c, 0x41, 0x56, 0x45}

// errKVSentinel is the typed enclave-level integrity detection.
var errKVSentinel = errors.New("kv: buffer integrity sentinel lost")

// kvVictim is a loaded single-buffer enclave: the minimal stateful workload
// every paging/scheduling attack targets.
type kvVictim struct {
	encl *sdk.Enclave
	bufV isa.VAddr
}

func (kv *kvVictim) vpage() isa.VAddr { return kv.bufV.PageBase() }

// pattern fills the non-sentinel part of the buffer with a recognizable
// byte, so wrong-data outcomes are unambiguous.
func kvPayload(b byte) []byte {
	out := append([]byte(nil), kvMagic...)
	for len(out) < kvBytes {
		out = append(out, b)
	}
	return out
}

// buildKV loads the victim enclave and allocates its buffer.
//
// ECalls:
//
//	put   — store the 64-byte argument in the trusted buffer
//	get   — read the buffer back, verifying the integrity sentinel
//	churn — re-read the buffer n times, verifying content each pass
//	        (a critical window for scheduler attacks)
func buildKV(r *Rig, name string, base isa.VAddr) (*kvVictim, error) {
	kv := &kvVictim{}
	img := sdk.NewImage(name, base, sdk.DefaultLayout())
	img.RegisterECall("init", func(env *sdk.Env, args []byte) ([]byte, error) {
		v, err := env.Malloc(kvBytes)
		if err != nil {
			return nil, err
		}
		kv.bufV = v
		return nil, nil
	})
	img.RegisterECall("put", func(env *sdk.Env, args []byte) ([]byte, error) {
		return nil, env.Write(kv.bufV, args)
	})
	img.RegisterECall("get", func(env *sdk.Env, args []byte) ([]byte, error) {
		b, err := env.Read(kv.bufV, kvBytes)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(b[:len(kvMagic)], kvMagic) {
			return nil, errKVSentinel
		}
		return b, nil
	})
	img.RegisterECall("churn", func(env *sdk.Env, args []byte) ([]byte, error) {
		var b []byte
		for i := 0; i < 6; i++ {
			var err error
			b, err = env.Read(kv.bufV, kvBytes)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(b, args) {
				return nil, fmt.Errorf("kv: churn pass %d read wrong data: %w", i, errKVSentinel)
			}
		}
		return b, nil
	})
	encl, err := r.LoadSolo(img)
	if err != nil {
		return nil, err
	}
	kv.encl = encl
	if _, err := encl.ECall("init", nil); err != nil {
		return nil, err
	}
	return kv, nil
}

// attackerFrame returns a DRAM physical page outside the PRM — memory the
// attacker fully controls — on the SmallMachine layout (PRM is 16..48 MiB,
// DRAM 64 MiB).
func attackerFrame() isa.PAddr { return isa.PAddr(56 << 20) }

// --- scenarios -------------------------------------------------------------

func attackScenarios() map[adversary.Strategy]attackScenario {
	return map[adversary.Strategy]attackScenario{
		adversary.StratDoubleMap:        scnDoubleMap,
		adversary.StratRemapUnderTLB:    scnRemapUnderTLB,
		adversary.StratEldRedirect:      scnEldRedirect,
		adversary.StratBlobReplay:       scnBlobReplay,
		adversary.StratBlobCrossWire:    scnBlobCrossWire,
		adversary.StratDropShootdown:    scnDropShootdown,
		adversary.StratReorderShootdown: scnReorderShootdown,
		adversary.StratAEXPreempt:       scnAEXPreempt,
		adversary.StratEresumeWrongCore: scnEresumeWrongCore,
		adversary.StratIPCReplay:        scnIPCReplay,
		adversary.StratIPCReorder:       scnIPCReorder,
		adversary.StratIPCReorderDeep:   scnIPCReorderDeep,
	}
}

// scnDoubleMap: the kernel maps an attacker virtual page at the victim's
// resident EPC frame and reads it from outside the enclave. Defended:
// non-enclave access to the PRM returns abort-page 0xFF, and the victim's
// data stays intact.
func scnDoubleMap(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0xA1)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	idx, found := r.M.FindRegPage(kv.encl.SECS(), kv.vpage())
	if !found {
		return out, fmt.Errorf("victim page not resident")
	}
	pa := r.M.EPC.AddrOf(idx)
	const alias = isa.VAddr(0x7000_0000)
	if !eng.Spend("host.mmap", fmt.Sprintf("alias %#x -> victim EPC frame %#x", uint64(alias), uint64(pa))) {
		return out, fmt.Errorf("op budget empty before the attack")
	}
	r.Host.Proc.MapFixed(alias, pa, isa.PermR)
	c := r.M.Core(0)
	if err := r.K.Schedule(c, r.Host.Proc); err != nil {
		return out, err
	}
	leaked, err := c.Read(alias, kvBytes)
	if err != nil {
		return out, fmt.Errorf("aliased read: %w", err)
	}
	for _, b := range leaked {
		if b != 0xFF {
			out.violations = append(out.violations,
				fmt.Sprintf("double-mapped read leaked enclave bytes (%x...)", leaked[:8]))
			break
		}
	}
	got, err := kv.encl.ECall("get", nil)
	if err != nil {
		out.violations = append(out.violations, fmt.Sprintf("victim lost its data: %v", err))
	} else if !bytes.Equal(got, want) {
		out.violations = append(out.violations, "victim data corrupted by double mapping")
	}
	return out, nil
}

// scnRemapUnderTLB: the kernel rewrites the victim's PTE to an attacker
// frame while the victim core's TLB still holds the honest translation, then
// forces a flush. Reads under the stale TLB stay correct (defended window);
// the first re-walk of the poisoned PTE is caught by Figure-6 validation
// (ELRANGE must be EPC-backed) — detected, and the data recoverable once an
// honest mapping is restored.
func scnRemapUnderTLB(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0xB2)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	eng.SetRemapTarget(r.Host.Proc.PageTable(), kv.vpage(), attackerFrame(), isa.PermRW)
	eng.InstallScheduler(r.M, -1)
	_, cerr := kv.encl.ECall("churn", want)
	out.detectAt = r.M.Rec.Cycles()
	if cerr == nil {
		out.violations = append(out.violations, "poisoned PTE was never observed (flush did not land)")
		return out, nil
	}
	if errors.Is(cerr, errKVSentinel) {
		out.violations = append(out.violations, fmt.Sprintf("silent wrong data inside the enclave: %v", cerr))
		return out, nil
	}
	out.detection = cerr
	// The page never left the EPC: an honest kernel repairs the PTE and the
	// data is still there.
	idx, found := r.M.FindRegPage(kv.encl.SECS(), kv.vpage())
	if !found {
		out.violations = append(out.violations, "victim page vanished from the EPC")
		return out, nil
	}
	r.Host.Proc.MapFixed(kv.vpage(), r.M.EPC.AddrOf(idx), isa.PermRW)
	got, gerr := kv.encl.ECall("get", nil)
	if gerr != nil || !bytes.Equal(got, want) {
		out.violations = append(out.violations, fmt.Sprintf("data unrecoverable after honest remap: %v", gerr))
	}
	return out, nil
}

// scnEldRedirect: the pager reloads the evicted blob honestly but points the
// repaired PTE at an attacker frame. Figure-6 validation faults the first
// access (ELRANGE not EPC-backed) — detected; the honestly loaded page is
// still in the EPC, so an honest mapping recovers the data.
func scnEldRedirect(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	eng.InstallPager(r.K.Driver)
	eng.SetRedirect(attackerFrame())
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0xC3)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	if err := r.K.Driver.EvictPage(r.Host.Proc, kv.encl.SECS(), kv.vpage()); err != nil {
		return out, fmt.Errorf("evict: %w", err)
	}
	_, gerr := kv.encl.ECall("get", nil)
	out.detectAt = r.M.Rec.Cycles()
	if gerr == nil {
		out.violations = append(out.violations, "redirected reload went unnoticed")
		return out, nil
	}
	out.detection = gerr
	idx, found := r.M.FindRegPage(kv.encl.SECS(), kv.vpage())
	if !found {
		out.violations = append(out.violations, "reloaded page missing from the EPC")
		return out, nil
	}
	r.Host.Proc.MapFixed(kv.vpage(), r.M.EPC.AddrOf(idx), isa.PermRW)
	got, rerr := kv.encl.ECall("get", nil)
	if rerr != nil || !bytes.Equal(got, want) {
		out.violations = append(out.violations, fmt.Sprintf("data unrecoverable after honest remap: %v", rerr))
	}
	return out, nil
}

// scnBlobReplay: evict, reload, mutate, evict again — then answer the next
// fault with the hoarded first-generation blob. ELDU's monotonic version
// counter rejects it (typed ErrBlobReplay); with the attack budget spent,
// the honest retry recovers the current data.
func scnBlobReplay(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	eng.InstallPager(r.K.Driver)
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	v1, v2 := kvPayload(0xD1), kvPayload(0xD2)
	if _, err := kv.encl.ECall("put", v1); err != nil {
		return out, err
	}
	evict := func() error { return r.K.Driver.EvictPage(r.Host.Proc, kv.encl.SECS(), kv.vpage()) }
	if err := evict(); err != nil {
		return out, fmt.Errorf("evict v1: %w", err)
	}
	got, err := kv.encl.ECall("get", nil) // honest reload: the capture is still current
	if err != nil || !bytes.Equal(got, v1) {
		return out, fmt.Errorf("honest reload of v1 failed: %v", err)
	}
	if _, err := kv.encl.ECall("put", v2); err != nil {
		return out, err
	}
	if err := evict(); err != nil {
		return out, fmt.Errorf("evict v2: %w", err)
	}
	stale, gerr := kv.encl.ECall("get", nil) // kernel answers with the v1 blob
	out.detectAt = r.M.Rec.Cycles()
	if gerr == nil {
		if bytes.Equal(stale, v1) {
			out.violations = append(out.violations, "stale v1 blob accepted: rollback delivered to caller")
		} else {
			out.violations = append(out.violations, "stale blob replay went unnoticed")
		}
		return out, nil
	}
	ev := r.K.Driver.DetectionEvidence()
	if ev == nil || !errors.Is(ev, sgx.ErrBlobReplay) {
		return out, fmt.Errorf("reload failed (%v) but no blob-replay evidence recorded", gerr)
	}
	out.detection = ev
	got, rerr := kv.encl.ECall("get", nil) // budget spent: honest reload, current data
	if rerr != nil || !bytes.Equal(got, v2) {
		out.violations = append(out.violations, fmt.Sprintf("current data unrecoverable after detection: %v", rerr))
	}
	return out, nil
}

// scnBlobCrossWire: answer enclave A's page fault with enclave B's fresh,
// authentic blob. ELDU accepts it (it is genuine — for B), but the EPCM
// pins every EPC page to one (owner, vaddr): A's access aborts to 0xFF and
// the enclave's own sentinel refuses the filler. The stolen load consumed
// B's one-time slot, so B's next honest reload trips the freshness counter —
// the typed detection. Both enclaves' data is recoverable by an honest
// kernel afterwards.
func scnBlobCrossWire(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	eng.InstallPager(r.K.Driver)
	kvA, err := buildKV(r, "victim-a", 0x1000_0000)
	if err != nil {
		return out, err
	}
	kvB, err := buildKV(r, "victim-b", 0x2000_0000)
	if err != nil {
		return out, err
	}
	wantA, wantB := kvPayload(0xAA), kvPayload(0xBB)
	if _, err := kvA.encl.ECall("put", wantA); err != nil {
		return out, err
	}
	if _, err := kvB.encl.ECall("put", wantB); err != nil {
		return out, err
	}
	if err := r.K.Driver.EvictPage(r.Host.Proc, kvA.encl.SECS(), kvA.vpage()); err != nil {
		return out, fmt.Errorf("evict A: %w", err)
	}
	if err := r.K.Driver.EvictPage(r.Host.Proc, kvB.encl.SECS(), kvB.vpage()); err != nil {
		return out, fmt.Errorf("evict B: %w", err)
	}
	// A's fault is answered with B's blob: the EPCM makes A's reads abort,
	// and the sentinel check inside A refuses the 0xFF filler.
	gotA, aerr := kvA.encl.ECall("get", nil)
	if aerr == nil {
		if bytes.Equal(gotA, wantB) {
			out.violations = append(out.violations, "enclave A read enclave B's plaintext")
		} else {
			out.violations = append(out.violations, "cross-wired blob went unnoticed inside A")
		}
		return out, nil
	}
	if !errors.Is(aerr, errKVSentinel) {
		// Acceptable alternative: the access faulted instead of aborting.
		var f *isa.Fault
		if !errors.As(aerr, &f) {
			return out, fmt.Errorf("unexpected A failure mode: %w", aerr)
		}
	}
	// B's honest reload now finds its one-time slot spent: typed detection.
	_, berr := kvB.encl.ECall("get", nil)
	out.detectAt = r.M.Rec.Cycles()
	if berr == nil {
		out.violations = append(out.violations, "B reloaded from a consumed slot without detection")
		return out, nil
	}
	ev := r.K.Driver.DetectionEvidence()
	if ev == nil || !errors.Is(ev, sgx.ErrBlobReplay) {
		return out, fmt.Errorf("B reload failed (%v) but no blob-replay evidence recorded", berr)
	}
	out.detection = ev
	// Honest-kernel recovery. A: its genuine blob was preserved; force the
	// fault again and reload clean (attack budget is spent).
	r.Host.Proc.PageTable().MarkNotPresent(kvA.vpage())
	gotA, rerr := kvA.encl.ECall("get", nil)
	if rerr != nil || !bytes.Equal(gotA, wantA) {
		out.violations = append(out.violations, fmt.Sprintf("A unrecoverable after detection: %v", rerr))
	}
	// B: the stolen load put B's genuine page in the EPC (owned by B, at B's
	// vaddr); an honest mapping brings it back.
	idx, found := r.M.FindRegPage(kvB.encl.SECS(), kvB.vpage())
	if !found {
		out.violations = append(out.violations, "B's data lost entirely")
		return out, nil
	}
	r.Host.Proc.MapFixed(kvB.vpage(), r.M.EPC.AddrOf(idx), isa.PermRW)
	gotB, rerr := kvB.encl.ECall("get", nil)
	if rerr != nil || !bytes.Equal(gotB, wantB) {
		out.violations = append(out.violations, fmt.Sprintf("B unrecoverable after detection: %v", rerr))
	}
	return out, nil
}

// pinReader parks core 0 inside the victim enclave with a warm TLB entry
// for the buffer page — the cross-core reader the shootdown attacks target.
// Returns the pinned core; the caller must m.EExit(c, true) when done.
func pinReader(r *Rig, kv *kvVictim, want []byte) (*sgx.Core, error) {
	c := r.M.Core(0)
	if err := r.K.Schedule(c, r.Host.Proc); err != nil {
		return nil, err
	}
	img := kv.encl.Image()
	tcsV := img.HeapBase() + isa.VAddr(img.HeapSize())
	if err := r.M.EEnter(c, kv.encl.SECS(), tcsV, false); err != nil {
		return nil, err
	}
	got, err := c.Read(kv.bufV, kvBytes)
	if err != nil {
		_ = r.M.EExit(c, true)
		return nil, fmt.Errorf("pinned warm-up read: %w", err)
	}
	if !bytes.Equal(got, want) {
		_ = r.M.EExit(c, true)
		return nil, fmt.Errorf("pinned warm-up read returned wrong data")
	}
	return c, nil
}

// scnDropShootdown: the kernel suppresses the ETRACK shootdown IPIs while a
// cross-core reader holds a live translation. The hardware's EWB TLB scan
// refuses the eviction (defense); when the kernel escalates to a raw EREMOVE
// of the page, the freed-frame-with-live-translation state is caught by the
// invariant audit — detected.
func scnDropShootdown(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	eng.InstallPager(r.K.Driver)
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0xE5)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	c, err := pinReader(r, kv, want)
	if err != nil {
		return out, err
	}
	everr := r.K.Driver.EvictPage(r.Host.Proc, kv.encl.SECS(), kv.vpage())
	if everr == nil {
		_ = r.M.EExit(c, true)
		out.violations = append(out.violations, "EWB completed with a suppressed shootdown outstanding")
		return out, nil
	}
	// Escalation: the malicious kernel removes the page outright, bypassing
	// the eviction protocol the hardware just refused.
	idx, found := r.M.FindRegPage(kv.encl.SECS(), kv.vpage())
	if !found {
		_ = r.M.EExit(c, true)
		return out, fmt.Errorf("victim page not resident after refused EWB")
	}
	if rerr := r.M.ERemove(idx); rerr != nil {
		_ = r.M.EExit(c, true)
		return out, fmt.Errorf("EREMOVE escalation refused: %v", rerr)
	}
	findings := append(r.M.AuditInvariants(), r.M.AuditTLBs()...)
	out.detectAt = r.M.Rec.Cycles()
	_ = r.M.EExit(c, true)
	if len(findings) == 0 {
		out.violations = append(out.violations,
			"freed page with a live stale translation escaped the invariant audit")
		return out, nil
	}
	out.detection = &AuditError{Findings: findings}
	return out, nil
}

// scnReorderShootdown: the kernel delivers the shootdown IPIs only after the
// first EWB attempt instead of before it. The hardware refuses the premature
// EWB; once the late IPIs land the retried eviction succeeds, and the pinned
// reader's next access faults cleanly into an honest reload — defended, with
// correct data end to end.
func scnReorderShootdown(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	eng.InstallPager(r.K.Driver)
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0xF6)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	c, err := pinReader(r, kv, want)
	if err != nil {
		return out, err
	}
	defer func() { _ = r.M.EExit(c, true) }()
	if everr := r.K.Driver.EvictPage(r.Host.Proc, kv.encl.SECS(), kv.vpage()); everr == nil {
		out.violations = append(out.violations, "EWB completed before any shootdown was delivered")
		return out, nil
	}
	// The attack budget is spent: the retried eviction delivers the IPIs
	// (late), and must now succeed.
	if everr := r.K.Driver.EvictPage(r.Host.Proc, kv.encl.SECS(), kv.vpage()); everr != nil {
		return out, fmt.Errorf("eviction failed even with late IPIs delivered: %v", everr)
	}
	got, rerr := c.Read(kv.bufV, kvBytes)
	if rerr != nil {
		out.violations = append(out.violations, fmt.Sprintf("pinned reader could not recover after late shootdown: %v", rerr))
		return out, nil
	}
	if !bytes.Equal(got, want) {
		out.violations = append(out.violations, "pinned reader read wrong data after late shootdown")
	}
	return out, nil
}

// scnAEXPreempt: targeted AEX+ERESUME preemptions inside the victim's
// critical read loop. The transition machinery saves, scrubs, and restores
// the context; the workload must complete with correct data — defended.
func scnAEXPreempt(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0x17)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	eng.InstallScheduler(r.M, -1)
	got, cerr := kv.encl.ECall("churn", want)
	if cerr != nil {
		out.violations = append(out.violations, fmt.Sprintf("targeted preemption broke an honest call: %v", cerr))
		return out, nil
	}
	if !bytes.Equal(got, want) {
		out.violations = append(out.violations, "churn returned wrong data under targeted preemption")
	}
	return out, nil
}

// scnEresumeWrongCore: the scheduler AEXes the victim mid-call and ERESUMEs
// its TCS on a different core, leaving the original thread on a dead
// context. The trusted runtime's context guard withholds the data and
// surfaces a typed ContextLost — detected.
func scnEresumeWrongCore(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	kv, err := buildKV(r, "victim", 0x1000_0000)
	if err != nil {
		return out, err
	}
	want := kvPayload(0x28)
	if _, err := kv.encl.ECall("put", want); err != nil {
		return out, err
	}
	eng.InstallScheduler(r.M, -1)
	got, gerr := kv.encl.ECall("get", nil)
	out.detectAt = r.M.Rec.Cycles()
	if gerr == nil {
		if bytes.Equal(got, want) {
			out.violations = append(out.violations, "wrong-core ERESUME never landed")
		} else {
			out.violations = append(out.violations, "dead-context read returned data instead of an error")
		}
		return out, nil
	}
	if !errors.Is(gerr, sdk.ErrContextLost) {
		return out, fmt.Errorf("expected a context-lost detection, got: %w", gerr)
	}
	out.detection = gerr
	return out, nil
}

// advChannelKey is the shared channel key for the IPC scenarios.
var advChannelKey = [16]byte{0xAD}

// scnIPCReplay: the kernel re-delivers a long-since-delivered frame on the
// reliable channel. The receiver's sequence accounting flags any frame
// lagging more than the retransmit window — typed ErrReplayDetected.
func scnIPCReplay(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	return runIPCScenario(r, eng, "adv-replay", 20, true)
}

// scnIPCReorder: adjacent frames swapped in flight — disorder within the
// retransmit bound, which an honest kernel under load can also produce. The
// channel's stash + retransmit machinery must absorb it — defended.
func scnIPCReorder(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	return runIPCScenario(r, eng, "adv-reorder", 12, false)
}

// scnIPCReorderDeep: one frame withheld until it falls out of the sender's
// retransmit window. No honest kernel can reorder that deep; the failed
// retransmit is classified as a replay attack — detected.
func scnIPCReorderDeep(r *Rig, eng *adversary.Engine) (attackOutcome, error) {
	var out attackOutcome
	const winSize = 8
	tx, rx, err := advChannelPair(r, "adv-reorder-deep", winSize)
	if err != nil {
		return out, err
	}
	eng.InstallIPC(r.K.IPC, "adv-reorder-deep", winSize)
	// Burst past the window before draining, so the withheld frame is
	// unrecoverable by the time its gap is discovered.
	for i := 0; i < 2*winSize; i++ {
		tx.Send([]byte(fmt.Sprintf("msg-%03d", i)))
	}
	next := 0
	for {
		pt, ok, rerr := rx.RecvRepaired(tx, 8)
		if rerr != nil {
			out.detectAt = r.M.Rec.Cycles()
			if !errors.Is(rerr, channel.ErrReplayDetected) {
				return out, fmt.Errorf("expected a replay detection, got: %w", rerr)
			}
			out.detection = rerr
			return out, nil
		}
		if !ok {
			out.violations = append(out.violations, "deep reorder drained without detection")
			return out, nil
		}
		if want := fmt.Sprintf("msg-%03d", next); string(pt) != want {
			out.violations = append(out.violations,
				fmt.Sprintf("out-of-order delivery before detection: got %q want %q", pt, want))
			return out, nil
		}
		next++
	}
}

// runIPCScenario drives a lockstep send/drain stream under the installed
// IPC adversary. expectDetect selects the contract: a typed replay
// detection must fire (true), or every frame must deliver in order (false).
func runIPCScenario(r *Rig, eng *adversary.Engine, name string, n int, expectDetect bool) (attackOutcome, error) {
	var out attackOutcome
	const winSize = 8
	tx, rx, err := advChannelPair(r, name, winSize)
	if err != nil {
		return out, err
	}
	eng.InstallIPC(r.K.IPC, name, winSize)
	next := 0
	for i := 0; i < n; i++ {
		tx.Send([]byte(fmt.Sprintf("msg-%03d", i)))
		for {
			pt, ok, rerr := rx.RecvRepaired(tx, 8)
			if rerr != nil {
				out.detectAt = r.M.Rec.Cycles()
				if !expectDetect {
					out.violations = append(out.violations,
						fmt.Sprintf("bounded disorder misclassified as an attack: %v", rerr))
					return out, nil
				}
				if !errors.Is(rerr, channel.ErrReplayDetected) {
					return out, fmt.Errorf("expected a replay detection, got: %w", rerr)
				}
				out.detection = rerr
				return out, nil
			}
			if !ok {
				break
			}
			if want := fmt.Sprintf("msg-%03d", next); string(pt) != want {
				out.violations = append(out.violations,
					fmt.Sprintf("frame %d delivered as %q", next, pt))
				return out, nil
			}
			next++
		}
	}
	if expectDetect {
		out.violations = append(out.violations, "replayed frame was never flagged")
		return out, nil
	}
	if next != n {
		out.violations = append(out.violations,
			fmt.Sprintf("only %d of %d frames delivered", next, n))
	}
	return out, nil
}

func advChannelPair(r *Rig, name string, winSize int) (tx, rx *channel.ReliableChannel, err error) {
	if tx, err = channel.NewReliable(r.K.IPC, name, advChannelKey, winSize); err != nil {
		return nil, nil, err
	}
	if rx, err = channel.NewReliable(r.K.IPC, name, advChannelKey, winSize); err != nil {
		return nil, nil, err
	}
	return tx, rx, nil
}
