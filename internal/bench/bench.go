// Package bench is the experiment harness: one entry point per table and
// figure of the paper's evaluation (§V–§VI), each returning the same
// rows/series the paper reports. The cmd/repro binary prints them; the
// root-level bench_test.go exposes each as a testing.B benchmark.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	TableII   — enclave transition latencies
//	TableIII  — lines of code modified to port the case studies
//	TableIV   — MLS data classification of the case studies
//	TableV    — dataset shapes
//	TableVI   — SQLite/YCSB normalized throughput
//	TableVII  — security analysis (executed attacks)
//	Figure7   — SSL echo-server throughput vs chunk size
//	Figure9   — LibSVM train/predict normalized execution time
//	Figure10  — enclave load time and memory footprint vs sharing degree
//	Figure11  — intra-enclave (MEE) vs AES-GCM channel throughput
//	Ablation* — design-choice ablations (DESIGN.md)
package bench

import (
	"fmt"
	"strings"

	"nestedenclave/internal/core"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

// Rig is a booted simulator used by experiments.
type Rig struct {
	M    *sgx.Machine
	K    *kos.Kernel
	Ext  *core.Extension
	Host *sdk.Host
}

// NewRig boots a nested-enabled machine with the given machine config
// (zero-value: the default i7-7700-like machine).
func NewRig(cfg sgx.Config) (*Rig, error) {
	if cfg.Cores == 0 {
		cfg = sgx.DefaultConfig()
	}
	m, err := sgx.New(cfg)
	if err != nil {
		return nil, err
	}
	ext := core.Enable(m, core.TwoLevel())
	k := kos.New(m)
	registerRecorder(m.Rec)
	return &Rig{M: m, K: k, Ext: ext, Host: sdk.NewHost(k, ext)}, nil
}

// SignPair signs an inner/outer image pair with mutual expected
// measurements and a shared author.
func SignPair(inner, outer *sdk.Image) (*sdk.SignedImage, *sdk.SignedImage) {
	author := measure.MustNewAuthor()
	si := inner.Sign(author, []measure.Digest{outer.Measure()}, nil)
	so := outer.Sign(author, nil, []measure.Digest{inner.Measure()})
	return si, so
}

// LoadPair loads and associates an inner/outer pair.
func (r *Rig) LoadPair(innerImg, outerImg *sdk.Image) (inner, outer *sdk.Enclave, err error) {
	si, so := SignPair(innerImg, outerImg)
	if outer, err = r.Host.Load(so); err != nil {
		return nil, nil, err
	}
	if inner, err = r.Host.Load(si); err != nil {
		return nil, nil, err
	}
	if err = r.Host.Associate(inner, outer); err != nil {
		return nil, nil, err
	}
	return inner, outer, nil
}

// LoadSolo loads a standalone enclave.
func (r *Rig) LoadSolo(img *sdk.Image) (*sdk.Enclave, error) {
	return r.Host.Load(img.Sign(measure.MustNewAuthor(), nil, nil))
}

// SmallMachine sizes a machine for experiments that need little EPC.
func SmallMachine() sgx.Config { return sgx.SmallConfig() }

// CPUFreqGHz converts the simulated cycle model into times: the paper's
// testbed i7-7700 runs at 3.6–4.2 GHz; 4.0 is used throughout.
const CPUFreqGHz = 4.0

// CyclesToUS converts model cycles to microseconds.
func CyclesToUS(cycles int64) float64 { return float64(cycles) / (CPUFreqGHz * 1e3) }

// Table renders rows of labelled values as an aligned text table, the
// format cmd/repro prints.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f2, f3 format floats compactly.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
