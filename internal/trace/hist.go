package trace

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// This file implements the log₂-bucketed latency histograms the observability
// layer keeps for composite operations — the distributions behind the paper's
// Table II averages. A histogram costs one atomic add per observation beyond
// the plain counter it replaces, so it stays on even when event logging and
// attribution are disabled.

// Op enumerates the composite operations with latency histograms. Each is a
// multi-event sequence whose cycle cost varies per invocation (unlike the
// fixed per-event costs), so a distribution is more informative than a sum.
type Op int

const (
	OpECall           Op = iota // full ecall round trip: EENTER .. body .. EEXIT
	OpOCall                     // ocall round trip: EEXIT .. host fn .. resuming EENTER
	OpNECall                    // n_ecall round trip: NEENTER .. body .. NEEXIT
	OpNOCall                    // n_ocall round trip (either Figure-5 direction)
	OpPageWalk                  // TLB miss: page walk + Figure-2 validation
	OpNestedWalk                // TLB miss resolved via the Figure-6 outer-enclave branch
	OpEWB                       // page eviction: seal + LLC flush + free
	OpELD                       // page reload: open + EPC alloc + LLC fill
	OpSwitchlessOCall           // ocall served through the switchless ring (no transition)

	numOps
)

// NumOps is the number of defined composite operations.
const NumOps = int(numOps)

var opNames = [...]string{
	OpECall:           "ecall",
	OpOCall:           "ocall",
	OpNECall:          "n_ecall",
	OpNOCall:          "n_ocall",
	OpPageWalk:        "page_walk",
	OpNestedWalk:      "nested_page_walk",
	OpEWB:             "ewb",
	OpELD:             "eld",
	OpSwitchlessOCall: "switchless_ocall",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// histBuckets is the number of log₂ buckets: bucket i holds values whose bit
// length is i, i.e. [2^(i-1), 2^i). Bucket 0 holds zero (and clamped
// negatives); 64 covers the full int64 range.
const histBuckets = 65

// Histogram is a log₂-bucketed latency histogram safe for concurrent use.
// The zero value is ready.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i
// (math.MaxInt64 for the last bucket).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return (1 << i) - 1
}

// Observe adds one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average sample, 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Mean returns the average sample, 0 with no samples.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 < q <= 1) — an over-estimate by at most 2x, the bucket resolution.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// NonZeroBuckets returns bucket upper bound -> count for occupied buckets,
// the compact form persisted into bench result JSON.
func (s *HistSnapshot) NonZeroBuckets() map[string]int64 {
	out := make(map[string]int64)
	for i, b := range s.Buckets {
		if b != 0 {
			out[fmt.Sprintf("%d", BucketBound(i))] = b
		}
	}
	return out
}
