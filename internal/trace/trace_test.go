package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc(EvECall)
	c.Add(EvOCall, 3)
	if c.Get(EvECall) != 1 || c.Get(EvOCall) != 3 {
		t.Fatalf("counts: %d, %d", c.Get(EvECall), c.Get(EvOCall))
	}
	snap := c.Snapshot()
	if snap["ecall"] != 1 || snap["ocall"] != 3 {
		t.Fatalf("snapshot: %v", snap)
	}
	if len(snap) != 2 {
		t.Fatalf("snapshot carries zero counters: %v", snap)
	}
	c.Reset()
	if c.Get(EvECall) != 0 {
		t.Fatal("reset failed")
	}
}

func TestDiff(t *testing.T) {
	var c Counters
	c.Inc(EvECall)
	before := c.Snapshot()
	c.Add(EvECall, 4)
	c.Inc(EvNECall)
	d := c.Diff(before)
	if d["ecall"] != 4 || d["n_ecall"] != 1 {
		t.Fatalf("diff: %v", d)
	}
	if _, ok := d["ocall"]; ok {
		t.Fatal("diff includes untouched counter")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Advance(23)
	if c.Cycles() != 123 {
		t.Fatalf("cycles = %d", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecorderCharge(t *testing.T) {
	var r Recorder
	r.Charge(EvEENTER, CostEENTER)
	if r.Get(EvEENTER) != 1 || r.Cycles() != CostEENTER {
		t.Fatalf("charge: count=%d cycles=%d", r.Get(EvEENTER), r.Cycles())
	}
}

func TestRegion(t *testing.T) {
	var r Recorder
	r.Inc(EvECall)
	reg := r.BeginRegion("work")
	r.Add(EvECall, 2)
	r.Inc(EvTLBFlush)
	d := reg.End()
	if d["ecall"] != 2 || d["tlb_flush"] != 1 {
		t.Fatalf("region diff: %v", d)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Charge(EvTLBMiss, 1)
			}
		}()
	}
	wg.Wait()
	if r.Get(EvTLBMiss) != 8000 || r.Cycles() != 8000 {
		t.Fatalf("concurrent: %d / %d", r.Get(EvTLBMiss), r.Cycles())
	}
}

func TestStringers(t *testing.T) {
	var c Counters
	c.Inc(EvNEENTER)
	c.Inc(EvAEX)
	s := c.String()
	if !strings.Contains(s, "NEENTER=1") || !strings.Contains(s, "AEX=1") {
		t.Fatalf("counter string: %q", s)
	}
	if Event(9999).String() == "" {
		t.Fatal("unknown event stringer empty")
	}
	for e := Event(0); e < numEvents; e++ {
		if strings.HasPrefix(e.String(), "event(") {
			t.Errorf("event %d has no name", e)
		}
	}
}
