package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc(EvECall)
	c.Add(EvOCall, 3)
	if c.Get(EvECall) != 1 || c.Get(EvOCall) != 3 {
		t.Fatalf("counts: %d, %d", c.Get(EvECall), c.Get(EvOCall))
	}
	snap := c.Snapshot()
	if snap["ecall"] != 1 || snap["ocall"] != 3 {
		t.Fatalf("snapshot: %v", snap)
	}
	if len(snap) != 2 {
		t.Fatalf("snapshot carries zero counters: %v", snap)
	}
	c.Reset()
	if c.Get(EvECall) != 0 {
		t.Fatal("reset failed")
	}
}

func TestDiff(t *testing.T) {
	var c Counters
	c.Inc(EvECall)
	before := c.Snapshot()
	c.Add(EvECall, 4)
	c.Inc(EvNECall)
	d := c.Diff(before)
	if d["ecall"] != 4 || d["n_ecall"] != 1 {
		t.Fatalf("diff: %v", d)
	}
	if _, ok := d["ocall"]; ok {
		t.Fatal("diff includes untouched counter")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Advance(23)
	if c.Cycles() != 123 {
		t.Fatalf("cycles = %d", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecorderCharge(t *testing.T) {
	var r Recorder
	r.Charge(EvEENTER, CostEENTER)
	if r.Get(EvEENTER) != 1 || r.Cycles() != CostEENTER {
		t.Fatalf("charge: count=%d cycles=%d", r.Get(EvEENTER), r.Cycles())
	}
}

func TestRegion(t *testing.T) {
	var r Recorder
	r.Inc(EvECall)
	reg := r.BeginRegion("work")
	r.Add(EvECall, 2)
	r.Inc(EvTLBFlush)
	d := reg.End()
	if d["ecall"] != 2 || d["tlb_flush"] != 1 {
		t.Fatalf("region diff: %v", d)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Charge(EvTLBMiss, 1)
			}
		}()
	}
	wg.Wait()
	if r.Get(EvTLBMiss) != 8000 || r.Cycles() != 8000 {
		t.Fatalf("concurrent: %d / %d", r.Get(EvTLBMiss), r.Cycles())
	}
}

func TestDiffInto(t *testing.T) {
	var c Counters
	c.Inc(EvECall)
	var before, delta CounterSet
	c.SnapshotInto(&before)
	c.Add(EvECall, 4)
	c.Inc(EvNECall)
	c.DiffInto(&before, &delta)
	if delta.Get(EvECall) != 4 || delta.Get(EvNECall) != 1 || delta.Get(EvOCall) != 0 {
		t.Fatalf("delta: %v", delta.Map())
	}
	if delta.Total() != 5 || delta.Total(EvECall) != 4 {
		t.Fatalf("totals: %d / %d", delta.Total(), delta.Total(EvECall))
	}
	m := delta.Map()
	if len(m) != 2 || m["ecall"] != 4 {
		t.Fatalf("map form: %v", m)
	}
}

func TestRegionEndInto(t *testing.T) {
	var r Recorder
	reg := r.BeginRegion("loop")
	r.Inc(EvNOCall)
	r.Add(EvTLBHit, 7)
	var d CounterSet
	reg.EndInto(&d)
	if d.Get(EvNOCall) != 1 || d.Get(EvTLBHit) != 7 {
		t.Fatalf("EndInto: %v", d.Map())
	}
	// Regions are independent snapshots: a second, later region sees only
	// its own window.
	reg2 := r.BeginRegion("second")
	r.Inc(EvNOCall)
	reg2.EndInto(&d)
	if d.Get(EvNOCall) != 1 || d.Get(EvTLBHit) != 0 {
		t.Fatalf("second region: %v", d.Map())
	}
}

func TestRecorderAttribution(t *testing.T) {
	var r Recorder
	// Disabled: charges count globally, nothing is attributed.
	r.ChargeTo(7, 0, EvEENTER, CostEENTER)
	if r.Observing() || len(r.PerEnclave()) != 0 || r.Log() != nil {
		t.Fatal("observation should start disabled")
	}

	r.EnableObservation(64)
	if !r.Observing() || r.Log() == nil {
		t.Fatal("observation not enabled")
	}
	r.ChargeTo(1, 0, EvEENTER, CostEENTER)
	r.ChargeTo(2, 1, EvNEENTER, CostNEENTER)
	r.ChargeToDetail(2, 1, EvPageWalk, CostPageWalk, 0x123)
	r.SetBillHint(2)
	r.ChargeHint(EvLLCHit, CostLLCHit)

	per := r.PerEnclave()
	if e1 := per[1]; e1.Get(EvEENTER) != 1 {
		t.Fatalf("enclave 1: %v", e1.Map())
	}
	if s := per[2]; s.Get(EvNEENTER) != 1 || s.Get(EvPageWalk) != 1 || s.Get(EvLLCHit) != 1 {
		t.Fatalf("enclave 2: %v", s.Map())
	}
	if _, ok := per[7]; ok {
		t.Fatal("pre-enable charge must not be attributed")
	}

	recs := r.Log().Snapshot()
	if len(recs) != 4 {
		t.Fatalf("log has %d records", len(recs))
	}
	walk := FilterRecords(recs, ByEvent(EvPageWalk))
	if len(walk) != 1 || walk[0].Detail != 0x123 || walk[0].EID != 2 || walk[0].Core != 1 {
		t.Fatalf("page walk record: %+v", walk)
	}
	hint := FilterRecords(recs, ByEvent(EvLLCHit))
	if len(hint) != 1 || hint[0].EID != 2 || hint[0].Core != int32(NoCore) {
		t.Fatalf("hinted record: %+v", hint)
	}

	// Global counters kept counting throughout (2 EENTER total).
	if r.Get(EvEENTER) != 2 {
		t.Fatalf("global EENTER = %d", r.Get(EvEENTER))
	}

	r.DisableObservation()
	if r.Observing() || r.Log() != nil || len(r.PerEnclave()) != 0 {
		t.Fatal("disable did not drop the sink")
	}
}

// TestRecorderRaceHammer drives one Recorder from many goroutines across
// every concurrent surface — attributed charges, hinted charges, histogram
// observations, and concurrent snapshot readers — while observation with a
// small (constantly wrapping) event log is enabled. Run under -race (the
// tier-2 target) this is the data-race proof for the observability layer.
func TestRecorderRaceHammer(t *testing.T) {
	var r Recorder
	r.EnableObservation(64)
	var wg sync.WaitGroup
	const writers, per = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			eid := uint64(id%4 + 1)
			for i := 0; i < per; i++ {
				switch i % 4 {
				case 0:
					r.ChargeTo(eid, id, EvEENTER, CostEENTER)
				case 1:
					r.ChargeToDetail(eid, id, EvPageWalk, CostPageWalk, uint64(i))
				case 2:
					r.SetBillHint(eid)
					r.ChargeHint(EvLLCHit, CostLLCHit)
				case 3:
					r.Observe(OpECall, int64(i))
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots, per-enclave maps, log drains, exports.
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var cs CounterSet
		for {
			select {
			case <-done:
				return
			default:
			}
			r.SnapshotInto(&cs)
			_ = r.PerEnclave()
			if l := r.Log(); l != nil {
				_ = l.Snapshot()
			}
			_ = r.Hist(OpECall).Snapshot()
		}
	}()
	wg.Wait()
	close(done)
	readers.Wait()

	total := int64(writers * per)
	got := r.Get(EvEENTER) + r.Get(EvPageWalk) + r.Get(EvLLCHit) + r.Hist(OpECall).Count()
	if got != total {
		t.Fatalf("hammer lost events: %d of %d", got, total)
	}
	if r.Log().Seq() != uint64(writers*per/4*3) {
		t.Fatalf("log seq = %d", r.Log().Seq())
	}
}

func TestStringers(t *testing.T) {
	var c Counters
	c.Inc(EvNEENTER)
	c.Inc(EvAEX)
	s := c.String()
	if !strings.Contains(s, "NEENTER=1") || !strings.Contains(s, "AEX=1") {
		t.Fatalf("counter string: %q", s)
	}
	if Event(9999).String() == "" {
		t.Fatal("unknown event stringer empty")
	}
	for e := Event(0); e < numEvents; e++ {
		if strings.HasPrefix(e.String(), "event(") {
			t.Errorf("event %d has no name", e)
		}
	}
}
