package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21},
		{(1 << 21) - 1, 21},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must fall within the inclusive upper bound of its bucket
	// and above the previous bucket's bound.
	for _, c := range cases {
		if c.v <= 0 {
			continue
		}
		b := bucketOf(c.v)
		if c.v > BucketBound(b) {
			t.Errorf("value %d above BucketBound(%d)=%d", c.v, b, BucketBound(b))
		}
		if c.v <= BucketBound(b-1) {
			t.Errorf("value %d not above BucketBound(%d)=%d", c.v, b-1, BucketBound(b-1))
		}
	}
}

func TestBucketBound(t *testing.T) {
	if BucketBound(0) != 0 || BucketBound(-1) != 0 {
		t.Fatal("bucket 0 bound")
	}
	if BucketBound(1) != 1 || BucketBound(2) != 3 || BucketBound(10) != 1023 {
		t.Fatalf("bounds: %d %d %d", BucketBound(1), BucketBound(2), BucketBound(10))
	}
	if BucketBound(63) != math.MaxInt64 || BucketBound(64) != math.MaxInt64 {
		t.Fatal("top buckets must clamp to MaxInt64")
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, -7} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 106 { // negatives clamp to zero
		t.Fatalf("sum = %d", h.Sum())
	}
	s := h.Snapshot()
	if s.Buckets[0] != 2 { // 0 and -7
		t.Fatalf("bucket 0 = %d", s.Buckets[0])
	}
	if s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[7] != 1 {
		t.Fatalf("buckets: %v", s.NonZeroBuckets())
	}
	if got := s.Mean(); math.Abs(got-106.0/6) > 1e-9 {
		t.Fatalf("mean = %f", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 fast samples (bucket 4: bound 15), 10 slow (bucket 11: bound 2047).
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2000)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 15 {
		t.Fatalf("p50 = %d", got)
	}
	if got := s.Quantile(0.90); got != 15 {
		t.Fatalf("p90 = %d", got)
	}
	if got := s.Quantile(0.99); got != 2047 {
		t.Fatalf("p99 = %d", got)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Observe(seed + i%64)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Snapshot()
	var n int64
	for _, b := range s.Buckets {
		n += b
	}
	if n != workers*per {
		t.Fatalf("bucket total = %d, want %d", n, workers*per)
	}
}

func TestOpNames(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d unnamed", op)
		}
	}
	if Op(999).String() != "op(999)" {
		t.Fatal("unknown op stringer")
	}
}
