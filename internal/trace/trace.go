// Package trace provides the event counters, the simulated cycle clock, and
// the structured observability layer shared by the machine simulator and the
// benchmark harness.
//
// Counters record architectural events (enclave transitions, TLB activity,
// MEE line operations, faults) so experiments can report the same series the
// paper plots — e.g. Figure 7 overlays the number of ecalls/ocalls on the
// echo-server throughput. The clock accumulates the cost model from package
// isa-level constants declared here, giving a deterministic "simulated
// cycles" measure alongside wall-clock timing.
//
// On top of the flat counters, a Recorder optionally attributes every charge
// to the enclave it bills (per-EID counter sets) and appends it to a bounded
// ring-buffer event log (see ring.go) that exporters turn into Chrome
// trace_event timelines and Prometheus text dumps (see export.go). Latency
// histograms for composite operations live in hist.go. All of it is designed
// so the disabled path costs nothing beyond the original counter increments:
// one atomic pointer load decides whether a charge is observed further.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Event enumerates the counted architectural events.
type Event int

const (
	// Transitions between protection domains.
	EvECall  Event = iota // untrusted -> enclave (EENTER path)
	EvOCall               // enclave -> untrusted service call (EEXIT path)
	EvNECall              // outer -> inner (NEENTER path)
	EvNOCall              // inner -> outer (NEEXIT path)
	EvEENTER
	EvEEXIT
	EvNEENTER
	EvNEEXIT
	EvAEX

	// Address translation machinery.
	EvTLBHit
	EvTLBMiss
	EvTLBFlush
	EvPageWalk
	EvValidateStep   // one step of the Figure-6 validation flow
	EvNestedValidate // accesses approved via the outer-enclave branch

	// Memory protection engine.
	EvMEEEncrypt // cacheline encrypted on writeback to PRM
	EvMEEDecrypt // cacheline decrypted+verified on fetch from PRM
	EvLLCHit
	EvLLCMiss

	// Faults.
	EvFaultGP
	EvFaultPF
	EvFaultMC

	// Paging.
	EvEWB // EPC page evicted
	EvELD // EPC page reloaded
	EvIPI // inter-processor interrupt (TLB shootdown)

	// Runtime fault injection (package chaos). The detail word of these
	// records carries the fault site.
	EvChaosInject  // a fault was injected
	EvChaosRecover // an injected fault was recovered (retry/retransmit/restart)

	// Switchless calls (package switchless). A switchless request elides the
	// EEXIT/EENTER pair; the ring protocol costs below are charged instead so
	// the elided transitions remain attributed.
	EvSwitchless         // a request completed through the ring
	EvSwitchlessFallback // a request fell back to the synchronous path

	numEvents
)

// NumEvents is the number of defined events (the length of a CounterSet).
const NumEvents = int(numEvents)

var eventNames = [...]string{
	EvECall:              "ecall",
	EvOCall:              "ocall",
	EvNECall:             "n_ecall",
	EvNOCall:             "n_ocall",
	EvEENTER:             "EENTER",
	EvEEXIT:              "EEXIT",
	EvNEENTER:            "NEENTER",
	EvNEEXIT:             "NEEXIT",
	EvAEX:                "AEX",
	EvTLBHit:             "tlb_hit",
	EvTLBMiss:            "tlb_miss",
	EvTLBFlush:           "tlb_flush",
	EvPageWalk:           "page_walk",
	EvValidateStep:       "validate_step",
	EvNestedValidate:     "nested_validate",
	EvMEEEncrypt:         "mee_encrypt",
	EvMEEDecrypt:         "mee_decrypt",
	EvLLCHit:             "llc_hit",
	EvLLCMiss:            "llc_miss",
	EvFaultGP:            "fault_gp",
	EvFaultPF:            "fault_pf",
	EvFaultMC:            "fault_mc",
	EvEWB:                "ewb",
	EvELD:                "eld",
	EvIPI:                "ipi",
	EvChaosInject:        "chaos_inject",
	EvChaosRecover:       "chaos_recover",
	EvSwitchless:         "switchless",
	EvSwitchlessFallback: "switchless_fallback",
}

func (e Event) String() string {
	if int(e) < len(eventNames) && eventNames[e] != "" {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// Cycle costs of modelled operations. The values are calibrated so that the
// composed transition costs land in the regime the paper's Table II reports
// for real hardware (an ecall around 3.45 µs on a ~4 GHz part, i.e. ~14 k
// cycles dominated by the EENTER/EEXIT pair and TLB refill), while the
// emulated path is measured in wall-clock like the paper's SDK simulation
// mode. The absolute values matter less than their ratios; every experiment
// reports normalized results.
const (
	CostTLBHit       = 1
	CostPageWalk     = 60
	CostValidateStep = 4
	CostTLBFlush     = 120
	// EENTER+EEXIT sum to ~13.8k cycles: 3.45 µs at the i7-7700's 4 GHz,
	// the paper's measured hardware ecall latency (Table II). The resume
	// flavour of EENTER (ocall return) skips TCS claiming and argument
	// staging, putting the ocall round trip at ~12.5k cycles = 3.13 µs.
	CostEENTER       = 7300
	CostEENTERResume = 6000
	CostEEXIT        = 6500
	// NEENTER/NEEXIT stay cheaper than the ecall pair: direct transition,
	// no untrusted-runtime dispatch.
	CostNEENTER    = 6200
	CostNEEXIT     = 5400
	CostAEX        = 7800
	CostMEELine    = 40 // AES-CTR + tree walk per 64-B line
	CostLLCHit     = 30
	CostDRAMAccess = 170
	CostIPI        = 2500

	// Switchless ring protocol (Occlum-style asynchronous calls): the
	// submitter pays one cacheline hand-off plus bookkeeping to post a
	// request, and the servicing worker pays the same to claim, run and
	// complete it. Both together (~800 cycles) replace the ~12.5k-cycle
	// EEXIT+EENTER(resume) pair of a synchronous ocall. The costs are fixed
	// per request — spinning never charges — so replays stay deterministic.
	CostRingSubmit  = 400
	CostRingService = 400

	// Software AES-GCM, as used by the monolithic inter-enclave channel
	// (Figure 11's baseline): a fixed per-call cost (IV/tag handling,
	// buffer management, call overhead inside the enclave crypto library)
	// plus a per-16-byte-block cost. AES-NI-era figures.
	CostGCMFixed    = 1500
	CostGCMPerBlock = 40
)

// CyclesPerUS converts model cycles to microseconds at the paper's 4 GHz
// reference clock; the exporters use it to place events on a time axis.
const CyclesPerUS = 4000.0

// GCMCycles returns the modelled cycle cost of one software AES-GCM
// operation (seal or open) over n bytes.
func GCMCycles(n int) int64 {
	blocks := int64((n + 15) / 16)
	return CostGCMFixed + blocks*CostGCMPerBlock
}

// Counters is a set of event counters safe for concurrent use.
type Counters struct {
	c [numEvents]atomic.Int64
}

// Inc adds one to the event's counter.
func (t *Counters) Inc(e Event) { t.c[e].Add(1) }

// Add adds n to the event's counter.
func (t *Counters) Add(e Event, n int64) { t.c[e].Add(n) }

// Get returns the event's current count.
func (t *Counters) Get(e Event) int64 { return t.c[e].Load() }

// Reset zeroes every counter.
func (t *Counters) Reset() {
	for i := range t.c {
		t.c[i].Store(0)
	}
}

// CounterSet is a flat, allocation-free snapshot of all counters, indexed by
// Event. It is the hot-path alternative to the map-based Snapshot/Diff.
type CounterSet [numEvents]int64

// Get returns the snapshot's count for the event.
func (cs *CounterSet) Get(e Event) int64 { return cs[e] }

// Map converts the non-zero entries to the map form used by reports.
func (cs *CounterSet) Map() map[string]int64 {
	out := make(map[string]int64)
	for i, v := range cs {
		if v != 0 {
			out[Event(i).String()] = v
		}
	}
	return out
}

// Total sums the listed events (all events when none given).
func (cs *CounterSet) Total(events ...Event) int64 {
	var sum int64
	if len(events) == 0 {
		for _, v := range cs {
			sum += v
		}
		return sum
	}
	for _, e := range events {
		sum += cs[e]
	}
	return sum
}

// SnapshotInto loads every counter into dst without allocating.
func (t *Counters) SnapshotInto(dst *CounterSet) {
	for i := range t.c {
		dst[i] = t.c[i].Load()
	}
}

// DiffInto stores the counters accumulated since prev into dst without
// allocating: dst[i] = current[i] - prev[i].
func (t *Counters) DiffInto(prev, dst *CounterSet) {
	for i := range t.c {
		dst[i] = t.c[i].Load() - prev[i]
	}
}

// Snapshot returns a copy of all non-zero counters keyed by event name.
func (t *Counters) Snapshot() map[string]int64 {
	var cs CounterSet
	t.SnapshotInto(&cs)
	return cs.Map()
}

// Diff returns counters accumulated since the snapshot prev.
func (t *Counters) Diff(prev map[string]int64) map[string]int64 {
	cur := t.Snapshot()
	out := make(map[string]int64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range prev {
		if _, ok := cur[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

func (t *Counters) String() string {
	snap := t.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}

// Clock accumulates simulated cycles. It is safe for concurrent use.
type Clock struct {
	cycles atomic.Int64
}

// Advance adds n cycles.
func (c *Clock) Advance(n int64) { c.cycles.Add(n) }

// Cycles returns the accumulated cycle count.
func (c *Clock) Cycles() int64 { return c.cycles.Load() }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles.Store(0) }

// NoCore marks charges with no specific core (machine-global operations).
const NoCore = -1

// NoEID is the attribution identity for non-enclave (untrusted) execution.
const NoEID uint64 = 0

// sink is the enabled-observation state: per-enclave counter sets, the
// optional event log, and the span layer (stacks, completed-span ring,
// profiler — see span.go). A Recorder points at one only while observation
// is on, so the disabled fast path is a single atomic pointer load.
type sink struct {
	perEID sync.Map // uint64 EID -> *Counters
	log    *EventLog
	spans  spanState
}

func (s *sink) counters(eid uint64) *Counters {
	if c, ok := s.perEID.Load(eid); ok {
		return c.(*Counters)
	}
	c, _ := s.perEID.LoadOrStore(eid, &Counters{})
	return c.(*Counters)
}

func (s *sink) record(eid uint64, core int, e Event, cost int64, clock int64, detail uint64) {
	s.counters(eid).Inc(e)
	if s.log != nil {
		s.log.Append(Record{
			Cycles: clock,
			Cost:   cost,
			Core:   int32(core),
			EID:    eid,
			Event:  e,
			Detail: detail,
			Span:   s.spans.spanTop(core),
		})
	}
	s.spans.maybeSample(clock)
}

// Recorder bundles counters, a clock, latency histograms, and the optional
// attribution sink; the machine carries one and every layer charges events
// and cycles against it.
type Recorder struct {
	Counters
	Clock

	hist [numOps]Histogram

	// sink is non-nil only while observation (per-enclave attribution and
	// the event log) is enabled.
	sink atomic.Pointer[sink]
	// billHint names the enclave to bill for memory-hierarchy charges made
	// by layers that have no protection context of their own (LLC, MEE).
	// The access path stores the current enclave here before touching
	// memory; all such accesses are serialized by the machine lock.
	billHint atomic.Uint64
}

// EnableObservation turns on per-enclave attribution, span tracing, and —
// when logCapacity is positive — the bounded ring-buffer event log. Charges
// made while observation is off are counted globally but not attributed. The
// completed-span ring is sized like the event log (minimum 1024 spans).
func (r *Recorder) EnableObservation(logCapacity int) {
	s := &sink{}
	if logCapacity > 0 {
		s.log = NewEventLog(logCapacity)
	}
	spanCap := logCapacity
	if spanCap < 1024 {
		spanCap = 1024
	}
	s.spans.done = newSpanRing(spanCap)
	r.sink.Store(s)
}

// DisableObservation returns the recorder to the zero-cost fast path. The
// accumulated per-enclave counters and event log are dropped.
func (r *Recorder) DisableObservation() { r.sink.Store(nil) }

// Observing reports whether attribution is currently enabled.
func (r *Recorder) Observing() bool { return r.sink.Load() != nil }

// Log returns the event log, nil when observation (or the log) is disabled.
func (r *Recorder) Log() *EventLog {
	if s := r.sink.Load(); s != nil {
		return s.log
	}
	return nil
}

// PerEnclave snapshots the per-enclave counters accumulated since
// EnableObservation, keyed by EID. Empty when observation is disabled.
func (r *Recorder) PerEnclave() map[uint64]CounterSet {
	out := make(map[uint64]CounterSet)
	s := r.sink.Load()
	if s == nil {
		return out
	}
	s.perEID.Range(func(k, v any) bool {
		var cs CounterSet
		v.(*Counters).SnapshotInto(&cs)
		out[k.(uint64)] = cs
		return true
	})
	return out
}

// SetBillHint names the enclave subsequent memory-hierarchy charges bill to.
func (r *Recorder) SetBillHint(eid uint64) { r.billHint.Store(eid) }

// Charge records the event and advances the clock by the given cost without
// attribution (billed to NoEID).
func (r *Recorder) Charge(e Event, cycles int64) {
	r.ChargeTo(NoEID, NoCore, e, cycles)
}

// ChargeTo records the event, advances the clock, and — when observation is
// enabled — bills the event to enclave eid on the given core.
func (r *Recorder) ChargeTo(eid uint64, core int, e Event, cycles int64) {
	r.Inc(e)
	r.Advance(cycles)
	if s := r.sink.Load(); s != nil {
		s.record(eid, core, e, cycles, r.Cycles(), 0)
	}
}

// ChargeToDetail is ChargeTo with an event-specific detail word (a virtual
// page number, a chunk size, ...) carried into the event log.
func (r *Recorder) ChargeToDetail(eid uint64, core int, e Event, cycles int64, detail uint64) {
	r.Inc(e)
	r.Advance(cycles)
	if s := r.sink.Load(); s != nil {
		s.record(eid, core, e, cycles, r.Cycles(), detail)
	}
}

// ChargeBatchTo records n occurrences of the event as one batched charge:
// counters (global and per-enclave) advance by n, the clock advances by
// n*cyclesEach, and — when observation is enabled — a single event-log record
// is appended whose detail word carries the batch size. The access path uses
// it so per-step charges (e.g. validate steps within one page walk) stop
// being per-call work; totals are bit-identical to n individual charges.
func (r *Recorder) ChargeBatchTo(eid uint64, core int, e Event, n int64, cyclesEach int64) {
	if n <= 0 {
		return
	}
	r.Add(e, n)
	r.Advance(n * cyclesEach)
	if s := r.sink.Load(); s != nil {
		s.counters(eid).Add(e, n-1) // record() adds the final one
		s.record(eid, core, e, n*cyclesEach, r.Cycles(), uint64(n))
	}
}

// ChargeHint is ChargeTo billed to the enclave named by the last SetBillHint.
// The memory hierarchy (LLC, MEE) uses it because those layers run below the
// protection context.
func (r *Recorder) ChargeHint(e Event, cycles int64) {
	r.Inc(e)
	r.Advance(cycles)
	if s := r.sink.Load(); s != nil {
		s.record(r.billHint.Load(), NoCore, e, cycles, r.Cycles(), 0)
	}
}

// Observe adds one sample to the composite-operation latency histogram.
func (r *Recorder) Observe(op Op, cycles int64) { r.hist[op].Observe(cycles) }

// Hist returns the histogram for the operation.
func (r *Recorder) Hist(op Op) *Histogram { return &r.hist[op] }

// HistSnapshots returns snapshots of every histogram with samples, keyed by
// operation name.
func (r *Recorder) HistSnapshots() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot)
	for op := Op(0); op < numOps; op++ {
		if snap := r.hist[op].Snapshot(); snap.Count > 0 {
			out[op.String()] = snap
		}
	}
	return out
}

// Region is a named measurement scope used by the bench harness to attribute
// counter deltas to workload phases. Regions are independent snapshots over
// the recorder's atomic counters: concurrent BeginRegion/End calls on
// different regions (or different recorders) never contend.
type Region struct {
	Name  string
	start CounterSet
	rec   *Recorder
}

// BeginRegion snapshots the recorder for a later End.
func (r *Recorder) BeginRegion(name string) *Region {
	reg := &Region{Name: name, rec: r}
	r.Counters.SnapshotInto(&reg.start)
	return reg
}

// End returns the counter deltas since the region began, in map form.
func (reg *Region) End() map[string]int64 {
	var d CounterSet
	reg.EndInto(&d)
	return d.Map()
}

// EndInto stores the counter deltas since the region began into dst without
// allocating — the hot-path form for per-iteration measurement loops.
func (reg *Region) EndInto(dst *CounterSet) {
	reg.rec.Counters.DiffInto(&reg.start, dst)
}
