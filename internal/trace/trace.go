// Package trace provides the event counters and the simulated cycle clock
// shared by the machine simulator and the benchmark harness.
//
// Counters record architectural events (enclave transitions, TLB activity,
// MEE line operations, faults) so experiments can report the same series the
// paper plots — e.g. Figure 7 overlays the number of ecalls/ocalls on the
// echo-server throughput. The clock accumulates the cost model from package
// isa-level constants declared here, giving a deterministic "simulated
// cycles" measure alongside wall-clock timing.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Event enumerates the counted architectural events.
type Event int

const (
	// Transitions between protection domains.
	EvECall  Event = iota // untrusted -> enclave (EENTER path)
	EvOCall               // enclave -> untrusted service call (EEXIT path)
	EvNECall              // outer -> inner (NEENTER path)
	EvNOCall              // inner -> outer (NEEXIT path)
	EvEENTER
	EvEEXIT
	EvNEENTER
	EvNEEXIT
	EvAEX

	// Address translation machinery.
	EvTLBHit
	EvTLBMiss
	EvTLBFlush
	EvPageWalk
	EvValidateStep   // one step of the Figure-6 validation flow
	EvNestedValidate // accesses approved via the outer-enclave branch

	// Memory protection engine.
	EvMEEEncrypt // cacheline encrypted on writeback to PRM
	EvMEEDecrypt // cacheline decrypted+verified on fetch from PRM
	EvLLCHit
	EvLLCMiss

	// Faults.
	EvFaultGP
	EvFaultPF
	EvFaultMC

	// Paging.
	EvEWB // EPC page evicted
	EvELD // EPC page reloaded
	EvIPI // inter-processor interrupt (TLB shootdown)

	numEvents
)

var eventNames = [...]string{
	EvECall:          "ecall",
	EvOCall:          "ocall",
	EvNECall:         "n_ecall",
	EvNOCall:         "n_ocall",
	EvEENTER:         "EENTER",
	EvEEXIT:          "EEXIT",
	EvNEENTER:        "NEENTER",
	EvNEEXIT:         "NEEXIT",
	EvAEX:            "AEX",
	EvTLBHit:         "tlb_hit",
	EvTLBMiss:        "tlb_miss",
	EvTLBFlush:       "tlb_flush",
	EvPageWalk:       "page_walk",
	EvValidateStep:   "validate_step",
	EvNestedValidate: "nested_validate",
	EvMEEEncrypt:     "mee_encrypt",
	EvMEEDecrypt:     "mee_decrypt",
	EvLLCHit:         "llc_hit",
	EvLLCMiss:        "llc_miss",
	EvFaultGP:        "fault_gp",
	EvFaultPF:        "fault_pf",
	EvFaultMC:        "fault_mc",
	EvEWB:            "ewb",
	EvELD:            "eld",
	EvIPI:            "ipi",
}

func (e Event) String() string {
	if int(e) < len(eventNames) && eventNames[e] != "" {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// Cycle costs of modelled operations. The values are calibrated so that the
// composed transition costs land in the regime the paper's Table II reports
// for real hardware (an ecall around 3.45 µs on a ~4 GHz part, i.e. ~14 k
// cycles dominated by the EENTER/EEXIT pair and TLB refill), while the
// emulated path is measured in wall-clock like the paper's SDK simulation
// mode. The absolute values matter less than their ratios; every experiment
// reports normalized results.
const (
	CostTLBHit       = 1
	CostPageWalk     = 60
	CostValidateStep = 4
	CostTLBFlush     = 120
	// EENTER+EEXIT sum to ~13.8k cycles: 3.45 µs at the i7-7700's 4 GHz,
	// the paper's measured hardware ecall latency (Table II). The resume
	// flavour of EENTER (ocall return) skips TCS claiming and argument
	// staging, putting the ocall round trip at ~12.5k cycles = 3.13 µs.
	CostEENTER       = 7300
	CostEENTERResume = 6000
	CostEEXIT        = 6500
	// NEENTER/NEEXIT stay cheaper than the ecall pair: direct transition,
	// no untrusted-runtime dispatch.
	CostNEENTER    = 6200
	CostNEEXIT     = 5400
	CostAEX        = 7800
	CostMEELine    = 40 // AES-CTR + tree walk per 64-B line
	CostLLCHit     = 30
	CostDRAMAccess = 170
	CostIPI        = 2500

	// Software AES-GCM, as used by the monolithic inter-enclave channel
	// (Figure 11's baseline): a fixed per-call cost (IV/tag handling,
	// buffer management, call overhead inside the enclave crypto library)
	// plus a per-16-byte-block cost. AES-NI-era figures.
	CostGCMFixed    = 1500
	CostGCMPerBlock = 40
)

// GCMCycles returns the modelled cycle cost of one software AES-GCM
// operation (seal or open) over n bytes.
func GCMCycles(n int) int64 {
	blocks := int64((n + 15) / 16)
	return CostGCMFixed + blocks*CostGCMPerBlock
}

// Counters is a set of event counters safe for concurrent use.
type Counters struct {
	c [numEvents]atomic.Int64
}

// Inc adds one to the event's counter.
func (t *Counters) Inc(e Event) { t.c[e].Add(1) }

// Add adds n to the event's counter.
func (t *Counters) Add(e Event, n int64) { t.c[e].Add(n) }

// Get returns the event's current count.
func (t *Counters) Get(e Event) int64 { return t.c[e].Load() }

// Reset zeroes every counter.
func (t *Counters) Reset() {
	for i := range t.c {
		t.c[i].Store(0)
	}
}

// Snapshot returns a copy of all non-zero counters keyed by event name.
func (t *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for i := range t.c {
		if v := t.c[i].Load(); v != 0 {
			out[Event(i).String()] = v
		}
	}
	return out
}

// Diff returns counters accumulated since the snapshot prev.
func (t *Counters) Diff(prev map[string]int64) map[string]int64 {
	cur := t.Snapshot()
	out := make(map[string]int64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range prev {
		if _, ok := cur[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

func (t *Counters) String() string {
	snap := t.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}

// Clock accumulates simulated cycles. It is safe for concurrent use.
type Clock struct {
	cycles atomic.Int64
}

// Advance adds n cycles.
func (c *Clock) Advance(n int64) { c.cycles.Add(n) }

// Cycles returns the accumulated cycle count.
func (c *Clock) Cycles() int64 { return c.cycles.Load() }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles.Store(0) }

// Recorder bundles counters and a clock; the machine carries one and every
// layer charges events and cycles against it.
type Recorder struct {
	Counters
	Clock
}

// Charge records the event and advances the clock by the given cost.
func (r *Recorder) Charge(e Event, cycles int64) {
	r.Inc(e)
	r.Advance(cycles)
}

// Region is a named measurement scope used by the bench harness to attribute
// counter deltas to workload phases.
type Region struct {
	Name  string
	Start map[string]int64
	rec   *Recorder
}

var regionMu sync.Mutex

// BeginRegion snapshots the recorder for later Diff.
func (r *Recorder) BeginRegion(name string) *Region {
	regionMu.Lock()
	defer regionMu.Unlock()
	return &Region{Name: name, Start: r.Counters.Snapshot(), rec: r}
}

// End returns the counter deltas since the region began.
func (reg *Region) End() map[string]int64 {
	regionMu.Lock()
	defer regionMu.Unlock()
	return reg.rec.Counters.Diff(reg.Start)
}
