package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the bounded ring-buffer event log behind the
// observability layer: an ordered record of every transition, fault, paging
// and validation event, each stamped with a global sequence number, the
// simulated-cycle clock, the core, and the enclave billed. The log is sized
// at EnableObservation time and overwrites its oldest records when full, so
// long runs keep the most recent window.
//
// Writers contend only on one atomic fetch-add (the sequence allocator) plus
// a per-slot mutex; two writers hit the same slot mutex only when the ring
// wraps within their race window, so the log is lock-free in practice while
// staying race-clean by construction (the tier-2 `-race` target hammers it).

// Record is one logged event.
type Record struct {
	// Seq is the global, gap-free order of the event (1-based).
	Seq uint64
	// Cycles is the simulated-cycle clock just after the event's cost was
	// charged; Cycles-Cost is the event's start time.
	Cycles int64
	// Cost is the cycle cost charged by this event (0 for markers).
	Cost int64
	// Core is the logical processor, NoCore for machine-global events.
	Core int32
	// EID is the enclave the event bills to, NoEID for untrusted execution.
	EID uint64
	// Event is what happened.
	Event Event
	// Detail is an event-specific word (virtual page number for walks,
	// virtual address for paging ops), 0 when unused.
	Detail uint64
	// Span is the innermost span open on the record's core when the event
	// was charged (see span.go), 0 when none — the causal link that places
	// the event inside a call tree.
	Span uint64
}

type logSlot struct {
	mu  sync.Mutex
	rec Record // rec.Seq == 0 means never written
}

// EventLog is a bounded ring buffer of Records, safe for concurrent append.
type EventLog struct {
	mask  uint64
	seq   atomic.Uint64
	slots []logSlot
}

// NewEventLog builds a log holding the most recent `capacity` records
// (rounded up to a power of two, minimum 64).
func NewEventLog(capacity int) *EventLog {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &EventLog{mask: uint64(n - 1), slots: make([]logSlot, n)}
}

// Cap returns the number of records the log retains.
func (l *EventLog) Cap() int { return len(l.slots) }

// Seq returns the total number of records ever appended.
func (l *EventLog) Seq() uint64 { return l.seq.Load() }

// Len returns the number of records currently held.
func (l *EventLog) Len() int {
	if s := l.seq.Load(); s < uint64(len(l.slots)) {
		return int(s)
	}
	return len(l.slots)
}

// Append stamps rec with the next sequence number and stores it, overwriting
// the oldest record when the ring is full. It returns the assigned sequence.
func (l *EventLog) Append(rec Record) uint64 {
	s := l.seq.Add(1)
	rec.Seq = s
	slot := &l.slots[(s-1)&l.mask]
	slot.mu.Lock()
	// A slower writer from a previous lap must not clobber a newer record.
	if slot.rec.Seq < s {
		slot.rec = rec
	}
	slot.mu.Unlock()
	return s
}

// Snapshot copies the live records in sequence order.
func (l *EventLog) Snapshot() []Record {
	out := make([]Record, 0, len(l.slots))
	for i := range l.slots {
		l.slots[i].mu.Lock()
		rec := l.slots[i].rec
		l.slots[i].mu.Unlock()
		if rec.Seq != 0 {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// RecordFilter selects records; see ByEID/ByCore/ByEvent.
type RecordFilter func(Record) bool

// ByEID keeps records billed to the enclave.
func ByEID(eid uint64) RecordFilter { return func(r Record) bool { return r.EID == eid } }

// ByCore keeps records from the core.
func ByCore(core int) RecordFilter { return func(r Record) bool { return r.Core == int32(core) } }

// ByEvent keeps records of the event.
func ByEvent(e Event) RecordFilter { return func(r Record) bool { return r.Event == e } }

// FilterRecords returns the records matching every filter.
func FilterRecords(recs []Record, filters ...RecordFilter) []Record {
	var out []Record
	for _, r := range recs {
		ok := true
		for _, f := range filters {
			if !f(r) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}
