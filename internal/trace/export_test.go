package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceGolden pins the exact JSON layout for a minimal trace: one
// metadata event naming the enclave lane, one complete ("X") span. Keeping
// the byte-exact form stable matters because external tools parse it.
func TestChromeTraceGolden(t *testing.T) {
	recs := []Record{
		{Seq: 1, Cycles: 8000, Cost: 4000, Core: 2, EID: 3, Event: EvNEENTER},
	}
	got, err := ChromeTrace(recs, CyclesPerUS)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":3,"tid":0,"args":{"name":"enclave 3"}},` +
		`{"name":"NEENTER","ph":"X","ts":1,"dur":1,"pid":3,"tid":2,"args":{"seq":1}}` +
		`],"displayTimeUnit":"ms"}`
	if string(got) != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	recs := []Record{
		{Seq: 1, Cycles: 7300, Cost: 7300, Core: 0, EID: 1, Event: EvEENTER},
		{Seq: 2, Cycles: 7300, Cost: 0, Core: 0, EID: 1, Event: EvTLBMiss, Detail: 42},
		{Seq: 3, Cycles: 13500, Cost: 6200, Core: 0, EID: 2, Event: EvNEENTER},
		{Seq: 4, Cycles: 18900, Cost: 5400, Core: 0, EID: 2, Event: EvNEEXIT},
		{Seq: 5, Cycles: 25400, Cost: 6500, Core: 0, EID: 1, Event: EvEEXIT},
		{Seq: 6, Cycles: 25400, Cost: 0, Core: -1, EID: 0, Event: EvIPI},
	}
	b, err := ChromeTrace(recs, CyclesPerUS)
	if err != nil {
		t.Fatal(err)
	}
	// The output must be valid JSON of the trace_event container form.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  uint64         `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 3 metadata events (EIDs 0, 1, 2) + 6 records.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("event count = %d", len(doc.TraceEvents))
	}
	var spans, instants, meta int
	pids := map[uint64]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %q has dur %f", e.Name, e.Dur)
			}
			pids[e.Pid] = true
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 3 || spans != 4 || instants != 2 {
		t.Fatalf("meta/spans/instants = %d/%d/%d", meta, spans, instants)
	}
	// The EENTER/EEXIT and NEENTER/NEEXIT spans must land on distinct
	// enclave lanes.
	if !pids[1] || !pids[2] {
		t.Fatalf("span pids: %v", pids)
	}
	// Span timing: ts is the charge start, ts+dur the cycle clock after.
	e := doc.TraceEvents[meta] // first record (EENTER)
	if e.Name != "EENTER" || e.Ts != 0 || e.Dur != 7300/CyclesPerUS {
		t.Fatalf("EENTER span: ts=%f dur=%f", e.Ts, e.Dur)
	}
	// The TLB miss detail must survive into args.
	miss := doc.TraceEvents[meta+1]
	if miss.Name != "tlb_miss" || miss.Args["detail"].(float64) != 42 {
		t.Fatalf("tlb_miss args: %v", miss.Args)
	}
}

func TestWritePrometheus(t *testing.T) {
	var r Recorder
	r.EnableObservation(0)
	r.ChargeTo(1, 0, EvEENTER, CostEENTER)
	r.ChargeTo(2, 0, EvNEENTER, CostNEENTER)
	r.Charge(EvTLBMiss, 0)
	r.Observe(OpECall, 14000)
	r.Observe(OpECall, 13000)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, &r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"nesclave_cycles_total 13500",
		`nesclave_events_total{event="EENTER"} 1`,
		`nesclave_events_total{event="NEENTER"} 1`,
		`nesclave_events_total{event="tlb_miss"} 1`,
		`nesclave_enclave_events_total{eid="1",event="EENTER"} 1`,
		`nesclave_enclave_events_total{eid="2",event="NEENTER"} 1`,
		`nesclave_op_cycles_count{op="ecall"} 2`,
		`nesclave_op_cycles_sum{op="ecall"} 27000`,
		`nesclave_op_cycles_bucket{op="ecall",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts: both samples land in bucket 14 (le=16383).
	if !strings.Contains(out, `nesclave_op_cycles_bucket{op="ecall",le="16383"} 2`) {
		t.Errorf("cumulative bucket line missing:\n%s", out)
	}
}

// TestWritePrometheusQuantiles is the golden test for the quantile gauge
// block: a skewed distribution with known bucket placement must produce
// exactly these p50/p99/p999 lines (log2-bucket upper bounds).
func TestWritePrometheusQuantiles(t *testing.T) {
	var r Recorder
	r.EnableObservation(0)
	// 98 fast samples (bucket le=127), one mid (le=1023), one tail
	// (le=131071): p50 hits the fast bucket, p99 the mid, p999 the tail.
	for i := 0; i < 98; i++ {
		r.Observe(OpECall, 100)
	}
	r.Observe(OpECall, 1000)
	r.Observe(OpECall, 100_000)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, &r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	golden := []string{
		"# HELP nesclave_op_cycles_quantile Latency quantiles of composite operations (log2-bucket upper bounds).",
		"# TYPE nesclave_op_cycles_quantile gauge",
		`nesclave_op_cycles_quantile{op="ecall",q="0.5"} 127`,
		`nesclave_op_cycles_quantile{op="ecall",q="0.99"} 1023`,
		`nesclave_op_cycles_quantile{op="ecall",q="0.999"} 131071`,
	}
	for _, want := range golden {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing quantile line %q in:\n%s", want, out)
		}
	}
	// Ops with no observations must not emit quantile series.
	if strings.Contains(out, `nesclave_op_cycles_quantile{op="ocall"`) {
		t.Errorf("quantile series for unobserved op leaked:\n%s", out)
	}
}

// TestWriteFolded pins the collapsed-stack export: deterministic ordering,
// "stack count" lines, flamegraph.pl-consumable.
func TestWriteFolded(t *testing.T) {
	var r Recorder
	r.EnableObservation(0)
	r.EnableProfiler(100)
	outer := r.BeginSpan(0, 1, "ecall:q")
	r.ChargeTo(1, 0, EvEENTER, 350) // crosses 3 boundaries under the outer span
	inner := r.BeginSpan(0, 2, "n_ecall:f")
	r.ChargeTo(2, 0, EvNEENTER, 100) // crosses 1 under outer;inner
	inner.End()
	outer.End()

	var buf bytes.Buffer
	if err := WriteFolded(&buf, &r); err != nil {
		t.Fatal(err)
	}
	want := "ecall:q 3\necall:q;n_ecall:f 1\n"
	if buf.String() != want {
		t.Errorf("folded output = %q, want %q", buf.String(), want)
	}
}
