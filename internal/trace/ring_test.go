package trace

import (
	"sync"
	"testing"
)

func TestEventLogCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := NewEventLog(c.in).Cap(); got != c.want {
			t.Errorf("NewEventLog(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEventLogWraparound(t *testing.T) {
	l := NewEventLog(64) // minimum capacity
	const total = 200
	for i := 0; i < total; i++ {
		l.Append(Record{Event: EvECall, Detail: uint64(i)})
	}
	if l.Seq() != total {
		t.Fatalf("seq = %d, want %d", l.Seq(), total)
	}
	if l.Len() != 64 {
		t.Fatalf("len = %d, want 64", l.Len())
	}
	recs := l.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("snapshot has %d records", len(recs))
	}
	// The survivors must be the newest 64, in sequence order with no gaps.
	for i, r := range recs {
		wantSeq := uint64(total - 64 + 1 + i)
		if r.Seq != wantSeq {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, wantSeq)
		}
		if r.Detail != wantSeq-1 { // Detail was the append index
			t.Fatalf("record %d: detail %d, want %d", i, r.Detail, wantSeq-1)
		}
	}
}

func TestEventLogPartiallyFilled(t *testing.T) {
	l := NewEventLog(64)
	for i := 0; i < 10; i++ {
		l.Append(Record{Event: EvOCall})
	}
	if l.Len() != 10 {
		t.Fatalf("len = %d", l.Len())
	}
	recs := l.Snapshot()
	if len(recs) != 10 || recs[0].Seq != 1 || recs[9].Seq != 10 {
		t.Fatalf("snapshot: %d records, first %d last %d",
			len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
}

func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog(256)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(Record{Event: EvTLBMiss, Core: int32(id)})
			}
		}(w)
	}
	wg.Wait()
	if l.Seq() != workers*per {
		t.Fatalf("seq = %d, want %d", l.Seq(), workers*per)
	}
	recs := l.Snapshot()
	if len(recs) != 256 {
		t.Fatalf("snapshot has %d records", len(recs))
	}
	// Sequence numbers must be strictly increasing, all from the newest
	// window (no record from an overwritten lap may survive).
	lo := uint64(workers*per - 256)
	for i, r := range recs {
		if r.Seq <= lo {
			t.Fatalf("record %d: stale seq %d (floor %d)", i, r.Seq, lo)
		}
		if i > 0 && r.Seq <= recs[i-1].Seq {
			t.Fatalf("record %d: seq %d not increasing after %d", i, r.Seq, recs[i-1].Seq)
		}
	}
}

func TestRecordFilters(t *testing.T) {
	recs := []Record{
		{Seq: 1, EID: 1, Core: 0, Event: EvEENTER},
		{Seq: 2, EID: 2, Core: 1, Event: EvNEENTER},
		{Seq: 3, EID: 1, Core: 0, Event: EvEEXIT},
		{Seq: 4, EID: 2, Core: 0, Event: EvNEEXIT},
	}
	if got := FilterRecords(recs, ByEID(1)); len(got) != 2 {
		t.Fatalf("ByEID(1): %d records", len(got))
	}
	if got := FilterRecords(recs, ByCore(0)); len(got) != 3 {
		t.Fatalf("ByCore(0): %d records", len(got))
	}
	if got := FilterRecords(recs, ByEvent(EvNEENTER)); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("ByEvent: %v", got)
	}
	if got := FilterRecords(recs, ByEID(2), ByCore(0)); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("combined filters: %v", got)
	}
	if got := FilterRecords(recs); len(got) != 4 {
		t.Fatalf("no filters: %d records", len(got))
	}
}
