package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file renders the observability layer's data for external tools:
//
//   - ChromeTrace turns an event-log snapshot into Chrome trace_event JSON
//     that loads directly in chrome://tracing or https://ui.perfetto.dev.
//     Each enclave becomes a "process" (pid = EID) and each core a "thread",
//     so the timeline shows per-enclave swimlanes of EENTER/EEXIT/NEENTER/
//     NEEXIT spans, TLB work, faults and paging.
//   - WritePrometheus dumps the recorder as Prometheus text exposition:
//     global counters, per-enclave counters, and the latency histograms in
//     the standard _bucket/_sum/_count form.

// chromeEvent is one trace_event entry. Field order fixes the JSON layout so
// golden tests stay stable; map args marshal with sorted keys.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders records (as returned by EventLog.Snapshot) as Chrome
// trace_event JSON. cyclesPerUS converts the simulated clock to microseconds;
// pass CyclesPerUS for the default 4 GHz reference. Events with a cycle cost
// become complete ("X") spans; zero-cost markers become instant events.
func ChromeTrace(recs []Record, cyclesPerUS float64) ([]byte, error) {
	if cyclesPerUS <= 0 {
		cyclesPerUS = CyclesPerUS
	}
	var events []chromeEvent

	// Name the per-enclave "processes" so the viewer shows readable lanes.
	eids := make(map[uint64]bool)
	for _, r := range recs {
		eids[r.EID] = true
	}
	sorted := make([]uint64, 0, len(eids))
	for e := range eids {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, e := range sorted {
		name := fmt.Sprintf("enclave %d", e)
		if e == NoEID {
			name = "untrusted"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: e,
			Args: map[string]any{"name": name},
		})
	}

	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Event.String(),
			Pid:  r.EID,
			Tid:  int64(r.Core),
			Args: map[string]any{"seq": r.Seq},
		}
		if r.Detail != 0 {
			ev.Args["detail"] = r.Detail
		}
		if r.Span != 0 {
			ev.Args["span"] = r.Span
		}
		if r.Cost > 0 {
			ev.Ph = "X"
			ev.Ts = float64(r.Cycles-r.Cost) / cyclesPerUS
			dur := float64(r.Cost) / cyclesPerUS
			ev.Dur = &dur
		} else {
			ev.Ph = "i"
			ev.Ts = float64(r.Cycles) / cyclesPerUS
			ev.S = "t"
		}
		events = append(events, ev)
	}
	return json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WritePrometheus dumps the recorder's counters, per-enclave counters, and
// latency histograms in Prometheus text exposition format. Output order is
// deterministic.
func WritePrometheus(w io.Writer, r *Recorder) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP nesclave_cycles_total Simulated cycles accumulated by the cost model.\n")
	p("# TYPE nesclave_cycles_total counter\n")
	p("nesclave_cycles_total %d\n", r.Cycles())

	p("# HELP nesclave_events_total Architectural events by type.\n")
	p("# TYPE nesclave_events_total counter\n")
	var cs CounterSet
	r.SnapshotInto(&cs)
	for e := Event(0); e < numEvents; e++ {
		if v := cs.Get(e); v != 0 {
			p("nesclave_events_total{event=%q} %d\n", e.String(), v)
		}
	}

	per := r.PerEnclave()
	if len(per) > 0 {
		p("# HELP nesclave_enclave_events_total Architectural events billed per enclave.\n")
		p("# TYPE nesclave_enclave_events_total counter\n")
		eids := make([]uint64, 0, len(per))
		for eid := range per {
			eids = append(eids, eid)
		}
		sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })
		for _, eid := range eids {
			set := per[eid]
			for e := Event(0); e < numEvents; e++ {
				if v := set.Get(e); v != 0 {
					p("nesclave_enclave_events_total{eid=\"%d\",event=%q} %d\n", eid, e.String(), v)
				}
			}
		}
	}

	p("# HELP nesclave_op_cycles Latency of composite operations in simulated cycles.\n")
	p("# TYPE nesclave_op_cycles histogram\n")
	for op := Op(0); op < numOps; op++ {
		s := r.Hist(op).Snapshot()
		if s.Count == 0 {
			continue
		}
		var cum int64
		for i, b := range s.Buckets {
			if b == 0 {
				continue
			}
			cum += b
			p("nesclave_op_cycles_bucket{op=%q,le=\"%d\"} %d\n", op.String(), BucketBound(i), cum)
		}
		p("nesclave_op_cycles_bucket{op=%q,le=\"+Inf\"} %d\n", op.String(), s.Count)
		p("nesclave_op_cycles_sum{op=%q} %d\n", op.String(), s.Sum)
		p("nesclave_op_cycles_count{op=%q} %d\n", op.String(), s.Count)
	}

	p("# HELP nesclave_op_cycles_quantile Latency quantiles of composite operations (log2-bucket upper bounds).\n")
	p("# TYPE nesclave_op_cycles_quantile gauge\n")
	for op := Op(0); op < numOps; op++ {
		s := r.Hist(op).Snapshot()
		if s.Count == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
			p("nesclave_op_cycles_quantile{op=%q,q=%q} %d\n", op.String(), q.label, s.Quantile(q.q))
		}
	}
	return err
}

// WriteFolded dumps the sampling profile in collapsed-stack ("folded")
// format — one "frame;frame;frame count" line per distinct stack, sorted —
// directly consumable by flamegraph.pl and speedscope.
func WriteFolded(w io.Writer, r *Recorder) error {
	folded := r.FoldedStacks()
	keys := make([]string, 0, len(folded))
	for k := range folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, folded[k]); err != nil {
			return err
		}
	}
	return nil
}

// SpansToChrome renders completed spans (as returned by Recorder.Spans) as
// Chrome trace_event JSON: each span becomes a complete ("X") event carrying
// its span and parent IDs, pid = EID, tid = core — the flame view of the
// call tree. cyclesPerUS as in ChromeTrace.
func SpansToChrome(spans []Span, cyclesPerUS float64) ([]byte, error) {
	if cyclesPerUS <= 0 {
		cyclesPerUS = CyclesPerUS
	}
	var events []chromeEvent

	eids := make(map[uint64]bool)
	for _, s := range spans {
		eids[s.EID] = true
	}
	sorted := make([]uint64, 0, len(eids))
	for e := range eids {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, e := range sorted {
		name := fmt.Sprintf("enclave %d", e)
		if e == NoEID {
			name = "untrusted"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: e,
			Args: map[string]any{"name": name},
		})
	}

	for _, s := range spans {
		dur := float64(s.End-s.Start) / cyclesPerUS
		args := map[string]any{"span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start) / cyclesPerUS,
			Dur:  &dur,
			Pid:  s.EID,
			Tid:  int64(s.Core),
			Args: args,
		})
	}
	return json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// SpanNode is one node of a name-aggregated call tree: all spans sharing the
// same root-to-node name path merge into one node accumulating their count
// and inclusive cycles.
type SpanNode struct {
	Name     string
	Count    int64
	Cycles   int64 // inclusive: children's cycles are part of the parent's
	Children []*SpanNode
}

// child returns (creating if needed) the named child.
func (n *SpanNode) child(name string) *SpanNode {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &SpanNode{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// Walk visits the tree depth-first; depth starts at 0 for the root's
// children (the root itself, an empty aggregation node, is skipped).
func (n *SpanNode) Walk(visit func(depth int, node *SpanNode)) {
	var rec func(depth int, node *SpanNode)
	rec = func(depth int, node *SpanNode) {
		visit(depth, node)
		for _, c := range node.Children {
			rec(depth+1, c)
		}
	}
	for _, c := range n.Children {
		rec(0, c)
	}
}

// AggregateSpans folds completed spans into a call tree keyed by name path.
// A span whose parent fell out of the bounded span ring roots its subtree at
// the top level — the tree degrades gracefully under ring eviction rather
// than dropping orphans. Children sort by descending inclusive cycles.
func AggregateSpans(spans []Span) *SpanNode {
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	// path returns the root-to-span name chain, following Parent links as
	// far as the ring still remembers them.
	var path func(s *Span) []string
	path = func(s *Span) []string {
		if s.Parent != 0 {
			if p, ok := byID[s.Parent]; ok {
				return append(path(p), s.Name)
			}
		}
		return []string{s.Name}
	}
	root := &SpanNode{}
	for i := range spans {
		s := &spans[i]
		node := root
		for _, name := range path(s) {
			node = node.child(name)
		}
		node.Count++
		node.Cycles += s.End - s.Start
	}
	var sortRec func(n *SpanNode)
	sortRec = func(n *SpanNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].Cycles != n.Children[j].Cycles {
				return n.Children[i].Cycles > n.Children[j].Cycles
			}
			return n.Children[i].Name < n.Children[j].Name
		})
		for _, c := range n.Children {
			sortRec(c)
		}
	}
	sortRec(root)
	return root
}
