package trace

import (
	"reflect"
	"sync"
	"testing"
)

// TestSpanParentChild verifies the core causal property: spans opened while
// another is open on the same core link to it, siblings share the parent, and
// the completed spans carry the clock readings bracketing their charges.
func TestSpanParentChild(t *testing.T) {
	var r Recorder
	r.EnableObservation(256)

	outer := r.BeginSpan(0, 1, "ecall:q")
	if outer.ID() == 0 {
		t.Fatal("BeginSpan on an observing recorder returned the zero ref")
	}
	r.ChargeTo(1, 0, EvEENTER, CostEENTER)

	inner := r.BeginSpan(0, 2, "n_ecall:f")
	r.ChargeTo(2, 0, EvNEENTER, CostNEENTER)
	inner.End()

	inner2 := r.BeginSpan(0, 2, "page_walk")
	r.ChargeTo(2, 0, EvPageWalk, CostPageWalk)
	inner2.End()

	outer.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d completed spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	o := byName["ecall:q"]
	if o.Parent != 0 {
		t.Errorf("outer span parent = %d, want 0 (root)", o.Parent)
	}
	for _, name := range []string{"n_ecall:f", "page_walk"} {
		c := byName[name]
		if c.Parent != o.ID {
			t.Errorf("%s parent = %d, want outer %d", name, c.Parent, o.ID)
		}
		if c.Start < o.Start || c.End > o.End {
			t.Errorf("%s [%d,%d] not inside outer [%d,%d]", name, c.Start, c.End, o.Start, o.End)
		}
		if c.Cycles() <= 0 {
			t.Errorf("%s cycles = %d, want > 0", name, c.Cycles())
		}
	}
	if o.EID != 1 || o.Core != 0 {
		t.Errorf("outer identity = (eid %d, core %d), want (1, 0)", o.EID, o.Core)
	}
}

// TestSpanDisabled pins the zero-cost contract: with observation off,
// BeginSpan returns the zero ref, End is a no-op, and nothing accumulates.
func TestSpanDisabled(t *testing.T) {
	var r Recorder
	sp := r.BeginSpan(0, 1, "ecall:q")
	if sp.ID() != 0 {
		t.Errorf("disabled BeginSpan ID = %d, want 0", sp.ID())
	}
	sp.End() // must not panic
	if got := r.Spans(); len(got) != 0 {
		t.Errorf("disabled recorder has %d spans, want 0", len(got))
	}
	r.SetSpanHint(7) // no-op, must not panic
	if r.CurrentSpan(0) != 0 {
		t.Error("disabled CurrentSpan != 0")
	}
}

// TestSpanHint verifies the NoCore parenting path the kernel pager relies on:
// a machine-global span with no open machine-global parent attaches under the
// hinted span, exactly like billHint carries attribution across the
// protection boundary.
func TestSpanHint(t *testing.T) {
	var r Recorder
	r.EnableObservation(256)

	call := r.BeginSpan(2, 1, "ecall:q")
	r.SetSpanHint(call.ID())

	ewb := r.BeginSpan(NoCore, 3, "ewb")
	r.ChargeTo(3, NoCore, EvEWB, CostDRAMAccess)
	ewb.End()

	r.SetSpanHint(0)
	orphan := r.BeginSpan(NoCore, 3, "eld")
	orphan.End()
	call.End()

	byName := map[string]Span{}
	for _, s := range r.Spans() {
		byName[s.Name] = s
	}
	if got := byName["ewb"].Parent; got != call.ID() {
		t.Errorf("hinted NoCore span parent = %d, want %d", got, call.ID())
	}
	if got := byName["eld"].Parent; got != 0 {
		t.Errorf("unhinted NoCore span parent = %d, want 0", got)
	}
}

// TestSpanStampsRecords verifies that event-log records carry the innermost
// open span of their core — the link that lets annotations (chaos injections,
// faults) be placed in the call tree.
func TestSpanStampsRecords(t *testing.T) {
	var r Recorder
	r.EnableObservation(256)

	r.ChargeTo(1, 0, EvEENTER, CostEENTER) // before any span: stamp 0
	sp := r.BeginSpan(0, 1, "ecall:q")
	r.ChargeTo(1, 0, EvTLBFlush, CostTLBFlush) // inside: stamp sp
	sp.End()
	r.ChargeTo(1, 0, EvEEXIT, CostEEXIT) // after: stamp 0

	var before, inside, after Record
	for _, rec := range r.Log().Snapshot() {
		switch rec.Event {
		case EvEENTER:
			before = rec
		case EvTLBFlush:
			inside = rec
		case EvEEXIT:
			after = rec
		}
	}
	if before.Span != 0 {
		t.Errorf("pre-span record stamped with span %d, want 0", before.Span)
	}
	if inside.Span != sp.ID() {
		t.Errorf("in-span record stamped with %d, want %d", inside.Span, sp.ID())
	}
	if after.Span != 0 {
		t.Errorf("post-span record stamped with span %d, want 0", after.Span)
	}
}

// TestSpanEndTolerant pins End's safety properties: double End, End after the
// sink was swapped away, and out-of-order closure must all be safe.
func TestSpanEndTolerant(t *testing.T) {
	var r Recorder
	r.EnableObservation(256)

	sp := r.BeginSpan(0, 1, "ecall:q")
	sp.End()
	sp.End() // double close: no-op
	if n := len(r.Spans()); n != 1 {
		t.Errorf("double End produced %d spans, want 1", n)
	}

	// Out-of-order closure: the outer End removes only its own frame.
	a := r.BeginSpan(1, 1, "a")
	b := r.BeginSpan(1, 1, "b")
	a.End()
	if got := r.CurrentSpan(1); got != b.ID() {
		t.Errorf("after out-of-order End, current span = %d, want %d", got, b.ID())
	}
	b.End()

	// End across a sink swap must not panic or corrupt the new sink.
	c := r.BeginSpan(0, 1, "c")
	r.DisableObservation()
	r.EnableObservation(256)
	c.End()
	if n := len(r.Spans()); n != 0 {
		t.Errorf("stale End leaked %d spans into the fresh sink", n)
	}
}

// TestSpanRingEviction verifies the completed-span ring is bounded and keeps
// the newest spans when it wraps.
func TestSpanRingEviction(t *testing.T) {
	var r Recorder
	r.EnableObservation(64) // span ring floor is 1024
	const total = 3000
	for i := 0; i < total; i++ {
		sp := r.BeginSpan(0, 1, "op")
		r.ChargeTo(1, 0, EvLLCHit, 1)
		sp.End()
	}
	spans := r.Spans()
	if len(spans) == 0 || len(spans) > 1024 {
		t.Fatalf("ring snapshot has %d spans, want (0, 1024]", len(spans))
	}
	// The newest span must have survived; IDs are monotonic.
	maxID := spans[len(spans)-1].ID
	for _, s := range spans {
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	if maxID != uint64(total) {
		t.Errorf("newest surviving span ID = %d, want %d", maxID, total)
	}
}

// runProfiledWorkload is a fixed span/charge sequence used to pin profiler
// determinism: same charges on the same simulated clock → same profile.
func runProfiledWorkload(r *Recorder) {
	for i := 0; i < 50; i++ {
		outer := r.BeginSpan(0, 1, "ecall:q")
		r.ChargeTo(1, 0, EvEENTER, CostEENTER)
		inner := r.BeginSpan(0, 2, "n_ecall:f")
		r.ChargeTo(2, 0, EvNEENTER, CostNEENTER)
		r.ChargeTo(2, 0, EvNEEXIT, CostNEEXIT)
		inner.End()
		r.ChargeTo(1, 0, EvEEXIT, CostEEXIT)
		outer.End()
	}
}

// TestProfilerDeterministic runs the identical workload twice and demands
// identical folded-stack profiles: sampling rides the simulated clock, not
// wall time, so profiles are exactly reproducible.
func TestProfilerDeterministic(t *testing.T) {
	run := func() (map[string]int64, int64) {
		var r Recorder
		r.EnableObservation(4096)
		r.EnableProfiler(500)
		runProfiledWorkload(&r)
		return r.FoldedStacks(), r.Cycles()
	}
	p1, c1 := run()
	p2, c2 := run()
	if c1 != c2 {
		t.Fatalf("clock diverged: %d vs %d", c1, c2)
	}
	if len(p1) == 0 {
		t.Fatal("profiler collected no samples")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("profiles differ:\n  run1: %v\n  run2: %v", p1, p2)
	}
	// Total samples must equal the boundaries the clock crossed: one sample
	// per interval per core with an open stack — here exactly one core is
	// ever active, so total == floor(cycles/interval) within one interval.
	var total int64
	for k, v := range p1 {
		if k != "ecall:q" && k != "ecall:q;n_ecall:f" {
			t.Errorf("unexpected folded stack %q", k)
		}
		total += v
	}
	want := c1 / 500
	if total < want-1 || total > want {
		t.Errorf("total samples = %d, want ~%d (cycles %d / interval 500)", total, want, c1)
	}
}

// TestProfilerInterval pins the enable/disable lifecycle.
func TestProfilerInterval(t *testing.T) {
	var r Recorder
	r.EnableProfiler(100) // observation off: no-op
	if got := r.ProfileInterval(); got != 0 {
		t.Errorf("profiler enabled without observation: interval %d", got)
	}
	r.EnableObservation(64)
	r.EnableProfiler(0) // clamps to 1
	if got := r.ProfileInterval(); got != 1 {
		t.Errorf("interval = %d, want clamp to 1", got)
	}
	r.DisableProfiler()
	if got := r.ProfileInterval(); got != 0 {
		t.Errorf("interval after disable = %d, want 0", got)
	}
	if got := r.FoldedStacks(); len(got) != 0 {
		t.Errorf("profile after disable has %d stacks", len(got))
	}
}

// TestSpanRaceHammer mirrors TestRecorderRaceHammer for the span layer: many
// goroutines open/close nested spans on distinct and shared cores, charge
// inside them, and flip the span hint, while readers snapshot spans, folded
// stacks, and the log, and the profiler samples throughout — all against a
// small, constantly wrapping span ring. Run under -race in tier2.
func TestSpanRaceHammer(t *testing.T) {
	var r Recorder
	r.EnableObservation(64)
	r.EnableProfiler(50)

	var wg sync.WaitGroup
	const writers, per = 8, 1500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			core := id % 4 // shared cores: concurrent stack mutation
			eid := uint64(id%3 + 1)
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					sp := r.BeginSpan(core, eid, "ecall:q")
					r.ChargeTo(eid, core, EvEENTER, CostEENTER)
					in := r.BeginSpan(core, eid, "page_walk")
					r.ChargeToDetail(eid, core, EvPageWalk, CostPageWalk, uint64(i))
					in.End()
					sp.End()
				case 1:
					r.SetSpanHint(uint64(i))
					sp := r.BeginSpan(NoCore, eid, "ewb")
					r.ChargeTo(eid, NoCore, EvEWB, CostDRAMAccess)
					sp.End()
				case 2:
					_ = r.CurrentSpan(core)
					r.Observe(OpECall, int64(i))
				}
			}
		}(w)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = r.Spans()
			_ = r.FoldedStacks()
			if l := r.Log(); l != nil {
				_ = l.Snapshot()
			}
		}
	}()

	wg.Wait()
	close(done)
	readers.Wait()

	spans := r.Spans()
	if len(spans) == 0 {
		t.Fatal("race hammer produced no completed spans")
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %d (%s) ends (%d) before it starts (%d)", s.ID, s.Name, s.End, s.Start)
		}
	}
}
