package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements causal span tracing on top of the flat observability
// layer: every composite operation (ecall, ocall, n_ecall, n_ocall, page
// walk, EWB/ELD, AEX, supervisor restart, channel retransmit) opens a span
// carrying the ID of its parent, so the full nested call tree — host → outer
// enclave → inner enclave → back — is reconstructable after the run. Spans
// live on per-core stacks inside the observation sink; every event-log
// Record is stamped with the innermost open span on its core, which is how
// zero-cost annotations (chaos injections, faults) attach to the call tree
// they landed in.
//
// A simulated-cycle sampling profiler rides on the same stacks: each charge
// that crosses a sampling boundary snapshots every core's open-span stack
// into a pprof-style folded-stack profile (see WriteFolded / FoldedStacks).
//
// Like the rest of the observation layer, all of it vanishes when
// observation is off: BeginSpan on a disabled recorder returns the zero
// SpanRef, whose End is a no-op.

// Span is one completed span. Start and End are simulated-cycle clock
// readings; End-Start is the span's inclusive duration (children included),
// matching what the composite-operation histograms observe for the same
// operation.
type Span struct {
	// ID is the span's unique, monotonically assigned identity (1-based;
	// 0 means "no span").
	ID uint64
	// Parent is the ID of the span open below this one when it began, or 0
	// for a root span.
	Parent uint64
	// Name identifies the operation ("ecall:query", "page_walk", "ewb", ...).
	Name string
	// EID is the enclave the span's operation executes for, NoEID for host.
	EID uint64
	// Core is the logical processor, NoCore for machine-global spans.
	Core int32
	// Start and End are the simulated clock at open and close.
	Start, End int64
}

// Cycles returns the span's inclusive duration.
func (s Span) Cycles() int64 { return s.End - s.Start }

// spanSlots bounds the per-core span stacks: slot 0 carries NoCore (and any
// core beyond the bound, which no configuration reaches), slot c+1 carries
// core c.
const spanSlots = 65

func spanSlot(core int) int {
	if core < 0 || core >= spanSlots-1 {
		return 0
	}
	return core + 1
}

// spanFrame is one open span on a stack.
type spanFrame struct {
	id     uint64
	parent uint64
	name   string
	eid    uint64
	core   int32
	start  int64
}

type spanStack struct {
	mu     sync.Mutex
	frames []spanFrame
}

// top returns the innermost open span ID, 0 when empty.
func (st *spanStack) top() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n := len(st.frames); n > 0 {
		return st.frames[n-1].id
	}
	return 0
}

// spanState is the span half of the observation sink: the ID allocator, the
// per-core stacks of open spans, the ring of completed spans, and the parent
// hint for spans opened below the protection context (paging, MEE-level
// work), which runs on NoCore and inherits the faulting call's span the same
// way billHint carries its enclave.
type spanState struct {
	seq    atomic.Uint64
	stacks [spanSlots]spanStack
	done   *spanRing
	hint   atomic.Uint64
	prof   atomic.Pointer[profState]
}

// spanTop returns the innermost open span for a core, falling back to the
// hint for machine-global (NoCore) charges with no open machine-global span.
func (ss *spanState) spanTop(core int) uint64 {
	slot := spanSlot(core)
	if id := ss.stacks[slot].top(); id != 0 {
		return id
	}
	if slot == 0 {
		return ss.hint.Load()
	}
	return 0
}

// SpanRef is a handle to an open span. The zero SpanRef (returned when
// observation is off) is valid and End is a no-op on it.
type SpanRef struct {
	rec  *Recorder
	st   *spanState
	id   uint64
	slot int32
}

// ID returns the open span's identity, 0 for the zero SpanRef.
func (ref SpanRef) ID() uint64 { return ref.id }

// BeginSpan opens a span on the core's stack. Its parent is the innermost
// span already open on that stack — or, for machine-global (NoCore) spans,
// the span named by the last SetSpanHint. Returns the zero SpanRef when
// observation is disabled.
func (r *Recorder) BeginSpan(core int, eid uint64, name string) SpanRef {
	s := r.sink.Load()
	if s == nil {
		return SpanRef{}
	}
	ss := &s.spans
	id := ss.seq.Add(1)
	slot := spanSlot(core)
	st := &ss.stacks[slot]
	st.mu.Lock()
	var parent uint64
	if n := len(st.frames); n > 0 {
		parent = st.frames[n-1].id
	} else if slot == 0 {
		parent = ss.hint.Load()
	}
	st.frames = append(st.frames, spanFrame{
		id: id, parent: parent, name: name,
		eid: eid, core: int32(core), start: r.Cycles(),
	})
	st.mu.Unlock()
	return SpanRef{rec: r, st: ss, id: id, slot: int32(slot)}
}

// End closes the span: it is removed from its stack and the completed Span
// is appended to the span ring. End tolerates a missing frame (the sink was
// swapped, or the frame was already closed) and out-of-order closure.
func (ref SpanRef) End() {
	if ref.st == nil {
		return
	}
	st := &ref.st.stacks[ref.slot]
	st.mu.Lock()
	var frame spanFrame
	found := false
	for i := len(st.frames) - 1; i >= 0; i-- {
		if st.frames[i].id == ref.id {
			frame = st.frames[i]
			st.frames = append(st.frames[:i], st.frames[i+1:]...)
			found = true
			break
		}
	}
	st.mu.Unlock()
	if !found {
		return
	}
	ref.st.done.append(Span{
		ID: frame.id, Parent: frame.parent, Name: frame.name,
		EID: frame.eid, Core: frame.core,
		Start: frame.start, End: ref.rec.Cycles(),
	})
}

// SetSpanHint names the span that machine-global (NoCore) spans and charges
// attach under — the span-tree analogue of SetBillHint. The fault path
// stores the faulting call's span here before invoking the kernel pager so
// EWB/ELD work stays inside the call tree that triggered it.
func (r *Recorder) SetSpanHint(id uint64) {
	if s := r.sink.Load(); s != nil {
		s.spans.hint.Store(id)
	}
}

// CurrentSpan returns the innermost open span on the core, 0 when none (or
// observation is off).
func (r *Recorder) CurrentSpan(core int) uint64 {
	if s := r.sink.Load(); s != nil {
		return s.spans.spanTop(core)
	}
	return 0
}

// Spans snapshots the completed-span ring in completion order. Empty when
// observation is disabled.
func (r *Recorder) Spans() []Span {
	if s := r.sink.Load(); s != nil {
		return s.spans.done.snapshot()
	}
	return nil
}

// spanRing is a bounded ring of completed spans, the span-tree counterpart
// of EventLog: one atomic sequence allocator plus a per-slot mutex, oldest
// spans overwritten when full.
type spanRing struct {
	mask  uint64
	seq   atomic.Uint64
	slots []spanRingSlot
}

type spanRingSlot struct {
	mu   sync.Mutex
	seq  uint64 // 0 means never written
	span Span
}

func newSpanRing(capacity int) *spanRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &spanRing{mask: uint64(n - 1), slots: make([]spanRingSlot, n)}
}

func (l *spanRing) append(sp Span) {
	s := l.seq.Add(1)
	slot := &l.slots[(s-1)&l.mask]
	slot.mu.Lock()
	// A slower writer from a previous lap must not clobber a newer span.
	if slot.seq < s {
		slot.seq = s
		slot.span = sp
	}
	slot.mu.Unlock()
}

func (l *spanRing) snapshot() []Span {
	type entry struct {
		seq  uint64
		span Span
	}
	tmp := make([]entry, 0, len(l.slots))
	for i := range l.slots {
		l.slots[i].mu.Lock()
		if l.slots[i].seq != 0 {
			tmp = append(tmp, entry{l.slots[i].seq, l.slots[i].span})
		}
		l.slots[i].mu.Unlock()
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].seq < tmp[j].seq })
	out := make([]Span, len(tmp))
	for i, e := range tmp {
		out[i] = e.span
	}
	return out
}

// profState is the simulated-cycle sampling profiler. Every observed charge
// checks whether the clock crossed the next sampling boundary; the single
// charge that wins the CAS snapshots every core's open-span stack and folds
// it into the profile, weighted by the number of boundaries crossed. The
// sampling clock is the simulated clock, so profiles are as deterministic as
// the workload that produced them.
type profState struct {
	interval int64
	next     atomic.Int64
	mu       sync.Mutex
	samples  map[string]int64
}

// EnableProfiler turns on simulated-cycle stack sampling with the given
// interval (minimum 1 cycle). Observation must already be enabled; the
// profiler is dropped with the rest of the sink on DisableObservation.
func (r *Recorder) EnableProfiler(intervalCycles int64) {
	s := r.sink.Load()
	if s == nil {
		return
	}
	if intervalCycles < 1 {
		intervalCycles = 1
	}
	p := &profState{interval: intervalCycles, samples: make(map[string]int64)}
	p.next.Store(r.Cycles() + intervalCycles)
	s.spans.prof.Store(p)
}

// DisableProfiler stops sampling; the accumulated profile is dropped.
func (r *Recorder) DisableProfiler() {
	if s := r.sink.Load(); s != nil {
		s.spans.prof.Store(nil)
	}
}

// maybeSample folds the current span stacks into the profile if the clock
// crossed a sampling boundary. Called on every observed charge.
func (ss *spanState) maybeSample(clock int64) {
	p := ss.prof.Load()
	if p == nil {
		return
	}
	next := p.next.Load()
	if clock < next {
		return
	}
	// Claim every boundary in (next, clock] in one CAS; the loser's charge
	// simply isn't the sampling one.
	crossed := (clock-next)/p.interval + 1
	if !p.next.CompareAndSwap(next, next+crossed*p.interval) {
		return
	}
	for slot := range ss.stacks {
		st := &ss.stacks[slot]
		st.mu.Lock()
		if len(st.frames) == 0 {
			st.mu.Unlock()
			continue
		}
		var b []byte
		for i, f := range st.frames {
			if i > 0 {
				b = append(b, ';')
			}
			b = append(b, f.name...)
		}
		key := string(b)
		st.mu.Unlock()
		p.mu.Lock()
		p.samples[key] += crossed
		p.mu.Unlock()
	}
}

// FoldedStacks snapshots the sampling profile: folded stack ("root;child;
// leaf") → sample count. Each sample represents one profiler interval of
// simulated time on one core. Empty when the profiler is off.
func (r *Recorder) FoldedStacks() map[string]int64 {
	out := make(map[string]int64)
	s := r.sink.Load()
	if s == nil {
		return out
	}
	p := s.spans.prof.Load()
	if p == nil {
		return out
	}
	p.mu.Lock()
	for k, v := range p.samples {
		out[k] = v
	}
	p.mu.Unlock()
	return out
}

// ProfileInterval returns the profiler's sampling interval in simulated
// cycles, 0 when the profiler is off.
func (r *Recorder) ProfileInterval() int64 {
	if s := r.sink.Load(); s != nil {
		if p := s.spans.prof.Load(); p != nil {
			return p.interval
		}
	}
	return 0
}
