package ssl

import (
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/isa"
)

// Client-side record API: the client is the attacker's vantage point in the
// Heartbleed reproduction, so it runs natively (no enclave memory needed).

// Send seals application data.
func (c *Client) Send(data []byte) ([]byte, error) {
	if c.suite == nil {
		return nil, fmt.Errorf("ssl: send before handshake")
	}
	return c.seal(recAppData, data)
}

// Recv opens a record from the server and returns its type and plaintext.
func (c *Client) Recv(rec []byte) (uint8, []byte, error) {
	if c.suite == nil {
		return 0, nil, fmt.Errorf("ssl: recv before handshake")
	}
	return c.open(rec)
}

// Heartbeat builds a heartbeat request claiming claimedLen payload bytes
// while actually carrying payload. A benign client passes
// claimedLen == len(payload); the Heartbleed attacker claims more.
func (c *Client) Heartbeat(payload []byte, claimedLen int) ([]byte, error) {
	if c.suite == nil {
		return nil, fmt.Errorf("ssl: heartbeat before handshake")
	}
	body := make([]byte, 3+len(payload)+16)
	body[0] = hbRequest
	binary.BigEndian.PutUint16(body[1:3], uint16(claimedLen))
	copy(body[3:], payload)
	// (trailing bytes are the RFC 6520 random padding)
	copy(body[3+len(payload):], randomBytes(16))
	return c.seal(RecHeartbeat, body)
}

// OpenHeartbeatResponse extracts the echoed payload from a heartbeat
// response record.
func (c *Client) OpenHeartbeatResponse(rec []byte) ([]byte, error) {
	typ, pt, err := c.Recv(rec)
	if err != nil {
		return nil, err
	}
	if typ != RecHeartbeat || len(pt) < 3 || pt[0] != hbResponse {
		return nil, fmt.Errorf("ssl: not a heartbeat response")
	}
	n := int(binary.BigEndian.Uint16(pt[1:3]))
	if n > len(pt)-3 {
		n = len(pt) - 3
	}
	return pt[3 : 3+n], nil
}

// Server-side record processing. Every decrypted record is staged into the
// library's enclave heap before interpretation — the detail that makes the
// heartbeat over-read physically meaningful.

// ProcessRecord decrypts one incoming record and dispatches it:
//   - heartbeat requests are answered internally (the vulnerable path);
//   - application data is passed to handler, whose return value is sealed
//     as the response.
//
// The returned slice is the wire response (nil when the record produced
// none).
func (s *Server) ProcessRecord(rec []byte, handler func(req []byte) []byte) ([]byte, error) {
	if s.suite == nil || !s.done {
		return nil, fmt.Errorf("ssl: record before handshake")
	}
	typ, pt, err := s.open(rec)
	if err != nil {
		return nil, err
	}
	// Stage the plaintext into the library's enclave heap (empty records
	// have nothing to stage).
	var buf isa.VAddr
	if len(pt) > 0 {
		buf, err = s.mem.Malloc(len(pt))
		if err != nil {
			return nil, err
		}
		defer func() { _ = s.mem.Free(buf) }()
		if err := s.mem.Write(buf, pt); err != nil {
			return nil, err
		}
	}
	switch typ {
	case RecHeartbeat:
		body, err := s.respondHeartbeat(buf, len(pt))
		if err != nil || body == nil {
			return nil, err
		}
		return s.seal(RecHeartbeat, body)
	case recAppData:
		resp := handler(pt)
		if resp == nil {
			return nil, nil
		}
		return s.seal(recAppData, resp)
	default:
		return nil, fmt.Errorf("ssl: unexpected record type %d", typ)
	}
}

// HeapAddrOfNextAlloc is a test hook: it allocates and immediately frees n
// bytes, returning the address a subsequent allocation of n bytes will get.
func (s *Server) HeapAddrOfNextAlloc(n int) (isa.VAddr, error) {
	a, err := s.mem.Malloc(n)
	if err != nil {
		return 0, err
	}
	return a, s.mem.Free(a)
}
