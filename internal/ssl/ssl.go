// Package ssl is a miniature TLS-like library standing in for OpenSSL in the
// confinement case study (paper §VI-A).
//
// It provides what the case study needs from "a collection of cryptographic
// functions and secure communication protocols":
//
//   - a real key-exchange handshake (X25519 + HKDF-style key schedule) with
//     transcript authentication, so version-rollback and cipher-substitution
//     tampering is detected (the "rich security features of the standard
//     SSL" the paper's echo server keeps using);
//   - an authenticated record layer (AES-GCM, per-direction keys and
//     sequence numbers);
//   - the RFC 6520 heartbeat extension — including, behind Config.Vulnerable,
//     the exact CVE-2014-0160 (Heartbleed) defect: the response copies
//     `claimed payload length` bytes starting at the request payload, without
//     checking the claim against the record's actual length.
//
// Fidelity matters for the last point, so the library's record buffers live
// in *simulated enclave memory*: every incoming record is copied onto the
// enclave heap (package talloc via the Mem interface), and the heartbeat
// responder reads the echo bytes back out of that memory. An over-read
// therefore returns whatever sits above the buffer in the library's enclave
// — application secrets when the library shares the application's enclave,
// abort-page 0xFF bytes when the application lives in an inner enclave the
// library cannot see.
package ssl

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/isa"
)

// Mem is the enclave-memory interface the library allocates its buffers
// through. *sdk.Env satisfies it.
type Mem interface {
	Read(v isa.VAddr, n int) ([]byte, error)
	Write(v isa.VAddr, b []byte) error
	Malloc(n int) (isa.VAddr, error)
	Free(v isa.VAddr) error
}

// Version identifiers, newest first.
const (
	VersionTLS13Like uint16 = 0x0304
	VersionTLS12Like uint16 = 0x0303
	VersionLegacy    uint16 = 0x0301 // deliberately weak, for rollback tests
)

// Config selects protocol behaviour.
type Config struct {
	// Vulnerable enables the CVE-2014-0160 heartbeat path.
	Vulnerable bool
	// Version is the protocol version offered (client) / required minimum
	// (server). Zero means VersionTLS13Like.
	Version uint16
	// MinVersion, when non-zero, makes the endpoint reject lower versions
	// (rollback protection policy).
	MinVersion uint16
}

func (c Config) version() uint16 {
	if c.Version == 0 {
		return VersionTLS13Like
	}
	return c.Version
}

// Record types.
const (
	recHandshake     uint8 = 22
	recAppData       uint8 = 23
	RecHeartbeat     uint8 = 24
	hbRequest        uint8 = 1
	hbResponse       uint8 = 2
	maxPlaintextSize       = 1 << 16
)

// suite holds the per-connection key material after a handshake.
type suite struct {
	version  uint16
	sendAEAD cipher.AEAD
	recvAEAD cipher.AEAD
	sendSeq  uint64
	recvSeq  uint64
}

func hkdfLike(secret, salt []byte, label string) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(secret)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

func aeadFrom(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// deriveSuite computes the directional keys from the ECDH shared secret and
// the handshake transcript. isClient flips the send/recv roles.
func deriveSuite(shared, transcript []byte, version uint16, isClient bool) (*suite, error) {
	var vb [2]byte
	binary.BigEndian.PutUint16(vb[:], version)
	master := hkdfLike(shared, transcript, "master"+string(vb[:]))
	c2s := hkdfLike(master, nil, "client-to-server")
	s2c := hkdfLike(master, nil, "server-to-client")
	a1, err := aeadFrom(c2s)
	if err != nil {
		return nil, err
	}
	a2, err := aeadFrom(s2c)
	if err != nil {
		return nil, err
	}
	s := &suite{version: version}
	if isClient {
		s.sendAEAD, s.recvAEAD = a1, a2
	} else {
		s.sendAEAD, s.recvAEAD = a2, a1
	}
	return s, nil
}

func seqNonce(seq uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// seal produces a record: type byte, 2-byte big-endian ciphertext length,
// ciphertext.
func (s *suite) seal(typ uint8, plaintext []byte) ([]byte, error) {
	if len(plaintext) >= maxPlaintextSize {
		return nil, fmt.Errorf("ssl: plaintext of %d bytes exceeds record limit", len(plaintext))
	}
	aad := []byte{typ, byte(s.version >> 8), byte(s.version)}
	ct := s.sendAEAD.Seal(nil, seqNonce(s.sendSeq), plaintext, aad)
	s.sendSeq++
	out := make([]byte, 3+len(ct))
	out[0] = typ
	binary.BigEndian.PutUint16(out[1:3], uint16(len(ct)))
	copy(out[3:], ct)
	return out, nil
}

// open parses and decrypts a record.
func (s *suite) open(rec []byte) (typ uint8, plaintext []byte, err error) {
	if len(rec) < 3 {
		return 0, nil, fmt.Errorf("ssl: short record")
	}
	typ = rec[0]
	n := int(binary.BigEndian.Uint16(rec[1:3]))
	if len(rec) != 3+n {
		return 0, nil, fmt.Errorf("ssl: record length mismatch: header %d, body %d", n, len(rec)-3)
	}
	aad := []byte{typ, byte(s.version >> 8), byte(s.version)}
	pt, err := s.recvAEAD.Open(nil, seqNonce(s.recvSeq), rec[3:], aad)
	if err != nil {
		return 0, nil, fmt.Errorf("ssl: record authentication failed: %w", err)
	}
	s.recvSeq++
	return typ, pt, nil
}

func newKeyPair() (*ecdh.PrivateKey, error) {
	return ecdh.X25519().GenerateKey(rand.Reader)
}

func randomBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("ssl: entropy: %v", err))
	}
	return b
}
