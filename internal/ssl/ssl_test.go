package ssl

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/talloc"
)

// flatMem is a plain in-process Mem: a flat slab with a talloc heap on top.
// It mimics the monolithic-enclave situation where everything the library
// over-reads is readable.
type flatMem struct {
	base isa.VAddr
	slab []byte
	heap *talloc.Heap
}

func newFlatMem(size int) *flatMem {
	base := isa.VAddr(0x10000)
	return &flatMem{base: base, slab: make([]byte, size), heap: talloc.New(base, uint64(size))}
}

func (m *flatMem) Read(v isa.VAddr, n int) ([]byte, error) {
	out := make([]byte, n)
	copy(out, m.slab[v-m.base:])
	return out, nil
}

func (m *flatMem) Write(v isa.VAddr, b []byte) error {
	copy(m.slab[v-m.base:], b)
	return nil
}

func (m *flatMem) Malloc(n int) (isa.VAddr, error) { return m.heap.Alloc(n) }
func (m *flatMem) Free(v isa.VAddr) error          { return m.heap.Free(v) }

// handshake runs the three-message exchange between c and s.
func handshake(t *testing.T, c *Client, s *Server) error {
	t.Helper()
	sh, err := s.HandleClientHello(c.Hello())
	if err != nil {
		return err
	}
	cf, err := c.HandleServerHello(sh)
	if err != nil {
		return err
	}
	return s.HandleClientFinished(cf)
}

func newPair(t *testing.T, ccfg, scfg Config) (*Client, *Server, *flatMem) {
	t.Helper()
	mem := newFlatMem(1 << 16)
	c, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(scfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, mem
}

func TestHandshakeAndEcho(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if err := handshake(t, c, s); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if !s.Handshaken() {
		t.Fatal("server not handshaken")
	}
	rec, err := c.Send([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.ProcessRecord(rec, func(req []byte) []byte {
		return append([]byte("echo:"), req...)
	})
	if err != nil {
		t.Fatal(err)
	}
	typ, pt, err := c.Recv(resp)
	if err != nil || typ != recAppData || string(pt) != "echo:ping" {
		t.Fatalf("echo: %d %q %v", typ, pt, err)
	}
}

func TestRecordTamperDetected(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.Send([]byte("data"))
	rec[len(rec)-1] ^= 1
	if _, err := s.ProcessRecord(rec, func(b []byte) []byte { return b }); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestReplayDetected(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	rec, _ := c.Send([]byte("one"))
	if _, err := s.ProcessRecord(rec, func(b []byte) []byte { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessRecord(rec, func(b []byte) []byte { return nil }); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestVersionRollbackRejected(t *testing.T) {
	// A MITM rewrites the ClientHello version down to the legacy protocol.
	c, s, _ := newPair(t, Config{Version: VersionTLS13Like}, Config{MinVersion: VersionTLS12Like})
	hello := c.Hello()
	binary.BigEndian.PutUint16(hello[0:2], VersionLegacy)
	_, err := s.HandleClientHello(hello)
	if err == nil || !strings.Contains(err.Error(), "rollback") {
		t.Fatalf("rollback not rejected: %v", err)
	}

	// Without a server minimum, the downgrade is caught by the transcript
	// MACs instead: the client's transcript disagrees with the server's.
	c2, s2, _ := newPair(t, Config{Version: VersionTLS13Like}, Config{})
	hello2 := c2.Hello()
	tampered := append([]byte(nil), hello2...)
	binary.BigEndian.PutUint16(tampered[0:2], VersionLegacy)
	sh, err := s2.HandleClientHello(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.HandleServerHello(sh); err == nil {
		t.Fatal("transcript tampering not detected by client")
	}
}

func TestBenignHeartbeat(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{Vulnerable: true})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	payload := []byte("are-you-alive")
	req, err := c.Heartbeat(payload, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.ProcessRecord(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	echo, err := c.OpenHeartbeatResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, payload) {
		t.Fatalf("echoed %q", echo)
	}
}

func TestHeartbleedLeaksAdjacentHeap(t *testing.T) {
	c, s, mem := newPair(t, Config{}, Config{Vulnerable: true})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	// Arrange the classic Heartbleed heap: a low extent is freed (it will
	// be reused to stage the incoming record, first-fit) and a secret lives
	// in the allocation right above it — within over-read range.
	hole, err := mem.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	secretBuf, err := mem.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("SECRET-PRIVATE-KEY-MATERIAL-0xDEADBEEF")
	if err := mem.Write(secretBuf, secret); err != nil {
		t.Fatal(err)
	}
	if err := mem.Free(hole); err != nil {
		t.Fatal(err)
	}

	req, err := c.Heartbeat([]byte("x"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.ProcessRecord(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	leak, err := c.OpenHeartbeatResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(leak, secret) {
		t.Fatal("vulnerable heartbeat did not reproduce the over-read leak")
	}
}

func TestFixedHeartbeatDiscardsOversizedClaim(t *testing.T) {
	c, s, mem := newPair(t, Config{}, Config{Vulnerable: false})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	secretBuf, _ := mem.Malloc(64)
	if err := mem.Write(secretBuf, []byte("SECRET")); err != nil {
		t.Fatal(err)
	}
	req, _ := c.Heartbeat([]byte("x"), 4096)
	resp, err := s.ProcessRecord(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Fatal("patched server answered an oversized heartbeat claim")
	}
	// And benign heartbeats still work.
	req, _ = c.Heartbeat([]byte("ok"), 2)
	resp, err = s.ProcessRecord(req, nil)
	if err != nil || resp == nil {
		t.Fatalf("benign heartbeat on patched server: %v", err)
	}
}

func TestRecordBeforeHandshakeRejected(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if _, err := c.Send([]byte("x")); err == nil {
		t.Fatal("client send before handshake accepted")
	}
	if _, err := s.ProcessRecord([]byte{recAppData, 0, 0}, nil); err == nil {
		t.Fatal("server record before handshake accepted")
	}
	if _, err := c.Heartbeat([]byte("x"), 1); err == nil {
		t.Fatal("heartbeat before handshake accepted")
	}
}

func TestMalformedMessages(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if _, err := s.HandleClientHello([]byte("short")); err == nil {
		t.Fatal("short ClientHello accepted")
	}
	c.Hello()
	if _, err := c.HandleServerHello([]byte("short")); err == nil {
		t.Fatal("short ServerHello accepted")
	}
	if err := s.HandleClientFinished([]byte("short")); err == nil {
		t.Fatal("short finished accepted")
	}
	// Wrong client finished MAC.
	c2, s2, _ := newPair(t, Config{}, Config{})
	sh, err := s2.HandleClientHello(c2.Hello())
	if err != nil {
		t.Fatal(err)
	}
	cf, err := c2.HandleServerHello(sh)
	if err != nil {
		t.Fatal(err)
	}
	cf[0] ^= 1
	if err := s2.HandleClientFinished(cf); err == nil {
		t.Fatal("bad client finished accepted")
	}
}
