package ssl

import (
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/isa"
)

// respondHeartbeat implements RFC 6520 processing of a request staged at buf
// (n plaintext bytes) in the library's enclave heap.
//
// The vulnerable variant is a faithful transliteration of the OpenSSL
// 1.0.1–1.0.1f defect (CVE-2014-0160): it trusts the attacker-controlled
// 16-bit payload-length field and copies that many bytes starting at the
// payload — reading past the end of the staged request into whatever the
// enclave heap holds above it. The fixed variant applies the bounds check
// from OpenSSL 1.0.1g: "silently discard if payload length + overhead
// exceeds the record length".
//
// Reads happen through the Mem interface, i.e. through the simulated
// machine's access-validated path. That is the crux of the case study: the
// same buggy code leaks real application secrets when the application shares
// its enclave, and only 0xFF abort-page filler when the application data
// lives in an inner enclave this library cannot read.
func (s *Server) respondHeartbeat(buf isa.VAddr, n int) ([]byte, error) {
	if n < 3 {
		return nil, nil // malformed: discard silently per RFC
	}
	hdr, err := s.mem.Read(buf, 3)
	if err != nil {
		return nil, err
	}
	if hdr[0] != hbRequest {
		return nil, nil
	}
	claimed := int(binary.BigEndian.Uint16(hdr[1:3]))

	if !s.cfg.Vulnerable {
		// OpenSSL 1.0.1g: 1 type byte + 2 length bytes + payload + 16 pad.
		if 3+claimed+16 > n {
			return nil, nil // silently discard
		}
	}

	// memcpy(bp, pl, payload): read `claimed` bytes starting at the payload,
	// however many of them actually belong to this request.
	echo, err := s.mem.Read(buf+3, claimed)
	if err != nil {
		return nil, fmt.Errorf("ssl: heartbeat read: %w", err)
	}
	body := make([]byte, 3+claimed+16)
	body[0] = hbResponse
	binary.BigEndian.PutUint16(body[1:3], uint16(claimed))
	copy(body[3:], echo)
	copy(body[3+claimed:], randomBytes(16))
	return body, nil
}
