package ssl

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// Session-level behaviour: multiple connections, interleaved record types,
// and property tests on the record layer.

func TestMultipleIndependentSessions(t *testing.T) {
	type session struct {
		c *Client
		s *Server
	}
	var sessions []session
	for i := 0; i < 4; i++ {
		c, s, _ := newPair(t, Config{}, Config{})
		if err := handshake(t, c, s); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		sessions = append(sessions, session{c, s})
	}
	// Records from one session fail on another (independent keys).
	rec, err := sessions[0].c.Send([]byte("for session 0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sessions[1].s.ProcessRecord(rec, func(b []byte) []byte { return b }); err == nil {
		t.Fatal("cross-session record accepted")
	}
	// Each session still works after the cross-session attempt.
	for i, ss := range sessions {
		if i == 0 {
			continue // session 0's record was consumed above
		}
		rec, err := ss.c.Send([]byte(fmt.Sprintf("msg-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ss.s.ProcessRecord(rec, func(b []byte) []byte { return b })
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		_, pt, err := ss.c.Recv(resp)
		if err != nil || string(pt) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("session %d echo: %q %v", i, pt, err)
		}
	}
}

func TestInterleavedHeartbeatsAndData(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{Vulnerable: false})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			req, err := c.Heartbeat([]byte("hb"), 2)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := s.ProcessRecord(req, nil)
			if err != nil {
				t.Fatal(err)
			}
			echo, err := c.OpenHeartbeatResponse(resp)
			if err != nil || string(echo) != "hb" {
				t.Fatalf("iter %d heartbeat: %q %v", i, echo, err)
			}
		} else {
			msg := []byte(fmt.Sprintf("data-%d", i))
			rec, err := c.Send(msg)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := s.ProcessRecord(rec, func(b []byte) []byte { return b })
			if err != nil {
				t.Fatal(err)
			}
			_, pt, err := c.Recv(resp)
			if err != nil || !bytes.Equal(pt, msg) {
				t.Fatalf("iter %d data: %q %v", i, pt, err)
			}
		}
	}
}

func TestHeapDoesNotLeakAcrossRecords(t *testing.T) {
	// Record staging buffers are freed after processing: the heap's live
	// bytes return to baseline between records.
	c, s, mem := newPair(t, Config{}, Config{})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	baseline := mem.heap.LiveBytes()
	for i := 0; i < 50; i++ {
		rec, err := c.Send(bytes.Repeat([]byte{1}, 500))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ProcessRecord(rec, func(b []byte) []byte { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := mem.heap.LiveBytes(); got != baseline {
		t.Fatalf("staging buffers leaked: %d -> %d live bytes", baseline, got)
	}
}

// Property: arbitrary payloads round-trip the record layer, and any
// single-byte corruption of the wire record is rejected.
func TestRecordLayerProperty(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, flipAt uint16, corrupt bool) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		rec, err := c.Send(payload)
		if err != nil {
			return false
		}
		if corrupt && len(rec) > 3 {
			rec[3+int(flipAt)%(len(rec)-3)] ^= 1
			_, err := s.ProcessRecord(rec, func(b []byte) []byte { return nil })
			// Note: corruption of the body must fail; the server's recv
			// sequence number must NOT advance on failure, so the next
			// honest record still authenticates. Re-send honestly:
			if err == nil {
				return false
			}
			rec[3+int(flipAt)%(len(rec)-3)] ^= 1
		}
		got := []byte(nil)
		if _, err := s.ProcessRecord(rec, func(b []byte) []byte {
			got = append([]byte(nil), b...)
			return nil
		}); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	c, s, _ := newPair(t, Config{}, Config{})
	if err := handshake(t, c, s); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(make([]byte, maxPlaintextSize)); err == nil {
		t.Fatal("oversized plaintext accepted")
	}
	// Malformed wire records.
	for _, rec := range [][]byte{nil, {1}, {recAppData, 0, 5, 1, 2}} {
		if _, err := s.ProcessRecord(rec, nil); err == nil {
			t.Fatalf("malformed record %v accepted", rec)
		}
	}
}
