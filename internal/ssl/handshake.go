package ssl

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// The handshake is a compact TLS-1.3-flavoured exchange:
//
//	C -> S  ClientHello  {version, clientRandom[32], clientPub[32]}
//	S -> C  ServerHello  {version, serverRandom[32], serverPub[32],
//	                      finishedMAC = HMAC(master, transcript)}
//	C -> S  ClientFinished {finishedMAC' = HMAC(master, transcript|"c")}
//
// Both finished MACs cover the full transcript *as each side saw it*, so any
// man-in-the-middle edit — in particular downgrading the version field (the
// rollback attack the paper's echo server guards against) — causes a key or
// MAC mismatch and the handshake aborts.

const (
	helloLen  = 2 + 32 + 32
	shelloLen = 2 + 32 + 32 + 32
	cfinLen   = 32
)

// Client is the initiator's handshake state machine plus record layer.
type Client struct {
	cfg        Config
	priv       *ecdh.PrivateKey
	hello      []byte
	transcript []byte
	master     []byte
	*suite
}

// NewClient prepares a client endpoint.
func NewClient(cfg Config) (*Client, error) {
	priv, err := newKeyPair()
	if err != nil {
		return nil, err
	}
	return &Client{cfg: cfg, priv: priv}, nil
}

// Hello produces the ClientHello message.
func (c *Client) Hello() []byte {
	msg := make([]byte, helloLen)
	binary.BigEndian.PutUint16(msg[0:2], c.cfg.version())
	copy(msg[2:34], randomBytes(32))
	copy(msg[34:66], c.priv.PublicKey().Bytes())
	c.hello = msg
	c.transcript = append([]byte(nil), msg...)
	return msg
}

// HandleServerHello verifies the server's reply and finishes key derivation,
// returning the ClientFinished message.
func (c *Client) HandleServerHello(msg []byte) ([]byte, error) {
	if c.hello == nil {
		return nil, fmt.Errorf("ssl: HandleServerHello before Hello")
	}
	if len(msg) != shelloLen {
		return nil, fmt.Errorf("ssl: malformed ServerHello (%d bytes)", len(msg))
	}
	version := binary.BigEndian.Uint16(msg[0:2])
	if version != c.cfg.version() {
		return nil, fmt.Errorf("ssl: server selected version %#x, offered %#x (possible rollback)", version, c.cfg.version())
	}
	if c.cfg.MinVersion != 0 && version < c.cfg.MinVersion {
		return nil, fmt.Errorf("ssl: version %#x below client minimum %#x", version, c.cfg.MinVersion)
	}
	serverPub, err := ecdh.X25519().NewPublicKey(msg[34:66])
	if err != nil {
		return nil, fmt.Errorf("ssl: bad server key: %w", err)
	}
	shared, err := c.priv.ECDH(serverPub)
	if err != nil {
		return nil, err
	}
	c.transcript = append(c.transcript, msg[:66]...)
	var vb [2]byte
	binary.BigEndian.PutUint16(vb[:], version)
	c.master = hkdfLike(shared, c.transcript, "master"+string(vb[:]))

	// Verify the server's finished MAC over the transcript.
	wantMAC := hmac.New(sha256.New, c.master)
	wantMAC.Write(c.transcript)
	if !hmac.Equal(wantMAC.Sum(nil), msg[66:98]) {
		return nil, fmt.Errorf("ssl: server finished MAC mismatch (transcript tampered)")
	}
	s, err := deriveSuite(shared, c.transcript, version, true)
	if err != nil {
		return nil, err
	}
	c.suite = s

	fin := hmac.New(sha256.New, c.master)
	fin.Write(c.transcript)
	fin.Write([]byte("c"))
	return fin.Sum(nil), nil
}

// Server is the responder's handshake state machine plus record layer and
// heartbeat processor.
type Server struct {
	cfg  Config
	mem  Mem
	priv *ecdh.PrivateKey

	transcript []byte
	master     []byte
	done       bool
	*suite
}

// NewServer prepares a server endpoint whose record buffers live in the
// enclave memory behind mem.
func NewServer(cfg Config, mem Mem) (*Server, error) {
	priv, err := newKeyPair()
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, mem: mem, priv: priv}, nil
}

// HandleClientHello consumes the ClientHello and returns the ServerHello.
func (s *Server) HandleClientHello(msg []byte) ([]byte, error) {
	if len(msg) != helloLen {
		return nil, fmt.Errorf("ssl: malformed ClientHello (%d bytes)", len(msg))
	}
	version := binary.BigEndian.Uint16(msg[0:2])
	if s.cfg.MinVersion != 0 && version < s.cfg.MinVersion {
		return nil, fmt.Errorf("ssl: client version %#x below server minimum %#x (rollback rejected)", version, s.cfg.MinVersion)
	}
	clientPub, err := ecdh.X25519().NewPublicKey(msg[34:66])
	if err != nil {
		return nil, fmt.Errorf("ssl: bad client key: %w", err)
	}
	shared, err := s.priv.ECDH(clientPub)
	if err != nil {
		return nil, err
	}
	reply := make([]byte, shelloLen)
	binary.BigEndian.PutUint16(reply[0:2], version)
	copy(reply[2:34], randomBytes(32))
	copy(reply[34:66], s.priv.PublicKey().Bytes())

	s.transcript = append(append([]byte(nil), msg...), reply[:66]...)
	var vb [2]byte
	binary.BigEndian.PutUint16(vb[:], version)
	s.master = hkdfLike(shared, s.transcript, "master"+string(vb[:]))
	fin := hmac.New(sha256.New, s.master)
	fin.Write(s.transcript)
	copy(reply[66:98], fin.Sum(nil))

	st, err := deriveSuite(shared, s.transcript, version, false)
	if err != nil {
		return nil, err
	}
	s.suite = st
	return reply, nil
}

// HandleClientFinished verifies the client's finished MAC, completing the
// handshake.
func (s *Server) HandleClientFinished(msg []byte) error {
	if s.suite == nil {
		return fmt.Errorf("ssl: finished before hello")
	}
	if len(msg) != cfinLen {
		return fmt.Errorf("ssl: malformed ClientFinished")
	}
	want := hmac.New(sha256.New, s.master)
	want.Write(s.transcript)
	want.Write([]byte("c"))
	if !hmac.Equal(want.Sum(nil), msg) {
		return fmt.Errorf("ssl: client finished MAC mismatch (transcript tampered)")
	}
	s.done = true
	return nil
}

// Handshaken reports whether the handshake completed.
func (s *Server) Handshaken() bool { return s.done }
