package measure

import (
	"bytes"
	"testing"
	"testing/quick"

	"nestedenclave/internal/isa"
)

func chunk(fill byte) []byte { return bytes.Repeat([]byte{fill}, isa.ExtendChunk) }

func TestMeasurementDeterminism(t *testing.T) {
	build := func() Digest {
		b := NewBuilder()
		b.ECreate(0x10000, 0)
		b.EAdd(0, isa.PTReg, isa.PermRX)
		b.EExtend(0, chunk(1))
		b.EAdd(0x1000, isa.PTTCS, 0)
		return b.Finalize()
	}
	if build() != build() {
		t.Fatal("identical build sequences measure differently")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	base := func(mutate func(*Builder)) Digest {
		b := NewBuilder()
		b.ECreate(0x10000, 0)
		b.EAdd(0, isa.PTReg, isa.PermRX)
		b.EExtend(0, chunk(1))
		mutate(b)
		return b.Finalize()
	}
	ref := base(func(b *Builder) {})
	variants := map[string]Digest{
		"extra page":    base(func(b *Builder) { b.EAdd(0x1000, isa.PTReg, isa.PermRW) }),
		"extra content": base(func(b *Builder) { b.EExtend(256, chunk(2)) }),
	}
	for name, d := range variants {
		if d == ref {
			t.Errorf("%s did not change the measurement", name)
		}
	}
	// Different content bytes at the same offset.
	b1 := NewBuilder()
	b1.ECreate(0x10000, 0)
	b1.EAdd(0, isa.PTReg, isa.PermRX)
	b1.EExtend(0, chunk(1))
	b2 := NewBuilder()
	b2.ECreate(0x10000, 0)
	b2.EAdd(0, isa.PTReg, isa.PermRX)
	b2.EExtend(0, chunk(9))
	if b1.Finalize() == b2.Finalize() {
		t.Error("content change did not change the measurement")
	}
	// Different permissions.
	b3 := NewBuilder()
	b3.ECreate(0x10000, 0)
	b3.EAdd(0, isa.PTReg, isa.PermRWX)
	b3.EExtend(0, chunk(1))
	if b3.Finalize() == ref {
		t.Error("permission change did not change the measurement")
	}
	// Different ELRANGE size.
	b4 := NewBuilder()
	b4.ECreate(0x20000, 0)
	b4.EAdd(0, isa.PTReg, isa.PermRX)
	b4.EExtend(0, chunk(1))
	if b4.Finalize() == ref {
		t.Error("ELRANGE size change did not change the measurement")
	}
}

func TestOrderMatters(t *testing.T) {
	b1 := NewBuilder()
	b1.ECreate(0x10000, 0)
	b1.EAdd(0, isa.PTReg, isa.PermRX)
	b1.EAdd(0x1000, isa.PTReg, isa.PermRW)
	b2 := NewBuilder()
	b2.ECreate(0x10000, 0)
	b2.EAdd(0x1000, isa.PTReg, isa.PermRW)
	b2.EAdd(0, isa.PTReg, isa.PermRX)
	if b1.Finalize() == b2.Finalize() {
		t.Fatal("page order does not affect the measurement")
	}
}

func TestEExtendWrongChunkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short EEXTEND chunk accepted")
		}
	}()
	b := NewBuilder()
	b.EExtend(0, []byte{1, 2, 3})
}

func TestSigStructVerify(t *testing.T) {
	a := MustNewAuthor()
	var d Digest
	d[0] = 0x42
	s := a.Sign(d, nil, nil)
	if err := s.Verify(); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	// Tampering with the enclave hash invalidates the signature.
	s.EnclaveHash[1] ^= 1
	if err := s.Verify(); err == nil {
		t.Fatal("tampered cert accepted")
	}
	s.EnclaveHash[1] ^= 1
	// Tampering with an association list invalidates the signature.
	var o Digest
	o[2] = 7
	s2 := a.Sign(d, []Digest{o}, nil)
	if err := s2.Verify(); err != nil {
		t.Fatal(err)
	}
	s2.ExpectedOuters[0][0] ^= 1
	if err := s2.Verify(); err == nil {
		t.Fatal("tampered expected-outer list accepted")
	}
	// A different author's signature fails.
	b := MustNewAuthor()
	s3 := a.Sign(d, nil, nil)
	s3.Signer = b.Public()
	if err := s3.Verify(); err == nil {
		t.Fatal("signer substitution accepted")
	}
	// Malformed signer key.
	s4 := a.Sign(d, nil, nil)
	s4.Signer = s4.Signer[:5]
	if err := s4.Verify(); err == nil {
		t.Fatal("malformed signer accepted")
	}
}

func TestAllowLists(t *testing.T) {
	a := MustNewAuthor()
	var d, o1, o2 Digest
	o1[0], o2[0] = 1, 2
	s := a.Sign(d, []Digest{o1}, []Digest{o2})
	if !s.AllowsOuter(o1) || s.AllowsOuter(o2) {
		t.Error("AllowsOuter wrong")
	}
	if !s.AllowsInner(o2) || s.AllowsInner(o1) {
		t.Error("AllowsInner wrong")
	}
}

func TestSignerIdentity(t *testing.T) {
	a := MustNewAuthor()
	b := MustNewAuthor()
	if a.Signer() == b.Signer() {
		t.Fatal("distinct authors share MRSIGNER")
	}
	if a.Signer() != SignerOf(a.Public()) {
		t.Fatal("Signer() != SignerOf(Public())")
	}
	if a.Signer().IsZero() {
		t.Fatal("zero MRSIGNER")
	}
}

func TestDeriveKeySeparation(t *testing.T) {
	secret := []byte("platform-secret")
	var mr1, mr2 Digest
	mr1[0], mr2[0] = 1, 2
	k1 := DeriveKey(secret, KeyReport, mr1, Digest{}, nil)
	k2 := DeriveKey(secret, KeyReport, mr2, Digest{}, nil)
	k3 := DeriveKey(secret, KeySeal, mr1, Digest{}, nil)
	k4 := DeriveKey([]byte("other-platform"), KeyReport, mr1, Digest{}, nil)
	k5 := DeriveKey(secret, KeyReport, mr1, Digest{}, []byte("extra"))
	if k1 == k2 || k1 == k3 || k1 == k4 || k1 == k5 {
		t.Fatal("key derivation does not separate domains")
	}
	if k1 != DeriveKey(secret, KeyReport, mr1, Digest{}, nil) {
		t.Fatal("key derivation not deterministic")
	}
}

// Property: any two different EEXTEND contents give different measurements.
func TestContentCollisionResistance(t *testing.T) {
	f := func(a, b [isa.ExtendChunk]byte) bool {
		mk := func(c [isa.ExtendChunk]byte) Digest {
			bl := NewBuilder()
			bl.ECreate(4096, 0)
			bl.EAdd(0, isa.PTReg, isa.PermR)
			bl.EExtend(0, c[:])
			return bl.Finalize()
		}
		if a == b {
			return mk(a) == mk(b)
		}
		return mk(a) != mk(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
