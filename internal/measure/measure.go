// Package measure implements enclave measurement and the author-signed
// enclave certificate (SIGSTRUCT).
//
// MRENCLAVE is a SHA-256 accumulation over the enclave-building instruction
// stream: ECREATE contributes the enclave's shape (ELRANGE size, attributes),
// each EADD contributes the page's offset, type and permissions, and each
// EEXTEND contributes 256-byte chunks of page content. Two enclaves have the
// same MRENCLAVE exactly when they were built by the same sequence — the
// property both EINIT and NASSO validation rely on.
//
// SIGSTRUCT binds an expected MRENCLAVE to the author's ed25519 key;
// MRSIGNER is the SHA-256 hash of that public key.
package measure

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/isa"
)

// Digest is a 256-bit measurement value (MRENCLAVE / MRSIGNER).
type Digest [sha256.Size]byte

// IsZero reports whether the digest is all zeroes.
func (d Digest) IsZero() bool { return d == Digest{} }

func (d Digest) String() string { return fmt.Sprintf("%x", d[:8]) }

// Builder accumulates an MRENCLAVE while an enclave is constructed.
type Builder struct {
	h     []byte // running hash state, chained SHA-256
	final bool
}

// NewBuilder starts a measurement.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) chain(tag string, fields ...uint64) {
	h := sha256.New()
	h.Write(b.h)
	h.Write([]byte(tag))
	var buf [8]byte
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], f)
		h.Write(buf[:])
	}
	b.h = h.Sum(nil)
}

func (b *Builder) chainData(tag string, data []byte, fields ...uint64) {
	h := sha256.New()
	h.Write(b.h)
	h.Write([]byte(tag))
	var buf [8]byte
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], f)
		h.Write(buf[:])
	}
	h.Write(data)
	b.h = h.Sum(nil)
}

// ECreate measures the enclave shape.
func (b *Builder) ECreate(size uint64, attributes uint64) {
	b.chain("ECREATE", size, attributes)
}

// EAdd measures a page's metadata: its offset within ELRANGE, type and
// permissions (the "virtual memory layout specified by the enclave author").
func (b *Builder) EAdd(offset uint64, t isa.PageType, perms isa.Perm) {
	b.chain("EADD", offset, uint64(t), uint64(perms))
}

// EExtend measures one 256-byte chunk of page content at the given offset.
func (b *Builder) EExtend(offset uint64, chunk []byte) {
	if len(chunk) != isa.ExtendChunk {
		panic(fmt.Sprintf("measure: EEXTEND chunk of %d bytes, want %d", len(chunk), isa.ExtendChunk))
	}
	b.chainData("EEXTEND", chunk, offset)
}

// Finalize freezes the measurement (EINIT) and returns MRENCLAVE.
func (b *Builder) Finalize() Digest {
	b.final = true
	var d Digest
	copy(d[:], b.h)
	return d
}

// Current returns the running measurement without freezing it.
func (b *Builder) Current() Digest {
	var d Digest
	copy(d[:], b.h)
	return d
}

// Author is an enclave author's signing identity.
type Author struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewAuthor generates a fresh author key pair.
func NewAuthor() (*Author, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Author{pub: pub, priv: priv}, nil
}

// MustNewAuthor is NewAuthor that panics on failure (entropy exhaustion).
func MustNewAuthor() *Author {
	a, err := NewAuthor()
	if err != nil {
		panic(err)
	}
	return a
}

// Public returns the author's public key.
func (a *Author) Public() ed25519.PublicKey { return a.pub }

// Signer returns MRSIGNER for this author: SHA-256 of the public key.
func (a *Author) Signer() Digest { return SignerOf(a.pub) }

// SignerOf computes MRSIGNER for an arbitrary public key.
func SignerOf(pub ed25519.PublicKey) Digest { return sha256.Sum256(pub) }

// SigStruct is the enclave certificate shipped with a signed enclave file.
// Nested enclave extends it (paper §IV-C) with the expected measurements of
// the enclaves it may be associated with: the signed file of an inner or
// outer enclave "must contain the expected measurement of the expected inner
// or outer enclave", checked by NASSO.
type SigStruct struct {
	// EnclaveHash is the expected MRENCLAVE.
	EnclaveHash Digest
	// Signer is the author's public key; its hash becomes MRSIGNER.
	Signer ed25519.PublicKey
	// Signature covers EnclaveHash and the expected-association lists.
	Signature []byte

	// ExpectedOuters lists MRENCLAVEs of outer enclaves this enclave may
	// bind to as an inner; ExpectedInners lists MRENCLAVEs of inner
	// enclaves allowed to join this enclave as outer.
	ExpectedOuters []Digest
	ExpectedInners []Digest
}

func (s *SigStruct) signedBody() []byte {
	h := sha256.New()
	h.Write([]byte("SIGSTRUCT"))
	h.Write(s.EnclaveHash[:])
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s.ExpectedOuters)))
	h.Write(n[:])
	for _, d := range s.ExpectedOuters {
		h.Write(d[:])
	}
	binary.LittleEndian.PutUint64(n[:], uint64(len(s.ExpectedInners)))
	h.Write(n[:])
	for _, d := range s.ExpectedInners {
		h.Write(d[:])
	}
	return h.Sum(nil)
}

// Sign produces a SIGSTRUCT over the measurement and association lists.
func (a *Author) Sign(enclaveHash Digest, expectedOuters, expectedInners []Digest) *SigStruct {
	s := &SigStruct{
		EnclaveHash:    enclaveHash,
		Signer:         a.pub,
		ExpectedOuters: expectedOuters,
		ExpectedInners: expectedInners,
	}
	s.Signature = ed25519.Sign(a.priv, s.signedBody())
	return s
}

// Verify checks the author signature; EINIT refuses unverifiable certs.
func (s *SigStruct) Verify() error {
	if len(s.Signer) != ed25519.PublicKeySize {
		return fmt.Errorf("measure: malformed signer key")
	}
	if !ed25519.Verify(s.Signer, s.signedBody(), s.Signature) {
		return fmt.Errorf("measure: SIGSTRUCT signature invalid")
	}
	return nil
}

// AllowsOuter reports whether the certificate authorizes association with an
// outer enclave measuring d.
func (s *SigStruct) AllowsOuter(d Digest) bool {
	for _, e := range s.ExpectedOuters {
		if e == d {
			return true
		}
	}
	return false
}

// AllowsInner reports whether the certificate authorizes an inner enclave
// measuring d to join.
func (s *SigStruct) AllowsInner(d Digest) bool {
	for _, e := range s.ExpectedInners {
		if e == d {
			return true
		}
	}
	return false
}

// KeyName selects a derived key class for EGETKEY.
type KeyName uint16

const (
	// KeyReport keys the MAC over local-attestation REPORTs.
	KeyReport KeyName = iota
	// KeySeal derives sealing keys bound to MRENCLAVE or MRSIGNER.
	KeySeal
)

// DeriveKey derives a 128-bit key from the platform secret and the caller's
// identity, mirroring EGETKEY's derivation. All inputs are mixed through
// HMAC-SHA256.
func DeriveKey(platformSecret []byte, name KeyName, mrenclave, mrsigner Digest, extra []byte) [16]byte {
	mac := hmac.New(sha256.New, platformSecret)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(name))
	mac.Write(n[:])
	mac.Write(mrenclave[:])
	mac.Write(mrsigner[:])
	mac.Write(extra)
	var out [16]byte
	copy(out[:], mac.Sum(nil))
	return out
}
