package simtest

import (
	"testing"
)

// FuzzScheduleOps feeds arbitrary bytes through the schedule codec into the
// lockstep runner: every input decodes to some schedule (the decoder is
// total), and no schedule may ever diverge machine from oracle or violate a
// §VII-A invariant. This hands the op-space search to go's coverage-guided
// fuzzer, which reaches branch combinations the weighted random generator
// samples only rarely.
func FuzzScheduleOps(f *testing.F) {
	// Seed with generator output (typical weighted traffic)...
	for seed := int64(0); seed < 8; seed++ {
		f.Add(EncodeSchedule(Generate(seed, 24)))
	}
	// ...and with the promoted regressions (known-deep paths).
	for _, s := range regressions {
		f.Add(EncodeSchedule(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := DecodeSchedule(data)
		if len(s.Ops) > 128 {
			s.Ops = s.Ops[:128] // bound runtime per input
		}
		r := NewRunner(s.MaxDepth, s.MultiOuter)
		if step, err := r.Run(s); err != nil {
			shrunk := Shrink(s, Diverges)
			t.Fatalf("divergence at op %d: %v\nminimal reproduction:\n%s",
				step, err, FormatRegression(shrunk))
		}
	})
}
