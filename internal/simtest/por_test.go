package simtest

import "testing"

// TestPORCommutativity validates the independence relation the explorer
// prunes with. The footprint approximation in por.go claims some op pairs
// commute from *every* reachable state; a single false claim would let the
// explorer silently skip real interleavings. For every pair the matrix marks
// independent, this executes both orders from a spread of sampled reachable
// states (random-schedule prefixes of several lengths) and requires the two
// resulting states to be fingerprint-equal.
//
// The sampled prefixes come from the weighted generator over the full
// 4-core × 4-slot space, so the pairs are exercised from states richer than
// the explorer's own 2×2 scope reaches.
func TestPORCommutativity(t *testing.T) {
	// The adversarial alphabet is the superset (default + malicious-kernel
	// replay ops), so its claims cover the plain scope too.
	alphabet := AdversarialAlphabet(2, 2)
	pool := NewRunner(2, false).pool
	indep := independenceMatrix(alphabet, pool)

	prefixes := samplePrefixes(t)
	pairs, checked := 0, 0
	for i := range alphabet {
		for j := i + 1; j < len(alphabet); j++ {
			if !indep[i][j] {
				continue
			}
			pairs++
			for _, prefix := range prefixes {
				checked++
				assertCommutes(t, prefix, alphabet[i], alphabet[j])
				if t.Failed() {
					return
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatalf("independence matrix claims no independent pairs — POR is inert")
	}
	t.Logf("%d independent pairs x %d states: both orders agree (%d checks)",
		pairs, len(prefixes), checked)
}

// samplePrefixes returns op sequences whose end states seed the
// commutativity checks: the empty state plus random-schedule prefixes of
// increasing length.
func samplePrefixes(t *testing.T) [][]Op {
	t.Helper()
	shapes := []struct {
		seed int64
		n    int
	}{{11, 4}, {12, 8}, {13, 12}, {14, 16}, {15, 24}}
	if testing.Short() {
		shapes = shapes[:2]
	}
	prefixes := [][]Op{nil}
	for _, s := range shapes {
		sched := Generate(s.seed, s.n)
		prefixes = append(prefixes, sched.Ops)
	}
	return prefixes
}

// assertCommutes runs prefix+[a,b] and prefix+[b,a] on fresh runners and
// compares the end-state fingerprints.
func assertCommutes(t *testing.T, prefix []Op, a, b Op) {
	t.Helper()
	fpAB, oracleAB := runSequence(t, prefix, a, b)
	fpBA, oracleBA := runSequence(t, prefix, b, a)
	if fpAB != fpBA {
		t.Errorf("claimed-independent ops do not commute after %d-op prefix:\n  a=%+v\n  b=%+v\noracle after a,b:\n%s\noracle after b,a:\n%s",
			len(prefix), a, b, oracleAB, oracleBA)
	}
}

func runSequence(t *testing.T, prefix []Op, ops ...Op) (uint64, string) {
	t.Helper()
	r := NewRunner(2, false)
	if _, err := r.RunOps(prefix); err != nil {
		t.Fatalf("prefix diverged (machine bug, not a POR failure): %v", err)
	}
	for _, op := range ops {
		if err := r.Step(op); err != nil {
			t.Fatalf("op %+v diverged (machine bug, not a POR failure): %v", op, err)
		}
	}
	return r.Fingerprint(), r.o.CanonicalString()
}

// TestPORMatrixSanity pins structural facts about the relation: it is
// symmetric and irreflexive-safe (an op is always dependent with itself —
// same footprint, and every alphabet op writes something or reads what it
// would re-read; two copies of one op never need reordering anyway), and
// known-conflicting pairs stay dependent.
func TestPORMatrixSanity(t *testing.T) {
	alphabet := DefaultAlphabet(2, 2)
	pool := NewRunner(2, false).pool
	indep := independenceMatrix(alphabet, pool)
	for i := range alphabet {
		for j := range alphabet {
			if indep[i][j] != indep[j][i] {
				t.Fatalf("independence not symmetric at (%d,%d)", i, j)
			}
		}
	}
	find := func(k OpKind, core, slot, a uint8) int {
		for i, op := range alphabet {
			if op.Kind == k && op.Core == core && op.Slot == slot && op.A == a {
				return i
			}
		}
		t.Fatalf("alphabet misses op kind %d core %d slot %d a %d", k, core, slot, a)
		return -1
	}
	mustDepend := [][2]int{
		{find(OpBuild, 0, 0, 0), find(OpBuild, 0, 1, 0)},     // both allocate EPC
		{find(OpEnter, 0, 0, 0), find(OpExit, 0, 0, 1)},      // same core
		{find(OpAssociate, 0, 1, 0), find(OpEnter, 1, 1, 0)}, // quiescence reads core contexts
		{find(OpRemap, 0, 0, 0), find(OpRead, 0, 0, 0)},      // same page
		{find(OpEvict, 0, 0, 0), find(OpRead, 1, 0, 0)},      // shootdown vs fill
	}
	for _, p := range mustDepend {
		if indep[p[0]][p[1]] {
			t.Errorf("ops %+v and %+v claimed independent but conflict",
				alphabet[p[0]], alphabet[p[1]])
		}
	}
	cross := [2]int{find(OpEnter, 0, 0, 0), find(OpEnter, 1, 1, 0)}
	if !indep[cross[0]][cross[1]] {
		t.Errorf("enters on distinct cores/slots should be independent")
	}
}
