package simtest

import (
	"fmt"

	"nestedenclave/internal/isa"
)

// Partial-order reduction: a static independence relation over concrete ops.
//
// Two ops are independent when, from any reachable state, executing them in
// either order yields the same state and the same pair of verdicts — in which
// case the explorer only needs one of the two interleavings. Independence is
// approximated by resource footprints: each op declares the logical resources
// it reads and writes, and two ops are independent iff neither writes a
// resource the other touches. The approximation is deliberately conservative
// (a false "dependent" only costs exploration time; a false "independent"
// could hide a bug), and TestPORCommutativity validates every claimed-
// independent pair empirically: both orders from sampled reachable states
// must produce fingerprint-equal states.
//
// Resource vocabulary:
//
//	core:N    core N's protection context (mode, current frame)
//	tlb:N     core N's TLB as a whole (fills read-touch it, flushes write it)
//	tcs:S     slot S's TCS occupancy/SSA state
//	slot:S    slot S's built/initialized identity
//	lattice   the NASSO association graph
//	epc       the EPC allocator and EID counter (allocation order)
//	page:V    the page at virtual base V: its PTE, EPCM entry, and residency
type footprint struct {
	reads  map[string]bool
	writes map[string]bool
}

func newFootprint() footprint {
	return footprint{reads: map[string]bool{}, writes: map[string]bool{}}
}

func (f footprint) r(tokens ...string) footprint {
	for _, t := range tokens {
		f.reads[t] = true
	}
	return f
}

func (f footprint) w(tokens ...string) footprint {
	for _, t := range tokens {
		f.writes[t] = true
	}
	return f
}

func coreTok(c int) string { return fmt.Sprintf("core:%d", c) }
func tlbTok(c int) string  { return fmt.Sprintf("tlb:%d", c) }
func tcsTok(s int) string  { return fmt.Sprintf("tcs:%d", s) }
func slotTok(s int) string { return fmt.Sprintf("slot:%d", s) }
func pageTok(v uint64) string {
	return fmt.Sprintf("page:%#x", v)
}

// allCoreToks / allTCSToks are the conservative wildcards for ops whose
// target depends on runtime state (an exit writes the TCS of whatever enclave
// the core currently runs; an eviction may shoot down any core).
func allTLBToks() []string {
	out := make([]string, machineCores)
	for c := 0; c < machineCores; c++ {
		out[c] = tlbTok(c)
	}
	return out
}

func allCoreToks() []string {
	out := make([]string, machineCores)
	for c := 0; c < machineCores; c++ {
		out[c] = coreTok(c)
	}
	return out
}

func allTCSToks() []string {
	out := make([]string, NumSlots)
	for s := 0; s < NumSlots; s++ {
		out[s] = tcsTok(s)
	}
	return out
}

// slotPageToks returns the page tokens of every page buildSlot maps for a
// slot (data pages and TCS pages).
func slotPageToks(slot int) []string {
	var out []string
	for j := 0; j < dataPages; j++ {
		out = append(out, pageTok(uint64(dataVaddr(slot, j).PageBase())))
	}
	for k := 0; k < numTCS; k++ {
		out = append(out, pageTok(uint64(tcsVaddr(slot, k).PageBase())))
	}
	return out
}

// opFootprint computes the resource footprint of one concrete op, applying
// the same modular reductions the runner applies at execution time.
func opFootprint(op Op, pool []isa.VAddr) footprint {
	f := newFootprint()
	kind := op.Kind % numOpKinds
	c := int(op.Core) % machineCores
	s := int(op.Slot) % NumSlots

	switch kind {
	case OpBuild:
		f = f.w("epc", slotTok(s)).w(slotPageToks(s)...)
	case OpAssociate:
		outer := int(op.A) % NumSlots
		// NASSO's quiescence rule rejects association while any core runs
		// the inner subtree, so the verdict reads every core's context.
		f = f.w("lattice").r(slotTok(s), slotTok(outer)).r(allCoreToks()...)
	case OpEnter:
		f = f.w(coreTok(c), tlbTok(c), tcsTok(s)).r(slotTok(s))
	case OpExit:
		// The released TCS belongs to whatever enclave core c currently
		// runs — statically unknown, so every TCS is (conservatively) written.
		f = f.w(coreTok(c), tlbTok(c)).w(allTCSToks()...)
	case OpNEnter:
		f = f.w(coreTok(c), tlbTok(c), tcsTok(s)).r(slotTok(s), "lattice")
	case OpNExit:
		f = f.w(coreTok(c), tlbTok(c)).w(allTCSToks()...)
	case OpAEX:
		f = f.w(coreTok(c), tlbTok(c)).w(allTCSToks()...)
	case OpResume:
		f = f.w(coreTok(c), tlbTok(c), tcsTok(s)).r(slotTok(s))
	case OpRead, OpWrite, OpFetch:
		// Verdict depends on the core's context, the outer-closure walk, and
		// the target page's PTE/EPCM state; on success the core's TLB gains
		// an entry (a read-touch of the TLB group: fills on the same core
		// commute with each other, flushes do not commute with fills).
		v := accessPoolVaddr(pool, op)
		f = f.r(coreTok(c), "lattice", pageTok(v), tlbTok(c))
	case OpRemap:
		v := uint64(pool[int(op.A)%len(pool)].PageBase())
		// The installed frame (op.B) indexes a state-dependent frame pool;
		// the PTE write itself is the only effect either order can observe.
		f = f.w(pageTok(v))
		f = f.r("epc") // frame pool contents depend on EPC allocation state
	case OpUnmap:
		v := uint64(pool[int(op.A)%len(pool)].PageBase())
		f = f.w(pageTok(v))
	case OpEvict:
		// Eviction blocks/frees the target page, allocates/frees EPC, walks
		// the lattice for the shootdown set, reads every core's context, and
		// flushes the shot-down TLBs.
		target := uint64(dataVaddr(s, int(op.A)%dataPages).PageBase())
		f = f.w("epc", pageTok(target)).w(allTLBToks()...)
		f = f.r("lattice", slotTok(s)).r(allCoreToks()...)
	}
	return f
}

// accessPoolVaddr mirrors Runner.accessAddr's page selection (the offset
// within the page does not change the footprint).
func accessPoolVaddr(pool []isa.VAddr, op Op) uint64 {
	return uint64(pool[int(op.A)%len(pool)].PageBase())
}

// dependent reports whether two footprints conflict: some resource is
// written by one and touched by the other.
func dependent(a, b footprint) bool {
	for t := range a.writes {
		if b.reads[t] || b.writes[t] {
			return true
		}
	}
	for t := range b.writes {
		if a.reads[t] {
			return true
		}
	}
	return false
}

// independenceMatrix precomputes pairwise independence for an alphabet.
// indep[i][j] == true means alphabet[i] and alphabet[j] commute from every
// state (per the footprint approximation).
func independenceMatrix(alphabet []Op, pool []isa.VAddr) [][]bool {
	fps := make([]footprint, len(alphabet))
	for i, op := range alphabet {
		fps[i] = opFootprint(op, pool)
	}
	indep := make([][]bool, len(alphabet))
	for i := range alphabet {
		indep[i] = make([]bool, len(alphabet))
		for j := range alphabet {
			indep[i][j] = !dependent(fps[i], fps[j])
		}
	}
	return indep
}
