package simtest

import (
	"flag"
	"os"
	"strconv"
	"testing"
)

var (
	flagSeed = flag.Int64("seed", -1,
		"run exactly one lockstep schedule with this seed (replay a failure)")
	flagOpsPer = flag.Int("opsper", 64, "ops per generated schedule")
)

// defaultSchedules reads SIMTEST_SCHEDULES, one of the two env knobs the
// Makefile tiers use to scale this package's coverage: SIMTEST_SCHEDULES
// sets the randomized lockstep schedule count (300 here by default; tier 3
// turns it up to 5000), and MODELCHECK_DEPTH sets the horizon of the
// exhaustive explorer's smoke in explore_test.go (depth 4 by default; the
// tier-2 modelcheck-smoke runs depth 6, `make modelcheck` depth 8). The two
// are complementary: random schedules are long (64 ops) but sparse,
// exhaustive schedules are short but cover every interleaving at scope.
func defaultSchedules() int {
	if s := os.Getenv("SIMTEST_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 300
}

// runSchedule runs one generated schedule; on divergence it shrinks the
// schedule and fails with a replayable, copy-pasteable reproduction.
func runSchedule(t *testing.T, seed int64, nOps int) {
	t.Helper()
	sched := Generate(seed, nOps)
	r := NewRunner(sched.MaxDepth, sched.MultiOuter)
	step, err := r.Run(sched)
	if err == nil {
		return
	}
	t.Logf("seed %d diverged at op %d/%d: %v", seed, step, len(sched.Ops), err)
	t.Logf("replay: go test ./internal/simtest -run TestLockstepSchedules -seed %d -opsper %d", seed, nOps)
	shrunk := Shrink(sched, Diverges)
	_, serr := NewRunner(shrunk.MaxDepth, shrunk.MultiOuter).Run(shrunk)
	t.Logf("shrunk to %d ops (divergence: %v); promote to regress_test.go as:\n%s",
		len(shrunk.Ops), serr, FormatRegression(shrunk))
	t.Fatalf("machine/oracle divergence (seed %d): %v", seed, err)
}

// TestLockstepSchedules is the harness's main entry: N seeded random
// schedules, every step diffed against the oracle and audited against the
// four invariants. make tier3 runs it with SIMTEST_SCHEDULES=5000.
func TestLockstepSchedules(t *testing.T) {
	nOps := *flagOpsPer
	if *flagSeed >= 0 {
		runSchedule(t, *flagSeed, nOps)
		return
	}
	n := defaultSchedules()
	if testing.Short() {
		n = 50
	}
	for seed := 0; seed < n; seed++ {
		runSchedule(t, int64(seed), nOps)
		if t.Failed() {
			return
		}
	}
	t.Logf("%d schedules x %d ops: zero divergence", n, nOps)
}
