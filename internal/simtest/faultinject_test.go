package simtest

// Fault injection: this file proves the harness has teeth. It injects
// deliberately broken validators (the acceptance criterion's flipped
// outer-ELRANGE branch), broken kernels (skipped shootdown IPIs), forged
// EPCM-mismatch mappings, stale TLB entries, and replayed paging blobs — and
// asserts that the machine *denies* what it must and that the harness
// *catches* what the machine gets wrong.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/tlb"
)

func sgxAbort() (tlb.Entry, *sgx.Outcome) { return tlb.Entry{}, &sgx.Outcome{Abort: true} }

func sgxFault(f *isa.Fault) (tlb.Entry, *sgx.Outcome) {
	return tlb.Entry{}, &sgx.Outcome{Fault: f}
}

// outerChainOf mirrors core's outer-closure walk for the broken validators
// below (which cannot reuse core's unexported helper).
func outerChainOf(m *sgx.Machine, s *sgx.SECS) []*sgx.SECS {
	var out []*sgx.SECS
	seen := map[isa.EID]bool{s.EID: true}
	frontier := []*sgx.SECS{s}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, oe := range next.Nested.OuterEIDs {
			if seen[oe] {
				continue
			}
			seen[oe] = true
			o, ok := m.ResolveEID(oe)
			if !ok {
				continue
			}
			out = append(out, o)
			frontier = append(frontier, o)
		}
	}
	return out
}

// flippedOuterELRANGE is the Figure-6 flow with exactly one bug: the step-⑤
// outer-ELRANGE condition is inverted, so a legitimate inner→outer access
// whose vaddr lies inside the outer's ELRANGE aborts instead of validating.
// The lockstep harness must catch this as a verdict divergence.
type flippedOuterELRANGE struct{}

func (flippedOuterELRANGE) Validate(c *sgx.Core, v isa.VAddr, pte pt.PTE, op isa.Access) (tlb.Entry, *sgx.Outcome) {
	m := c.Machine()
	paddr := isa.PAddr(pte.PPN << isa.PageShift)
	if !pte.Perms.Allows(op) {
		return sgxFault(isa.PF(v, op, "page-table permission"))
	}
	if !c.InEnclave() {
		if m.DRAM.PageInPRM(paddr) {
			return sgxAbort()
		}
		return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: pte.Perms}, nil
	}
	s := c.Current()
	if m.DRAM.PageInPRM(paddr) {
		ent, ok := m.EPC.EntryAt(paddr)
		if !ok || !ent.Valid {
			return sgxAbort()
		}
		if ent.Blocked {
			return sgxFault(isa.PF(v, op, "EPC page blocked for eviction"))
		}
		if ent.Type != isa.PTReg {
			return sgxAbort()
		}
		if ent.Owner == s.EID {
			if ent.Vaddr != v.PageBase() {
				return sgxAbort()
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return sgxFault(isa.PF(v, op, "EPCM permission"))
			}
			return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
				FilledInEnclave: true, FilledEID: s.EID}, nil
		}
		for _, outer := range outerChainOf(m, s) {
			if ent.Owner != outer.EID {
				continue
			}
			// THE INJECTED BUG: the outer-ELRANGE containment test is
			// flipped (correct code requires !outer.ContainsVPN to abort).
			if ent.Vaddr != v.PageBase() || outer.ContainsVPN(v.VPN()) {
				return sgxAbort()
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return sgxFault(isa.PF(v, op, "EPCM permission (outer page)"))
			}
			return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
				FilledInEnclave: true, FilledEID: s.EID}, nil
		}
		return sgxAbort()
	}
	if s.ContainsVPN(v.VPN()) {
		return sgxFault(isa.PF(v, op, "ELRANGE page not backed by EPC (evicted?)"))
	}
	for _, outer := range outerChainOf(m, s) {
		if outer.ContainsVPN(v.VPN()) {
			return sgxFault(isa.PF(v, op, "outer ELRANGE page not backed by EPC (evicted?)"))
		}
	}
	perms := pte.Perms &^ isa.PermX
	if !perms.Allows(op) {
		return sgxFault(isa.PF(v, op, "execute from unsecure memory in enclave mode"))
	}
	return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: perms,
		FilledInEnclave: true, FilledEID: s.EID}, nil
}

// leakyOuterRangeC is the Figure-6 flow with the path-C steps ①② dropped:
// a vaddr inside an *outer* enclave's ELRANGE whose PTE points outside PRM is
// treated as ordinary unsecure memory instead of page-faulting — an
// information-flow hole (a remap attack would redirect inner reads of outer
// state into attacker memory).
type leakyOuterRangeC struct{}

func (leakyOuterRangeC) Validate(c *sgx.Core, v isa.VAddr, pte pt.PTE, op isa.Access) (tlb.Entry, *sgx.Outcome) {
	m := c.Machine()
	paddr := isa.PAddr(pte.PPN << isa.PageShift)
	if !c.InEnclave() || m.DRAM.PageInPRM(paddr) {
		// In-PRM and non-enclave paths: defer to the correct validator.
		return (flippedOuterELRANGECorrectB{}).Validate(c, v, pte, op)
	}
	if !pte.Perms.Allows(op) {
		return sgxFault(isa.PF(v, op, "page-table permission"))
	}
	s := c.Current()
	if s.ContainsVPN(v.VPN()) {
		return sgxFault(isa.PF(v, op, "ELRANGE page not backed by EPC (evicted?)"))
	}
	// THE INJECTED BUG: the outer-ELRANGE walk (steps ①②) is missing here.
	perms := pte.Perms &^ isa.PermX
	if !perms.Allows(op) {
		return sgxFault(isa.PF(v, op, "execute from unsecure memory in enclave mode"))
	}
	return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: perms,
		FilledInEnclave: true, FilledEID: s.EID}, nil
}

// flippedOuterELRANGECorrectB is the correct Figure-6 flow, used by
// leakyOuterRangeC for the paths it does not break. (It is the same code as
// flippedOuterELRANGE with the flip undone.)
type flippedOuterELRANGECorrectB struct{}

func (flippedOuterELRANGECorrectB) Validate(c *sgx.Core, v isa.VAddr, pte pt.PTE, op isa.Access) (tlb.Entry, *sgx.Outcome) {
	m := c.Machine()
	paddr := isa.PAddr(pte.PPN << isa.PageShift)
	if !pte.Perms.Allows(op) {
		return sgxFault(isa.PF(v, op, "page-table permission"))
	}
	if !c.InEnclave() {
		if m.DRAM.PageInPRM(paddr) {
			return sgxAbort()
		}
		return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: pte.Perms}, nil
	}
	s := c.Current()
	if m.DRAM.PageInPRM(paddr) {
		ent, ok := m.EPC.EntryAt(paddr)
		if !ok || !ent.Valid {
			return sgxAbort()
		}
		if ent.Blocked {
			return sgxFault(isa.PF(v, op, "EPC page blocked for eviction"))
		}
		if ent.Type != isa.PTReg {
			return sgxAbort()
		}
		if ent.Owner == s.EID {
			if ent.Vaddr != v.PageBase() {
				return sgxAbort()
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return sgxFault(isa.PF(v, op, "EPCM permission"))
			}
			return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
				FilledInEnclave: true, FilledEID: s.EID}, nil
		}
		for _, outer := range outerChainOf(m, s) {
			if ent.Owner != outer.EID {
				continue
			}
			if ent.Vaddr != v.PageBase() || !outer.ContainsVPN(v.VPN()) {
				return sgxAbort()
			}
			eff := ent.Perms & pte.Perms
			if !eff.Allows(op) {
				return sgxFault(isa.PF(v, op, "EPCM permission (outer page)"))
			}
			return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
				FilledInEnclave: true, FilledEID: s.EID}, nil
		}
		return sgxAbort()
	}
	if s.ContainsVPN(v.VPN()) {
		return sgxFault(isa.PF(v, op, "ELRANGE page not backed by EPC (evicted?)"))
	}
	for _, outer := range outerChainOf(m, s) {
		if outer.ContainsVPN(v.VPN()) {
			return sgxFault(isa.PF(v, op, "outer ELRANGE page not backed by EPC (evicted?)"))
		}
	}
	perms := pte.Perms &^ isa.PermX
	if !perms.Allows(op) {
		return sgxFault(isa.PF(v, op, "execute from unsecure memory in enclave mode"))
	}
	return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: perms,
		FilledInEnclave: true, FilledEID: s.EID}, nil
}

// TestInjectedOuterELRANGEBugCaught is the acceptance criterion's self-test:
// with the flipped outer-ELRANGE validator installed, randomized schedules
// must surface a divergence, and the shrinker must reduce it to a minimal
// replayable schedule that still diverges.
func TestInjectedOuterELRANGEBugCaught(t *testing.T) {
	divergesFlipped := func(s Schedule) bool {
		r := NewRunner(s.MaxDepth, s.MultiOuter)
		r.SetValidator(flippedOuterELRANGE{})
		_, err := r.Run(s)
		return err != nil
	}
	const maxSeeds = 500
	for seed := int64(0); seed < maxSeeds; seed++ {
		sched := Generate(seed, 64)
		r := NewRunner(sched.MaxDepth, sched.MultiOuter)
		r.SetValidator(flippedOuterELRANGE{})
		step, err := r.Run(sched)
		if err == nil {
			continue
		}
		t.Logf("injected bug caught at seed %d, op %d: %v", seed, step, err)
		shrunk := Shrink(sched, divergesFlipped)
		if !divergesFlipped(shrunk) {
			t.Fatalf("shrunk schedule no longer diverges")
		}
		if Diverges(shrunk) {
			t.Fatalf("shrunk schedule diverges even on the correct machine")
		}
		t.Logf("shrunk from %d to %d ops; minimal reproduction:\n%s",
			len(sched.Ops), len(shrunk.Ops), FormatRegression(shrunk))
		return
	}
	t.Fatalf("flipped outer-ELRANGE bug not caught in %d schedules — the harness is blind", maxSeeds)
}

// nestedReadSetup is the canonical schedule prefix establishing a nested
// context: slots 0 (outer) and 1 (inner) built and associated, core 1 inside
// the inner enclave via outer→NEENTER.
var nestedReadSetup = []Op{
	{Kind: OpBuild, Slot: 0},
	{Kind: OpBuild, Slot: 1},
	{Kind: OpAssociate, Slot: 1, A: 0}, // inner=slot1, outer=slot0
	{Kind: OpEnter, Core: 1, Slot: 0},
	{Kind: OpNEnter, Core: 1, Slot: 1},
}

// TestInjectedPathCLeakCaughtDirected checks that the harness also catches an
// *allow* bug: with the path-C outer-ELRANGE walk removed, a remapped outer
// vaddr pointing into attacker memory validates instead of page-faulting, and
// the lockstep diff flags it (machine ok vs oracle #PF).
func TestInjectedPathCLeakCaughtDirected(t *testing.T) {
	buildAndAlias := func(r *Runner) {
		if _, err := r.RunOps(nestedReadSetup); err != nil {
			t.Fatalf("setup: %v", err)
		}
		// Kernel remap attack: alias the outer's data page 0 to a plain DRAM
		// frame outside PRM.
		r.pt.Map(dataVaddr(0, 0), sparePA, isa.PermRW)
	}
	readOuter := Op{Kind: OpRead, Core: 1, A: 0} // pool[0] = slot0 data0

	// On the correct machine this is a #PF on both sides: no divergence.
	r := NewRunner(2, false)
	buildAndAlias(r)
	if err := r.Step(readOuter); err != nil {
		t.Fatalf("correct machine diverged: %v", err)
	}

	// With the leak injected, the lockstep diff must catch it.
	r = NewRunner(2, false)
	r.SetValidator(leakyOuterRangeC{})
	buildAndAlias(r)
	if err := r.Step(readOuter); err == nil {
		t.Fatalf("path-C leak not caught: inner read of remapped outer vaddr validated silently")
	} else {
		t.Logf("leak caught: %v", err)
	}
}

// TestSkipShootdownEWBDenied drives the eviction protocol with the shootdown
// IPIs maliciously skipped while core 1 (inside the inner enclave) holds a
// live translation for the outer page. The machine's EWB and the oracle must
// both refuse — in lockstep — and a correct retry must then succeed.
func TestSkipShootdownEWBDenied(t *testing.T) {
	r := NewRunner(2, false)
	ops := append(append([]Op{}, nestedReadSetup...),
		Op{Kind: OpRead, Core: 1, A: 0},           // fill core 1's TLB with the outer page
		Op{Kind: OpEvict, Slot: 0, A: 0, B: 0x80}, // skip shootdown: EWB must refuse
	)
	if _, err := r.RunOps(ops); err != nil {
		t.Fatalf("lockstep divergence: %v", err)
	}
	// The page must still be resident and blocked; no blob was produced.
	if r.Blob(dataVaddr(0, 0)) != nil {
		t.Fatalf("EWB produced a blob despite a live stale translation")
	}
	m := r.Machine()
	blocked := false
	for _, i := range m.EPC.PagesOf(r.Slot(0).EID) {
		if ent := m.EPC.Entry(i); ent.Vaddr == dataVaddr(0, 0) && ent.Type == isa.PTReg {
			blocked = ent.Blocked
		}
	}
	if !blocked {
		t.Fatalf("outer data page not left blocked after refused EWB")
	}
	// A well-behaved retry (with IPIs) completes the eviction.
	if err := r.Step(Op{Kind: OpEvict, Slot: 0, A: 0}); err != nil {
		t.Fatalf("recovery eviction diverged: %v", err)
	}
	if r.Blob(dataVaddr(0, 0)) == nil {
		t.Fatalf("recovery eviction did not produce a blob")
	}
}

// TestInnerAwareTrackingRequired pins down §IV-E: a core that EENTERed an
// inner enclave *directly* (no suspended outer frame) holds translations for
// outer pages via the Figure-6 branch, so evicting the outer page must shoot
// it down. The nested tracker includes the core; baseline SGX's tracker
// misses it, and only the EWB audit then saves the invariant — by refusing.
func TestInnerAwareTrackingRequired(t *testing.T) {
	r := NewRunner(2, false)
	ops := []Op{
		{Kind: OpBuild, Slot: 0},
		{Kind: OpBuild, Slot: 1},
		{Kind: OpAssociate, Slot: 1, A: 0},
		{Kind: OpEnter, Core: 1, Slot: 1}, // directly into the INNER enclave
		{Kind: OpRead, Core: 1, A: 0},     // read outer data0 via Figure-6
	}
	if _, err := r.RunOps(ops); err != nil {
		t.Fatalf("lockstep divergence: %v", err)
	}
	m := r.Machine()
	outer := r.Slot(0)

	hasCore := func(cores []*sgx.Core, id int) bool {
		for _, c := range cores {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	if !hasCore(m.ETrack(outer), 1) {
		t.Fatalf("nested tracker does not include core 1, which holds an outer translation")
	}

	// Baseline SGX tracking misses the inner core entirely.
	m.Tracker = sgx.BaselineTracker{}
	baseCores := m.ETrack(outer)
	if hasCore(baseCores, 1) {
		t.Fatalf("baseline tracker unexpectedly includes core 1 (it has no context in the outer)")
	}
	// Follow the baseline protocol faithfully: block, shoot down only the
	// (insufficient) tracked set, attempt EWB. The conservative EWB audit
	// must refuse rather than evict under core 1's live translation.
	var pageIdx = -1
	for _, i := range m.EPC.PagesOf(outer.EID) {
		if ent := m.EPC.Entry(i); ent.Type == isa.PTReg && ent.Vaddr == dataVaddr(0, 0) {
			pageIdx = i
		}
	}
	if err := m.EBlock(pageIdx); err != nil {
		t.Fatalf("EBLOCK: %v", err)
	}
	for _, c := range baseCores {
		m.ShootdownFor(c, outer.EID)
	}
	if _, err := m.EWB(pageIdx); !isa.IsFault(err, isa.FaultGP) {
		t.Fatalf("EWB with baseline tracking: got %v, want #GP (incomplete shootdown)", err)
	}
}

// TestStaleTLBInjectionCaughtByAudit verifies the invariant audit itself has
// teeth: an out-of-thin-air TLB entry mapping PRM at an out-of-ELRANGE vaddr
// (which no validator would ever produce) must trip invariant 2.
func TestStaleTLBInjectionCaughtByAudit(t *testing.T) {
	r := NewRunner(2, false)
	ops := []Op{
		{Kind: OpBuild, Slot: 0},
		{Kind: OpEnter, Core: 0, Slot: 0},
	}
	if _, err := r.RunOps(ops); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := r.AuditInvariants(); err != nil {
		t.Fatalf("clean state fails audit: %v", err)
	}
	m := r.Machine()
	secsPA := m.EPC.AddrOf(m.EPC.PagesOf(r.Slot(0).EID)[0])
	m.Core(0).TLB.Insert(tlb.Entry{VPN: unsecVBase.VPN(), PPN: secsPA.PPN(), Perms: isa.PermRW})
	if err := r.AuditInvariants(); err == nil {
		t.Fatalf("audit missed an injected stale PRM translation")
	} else {
		t.Logf("audit caught injection: %v", err)
	}
}

// TestELDUReplayDenied evicts a page and then replays its sealed blob: the
// first reload must succeed, the second must fail the freshness check with
// the typed ErrBlobReplay detection — the kernel cannot roll an enclave page
// back, and the rejection is distinguishable from a generic integrity fault.
func TestELDUReplayDenied(t *testing.T) {
	r := NewRunner(2, false)
	ops := []Op{
		{Kind: OpBuild, Slot: 0},
		{Kind: OpEvict, Slot: 0, A: 0},
	}
	if _, err := r.RunOps(ops); err != nil {
		t.Fatalf("setup: %v", err)
	}
	blob := r.Blob(dataVaddr(0, 0))
	if blob == nil {
		t.Fatalf("eviction produced no blob")
	}
	m := r.Machine()
	if _, err := m.ELDU(blob); err != nil {
		t.Fatalf("first ELDU: %v", err)
	}
	if _, err := m.ELDU(blob); !errors.Is(err, sgx.ErrBlobReplay) {
		t.Fatalf("replayed ELDU: got %v, want ErrBlobReplay", err)
	}
}

// TestForcedEPCMMismatchAborts forges a mapping from one enclave's vaddr to
// an unrelated enclave's EPC frame: the Figure-6 owner check must abort the
// access (all-ones read), in lockstep with the oracle.
func TestForcedEPCMMismatchAborts(t *testing.T) {
	r := NewRunner(2, false)
	ops := []Op{
		{Kind: OpBuild, Slot: 0},
		{Kind: OpBuild, Slot: 1},
		{Kind: OpEnter, Core: 0, Slot: 0},
	}
	if _, err := r.RunOps(ops); err != nil {
		t.Fatalf("setup: %v", err)
	}
	m := r.Machine()
	var victimPA isa.PAddr
	for _, i := range m.EPC.PagesOf(r.Slot(1).EID) {
		if ent := m.EPC.Entry(i); ent.Type == isa.PTReg && ent.Vaddr == dataVaddr(1, 0) {
			victimPA = m.EPC.AddrOf(i)
		}
	}
	r.pt.Map(dataVaddr(0, 0), victimPA, isa.PermRW)
	if err := r.Step(Op{Kind: OpRead, Core: 0, A: 0}); err != nil {
		t.Fatalf("lockstep divergence on forged mapping: %v", err)
	}
	var buf [8]byte
	if err := m.Core(0).ReadInto(dataVaddr(0, 0), buf[:]); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !allFF(buf[:]) {
		t.Fatalf("forged cross-enclave mapping read %x, want abort-page 0xFF", buf)
	}
}

// --- random-vs-exhaustive comparison -----------------------------------
//
// The acceptance argument for the systematic explorer: two planted bugs
// that require a specific ~6-op interleaving are invisible to the
// 5000-schedule random pass at the same scope (same alphabet, same depth),
// but the exhaustive pass finds both. Random sampling at 35^8 possible
// depth-8 schedules has ~1e-8 odds per draw of hitting a fixed 6-op
// subsequence; exhaustive enumeration covers it by construction.

// plantedBug describes one injected machine defect for the comparison.
type plantedBug struct {
	name   string
	plant  func(r *Runner) // applied to a fresh runner before any op runs
	minOps int             // length of the shortest triggering interleaving
}

func plantedBugs() []plantedBug {
	return []plantedBug{
		{
			// Bug 1: the Figure-6 step-⑤ outer-ELRANGE branch inverted. Needs
			// build+build+associate+enter-inner+inner-reads-outer — the access
			// validates on the correct machine, aborts on the broken one.
			name:   "flipped-outer-elrange",
			plant:  func(r *Runner) { r.SetValidator(flippedOuterELRANGE{}) },
			minOps: 5,
		},
		{
			// Bug 2: ETRACK thread tracking reverted to inner-oblivious
			// baseline SGX (§IV-E). Needs a core inside an enclave nested
			// under the evicted page's owner: the baseline tracker skips its
			// shootdown IPI and the core's TLB keeps a stale entry.
			name:   "baseline-etrack-no-nested-shootdown",
			plant:  func(r *Runner) { r.Machine().Tracker = sgx.BaselineTracker{} },
			minOps: 5,
		},
	}
}

// uniformSchedule draws n ops uniformly from the alphabet — the "equal
// scope" random baseline (the weighted generator in gen.go covers the full
// 4x4 topology, which would not be an apples-to-apples comparison).
func uniformSchedule(rng *rand.Rand, alphabet []Op, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return ops
}

// TestRandomVsExhaustive is the comparison table: per planted bug, 5000
// uniform random schedules at the explorer's exact scope (alphabet, depth 8)
// versus the exhaustive pass.
func TestRandomVsExhaustive(t *testing.T) {
	const (
		randomSchedules = 5000
		depth           = 8
	)
	alphabet := DefaultAlphabet(2, 2)
	type row struct {
		bug          plantedBug
		randomCaught int
		exhaustive   *Counterexample
		stats        *ExploreStats
	}
	var table []row
	for _, bug := range plantedBugs() {
		nRandom := randomSchedules
		if testing.Short() {
			nRandom = 500
		}
		rng := rand.New(rand.NewSource(1))
		caught := 0
		for i := 0; i < nRandom; i++ {
			r := NewRunner(2, false)
			bug.plant(r)
			if _, err := r.RunOps(uniformSchedule(rng, alphabet, depth)); err != nil {
				caught++
			}
		}

		stats, ce := Explore(ExploreConfig{
			Depth: depth, MaxDepth: 2, Alphabet: alphabet,
			NewRunner: func() *Runner {
				r := NewRunner(2, false)
				bug.plant(r)
				return r
			},
		})
		if ce == nil {
			t.Errorf("%s: exhaustive pass at depth %d missed the planted bug (%s)",
				bug.name, depth, stats.StatsLine())
			continue
		}
		// The minimized counterexample must implicate the *injected* defect:
		// it diverges on a planted runner and replays cleanly on a correct one.
		if _, err := NewRunner(2, false).RunOps(ce.Shrunk.Ops); err != nil {
			t.Errorf("%s: counterexample also diverges on the correct machine: %v", bug.name, err)
		}
		if len(ce.Shrunk.Ops) < bug.minOps {
			t.Errorf("%s: shrunk counterexample has %d ops, below the structural minimum %d:\n%s",
				bug.name, len(ce.Shrunk.Ops), bug.minOps, FormatRegression(ce.Shrunk))
		}
		table = append(table, row{bug: bug, randomCaught: caught, exhaustive: ce, stats: stats})
	}

	missedByRandom := 0
	t.Logf("random-vs-exhaustive at 2 cores x 2 slots, depth %d, %d-op alphabet:", depth, len(alphabet))
	t.Logf("%-40s %-22s %s", "planted bug", "random (5000 scheds)", "exhaustive")
	for _, r := range table {
		verdictR := fmt.Sprintf("caught %d/5000", r.randomCaught)
		verdictE := fmt.Sprintf("caught (min %d ops, %d transitions)",
			len(r.exhaustive.Shrunk.Ops), r.stats.Transitions)
		t.Logf("%-40s %-22s %s", r.bug.name, verdictR, verdictE)
		if r.randomCaught == 0 {
			missedByRandom++
		}
		t.Logf("  minimal counterexample:\n%s", FormatRegression(r.exhaustive.Shrunk))
	}
	if !testing.Short() && missedByRandom < 2 {
		t.Errorf("want >=2 planted bugs missed by random sampling but caught exhaustively, got %d", missedByRandom)
	}
}
