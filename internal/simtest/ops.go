// Package simtest is the differential model-checking harness: it drives the
// real machine (internal/sgx + internal/core) and the reference oracle
// (internal/model) in lockstep through randomized schedules of interleaved
// enclave operations and diffs every observable — access verdicts, fault
// classes, per-core protection context, TLB contents, and eviction shootdown
// sets — after every single step, then re-checks the paper's four §VII-A
// security invariants on the machine's live TLBs.
//
// A schedule is a flat list of small fixed-width operations over a static
// topology of four enclave slots (two of which have deliberately overlapping
// ELRANGEs), three unsecure pages, and four cores. Operations address slots,
// cores and TCSs by index, so any byte string decodes to a runnable schedule
// — which is what makes the encoding fuzzable with Go's native fuzzer.
//
// Failures shrink (see shrink.go) to a minimal reproducing schedule and print
// as a copy-pasteable Go literal, so the harness continuously mints new
// regression tests (see regress_test.go and TESTING.md).
package simtest

import (
	"fmt"
	"strings"
)

// OpKind enumerates the operations a schedule can contain.
type OpKind uint8

const (
	// OpBuild constructs enclave slot Slot end to end (ECREATE, EADDs, EINIT)
	// and maps its pages. A no-op if the slot is already built.
	OpBuild OpKind = iota
	// OpAssociate issues NASSO(inner=slot Slot, outer=slot A%4).
	OpAssociate
	// OpEnter issues EENTER on core Core into slot Slot through TCS A%2;
	// B&1 selects the resume (ocall-return) form.
	OpEnter
	// OpExit issues EEXIT on core Core; A&1 selects the TCS-releasing form.
	OpExit
	// OpNEnter issues NEENTER on core Core into slot Slot through TCS A%2.
	OpNEnter
	// OpNExit issues NEEXIT on core Core.
	OpNExit
	// OpAEX delivers an asynchronous exit (interrupt) on core Core.
	OpAEX
	// OpResume issues ERESUME on core Core through slot Slot's TCS A%2.
	OpResume
	// OpRead reads 8 bytes on core Core at pool address A, offset from B.
	OpRead
	// OpWrite writes 8 bytes on core Core at pool address A, offset from B.
	OpWrite
	// OpFetch performs an instruction fetch on core Core at pool address A.
	OpFetch
	// OpRemap is the kernel remap attack: alias pool vaddr A to physical
	// frame B in the shared page table.
	OpRemap
	// OpUnmap removes (B&1 == 0) or marks not-present (B&1 == 1) the mapping
	// of pool vaddr A.
	OpUnmap
	// OpEvict runs the eviction protocol (EBLOCK, ETRACK, shootdowns, EWB)
	// on slot Slot's data page A%3 — or reloads it (ELDU) if it is currently
	// evicted. B&0x80 injects a skipped-shootdown fault: the IPIs are
	// omitted, and EWB must refuse while stale translations remain.
	OpEvict

	numOpKinds
)

var opKindNames = [...]string{
	"OpBuild", "OpAssociate", "OpEnter", "OpExit", "OpNEnter", "OpNExit",
	"OpAEX", "OpResume", "OpRead", "OpWrite", "OpFetch", "OpRemap",
	"OpUnmap", "OpEvict",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one schedule step. The meaning of Core/Slot/A/B depends on Kind; all
// fields are reduced modulo their domain at execution time, so every value is
// valid.
type Op struct {
	Kind OpKind
	Core uint8
	Slot uint8
	A    uint8
	B    uint8
}

func (op Op) String() string {
	return fmt.Sprintf("%v{c%d s%d a%d b%d}", op.Kind, op.Core, op.Slot, op.A, op.B)
}

// GoString renders the op as a Go composite literal for regression minting.
func (op Op) GoString() string {
	return fmt.Sprintf("{Kind: %v, Core: %d, Slot: %d, A: %d, B: %d}",
		op.Kind, op.Core, op.Slot, op.A, op.B)
}

// Schedule is a complete harness input: the nesting configuration plus the
// operation sequence. Seed records provenance for log messages; replay does
// not depend on it.
type Schedule struct {
	Seed       int64
	MaxDepth   int
	MultiOuter bool
	Ops        []Op
}

// opBytes is the wire width of one encoded op.
const opBytes = 5

// EncodeSchedule serializes a schedule into the fuzzable byte encoding:
// one header byte (bits 0-1 select MaxDepth ∈ {2, 3, 0}, bit 2 selects
// MultiOuter) followed by 5 bytes per op.
func EncodeSchedule(s Schedule) []byte {
	var hdr byte
	switch s.MaxDepth {
	case 2:
		hdr = 0
	case 3:
		hdr = 1
	default:
		hdr = 2
	}
	if s.MultiOuter {
		hdr |= 4
	}
	out := []byte{hdr}
	for _, op := range s.Ops {
		out = append(out, byte(op.Kind), op.Core, op.Slot, op.A, op.B)
	}
	return out
}

// DecodeSchedule parses the byte encoding produced by EncodeSchedule.
// Arbitrary input decodes to a runnable schedule: the op kind is reduced
// modulo the kind count and a trailing partial op is dropped.
func DecodeSchedule(data []byte) Schedule {
	s := Schedule{MaxDepth: 2}
	if len(data) == 0 {
		return s
	}
	switch data[0] & 3 {
	case 0:
		s.MaxDepth = 2
	case 1:
		s.MaxDepth = 3
	default:
		s.MaxDepth = 0 // unlimited (§VIII multi-level)
	}
	s.MultiOuter = data[0]&4 != 0
	data = data[1:]
	for len(data) >= opBytes {
		s.Ops = append(s.Ops, Op{
			Kind: OpKind(data[0]) % numOpKinds,
			Core: data[1], Slot: data[2], A: data[3], B: data[4],
		})
		data = data[opBytes:]
	}
	return s
}

// FormatRegression renders the schedule as a copy-pasteable Go literal for
// promotion into the regression table in regress_test.go.
func FormatRegression(s Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "{\n\tSeed: %d, MaxDepth: %d, MultiOuter: %v,\n\tOps: []Op{\n", s.Seed, s.MaxDepth, s.MultiOuter)
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "\t\t%s,\n", op.GoString())
	}
	b.WriteString("\t},\n},")
	return b.String()
}
