package simtest

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sync"

	"nestedenclave/internal/cache"
	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/model"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
)

// The static topology every schedule runs against. Four enclave slots with
// identical layouts (three data pages — the third read-only — and two TCSs);
// slot 3's ELRANGE deliberately overlaps slot 2's, so schedules exercise the
// NASSO overlap rejection and PT aliasing between enclaves that can never be
// associated. Three unsecure pages (one executable) and one spare non-PRM
// frame feed the remap attacks.
const (
	machineCores = 4
	// NumSlots is the number of enclave slots in the topology.
	NumSlots  = 4
	dataPages = 3
	numTCS    = 2
	slotPages = dataPages + numTCS
	slotSize  = uint64(slotPages) * isa.PageSize

	unsecPages = 3
	unsecVBase = isa.VAddr(0x0040_0000)
	unsecPBase = isa.PAddr(0x0010_0000)
	// sparePA is a plain DRAM frame outside PRM, mapped only by remap ops.
	sparePA = isa.PAddr(0x0070_0000)
	// unmappedV never receives a static mapping.
	unmappedV = isa.VAddr(0x0077_0000)
	// remapOnlyV is initially unmapped; remap ops may point it anywhere.
	remapOnlyV = isa.VAddr(0x0088_0000)

	prmBase = 2 << 20
	prmSize = 4 << 20

	// dataFill is the initial content byte of enclave data pages. The
	// harness never writes 0xFF anywhere, so an all-ones read is proof of
	// abort-page semantics (see the OpRead handler).
	dataFill = 0x5a
)

var slotBases = [NumSlots]isa.VAddr{
	0x1000_0000,
	0x2000_0000,
	0x3000_0000,
	0x3000_2000, // overlaps slot 2: [0x3000_0000, 0x3000_5000)
}

func dataVaddr(slot, j int) isa.VAddr {
	return slotBases[slot] + isa.VAddr(j)*isa.PageSize
}

func tcsVaddr(slot, k int) isa.VAddr {
	return slotBases[slot] + isa.VAddr(dataPages+k)*isa.PageSize
}

// dataPerms returns the author (EPCM) permissions of data page j: the third
// page is read-only so schedules hit the EPCM-permission #PF branch.
func dataPerms(j int) isa.Perm {
	if j == 2 {
		return isa.PermR
	}
	return isa.PermRW
}

var unsecPerms = [unsecPages]isa.Perm{isa.PermRW, isa.PermRW, isa.PermRWX}

// remapPerms are the PTE permissions a remap attack may install.
var remapPerms = [4]isa.Perm{isa.PermRW, isa.PermRWX, isa.PermR, isa.PermRW}

type slotState struct {
	secs *sgx.SECS
	eid  isa.EID // 0 while unbuilt; mirrors the oracle's EID by construction
}

// slotCerts is the signing identity and per-slot certificates every runner
// shares. The topology (and therefore every slot's measurement) is static, so
// one author signing each slot once serves all runners. Sharing matters for
// the systematic explorer, which forks a fresh runner per DFS branch: four
// ed25519 signatures per fork would dominate its runtime.
type slotCerts struct {
	author  *measure.Author
	digests [NumSlots]measure.Digest
	certs   [NumSlots]*measure.SigStruct
}

var sharedCerts = sync.OnceValue(func() *slotCerts {
	cs := &slotCerts{author: measure.MustNewAuthor()}
	all := make([]measure.Digest, 0, NumSlots)
	for slot := 0; slot < NumSlots; slot++ {
		cs.digests[slot] = slotDigest()
		all = append(all, cs.digests[slot])
	}
	// Every slot's certificate names every slot's measurement as both an
	// allowed inner and an allowed outer, so NASSO outcomes in schedules
	// depend only on the structural rules (cycles, depth, overlap) the oracle
	// models — never on the certificate path, which internal/core's own tests
	// cover.
	for slot := 0; slot < NumSlots; slot++ {
		cs.certs[slot] = cs.author.Sign(cs.digests[slot], all, all)
	}
	return cs
})

// Runner drives one machine and one oracle in lockstep. Single-goroutine.
type Runner struct {
	m   *sgx.Machine
	ext *core.Extension
	o   *model.Oracle
	pt  *pt.Table

	author  *measure.Author
	digests [NumSlots]measure.Digest
	certs   [NumSlots]*measure.SigStruct

	slots [NumSlots]slotState
	// blobs holds pages currently swapped out, keyed by virtual page base.
	blobs map[isa.VAddr]*sgx.EvictedPage
	// stale holds, per page, the most recent *consumed* blob — the capture a
	// malicious kernel would replay. Fed by the reload path, drained never:
	// the adversarial replay op (OpEvict with B&0x40) presents it to ELDU and
	// diffs the refusal against the oracle's freshness ledger.
	stale map[isa.VAddr]*sgx.EvictedPage

	// pool is the fixed virtual-address pool access and remap ops draw from.
	pool []isa.VAddr

	step int
}

// NewRunner builds a fresh machine + oracle pair for one schedule.
func NewRunner(maxDepth int, multiOuter bool) *Runner {
	m := sgx.MustNew(sgx.Config{
		Cores: machineCores,
		Phys:  phys.Layout{DRAMSize: 8 << 20, PRMBase: prmBase, PRMSize: prmSize},
		LLC:   cache.Config{SizeBytes: 256 << 10, Ways: 16},
	})
	ext := core.Enable(m, core.Config{MaxDepth: maxDepth, AllowMultipleOuters: multiOuter})
	o := model.New(model.Config{
		Cores: machineCores, PRMBase: prmBase, PRMSize: prmSize,
		MaxDepth: maxDepth, MultiOuter: multiOuter,
	})
	r := &Runner{
		m: m, ext: ext, o: o, pt: pt.New(),
		blobs: make(map[isa.VAddr]*sgx.EvictedPage),
		stale: make(map[isa.VAddr]*sgx.EvictedPage),
	}
	for _, c := range m.Cores() {
		c.PT = r.pt
	}
	for i := 0; i < unsecPages; i++ {
		r.pt.Map(unsecVBase+isa.VAddr(i)*isa.PageSize, unsecPBase+isa.PAddr(i)*isa.PageSize, unsecPerms[i])
	}
	for slot := 0; slot < NumSlots; slot++ {
		for j := 0; j < dataPages; j++ {
			r.pool = append(r.pool, dataVaddr(slot, j))
		}
		r.pool = append(r.pool, tcsVaddr(slot, 0))
	}
	for i := 0; i < unsecPages; i++ {
		r.pool = append(r.pool, unsecVBase+isa.VAddr(i)*isa.PageSize)
	}
	r.pool = append(r.pool, unmappedV, remapOnlyV)

	cs := sharedCerts()
	r.author = cs.author
	r.digests = cs.digests
	r.certs = cs.certs
	return r
}

// Machine exposes the machine under test to directed tests.
func (r *Runner) Machine() *sgx.Machine { return r.m }

// Ext exposes the nested-enclave extension handle.
func (r *Runner) Ext() *core.Extension { return r.ext }

// Oracle exposes the reference model.
func (r *Runner) Oracle() *model.Oracle { return r.o }

// Slot returns the SECS of a built slot (nil while unbuilt).
func (r *Runner) Slot(i int) *sgx.SECS { return r.slots[i].secs }

// Blob returns the sealed blob of an evicted page, if v is currently out.
func (r *Runner) Blob(v isa.VAddr) *sgx.EvictedPage { return r.blobs[v.PageBase()] }

// StaleBlob returns the most recent consumed blob of v — the capture the
// adversarial replay op presents to ELDU — or nil if never reloaded.
func (r *Runner) StaleBlob(v isa.VAddr) *sgx.EvictedPage { return r.stale[v.PageBase()] }

// SetValidator swaps the machine's access validator — the hook the
// injected-bug self-test uses to prove the harness catches a broken Figure-6
// implementation.
func (r *Runner) SetValidator(v sgx.Validator) { r.m.Validator = v }

// slotDigest mirrors, independently of the machine, the measurement the
// machine accumulates while buildSlot constructs a slot. All slots share one
// layout, so the digest is slot-independent.
func slotDigest() measure.Digest {
	b := measure.NewBuilder()
	b.ECreate(slotSize, 0)
	content := bytes.Repeat([]byte{dataFill}, isa.PageSize)
	for j := 0; j < dataPages; j++ {
		off := uint64(j) * isa.PageSize
		b.EAdd(off, isa.PTReg, dataPerms(j))
		for ch := 0; ch < isa.PageSize; ch += isa.ExtendChunk {
			b.EExtend(off+uint64(ch), content[ch:ch+isa.ExtendChunk])
		}
	}
	for k := 0; k < numTCS; k++ {
		b.EAdd(uint64(dataPages+k)*isa.PageSize, isa.PTTCS, 0)
	}
	return b.Finalize()
}

// RunOps executes the ops in order, stopping at the first divergence. It
// returns the index of the failing op and the divergence description.
func (r *Runner) RunOps(ops []Op) (int, error) {
	for i, op := range ops {
		if err := r.Step(op); err != nil {
			return i, fmt.Errorf("op %d %v: %w", i, op, err)
		}
	}
	return len(ops), nil
}

// Run executes a complete schedule.
func (r *Runner) Run(s Schedule) (int, error) { return r.RunOps(s.Ops) }

// Step applies one op to both sides, then diffs all per-core observable
// state and re-checks the four security invariants.
func (r *Runner) Step(op Op) error {
	r.step++
	if err := r.apply(op); err != nil {
		return err
	}
	if err := r.diffState(); err != nil {
		return err
	}
	return r.AuditInvariants()
}

// classify maps a machine error to the oracle's verdict space. The typed
// blob-replay detection folds into VGP: architecturally it is a refused
// instruction, and the oracle's freshness ledger predicts exactly VGP for it.
func classify(err error) (model.Verdict, bool) {
	switch {
	case err == nil:
		return model.VOK, true
	case isa.IsFault(err, isa.FaultPF):
		return model.VPF, true
	case isa.IsFault(err, isa.FaultGP):
		return model.VGP, true
	case errors.Is(err, sgx.ErrBlobReplay):
		return model.VGP, true
	}
	return 0, false
}

// diffVerdict compares the machine's outcome of a non-access instruction
// with the oracle's prediction.
func diffVerdict(what string, err error, want model.Verdict) error {
	got, ok := classify(err)
	if !ok {
		return fmt.Errorf("%s: machine raised unclassifiable error %v (oracle: %v)", what, err, want)
	}
	if got != want {
		return fmt.Errorf("%s: machine %v (%v), oracle %v", what, got, err, want)
	}
	return nil
}

func (r *Runner) apply(op Op) error {
	kind := op.Kind % numOpKinds
	coreID := int(op.Core) % machineCores
	slot := int(op.Slot) % NumSlots
	c := r.m.Core(coreID)

	switch kind {
	case OpBuild:
		return r.buildSlot(slot)

	case OpAssociate:
		outerSlot := int(op.A) % NumSlots
		err := r.ext.NASSO(r.slots[slot].secs, r.slots[outerSlot].secs)
		want := r.o.NASSO(r.slots[slot].eid, r.slots[outerSlot].eid)
		return diffVerdict(fmt.Sprintf("NASSO(inner=slot%d, outer=slot%d)", slot, outerSlot), err, want)

	case OpEnter:
		tcs := int(op.A) % numTCS
		resume := op.B&1 == 1
		err := r.m.EEnter(c, r.slots[slot].secs, tcsVaddr(slot, tcs), resume)
		want := r.o.EEnter(coreID, r.slots[slot].eid, tcs, resume)
		return diffVerdict(fmt.Sprintf("EENTER(core %d, slot%d, tcs%d, resume=%v)", coreID, slot, tcs, resume), err, want)

	case OpExit:
		release := op.A&1 == 1
		err := r.m.EExit(c, release)
		want := r.o.EExit(coreID, release)
		return diffVerdict(fmt.Sprintf("EEXIT(core %d, release=%v)", coreID, release), err, want)

	case OpNEnter:
		tcs := int(op.A) % numTCS
		err := r.ext.NEENTER(c, r.slots[slot].secs, tcsVaddr(slot, tcs))
		want := r.o.NEEnter(coreID, r.slots[slot].eid, tcs)
		return diffVerdict(fmt.Sprintf("NEENTER(core %d, slot%d, tcs%d)", coreID, slot, tcs), err, want)

	case OpNExit:
		err := r.ext.NEEXIT(c)
		want := r.o.NEExit(coreID)
		return diffVerdict(fmt.Sprintf("NEEXIT(core %d)", coreID), err, want)

	case OpAEX:
		err := r.m.AEX(c)
		want := r.o.AEX(coreID)
		return diffVerdict(fmt.Sprintf("AEX(core %d)", coreID), err, want)

	case OpResume:
		tcs := int(op.A) % numTCS
		s := r.slots[slot].secs
		if s == nil {
			// The machine's ERESUME takes a *TCS operand; with the slot
			// unbuilt there is no TCS to name, so the op is a no-op on both
			// sides.
			return nil
		}
		err := r.m.EResume(c, s.TCSs()[tcs])
		want := r.o.EResume(coreID, r.slots[slot].eid, tcs)
		return diffVerdict(fmt.Sprintf("ERESUME(core %d, slot%d, tcs%d)", coreID, slot, tcs), err, want)

	case OpRead:
		return r.accessRead(coreID, op)
	case OpWrite:
		return r.accessWrite(coreID, op)
	case OpFetch:
		return r.accessFetch(coreID, op)

	case OpRemap:
		v := r.pool[int(op.A)%len(r.pool)].PageBase()
		frames := r.framePool()
		pa := frames[int(op.B)%len(frames)]
		perms := remapPerms[(int(op.A)+int(op.B))%len(remapPerms)]
		// Pure page-table attack: no oracle action, no verdict. The kernel
		// may write anything; the access validator is what must hold.
		r.pt.Map(v, pa, perms)
		return nil

	case OpUnmap:
		v := r.pool[int(op.A)%len(r.pool)].PageBase()
		if op.B&1 == 1 {
			r.pt.MarkNotPresent(v)
		} else {
			r.pt.Unmap(v)
		}
		return nil

	case OpEvict:
		return r.evict(slot, op)
	}
	return nil
}

// buildSlot constructs the slot end to end on both sides and cross-checks
// the allocated identities. A no-op if already built.
func (r *Runner) buildSlot(slot int) error {
	if r.slots[slot].secs != nil {
		return nil
	}
	base := slotBases[slot]
	s, err := r.m.ECreate(base, slotSize, 0)
	if err != nil {
		return fmt.Errorf("build slot%d: ECREATE: %v", slot, err)
	}
	secsPages := r.m.EPC.PagesOf(s.EID)
	if len(secsPages) != 1 {
		return fmt.Errorf("build slot%d: fresh enclave owns %d pages, want 1 (SECS)", slot, len(secsPages))
	}
	eid, v := r.o.ECreate(secsPages[0], uint64(base), slotSize)
	if v != model.VOK {
		return fmt.Errorf("build slot%d: oracle rejects ECreate: %v", slot, v)
	}
	if eid != s.EID {
		return fmt.Errorf("build slot%d: machine EID %d, oracle EID %d", slot, s.EID, eid)
	}
	content := bytes.Repeat([]byte{dataFill}, isa.PageSize)
	for j := 0; j < dataPages; j++ {
		va := dataVaddr(slot, j)
		page, err := r.m.EAdd(s, sgx.AddPageArgs{
			Vaddr: va, Type: isa.PTReg, Perms: dataPerms(j), Content: content, Measure: true,
		})
		want := model.VOK
		if err != nil {
			return fmt.Errorf("build slot%d: EADD data%d: %v", slot, j, err)
		}
		if got := r.o.EAdd(eid, page, uint64(va), isa.PTReg, dataPerms(j)); got != want {
			return fmt.Errorf("build slot%d: oracle rejects EAdd data%d: %v", slot, j, got)
		}
		// The PTE grants RW even on the read-only page, so the effective
		// permission comes from the EPCM intersection — the branch under test.
		r.pt.Map(va, r.m.EPC.AddrOf(page), isa.PermRW)
	}
	for k := 0; k < numTCS; k++ {
		va := tcsVaddr(slot, k)
		page, err := r.m.EAdd(s, sgx.AddPageArgs{Vaddr: va, Type: isa.PTTCS, Entry: k})
		if err != nil {
			return fmt.Errorf("build slot%d: EADD tcs%d: %v", slot, k, err)
		}
		if got := r.o.EAdd(eid, page, uint64(va), isa.PTTCS, 0); got != model.VOK {
			return fmt.Errorf("build slot%d: oracle rejects EAdd tcs%d: %v", slot, k, got)
		}
		r.pt.Map(va, r.m.EPC.AddrOf(page), isa.PermR)
	}
	if err := r.m.EInit(s, r.certs[slot]); err != nil {
		return fmt.Errorf("build slot%d: EINIT: %v", slot, err)
	}
	if got := r.o.EInit(eid); got != model.VOK {
		return fmt.Errorf("build slot%d: oracle rejects EInit: %v", slot, got)
	}
	r.slots[slot] = slotState{secs: s, eid: eid}
	return nil
}

// framePool returns the physical frames remap attacks may install: the
// unsecure frames, the spare DRAM frame, and every EPC page of every built
// slot (SECS and TCS pages included — aliasing those must abort).
func (r *Runner) framePool() []isa.PAddr {
	out := make([]isa.PAddr, 0, 4+NumSlots*(slotPages+1))
	for i := 0; i < unsecPages; i++ {
		out = append(out, unsecPBase+isa.PAddr(i)*isa.PageSize)
	}
	out = append(out, sparePA)
	for slot := 0; slot < NumSlots; slot++ {
		if r.slots[slot].secs == nil {
			continue
		}
		for _, p := range r.m.EPC.PagesOf(r.slots[slot].eid) {
			out = append(out, r.m.EPC.AddrOf(p))
		}
	}
	return out
}

// accessAddr resolves an access op's target: pool entry A at an 8-byte-safe
// offset derived from B.
func (r *Runner) accessAddr(op Op) isa.VAddr {
	v := r.pool[int(op.A)%len(r.pool)]
	off := (uint64(op.B) * 24) % (isa.PageSize - 8)
	return v + isa.VAddr(off)
}

// pteFor snapshots the shared page table's entry for the oracle, which does
// not model page tables (they are untrusted input in the threat model).
func (r *Runner) pteFor(v isa.VAddr) model.PTE {
	e, ok := r.pt.Walk(v)
	return model.PTE{Mapped: ok, Present: e.Present, PPN: e.PPN, Perms: e.Perms}
}

func allFF(b []byte) bool {
	for _, x := range b {
		if x != 0xFF {
			return false
		}
	}
	return true
}

func (r *Runner) accessRead(coreID int, op Op) error {
	v := r.accessAddr(op)
	want := r.o.Access(coreID, uint64(v), r.pteFor(v), isa.Read)
	var buf [8]byte
	err := r.m.Core(coreID).ReadInto(v, buf[:])
	got, ok := classify(err)
	if !ok {
		return fmt.Errorf("read %#x on core %d: unclassifiable error %v", uint64(v), coreID, err)
	}
	if err == nil && allFF(buf[:]) {
		// No page in the topology legitimately contains 0xFF (data pages are
		// filled with dataFill, unsecure pages with zeroes, and writes never
		// store 0xFF), so an all-ones read is the abort page.
		got = model.VAbort
	}
	if got != want {
		return fmt.Errorf("read %#x on core %d: machine %v (err=%v data=%x), oracle %v",
			uint64(v), coreID, got, err, buf, want)
	}
	return nil
}

func (r *Runner) accessWrite(coreID int, op Op) error {
	v := r.accessAddr(op)
	want := r.o.Access(coreID, uint64(v), r.pteFor(v), isa.Write)
	payload := bytes.Repeat([]byte{byte(1 + r.step%250)}, 8)
	err := r.m.Core(coreID).Write(v, payload)
	if err == nil {
		// Success and silent abort-drop are indistinguishable at the write
		// call; the TLB diff after the op separates them (VOK inserts an
		// entry, VAbort must not).
		if want != model.VOK && want != model.VAbort {
			return fmt.Errorf("write %#x on core %d: machine ok, oracle %v", uint64(v), coreID, want)
		}
		return nil
	}
	return diffVerdict(fmt.Sprintf("write %#x on core %d", uint64(v), coreID), err, want)
}

func (r *Runner) accessFetch(coreID int, op Op) error {
	v := r.accessAddr(op)
	want := r.o.Access(coreID, uint64(v), r.pteFor(v), isa.Execute)
	err := r.m.Core(coreID).Fetch(v)
	switch {
	case err == nil:
		if want != model.VOK {
			return fmt.Errorf("fetch %#x on core %d: machine ok, oracle %v", uint64(v), coreID, want)
		}
	case isa.IsFault(err, isa.FaultPF):
		// A fetch from the abort page surfaces as #PF on the machine.
		if want != model.VPF && want != model.VAbort {
			return fmt.Errorf("fetch %#x on core %d: machine #PF (%v), oracle %v", uint64(v), coreID, err, want)
		}
	default:
		return diffVerdict(fmt.Sprintf("fetch %#x on core %d", uint64(v), coreID), err, want)
	}
	return nil
}

// evict runs the full eviction protocol on slot's data page A%3, or reloads
// it if currently swapped out. B's top bit injects the skipped-shootdown
// fault; the machine's EWB and the oracle must then both refuse while any
// TLB still maps the page. B&0x40 is the adversarial-kernel replay op: the
// most recent consumed blob of the page is presented to ELDU again, and the
// machine's refusal is diffed against the oracle's freshness ledger.
func (r *Runner) evict(slot int, op Op) error {
	st := r.slots[slot]
	if st.secs == nil {
		return nil
	}
	target := dataVaddr(slot, int(op.A)%dataPages)

	if op.B&0x40 != 0 {
		stale := r.stale[target]
		if stale == nil {
			return nil // nothing captured yet: the attack has no ammunition
		}
		page, err := r.m.ELDU(stale)
		idx := page
		if err != nil {
			idx = -1
		}
		want := r.o.ELD(stale.Owner, idx, uint64(stale.Vaddr), stale.Type, stale.Perms, stale.Version)
		return diffVerdict(fmt.Sprintf("ELDU-replay slot%d %#x ver%d", slot, uint64(target), stale.Version), err, want)
	}

	if blob, out := r.blobs[target]; out {
		page, err := r.m.ELDU(blob)
		if err != nil {
			return fmt.Errorf("ELDU %#x: %v", uint64(target), err)
		}
		if got := r.o.ELD(blob.Owner, page, uint64(blob.Vaddr), blob.Type, blob.Perms, blob.Version); got != model.VOK {
			return fmt.Errorf("ELDU %#x: oracle rejects reload: %v", uint64(target), got)
		}
		r.stale[target] = blob // consumed: exactly what a replaying kernel would hoard
		delete(r.blobs, target)
		r.pt.Map(target, r.m.EPC.AddrOf(page), isa.PermRW)
		return nil
	}

	pageIdx := -1
	for _, i := range r.m.EPC.PagesOf(st.eid) {
		if ent := r.m.EPC.Entry(i); ent.Type == isa.PTReg && ent.Vaddr == target {
			pageIdx = i
			break
		}
	}
	if pageIdx < 0 {
		return nil
	}

	if err := diffVerdict(fmt.Sprintf("EBLOCK slot%d %#x", slot, uint64(target)),
		r.m.EBlock(pageIdx), r.o.EBlock(pageIdx)); err != nil {
		return err
	}

	// ETRACK: the shootdown sets themselves are a diffed observable — this is
	// where the §IV-E inner-aware tracking must match the oracle's closure
	// walk.
	cores := r.m.ETrack(st.secs)
	gotSet := make([]int, 0, len(cores))
	for _, c := range cores {
		gotSet = append(gotSet, c.ID)
	}
	wantSet := r.o.ShootdownSet(st.eid)
	if !equalInts(gotSet, wantSet) {
		return fmt.Errorf("ETRACK slot%d: machine shootdown set %v, oracle %v", slot, gotSet, wantSet)
	}

	if op.B&0x80 == 0 {
		for _, c := range cores {
			r.m.ShootdownFor(c, st.eid)
			r.o.Shootdown(c.ID)
		}
	}
	// else: fault injection — skip the IPIs; EWB below must catch it.

	blob, err := r.m.EWB(pageIdx)
	if derr := diffVerdict(fmt.Sprintf("EWB slot%d %#x", slot, uint64(target)),
		err, r.o.EWB(pageIdx)); derr != nil {
		return derr
	}
	if err == nil {
		r.blobs[target] = blob
		r.pt.MarkNotPresent(target)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffState compares every per-core observable after a step: enclave mode,
// current EID, and the complete TLB contents.
func (r *Runner) diffState() error {
	for i := 0; i < machineCores; i++ {
		c := r.m.Core(i)
		if c.InEnclave() != r.o.InEnclave(i) {
			return fmt.Errorf("core %d: machine inEnclave=%v, oracle %v", i, c.InEnclave(), r.o.InEnclave(i))
		}
		var meid isa.EID
		if cur := c.Current(); cur != nil {
			meid = cur.EID
		}
		if meid != r.o.CurEID(i) {
			return fmt.Errorf("core %d: machine runs EID %d, oracle EID %d", i, meid, r.o.CurEID(i))
		}
		ments := c.TLB.Entries()
		oents := r.o.TLB(i)
		if len(ments) != len(oents) {
			return fmt.Errorf("core %d: machine TLB has %d entries, oracle %d (machine %v, oracle%s)",
				i, len(ments), len(oents), ments, r.o.DumpTLB(i))
		}
		for _, e := range ments {
			oe, ok := oents[e.VPN]
			if !ok {
				return fmt.Errorf("core %d: machine TLB maps vpn %#x, oracle does not (oracle%s)",
					i, e.VPN, r.o.DumpTLB(i))
			}
			if oe.PPN != e.PPN || oe.Perms != e.Perms {
				return fmt.Errorf("core %d: TLB vpn %#x: machine ppn %#x perms %v, oracle ppn %#x perms %v",
					i, e.VPN, e.PPN, e.Perms, oe.PPN, oe.Perms)
			}
		}
	}
	return nil
}

// AuditInvariants walks every core's live TLB and checks the paper's four
// §VII-A security invariants against the machine's own EPCM — independently
// of the oracle, so a bug that fools both the validator and the model still
// has to evade this structural check.
//
//  1. Out of enclave mode, no TLB entry maps a PRM physical page.
//  2. In enclave mode, a vaddr outside the enclave's ELRANGE (and outside
//     every associated outer's ELRANGE) never maps to PRM.
//  3. In enclave mode, a vaddr inside ELRANGE maps only through an EPCM
//     entry owned by this enclave and recorded at exactly this vaddr.
//  4. (nested) In enclave mode, a vaddr inside an outer enclave's ELRANGE
//     maps only through an EPCM entry owned by that outer at this vaddr.
func (r *Runner) AuditInvariants() error {
	m := r.m
	for _, c := range m.Cores() {
		cur := c.Current()
		for _, e := range c.TLB.Entries() {
			pa := isa.PAddr(e.PPN << isa.PageShift)
			v := isa.VAddr(e.VPN << isa.PageShift)
			inPRM := m.DRAM.PageInPRM(pa)
			if cur == nil {
				if inPRM {
					return fmt.Errorf("inv1: core %d out of enclave maps %#x -> PRM %#x",
						c.ID, uint64(v), uint64(pa))
				}
				continue
			}
			owner := regionOwner(m, cur, e.VPN)
			if owner == nil {
				if inPRM {
					return fmt.Errorf("inv2: core %d enclave %d maps out-of-ELRANGE %#x -> PRM",
						c.ID, cur.EID, uint64(v))
				}
				continue
			}
			if !inPRM {
				return fmt.Errorf("inv3/4: core %d enclave %d maps ELRANGE %#x outside PRM",
					c.ID, cur.EID, uint64(v))
			}
			ent, ok := m.EPC.EntryAt(pa)
			if !ok || !ent.Valid {
				return fmt.Errorf("inv3/4: core %d maps %#x to invalid EPC page", c.ID, uint64(v))
			}
			if ent.Owner != owner.EID {
				return fmt.Errorf("inv3/4: core %d enclave %d maps %#x to EPC of enclave %d, region owner %d",
					c.ID, cur.EID, uint64(v), ent.Owner, owner.EID)
			}
			if ent.Vaddr != v {
				return fmt.Errorf("inv3/4: core %d maps %#x to EPC page recorded at %#x",
					c.ID, uint64(v), uint64(ent.Vaddr))
			}
		}
	}
	return nil
}

// regionOwner returns the enclave whose ELRANGE contains the vpn: the
// current enclave, one of its transitive outers, or nil.
func regionOwner(m *sgx.Machine, cur *sgx.SECS, vpn uint64) *sgx.SECS {
	if cur.ContainsVPN(vpn) {
		return cur
	}
	frontier := append([]isa.EID(nil), cur.Nested.OuterEIDs...)
	seen := map[isa.EID]bool{}
	for len(frontier) > 0 {
		eid := frontier[0]
		frontier = frontier[1:]
		if seen[eid] {
			continue
		}
		seen[eid] = true
		o, ok := m.ResolveEID(eid)
		if !ok {
			continue
		}
		if o.ContainsVPN(vpn) {
			return o
		}
		frontier = append(frontier, o.Nested.OuterEIDs...)
	}
	return nil
}

// Diverges reports whether the schedule produces any machine/oracle
// divergence on a fresh, correct machine. It is the predicate Shrink uses.
func Diverges(s Schedule) bool {
	_, err := NewRunner(s.MaxDepth, s.MultiOuter).Run(s)
	return err != nil
}

// Fingerprint hashes every piece of state a future op's verdict can depend
// on: the oracle's canonical serialization (EPCM, lattice, TCS occupancy,
// per-core context, TLBs — the machine's observables are diffed against it
// every step, so it stands in for both sides), plus the runner's own
// semantic inputs — the shared page table, the set of evicted pages, and the
// slot→EID bindings. Deliberately excluded: the step counter and page
// contents (write payloads never influence a verdict; the harness never
// writes 0xFF, so abort-page detection is content-stable), simulated-cycle
// counters, and cache state. The explorer memoizes on this hash.
func (r *Runner) Fingerprint() uint64 {
	b := r.o.AppendCanonical(nil)
	vpns := r.pt.VPNs()
	slices.Sort(vpns)
	for _, vpn := range vpns {
		e, ok := r.pt.Walk(isa.VAddr(vpn << isa.PageShift))
		if !ok {
			continue
		}
		b = appendU64(b, vpn)
		b = appendU64(b, e.PPN)
		b = appendU64(b, uint64(e.Perms))
		if e.Present {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	outVaddrs := make([]uint64, 0, len(r.blobs))
	for v := range r.blobs {
		outVaddrs = append(outVaddrs, uint64(v))
	}
	slices.Sort(outVaddrs)
	for _, v := range outVaddrs {
		b = appendU64(b, v)
	}
	// Stale-blob captures gate whether the adversarial replay op has
	// ammunition, so two states differing only in captures must explore
	// separately.
	staleVaddrs := make([]uint64, 0, len(r.stale))
	for v := range r.stale {
		staleVaddrs = append(staleVaddrs, uint64(v))
	}
	slices.Sort(staleVaddrs)
	for _, v := range staleVaddrs {
		b = appendU64(b, v)
		b = appendU64(b, r.stale[isa.VAddr(v)].Version)
	}
	for slot := 0; slot < NumSlots; slot++ {
		b = appendU64(b, uint64(r.slots[slot].eid))
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
