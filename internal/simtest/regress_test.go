package simtest

import "testing"

// regressions is the promoted-schedule table. When TestLockstepSchedules (or
// a fuzzer) finds a divergence, it shrinks the schedule and prints it in
// exactly this literal form; paste it here so the minimal reproduction runs
// forever as a fast pinned check. The entries below seed the table with
// directed schedules covering the deep paths random search found worth
// shrinking to during development.
var regressions = []Schedule{
	// nasso-while-inner-resident: found by the exhaustive explorer (depth 6,
	// 2x2 scope) — the first counterexample the systematic pass produced
	// against the tree. A core enters an enclave, a kernel remap attack
	// aliases another slot's data vaddr to plain DRAM, the core caches that
	// vaddr as an ordinary unsecure mapping, and only THEN does NASSO make
	// that slot the core's outer — retroactively turning the cached entry
	// into an ELRANGE mapping outside the EPC (invariant 3/4 violation).
	// Fixed by NASSO's quiescence rule: association now #GPs while any core
	// is executing the inner subtree, on both machine and oracle.
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpBuild, Slot: 1},
			{Kind: OpEnter, Core: 1, Slot: 1},
			{Kind: OpRemap, A: 0, B: 3},        // slot0 data0 -> spare DRAM frame
			{Kind: OpRead, Core: 1, A: 0},      // caches the unsecure alias
			{Kind: OpAssociate, Slot: 1, A: 0}, // must #GP: inner is resident
		},
	},
	// Minimal nested read: outer+inner built and associated, NEENTER, then an
	// inner access to an outer data page (Figure-6 path B, steps ③④⑤).
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpBuild, Slot: 1},
			{Kind: OpAssociate, Slot: 1, A: 0},
			{Kind: OpEnter, Core: 1, Slot: 0},
			{Kind: OpNEnter, Core: 1, Slot: 1},
			{Kind: OpRead, Core: 1, A: 0},
		},
	},
	// Shrunk by TestInjectedOuterELRANGEBugCaught (seed 271): an inner write
	// to an associated outer's data page — the schedule that distinguishes
	// the flipped step-⑤ branch from the correct one. On the correct machine
	// it must not diverge.
	{
		Seed: 271, MaxDepth: 0, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Core: 1, Slot: 2, A: 131, B: 109},
			{Kind: OpBuild, Core: 1, Slot: 0, A: 93, B: 150},
			{Kind: OpAssociate, Core: 2, Slot: 0, A: 154, B: 207},
			{Kind: OpEnter, Core: 2, Slot: 0, A: 224, B: 210},
			{Kind: OpWrite, Core: 2, Slot: 1, A: 240, B: 95},
		},
	},
	// Full eviction round trip under a live nested context: the inner core's
	// outer translation forces the §IV-E shootdown, then ELDU brings the page
	// back and the re-read revalidates.
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpBuild, Slot: 1},
			{Kind: OpAssociate, Slot: 1, A: 0},
			{Kind: OpEnter, Core: 1, Slot: 0},
			{Kind: OpNEnter, Core: 1, Slot: 1},
			{Kind: OpRead, Core: 1, A: 0},
			{Kind: OpEvict, Slot: 0, A: 0},
			{Kind: OpRead, Core: 1, A: 0},  // evicted: #PF on both sides
			{Kind: OpEvict, Slot: 0, A: 0}, // reload via ELDU
			{Kind: OpRead, Core: 1, A: 0},
		},
	},
	// Skipped-shootdown denial followed by recovery — the fault-injection
	// path as a plain lockstep schedule.
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpEnter, Core: 0, Slot: 0},
			{Kind: OpRead, Core: 0, A: 0},
			{Kind: OpEvict, Slot: 0, A: 0, B: 0x80}, // no IPIs: EWB refuses
			{Kind: OpEvict, Slot: 0, A: 0},          // with IPIs: succeeds
		},
	},
	// Dropped shootdown with a cross-core reader (promoted from the
	// adversarial-kernel campaign's drop_shootdown strategy): core 1 holds a
	// warm TLB entry when the kernel suppresses the ETRACK IPIs, so EWB must
	// refuse (#GP both sides) and the stale entry keeps serving CORRECT data
	// — the defended window. The per-step invariant audit then polices the
	// delivered-shootdown eviction, the #PF, and the ELDU round trip.
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpEnter, Core: 1, Slot: 0},
			{Kind: OpRead, Core: 1, A: 0},           // warm the cross-core TLB
			{Kind: OpEvict, Slot: 0, A: 0, B: 0x80}, // IPIs suppressed: EWB refuses
			{Kind: OpRead, Core: 1, A: 0},           // stale entry still serves, data intact
			{Kind: OpEvict, Slot: 0, A: 0},          // IPIs delivered: succeeds
			{Kind: OpRead, Core: 1, A: 0},           // evicted: #PF both sides
			{Kind: OpEvict, Slot: 0, A: 0},          // reload via ELDU
			{Kind: OpRead, Core: 1, A: 0},           // revalidated
		},
	},
	// ELRANGE overlap: slots 2 and 3 overlap, so this NASSO must be rejected
	// identically by machine and oracle, and subsequent accesses through the
	// aliased page table must abort on the EPCM owner check.
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 2},
			{Kind: OpBuild, Slot: 3},
			{Kind: OpAssociate, Slot: 3, A: 2}, // overlap: #GP both sides
			{Kind: OpEnter, Core: 0, Slot: 2},
			{Kind: OpRead, Core: 0, A: 8},  // slot2 data0: ok
			{Kind: OpRead, Core: 0, A: 14}, // slot3 data2 vaddr = slot2 tcs vaddr region
		},
	},
	// Multi-outer lattice (§VIII): one inner associated with two outers, the
	// inner reaching both outers' pages, with depth accounting under
	// MaxDepth 3.
	{
		Seed: -1, MaxDepth: 3, MultiOuter: true,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpBuild, Slot: 1},
			{Kind: OpBuild, Slot: 2},
			{Kind: OpAssociate, Slot: 1, A: 0},
			{Kind: OpAssociate, Slot: 1, A: 2},
			{Kind: OpEnter, Core: 2, Slot: 0},
			{Kind: OpNEnter, Core: 2, Slot: 1},
			{Kind: OpRead, Core: 2, A: 0}, // outer A data0
			{Kind: OpRead, Core: 2, A: 8}, // outer B data0
			{Kind: OpNExit, Core: 2},
			{Kind: OpExit, Core: 2},
		},
	},
	// AEX / ERESUME interleaving with a nested frame on the stack, plus an
	// interrupted-context re-entry attempt on another core (TCS busy #GP).
	{
		Seed: -1, MaxDepth: 2, MultiOuter: false,
		Ops: []Op{
			{Kind: OpBuild, Slot: 0},
			{Kind: OpBuild, Slot: 1},
			{Kind: OpAssociate, Slot: 1, A: 0},
			{Kind: OpEnter, Core: 1, Slot: 0},
			{Kind: OpNEnter, Core: 1, Slot: 1},
			{Kind: OpAEX, Core: 1},
			{Kind: OpEnter, Core: 3, Slot: 0},  // TCS busy: #GP both sides
			{Kind: OpResume, Core: 1, Slot: 1}, // back into the inner
			{Kind: OpRead, Core: 1, A: 4},      // inner data0
			{Kind: OpNExit, Core: 1},
			{Kind: OpExit, Core: 1},
		},
	},
}

// TestRegressions replays every promoted schedule; none may diverge.
func TestRegressions(t *testing.T) {
	for i, s := range regressions {
		r := NewRunner(s.MaxDepth, s.MultiOuter)
		if step, err := r.Run(s); err != nil {
			t.Errorf("regression %d (seed %d) diverged at op %d: %v", i, s.Seed, step, err)
		}
	}
}
