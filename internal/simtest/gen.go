package simtest

import "math/rand"

// opWeight biases the generator: accesses dominate (they are where the
// Figure-6 flow lives), with enough lifecycle, transition, attack and paging
// traffic that deep states — nested contexts, blocked pages, aliased
// mappings — are reached within a 64-op schedule.
var opWeights = []struct {
	kind   OpKind
	weight int
}{
	{OpBuild, 5},
	{OpAssociate, 6},
	{OpEnter, 10},
	{OpExit, 7},
	{OpNEnter, 9},
	{OpNExit, 6},
	{OpAEX, 3},
	{OpResume, 4},
	{OpRead, 16},
	{OpWrite, 12},
	{OpFetch, 4},
	{OpRemap, 8},
	{OpUnmap, 4},
	{OpEvict, 9},
}

var totalWeight = func() int {
	t := 0
	for _, w := range opWeights {
		t += w.weight
	}
	return t
}()

// Generate produces the deterministic schedule for a seed: the nesting
// configuration (depth bound and the §VIII lattice switch) and n weighted
// random ops. The same seed always yields the same schedule, which is how
// failures replay (go test -run TestLockstepSchedules -seed N).
func Generate(seed int64, n int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	switch rng.Intn(3) {
	case 0:
		s.MaxDepth = 2 // the paper's base two-level model
	case 1:
		s.MaxDepth = 3
	default:
		s.MaxDepth = 0 // unlimited (§VIII multi-level)
	}
	s.MultiOuter = rng.Intn(2) == 1
	for i := 0; i < n; i++ {
		pick := rng.Intn(totalWeight)
		var kind OpKind
		for _, w := range opWeights {
			if pick < w.weight {
				kind = w.kind
				break
			}
			pick -= w.weight
		}
		s.Ops = append(s.Ops, Op{
			Kind: kind,
			Core: uint8(rng.Intn(machineCores)),
			Slot: uint8(rng.Intn(NumSlots)),
			A:    uint8(rng.Intn(256)),
			B:    uint8(rng.Intn(256)),
		})
	}
	return s
}
