package simtest

import (
	"os"
	"strconv"
	"testing"
)

// smokeDepth reads MODELCHECK_DEPTH, the horizon of the exhaustive smoke
// below. Default 4 keeps the ordinary `go test` run fast (~1s); the tier-2
// modelcheck-smoke target sets 6, and `make modelcheck` drives the full
// depth-8 scope through cmd/repro instead.
func smokeDepth() int {
	if s := os.Getenv("MODELCHECK_DEPTH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// TestModelCheckSmoke exhaustively enumerates the 2-core × 2-slot scope to
// the MODELCHECK_DEPTH horizon: every interleaving gets the full lockstep
// verdict diff and invariant audit, so a pass is an exhaustiveness claim at
// scope, not a sample.
func TestModelCheckSmoke(t *testing.T) {
	depth := smokeDepth()
	if testing.Short() {
		depth = 3
	}
	stats, ce := Explore(ExploreConfig{Depth: depth, MaxDepth: 2})
	if ce != nil {
		t.Fatalf("exhaustive pass at depth %d found a divergence:\n%s", depth, ce)
	}
	t.Logf("depth %d: %s", depth, stats.StatsLine())
	if stats.Truncated {
		t.Fatalf("smoke run truncated — raise MaxTransitions or lower depth")
	}
	if ratio := stats.PruneRatio(); ratio < 0.5 {
		t.Errorf("pruning ratio %.2f below the 0.5 floor the scope is sized for", ratio)
	}
	if stats.MemoHits == 0 || stats.PORSkipped == 0 || stats.SelfLoops == 0 {
		t.Errorf("a pruning layer did nothing: %s", stats.StatsLine())
	}
}

// TestExplorerDeterministic runs the same scope twice and requires identical
// stats and visit order. The explorer must be replay-stable — no RNG, no map
// iteration feeding the search — or a counterexample found in CI could not
// be reproduced locally (nescheck enforces the no-global-RNG side statically;
// this pins the end-to-end behavior).
func TestExplorerDeterministic(t *testing.T) {
	cfg := ExploreConfig{Depth: 4, MaxDepth: 2}
	a, ceA := Explore(cfg)
	b, ceB := Explore(cfg)
	if (ceA == nil) != (ceB == nil) {
		t.Fatalf("runs disagree on divergence: %v vs %v", ceA, ceB)
	}
	if *a != *b {
		t.Fatalf("two runs of one scope produced different explorations:\n  %s\n  %s",
			a.StatsLine(), b.StatsLine())
	}
	if a.VisitHash != b.VisitHash {
		t.Fatalf("visit hashes differ: %#x vs %#x", a.VisitHash, b.VisitHash)
	}
}

// TestPORPreservesCoverage is the soundness check for the reduction
// machinery: with partial-order reduction on, the explorer must discover
// exactly as many distinct states as without it at the same horizon, while
// executing strictly fewer transitions. Sleep sets only prune interleavings
// whose commuted equivalent (same length, so same horizon) is explored, and
// the sleep-aware memoization preserves that argument under state caching —
// a plain budget-keyed memo would leak coverage here, and this test is what
// catches both that and any false independence claim in por.go that
// manifests at this depth.
func TestPORPreservesCoverage(t *testing.T) {
	depth := 4
	if testing.Short() {
		depth = 3
	}
	with, ceW := Explore(ExploreConfig{Depth: depth, MaxDepth: 2})
	without, ceO := Explore(ExploreConfig{Depth: depth, MaxDepth: 2, DisablePOR: true})
	if ceW != nil || ceO != nil {
		t.Fatalf("unexpected divergence: with=%v without=%v", ceW, ceO)
	}
	if with.States != without.States {
		t.Fatalf("POR changed coverage at depth %d: %d states with, %d without",
			depth, with.States, without.States)
	}
	if with.PORSkipped == 0 {
		t.Fatalf("POR pruned nothing at depth %d", depth)
	}
	if with.Transitions >= without.Transitions {
		t.Errorf("POR saved no work: %d transitions with, %d without",
			with.Transitions, without.Transitions)
	}
	t.Logf("depth %d: POR kept %d/%d states while cutting transitions %d -> %d",
		depth, with.States, without.States, without.Transitions, with.Transitions)
}

// TestMemoizationSound mirrors the POR check for the memo layer alone.
func TestMemoizationSound(t *testing.T) {
	depth := 3
	with, ceW := Explore(ExploreConfig{Depth: depth, MaxDepth: 2, DisablePOR: true})
	without, ceO := Explore(ExploreConfig{Depth: depth, MaxDepth: 2, DisablePOR: true, DisableMemo: true})
	if ceW != nil || ceO != nil {
		t.Fatalf("unexpected divergence: with=%v without=%v", ceW, ceO)
	}
	if with.States != without.States {
		t.Fatalf("memoization changed coverage at depth %d: %d states with, %d without",
			depth, with.States, without.States)
	}
	if with.Transitions >= without.Transitions {
		t.Errorf("memoization saved no work: %d vs %d transitions",
			with.Transitions, without.Transitions)
	}
}

// TestExploreTruncation pins the MaxTransitions escape hatch.
func TestExploreTruncation(t *testing.T) {
	stats, ce := Explore(ExploreConfig{Depth: 6, MaxDepth: 2, MaxTransitions: 200})
	if ce != nil {
		t.Fatalf("unexpected divergence: %v", ce)
	}
	if !stats.Truncated {
		t.Fatalf("exploration was not truncated: %s", stats.StatsLine())
	}
	if stats.Transitions > 200 {
		t.Fatalf("transition cap overshot: %d > 200", stats.Transitions)
	}
}

// TestAdversarialExploreSmoke enumerates the adversarial-scheduler scope: the
// default alphabet plus the malicious-kernel ops (IPI-suppressed evictions,
// stale-blob replays). Every interleaving a lying kernel can schedule at this
// depth must still lockstep with the oracle and audit clean — the explorer
// side of the defend-or-detect contract.
func TestAdversarialExploreSmoke(t *testing.T) {
	depth := 4
	if testing.Short() {
		depth = 3
	}
	stats, ce := Explore(ExploreConfig{Depth: depth, MaxDepth: 2, Adversarial: true})
	if ce != nil {
		t.Fatalf("adversarial pass at depth %d found a divergence:\n%s", depth, ce)
	}
	if stats.Truncated {
		t.Fatalf("adversarial smoke run truncated: %s", stats.StatsLine())
	}
	plain, _ := Explore(ExploreConfig{Depth: depth, MaxDepth: 2})
	if stats.Transitions <= plain.Transitions {
		t.Errorf("adversarial alphabet added no transitions (%d vs %d) — the malicious ops are inert",
			stats.Transitions, plain.Transitions)
	}
	t.Logf("adversarial depth %d: %s", depth, stats.StatsLine())
}
