package simtest

// The systematic explorer: bounded exhaustive enumeration of schedules at
// small scope, layered on the lockstep Runner so that every explored
// interleaving gets the full Figure-6 verdict diff and §VII-A invariant
// audit — the same checks the randomized harness applies, now over *all*
// interleavings of a reduced op alphabet up to a depth horizon instead of a
// 5000-schedule sample (the Guardian-style "orderliness at small scope"
// argument; see TESTING.md "Exhaustive model checking").
//
// Three prunings keep the enumeration tractable:
//
//   - self-loop elision: an op that leaves the state fingerprint unchanged
//     (the many #GP-rejected ops) contributes no new state, so its subtree
//     is the current subtree and is not re-entered;
//   - state-fingerprint memoization: a state already explored with at least
//     as much remaining depth is not re-expanded (Runner.Fingerprint hashes
//     everything a future verdict can depend on);
//   - sleep-set partial-order reduction: when two adjacent ops are
//     independent (see por.go), only one of the two orders is explored.
//
// Every pruning is an *equivalence* argument, not a coverage hole: each
// claims the skipped interleaving reaches states the search visits anyway.
// The POR claim is itself under test (TestPORCommutativity), and exploration
// order is fixed — no RNG, no map iteration feeding the search — so a run is
// replay-stable by construction (the nescheck determinism rule covers this
// package).
//
// The search is depth-first in alphabet order. Divergence handling matches
// the randomized harness: the failing prefix is ddmin-shrunk and rendered
// via FormatRegression, so exhaustive counterexamples replay and promote
// exactly like sampled ones.

import (
	"fmt"
	"strings"
)

// ExploreConfig scopes one exhaustive enumeration.
type ExploreConfig struct {
	// Depth is the schedule horizon: every interleaving of up to Depth ops
	// from the alphabet is covered (up to the equivalences above).
	Depth int
	// MaxDepth and MultiOuter mirror Schedule's nesting configuration.
	MaxDepth   int
	MultiOuter bool
	// Alphabet is the reduced op set; nil selects DefaultAlphabet(2, 2) —
	// the 2-core × 2-slot scope — or, with Adversarial set,
	// AdversarialAlphabet(2, 2).
	Alphabet []Op
	// Adversarial switches the default alphabet to the adversarial-scheduler
	// scope: the malicious-kernel ops (stale-blob replay, alongside the
	// skipped-shootdown, remap and unmap attacks the default set already
	// carries) are enumerated over ALL interleavings, so every small-scope
	// attack placement is model-checked rather than spot-tested.
	Adversarial bool
	// DisablePOR turns off sleep-set partial-order reduction (for measuring
	// its effect; the covered state space is identical).
	DisablePOR bool
	// DisableMemo turns off state-fingerprint memoization.
	DisableMemo bool
	// MaxTransitions aborts a runaway exploration after this many executed
	// transitions (0 = unlimited). The stats record the truncation.
	MaxTransitions int
	// NewRunner overrides runner construction — the hook fault-injection
	// tests use to explore against a deliberately broken machine. nil means
	// NewRunner(MaxDepth, MultiOuter).
	NewRunner func() *Runner
}

// ExploreStats reports the shape of one exploration.
type ExploreStats struct {
	States      int // distinct states discovered (unique fingerprints)
	Transitions int // ops executed on a runner (incl. self-loops and memo hits)
	SelfLoops   int // transitions whose target state equals their source
	MemoHits    int // transitions into an already-explored state (subtree skipped)
	PORSkipped  int // branch slots pruned by the sleep set (never executed)
	Truncated   bool
	// VisitHash folds every expanded state's fingerprint in visit order —
	// two runs of the same config must produce identical hashes (enumeration
	// order is replay-stable; TestExplorerDeterministic pins this).
	VisitHash uint64
}

// Candidates is the naive branch count the search faced: executed
// transitions plus sleep-set prunes. PruneRatio relates the skipped work
// (POR prunes + memoized subtrees + self-loops) to it.
func (s *ExploreStats) Candidates() int {
	return s.Transitions + s.PORSkipped
}

// PruneRatio is the fraction of candidate branches that did not lead to a
// recursive expansion: sleep-set prunes (never executed), memoized revisits
// and self-loops (executed once, subtree skipped).
func (s *ExploreStats) PruneRatio() float64 {
	if s.Candidates() == 0 {
		return 0
	}
	return float64(s.PORSkipped+s.MemoHits+s.SelfLoops) / float64(s.Candidates())
}

// StatsLine renders the one-line report the modelcheck targets print.
func (s *ExploreStats) StatsLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d states, %d transitions; pruned %d by POR, %d memoized, %d self-loops (%.1f%% of %d branch candidates)",
		s.States, s.Transitions, s.PORSkipped, s.MemoHits, s.SelfLoops,
		100*s.PruneRatio(), s.Candidates())
	if s.Truncated {
		b.WriteString(" [TRUNCATED]")
	}
	return b.String()
}

// Counterexample is a diverging interleaving found by the explorer, already
// minimized to the shrunk schedule's replay format.
type Counterexample struct {
	// Full is the interleaving as discovered (the DFS path).
	Full Schedule
	// Shrunk is the ddmin-minimized schedule; it still diverges.
	Shrunk Schedule
	// Err is the divergence the full schedule produced.
	Err error
}

func (c *Counterexample) String() string {
	return fmt.Sprintf("divergence: %v\nminimal reproduction (promote to regress_test.go):\n%s",
		c.Err, FormatRegression(c.Shrunk))
}

// DefaultAlphabet is the reduced op set for the cores × slots scope:
// lifecycle and association, entries/exits/AEX/resume on each core, reads of
// each slot's first data page and an unsecure page, a write, evictions (one
// with the skipped-shootdown fault), one kernel remap attack and one unmap.
// Lifecycle ops come first so depth-first search reaches deep (built,
// associated, nested) states down its earliest branches.
func DefaultAlphabet(cores, slots int) []Op {
	var a []Op
	for s := 0; s < slots; s++ {
		a = append(a, Op{Kind: OpBuild, Slot: uint8(s)})
	}
	if slots >= 2 {
		a = append(a, Op{Kind: OpAssociate, Slot: 1, A: 0}) // inner=slot1, outer=slot0
		a = append(a, Op{Kind: OpAssociate, Slot: 0, A: 1}) // reverse: cycle/#GP probe
	}
	for c := 0; c < cores; c++ {
		for s := 0; s < slots; s++ {
			a = append(a, Op{Kind: OpEnter, Core: uint8(c), Slot: uint8(s)})
		}
	}
	for c := 0; c < cores; c++ {
		a = append(a, Op{Kind: OpExit, Core: uint8(c), A: 1}) // TCS-releasing exit
	}
	for c := 0; c < cores; c++ {
		for s := 0; s < slots; s++ {
			a = append(a, Op{Kind: OpNEnter, Core: uint8(c), Slot: uint8(s)})
		}
	}
	for c := 0; c < cores; c++ {
		a = append(a, Op{Kind: OpNExit, Core: uint8(c)})
	}
	for c := 0; c < cores; c++ {
		a = append(a, Op{Kind: OpAEX, Core: uint8(c)})
	}
	for c := 0; c < cores; c++ {
		for s := 0; s < slots; s++ {
			a = append(a, Op{Kind: OpResume, Core: uint8(c), Slot: uint8(s)})
		}
	}
	for c := 0; c < cores; c++ {
		for s := 0; s < slots; s++ {
			// Pool index 4*s is slot s's data page 0 (see NewRunner's pool).
			a = append(a, Op{Kind: OpRead, Core: uint8(c), A: uint8(4 * s)})
		}
		a = append(a, Op{Kind: OpRead, Core: uint8(c), A: 16}) // unsecure page 0
	}
	for c := 0; c < cores; c++ {
		a = append(a, Op{Kind: OpWrite, Core: uint8(c), A: 0}) // slot0 data0
	}
	for s := 0; s < slots; s++ {
		a = append(a, Op{Kind: OpEvict, Slot: uint8(s)})
	}
	a = append(a, Op{Kind: OpEvict, Slot: 0, B: 0x80}) // skipped-shootdown fault
	a = append(a, Op{Kind: OpRemap, A: 0, B: 3})       // slot0 data0 → spare DRAM frame
	a = append(a, Op{Kind: OpUnmap, A: 0, B: 1})       // mark slot0 data0 not present
	return a
}

// AdversarialAlphabet is DefaultAlphabet plus the malicious-kernel ops that
// need attack state: a stale-blob replay per slot (OpEvict with B&0x40 —
// ELDU fed the previously consumed capture of the page, diffed against the
// oracle's freshness ledger). Replays are no-ops until an eviction round
// trip has produced a capture, so they compose with the eviction ops already
// in the alphabet.
func AdversarialAlphabet(cores, slots int) []Op {
	a := DefaultAlphabet(cores, slots)
	for s := 0; s < slots; s++ {
		a = append(a, Op{Kind: OpEvict, Slot: uint8(s), B: 0x40})
	}
	return a
}

type explorer struct {
	cfg      ExploreConfig
	alphabet []Op
	// indepMask[i] has bit j set when alphabet[i] and alphabet[j] are
	// independent per the footprint relation (por.go).
	indepMask []uint64
	// memo maps a state fingerprint to the (budget, sleep-set) pairs it has
	// been expanded under. Sleep sets prune children, so a revisit may only
	// be skipped when some earlier visit had at least the remaining budget
	// AND a sleep set no larger than the current one — the classic soundness
	// condition for combining sleep sets with state caching (a plain
	// budget-keyed memo would let a first visit's pruned children go
	// unexplored forever).
	memo map[uint64][]memoEntry
	// seen records every fingerprint encountered, so stats.States counts
	// distinct states regardless of how often the search re-expands them.
	seen  map[uint64]bool
	stats ExploreStats
	ce    *Counterexample
}

// note registers a discovered state fingerprint.
func (e *explorer) note(fp uint64) {
	if !e.seen[fp] {
		e.seen[fp] = true
		e.stats.States++
	}
}

type memoEntry struct {
	budget int
	sleep  uint64
}

// covered reports whether a previous visit dominates (budget', sleep'):
// explored with at least the budget and at most the sleep restrictions.
func covered(entries []memoEntry, budget int, sleep uint64) bool {
	for _, ent := range entries {
		if ent.budget >= budget && ent.sleep&^sleep == 0 {
			return true
		}
	}
	return false
}

// record adds (budget, sleep) to the entry list, dropping entries the new
// one dominates.
func record(entries []memoEntry, budget int, sleep uint64) []memoEntry {
	kept := entries[:0]
	for _, ent := range entries {
		if !(budget >= ent.budget && sleep&^ent.sleep == 0) {
			kept = append(kept, ent)
		}
	}
	return append(kept, memoEntry{budget: budget, sleep: sleep})
}

// Explore exhaustively enumerates the configured scope. It returns the
// stats and, if any interleaving diverged, the (shrunk) counterexample; the
// search stops at the first divergence.
func Explore(cfg ExploreConfig) (*ExploreStats, *Counterexample) {
	e := &explorer{cfg: cfg, alphabet: cfg.Alphabet,
		memo: map[uint64][]memoEntry{}, seen: map[uint64]bool{}}
	if e.alphabet == nil {
		if cfg.Adversarial {
			e.alphabet = AdversarialAlphabet(2, 2)
		} else {
			e.alphabet = DefaultAlphabet(2, 2)
		}
	}
	if len(e.alphabet) > 64 {
		// Sleep sets are uint64 bitmasks; the reduced alphabets this scope
		// targets are far smaller.
		panic(fmt.Sprintf("simtest.Explore: alphabet of %d ops exceeds the 64-op limit", len(e.alphabet)))
	}
	// The pool layout is static (NewRunner always builds the same pool), so
	// footprints can be computed from a throwaway runner's copy.
	indep := independenceMatrix(e.alphabet, e.newRunner().pool)
	e.indepMask = make([]uint64, len(e.alphabet))
	for i := range indep {
		for j, ok := range indep[i] {
			if ok {
				e.indepMask[i] |= 1 << j
			}
		}
	}
	root := e.newRunner()
	fp := root.Fingerprint()
	e.memo[fp] = record(nil, cfg.Depth, 0)
	e.dfs(nil, root, fp, cfg.Depth, 0)
	return &e.stats, e.ce
}

func (e *explorer) newRunner() *Runner {
	if e.cfg.NewRunner != nil {
		return e.cfg.NewRunner()
	}
	return NewRunner(e.cfg.MaxDepth, e.cfg.MultiOuter)
}

// runnerAt replays a prefix on a fresh runner. The prefix has executed
// cleanly before and replay is deterministic, so an error here is itself a
// reportable divergence (a replay-instability bug).
func (e *explorer) runnerAt(prefix []Op) *Runner {
	r := e.newRunner()
	if _, err := r.RunOps(prefix); err != nil {
		e.fail(prefix, fmt.Errorf("prefix replay unstable: %w", err))
		return nil
	}
	return r
}

// fail records the first counterexample and stops the search.
func (e *explorer) fail(ops []Op, err error) {
	if e.ce != nil {
		return
	}
	full := Schedule{Seed: -1, MaxDepth: e.cfg.MaxDepth, MultiOuter: e.cfg.MultiOuter,
		Ops: append([]Op(nil), ops...)}
	diverges := func(s Schedule) bool {
		r := e.newRunner()
		_, rerr := r.RunOps(s.Ops)
		return rerr != nil
	}
	shrunk := full
	if diverges(full) { // always true; guards the Shrink precondition
		shrunk = Shrink(full, diverges)
	}
	e.ce = &Counterexample{Full: full, Shrunk: shrunk, Err: err}
}

// dfs expands the state reached by prefix. r is a live runner at that state;
// the callee may consume it. Bit i of sleep marks an alphabet op whose
// exploration here is covered by a commuted interleaving elsewhere
// (sleep-set POR).
func (e *explorer) dfs(prefix []Op, r *Runner, fp uint64, budget int, sleep uint64) {
	e.note(fp)
	e.stats.VisitHash = e.stats.VisitHash*1099511628211 ^ fp
	if budget == 0 || e.ce != nil {
		return
	}
	cur := r       // a runner currently at the prefix state
	dirty := false // cur has advanced past the prefix state
	var taken uint64
	for i, op := range e.alphabet {
		if e.ce != nil || e.stats.Truncated {
			return
		}
		if sleep&(1<<i) != 0 {
			e.stats.PORSkipped++
			continue
		}
		if e.cfg.MaxTransitions > 0 && e.stats.Transitions >= e.cfg.MaxTransitions {
			e.stats.Truncated = true
			return
		}
		if dirty {
			if cur = e.runnerAt(prefix); cur == nil {
				return
			}
			dirty = false
		}
		e.stats.Transitions++
		if err := cur.Step(op); err != nil {
			e.fail(append(append([]Op(nil), prefix...), op), err)
			return
		}
		childFp := cur.Fingerprint()
		if childFp == fp {
			// The op rejected (#GP) or was a semantic no-op: the subtree from
			// here is the current subtree. cur still represents the prefix
			// state (only non-semantic counters moved), so no restore needed.
			e.stats.SelfLoops++
			taken |= 1 << i
			continue
		}
		dirty = true
		// Ops already taken at this node — and ops this node inherited in
		// its own sleep set — need not be re-explored after op i if they
		// commute with it: the other order reaches the same state.
		var childSleep uint64
		if !e.cfg.DisablePOR {
			childSleep = (sleep | taken) & e.indepMask[i]
		}
		taken |= 1 << i
		if !e.cfg.DisableMemo {
			if covered(e.memo[childFp], budget-1, childSleep) {
				e.stats.MemoHits++
				continue
			}
			e.memo[childFp] = record(e.memo[childFp], budget-1, childSleep)
		}
		e.dfs(append(prefix, op), cur, childFp, budget-1, childSleep)
	}
}
