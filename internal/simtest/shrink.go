package simtest

// Shrink minimizes a diverging schedule by delta debugging: it repeatedly
// removes chunks of ops (halving the chunk size down to single ops) as long
// as the reduced schedule still diverges, then returns the fixed point. The
// diverges predicate must run the schedule on a fresh runner (and must be
// true for the input); it is a parameter so fault-injection tests can shrink
// against a deliberately broken machine.
func Shrink(s Schedule, diverges func(Schedule) bool) Schedule {
	ops := append([]Op(nil), s.Ops...)
	try := func(candidate []Op) bool {
		c := s
		c.Ops = candidate
		return diverges(c)
	}
	for size := len(ops) / 2; size >= 1; {
		removed := false
		for start := 0; start+size <= len(ops); {
			candidate := make([]Op, 0, len(ops)-size)
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[start+size:]...)
			if try(candidate) {
				ops = candidate
				removed = true
				// Do not advance start: the next chunk slid into place.
				continue
			}
			start += size
		}
		if !removed || size == 1 {
			size /= 2
		}
	}
	s.Ops = ops
	return s
}
