package sqldb

import (
	"fmt"
	"strings"
)

// FormatStmt renders a parsed statement back to SQL. The nested SQL service
// uses it to rewrite queries (the inner enclave parses, encrypts literal
// values, and forwards the rewritten text to the shared database service).
func FormatStmt(st Stmt) (string, error) {
	var b strings.Builder
	switch s := st.(type) {
	case *CreateStmt:
		b.WriteString("CREATE TABLE ")
		b.WriteString(s.Table)
		b.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
			if i == s.PK {
				b.WriteString(" PRIMARY KEY")
			}
		}
		b.WriteString(")")
	case *InsertStmt:
		b.WriteString("INSERT INTO ")
		b.WriteString(s.Table)
		if len(s.Cols) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(s.Cols, ", "))
			b.WriteString(")")
		}
		b.WriteString(" VALUES (")
		for i, v := range s.Vals {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatLiteral(v))
		}
		b.WriteString(")")
	case *SelectStmt:
		b.WriteString("SELECT ")
		switch {
		case s.Count:
			b.WriteString("COUNT(*)")
		case s.Cols == nil:
			b.WriteString("*")
		default:
			b.WriteString(strings.Join(s.Cols, ", "))
		}
		b.WriteString(" FROM ")
		b.WriteString(s.Table)
		formatWhere(&b, s.Where)
		if s.OrderBy != "" {
			fmt.Fprintf(&b, " ORDER BY %s", s.OrderBy)
			if s.Desc {
				b.WriteString(" DESC")
			}
		}
		if s.Limit >= 0 {
			fmt.Fprintf(&b, " LIMIT %d", s.Limit)
		}
	case *UpdateStmt:
		b.WriteString("UPDATE ")
		b.WriteString(s.Table)
		b.WriteString(" SET ")
		for i, set := range s.Sets {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = %s", set.Col, formatLiteral(set.Val))
		}
		formatWhere(&b, s.Where)
	case *DeleteStmt:
		b.WriteString("DELETE FROM ")
		b.WriteString(s.Table)
		formatWhere(&b, s.Where)
	default:
		return "", fmt.Errorf("sqldb: cannot format %T", st)
	}
	return b.String(), nil
}

func formatWhere(b *strings.Builder, where []Cond) {
	for i, c := range where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(b, "%s %s %s", c.Col, c.Op, formatLiteral(c.Val))
	}
}

func formatLiteral(v Value) string {
	if v.Kind == KText {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	if v.Kind == KFloat {
		s := v.String()
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	return v.String()
}
