package sqldb

import (
	"strings"
	"testing"
	"testing/quick"
)

// The parser and executor must never panic, whatever bytes arrive — they
// sit on the enclave service's untrusted input path.

func mustNotPanic(t *testing.T, sql string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on %q: %v", sql, r)
		}
	}()
	db := New()
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, 'x')")
	_, _ = db.Exec(sql)
}

func TestParserRobustnessCorpus(t *testing.T) {
	corpus := []string{
		"", ";", "''", "'", "SELECT", "SELECT *", "SELECT * FROM",
		"SELECT * FROM t WHERE", "SELECT * FROM t WHERE id =",
		"SELECT * FROM t WHERE id = 'unterminated",
		"INSERT INTO t VALUES", "INSERT INTO t VALUES (",
		"INSERT INTO t VALUES ()", "INSERT INTO t (",
		"CREATE TABLE", "CREATE TABLE x", "CREATE TABLE x (",
		"CREATE TABLE x (y)", "CREATE TABLE x (y BLOB)",
		"UPDATE", "UPDATE t", "UPDATE t SET", "UPDATE t SET v",
		"DELETE", "DELETE FROM", "DELETE t",
		"SELECT COUNT( FROM t", "SELECT COUNT(*) FROM t WHERE id !",
		"SELECT * FROM t ORDER", "SELECT * FROM t ORDER BY",
		"SELECT * FROM t LIMIT", "SELECT * FROM t LIMIT LIMIT",
		"\x00\x01\x02", "🙂 FROM t", "--", "/* comment */ SELECT 1",
		"SELECT * FROM t WHERE id = 99999999999999999999999999",
		"SELECT * FROM t WHERE id = 1e999",
		"INSERT INTO t VALUES (1, '" + strings.Repeat("a", 100000) + "')",
		strings.Repeat("(", 10000),
		"SELECT " + strings.Repeat("a,", 5000) + "b FROM t",
	}
	for _, sql := range corpus {
		mustNotPanic(t, sql)
	}
}

func TestParserRobustnessRandom(t *testing.T) {
	f := func(b []byte) bool {
		db := New()
		db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
		func() {
			defer func() { _ = recover() }() // a panic fails via the outer check
			_, _ = db.Exec(string(b))
		}()
		// The table must still work after any garbage input.
		if _, err := db.Exec("INSERT INTO t VALUES (1, 'ok')"); err != nil {
			return false
		}
		r, err := db.Exec("SELECT v FROM t WHERE id = 1")
		return err == nil && len(r.Rows) == 1 && r.Rows[0][0].S == "ok"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: quickRand(t)}); err != nil {
		t.Error(err)
	}
}

// TestParserRandomTokens assembles random sequences of legal tokens, which
// reach deeper parser states than raw bytes.
func TestParserRandomTokens(t *testing.T) {
	tokens := []string{
		"SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "TABLE", "FROM",
		"WHERE", "INTO", "VALUES", "SET", "AND", "ORDER", "BY", "LIMIT",
		"COUNT", "PRIMARY", "KEY", "INT", "TEXT", "FLOAT", "NULL",
		"t", "id", "v", "*", "(", ")", ",", ";", "=", "<", ">", "<=",
		">=", "!=", "<>", "1", "2.5", "'str'", "-3",
	}
	f := func(picks []uint8) bool {
		var parts []string
		for _, p := range picks {
			parts = append(parts, tokens[int(p)%len(tokens)])
		}
		sql := strings.Join(parts, " ")
		panicked := false
		func() {
			defer func() {
				if recover() != nil {
					panicked = true
					t.Logf("panic on %q", sql)
				}
			}()
			db := New()
			db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
			_, _ = db.Exec(sql)
		}()
		return !panicked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500, Rand: quickRand(t)}); err != nil {
		t.Error(err)
	}
}
