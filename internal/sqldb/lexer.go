package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Token kinds.
type tokKind uint8

const (
	tkIdent tokKind = iota
	tkKeyword
	tkInt
	tkFloat
	tkString
	tkPunct // ( ) , ; * =  < > <= >= != <>
	tkEOF
)

type token struct {
	kind tokKind
	text string // keywords upper-cased
	i    int64
	f    float64
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "SELECT": true, "FROM": true, "WHERE": true,
	"UPDATE": true, "SET": true, "DELETE": true, "AND": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "REAL": true,
	"TEXT": true, "VARCHAR": true, "PRIMARY": true, "KEY": true,
	"NULL": true, "LIMIT": true, "ORDER": true, "BY": true,
	"COUNT": true, "ASC": true, "DESC": true,
}

func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(sql) {
					return nil, fmt.Errorf("sqldb: unterminated string literal")
				}
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(sql[j])
				j++
			}
			toks = append(toks, token{kind: tkString, text: sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(sql) && sql[i+1] >= '0' && sql[i+1] <= '9'):
			j := i + 1
			isFloat := false
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
				((sql[j] == '+' || sql[j] == '-') && (sql[j-1] == 'e' || sql[j-1] == 'E'))) {
				if sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' {
					isFloat = true
				}
				j++
			}
			text := sql[i:j]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("sqldb: bad number %q", text)
				}
				toks = append(toks, token{kind: tkFloat, f: f, text: text})
			} else {
				n, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sqldb: bad integer %q", text)
				}
				toks = append(toks, token{kind: tkInt, i: n, text: text})
			}
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(sql) && (unicode.IsLetter(rune(sql[j])) || unicode.IsDigit(rune(sql[j])) || sql[j] == '_') {
				j++
			}
			word := sql[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tkKeyword, text: up})
			} else {
				toks = append(toks, token{kind: tkIdent, text: word})
			}
			i = j
		case c == '<' || c == '>' || c == '!':
			if i+1 < len(sql) && (sql[i+1] == '=' || (c == '<' && sql[i+1] == '>')) {
				toks = append(toks, token{kind: tkPunct, text: sql[i : i+2]})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sqldb: unexpected '!'")
			} else {
				toks = append(toks, token{kind: tkPunct, text: string(c)})
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '*' || c == '=':
			toks = append(toks, token{kind: tkPunct, text: string(c)})
			i++
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q", c)
		}
	}
	return append(toks, token{kind: tkEOF}), nil
}
