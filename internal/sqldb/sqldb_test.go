package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func setup(t *testing.T) *DB {
	t.Helper()
	db := New()
	if _, err := db.Exec("CREATE TABLE users (id INT PRIMARY KEY, name TEXT, score FLOAT)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := setup(t)
	if _, err := db.Exec("INSERT INTO users VALUES (1, 'alice', 9.5)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO users (id, name) VALUES (2, 'bob')"); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec("SELECT * FROM users WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][1].S != "alice" || r.Rows[0][2].F != 9.5 {
		t.Fatalf("rows: %v", r.Rows)
	}
	// NULL for omitted column.
	r = db.MustExec("SELECT score FROM users WHERE id = 2")
	if r.Rows[0][0].Kind != KNull {
		t.Fatalf("omitted column = %v", r.Rows[0][0])
	}
}

func TestProjectionAndOrder(t *testing.T) {
	db := setup(t)
	for i, name := range []string{"c", "a", "b"} {
		db.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d.0)", i+1, name, 10-i))
	}
	r := db.MustExec("SELECT name FROM users ORDER BY name")
	got := []string{r.Rows[0][0].S, r.Rows[1][0].S, r.Rows[2][0].S}
	if strings.Join(got, "") != "abc" {
		t.Fatalf("order by: %v", got)
	}
	r = db.MustExec("SELECT name FROM users ORDER BY score DESC LIMIT 2")
	if len(r.Rows) != 2 || r.Rows[0][0].S != "c" {
		t.Fatalf("order desc limit: %v", r.Rows)
	}
	if r.Columns[0] != "name" {
		t.Fatalf("columns: %v", r.Columns)
	}
}

func TestWhereOperatorsAndConjunction(t *testing.T) {
	db := setup(t)
	for i := 1; i <= 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, 'u%d', %d.0)", i, i, i))
	}
	cases := []struct {
		where string
		want  int
	}{
		{"id = 5", 1},
		{"id != 5", 9},
		{"id <> 5", 9},
		{"id < 3", 2},
		{"id <= 3", 3},
		{"id > 8", 2},
		{"id >= 8", 3},
		{"id > 2 AND id < 5", 2},
		{"id > 2 AND score < 4.5", 2},
		{"name = 'u7'", 1},
	}
	for _, c := range cases {
		r := db.MustExec("SELECT COUNT(*) FROM users WHERE " + c.where)
		if got := int(r.Rows[0][0].I); got != c.want {
			t.Errorf("WHERE %s: count %d, want %d", c.where, got, c.want)
		}
	}
}

func TestUpdateDelete(t *testing.T) {
	db := setup(t)
	for i := 1; i <= 5; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, 'u%d', 0.0)", i, i))
	}
	r := db.MustExec("UPDATE users SET score = 7.5 WHERE id >= 4")
	if r.Affected != 2 {
		t.Fatalf("update affected %d", r.Affected)
	}
	r = db.MustExec("SELECT COUNT(*) FROM users WHERE score = 7.5")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("updated rows: %v", r.Rows)
	}
	r = db.MustExec("DELETE FROM users WHERE id < 3")
	if r.Affected != 2 {
		t.Fatalf("delete affected %d", r.Affected)
	}
	n, _ := db.NumRows("users")
	if n != 3 {
		t.Fatalf("live rows %d", n)
	}
	// Deleted keys are gone from the index.
	r = db.MustExec("SELECT * FROM users WHERE id = 1")
	if len(r.Rows) != 0 {
		t.Fatal("deleted row returned")
	}
	// And can be reinserted.
	db.MustExec("INSERT INTO users VALUES (1, 'again', 0.0)")
	r = db.MustExec("SELECT name FROM users WHERE id = 1")
	if len(r.Rows) != 1 || r.Rows[0][0].S != "again" {
		t.Fatalf("reinsert: %v", r.Rows)
	}
}

func TestPrimaryKeyConstraints(t *testing.T) {
	db := setup(t)
	db.MustExec("INSERT INTO users VALUES (1, 'a', 0.0)")
	if _, err := db.Exec("INSERT INTO users VALUES (1, 'dup', 0.0)"); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	if _, err := db.Exec("INSERT INTO users (name) VALUES ('nokey')"); err == nil {
		t.Fatal("NULL PK accepted")
	}
	// PK update maintains the index.
	db.MustExec("UPDATE users SET id = 42 WHERE id = 1")
	if r := db.MustExec("SELECT name FROM users WHERE id = 42"); len(r.Rows) != 1 {
		t.Fatal("row lost after PK update")
	}
	if r := db.MustExec("SELECT name FROM users WHERE id = 1"); len(r.Rows) != 0 {
		t.Fatal("stale index entry after PK update")
	}
	db.MustExec("INSERT INTO users VALUES (2, 'x', 0.0)")
	if _, err := db.Exec("UPDATE users SET id = 2 WHERE id = 42"); err == nil {
		t.Fatal("PK update onto existing key accepted")
	}
}

func TestDeclaredPrimaryKeyColumn(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE kv (payload TEXT, k INT PRIMARY KEY)")
	db.MustExec("INSERT INTO kv VALUES ('v1', 10)")
	if _, err := db.Exec("INSERT INTO kv VALUES ('v2', 10)"); err == nil {
		t.Fatal("duplicate declared PK accepted")
	}
	r := db.MustExec("SELECT payload FROM kv WHERE k = 10")
	if len(r.Rows) != 1 || r.Rows[0][0].S != "v1" {
		t.Fatalf("lookup on declared PK: %v", r.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := setup(t)
	bad := []string{
		"SELECT * FROM missing",
		"INSERT INTO users VALUES (1, 'a')",               // arity
		"INSERT INTO users VALUES (1, 'a', 'notfloat')",   // type
		"SELECT nope FROM users",                          // column
		"UPDATE users SET nope = 1",                       // column
		"CREATE TABLE users (id INT)",                     // exists
		"CREATE TABLE t2 (id INT, id TEXT)",               // dup column
		"CREATE TABLE t3 ()",                              // empty — parse error
		"SELECT * FROM users WHERE id LIKE 3",             // unsupported op
		"FROB users",                                      // unknown statement
		"SELECT * FROM users WHERE id = 1 extra_tokens x", // trailing garbage
		"INSERT INTO users (id, name) VALUES (1)",         // col/val mismatch
		"SELECT * FROM users LIMIT 'x'",                   // bad limit
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("accepted: %s", sql)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	db := setup(t)
	db.MustExec("INSERT INTO users VALUES (1, 'o''brien', 0.0)")
	r := db.MustExec("SELECT name FROM users WHERE id = 1")
	if r.Rows[0][0].S != "o'brien" {
		t.Fatalf("escape: %q", r.Rows[0][0].S)
	}
}

func TestBTreeBasics(t *testing.T) {
	bt := NewBTree()
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		if !bt.Set(Int(int64(k)), k) {
			t.Fatalf("duplicate insert reported for %d", k)
		}
	}
	if bt.Len() != n {
		t.Fatalf("len %d", bt.Len())
	}
	for i := 0; i < n; i++ {
		id, ok := bt.Get(Int(int64(i)))
		if !ok || id != i {
			t.Fatalf("get %d: %d %v", i, id, ok)
		}
	}
	// Ordered scan.
	prev := int64(-1)
	count := 0
	bt.Scan(func(k Value, id int) bool {
		if k.I <= prev {
			t.Fatalf("scan out of order at %d", k.I)
		}
		prev = k.I
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d", count)
	}
	// Range scan.
	var got []int64
	lo, hi := Int(100), Int(110)
	bt.ScanRange(&lo, &hi, func(k Value, id int) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Fatalf("range scan: %v", got)
	}
	// Delete.
	if !bt.Delete(Int(500)) {
		t.Fatal("delete existing failed")
	}
	if bt.Delete(Int(500)) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := bt.Get(Int(500)); ok {
		t.Fatal("deleted key resolvable")
	}
	if bt.Len() != n-1 {
		t.Fatalf("len after delete %d", bt.Len())
	}
	// Replace.
	if bt.Set(Int(7), 999) {
		t.Fatal("replace reported as insert")
	}
	if id, _ := bt.Get(Int(7)); id != 999 {
		t.Fatalf("replace lost: %d", id)
	}
}

// Property: the B-tree agrees with a reference map under random ops, and
// scans are always sorted.
// quickRand is the deterministic source for every testing/quick property in
// this package: the seed is fixed and logged so a property failure replays
// exactly; QUICK_SEED explores other generation schedules.
func quickRand(t *testing.T) *rand.Rand {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("QUICK_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	t.Logf("testing/quick seed %d (set QUICK_SEED to vary)", seed)
	return rand.New(rand.NewSource(seed))
}

func TestBTreeMatchesMapProperty(t *testing.T) {
	type op struct {
		Key int16
		Del bool
	}
	f := func(ops []op) bool {
		bt := NewBTree()
		ref := map[int64]int{}
		for i, o := range ops {
			k := int64(o.Key)
			if o.Del {
				_, inRef := ref[k]
				if bt.Delete(Int(k)) != inRef {
					return false
				}
				delete(ref, k)
			} else {
				_, inRef := ref[k]
				if bt.Set(Int(k), i) == inRef {
					return false
				}
				ref[k] = i
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			id, ok := bt.Get(Int(k))
			if !ok || id != v {
				return false
			}
		}
		prev := int64(-1 << 62)
		sorted := true
		n := 0
		bt.Scan(func(k Value, id int) bool {
			if k.I <= prev {
				sorted = false
			}
			prev = k.I
			n++
			return true
		})
		return sorted && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: quickRand(t)}); err != nil {
		t.Error(err)
	}
}
