package sqldb

import (
	"fmt"
	"strings"
)

// AST node types.

// ColDef declares one column.
type ColDef struct {
	Name string
	Kind Kind
}

// Cond is one conjunct of a WHERE clause: column OP literal.
type Cond struct {
	Col string
	Op  string // = < > <= >= != <>
	Val Value
}

// CreateStmt is CREATE TABLE.
type CreateStmt struct {
	Table string
	Cols  []ColDef
	// PK is the primary-key column index (first column when undeclared).
	PK int
}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table string
	Cols  []string // empty: positional
	Vals  []Value
}

// SelectStmt is SELECT.
type SelectStmt struct {
	Table   string
	Cols    []string // nil: *
	Count   bool     // SELECT COUNT(*)
	Where   []Cond
	OrderBy string
	Desc    bool
	Limit   int // -1: none
}

// UpdateStmt is UPDATE ... SET.
type UpdateStmt struct {
	Table string
	Sets  []struct {
		Col string
		Val Value
	}
	Where []Cond
}

// DeleteStmt is DELETE FROM.
type DeleteStmt struct {
	Table string
	Where []Cond
}

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

func (*CreateStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*SelectStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}

type parser struct {
	toks []token
	pos  int
}

// Parse compiles one SQL statement.
func Parse(sql string) (Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st Stmt
	switch {
	case p.acceptKw("CREATE"):
		st, err = p.parseCreate()
	case p.acceptKw("INSERT"):
		st, err = p.parseInsert()
	case p.acceptKw("SELECT"):
		st, err = p.parseSelect()
	case p.acceptKw("UPDATE"):
		st, err = p.parseUpdate()
	case p.acceptKw("DELETE"):
		st, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("sqldb: expected statement, got %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if p.cur().kind != tkEOF {
		return nil, fmt.Errorf("sqldb: trailing input at %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tkKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqldb: expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tkPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sqldb: expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tkIdent {
		return "", fmt.Errorf("sqldb: expected identifier, got %q", p.cur().text)
	}
	name := p.cur().text
	p.pos++
	return name, nil
}

func (p *parser) literal() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tkInt:
		p.pos++
		return Int(t.i), nil
	case tkFloat:
		p.pos++
		return Float(t.f), nil
	case tkString:
		p.pos++
		return Text(t.text), nil
	case tkKeyword:
		if t.text == "NULL" {
			p.pos++
			return Null(), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: expected literal, got %q", t.text)
}

func (p *parser) parseCreate() (Stmt, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CreateStmt{Table: name, PK: 0}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		var kind Kind
		switch {
		case p.acceptKw("INT"), p.acceptKw("INTEGER"):
			kind = KInt
		case p.acceptKw("FLOAT"), p.acceptKw("REAL"):
			kind = KFloat
		case p.acceptKw("TEXT"), p.acceptKw("VARCHAR"):
			kind = KText
			if p.acceptPunct("(") { // VARCHAR(n): size ignored
				if _, err := p.literal(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("sqldb: unknown column type %q", p.cur().text)
		}
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			st.PK = len(st.Cols)
		}
		st.Cols = append(st.Cols, ColDef{Name: col, Kind: kind})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return st, p.expectPunct(")")
}

func (p *parser) parseInsert() (Stmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.acceptPunct("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Vals = append(st.Vals, v)
		if !p.acceptPunct(",") {
			break
		}
	}
	return st, p.expectPunct(")")
}

func (p *parser) parseWhere() ([]Cond, error) {
	if !p.acceptKw("WHERE") {
		return nil, nil
	}
	var conds []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tkPunct || !strings.Contains("= < > <= >= != <>", t.text) {
			return nil, fmt.Errorf("sqldb: expected comparison operator, got %q", t.text)
		}
		p.pos++
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Col: col, Op: t.text, Val: v})
		if !p.acceptKw("AND") {
			break
		}
	}
	return conds, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	st := &SelectStmt{Limit: -1}
	if p.acceptKw("COUNT") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("*"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Count = true
	} else if !p.acceptPunct("*") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if st.Where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if st.OrderBy, err = p.ident(); err != nil {
			return nil, err
		}
		if p.acceptKw("DESC") {
			st.Desc = true
		} else {
			p.acceptKw("ASC")
		}
	}
	if p.acceptKw("LIMIT") {
		v, err := p.literal()
		if err != nil || v.Kind != KInt {
			return nil, fmt.Errorf("sqldb: LIMIT needs an integer")
		}
		st.Limit = int(v.I)
	}
	return st, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, struct {
			Col string
			Val Value
		}{col, v})
		if !p.acceptPunct(",") {
			break
		}
	}
	st.Where, err = p.parseWhere()
	return st, err
}

func (p *parser) parseDelete() (Stmt, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	st.Where, err = p.parseWhere()
	return st, err
}
