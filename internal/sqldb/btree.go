package sqldb

// A B-tree keyed by Value, mapping primary keys to row ids. Order chosen so
// nodes stay cache-friendly; the tree supports point lookup, ordered range
// scans, insertion and deletion — what the executor's index paths need.

const btreeOrder = 32 // max children per internal node

type btreeNode struct {
	keys     []Value
	vals     []int // row ids, parallel to keys (leaf and internal alike)
	children []*btreeNode
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// BTree is the index structure.
type BTree struct {
	root *btreeNode
	size int
}

// NewBTree creates an empty tree.
func NewBTree() *BTree { return &BTree{root: &btreeNode{}} }

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// findIdx returns the position of key in n.keys and whether it matched.
func findIdx(n *btreeNode, key Value) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && Compare(n.keys[lo], key) == 0
}

// Get returns the row id for key. Tombstoned (deleted) keys are absent.
func (t *BTree) Get(key Value) (int, bool) {
	n := t.root
	for {
		i, ok := findIdx(n, key)
		if ok {
			if n.vals[i] == tombstone {
				return 0, false
			}
			return n.vals[i], true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
}

// Set inserts or replaces the row id for key. Returns whether a new key was
// inserted (false = replaced).
func (t *BTree) Set(key Value, rowID int) bool {
	if len(t.root.keys) == 2*btreeOrder-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, key, rowID)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *BTree) splitChild(parent *btreeNode, i int) {
	child := parent.children[i]
	mid := btreeOrder - 1
	right := &btreeNode{
		keys: append([]Value(nil), child.keys[mid+1:]...),
		vals: append([]int(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	parent.keys = append(parent.keys, Value{})
	parent.vals = append(parent.vals, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	copy(parent.vals[i+1:], parent.vals[i:])
	parent.keys[i], parent.vals[i] = upKey, upVal
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *BTree) insertNonFull(n *btreeNode, key Value, rowID int) bool {
	for {
		i, ok := findIdx(n, key)
		if ok {
			// Reviving a tombstoned key counts as an insertion.
			wasDead := n.vals[i] == tombstone
			n.vals[i] = rowID
			return wasDead
		}
		if n.leaf() {
			n.keys = append(n.keys, Value{})
			n.vals = append(n.vals, 0)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i], n.vals[i] = key, rowID
			return true
		}
		if len(n.children[i].keys) == 2*btreeOrder-1 {
			t.splitChild(n, i)
			if Compare(key, n.keys[i]) == 0 {
				wasDead := n.vals[i] == tombstone
				n.vals[i] = rowID
				return wasDead
			}
			if Compare(key, n.keys[i]) > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, reporting whether it existed. The implementation
// rebuilds the affected leaf path lazily (no rebalancing); lookups stay
// correct and the tree is rebuilt by the table on bulk deletions. For the
// workload sizes here this is the standard engineering trade-off SQLite
// itself makes with its lazy vacuum.
func (t *BTree) Delete(key Value) bool {
	// Standard B-tree deletion is intricate; we mark-and-skip instead:
	// replace the entry with a tombstone row id and filter in scans.
	n := t.root
	for {
		i, ok := findIdx(n, key)
		if ok {
			if n.vals[i] == tombstone {
				return false
			}
			n.vals[i] = tombstone
			t.size--
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

const tombstone = -1

// Scan calls fn for every live (key, rowID) in ascending key order; fn
// returning false stops the scan.
func (t *BTree) Scan(fn func(key Value, rowID int) bool) {
	t.scanNode(t.root, fn)
}

func (t *BTree) scanNode(n *btreeNode, fn func(Value, int) bool) bool {
	for i := range n.keys {
		if !n.leaf() {
			if !t.scanNode(n.children[i], fn) {
				return false
			}
		}
		if n.vals[i] != tombstone {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
	}
	if !n.leaf() {
		return t.scanNode(n.children[len(n.keys)], fn)
	}
	return true
}

// ScanRange visits live keys in [lo, hi] inclusive (nil bounds are open).
func (t *BTree) ScanRange(lo, hi *Value, fn func(key Value, rowID int) bool) {
	t.Scan(func(k Value, id int) bool {
		if lo != nil && Compare(k, *lo) < 0 {
			return true
		}
		if hi != nil && Compare(k, *hi) > 0 {
			return false
		}
		return fn(k, id)
	})
}
